#!/usr/bin/env bash
# seed-audit — the seeding-spine lint (DESIGN.md "Seeding spine").
#
# Every stochastic draw in this repository must flow from one experiment
# root through labeled dist.Stream children. Three rules keep it that way:
#
#   1. Only internal/dist may import math/rand (it wraps the stdlib Zipf
#      sampler over its own Source). Everything else draws from streams.
#   2. The integer-seed distribution constructors (dist.NewNormal,
#      dist.NewLogNormal, dist.NewBernoulli) are dist-internal legacy
#      surface: production code builds distributions with the *From
#      constructors on a labeled sub-stream.
#   3. Stream roots (dist.NewStream) are born only where experiments are
#      born: internal/experiments (testbeds/exhibits), cmd/ (flag
#      parsing) and examples/. Library packages receive sub-streams;
#      they never mint roots.
#   4. Compute closures are pure (DESIGN.md "Parallel compute phase"):
#      a `Compute(... func() {` block must not read the clock, sleep in
#      modeled time, draw from streams, or touch the data service. A
#      violation would not crash — it would silently break bit-
#      reproducibility (the draw or clock read happens off the executor
#      token) — so it fails `make ci` here instead.
#   5. internal/streaming never ranges over a map (DESIGN.md "Streaming
#      data plane"): Go randomizes map iteration order, so ranging over
#      partition/worker/topic bookkeeping decides wake-up and publish
#      order nondeterministically — the exact hazard the broker's
#      index-ordered partition walks and the group's sorted member
#      slices exist to avoid. Keep such state in slices (or collect keys
#      into a sorted slice *outside* this package's hot paths).
#   6. internal/plan is pure decision logic (DESIGN.md "Control plane"):
#      the planner computes retry instants and dispatch decisions from
#      arguments it is handed, and the manager does all the waiting. A
#      time.Sleep/timer/wall-clock read in the planner would anchor a
#      retry delay to real time instead of the virtual clock, and a
#      vclock import would let it block while holding the manager's
#      lock — either silently breaks bit-identical same-seed runs.
#   7. internal/chaos schedules faults only in modeled time and draws
#      only from its labeled "chaos"/... streams (DESIGN.md "Chaos &
#      replay"): a time.Sleep/timer/wall-clock read there would anchor a
#      fault instant to real time — the reproducing-seed contract (same
#      seed, same fault schedule, same divergence point) dies silently.
#      math/rand is already banned by rule 1; this rule bans the clock.
#   8. Compute closures never touch sync.Pool (DESIGN.md "Hot path"):
#      pooled scratch (mapreduce's kernelScratch, streaming's pubScratch)
#      is fetched on-token before Compute and released on-token after the
#      rejoin — the pool's own mutex/per-P caches are scheduler-visible
#      shared state, so a Get/Put inside a kernel would (a) race the
#      release path that runs after rejoin and (b) make kernel cost
#      depend on which real core ran it. Like rule 4 this would not
#      crash; it would silently leak pooled buffers across the purity
#      boundary — so the grep-gate lives here.
#
# Test files (_test.go) are exempt: tests construct fixture roots freely.
set -u
cd "$(dirname "$0")/.."

fail=0

# Enumerate non-test Go files, tracked or not, excluding vendored paths.
files=$(find . -name '*.go' ! -name '*_test.go' -not -path './.git/*' | sed 's|^\./||')

for f in $files; do
  case "$f" in
    internal/dist/*) continue ;;
  esac
  if grep -qE '"math/rand(/v2)?"' "$f"; then
    echo "seed-audit: $f imports math/rand — draw from a labeled dist.Stream instead" >&2
    fail=1
  fi
  if grep -nE 'dist\.New(Normal|LogNormal|Bernoulli)\(' "$f" >&2; then
    echo "seed-audit: $f constructs a distribution from a raw integer seed — use dist.*From on a labeled sub-stream" >&2
    fail=1
  fi
  # Rule 4: purity inside Compute closures. Track brace depth from any
  # line that opens a `Compute(..., func(...) {` literal; until the block
  # closes, flag clock reads, modeled sleeps, stream draws and
  # data-service calls. The close is found by a character scan so that on
  # a `}) {` line (closure ends, if-block begins) only the text up to the
  # closing brace counts as inside — the if-body that handles a false
  # Compute return is on-token code and out of scope.
  # (vclock itself implements Compute and is skipped.)
  case "$f" in
    internal/vclock/*) ;;
    *)
      impure=$(awk '
        function scan(    i, c, cut) {
          cut = length($0)
          for (i = 1; i <= length($0); i++) {
            c = substr($0, i, 1)
            if (c == "{") depth++
            else if (c == "}") {
              depth--
              if (depth <= 0) { inblock = 0; cut = i; break }
            }
          }
          return substr($0, 1, cut)
        }
        inblock {
          if (scan() ~ /tc\.Stream|\.Now\(\)|Clock\(\)|tc\.Sleep\(|clock\.Sleep\(|\.Sample\(|tc\.Data\.|Data\(\)\./)
            printf "%d: %s\n", FNR, $0
          next
        }
        /Compute\(/ && /func\(/ {
          depth = 0
          scan()
          if (depth > 0) inblock = 1
        }
      ' "$f")
      if [ -n "$impure" ]; then
        echo "seed-audit: $f uses the clock/streams/data inside a Compute closure — Compute bodies must be pure CPU:" >&2
        echo "$impure" | sed "s|^|seed-audit:   $f:|" >&2
        fail=1
      fi
      # Rule 8: same block tracking, different contraband — pool traffic.
      # Pooled scratch is acquired before Compute and released after the
      # rejoin, both on-token; a Get/Put (or a scratch release) inside the
      # kernel races the on-token release path.
      pooled=$(awk '
        function scan(    i, c, cut) {
          cut = length($0)
          for (i = 1; i <= length($0); i++) {
            c = substr($0, i, 1)
            if (c == "{") depth++
            else if (c == "}") {
              depth--
              if (depth <= 0) { inblock = 0; cut = i; break }
            }
          }
          return substr($0, 1, cut)
        }
        inblock {
          if (scan() ~ /sync\.Pool|[Pp]ool\.(Get|Put)\(|getScratch\(|\.release\(\)/)
            printf "%d: %s\n", FNR, $0
          next
        }
        /Compute\(/ && /func\(/ {
          depth = 0
          scan()
          if (depth > 0) inblock = 1
        }
      ' "$f")
      if [ -n "$pooled" ]; then
        echo "seed-audit: $f touches a sync.Pool inside a Compute closure — fetch scratch on-token before Compute, release after the rejoin:" >&2
        echo "$pooled" | sed "s|^|seed-audit:   $f:|" >&2
        fail=1
      fi
      ;;
  esac
  # Rule 5: map ranges in the streaming data plane. Pass 1 (below the
  # loop's first use: streaming_mapvars is collected package-wide, once)
  # gathers every map-typed identifier declared anywhere in
  # internal/streaming (var/field declarations and make(map...)
  # assignments); pass 2 flags any `range` over one of them in this file,
  # through a selector or not (`range byPart`, `range b.topics`).
  case "$f" in
    internal/streaming/*)
      if [ -z "${streaming_mapvars+x}" ]; then
        streaming_mapvars=$( (find internal/streaming -name '*.go' ! -name '*_test.go' \
          -exec grep -ohE '[A-Za-z_][A-Za-z0-9_]*( +| *:?= *(make\()?)map\[' {} + 2>/dev/null || true) \
          | sed -E 's/( +| *:?= *(make\()?)map\[$//' | sort -u)
      fi
      for v in $streaming_mapvars; do
        if grep -nE "range +([A-Za-z_][A-Za-z0-9_.]*\.)?${v}\b" "$f" >&2; then
          echo "seed-audit: $f ranges over map \"$v\" — map iteration order is random; keep partition/worker state in slices" >&2
          fail=1
        fi
      done
      ;;
  esac
  # Rule 6: no blocking, timers or wall-clock reads in the planner; it
  # receives instants as arguments and returns instants as decisions.
  case "$f" in
    internal/plan/*)
      if grep -nE 'time\.(Sleep|After|AfterFunc|NewTimer|NewTicker|Tick|Now)\(' "$f" >&2; then
        echo "seed-audit: $f sleeps on or reads the wall clock — the planner computes instants, the manager waits" >&2
        fail=1
      fi
      if grep -nE '"gopilot/internal/vclock"' "$f" >&2; then
        echo "seed-audit: $f imports vclock — the planner never owns a clock; pass instants in as arguments" >&2
        fail=1
      fi
      ;;
  esac
  # Rule 7: the chaos engine never touches wall time — fault instants,
  # recovery windows and commit skews live entirely on the injected
  # (virtual) clock, so a failing seed replays bit-identically.
  case "$f" in
    internal/chaos/*)
      if grep -nE 'time\.(Sleep|After|AfterFunc|NewTimer|NewTicker|Tick|Now|Since)\(' "$f" >&2; then
        echo "seed-audit: $f sleeps on or reads the wall clock — chaos schedules faults in modeled time only" >&2
        fail=1
      fi
      ;;
  esac
  case "$f" in
    internal/experiments/*|cmd/*|examples/*) continue ;;
  esac
  if grep -nE 'dist\.NewStream\(' "$f" >&2; then
    echo "seed-audit: $f mints a stream root — accept a *dist.Stream (or derive via dist.Unseeded) instead" >&2
    fail=1
  fi
done

if [ "$fail" -ne 0 ]; then
  echo "seed-audit: FAILED — the seeding spine has a leak (see DESIGN.md 'Seeding spine')" >&2
  exit 1
fi
echo "seed-audit: ok"
