// Benchmarks regenerating every table- and figure-shaped exhibit of the
// paper (DESIGN.md index E1–E13). Each benchmark executes the same
// experiment code as `cmd/experiments`; reported ns/op is wall time of one
// full experiment at the benchmark scale factor. Run with:
//
//	go test -bench=. -benchmem
//
// Rendered tables from a representative run are recorded in EXPERIMENTS.md.
package gopilot_test

import (
	"testing"

	"gopilot/internal/experiments"
)

// benchScale compresses modeled time aggressively: benchmarks check that
// the experiments run and give the harness stable per-exhibit timings.
const benchScale = 4000

// BenchmarkTable1_Scenarios regenerates Table I (E1): all five application
// scenarios through one Pilot-API.
func BenchmarkTable1_Scenarios(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table1(benchScale); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2_PilotOverhead regenerates the pilot startup/overhead
// characterization (E2).
func BenchmarkTable2_PilotOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.PilotOverhead(benchScale, 64); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2_RexScaling regenerates replica-exchange strong scaling
// with the analytical model (E3).
func BenchmarkTable2_RexScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RexScaling(benchScale); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2_PilotData regenerates the data-aware vs data-oblivious
// comparison (E4).
func BenchmarkTable2_PilotData(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.PilotData(benchScale); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2_MapReduce regenerates Pilot-Hadoop wordcount strong
// scaling (E5).
func BenchmarkTable2_MapReduce(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.MapReduceScaling(benchScale); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2_PilotMemory regenerates the iterative K-Means
// memory-vs-disk comparison (E6).
func BenchmarkTable2_PilotMemory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.PilotMemory(benchScale); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2_Streaming regenerates the throughput/latency scaling of
// Pilot-Streaming (E7).
func BenchmarkTable2_Streaming(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Streaming(benchScale, 600); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2_Serverless regenerates the cluster-vs-serverless stream
// processing comparison (E7b, [73]).
func BenchmarkTable2_Serverless(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ServerlessStreaming(benchScale, 400); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2_ThroughputModel regenerates the statistical throughput
// model fit + holdout validation (E8).
func BenchmarkTable2_ThroughputModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.ThroughputModel(benchScale, 400); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStreaming_Million regenerates the million-message data-plane
// exhibit (E13): 10⁶ messages through 8 partitions and a 4→5→4-worker
// consumer group with backpressure. Its ns/op and allocs/op pin the
// segmented zero-copy log's budget — run with -benchmem (make bench), and
// see BENCH_baseline.json's allocs_per_op gate.
func BenchmarkStreaming_Million(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.MillionMessages(benchScale, 1_000_000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLateBinding regenerates the direct-vs-pilot comparison (E9).
func BenchmarkLateBinding(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.LateBinding(benchScale); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDynamicScaling regenerates the runtime cloud-bursting study
// (E9b, R3 dynamism).
func BenchmarkDynamicScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.DynamicScaling(benchScale); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5_Loop regenerates the automated build-assess-refine loop
// (E10, Figure 5).
func BenchmarkFig5_Loop(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.Fig5Loop(benchScale, 300); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_Algorithm regenerates the algorithm-vs-scale-out
// ablation (E11).
func BenchmarkAblation_Algorithm(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationAlgorithm(benchScale); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEnKF_Adaptive regenerates the adaptive EnKF study (E12).
func BenchmarkEnKF_Adaptive(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.EnKFAdaptive(benchScale); err != nil {
			b.Fatal(err)
		}
	}
}
