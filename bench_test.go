// Benchmarks regenerating every table- and figure-shaped exhibit of the
// paper (DESIGN.md index E1–E13). Each benchmark executes the same
// experiment code as `cmd/experiments`; reported ns/op is wall time of one
// full experiment at the benchmark scale factor. Run with:
//
//	go test -bench=. -benchmem
//
// Rendered tables from a representative run are recorded in EXPERIMENTS.md.
package gopilot_test

import (
	"os"
	"runtime"
	"testing"

	"gopilot/internal/experiments"
)

// benchScale compresses modeled time aggressively: benchmarks check that
// the experiments run and give the harness stable per-exhibit timings.
const benchScale = 4000

// BenchmarkTable1_Scenarios regenerates Table I (E1): all five application
// scenarios through one Pilot-API.
func BenchmarkTable1_Scenarios(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table1(benchScale); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2_PilotOverhead regenerates the pilot startup/overhead
// characterization (E2).
func BenchmarkTable2_PilotOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.PilotOverhead(benchScale, 64); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2_RexScaling regenerates replica-exchange strong scaling
// with the analytical model (E3).
func BenchmarkTable2_RexScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RexScaling(benchScale); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2_PilotData regenerates the data-aware vs data-oblivious
// comparison (E4).
func BenchmarkTable2_PilotData(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.PilotData(benchScale); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2_MapReduce regenerates Pilot-Hadoop wordcount strong
// scaling (E5).
func BenchmarkTable2_MapReduce(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.MapReduceScaling(benchScale); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2_PilotMemory regenerates the iterative K-Means
// memory-vs-disk comparison (E6).
func BenchmarkTable2_PilotMemory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.PilotMemory(benchScale); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2_Streaming regenerates the throughput/latency scaling of
// Pilot-Streaming (E7).
func BenchmarkTable2_Streaming(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Streaming(benchScale, 600); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2_Serverless regenerates the cluster-vs-serverless stream
// processing comparison (E7b, [73]).
func BenchmarkTable2_Serverless(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ServerlessStreaming(benchScale, 400); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2_ThroughputModel regenerates the statistical throughput
// model fit + holdout validation (E8).
func BenchmarkTable2_ThroughputModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.ThroughputModel(benchScale, 400); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStreaming_Million regenerates the million-message data-plane
// exhibit (E13): 10⁶ messages through 8 partitions and a 4→5→4-worker
// consumer group with backpressure. Its ns/op and allocs/op pin the
// segmented zero-copy log's budget — run with -benchmem (make bench), and
// see BENCH_baseline.json's allocs_per_op gate.
func BenchmarkStreaming_Million(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.MillionMessages(benchScale, 1_000_000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStreaming_TenMillion is the 10⁷-message E13 variant: ten times
// BenchmarkStreaming_Million's traffic through the same topology, gated on
// the per-message allocation budget (≤0.08 allocs/msg, measured via
// runtime.MemStats across the whole run, GC included). The point is
// asymptotic: fixed-cost allocations (brokers, worker stacks, series
// growth) amortize to noise at 10⁷ messages, so what remains is the true
// per-message cost of the data plane — a change that reintroduces even a
// fractional per-message allocation fails here long before it trips the
// per-op gate on the 10⁶ exhibit. The budget covers the replicated plane
// (replication 3: every publish batch crosses two paced catch-up links,
// whose park/wake registrations are the dominant per-batch cost — 0.053
// measured vs 0.0093 for the single-copy plane); a per-message copy
// (~5 allocs/msg) still fails by two orders of magnitude. Opt-in because
// one op takes ~10× the Million exhibit's wall time:
//
//	GOPILOT_BENCH_10M=1 go test -bench 'TenMillion' -benchtime 1x -run '^$' .
func BenchmarkStreaming_TenMillion(b *testing.B) {
	if os.Getenv("GOPILOT_BENCH_10M") == "" {
		b.Skip("opt-in: set GOPILOT_BENCH_10M=1 (one op ≈ 10× BenchmarkStreaming_Million)")
	}
	const msgs = 10_000_000
	for i := 0; i < b.N; i++ {
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		if _, err := experiments.MillionMessages(benchScale, msgs); err != nil {
			b.Fatal(err)
		}
		runtime.ReadMemStats(&after)
		perMsg := float64(after.Mallocs-before.Mallocs) / float64(msgs)
		b.ReportMetric(perMsg, "allocs/msg")
		if perMsg > 0.08 {
			b.Fatalf("allocation budget blown: %.4f allocs/msg > 0.08 (%d allocations for %d messages)",
				perMsg, after.Mallocs-before.Mallocs, int64(msgs))
		}
	}
}

// BenchmarkLateBinding regenerates the direct-vs-pilot comparison (E9).
func BenchmarkLateBinding(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.LateBinding(benchScale); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDynamicScaling regenerates the runtime cloud-bursting study
// (E9b, R3 dynamism).
func BenchmarkDynamicScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.DynamicScaling(benchScale); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5_Loop regenerates the automated build-assess-refine loop
// (E10, Figure 5).
func BenchmarkFig5_Loop(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.Fig5Loop(benchScale, 300); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_Algorithm regenerates the algorithm-vs-scale-out
// ablation (E11).
func BenchmarkAblation_Algorithm(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationAlgorithm(benchScale); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEnKF_Adaptive regenerates the adaptive EnKF study (E12).
func BenchmarkEnKF_Adaptive(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.EnKFAdaptive(benchScale); err != nil {
			b.Fatal(err)
		}
	}
}
