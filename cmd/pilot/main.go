// Command pilot runs a synthetic bag-of-tasks workload through the
// Pilot-API against a chosen simulated infrastructure — a minimal CLI for
// exploring the abstraction's behaviour interactively.
//
// Usage:
//
//	pilot [-backend hpc|htc|cloud|local] [-tasks N] [-cores N]
//	      [-task-seconds S] [-task-cv CV] [-queue-seconds S] [-scale F]
//
// The tool prints the pilot's startup time, per-task statistics and the
// workload makespan in modeled time.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"gopilot/internal/core"
	"gopilot/internal/dist"
	"gopilot/internal/experiments"
	"gopilot/internal/metrics"
	"gopilot/internal/miniapp"
)

func main() {
	backend := flag.String("backend", "hpc", "infrastructure: local, hpc, htc, cloud, yarn")
	tasks := flag.Int("tasks", 64, "number of tasks")
	cores := flag.Int("cores", 16, "pilot size in cores")
	taskSeconds := flag.Float64("task-seconds", 30, "mean task service time (modeled seconds)")
	taskCV := flag.Float64("task-cv", 0.2, "task time coefficient of variation")
	queueSeconds := flag.Float64("queue-seconds", 120, "mean batch queue wait (modeled seconds)")
	clockMode := flag.String("clock", "virtual", "clock mode: virtual (zero-wall-time, deterministic), scaled or real")
	scale := flag.Float64("scale", experiments.DefaultScale, "virtual time compression factor (scaled clock only)")
	seed := flag.Int64("seed", 42, "workload seed")
	flag.Parse()

	mode, err := experiments.ParseClockMode(*clockMode)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	experiments.DefaultClockMode = mode

	urls := map[string]string{
		"local": "local://localhost",
		"hpc":   "hpc://stampede",
		"htc":   "htc://osg",
		"cloud": "cloud://ec2",
		"yarn":  "yarn://yarn",
	}
	url, ok := urls[*backend]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown backend %q\n", *backend)
		os.Exit(2)
	}

	tb := experiments.NewTestbed(experiments.TestbedConfig{
		Scale: *scale, QueueWaitMean: *queueSeconds, Seed: *seed,
	})
	defer tb.Close()
	mgr := tb.NewManager(nil)

	fmt.Printf("submitting pilot (%d cores) to %s ...\n", *cores, url)
	p, err := mgr.SubmitPilot(core.PilotDescription{
		Name: "cli", Resource: url, Cores: *cores, Walltime: 24 * time.Hour,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	w := miniapp.TaskWorkload{
		Name:     "cli",
		Count:    *tasks,
		Duration: dist.NormalFrom(tb.Root.Named("miniapp/task-duration"), *taskSeconds, *taskSeconds**taskCV),
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	makespan, err := w.SubmitAndWait(ctx, mgr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	wait, run, turnaround := mgr.UnitMetrics()

	t := metrics.NewTable("workload summary", "metric", "value")
	t.AddRow("backend", url)
	t.AddRow("pilot startup (queue wait + dispatch)", metrics.FormatDuration(p.StartupTime()))
	t.AddRow("tasks", *tasks)
	t.AddRow("makespan (modeled)", metrics.FormatDuration(makespan))
	t.AddRow("task throughput", fmt.Sprintf("%.2f tasks/s", float64(*tasks)/makespan.Seconds()))
	t.AddRow("mean task wait", fmt.Sprintf("%.2fs", wait.Mean))
	t.AddRow("mean task runtime", fmt.Sprintf("%.2fs", run.Mean))
	t.AddRow("p95 turnaround", fmt.Sprintf("%.2fs", turnaround.P95))
	t.AddRow("units completed by pilot", p.UnitsCompleted())
	t.Render(os.Stdout)
}
