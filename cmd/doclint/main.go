// Command doclint enforces the repository's documentation floor: every
// package (and every command) must carry a real package comment — present,
// and substantial enough to orient a reader (at least two lines or 120
// characters), not a placeholder one-liner. `go vet` checks comment
// *placement* but not existence, so this walks the tree with go/parser and
// fails CI when a package goes dark.
//
// Usage:
//
//	go run ./cmd/doclint [root ...]
//
// With no arguments the current directory is walked. Test files,
// generated trees (testdata, .git) and vendored code are skipped. Exit
// status 1 means at least one package is missing or under-documented.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// minChars and minLines define "real": a comment shorter than both reads
// as a stub left to satisfy a linter, not documentation.
const (
	minChars = 120
	minLines = 2
)

func main() {
	roots := os.Args[1:]
	if len(roots) == 0 {
		roots = []string{"."}
	}
	// Best doc comment seen per package directory.
	pkgs := map[string]string{}
	fset := token.NewFileSet()
	for _, root := range roots {
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				name := d.Name()
				if name == ".git" || name == "testdata" || name == "vendor" {
					return filepath.SkipDir
				}
				return nil
			}
			if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
				return nil
			}
			dir := filepath.Dir(path)
			if _, seen := pkgs[dir]; !seen {
				pkgs[dir] = ""
			}
			f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.PackageClauseOnly)
			if err != nil {
				return fmt.Errorf("doclint: %s: %w", path, err)
			}
			if doc := docText(f); len(doc) > len(pkgs[dir]) {
				pkgs[dir] = doc
			}
			return nil
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}

	dirs := make([]string, 0, len(pkgs))
	for dir := range pkgs {
		dirs = append(dirs, dir)
	}
	sort.Strings(dirs)
	failures := 0
	for _, dir := range dirs {
		best := pkgs[dir]
		switch {
		case best == "":
			fmt.Printf("doclint: %s: package has no package comment\n", dir)
			failures++
		case len(best) < minChars && strings.Count(best, "\n")+1 < minLines:
			fmt.Printf("doclint: %s: package comment is a stub (%d chars) — say what the package is and why it exists\n",
				dir, len(best))
			failures++
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "doclint: %d package(s) under-documented\n", failures)
		os.Exit(1)
	}
	fmt.Printf("doclint: ok (%d packages)\n", len(dirs))
}

// docText returns the file's package comment text, trimmed.
func docText(f *ast.File) string {
	if f.Doc == nil {
		return ""
	}
	return strings.TrimSpace(f.Doc.Text())
}
