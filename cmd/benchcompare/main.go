// Command benchcompare gates performance regressions: it parses `go test
// -bench` output from stdin, compares each benchmark's ns/op against the
// reference timings in BENCH_baseline.json, and exits non-zero when any
// exhibit regresses more than the threshold.
//
// Usage (see `make bench-compare`):
//
//	go test -bench=. -benchtime=3x -run '^$' . | benchcompare [-baseline BENCH_baseline.json] [-write fresh.json]
//
// A regression must exceed both the relative threshold (-max-regress,
// default 10%) and the absolute floor (-floor, default 25ms) to fail the
// gate: the exhibits are CPU-bound on the virtual clock, so single-digit
// millisecond deltas are scheduler noise, not regressions. Improvements
// are reported but never fail. Benchmarks missing from the baseline (new
// exhibits) are reported as warnings; baseline entries missing from the
// run (renames, partially-crashed suites) fail the gate, so the baseline
// gets regenerated deliberately (see BENCH_baseline.json's "command"
// field).
//
// Since the parallel compute phase landed, exhibit wall times depend on
// core count: the comparison header prints the current GOMAXPROCS/NumCPU
// next to the baseline's recorded parallelism, and a mismatch is called
// out so a "regression" measured on fewer cores than the baseline reads
// as what it is. -write records the run as a fresh baseline-format JSON
// (CI uploads it as a per-PR artifact, making the perf trajectory
// auditable without regenerating the committed baseline).
//
// Besides ns/op, the gate also compares allocs/op (requires -benchmem
// output) for every benchmark listed in the baseline's "allocs_per_op"
// map — the streaming exhibits live there, locking in the segmented
// log's zero-copy win: a change that reintroduces per-message copies
// fails CI even if it is fast enough to slip past the time gate. Allocs
// are near-deterministic, so the relative threshold is shared with ns/op
// but the absolute floor is its own flag (-alloc-floor, default 512/op).
// For the message-count exhibits (BenchmarkStreaming_Million and the
// opt-in TenMillion variant) every report line also derives ns/msg and
// allocs/msg — the units the ROADMAP's raw-speed targets are stated in —
// and the failure summary names each allocs-gate failure with its delta
// percentage so the last lines of a red log identify the regression
// without scrolling back to the FAIL lines.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"
)

type baseline struct {
	Recorded   string             `json:"recorded"`
	Command    string             `json:"command"`
	Go         string             `json:"go,omitempty"`
	CPU        string             `json:"cpu,omitempty"`
	GoMaxProcs int                `json:"gomaxprocs,omitempty"`
	NumCPU     int                `json:"num_cpu,omitempty"`
	Clock      string             `json:"clock,omitempty"`
	Note       string             `json:"note,omitempty"`
	NsPerOp    map[string]float64 `json:"ns_per_op"`
	// AllocsPerOp lists the benchmarks whose allocation count is gated
	// (the streaming data-plane exhibits). Benchmarks absent from this
	// map are timed but not alloc-checked.
	AllocsPerOp map[string]float64 `json:"allocs_per_op,omitempty"`
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+)\s+ns/op(?:\s+([0-9.]+)\s+B/op\s+([0-9.]+)\s+allocs/op)?`)

// msgsPerOp maps the message-count exhibits to the number of messages one
// benchmark op pushes through the data plane, so the report can derive
// ns/msg and allocs/msg — the units the ROADMAP's raw-speed targets and
// the zero-copy budget are stated in — next to the raw per-op figures.
var msgsPerOp = map[string]float64{
	"BenchmarkStreaming_Million":    1_000_000,
	"BenchmarkStreaming_TenMillion": 10_000_000,
}

// perMsg renders " = N ns/msg"-style context for message-count exhibits,
// or "" for everything else.
func perMsg(name string, perOp float64, unit string) string {
	msgs, ok := msgsPerOp[name]
	if !ok {
		return ""
	}
	return fmt.Sprintf(" = %.4g %s/msg", perOp/msgs, unit)
}

func main() {
	basePath := flag.String("baseline", "BENCH_baseline.json", "baseline timings file")
	maxRegress := flag.Float64("max-regress", 10, "max allowed regression in percent")
	floor := flag.Duration("floor", 25_000_000, "absolute slowdown a regression must also exceed")
	allocFloor := flag.Float64("alloc-floor", 512, "absolute allocs/op growth an alloc regression must also exceed")
	writePath := flag.String("write", "", "also record this run as a baseline-format JSON at the given path")
	flag.Parse()

	raw, err := os.ReadFile(*basePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcompare: %v\n", err)
		os.Exit(2)
	}
	var base baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchcompare: parsing %s: %v\n", *basePath, err)
		os.Exit(2)
	}

	got := map[string]float64{}
	gotAllocs := map[string]float64{}
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // pass the bench output through
		if m := benchLine.FindStringSubmatch(line); m != nil {
			if v, err := strconv.ParseFloat(m[2], 64); err == nil {
				got[m[1]] = v
			}
			if m[4] != "" {
				if a, err := strconv.ParseFloat(m[4], 64); err == nil {
					gotAllocs[m[1]] = a
				}
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchcompare: reading stdin: %v\n", err)
		os.Exit(2)
	}
	if len(got) == 0 {
		fmt.Fprintln(os.Stderr, "benchcompare: no benchmark lines on stdin")
		os.Exit(2)
	}

	// The compute phase makes the long-pole exhibits scale with cores, so
	// a delta is only meaningful against the parallelism it was recorded
	// at. Print both sides; flag a mismatch loudly.
	procs, cores := runtime.GOMAXPROCS(0), runtime.NumCPU()
	fmt.Printf("benchcompare: this run GOMAXPROCS=%d NumCPU=%d; baseline GOMAXPROCS=%d NumCPU=%d\n",
		procs, cores, base.GoMaxProcs, base.NumCPU)
	if base.GoMaxProcs != 0 && base.GoMaxProcs != procs {
		fmt.Printf("benchcompare: NOTE core count differs from baseline — compute-phase exhibits (MapReduce, Ablation) shift with parallelism\n")
	}

	if *writePath != "" {
		fresh := baseline{
			Recorded: time.Now().UTC().Format("2006-01-02"),
			Command:  base.Command,
			Go:       runtime.Version() + " " + runtime.GOOS + "/" + runtime.GOARCH,
			// CPU model is unknowable portably from here; leave it empty
			// rather than inherit the committed baseline's machine.
			GoMaxProcs: procs,
			NumCPU:     cores,
			Clock:      base.Clock,
			Note:       "fresh run recorded by benchcompare -write (per-PR artifact); compare against the committed baseline at matching GOMAXPROCS",
			NsPerOp:    got,
		}
		// The artifact records allocs only where the committed baseline
		// gates them, so the two files stay directly diffable.
		if len(base.AllocsPerOp) > 0 {
			fresh.AllocsPerOp = map[string]float64{}
			for name := range base.AllocsPerOp {
				if a, ok := gotAllocs[name]; ok {
					fresh.AllocsPerOp[name] = a
				}
			}
		}
		out, err := json.MarshalIndent(fresh, "", "  ")
		if err == nil {
			err = os.WriteFile(*writePath, append(out, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchcompare: writing %s: %v\n", *writePath, err)
			os.Exit(2)
		}
		fmt.Printf("benchcompare: wrote fresh timings to %s\n", *writePath)
	}

	failures := 0
	var allocFails []string
	for name, ref := range base.NsPerOp {
		cur, ok := got[name]
		if !ok {
			// A baseline benchmark absent from the run means a rename or a
			// partially-crashed bench suite — fail rather than let a green
			// pipe hide it.
			fmt.Printf("benchcompare: FAIL %s in baseline but not in run\n", name)
			failures++
			continue
		}
		deltaPct := (cur - ref) / ref * 100
		switch {
		case cur > ref*(1+*maxRegress/100) && cur-ref > float64(*floor):
			fmt.Printf("benchcompare: FAIL %s regressed %+.1f%% (%.1fms -> %.1fms)%s\n",
				name, deltaPct, ref/1e6, cur/1e6, perMsg(name, cur, "ns"))
			failures++
		default:
			fmt.Printf("benchcompare: ok   %s %+.1f%% (%.1fms -> %.1fms)%s\n",
				name, deltaPct, ref/1e6, cur/1e6, perMsg(name, cur, "ns"))
		}
	}
	for name := range got {
		if _, ok := base.NsPerOp[name]; !ok {
			fmt.Printf("benchcompare: WARN %s not in baseline (regenerate %s)\n", name, *basePath)
		}
	}
	// Allocation gate: only benchmarks the baseline lists are checked.
	for name, ref := range base.AllocsPerOp {
		cur, ok := gotAllocs[name]
		if !ok {
			fmt.Printf("benchcompare: FAIL %s has a gated allocs/op but the run reported none (missing -benchmem?)\n", name)
			failures++
			allocFails = append(allocFails, fmt.Sprintf("%s (no allocs/op in run)", name))
			continue
		}
		deltaPct := (cur - ref) / ref * 100
		if cur > ref*(1+*maxRegress/100) && cur-ref > *allocFloor {
			fmt.Printf("benchcompare: FAIL %s allocs regressed %+.1f%% (%.0f -> %.0f allocs/op)%s\n",
				name, deltaPct, ref, cur, perMsg(name, cur, "allocs"))
			failures++
			allocFails = append(allocFails, fmt.Sprintf("%s %+.1f%%", name, deltaPct))
		} else {
			fmt.Printf("benchcompare: ok   %s allocs %+.1f%% (%.0f -> %.0f allocs/op)%s\n",
				name, deltaPct, ref, cur, perMsg(name, cur, "allocs"))
		}
	}
	if failures > 0 {
		// Not every failure is a timing regression (missing benchmarks and
		// absent allocs/op also count) — point the log reader at the FAIL
		// lines, and name the allocation failures with their deltas here so
		// the summary alone says which exhibits broke the zero-copy budget
		// and by how much.
		fmt.Fprintf(os.Stderr, "benchcompare: %d check(s) failed (time or allocs, see FAIL lines) vs %s (recorded %s at GOMAXPROCS=%d)\n",
			failures, *basePath, base.Recorded, base.GoMaxProcs)
		if len(allocFails) > 0 {
			fmt.Fprintf(os.Stderr, "benchcompare: allocs gate failures: %s\n", strings.Join(allocFails, ", "))
		}
		os.Exit(1)
	}
	fmt.Printf("benchcompare: all %d benchmarks within %.0f%% of baseline\n", len(got), *maxRegress)
}
