// Command chaosreplay drives the chaos workflow from the command line:
//
//	chaosreplay -fuzz 25                  # scan 25 seeds, print the first reproducing seed
//	chaosreplay -seed 17                  # replay one seed and verify bit-identity
//	chaosreplay -seed 17 -bisect          # minimal failing fault prefix + first divergent decision
//	chaosreplay -bug -churn 6 -fuzz 8 ... # prove the suite catches the reintroduced barrier bug
//	chaosreplay -handoffbug -shardloss 1 -churn 4 -replicalag 2 -fuzz 8
//	                                      # same for the stale-handoff defect: a shard-loss
//	                                      # promotion restores a stale commit mark and skips
//	                                      # divergence repair; the cursor-rewind and
//	                                      # diverged-replica invariants must catch it
//
// Every run is deterministic: a seed that fails here fails identically
// everywhere, and the recorded vclock schedule lets two runs be compared
// decision-by-decision. Exit status: 0 all invariants held, 1 a violation
// was found (the reproducing seed is printed), 2 usage error.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"gopilot/internal/chaos"
	"gopilot/internal/experiments"
	"gopilot/internal/vclock"
)

func main() {
	fuzz := flag.Int("fuzz", 0, "fuzz mode: run this many consecutive seeds starting at -seed0")
	seed0 := flag.Int64("seed0", 0, "first seed for -fuzz")
	seed := flag.Int64("seed", 0, "seed to replay (ignored with -fuzz)")
	bisect := flag.Bool("bisect", false, "on a failing replay, bisect to the minimal fault prefix and pinpoint the first divergent decision")
	bug := flag.Bool("bug", false, "reintroduce the barrier-carry defect (test hook) so the suite has something to catch")
	handoffBug := flag.Bool("handoffbug", false, "reintroduce the stale-handoff defect (test hook): shard-loss promotions restore a stale offset checkpoint")
	messages := flag.Int("messages", 0, "stream messages to produce (0 = scenario default)")
	units := flag.Int("units", 0, "batch units to submit (0 = scenario default)")
	cost := flag.Duration("cost", 0, "modeled per-message handling cost (0 = scenario default)")
	churn := flag.Int("churn", 0, "override the fault mix with this many worker-churn faults (plus the other override-mix flags, if any)")
	shardloss := flag.Int("shardloss", 0, "add this many shard-loss faults to the override mix")
	replicalag := flag.Int("replicalag", 0, "add this many replica-lag windows to the override mix")
	tornrepl := flag.Int("tornrepl", 0, "add this many torn-replication windows to the override mix")
	horizon := flag.Duration("horizon", 0, "fault-plan horizon (only with an override mix; 0 = 3m)")
	verbose := flag.Bool("v", false, "print per-seed results in fuzz mode and full injection logs")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "unexpected arguments: %v\n", flag.Args())
		os.Exit(2)
	}

	opts := func(s int64, maxFaults int, rec vclock.RecorderConfig) experiments.ChaosOptions {
		o := experiments.ChaosOptions{
			Seed: s, BarrierBug: *bug, HandoffBug: *handoffBug, MaxFaults: maxFaults, Recorder: rec,
			Messages: *messages, Units: *units, CostPerMessage: *cost,
		}
		if *churn > 0 || *shardloss > 0 || *replicalag > 0 || *tornrepl > 0 {
			h := *horizon
			if h <= 0 {
				h = 3 * time.Minute
			}
			counts := map[chaos.Kind]int{}
			if *churn > 0 {
				counts[chaos.WorkerChurn] = *churn
			}
			if *shardloss > 0 {
				counts[chaos.ShardLoss] = *shardloss
			}
			if *replicalag > 0 {
				counts[chaos.ReplicaLag] = *replicalag
			}
			if *tornrepl > 0 {
				counts[chaos.TornReplication] = *tornrepl
			}
			o.Faults = chaos.Config{Horizon: h, Counts: counts}
		}
		return o
	}
	run := func(s int64, maxFaults int, rec vclock.RecorderConfig) *experiments.ChaosReport {
		r, err := experiments.Chaos(opts(s, maxFaults, rec))
		if err != nil {
			fmt.Fprintf(os.Stderr, "seed %d: %v\n", s, err)
			os.Exit(2)
		}
		return r
	}

	if *fuzz > 0 {
		for s := *seed0; s < *seed0+int64(*fuzz); s++ {
			r := run(s, 0, vclock.RecorderConfig{})
			if *verbose {
				fmt.Printf("seed %-6d faults=%-3d hit=%-3d processed=%d/%d units=%d/%d ok=%v\n",
					s, len(r.Plan.Faults), hits(r), r.Processed, r.Produced,
					r.UnitsDone, r.UnitsFail, r.Ok())
			}
			if !r.Ok() {
				fmt.Printf("REPRODUCING SEED: %d\n", s)
				printViolations(r)
				fmt.Printf("replay: chaosreplay -seed %d%s -bisect\n", s, passthroughFlags())
				os.Exit(1)
			}
		}
		fmt.Printf("fuzz: %d seeds (%d..%d) clean\n", *fuzz, *seed0, *seed0+int64(*fuzz)-1)
		return
	}

	// Replay mode: run the seed twice and insist on bit-identity before
	// trusting anything else the run says.
	r := run(*seed, 0, vclock.RecorderConfig{})
	again := run(*seed, 0, vclock.RecorderConfig{})
	if r.StateHash != again.StateHash || r.Schedule.Hash != again.Schedule.Hash {
		fmt.Fprintf(os.Stderr, "seed %d is NOT deterministic: state %x/%x schedule %x/%x\n",
			*seed, r.StateHash, again.StateHash, r.Schedule.Hash, again.Schedule.Hash)
		os.Exit(2)
	}
	fmt.Printf("seed %d: faults=%d hit=%d processed=%d/%d units=%d done/%d failed rebalances=%d\n",
		*seed, len(r.Plan.Faults), hits(r), r.Processed, r.Produced,
		r.UnitsDone, r.UnitsFail, r.Rebalances)
	fmt.Printf("state hash %016x, schedule: %d decisions, hash %016x (replay verified)\n",
		r.StateHash, r.Schedule.Decisions, r.Schedule.Hash)
	if *verbose {
		for _, a := range r.Injected {
			fmt.Printf("  %s\n", a.Note)
		}
	}
	if r.Ok() {
		fmt.Println("all invariants held")
		return
	}
	printViolations(r)
	if *bisect {
		doBisect(r, run)
	}
	os.Exit(1)
}

// doBisect shrinks the failing plan to its minimal prefix, then compares
// the last passing and first failing prefixes' recorded schedules: the
// checkpoint chain names the divergent block, a re-run with an exact
// capture window over that block names the first divergent decision.
func doBisect(r *experiments.ChaosReport, run func(int64, int, vclock.RecorderConfig) *experiments.ChaosReport) {
	total := len(r.Plan.Faults)
	prefix := func(n int) int { // MaxFaults encoding: 0 keeps all, negative keeps none
		if n == 0 {
			return -1
		}
		return n
	}
	minimal := chaos.BisectFaults(total, func(n int) bool {
		return !run(r.Seed, prefix(n), vclock.RecorderConfig{}).Ok()
	})
	if minimal > total {
		fmt.Println("bisect: no prefix fails in isolation (violation needs the full plan's interleaving)")
		return
	}
	fmt.Printf("bisect: minimal failing prefix is %d of %d faults; last fault in it: %s\n",
		minimal, total, r.Plan.Faults[minimal-1])
	pass := run(r.Seed, prefix(minimal-1), vclock.RecorderConfig{})
	fail := run(r.Seed, minimal, vclock.RecorderConfig{})
	from, to, ok := chaos.FirstDivergentBlock(pass.Schedule, fail.Schedule)
	if !ok {
		// No common checkpoint differs: the traces part ways after the last
		// checkpoint. Capture from there to the shorter trace's end.
		from = (min64(pass.Schedule.Decisions, fail.Schedule.Decisions) / pass.Schedule.Stride) * pass.Schedule.Stride
		to = from + pass.Schedule.Stride
	}
	win := vclock.RecorderConfig{WindowFrom: from + 1, WindowTo: to + 1}
	pw := run(r.Seed, prefix(minimal-1), win)
	fw := run(r.Seed, minimal, win)
	i := chaos.FirstDivergence(pw.Schedule.Window, fw.Schedule.Window)
	if i < 0 {
		fmt.Printf("bisect: schedules agree through decision block [%d,%d); divergence is past the recorded range\n", from, to)
		return
	}
	a, b := pw.Schedule.Window[i], fw.Schedule.Window[i]
	fmt.Printf("first divergent decision: #%d\n", a.N)
	fmt.Printf("  passing prefix: %-8s seq=%-6d at=%v note=%q\n", a.Kind, a.Seq, a.At.Sub(vclock.Epoch), a.Note)
	fmt.Printf("  failing prefix: %-8s seq=%-6d at=%v note=%q\n", b.Kind, b.Seq, b.At.Sub(vclock.Epoch), b.Note)
}

func hits(r *experiments.ChaosReport) int {
	n := 0
	for _, a := range r.Injected {
		if a.Hit {
			n++
		}
	}
	return n
}

func printViolations(r *experiments.ChaosReport) {
	fmt.Printf("INVARIANT VIOLATIONS (%d):\n", len(r.Violations))
	for _, v := range r.Violations {
		fmt.Printf("  [%s] at %v: %s\n", v.Invariant, v.At, v.Detail)
	}
}

// passthroughFlags reprints the workload flags a reproducing command needs.
func passthroughFlags() string {
	s := ""
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "bug", "handoffbug", "churn", "shardloss", "replicalag", "tornrepl", "horizon", "messages", "units", "cost":
			if f.Name == "bug" || f.Name == "handoffbug" {
				s += " -" + f.Name
			} else {
				s += fmt.Sprintf(" -%s %v", f.Name, f.Value)
			}
		}
	})
	return s
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
