// Command miniapp runs a Mini-App framework parameter sweep — the paper's
// automated experiment methodology (§V.C, Fig. 5) — and emits CSV for
// downstream modeling.
//
// Usage:
//
//	miniapp [-kind stream|tasks] [-reps N] [-scale F] [-csv out.csv]
//
// kind=stream sweeps broker partitions × handler cost and records
// throughput/latency; kind=tasks sweeps pilot cores × task count and
// records makespan — the two workload families the paper's Mini-Apps
// cover (compute and streaming).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"gopilot/internal/core"
	"gopilot/internal/dist"
	"gopilot/internal/experiments"
	"gopilot/internal/miniapp"
)

func main() {
	kind := flag.String("kind", "stream", "sweep kind: stream or tasks")
	reps := flag.Int("reps", 1, "repetitions per configuration")
	clockMode := flag.String("clock", "virtual", "clock mode: virtual (zero-wall-time, deterministic), scaled or real")
	scale := flag.Float64("scale", experiments.DefaultScale, "virtual time compression factor (scaled clock only)")
	csvPath := flag.String("csv", "", "write CSV to this file (default stdout table only)")
	flag.Parse()

	mode, err := experiments.ParseClockMode(*clockMode)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	experiments.DefaultClockMode = mode

	var runner miniapp.Runner
	switch *kind {
	case "stream":
		runner = miniapp.Runner{
			Name:        "stream-sweep",
			Repetitions: *reps,
			Design: miniapp.Design{Factors: []miniapp.Factor{
				{Name: "partitions", Levels: []float64{1, 2, 4, 8}},
				{Name: "handler_ms", Levels: []float64{5, 10, 20}},
			}},
			Run: func(ctx context.Context, cfg map[string]float64, _ int) (map[string]float64, error) {
				tb := experiments.NewTestbed(experiments.TestbedConfig{Scale: *scale, QueueWaitMean: 5, Seed: 31})
				defer tb.Close()
				parts := int(cfg["partitions"])
				tput, lat, err := experiments.StreamTrial(tb, parts, parts, 600,
					time.Duration(cfg["handler_ms"])*time.Millisecond)
				if err != nil {
					return nil, err
				}
				return map[string]float64{
					"throughput_msg_s": tput,
					"latency_p50_s":    lat.Median,
					"latency_p95_s":    lat.P95,
				}, nil
			},
		}
	case "tasks":
		runner = miniapp.Runner{
			Name:        "task-sweep",
			Repetitions: *reps,
			Design: miniapp.Design{Factors: []miniapp.Factor{
				{Name: "cores", Levels: []float64{4, 8, 16, 32}},
				{Name: "tasks", Levels: []float64{32, 128}},
			}},
			Run: func(ctx context.Context, cfg map[string]float64, rep int) (map[string]float64, error) {
				tb := experiments.NewTestbed(experiments.TestbedConfig{Scale: *scale, QueueWaitMean: 10, Seed: 32})
				defer tb.Close()
				mgr := tb.NewManager(nil)
				if _, err := mgr.SubmitPilot(core.PilotDescription{
					Name: "sweep", Resource: "local://localhost", Cores: int(cfg["cores"]), Walltime: 6 * time.Hour,
				}); err != nil {
					return nil, err
				}
				w := miniapp.TaskWorkload{
					Name:     "sweep",
					Count:    int(cfg["tasks"]),
					Duration: dist.LogNormalFrom(tb.Root.Named("miniapp/task-duration").SplitLabel(uint64(rep)), 20, 0.3),
				}
				runCtx, cancel := context.WithTimeout(ctx, 5*time.Minute)
				defer cancel()
				makespan, err := w.SubmitAndWait(runCtx, mgr)
				if err != nil {
					return nil, err
				}
				return map[string]float64{
					"makespan_s":   makespan.Seconds(),
					"throughput_s": cfg["tasks"] / makespan.Seconds(),
				}, nil
			},
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown kind %q\n", *kind)
		os.Exit(2)
	}

	rs, err := runner.Execute(context.Background())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	rs.Table().Render(os.Stdout)
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := rs.WriteCSV(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *csvPath)
	}
}
