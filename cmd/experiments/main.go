// Command experiments regenerates every table- and figure-shaped result of
// the paper's evaluation (DESIGN.md index E1–E13) on the simulated
// testbed, printing the same rows the paper reports.
//
// Usage:
//
//	experiments [-run name] [-clock virtual|scaled|real] [-scale factor] [-list]
//
// With no -run flag every experiment executes in order. -clock selects the
// time substrate (default "virtual": the conservative virtual-time
// executor — zero wall time per modeled sleep, bit-reproducible from the
// seed). -clock=scaled replays modeled time in compressed wall time for
// live demos, with -scale setting the compression (default 1000: one
// modeled second per wall millisecond); -clock=real runs uncompressed.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"gopilot/internal/experiments"
	"gopilot/internal/metrics"
)

type experiment struct {
	name string
	desc string
	run  func(scale float64) (*metrics.Table, []string, error)
}

func table(f func(float64) (*metrics.Table, error)) func(float64) (*metrics.Table, []string, error) {
	return func(s float64) (*metrics.Table, []string, error) {
		t, err := f(s)
		return t, nil, err
	}
}

func main() {
	runName := flag.String("run", "", "run only the named experiment (see -list)")
	clockMode := flag.String("clock", "virtual", "clock mode: virtual (zero-wall-time, deterministic), scaled or real")
	scale := flag.Float64("scale", experiments.DefaultScale, "virtual time compression factor (scaled clock only)")
	list := flag.Bool("list", false, "list experiments and exit")
	csvDir := flag.String("csv", "", "also write each table as CSV into this directory")
	flag.Parse()

	mode, err := experiments.ParseClockMode(*clockMode)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	experiments.DefaultClockMode = mode

	all := []experiment{
		{"table1", "Table I — five application scenarios on one abstraction (E1)", table(experiments.Table1)},
		{"overhead", "Table II — pilot startup & task overhead per backend (E2)", table(func(s float64) (*metrics.Table, error) {
			return experiments.PilotOverhead(s, 128)
		})},
		{"rex", "Table II — replica-exchange strong scaling + analytical model (E3)", table(experiments.RexScaling)},
		{"pilotdata", "Table II — Pilot-Data data-aware vs data-oblivious (E4)", table(experiments.PilotData)},
		{"mapreduce", "Table II — Pilot-Hadoop wordcount strong scaling (E5)", table(experiments.MapReduceScaling)},
		{"memory", "Table II — Pilot-Memory vs Pilot-Data for iterative K-Means (E6)", table(experiments.PilotMemory)},
		{"streaming", "Table II — Pilot-Streaming throughput & latency (E7)", table(func(s float64) (*metrics.Table, error) {
			return experiments.Streaming(s, 1500)
		})},
		{"serverless", "Table II — cluster vs serverless stream processing (E7b)", table(func(s float64) (*metrics.Table, error) {
			return experiments.ServerlessStreaming(s, 1000)
		})},
		{"model", "Table II — statistical throughput model, fit + holdout (E8)", func(s float64) (*metrics.Table, []string, error) {
			return experiments.ThroughputModel(s, 800)
		}},
		{"latebinding", "E9 — direct submission vs pilot under queue waits", table(experiments.LateBinding)},
		{"dynamic", "E9b — runtime cloud bursting (R3 dynamism)", table(experiments.DynamicScaling)},
		{"fig5", "Fig. 5 — automated build-assess-refine loop", func(s float64) (*metrics.Table, []string, error) {
			return experiments.Fig5Loop(s, 600)
		}},
		{"ablation", "E11 — algorithm optimization vs scale-out (Hausdorff)", table(experiments.AblationAlgorithm)},
		{"enkf", "E12 — adaptive EnKF ensemble (runtime task creation)", table(experiments.EnKFAdaptive)},
		{"million", "E13 — million-message streaming data plane (consumer group, backpressure)", table(func(s float64) (*metrics.Table, error) {
			return experiments.MillionMessages(s, 1_000_000)
		})},
	}

	if *list {
		for _, e := range all {
			fmt.Printf("%-12s %s\n", e.name, e.desc)
		}
		return
	}

	names := map[string]bool{}
	for _, e := range all {
		names[e.name] = true
	}
	if *runName != "" && !names[*runName] {
		keys := make([]string, 0, len(names))
		for k := range names {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Fprintf(os.Stderr, "unknown experiment %q; available: %s\n", *runName, strings.Join(keys, ", "))
		os.Exit(2)
	}

	failures := 0
	for _, e := range all {
		if *runName != "" && e.name != *runName {
			continue
		}
		fmt.Printf("### %s: %s\n", e.name, e.desc)
		start := time.Now()
		tbl, notes, err := e.run(*scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s failed: %v\n", e.name, err)
			failures++
			continue
		}
		tbl.Render(os.Stdout)
		for _, n := range notes {
			fmt.Println("  " + n)
		}
		fmt.Printf("  [%s wall]\n\n", time.Since(start).Round(time.Millisecond))
		if *csvDir != "" {
			if err := writeCSV(*csvDir, e.name, tbl); err != nil {
				fmt.Fprintf(os.Stderr, "csv for %s: %v\n", e.name, err)
				failures++
			}
		}
	}
	if failures > 0 {
		os.Exit(1)
	}
}

// writeCSV persists one experiment's table for downstream analysis — the
// Mini-App framework's reproducibility requirement applied to the
// experiment driver itself.
func writeCSV(dir, name string, tbl *metrics.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, name+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	return tbl.WriteCSV(f)
}
