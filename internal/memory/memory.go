// Package memory implements Pilot-Memory [68]: an in-memory store
// co-located with pilot resources so iterative applications (the paper's
// Table I "Iterative" scenario — model training, K-Means) can cache their
// working set between generations of tasks instead of re-reading it from
// storage every pass.
//
// The cache models memory bandwidth (Get/Put cost size/bandwidth in
// virtual time) and bounded capacity with LRU eviction, which is what
// makes the memory-vs-disk per-iteration comparison of experiment E6
// meaningful.
package memory

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"gopilot/internal/vclock"
)

// Config configures a Cache.
type Config struct {
	// Name labels the cache (usually the pilot or site name).
	Name string
	// CapacityBytes bounds resident (logical) bytes; zero means 4 GiB.
	CapacityBytes int64
	// Bandwidth is the modeled memory bandwidth in bytes per second;
	// zero means 10 GB/s.
	Bandwidth float64
	// Clock supplies virtual time; defaults to vclock.Real.
	Clock vclock.Clock
}

// Stats describes cache effectiveness.
type Stats struct {
	Hits        int
	Misses      int
	Evictions   int
	BytesServed int64
	Resident    int64
}

type entry struct {
	key   string
	value any
	size  int64
}

// Cache is a bounded, LRU-evicting, bandwidth-modeled in-memory store.
// It is safe for concurrent use.
type Cache struct {
	cfg Config

	mu       sync.Mutex
	items    map[string]*list.Element
	order    *list.List // front = most recently used
	resident int64
	stats    Stats
}

// ErrTooLarge is returned when a value exceeds the cache capacity.
var ErrTooLarge = errors.New("memory: value larger than cache capacity")

// NewCache creates a cache.
func NewCache(cfg Config) *Cache {
	if cfg.CapacityBytes <= 0 {
		cfg.CapacityBytes = 4 << 30
	}
	if cfg.Bandwidth <= 0 {
		cfg.Bandwidth = 10e9
	}
	if cfg.Clock == nil {
		cfg.Clock = vclock.NewReal()
	}
	return &Cache{
		cfg:   cfg,
		items: make(map[string]*list.Element),
		order: list.New(),
	}
}

// Name returns the cache label.
func (c *Cache) Name() string { return c.cfg.Name }

// Capacity returns the configured capacity in bytes.
func (c *Cache) Capacity() int64 { return c.cfg.CapacityBytes }

func (c *Cache) cost(size int64) time.Duration {
	return time.Duration(float64(size) / c.cfg.Bandwidth * float64(time.Second))
}

// Put stores a value under key with the given logical size, evicting LRU
// entries as needed. It pays the modeled memory write cost.
func (c *Cache) Put(ctx context.Context, key string, value any, size int64) error {
	if size < 0 {
		return fmt.Errorf("memory: negative size for %q", key)
	}
	if size > c.cfg.CapacityBytes {
		return fmt.Errorf("%w: %d > %d", ErrTooLarge, size, c.cfg.CapacityBytes)
	}
	if !c.cfg.Clock.Sleep(ctx, c.cost(size)) {
		return ctx.Err()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		old := el.Value.(*entry)
		c.resident -= old.size
		old.value, old.size = value, size
		c.resident += size
		c.order.MoveToFront(el)
	} else {
		el := c.order.PushFront(&entry{key: key, value: value, size: size})
		c.items[key] = el
		c.resident += size
	}
	c.evictLocked()
	return nil
}

// evictLocked drops LRU entries until resident <= capacity.
func (c *Cache) evictLocked() {
	for c.resident > c.cfg.CapacityBytes {
		back := c.order.Back()
		if back == nil {
			return
		}
		e := back.Value.(*entry)
		c.order.Remove(back)
		delete(c.items, e.key)
		c.resident -= e.size
		c.stats.Evictions++
	}
}

// Get returns the cached value, paying the modeled memory read cost on a
// hit. The second result reports presence.
func (c *Cache) Get(ctx context.Context, key string) (any, bool, error) {
	c.mu.Lock()
	el, ok := c.items[key]
	if !ok {
		c.stats.Misses++
		c.mu.Unlock()
		return nil, false, nil
	}
	e := el.Value.(*entry)
	c.order.MoveToFront(el)
	c.stats.Hits++
	c.stats.BytesServed += e.size
	value, size := e.value, e.size
	c.mu.Unlock()

	if !c.cfg.Clock.Sleep(ctx, c.cost(size)) {
		return nil, false, ctx.Err()
	}
	return value, true, nil
}

// GetOrLoad returns the cached value or, on a miss, invokes load (which
// typically reads through Pilot-Data, paying storage/transfer costs),
// caches the result and returns it. Concurrent loads of the same key are
// not deduplicated: like the real system, each task pays its own miss.
func (c *Cache) GetOrLoad(ctx context.Context, key string, size int64, load func(ctx context.Context) (any, error)) (any, error) {
	v, ok, err := c.Get(ctx, key)
	if err != nil {
		return nil, err
	}
	if ok {
		return v, nil
	}
	v, err = load(ctx)
	if err != nil {
		return nil, err
	}
	if err := c.Put(ctx, key, v, size); err != nil {
		// Value too large to cache is not a load failure: serve it anyway.
		if errors.Is(err, ErrTooLarge) {
			return v, nil
		}
		return nil, err
	}
	return v, nil
}

// Delete removes a key (no-op when absent).
func (c *Cache) Delete(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		e := el.Value.(*entry)
		c.order.Remove(el)
		delete(c.items, key)
		c.resident -= e.size
	}
}

// Len returns the number of resident entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items)
}

// Resident returns the resident logical bytes.
func (c *Cache) Resident() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.resident
}

// Stats returns a snapshot of cache statistics.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Resident = c.resident
	return s
}

// HitRate returns hits / (hits+misses), or 0 before any access.
func (c *Cache) HitRate() float64 {
	s := c.Stats()
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}
