package memory

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"gopilot/internal/vclock"
)

func fastClock() vclock.Clock { return vclock.NewScaled(2000) }

func newCache(capacity int64) *Cache {
	return NewCache(Config{Name: "c", CapacityBytes: capacity, Bandwidth: 10e9, Clock: fastClock()})
}

func TestPutGet(t *testing.T) {
	c := newCache(1 << 20)
	if err := c.Put(context.Background(), "k", 42, 100); err != nil {
		t.Fatal(err)
	}
	v, ok, err := c.Get(context.Background(), "k")
	if err != nil || !ok || v.(int) != 42 {
		t.Fatalf("Get = %v %v %v", v, ok, err)
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestMissCounts(t *testing.T) {
	c := newCache(1 << 20)
	_, ok, _ := c.Get(context.Background(), "absent")
	if ok {
		t.Fatal("phantom hit")
	}
	if c.Stats().Misses != 1 {
		t.Fatalf("misses = %d, want 1", c.Stats().Misses)
	}
	if c.HitRate() != 0 {
		t.Fatalf("hit rate = %g, want 0", c.HitRate())
	}
}

func TestLRUEviction(t *testing.T) {
	c := newCache(300)
	ctx := context.Background()
	c.Put(ctx, "a", "A", 100)
	c.Put(ctx, "b", "B", 100)
	c.Put(ctx, "c", "C", 100)
	// Touch "a" so "b" is LRU.
	c.Get(ctx, "a")
	c.Put(ctx, "d", "D", 100) // evicts b
	if _, ok, _ := c.Get(ctx, "b"); ok {
		t.Fatal("b not evicted")
	}
	if _, ok, _ := c.Get(ctx, "a"); !ok {
		t.Fatal("a wrongly evicted")
	}
	if c.Stats().Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", c.Stats().Evictions)
	}
	if c.Resident() > 300 {
		t.Fatalf("resident = %d > capacity", c.Resident())
	}
}

func TestUpdateExistingKeyAdjustsResident(t *testing.T) {
	c := newCache(1000)
	ctx := context.Background()
	c.Put(ctx, "k", "v1", 100)
	c.Put(ctx, "k", "v2", 300)
	if c.Resident() != 300 {
		t.Fatalf("resident = %d, want 300", c.Resident())
	}
	if c.Len() != 1 {
		t.Fatalf("len = %d, want 1", c.Len())
	}
	v, _, _ := c.Get(ctx, "k")
	if v.(string) != "v2" {
		t.Fatalf("value = %v, want v2", v)
	}
}

func TestTooLargeRejected(t *testing.T) {
	c := newCache(100)
	if err := c.Put(context.Background(), "k", "v", 200); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
}

func TestNegativeSizeRejected(t *testing.T) {
	c := newCache(100)
	if err := c.Put(context.Background(), "k", "v", -1); err == nil {
		t.Fatal("negative size accepted")
	}
}

func TestGetOrLoad(t *testing.T) {
	c := newCache(1 << 20)
	loads := 0
	load := func(context.Context) (any, error) {
		loads++
		return "loaded", nil
	}
	v, err := c.GetOrLoad(context.Background(), "k", 100, load)
	if err != nil || v.(string) != "loaded" {
		t.Fatalf("GetOrLoad = %v %v", v, err)
	}
	v, err = c.GetOrLoad(context.Background(), "k", 100, load)
	if err != nil || v.(string) != "loaded" {
		t.Fatalf("GetOrLoad(2) = %v %v", v, err)
	}
	if loads != 1 {
		t.Fatalf("loads = %d, want 1 (second call is a hit)", loads)
	}
}

func TestGetOrLoadPropagatesLoadError(t *testing.T) {
	c := newCache(1 << 20)
	boom := errors.New("boom")
	if _, err := c.GetOrLoad(context.Background(), "k", 100, func(context.Context) (any, error) {
		return nil, boom
	}); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

func TestGetOrLoadValueTooLargeStillServed(t *testing.T) {
	c := newCache(100)
	v, err := c.GetOrLoad(context.Background(), "k", 1000, func(context.Context) (any, error) {
		return "big", nil
	})
	if err != nil || v.(string) != "big" {
		t.Fatalf("GetOrLoad = %v %v, want served value", v, err)
	}
	if c.Len() != 0 {
		t.Fatal("oversized value was cached")
	}
}

func TestDelete(t *testing.T) {
	c := newCache(1000)
	c.Put(context.Background(), "k", "v", 100)
	c.Delete("k")
	if c.Len() != 0 || c.Resident() != 0 {
		t.Fatalf("len=%d resident=%d after delete", c.Len(), c.Resident())
	}
	c.Delete("absent") // no-op
}

func TestHitRate(t *testing.T) {
	c := newCache(1000)
	ctx := context.Background()
	c.Put(ctx, "k", "v", 10)
	c.Get(ctx, "k")
	c.Get(ctx, "k")
	c.Get(ctx, "absent")
	if r := c.HitRate(); r < 0.6 || r > 0.7 {
		t.Fatalf("hit rate = %g, want 2/3", r)
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := newCache(1 << 20)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ctx := context.Background()
			for i := 0; i < 50; i++ {
				key := fmt.Sprintf("k%d-%d", g, i%10)
				c.Put(ctx, key, i, 64)
				c.Get(ctx, key)
				c.GetOrLoad(ctx, key, 64, func(context.Context) (any, error) { return i, nil })
			}
		}(g)
	}
	wg.Wait()
	if c.Resident() > c.Capacity() {
		t.Fatalf("resident %d exceeds capacity %d", c.Resident(), c.Capacity())
	}
}

func TestDefaults(t *testing.T) {
	c := NewCache(Config{})
	if c.Capacity() != 4<<30 {
		t.Fatalf("default capacity = %d", c.Capacity())
	}
}
