package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSummarizeBasic(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 {
		t.Fatalf("N = %d, want 5", s.N)
	}
	if s.Mean != 3 {
		t.Errorf("Mean = %g, want 3", s.Mean)
	}
	if s.Min != 1 || s.Max != 5 {
		t.Errorf("Min/Max = %g/%g, want 1/5", s.Min, s.Max)
	}
	if s.Median != 3 {
		t.Errorf("Median = %g, want 3", s.Median)
	}
	if !almostEqual(s.Std, math.Sqrt(2.5), 1e-12) {
		t.Errorf("Std = %g, want %g", s.Std, math.Sqrt(2.5))
	}
	if s.Sum != 15 {
		t.Errorf("Sum = %g, want 15", s.Sum)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 || s.Sum != 0 {
		t.Fatalf("empty summary not zero: %+v", s)
	}
}

func TestQuantileInterpolation(t *testing.T) {
	xs := []float64{0, 10}
	if got := Quantile(xs, 0.5); got != 5 {
		t.Errorf("Quantile(0.5) = %g, want 5", got)
	}
	if got := Quantile(xs, 0); got != 0 {
		t.Errorf("Quantile(0) = %g, want 0", got)
	}
	if got := Quantile(xs, 1); got != 10 {
		t.Errorf("Quantile(1) = %g, want 10", got)
	}
}

func TestQuantilePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on empty sample")
		}
	}()
	Quantile(nil, 0.5)
}

func TestAccumulatorMatchesBatch(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5}
	var a Accumulator
	for _, x := range xs {
		a.Add(x)
	}
	s := Summarize(xs)
	if a.N() != s.N {
		t.Fatalf("N = %d, want %d", a.N(), s.N)
	}
	if !almostEqual(a.Mean(), s.Mean, 1e-12) {
		t.Errorf("Mean = %g, want %g", a.Mean(), s.Mean)
	}
	if !almostEqual(a.Std(), s.Std, 1e-12) {
		t.Errorf("Std = %g, want %g", a.Std(), s.Std)
	}
	if a.Min() != s.Min || a.Max() != s.Max {
		t.Errorf("Min/Max = %g/%g, want %g/%g", a.Min(), a.Max(), s.Min, s.Max)
	}
}

// Property: merging two accumulators equals accumulating the concatenation.
func TestAccumulatorMergeProperty(t *testing.T) {
	f := func(xs, ys []float64) bool {
		clean := func(in []float64) []float64 {
			out := make([]float64, 0, len(in))
			for _, x := range in {
				if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e6 {
					out = append(out, x)
				}
			}
			return out
		}
		xs, ys = clean(xs), clean(ys)
		var a, b, all Accumulator
		for _, x := range xs {
			a.Add(x)
			all.Add(x)
		}
		for _, y := range ys {
			b.Add(y)
			all.Add(y)
		}
		a.Merge(&b)
		if a.N() != all.N() {
			return false
		}
		if a.N() == 0 {
			return true
		}
		scale := math.Max(1, math.Abs(all.Mean()))
		return almostEqual(a.Mean(), all.Mean(), 1e-9*scale) &&
			almostEqual(a.Variance(), all.Variance(), 1e-6*math.Max(1, all.Variance()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSpeedupAndEfficiency(t *testing.T) {
	t1 := 100 * time.Second
	t4 := 25 * time.Second
	if got := Speedup(t1, t4); got != 4 {
		t.Errorf("Speedup = %g, want 4", got)
	}
	if got := Efficiency(t1, t4, 4); got != 1 {
		t.Errorf("Efficiency = %g, want 1", got)
	}
	if got := Speedup(t1, 0); got != 0 {
		t.Errorf("Speedup with zero tN = %g, want 0", got)
	}
	if got := Efficiency(t1, t4, 0); got != 0 {
		t.Errorf("Efficiency with zero workers = %g, want 0", got)
	}
}

func TestDurations(t *testing.T) {
	ds := []time.Duration{time.Second, 500 * time.Millisecond}
	xs := Durations(ds)
	if xs[0] != 1 || xs[1] != 0.5 {
		t.Fatalf("Durations = %v", xs)
	}
}

func TestFormatDuration(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want string
	}{
		{90 * time.Second, "1.5m"},
		{2 * time.Second, "2.00s"},
		{250 * time.Millisecond, "250.0ms"},
		{42 * time.Microsecond, "42µs"},
	}
	for _, c := range cases {
		if got := FormatDuration(c.d); got != c.want {
			t.Errorf("FormatDuration(%v) = %q, want %q", c.d, got, c.want)
		}
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 100; i++ {
		h.Observe(float64(i%10) + 0.5)
	}
	h.Observe(-1)
	h.Observe(11)
	if h.Count() != 102 {
		t.Fatalf("Count = %d, want 102", h.Count())
	}
	if h.Bucket(0) != 10 {
		t.Errorf("Bucket(0) = %d, want 10", h.Bucket(0))
	}
	out := h.String()
	if !strings.Contains(out, "underflow 1") || !strings.Contains(out, "overflow 1") {
		t.Errorf("String() missing under/overflow:\n%s", out)
	}
}

func TestHistogramPanicsOnBadRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewHistogram(5, 5, 10)
}

func TestSeriesConcurrent(t *testing.T) {
	s := NewSeries("x")
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func() {
			for i := 0; i < 100; i++ {
				s.Add(1)
			}
			done <- struct{}{}
		}()
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if s.Len() != 800 {
		t.Fatalf("Len = %d, want 800", s.Len())
	}
	if s.Summary().Mean != 1 {
		t.Fatalf("Mean = %g, want 1", s.Summary().Mean)
	}
}

func TestTableRenderAndCSV(t *testing.T) {
	tb := NewTable("Demo", "config", "runtime_s", "speedup")
	tb.AddRow("base", 10.0, 1.0)
	tb.AddRow("fast, tuned", 2.5, 4.0)
	out := tb.String()
	if !strings.Contains(out, "== Demo ==") {
		t.Errorf("missing title:\n%s", out)
	}
	if !strings.Contains(out, "2.5") || !strings.Contains(out, "fast, tuned") {
		t.Errorf("missing cells:\n%s", out)
	}
	var b strings.Builder
	if err := tb.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	csv := b.String()
	if !strings.Contains(csv, "\"fast, tuned\"") {
		t.Errorf("CSV did not quote comma cell:\n%s", csv)
	}
	if !strings.HasPrefix(csv, "config,runtime_s,speedup\n") {
		t.Errorf("CSV header wrong:\n%s", csv)
	}
}

func TestMeanStdEdgeCases(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if Std([]float64{5}) != 0 {
		t.Error("Std of singleton != 0")
	}
}
