// Package metrics provides the measurement substrate used throughout gopilot:
// summary statistics, online accumulators, duration samples, histograms and
// simple table/CSV emitters. The paper's evaluation methodology (Section V,
// "Performance Characterization") relies on runtime, throughput and latency
// distributions; this package is the common vocabulary for all experiments.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Summary holds descriptive statistics for a sample of float64 values.
type Summary struct {
	N      int
	Mean   float64
	Std    float64
	Min    float64
	Max    float64
	Median float64
	P95    float64
	P99    float64
	Sum    float64
}

// Summarize computes descriptive statistics for xs. It returns a zero
// Summary for an empty sample.
func Summarize(xs []float64) Summary {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return summarizeSorted(sorted)
}

// summarizeSorted computes the summary from an already-sorted sample it
// is allowed to read in place — the million-sample path through
// Series.Summary sorts its private copy and lands here without a second
// materialization.
func summarizeSorted(sorted []float64) Summary {
	if len(sorted) == 0 {
		return Summary{}
	}
	s := Summary{N: len(sorted)}
	s.Min = sorted[0]
	s.Max = sorted[len(sorted)-1]
	for _, x := range sorted {
		s.Sum += x
	}
	s.Mean = s.Sum / float64(len(sorted))
	var sq float64
	for _, x := range sorted {
		d := x - s.Mean
		sq += d * d
	}
	if len(sorted) > 1 {
		s.Std = math.Sqrt(sq / float64(len(sorted)-1))
	}
	s.Median = Quantile(sorted, 0.5)
	s.P95 = Quantile(sorted, 0.95)
	s.P99 = Quantile(sorted, 0.99)
	return s
}

// Quantile returns the q-quantile (0 <= q <= 1) of a sorted sample using
// linear interpolation between closest ranks. The slice must be sorted in
// ascending order; Quantile panics on an empty sample.
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		panic("metrics: Quantile of empty sample")
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean of xs, or 0 for an empty sample.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Std returns the sample standard deviation of xs (Bessel-corrected),
// or 0 when fewer than two values are present.
func Std(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var sq float64
	for _, x := range xs {
		d := x - m
		sq += d * d
	}
	return math.Sqrt(sq / float64(len(xs)-1))
}

// Accumulator is an online (single-pass, Welford) mean/variance accumulator.
// The zero value is ready to use. It is not safe for concurrent use; wrap it
// in a mutex or use one per goroutine and merge.
type Accumulator struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
	sum  float64
}

// Add incorporates x into the accumulator.
func (a *Accumulator) Add(x float64) {
	a.n++
	if a.n == 1 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	a.sum += x
	d := x - a.mean
	a.mean += d / float64(a.n)
	a.m2 += d * (x - a.mean)
}

// Merge folds the state of b into a, as if every observation added to b had
// been added to a (Chan et al. parallel variance combination).
func (a *Accumulator) Merge(b *Accumulator) {
	if b.n == 0 {
		return
	}
	if a.n == 0 {
		*a = *b
		return
	}
	n := a.n + b.n
	delta := b.mean - a.mean
	mean := a.mean + delta*float64(b.n)/float64(n)
	m2 := a.m2 + b.m2 + delta*delta*float64(a.n)*float64(b.n)/float64(n)
	if b.min < a.min {
		a.min = b.min
	}
	if b.max > a.max {
		a.max = b.max
	}
	a.n, a.mean, a.m2, a.sum = n, mean, m2, a.sum+b.sum
}

// N returns the number of observations.
func (a *Accumulator) N() int { return a.n }

// Mean returns the running mean, or 0 before any observation.
func (a *Accumulator) Mean() float64 { return a.mean }

// Sum returns the running sum.
func (a *Accumulator) Sum() float64 { return a.sum }

// Min returns the smallest observation, or 0 before any observation.
func (a *Accumulator) Min() float64 { return a.min }

// Max returns the largest observation, or 0 before any observation.
func (a *Accumulator) Max() float64 { return a.max }

// Variance returns the Bessel-corrected sample variance.
func (a *Accumulator) Variance() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// Std returns the sample standard deviation.
func (a *Accumulator) Std() float64 { return math.Sqrt(a.Variance()) }

// Durations converts a slice of time.Duration into seconds for use with the
// float64-based statistics helpers.
func Durations(ds []time.Duration) []float64 {
	out := make([]float64, len(ds))
	for i, d := range ds {
		out[i] = d.Seconds()
	}
	return out
}

// Speedup returns t1/tN, the classic strong-scaling speedup. It returns 0
// when tN is zero to avoid propagating Inf through result tables.
func Speedup(t1, tN time.Duration) float64 {
	if tN == 0 {
		return 0
	}
	return t1.Seconds() / tN.Seconds()
}

// Efficiency returns speedup divided by the worker count.
func Efficiency(t1, tN time.Duration, workers int) float64 {
	if workers <= 0 {
		return 0
	}
	return Speedup(t1, tN) / float64(workers)
}

// FormatDuration renders a modeled duration compactly for result tables
// (e.g. "4.2s", "1m30s", "250ms").
func FormatDuration(d time.Duration) string {
	switch {
	case d >= time.Minute:
		return fmt.Sprintf("%.1fm", d.Minutes())
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000)
	default:
		return d.String()
	}
}
