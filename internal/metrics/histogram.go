package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
)

// Histogram is a fixed-bucket histogram over a [lo, hi) range with
// overflow/underflow buckets. It is safe for concurrent use.
type Histogram struct {
	mu      sync.Mutex
	lo, hi  float64
	width   float64
	buckets []int
	under   int
	over    int
	acc     Accumulator
}

// NewHistogram creates a histogram with n equal-width buckets spanning
// [lo, hi). It panics if n <= 0 or hi <= lo.
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 || hi <= lo {
		panic(fmt.Sprintf("metrics: invalid histogram range [%g,%g) n=%d", lo, hi, n))
	}
	return &Histogram{lo: lo, hi: hi, width: (hi - lo) / float64(n), buckets: make([]int, n)}
}

// Observe records a value.
func (h *Histogram) Observe(x float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.acc.Add(x)
	switch {
	case x < h.lo:
		h.under++
	case x >= h.hi:
		h.over++
	default:
		i := int((x - h.lo) / h.width)
		if i >= len(h.buckets) { // guard against floating-point edge
			i = len(h.buckets) - 1
		}
		h.buckets[i]++
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.acc.N()
}

// Mean returns the mean of all observations.
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.acc.Mean()
}

// Bucket returns the count of bucket i.
func (h *Histogram) Bucket(i int) int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.buckets[i]
}

// String renders a compact ASCII sketch of the distribution, one row per
// non-empty bucket.
func (h *Histogram) String() string {
	h.mu.Lock()
	defer h.mu.Unlock()
	var b strings.Builder
	maxCount := 1
	for _, c := range h.buckets {
		if c > maxCount {
			maxCount = c
		}
	}
	for i, c := range h.buckets {
		if c == 0 {
			continue
		}
		bar := strings.Repeat("#", int(math.Ceil(float64(c)/float64(maxCount)*40)))
		fmt.Fprintf(&b, "[%8.3g,%8.3g) %6d %s\n", h.lo+float64(i)*h.width, h.lo+float64(i+1)*h.width, c, bar)
	}
	if h.under > 0 {
		fmt.Fprintf(&b, "underflow %d\n", h.under)
	}
	if h.over > 0 {
		fmt.Fprintf(&b, "overflow %d\n", h.over)
	}
	return b.String()
}

// Series is an append-only, concurrency-safe collection of float64 samples
// with on-demand summarization. It backs most experiment measurements.
type Series struct {
	mu   sync.Mutex
	name string
	xs   []float64
}

// NewSeries creates a named sample series.
func NewSeries(name string) *Series { return &Series{name: name} }

// Name returns the series name.
func (s *Series) Name() string { return s.name }

// Add appends a sample.
func (s *Series) Add(x float64) {
	s.mu.Lock()
	s.xs = append(s.xs, x)
	s.mu.Unlock()
}

// AddBatch appends a batch of samples under a single lock acquisition —
// the bulk path for callers that account whole message batches at once.
// The input slice is copied; callers may reuse it immediately.
func (s *Series) AddBatch(xs []float64) {
	if len(xs) == 0 {
		return
	}
	s.mu.Lock()
	s.growLocked(len(xs))
	s.xs = append(s.xs, xs...)
	s.mu.Unlock()
}

// AddFunc appends n samples produced by gen(0..n-1), writing them
// directly into the series' tail under one lock acquisition — the
// zero-staging bulk path: callers compute each sample on the fly instead
// of materializing a scratch slice first.
func (s *Series) AddFunc(n int, gen func(int) float64) {
	if n <= 0 {
		return
	}
	s.mu.Lock()
	s.growLocked(n)
	dst := s.xs[len(s.xs) : len(s.xs)+n]
	for i := range dst {
		dst[i] = gen(i)
	}
	s.xs = s.xs[:len(s.xs)+n]
	s.mu.Unlock()
}

// growLocked ensures capacity for n more samples, doubling on growth
// (instead of the runtime's shallower large-slice growth) so a
// million-sample series costs a handful of reallocations rather than
// dozens. Caller holds s.mu.
func (s *Series) growLocked(n int) {
	need := len(s.xs) + n
	if need <= cap(s.xs) {
		return
	}
	newCap := 2 * cap(s.xs)
	if newCap < need {
		newCap = need
	}
	grown := make([]float64, len(s.xs), newCap)
	copy(grown, s.xs)
	s.xs = grown
}

// Len returns the number of samples.
func (s *Series) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.xs)
}

// Values returns a copy of the samples.
func (s *Series) Values() []float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]float64(nil), s.xs...)
}

// Summary summarizes the samples collected so far. The snapshot taken
// under the lock is sorted and summarized in place — one copy of the
// sample set total, which matters at a million samples.
func (s *Series) Summary() Summary {
	xs := s.Values()
	sort.Float64s(xs)
	return summarizeSorted(xs)
}

// Sorted returns a sorted copy of the samples.
func (s *Series) Sorted() []float64 {
	xs := s.Values()
	sort.Float64s(xs)
	return xs
}
