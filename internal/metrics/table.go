package metrics

import (
	"fmt"
	"io"
	"strings"
)

// Table accumulates rows of experiment results and renders them as an
// aligned text table (for terminal output, mirroring the rows the paper
// reports) or as CSV (for the Mini-App framework's data collection).
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; values are formatted with %v. Numeric floats are
// rendered with 4 significant digits to keep tables readable.
func (t *Table) AddRow(values ...any) {
	row := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			row[i] = formatFloat(x)
		case float32:
			row[i] = formatFloat(float64(x))
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

func formatFloat(x float64) string {
	if x == float64(int64(x)) && x < 1e15 && x > -1e15 {
		return fmt.Sprintf("%d", int64(x))
	}
	return fmt.Sprintf("%.4g", x)
}

// Render writes an aligned text rendering of the table to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

// WriteCSV writes the table in RFC 4180-ish CSV form (quotes only where
// needed) including the header row.
func (t *Table) WriteCSV(w io.Writer) error {
	writeLine := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = csvEscape(c)
		}
		_, err := fmt.Fprintln(w, strings.Join(parts, ","))
		return err
	}
	if err := writeLine(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeLine(row); err != nil {
			return err
		}
	}
	return nil
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return "\"" + strings.ReplaceAll(s, "\"", "\"\"") + "\""
	}
	return s
}
