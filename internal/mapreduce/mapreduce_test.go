package mapreduce

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"gopilot/internal/core"
	"gopilot/internal/data"
	"gopilot/internal/infra"
	"gopilot/internal/saga"
	"gopilot/internal/scheduler"
	"gopilot/internal/vclock"
)

type env struct {
	clock *vclock.Scaled
	mgr   *core.Manager
	data  *data.Service
}

func newEnv(t *testing.T, sites ...string) *env {
	t.Helper()
	if len(sites) == 0 {
		sites = []string{"siteA"}
	}
	clock := vclock.NewScaled(2000)
	reg := saga.NewRegistry()
	ds := data.NewService(data.Config{Clock: clock, DefaultLink: data.Link{Bandwidth: 100e6, Latency: 10 * time.Millisecond}})
	for _, s := range sites {
		reg.Register(saga.NewLocalService(s, 32, clock))
		ds.AddSite(infra.Site(s))
	}
	mgr := core.NewManager(core.Config{Registry: reg, Clock: clock, Data: ds, Scheduler: scheduler.DataAware{}})
	t.Cleanup(mgr.Close)
	e := &env{clock: clock, mgr: mgr, data: ds}
	for _, s := range sites {
		p, err := mgr.SubmitPilot(core.PilotDescription{Resource: "local://" + s, Cores: 8})
		if err != nil {
			t.Fatal(err)
		}
		deadline := time.Now().Add(2 * time.Second)
		for p.State() != core.PilotRunning {
			if time.Now().After(deadline) {
				t.Fatal("pilot never started")
			}
			time.Sleep(time.Millisecond)
		}
	}
	return e
}

// wordMapper and countReducer implement classic wordcount.
func wordMapper(_ context.Context, _ string, value string, emit func(k, v string)) error {
	for _, w := range strings.Fields(value) {
		emit(strings.ToLower(strings.Trim(w, ".,!?")), "1")
	}
	return nil
}

func countReducer(_ context.Context, key string, values []string, emit func(k, v string)) error {
	sum := 0
	for _, v := range values {
		n, err := strconv.Atoi(v)
		if err != nil {
			return err
		}
		sum += n
	}
	emit(key, strconv.Itoa(sum))
	return nil
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	kvs := []KeyValue{{"a", "1"}, {"tab\there", "new\nline"}, {"", "empty key"}, {"quote\"", "\\slash"}}
	got, err := Decode(Encode(kvs))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(kvs) {
		t.Fatalf("len = %d, want %d", len(got), len(kvs))
	}
	for i := range kvs {
		if got[i] != kvs[i] {
			t.Errorf("kv[%d] = %+v, want %+v", i, got[i], kvs[i])
		}
	}
}

// Property: Encode/Decode round-trips arbitrary strings.
func TestEncodeDecodeProperty(t *testing.T) {
	f := func(k, v string) bool {
		kvs := []KeyValue{{k, v}}
		got, err := Decode(Encode(kvs))
		return err == nil && len(got) == 1 && got[0] == kvs[0]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode([]byte("no-tab-line\n")); err == nil {
		t.Error("malformed line accepted")
	}
	if _, err := Decode([]byte("notquoted\talso\n")); err == nil {
		t.Error("unquoted fields accepted")
	}
}

func TestGroupPreservesOrder(t *testing.T) {
	g := Group([]KeyValue{{"k", "1"}, {"k", "2"}, {"j", "x"}, {"k", "3"}})
	if len(g["k"]) != 3 || g["k"][0] != "1" || g["k"][2] != "3" {
		t.Fatalf("group = %v", g)
	}
}

func TestPartitionOfIsStable(t *testing.T) {
	for _, key := range []string{"a", "b", "hello", ""} {
		p1, p2 := partitionOf(key, 7), partitionOf(key, 7)
		if p1 != p2 {
			t.Fatalf("partitionOf(%q) unstable", key)
		}
		if p1 < 0 || p1 >= 7 {
			t.Fatalf("partitionOf(%q) = %d out of range", key, p1)
		}
	}
}

func TestWordCountEndToEnd(t *testing.T) {
	e := newEnv(t)
	ctx := context.Background()
	splits := []string{
		"the quick brown fox jumps over the lazy dog",
		"the dog barks and the fox runs",
		"quick quick slow",
	}
	var ids []string
	for i, s := range splits {
		id := fmt.Sprintf("wc-in-%d", i)
		if err := e.data.Put(ctx, data.Unit{ID: id, Content: []byte(s), Site: "siteA"}); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	res, err := Run(ctx, e.mgr, Config{
		Name:     "wc",
		InputIDs: ids,
		Reducers: 3,
		Map:      wordMapper,
		Reduce:   countReducer,
		Combine:  countReducer,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MapTasks != 3 || res.ReduceTasks != 3 {
		t.Fatalf("tasks = %d/%d, want 3/3", res.MapTasks, res.ReduceTasks)
	}
	out, err := Collect(ctx, e.mgr, res)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]string{}
	for _, kv := range out {
		counts[kv.Key] = kv.Value
	}
	want := map[string]string{"the": "4", "quick": "3", "fox": "2", "dog": "2", "slow": "1"}
	for k, v := range want {
		if counts[k] != v {
			t.Errorf("count[%q] = %q, want %q", k, counts[k], v)
		}
	}
	if res.Elapsed <= 0 {
		t.Error("no elapsed time recorded")
	}
}

func TestMapReduceMatchesSequential(t *testing.T) {
	e := newEnv(t)
	ctx := context.Background()
	// Random-ish deterministic corpus.
	words := []string{"alpha", "beta", "gamma", "delta"}
	var splits []string
	for i := 0; i < 6; i++ {
		var sb strings.Builder
		for j := 0; j < 50; j++ {
			sb.WriteString(words[(i*7+j*3)%len(words)])
			sb.WriteByte(' ')
		}
		splits = append(splits, sb.String())
	}
	// Sequential reference.
	ref := map[string]int{}
	for _, s := range splits {
		for _, w := range strings.Fields(s) {
			ref[w]++
		}
	}
	var ids []string
	for i, s := range splits {
		id := fmt.Sprintf("seq-in-%d", i)
		e.data.Put(ctx, data.Unit{ID: id, Content: []byte(s), Site: "siteA"})
		ids = append(ids, id)
	}
	res, err := Run(ctx, e.mgr, Config{Name: "seq", InputIDs: ids, Reducers: 2, Map: wordMapper, Reduce: countReducer})
	if err != nil {
		t.Fatal(err)
	}
	out, err := Collect(ctx, e.mgr, res)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(ref) {
		t.Fatalf("distinct keys = %d, want %d", len(out), len(ref))
	}
	for _, kv := range out {
		if kv.Value != strconv.Itoa(ref[kv.Key]) {
			t.Errorf("%q = %s, want %d", kv.Key, kv.Value, ref[kv.Key])
		}
	}
}

func TestCrossSiteShuffleMovesBytes(t *testing.T) {
	e := newEnv(t, "siteA", "siteB")
	ctx := context.Background()
	var ids []string
	for i := 0; i < 4; i++ {
		id := fmt.Sprintf("x-in-%d", i)
		st := infra.Site("siteA")
		if i%2 == 1 {
			st = "siteB"
		}
		e.data.Put(ctx, data.Unit{ID: id, Content: []byte("a b c d e f g h"), Site: st})
		ids = append(ids, id)
	}
	e.data.ResetStats()
	res, err := Run(ctx, e.mgr, Config{Name: "x", InputIDs: ids, Reducers: 2, Map: wordMapper, Reduce: countReducer})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Collect(ctx, e.mgr, res); err != nil {
		t.Fatal(err)
	}
	// With inputs on two sites, the shuffle must cross sites at least once.
	st := e.data.Stats()
	if st.RemoteReads == 0 && st.Replications == 0 {
		t.Errorf("expected cross-site traffic during shuffle, stats = %+v", st)
	}
}

func TestMapErrorPropagates(t *testing.T) {
	e := newEnv(t)
	ctx := context.Background()
	e.data.Put(ctx, data.Unit{ID: "bad-in", Content: []byte("x"), Site: "siteA"})
	boom := errors.New("map boom")
	_, err := Run(ctx, e.mgr, Config{
		Name:     "bad",
		InputIDs: []string{"bad-in"},
		Map:      func(context.Context, string, string, func(k, v string)) error { return boom },
		Reduce:   countReducer,
	})
	if err == nil || !strings.Contains(err.Error(), "map boom") {
		t.Fatalf("err = %v, want map boom", err)
	}
}

func TestConfigValidation(t *testing.T) {
	e := newEnv(t)
	ctx := context.Background()
	if _, err := Run(ctx, e.mgr, Config{Map: wordMapper, Reduce: countReducer}); err == nil {
		t.Error("no inputs accepted")
	}
	if _, err := Run(ctx, e.mgr, Config{InputIDs: []string{"x"}}); err == nil {
		t.Error("nil Map/Reduce accepted")
	}
}
