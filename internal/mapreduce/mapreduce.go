// Package mapreduce implements Pilot-MapReduce [54]: a MapReduce engine
// whose map and reduce tasks are pilot compute-units, with intermediate
// data shuffled through Pilot-Data. This realizes the paper's Table I
// "Data-Parallel/MapReduce" and "Dataflow" scenarios on the pilot
// abstraction — including cross-site shuffles whose transfer costs the
// data layer models.
package mapreduce

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"slices"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"gopilot/internal/core"
	"gopilot/internal/vclock"
)

// KeyValue is one record of MapReduce intermediate or output data.
type KeyValue struct {
	Key   string
	Value string
}

// Mapper consumes one input record (key = record id, value = content) and
// emits intermediate pairs. Mappers run inside a parallel compute phase
// (vclock's Compute purity contract): they must be pure CPU — no clock
// reads, no modeled sleeps, no stream draws, no shared mutation. Model
// per-task compute cost with Config.MapCost instead.
type Mapper func(ctx context.Context, key, value string, emit func(k, v string)) error

// Reducer consumes one key with all its values and emits output pairs.
// The same signature serves as Combiner. Reducers run inside a parallel
// compute phase and must be pure CPU (see Mapper); model cost with
// Config.ReduceCost.
type Reducer func(ctx context.Context, key string, values []string, emit func(k, v string)) error

// Config describes a MapReduce job.
type Config struct {
	// Name prefixes intermediate/output data-unit IDs.
	Name string
	// InputIDs names existing data-units, one per map task (the splits).
	InputIDs []string
	// Reducers is the reduce-task count R (default 1).
	Reducers int
	// Map and Reduce are the user functions; Combine optionally pre-
	// aggregates map-side (classic wordcount optimization).
	Map     Mapper
	Reduce  Reducer
	Combine Reducer
	// CoresPerTask sizes each map/reduce unit (default 1).
	CoresPerTask int
	// MaxRetries is the per-unit retry budget.
	MaxRetries int
	// MapCost and ReduceCost add modeled compute per task, letting
	// benchmarks represent production-sized inputs whose processing time
	// dwarfs the (small) in-process sample data.
	MapCost, ReduceCost time.Duration
}

// Result reports a completed job.
type Result struct {
	// OutputIDs names the per-reducer output data-units.
	OutputIDs []string
	// Elapsed is the modeled end-to-end runtime.
	Elapsed time.Duration
	// MapElapsed is the modeled duration of the map phase.
	MapElapsed time.Duration
	// ReduceElapsed is the modeled duration of the shuffle+reduce phase.
	ReduceElapsed time.Duration
	// MapTasks and ReduceTasks count the units executed.
	MapTasks, ReduceTasks int
}

// Run executes the job on mgr's pilots and blocks until completion. The
// manager must have a data service configured.
func Run(ctx context.Context, mgr *core.Manager, cfg Config) (*Result, error) {
	if mgr.Data() == nil {
		return nil, errors.New("mapreduce: manager has no data service")
	}
	if cfg.Map == nil || cfg.Reduce == nil {
		return nil, errors.New("mapreduce: Map and Reduce are required")
	}
	if len(cfg.InputIDs) == 0 {
		return nil, errors.New("mapreduce: no input splits")
	}
	if cfg.Reducers <= 0 {
		cfg.Reducers = 1
	}
	if cfg.CoresPerTask <= 0 {
		cfg.CoresPerTask = 1
	}
	if cfg.Name == "" {
		cfg.Name = "mrjob"
	}
	clock := mgr.Clock()
	start := clock.Now()

	// ------------------------------ map phase ------------------------------
	mapUnits := make([]*core.ComputeUnit, 0, len(cfg.InputIDs))
	for i, in := range cfg.InputIDs {
		i, in := i, in
		u, err := mgr.SubmitUnit(core.UnitDescription{
			Name:       fmt.Sprintf("%s.map%d", cfg.Name, i),
			Cores:      cfg.CoresPerTask,
			InputData:  []string{in},
			MaxRetries: cfg.MaxRetries,
			Run: func(ctx context.Context, tc core.TaskContext) error {
				return runMapTask(ctx, tc, cfg, i, in)
			},
		})
		if err != nil {
			return nil, err
		}
		mapUnits = append(mapUnits, u)
	}
	for _, u := range mapUnits {
		if s, err := u.Wait(ctx); s != core.UnitDone {
			return nil, fmt.Errorf("mapreduce: map unit %s %v: %w", u.ID(), s, err)
		}
	}
	mapDone := clock.Now()

	// --------------------------- reduce phase ------------------------------
	reduceUnits := make([]*core.ComputeUnit, 0, cfg.Reducers)
	outputIDs := make([]string, cfg.Reducers)
	for r := 0; r < cfg.Reducers; r++ {
		r := r
		// Every reducer depends on its partition from every map task.
		inputs := make([]string, len(cfg.InputIDs))
		for m := range cfg.InputIDs {
			inputs[m] = partitionID(cfg.Name, m, r)
		}
		outputIDs[r] = fmt.Sprintf("%s.out%d", cfg.Name, r)
		u, err := mgr.SubmitUnit(core.UnitDescription{
			Name:       fmt.Sprintf("%s.reduce%d", cfg.Name, r),
			Cores:      cfg.CoresPerTask,
			InputData:  inputs,
			MaxRetries: cfg.MaxRetries,
			Run: func(ctx context.Context, tc core.TaskContext) error {
				return runReduceTask(ctx, tc, cfg, r, inputs, outputIDs[r])
			},
		})
		if err != nil {
			return nil, err
		}
		reduceUnits = append(reduceUnits, u)
	}
	for _, u := range reduceUnits {
		if s, err := u.Wait(ctx); s != core.UnitDone {
			return nil, fmt.Errorf("mapreduce: reduce unit %s %v: %w", u.ID(), s, err)
		}
	}
	end := clock.Now()

	return &Result{
		OutputIDs:     outputIDs,
		Elapsed:       end.Sub(start),
		MapElapsed:    mapDone.Sub(start),
		ReduceElapsed: end.Sub(mapDone),
		MapTasks:      len(cfg.InputIDs),
		ReduceTasks:   cfg.Reducers,
	}, nil
}

// kernelScratch is the reusable workspace of one map or reduce kernel:
// per-reducer emit buffers, the concatenated shuffle input, and the
// grouping value column. Pooling it makes steady-state kernels allocate
// only their encoded outputs.
//
// The pooling contract (seed-audit rule 8, DESIGN.md "Hot path"): Get
// and Put happen on the executor token — before the compute phase opens
// and after it rejoins — never inside a Compute body. The phase owns the
// scratch exclusively for its duration; nothing pooled may be referenced
// after release.
type kernelScratch struct {
	parts [][]KeyValue // map side: per-reducer emit buffers
	all   []KeyValue   // reduce side: concatenated shuffle input
	vals  []string     // grouping: value column scratch
}

var kernelScratchPool = sync.Pool{New: func() any { return new(kernelScratch) }}

func getScratch() *kernelScratch { return kernelScratchPool.Get().(*kernelScratch) }

// release drops every string reference the scratch accumulated (pooled
// buffers must not pin split contents in memory between jobs) and
// returns it to the pool, keeping the slice capacities.
func (s *kernelScratch) release() {
	ps := s.parts[:cap(s.parts)]
	for i := range ps {
		p := ps[i][:cap(ps[i])]
		clear(p)
		ps[i] = p[:0]
	}
	s.parts = ps[:len(s.parts)]
	a := s.all[:cap(s.all)]
	clear(a)
	s.all = a[:0]
	v := s.vals[:cap(s.vals)]
	clear(v)
	s.vals = v[:0]
	kernelScratchPool.Put(s)
}

// groupSorted stable-sorts kvs by key in place and invokes fn once per
// distinct key, in ascending key order, with the key's values in
// emission order (stability guarantees it) — the same key order and
// value order the map+sorted-keys grouping produced, without building a
// map or per-key value slices. vals is scratch with capacity for
// len(kvs) entries; each fn call receives a capped sub-slice of it.
func groupSorted(kvs []KeyValue, vals []string, fn func(key string, values []string) error) error {
	slices.SortStableFunc(kvs, func(a, b KeyValue) int { return strings.Compare(a.Key, b.Key) })
	vals = vals[:len(kvs)]
	for i := range kvs {
		vals[i] = kvs[i].Value
	}
	for lo := 0; lo < len(kvs); {
		hi := lo + 1
		for hi < len(kvs) && kvs[hi].Key == kvs[lo].Key {
			hi++
		}
		if err := fn(kvs[lo].Key, vals[lo:hi:hi]); err != nil {
			return err
		}
		lo = hi
	}
	return nil
}

// growVals ensures the scratch value column can hold n entries.
func (s *kernelScratch) growVals(n int) []string {
	if cap(s.vals) < n {
		s.vals = make([]string, n)
	}
	return s.vals[:n]
}

// runMapTask reads a split, applies the mapper, optionally combines, and
// writes R partition files at the task's site. The map/combine/encode
// kernel — pure CPU over data already read — runs as a parallel compute
// phase (tc.Compute), so concurrent map tasks use real cores; the data
// reads/writes and the modeled MapCost stay on the executor token.
func runMapTask(ctx context.Context, tc core.TaskContext, cfg Config, mapIdx int, inputID string) error {
	content, err := tc.Data.Read(ctx, inputID, tc.Site)
	if err != nil {
		return fmt.Errorf("read split: %w", err)
	}
	encoded := make([][]byte, cfg.Reducers)
	sc := getScratch()
	if cap(sc.parts) < cfg.Reducers {
		sc.parts = make([][]KeyValue, cfg.Reducers)
	}
	parts := sc.parts[:cfg.Reducers]
	var kernelErr error
	if !tc.Compute(ctx, func() {
		emit := func(k, v string) {
			r := partitionOf(k, cfg.Reducers)
			parts[r] = append(parts[r], KeyValue{k, v})
		}
		if err := cfg.Map(ctx, inputID, string(content), emit); err != nil {
			kernelErr = fmt.Errorf("map: %w", err)
			return
		}
		for r := range parts {
			kvs := parts[r]
			if cfg.Combine != nil {
				if kvs, err = combine(ctx, cfg.Combine, kvs, sc); err != nil {
					kernelErr = fmt.Errorf("combine: %w", err)
					return
				}
			}
			encoded[r] = Encode(kvs)
		}
	}) {
		sc.parts = parts
		sc.release() // Compute returned without running the kernel
		return ctx.Err()
	}
	sc.parts = parts
	sc.release()
	if kernelErr != nil {
		return kernelErr
	}
	if cfg.MapCost > 0 && !tc.Sleep(ctx, cfg.MapCost) {
		return ctx.Err()
	}
	for r := range encoded {
		if err := tc.Data.Write(ctx, partitionID(cfg.Name, mapIdx, r), encoded[r], tc.Site); err != nil {
			return fmt.Errorf("write partition: %w", err)
		}
	}
	return nil
}

// runReduceTask fetches its partition from every map output (the shuffle),
// groups by key, reduces, and writes one output data-unit. The shuffle
// reads stay on the executor token (they pay modeled transfer costs); the
// decode/group/sort/reduce/encode kernel runs as a parallel compute phase.
func runReduceTask(ctx context.Context, tc core.TaskContext, cfg Config, r int, inputs []string, outID string) error {
	contents := make([][]byte, len(inputs))
	lines := 0
	for i, id := range inputs {
		content, err := tc.Data.Read(ctx, id, tc.Site)
		if err != nil {
			return fmt.Errorf("shuffle read %s: %w", id, err)
		}
		contents[i] = content
		lines += bytes.Count(content, lineSep) + 1
	}
	sc := getScratch()
	if cap(sc.all) < lines {
		sc.all = make([]KeyValue, 0, lines)
	}
	var encoded []byte
	var kernelErr error
	if !tc.Compute(ctx, func() {
		all := sc.all[:0]
		for i, content := range contents {
			var err error
			if all, err = DecodeAppend(all, content); err != nil {
				kernelErr = fmt.Errorf("decode %s: %w", inputs[i], err)
				return
			}
		}
		sc.all = all
		var out []KeyValue
		emit := func(k, v string) { out = append(out, KeyValue{k, v}) }
		if err := groupSorted(all, sc.growVals(len(all)), func(k string, vs []string) error {
			if err := cfg.Reduce(ctx, k, vs, emit); err != nil {
				return fmt.Errorf("reduce key %q: %w", k, err)
			}
			return nil
		}); err != nil {
			kernelErr = err
			return
		}
		encoded = Encode(out)
	}) {
		sc.release() // Compute returned without running the kernel
		return ctx.Err()
	}
	sc.release()
	if kernelErr != nil {
		return kernelErr
	}
	if cfg.ReduceCost > 0 && !tc.Sleep(ctx, cfg.ReduceCost) {
		return ctx.Err()
	}
	return tc.Data.Write(ctx, outID, encoded, tc.Site)
}

// combine groups and pre-reduces a map task's local output, reusing the
// scratch value column (the caller owns sc for the whole kernel).
func combine(ctx context.Context, c Reducer, kvs []KeyValue, sc *kernelScratch) ([]KeyValue, error) {
	var out []KeyValue
	emit := func(k, v string) { out = append(out, KeyValue{k, v}) }
	if err := groupSorted(kvs, sc.growVals(len(kvs)), func(k string, vs []string) error {
		return c(ctx, k, vs, emit)
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// Group collects values per key preserving per-key insertion order.
func Group(kvs []KeyValue) map[string][]string {
	out := make(map[string][]string)
	for _, kv := range kvs {
		out[kv.Key] = append(out[kv.Key], kv.Value)
	}
	return out
}

// partitionOf hashes a key onto one of r partitions.
func partitionOf(key string, r int) int {
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % uint32(r))
}

func partitionID(job string, m, r int) string {
	return fmt.Sprintf("%s.m%d.p%d", job, m, r)
}

// lineSep is the record separator of the Encode format.
var lineSep = []byte{'\n'}

// Encode serializes pairs as quoted tab-separated lines, safe for any byte
// content. The output buffer is sized up front (quoting adds at least the
// two quote characters per field), so typical pair sets encode with one
// allocation.
func Encode(kvs []KeyValue) []byte {
	size := 0
	for i := range kvs {
		size += len(kvs[i].Key) + len(kvs[i].Value) + 6
	}
	b := make([]byte, 0, size)
	for i := range kvs {
		b = strconv.AppendQuote(b, kvs[i].Key)
		b = append(b, '\t')
		b = strconv.AppendQuote(b, kvs[i].Value)
		b = append(b, '\n')
	}
	return b
}

// Decode parses the Encode format.
func Decode(content []byte) ([]KeyValue, error) {
	out, err := DecodeAppend(make([]KeyValue, 0, bytes.Count(content, lineSep)+1), content)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// DecodeAppend decodes the Encode format, appending every pair onto dst
// and returning the extended slice (dst's contents so far are kept even
// on error). The whole payload is converted to a string once; every key
// and value is then a substring of it — strconv.Unquote returns the
// interior of an escape-free quoted string without copying — so decoding
// a shuffle partition costs one allocation for the text plus slice
// growth, not one per line. This is what removes the decode path from
// the allocation profile of the mapreduce benchmarks.
func DecodeAppend(dst []KeyValue, content []byte) ([]KeyValue, error) {
	text := string(content)
	for len(text) > 0 {
		line := text
		if nl := strings.IndexByte(text, '\n'); nl >= 0 {
			line, text = text[:nl], text[nl+1:]
		} else {
			text = ""
		}
		if line == "" {
			continue
		}
		tab := strings.IndexByte(line, '\t')
		if tab < 0 {
			return dst, fmt.Errorf("mapreduce: malformed line %q", line)
		}
		k, err := strconv.Unquote(line[:tab])
		if err != nil {
			return dst, fmt.Errorf("mapreduce: bad key in %q: %w", line, err)
		}
		v, err := strconv.Unquote(line[tab+1:])
		if err != nil {
			return dst, fmt.Errorf("mapreduce: bad value in %q: %w", line, err)
		}
		dst = append(dst, KeyValue{k, v})
	}
	return dst, nil
}

// Collect fetches and decodes all job outputs into one sorted slice.
func Collect(ctx context.Context, mgr *core.Manager, res *Result) ([]KeyValue, error) {
	var mu sync.Mutex
	var all []KeyValue
	wg := vclock.NewGroup(mgr.Clock())
	errs := make([]error, len(res.OutputIDs))
	for i, id := range res.OutputIDs {
		i, id := i, id
		wg.Add(1)
		vclock.Go(mgr.Clock(), func() {
			defer wg.Done()
			sites, ok := mgr.Data().Locate(id)
			if !ok || len(sites) == 0 {
				errs[i] = fmt.Errorf("mapreduce: output %s not found", id)
				return
			}
			content, err := mgr.Data().Read(ctx, id, sites[0])
			if err != nil {
				errs[i] = err
				return
			}
			// Decoding is pure CPU over fetched bytes: run it off-token so
			// concurrent output fetches decode in parallel.
			var kvs []KeyValue
			if !vclock.Compute(mgr.Clock(), ctx, func() { kvs, err = Decode(content) }) {
				errs[i] = ctx.Err()
				return
			}
			if err != nil {
				errs[i] = err
				return
			}
			mu.Lock()
			all = append(all, kvs...)
			mu.Unlock()
		})
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Key != all[j].Key {
			return all[i].Key < all[j].Key
		}
		return all[i].Value < all[j].Value
	})
	return all, nil
}
