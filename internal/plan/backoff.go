package plan

import (
	"time"

	"gopilot/internal/dist"
)

// Backoff shapes the retry delay: Initial·Factor^attempt, capped at Max,
// then spread by ±Jitter. The jitter draw comes from the unit's own
// labeled retry stream, never an ambient source, so the whole retry
// timeline is fixed by the experiment seed — two same-seed runs back off
// at bit-identical virtual instants. Delays are always positive: a retry
// can never re-enter the queue at the instant it failed, which is what
// rules out the zero-delay retry storm against a dead backend.
type Backoff struct {
	// Initial is the delay before the first retry (default 5s).
	Initial time.Duration
	// Max caps the grown delay before jitter (default 5m).
	Max time.Duration
	// Factor is the per-retry growth factor (default 2).
	Factor float64
	// Jitter is the relative spread: the delay is scaled by a factor
	// uniform in [1-Jitter, 1+Jitter]. Zero takes the default 0.2 (values
	// >= 1 are clamped to it); negative disables jitter, making Delay
	// draw nothing from the stream.
	Jitter float64
}

// withDefaults fills zero fields with the documented defaults.
func (b Backoff) withDefaults() Backoff {
	if b.Initial <= 0 {
		b.Initial = 5 * time.Second
	}
	if b.Max <= 0 {
		b.Max = 5 * time.Minute
	}
	if b.Factor < 1 {
		b.Factor = 2
	}
	if b.Jitter == 0 || b.Jitter >= 1 {
		b.Jitter = 0.2
	}
	if b.Jitter < 0 {
		b.Jitter = 0
	}
	return b
}

// Delay returns the backoff before retry number attempt (0-based: the
// first retry gets attempt 0). One uniform draw is consumed from stream
// per call when Jitter is non-zero, so a unit's retry sequence continues
// deterministically across consecutive failures.
func (b Backoff) Delay(attempt int, stream *dist.Stream) time.Duration {
	d := float64(b.Initial)
	for i := 0; i < attempt && d < float64(b.Max); i++ {
		d *= b.Factor
	}
	if d > float64(b.Max) {
		d = float64(b.Max)
	}
	if b.Jitter > 0 {
		d *= 1 + b.Jitter*(2*stream.Float64()-1)
	}
	if d < 1 {
		d = 1 // never zero: eligibility must move strictly forward
	}
	return time.Duration(d)
}
