package plan

// Drift reconciliation: the control plane's desired state (which pilot
// each unit is bound to) is compared against the agents' actual state
// (which units each pilot's work queue and running set hold), and every
// divergence is classified so the manager can correct it. Detection is a
// pure function of the two snapshots; the Reconciler adds only the
// anti-flap memory that keeps a transiently inconsistent snapshot (a
// unit observed between releasing its slot and finalizing) from
// triggering a correction.

// DriftClass classifies a desired-vs-actual divergence.
type DriftClass int

// Drift classes, after persys's reconciler taxonomy.
const (
	// DriftOrphan: an agent holds a unit the control plane no longer
	// binds there (terminal, forgotten, or re-bound elsewhere). The
	// correction releases the agent-side reservation.
	DriftOrphan DriftClass = iota
	// DriftStateMismatch: a live unit is bound to a pilot that is
	// already terminal. The correction routes the unit through the
	// planner's failure path (charge budget, back off, requeue).
	DriftStateMismatch
	// DriftMissingOnAgent: a bound unit is absent from its running
	// pilot's work queue and running set. The correction restores the
	// reservation (and re-queues the unit with the agent if it had not
	// started).
	DriftMissingOnAgent
)

// String implements fmt.Stringer.
func (c DriftClass) String() string {
	switch c {
	case DriftOrphan:
		return "orphan"
	case DriftStateMismatch:
		return "state-mismatch"
	default:
		return "missing-on-agent"
	}
}

// UnitStatus is the desired-state snapshot of one unit.
type UnitStatus struct {
	// ID is the unit id.
	ID string
	// Terminal is true once the unit reached a final state.
	Terminal bool
	// Bound is true while the control plane binds the unit to a pilot.
	Bound bool
	// Started is true once the unit began staging or executing.
	Started bool
	// Pilot is the bound pilot's id ("" when not bound).
	Pilot string
}

// PilotStatus is the actual-state snapshot of one pilot's agent.
type PilotStatus struct {
	// ID is the pilot id.
	ID string
	// Running is true while the agent is live.
	Running bool
	// Terminal is true once the pilot reached a final state.
	Terminal bool
	// Units lists the unit ids the agent holds (work queue ∪ running
	// set), in deterministic order.
	Units []string
}

// Drift is one detected divergence.
type Drift struct {
	// Class is the divergence class.
	Class DriftClass
	// Unit is the affected unit id.
	Unit string
	// Pilot is the pilot on which the divergence was observed.
	Pilot string
}

// DetectDrift compares desired and actual state and returns every
// divergence, in deterministic order: unit-keyed classes follow the
// units slice, orphans follow the pilots slice. It is a pure function of
// its arguments.
func DetectDrift(units []UnitStatus, pilots []PilotStatus) []Drift {
	byUnit := make(map[string]UnitStatus, len(units))
	for _, u := range units {
		byUnit[u.ID] = u
	}
	held := make(map[string]map[string]bool, len(pilots))
	byPilot := make(map[string]PilotStatus, len(pilots))
	for _, p := range pilots {
		byPilot[p.ID] = p
		set := make(map[string]bool, len(p.Units))
		for _, id := range p.Units {
			set[id] = true
		}
		held[p.ID] = set
	}

	var out []Drift
	for _, u := range units {
		if u.Terminal || !u.Bound {
			continue
		}
		p, ok := byPilot[u.Pilot]
		if !ok || p.Terminal {
			out = append(out, Drift{Class: DriftStateMismatch, Unit: u.ID, Pilot: u.Pilot})
			continue
		}
		if p.Running && !held[u.Pilot][u.ID] {
			out = append(out, Drift{Class: DriftMissingOnAgent, Unit: u.ID, Pilot: u.Pilot})
		}
	}
	for _, p := range pilots {
		for _, id := range p.Units {
			u, ok := byUnit[id]
			if !ok || u.Terminal || !u.Bound || u.Pilot != p.ID {
				out = append(out, Drift{Class: DriftOrphan, Unit: id, Pilot: p.ID})
			}
		}
	}
	return out
}

// Reconciler wraps DetectDrift with anti-flap confirmation: a drift is
// emitted only when observed in two consecutive scans. A snapshot taken
// in the instant between a unit releasing its pilot slot and reaching
// its terminal state looks drifted but heals itself; requiring a second
// sighting one reconcile interval later filters such transients while
// leaving the emission instant fully deterministic.
type Reconciler struct {
	seen map[Drift]bool
}

// NewReconciler creates a Reconciler.
func NewReconciler() *Reconciler { return &Reconciler{seen: make(map[Drift]bool)} }

// Observe runs one scan and returns the drifts confirmed by this and the
// previous scan, in detection order.
func (r *Reconciler) Observe(units []UnitStatus, pilots []PilotStatus) []Drift {
	detected := DetectDrift(units, pilots)
	next := make(map[Drift]bool, len(detected))
	var confirmed []Drift
	for _, d := range detected {
		if r.seen[d] {
			confirmed = append(confirmed, d)
		}
		next[d] = true
	}
	r.seen = next
	return confirmed
}
