package plan

import "hash/fnv"

// This file makes federated-broker shard placement planner-visible
// state: where each topic partition's replicas live is a control-plane
// decision, answered here as pure functions of (topic, partition, live
// shard set) so the streaming Cluster stays a thin executor of planner
// decisions — the same desired-vs-actual split the TickPlanner and
// Reconciler give pilot dispatch. Like everything in this package the
// functions read no clock and spawn nothing (seed-audit rule 6): same
// inputs, same placement, on every run.

// ShardReplicas returns the desired replica set for one partition of a
// federated topic over the given live shard ring: replication shards,
// leader first, starting at live[(fnv64(topic)+partition) mod len(live)]
// and continuing in ring order. The topic hash spreads leaders of
// different topics across the ring; the +partition rotation spreads one
// topic's partitions. live must be sorted (the caller's canonical shard
// order); replication is clamped to len(live).
func ShardReplicas(topic string, partition int, live []int, replication int) []int {
	if len(live) == 0 {
		return nil
	}
	if replication <= 0 {
		replication = 1
	}
	if replication > len(live) {
		replication = len(live)
	}
	h := fnv.New64a()
	h.Write([]byte(topic))
	start := int((h.Sum64() + uint64(partition)) % uint64(len(live)))
	out := make([]int, replication)
	for i := range out {
		out[i] = live[(start+i)%len(live)]
	}
	return out
}

// RecruitShard picks the shard to host a new replica of a partition
// whose set is current: the first live shard (ring order, starting past
// the current leader) not already in the set. ok is false when every
// live shard already holds a replica.
func RecruitShard(current, live []int) (int, bool) {
	if len(live) == 0 || len(current) == 0 {
		return 0, false
	}
	// Ring origin: the leader's position in live (the leader is live by
	// the caller's invariant; fall back to 0 if not found).
	origin := 0
	for i, s := range live {
		if s == current[0] {
			origin = i
			break
		}
	}
	for i := 1; i <= len(live); i++ {
		cand := live[(origin+i)%len(live)]
		taken := false
		for _, s := range current {
			if s == cand {
				taken = true
				break
			}
		}
		if !taken {
			return cand, true
		}
	}
	return 0, false
}

// ShardDriftKind classifies one divergence between a partition's actual
// replica set and the desired placement — the shard-placement analogue
// of the pilot Reconciler's orphan / state-mismatch / missing-on-agent
// taxonomy.
type ShardDriftKind int

const (
	// ShardDriftDeadReplica: a replica sits on a shard that is no longer
	// live; correction is to drop it from the set.
	ShardDriftDeadReplica ShardDriftKind = iota
	// ShardDriftNoLeader: no live replica remains — the partition is
	// unavailable and (in this model, which has no on-disk copy to
	// recover) its unconsumed tail is lost. The Cluster refuses the shard
	// failure that would cause this.
	ShardDriftNoLeader
	// ShardDriftUnderReplicated: fewer live replicas than the replication
	// target while spare live shards exist; correction is to recruit one
	// (Shard names it).
	ShardDriftUnderReplicated
)

// String implements fmt.Stringer.
func (k ShardDriftKind) String() string {
	switch k {
	case ShardDriftDeadReplica:
		return "dead-replica"
	case ShardDriftNoLeader:
		return "no-leader"
	case ShardDriftUnderReplicated:
		return "under-replicated"
	default:
		return "unknown-shard-drift"
	}
}

// ShardDrift is one detected divergence plus the shard it concerns: the
// dead replica to drop, or the recruit to add.
type ShardDrift struct {
	Kind  ShardDriftKind
	Shard int
}

// DetectShardDrift compares one partition's actual replica set against
// the live shard set and replication target, returning the ordered
// corrections that reconverge it: dead replicas first (replica order),
// then recruits until the target is met or live shards run out.
// Applying the corrections in order and re-running detection yields
// nothing — the anti-flap property the reconciler tests pin.
func DetectShardDrift(replicas, live []int, replication int) []ShardDrift {
	liveSet := func(s int) bool {
		for _, l := range live {
			if l == s {
				return true
			}
		}
		return false
	}
	var drifts []ShardDrift
	alive := make([]int, 0, len(replicas))
	for _, r := range replicas {
		if liveSet(r) {
			alive = append(alive, r)
		} else {
			drifts = append(drifts, ShardDrift{Kind: ShardDriftDeadReplica, Shard: r})
		}
	}
	if len(alive) == 0 {
		return append(drifts, ShardDrift{Kind: ShardDriftNoLeader, Shard: -1})
	}
	if replication > len(live) {
		replication = len(live)
	}
	for len(alive) < replication {
		r, ok := RecruitShard(alive, live)
		if !ok {
			break
		}
		alive = append(alive, r)
		drifts = append(drifts, ShardDrift{Kind: ShardDriftUnderReplicated, Shard: r})
	}
	return drifts
}
