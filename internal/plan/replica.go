package plan

// Replica log classification for the federated streaming plane.
//
// Each shard keeps a physical per-partition log whose batches are tagged
// with the leadership epoch that appended them. Because there is exactly
// one writer per epoch (the leader serializes appends), two logs agree on
// an offset range iff they agree on the epoch chain covering it — so
// divergence detection reduces to comparing the compact epoch-span chains
// rather than message payloads. These functions are pure decision logic:
// no clocks, no locks, no I/O (seed-audit rule: the control plane never
// touches time).

// EpochSpan records that offsets in [Start, nextSpan.Start) were appended
// under the given leadership epoch. A log's chain is ordered by Start and
// the final span extends to the log's end offset.
type EpochSpan struct {
	Start int64
	Epoch int
}

// epochAt returns the epoch governing offset o in the given chain, or
// (-1, false) if o precedes every span (the chain has been trimmed past
// the point of interest — caller should treat as unknown).
func epochAt(spans []EpochSpan, o int64) (int, bool) {
	e, ok := -1, false
	for _, s := range spans {
		if s.Start > o {
			break
		}
		e, ok = s.Epoch, true
	}
	return e, ok
}

// DivergencePoint compares a replica's epoch-span chain against the
// leader's over [from, replicaEnd) and returns the first offset at which
// the replica's log provably disagrees with the leader's, plus whether
// such a point exists.
//
//   - A replica that is merely *short* (replicaEnd < leaderEnd, chains
//     matching over its range) is lagging, not diverged: returns (0, false).
//   - A replica holding offsets the leader does not (replicaEnd >
//     leaderEnd) is diverged at leaderEnd: those entries were acknowledged
//     only locally by a deposed leader.
//   - A replica whose epoch at some offset differs from the leader's epoch
//     at the same offset is diverged at the first such offset.
//
// Offsets below `from` (trimmed on either side) are assumed consistent:
// trimming only discards offsets below the quorum watermark, which both
// logs agreed on by definition.
func DivergencePoint(leader, replica []EpochSpan, from, leaderEnd, replicaEnd int64) (int64, bool) {
	if replicaEnd > leaderEnd {
		// Suffix the leader does not have. Check the shared range first:
		// it may diverge even earlier.
		if at, ok := DivergencePoint(leader, replica, from, leaderEnd, leaderEnd); ok {
			return at, true
		}
		return leaderEnd, true
	}
	// Walk the boundary offsets of both chains within [from, replicaEnd):
	// epochs are constant between boundaries, so checking each boundary
	// (and `from` itself) covers the whole range.
	check := func(o int64) (int64, bool) {
		if o < from || o >= replicaEnd {
			return 0, false
		}
		le, lok := epochAt(leader, o)
		re, rok := epochAt(replica, o)
		if lok && rok && le != re {
			return o, true
		}
		return 0, false
	}
	best, found := int64(0), false
	consider := func(o int64) {
		if at, ok := check(o); ok && (!found || at < best) {
			best, found = at, ok
		}
	}
	consider(from)
	for _, s := range leader {
		consider(s.Start)
	}
	for _, s := range replica {
		consider(s.Start)
	}
	return best, found
}

// ReplicaState classifies a follower log relative to its leader.
type ReplicaState int

const (
	// ReplicaSynced: identical epoch chain, identical end offset.
	ReplicaSynced ReplicaState = iota
	// ReplicaLagging: a strict prefix of the leader's log (matching
	// chain, shorter end). Catch-up streaming will close the gap.
	ReplicaLagging
	// ReplicaDiverged: holds offsets whose epoch disagrees with the
	// leader's, or offsets past the leader's end. Must be truncated to
	// the divergence point and re-streamed.
	ReplicaDiverged
)

// String implements fmt.Stringer.
func (s ReplicaState) String() string {
	switch s {
	case ReplicaSynced:
		return "synced"
	case ReplicaLagging:
		return "lagging"
	case ReplicaDiverged:
		return "diverged"
	default:
		return "unknown"
	}
}

// ReplicaReport is the result of classifying one follower against its
// leader: the state, the replication lag in messages (leader end −
// replica end, never negative), and — when diverged — the first bad
// offset to truncate to.
type ReplicaReport struct {
	State      ReplicaState
	Lag        int64
	DivergedAt int64
}

// ClassifyReplica compares a follower log against the leader's and
// reports synced / lagging / diverged plus the lag in messages. `from`
// bounds the comparison below (offsets below it are trimmed-and-agreed).
func ClassifyReplica(leader, replica []EpochSpan, from, leaderEnd, replicaEnd int64) ReplicaReport {
	r := ReplicaReport{}
	if leaderEnd > replicaEnd {
		r.Lag = leaderEnd - replicaEnd
	}
	if at, ok := DivergencePoint(leader, replica, from, leaderEnd, replicaEnd); ok {
		r.State = ReplicaDiverged
		r.DivergedAt = at
		return r
	}
	if r.Lag > 0 {
		r.State = ReplicaLagging
	}
	return r
}
