package plan

import "testing"

func spans(pairs ...int64) []EpochSpan {
	out := make([]EpochSpan, 0, len(pairs)/2)
	for i := 0; i+1 < len(pairs); i += 2 {
		out = append(out, EpochSpan{Start: pairs[i], Epoch: int(pairs[i+1])})
	}
	return out
}

func TestDivergencePointSyncedAndLagging(t *testing.T) {
	leader := spans(0, 0, 100, 1)
	// Identical chain, identical end: synced.
	if _, ok := DivergencePoint(leader, spans(0, 0, 100, 1), 0, 150, 150); ok {
		t.Fatalf("identical logs reported diverged")
	}
	// Strict prefix (shorter, chain matches): lagging, not diverged.
	if _, ok := DivergencePoint(leader, spans(0, 0), 0, 150, 80); ok {
		t.Fatalf("lagging prefix reported diverged")
	}
	// Prefix that includes part of the second epoch.
	if _, ok := DivergencePoint(leader, spans(0, 0, 100, 1), 0, 150, 120); ok {
		t.Fatalf("lagging prefix across epoch boundary reported diverged")
	}
}

func TestDivergencePointStaleSuffix(t *testing.T) {
	// Replica kept writing under epoch 0 past offset 100 while the new
	// leader's chain switches to epoch 1 at 100.
	leader := spans(0, 0, 100, 1)
	replica := spans(0, 0)
	at, ok := DivergencePoint(leader, replica, 0, 150, 130)
	if !ok || at != 100 {
		t.Fatalf("DivergencePoint = (%d,%v), want (100,true)", at, ok)
	}
}

func TestDivergencePointReplicaLonger(t *testing.T) {
	// Replica holds offsets past the leader's end under the same epoch:
	// locally-acked-only suffix, diverged at leaderEnd.
	leader := spans(0, 0)
	replica := spans(0, 0)
	at, ok := DivergencePoint(leader, replica, 0, 100, 120)
	if !ok || at != 100 {
		t.Fatalf("DivergencePoint = (%d,%v), want (100,true)", at, ok)
	}
	// Longer AND chain-diverged earlier: the earlier point wins.
	leader = spans(0, 0, 50, 2)
	replica = spans(0, 0, 50, 1)
	at, ok = DivergencePoint(leader, replica, 0, 100, 120)
	if !ok || at != 50 {
		t.Fatalf("DivergencePoint = (%d,%v), want (50,true)", at, ok)
	}
}

func TestDivergencePointRespectsFrom(t *testing.T) {
	// Disagreement exists only below `from` (both trimmed past it):
	// treated as consistent.
	leader := spans(0, 0, 100, 2)
	replica := spans(0, 0, 100, 1, 140, 2)
	at, ok := DivergencePoint(leader, replica, 140, 200, 200)
	if ok {
		t.Fatalf("divergence below from reported: at=%d", at)
	}
	// With from lowered the epoch-1 stretch is visible again.
	at, ok = DivergencePoint(leader, replica, 100, 200, 200)
	if !ok || at != 100 {
		t.Fatalf("DivergencePoint = (%d,%v), want (100,true)", at, ok)
	}
}

func TestDivergencePointMidSpanBoundary(t *testing.T) {
	// Divergence boundary falls inside a leader span: first replica
	// boundary past `from` is the detection point.
	leader := spans(0, 0, 80, 1, 160, 3)
	replica := spans(0, 0, 80, 1, 160, 2)
	at, ok := DivergencePoint(leader, replica, 90, 200, 200)
	if !ok || at != 160 {
		t.Fatalf("DivergencePoint = (%d,%v), want (160,true)", at, ok)
	}
}

func TestClassifyReplica(t *testing.T) {
	leader := spans(0, 0, 100, 1)
	if r := ClassifyReplica(leader, spans(0, 0, 100, 1), 0, 150, 150); r.State != ReplicaSynced || r.Lag != 0 {
		t.Fatalf("synced: got %+v", r)
	}
	if r := ClassifyReplica(leader, spans(0, 0), 0, 150, 90); r.State != ReplicaLagging || r.Lag != 60 {
		t.Fatalf("lagging: got %+v", r)
	}
	r := ClassifyReplica(leader, spans(0, 0), 0, 150, 130)
	if r.State != ReplicaDiverged || r.DivergedAt != 100 || r.Lag != 20 {
		t.Fatalf("diverged: got %+v", r)
	}
	for _, s := range []ReplicaState{ReplicaSynced, ReplicaLagging, ReplicaDiverged, ReplicaState(99)} {
		if s.String() == "" {
			t.Fatalf("empty String for %d", int(s))
		}
	}
}
