// Package plan is gopilot's control plane: one deep module that answers
// "what should be dispatched at this virtual instant?". The TickPlanner
// owns everything the answer depends on — the pending-unit queue, the
// per-backend dispatch watermarks, the placement policy (first-fit by
// default, with the manager's pluggable Scheduler wired in as a
// PolicyFunc), the overlap/guard checks that keep a unit from being
// dispatched twice, and the retry state (shared budget plus exponential
// backoff with deterministic jitter). The Reconciler in this package is
// the matching desired-vs-actual drift detector. core.Manager shrinks to
// the thin shell the P* model describes: it feeds the planner world
// snapshots and executes the decisions it gets back.
//
// The package is deliberately pure with respect to time and concurrency:
// it never reads a clock, never sleeps, and spawns no goroutines — every
// entry point takes the current virtual instant as an argument and is
// called under the manager's lock. That purity is what keeps same-seed
// runs bit-identical (and is enforced by seed-audit rule 6).
package plan

import (
	"time"

	"gopilot/internal/dist"
)

// UnitSpec is the planner's view of a compute unit: just what placement
// and retry accounting need, so the package stays independent of core.
type UnitSpec struct {
	// ID is the manager-assigned unit id.
	ID string
	// Ordinal is the unit's submission ordinal; it labels the unit's slot
	// in the planner's "retry" stream subtree ("retry"/<ordinal>).
	Ordinal uint64
	// Cores is the unit's core requirement.
	Cores int
	// MaxRetries bounds the unit's shared failure budget: a unit may be
	// re-dispatched at most MaxRetries times after its first dispatch,
	// counting both pre-start strandings and mid-execution pilot losses.
	MaxRetries int
}

// Candidate is a pilot able to host a unit at the planning instant.
type Candidate struct {
	// ID is the pilot id.
	ID string
	// Backend identifies the backend/site hosting the pilot, the key of
	// the planner's dispatch watermarks.
	Backend string
	// FreeCores is the pilot's unreserved capacity right now.
	FreeCores int
}

// PolicyFunc picks a pilot for a unit from a non-empty candidate list,
// returning its ID, or "" to defer the unit to a later tick.
type PolicyFunc func(u UnitSpec, candidates []Candidate) string

// Executor is the planner's hand back into the world. Plan calls it
// synchronously, one decision at a time, so each Bind is applied before
// the next unit's candidates are gathered — placement therefore sees the
// capacity consumed by earlier decisions of the same tick, exactly as
// the pre-planner dispatch loop did.
type Executor interface {
	// Candidates returns the pilots able to host u at this instant, in
	// stable (pilot submission) order, with current free capacity.
	Candidates(u UnitSpec) []Candidate
	// Bind reserves u onto the chosen pilot and hands it to the agent.
	Bind(u UnitSpec, pilotID string)
}

// FailureClass distinguishes how a dispatched unit came back.
type FailureClass int

// Failure classes. Both draw on the same MaxRetries budget; they are
// distinguished so reconciliation and stats can tell a pilot that died
// before pickup from one that died under a running unit.
const (
	// FailurePreStart: the pilot terminated before the agent picked the
	// unit up (stranded in the work queue).
	FailurePreStart FailureClass = iota
	// FailureExecution: the pilot was lost while the unit was staging or
	// executing.
	FailureExecution
)

// String implements fmt.Stringer.
func (c FailureClass) String() string {
	if c == FailurePreStart {
		return "pre-start"
	}
	return "execution"
}

// Verdict is the planner's ruling on a failed dispatch.
type Verdict struct {
	// Retry is true when budget remains and the unit was requeued.
	Retry bool
	// Charges is the total failures charged against the unit's budget so
	// far, including this one.
	Charges int
	// Delay is the backoff applied before the unit is eligible again
	// (zero when Retry is false).
	Delay time.Duration
	// RetryAt is the virtual instant the unit becomes dispatchable again.
	RetryAt time.Time
}

// Watermark tracks dispatch progress onto one backend.
type Watermark struct {
	// LastDispatch is the virtual instant of the most recent bind.
	LastDispatch time.Time
	// Dispatched counts binds onto the backend over the planner's life.
	Dispatched int
	// InFlight counts units currently bound and not yet returned.
	InFlight int
}

// Config configures a Planner.
type Config struct {
	// Stream is the planner's slot on the seeding spine; retry jitter for
	// unit <ordinal> is drawn from Stream.Named("retry")/<ordinal>, so a
	// retry never shifts any other component's draws. Defaults to
	// dist.Unseeded("plan").
	Stream *dist.Stream
	// Policy picks a pilot from the candidates; nil means first-fit
	// (first candidate wins, which with submission-order iteration is
	// FIFO with opportunistic backfill).
	Policy PolicyFunc
	// Backoff shapes the retry delay; zero fields take the defaults
	// documented on Backoff.
	Backoff Backoff
}

// unitRec is the planner's per-unit bookkeeping.
type unitRec struct {
	spec    UnitSpec
	retry   *dist.Stream // "retry"/<ordinal>: jitter draws, one per retry
	queued  bool         // present in the pending queue
	bound   bool         // dispatched and not yet returned
	backend string       // watermark key while bound
	charges int          // failures charged against MaxRetries
	retryAt time.Time    // eligibility gate while queued after a failure
}

// Planner is the TickPlanner. It is not self-synchronizing: the owning
// manager serializes all calls (and the Executor callbacks they make)
// under its own lock, which is also what makes a planning tick atomic
// with respect to pilot arrivals and failures.
type Planner struct {
	policy     PolicyFunc
	backoff    Backoff
	retryRoot  *dist.Stream
	units      map[string]*unitRec
	queue      []string // pending unit IDs in arrival (re-)order
	watermarks map[string]*Watermark
	backends   []string // watermark keys in first-dispatch order
}

// New creates a Planner.
func New(cfg Config) *Planner {
	if cfg.Stream == nil {
		cfg.Stream = dist.Unseeded("plan")
	}
	if cfg.Policy == nil {
		cfg.Policy = func(u UnitSpec, cands []Candidate) string { return cands[0].ID }
	}
	return &Planner{
		policy:     cfg.Policy,
		backoff:    cfg.Backoff.withDefaults(),
		retryRoot:  cfg.Stream.Named("retry"),
		units:      make(map[string]*unitRec),
		watermarks: make(map[string]*Watermark),
	}
}

// Admit registers a new unit and appends it to the pending queue.
func (p *Planner) Admit(spec UnitSpec) {
	if _, ok := p.units[spec.ID]; ok {
		return
	}
	p.units[spec.ID] = &unitRec{
		spec:   spec,
		retry:  p.retryRoot.SplitLabel(spec.Ordinal),
		queued: true,
	}
	p.queue = append(p.queue, spec.ID)
}

// Forget removes a unit from the planner (terminal or canceled). Its
// queue entry, if any, is dropped lazily on the next tick.
func (p *Planner) Forget(id string) {
	r, ok := p.units[id]
	if !ok {
		return
	}
	if r.bound {
		p.watermarks[r.backend].InFlight--
	}
	delete(p.units, id)
}

// Plan runs one planning tick at the given virtual instant: pending
// units, in queue order, are gated on their retry eligibility, guarded
// against double dispatch, offered to the policy, and bound through the
// executor. Units that fit nowhere stay queued, so smaller later units
// may bind first (backfill inside the pilot pool). The returned instant
// is the earliest pending retry eligibility, or zero if nothing is
// waiting on time — the manager schedules its next self-wake from it.
func (p *Planner) Plan(now time.Time, ex Executor) (nextWake time.Time) {
	keep := p.queue[:0]
	for _, id := range p.queue {
		r, ok := p.units[id]
		if !ok || !r.queued || r.bound {
			continue // forgotten, or guard: already dispatched
		}
		if !r.retryAt.IsZero() && r.retryAt.After(now) {
			keep = append(keep, id)
			if nextWake.IsZero() || r.retryAt.Before(nextWake) {
				nextWake = r.retryAt
			}
			continue
		}
		cands := ex.Candidates(r.spec)
		if len(cands) == 0 {
			keep = append(keep, id)
			continue
		}
		pilot := p.policy(r.spec, cands)
		if pilot == "" {
			keep = append(keep, id)
			continue
		}
		backend := ""
		for _, c := range cands {
			if c.ID == pilot {
				backend = c.Backend
				break
			}
		}
		r.queued = false
		r.bound = true
		r.backend = backend
		r.retryAt = time.Time{}
		p.noteDispatch(backend, now)
		ex.Bind(r.spec, pilot)
	}
	p.queue = keep
	return nextWake
}

// NoteFailure charges one failure of the given class against the unit's
// budget and rules on a retry. With budget left the unit re-enters the
// queue, eligible again after an exponential-backoff delay with
// deterministic jitter from its own retry stream; otherwise the planner
// forgets it and the caller finalizes it as failed.
func (p *Planner) NoteFailure(id string, class FailureClass, now time.Time) Verdict {
	r, ok := p.units[id]
	if !ok {
		return Verdict{}
	}
	if r.bound {
		p.watermarks[r.backend].InFlight--
		r.bound = false
		r.backend = ""
	}
	r.charges++
	if r.charges > r.spec.MaxRetries {
		delete(p.units, id)
		return Verdict{Retry: false, Charges: r.charges}
	}
	d := p.backoff.Delay(r.charges-1, r.retry)
	r.retryAt = now.Add(d)
	if !r.queued {
		r.queued = true
		p.queue = append(p.queue, id)
	}
	return Verdict{Retry: true, Charges: r.charges, Delay: d, RetryAt: r.retryAt}
}

// Charges returns the failures charged against a unit's budget so far.
func (p *Planner) Charges(id string) int {
	if r, ok := p.units[id]; ok {
		return r.charges
	}
	return 0
}

// PendingLen returns the number of units awaiting dispatch (including
// units parked in backoff).
func (p *Planner) PendingLen() int {
	n := 0
	for _, id := range p.queue {
		if r, ok := p.units[id]; ok && r.queued && !r.bound {
			n++
		}
	}
	return n
}

// DrainPending removes and returns every queued unit ID in queue order —
// the manager's shutdown path, which finalizes them as canceled.
func (p *Planner) DrainPending() []string {
	var out []string
	for _, id := range p.queue {
		r, ok := p.units[id]
		if !ok || !r.queued || r.bound {
			continue
		}
		r.queued = false
		delete(p.units, id)
		out = append(out, id)
	}
	p.queue = nil
	return out
}

// Watermarks returns a copy of the per-backend dispatch watermarks, in
// first-dispatch order.
func (p *Planner) Watermarks() map[string]Watermark {
	out := make(map[string]Watermark, len(p.backends))
	for _, b := range p.backends {
		out[b] = *p.watermarks[b]
	}
	return out
}

func (p *Planner) noteDispatch(backend string, now time.Time) {
	w, ok := p.watermarks[backend]
	if !ok {
		w = &Watermark{}
		p.watermarks[backend] = w
		p.backends = append(p.backends, backend)
	}
	w.LastDispatch = now
	w.Dispatched++
	w.InFlight++
}
