package plan

import (
	"reflect"
	"testing"
)

func TestDetectDriftClassifiesAllThreeClasses(t *testing.T) {
	units := []UnitStatus{
		{ID: "u-ok", Bound: true, Started: true, Pilot: "p-live"},
		{ID: "u-dead-pilot", Bound: true, Pilot: "p-dead"},
		{ID: "u-ghost-pilot", Bound: true, Pilot: "p-unknown"},
		{ID: "u-missing", Bound: true, Started: true, Pilot: "p-live"},
		{ID: "u-done", Terminal: true},
		{ID: "u-moved", Bound: true, Pilot: "p-live2"},
	}
	pilots := []PilotStatus{
		{ID: "p-live", Running: true, Units: []string{"u-ok", "u-done", "u-moved"}},
		{ID: "p-live2", Running: true, Units: []string{"u-moved"}},
		{ID: "p-dead", Terminal: true},
	}
	got := DetectDrift(units, pilots)
	want := []Drift{
		{Class: DriftStateMismatch, Unit: "u-dead-pilot", Pilot: "p-dead"},
		{Class: DriftStateMismatch, Unit: "u-ghost-pilot", Pilot: "p-unknown"},
		{Class: DriftMissingOnAgent, Unit: "u-missing", Pilot: "p-live"},
		{Class: DriftOrphan, Unit: "u-done", Pilot: "p-live"},
		{Class: DriftOrphan, Unit: "u-moved", Pilot: "p-live"},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("DetectDrift:\n got  %v\n want %v", got, want)
	}
}

func TestDetectDriftCleanWorldIsQuiet(t *testing.T) {
	units := []UnitStatus{
		{ID: "u1", Bound: true, Started: true, Pilot: "p1"},
		{ID: "u2", Bound: true, Pilot: "p1"},
		{ID: "u3"}, // pending, unbound
		{ID: "u4", Terminal: true},
	}
	pilots := []PilotStatus{
		{ID: "p1", Running: true, Units: []string{"u1", "u2"}},
		{ID: "p2"}, // still pending: holds nothing, binds nothing
	}
	if got := DetectDrift(units, pilots); len(got) != 0 {
		t.Fatalf("clean world reported drift: %v", got)
	}
}

func TestDetectDriftPendingPilotIsNotMissing(t *testing.T) {
	// A unit bound to a pilot whose agent has not come up yet is in a
	// legitimate hand-off window, not drifted: missing-on-agent requires a
	// Running pilot.
	units := []UnitStatus{{ID: "u1", Bound: true, Pilot: "p1"}}
	pilots := []PilotStatus{{ID: "p1"}}
	if got := DetectDrift(units, pilots); len(got) != 0 {
		t.Fatalf("hand-off window reported drift: %v", got)
	}
}

func TestReconcilerConfirmsOnSecondSighting(t *testing.T) {
	r := NewReconciler()
	units := []UnitStatus{{ID: "u1", Bound: true, Started: true, Pilot: "p1"}}
	pilots := []PilotStatus{{ID: "p1", Running: true}}
	if got := r.Observe(units, pilots); len(got) != 0 {
		t.Fatalf("first sighting already confirmed: %v", got)
	}
	got := r.Observe(units, pilots)
	want := []Drift{{Class: DriftMissingOnAgent, Unit: "u1", Pilot: "p1"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("second sighting: got %v, want %v", got, want)
	}
}

func TestReconcilerForgetsHealedTransients(t *testing.T) {
	r := NewReconciler()
	drifted := []UnitStatus{{ID: "u1", Bound: true, Started: true, Pilot: "p1"}}
	pilots := []PilotStatus{{ID: "p1", Running: true}}
	healed := []UnitStatus{{ID: "u1", Terminal: true}}

	r.Observe(drifted, pilots) // first sighting
	if got := r.Observe(healed, pilots); len(got) != 0 {
		t.Fatalf("healed world confirmed drift: %v", got)
	}
	// The sighting memory must have been cleared: a re-appearance starts
	// the two-scan confirmation over.
	if got := r.Observe(drifted, pilots); len(got) != 0 {
		t.Fatalf("stale sighting survived a clean scan: %v", got)
	}
}
