package plan

import (
	"testing"
	"time"

	"gopilot/internal/dist"
)

var t0 = time.Date(2020, 3, 25, 0, 0, 0, 0, time.UTC)

// fakeExec is a scripted Executor: a fixed pilot pool whose capacity is
// debited by Bind, so planner ticks see their own earlier decisions the
// way the manager's live callbacks do.
type fakeExec struct {
	pilots []Candidate // mutated in place: FreeCores tracks binds
	binds  [][2]string // (unit, pilot) in bind order
}

func (e *fakeExec) Candidates(u UnitSpec) []Candidate {
	var out []Candidate
	for _, p := range e.pilots {
		if p.FreeCores >= u.Cores {
			out = append(out, p)
		}
	}
	return out
}

func (e *fakeExec) Bind(u UnitSpec, pilotID string) {
	for i := range e.pilots {
		if e.pilots[i].ID == pilotID {
			e.pilots[i].FreeCores -= u.Cores
		}
	}
	e.binds = append(e.binds, [2]string{u.ID, pilotID})
}

func newPlanner(b Backoff) *Planner {
	return New(Config{Stream: dist.NewStream(42), Backoff: b})
}

func TestPlanFirstFitSeesEarlierBindsOfSameTick(t *testing.T) {
	p := newPlanner(Backoff{})
	p.Admit(UnitSpec{ID: "u1", Ordinal: 1, Cores: 3})
	p.Admit(UnitSpec{ID: "u2", Ordinal: 2, Cores: 3})
	p.Admit(UnitSpec{ID: "u3", Ordinal: 3, Cores: 1})
	ex := &fakeExec{pilots: []Candidate{{ID: "pA", Backend: "local://a", FreeCores: 4}}}

	if next := p.Plan(t0, ex); !next.IsZero() {
		t.Fatalf("nextWake = %v, want zero (nothing in backoff)", next)
	}
	// u1 takes 3 of pA's 4 cores inside the tick; u2 no longer fits, but
	// the smaller u3 backfills.
	want := [][2]string{{"u1", "pA"}, {"u3", "pA"}}
	if len(ex.binds) != len(want) || ex.binds[0] != want[0] || ex.binds[1] != want[1] {
		t.Fatalf("binds = %v, want %v", ex.binds, want)
	}
	if n := p.PendingLen(); n != 1 {
		t.Fatalf("PendingLen = %d, want 1 (u2 deferred)", n)
	}
}

func TestPlanGuardsAgainstDoubleDispatch(t *testing.T) {
	p := newPlanner(Backoff{})
	p.Admit(UnitSpec{ID: "u1", Ordinal: 1, Cores: 1})
	ex := &fakeExec{pilots: []Candidate{{ID: "pA", Backend: "local://a", FreeCores: 8}}}
	p.Plan(t0, ex)
	p.Plan(t0.Add(time.Second), ex)
	if len(ex.binds) != 1 {
		t.Fatalf("bound unit was re-dispatched: binds = %v", ex.binds)
	}
}

func TestNoteFailureBudgetExactlyMaxRetriesPlusOne(t *testing.T) {
	p := newPlanner(Backoff{})
	p.Admit(UnitSpec{ID: "u1", Ordinal: 1, Cores: 1, MaxRetries: 2})
	now := t0
	for want := 1; want <= 2; want++ {
		v := p.NoteFailure("u1", FailureExecution, now)
		if !v.Retry || v.Charges != want {
			t.Fatalf("failure %d: verdict %+v, want retry with charges %d", want, v, want)
		}
		if v.Delay <= 0 || !v.RetryAt.Equal(now.Add(v.Delay)) {
			t.Fatalf("failure %d: delay %v retryAt %v inconsistent", want, v.Delay, v.RetryAt)
		}
		now = v.RetryAt
	}
	v := p.NoteFailure("u1", FailurePreStart, now)
	if v.Retry || v.Charges != 3 {
		t.Fatalf("third failure: verdict %+v, want terminal with charges 3", v)
	}
	if c := p.Charges("u1"); c != 0 {
		t.Fatalf("unit not forgotten after exhausted budget: charges %d", c)
	}
}

func TestNoteFailurePreStartChargesBudget(t *testing.T) {
	// A pilot that dies before pickup consumes a retry exactly like a pilot
	// lost mid-execution: with MaxRetries=0 the first strand is terminal.
	p := newPlanner(Backoff{})
	p.Admit(UnitSpec{ID: "u1", Ordinal: 1, Cores: 1, MaxRetries: 0})
	if v := p.NoteFailure("u1", FailurePreStart, t0); v.Retry || v.Charges != 1 {
		t.Fatalf("verdict %+v, want terminal with charges 1", v)
	}
}

func TestRetryGateHoldsUntilRetryAt(t *testing.T) {
	p := newPlanner(Backoff{Initial: 10 * time.Second, Jitter: -1}) // Jitter<0 -> disabled: exact delays
	p.Admit(UnitSpec{ID: "u1", Ordinal: 1, Cores: 1, MaxRetries: 3})
	ex := &fakeExec{pilots: []Candidate{{ID: "pA", Backend: "local://a", FreeCores: 8}}}
	p.Plan(t0, ex)
	v := p.NoteFailure("u1", FailureExecution, t0)
	if !v.Retry {
		t.Fatal("expected retry")
	}
	ex.pilots[0].FreeCores = 8
	// One instant before eligibility: held, and the gate is reported back.
	if next := p.Plan(v.RetryAt.Add(-time.Nanosecond), ex); !next.Equal(v.RetryAt) {
		t.Fatalf("nextWake = %v, want %v", next, v.RetryAt)
	}
	if len(ex.binds) != 1 {
		t.Fatalf("unit dispatched before RetryAt: %v", ex.binds)
	}
	if next := p.Plan(v.RetryAt, ex); !next.IsZero() {
		t.Fatalf("nextWake after re-dispatch = %v, want zero", next)
	}
	if len(ex.binds) != 2 || ex.binds[1] != [2]string{"u1", "pA"} {
		t.Fatalf("unit not re-dispatched at RetryAt: %v", ex.binds)
	}
}

func TestBackoffDelaysGrowAndNeverZero(t *testing.T) {
	b := Backoff{Initial: 5 * time.Second, Max: time.Minute, Factor: 2}.withDefaults()
	s := dist.NewStream(7)
	for attempt := 0; attempt < 8; attempt++ {
		d := b.Delay(attempt, s)
		if d <= 0 {
			t.Fatalf("attempt %d: delay %v, want > 0", attempt, d)
		}
		base := 5 * time.Second << attempt
		if base > time.Minute {
			base = time.Minute
		}
		lo := time.Duration(float64(base) * 0.8)
		hi := time.Duration(float64(base) * 1.2)
		if d < lo || d > hi {
			t.Fatalf("attempt %d: delay %v outside jitter band [%v, %v]", attempt, d, lo, hi)
		}
	}
}

func TestBackoffJitterDeterministicPerStream(t *testing.T) {
	b := Backoff{}.withDefaults()
	a, c := dist.NewStream(99), dist.NewStream(99)
	for i := 0; i < 6; i++ {
		if da, dc := b.Delay(i, a), b.Delay(i, c); da != dc {
			t.Fatalf("attempt %d: same-seed streams disagree: %v vs %v", i, da, dc)
		}
	}
	d99, d100 := dist.NewStream(99), dist.NewStream(100)
	same := true
	for i := 0; i < 6; i++ {
		if b.Delay(i, d99) != b.Delay(i, d100) {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical jitter sequences")
	}
}

func TestWatermarksTrackDispatchAndReturns(t *testing.T) {
	p := newPlanner(Backoff{})
	p.Admit(UnitSpec{ID: "u1", Ordinal: 1, Cores: 1, MaxRetries: 1})
	p.Admit(UnitSpec{ID: "u2", Ordinal: 2, Cores: 1})
	ex := &fakeExec{pilots: []Candidate{
		{ID: "pA", Backend: "local://a", FreeCores: 1},
		{ID: "pB", Backend: "htc://b", FreeCores: 1},
	}}
	p.Plan(t0, ex)
	w := p.Watermarks()
	if len(w) != 2 {
		t.Fatalf("watermarks = %v, want two backends", w)
	}
	if a := w["local://a"]; a.Dispatched != 1 || a.InFlight != 1 || !a.LastDispatch.Equal(t0) {
		t.Fatalf("local://a watermark %+v", a)
	}
	p.NoteFailure("u1", FailureExecution, t0.Add(time.Second))
	p.Forget("u2")
	w = p.Watermarks()
	if w["local://a"].InFlight != 0 || w["htc://b"].InFlight != 0 {
		t.Fatalf("in-flight not released: %+v", w)
	}
	if w["local://a"].Dispatched != 1 || w["htc://b"].Dispatched != 1 {
		t.Fatalf("dispatch counts changed on return: %+v", w)
	}
}

func TestDrainPendingReturnsQueueOrder(t *testing.T) {
	p := newPlanner(Backoff{})
	p.Admit(UnitSpec{ID: "u1", Ordinal: 1, Cores: 64})
	p.Admit(UnitSpec{ID: "u2", Ordinal: 2, Cores: 64})
	p.Admit(UnitSpec{ID: "u3", Ordinal: 3, Cores: 1})
	ex := &fakeExec{pilots: []Candidate{{ID: "pA", Backend: "local://a", FreeCores: 1}}}
	p.Plan(t0, ex) // binds u3 only
	got := p.DrainPending()
	if len(got) != 2 || got[0] != "u1" || got[1] != "u2" {
		t.Fatalf("DrainPending = %v, want [u1 u2]", got)
	}
	if p.PendingLen() != 0 {
		t.Fatalf("queue not empty after drain")
	}
}
