package plan

import (
	"reflect"
	"testing"
)

func TestShardReplicasDeterministicAndClamped(t *testing.T) {
	live := []int{0, 1, 2}
	ref := ShardReplicas("events", 3, live, 2)
	if len(ref) != 2 {
		t.Fatalf("want 2 replicas, got %v", ref)
	}
	if ref[0] == ref[1] {
		t.Fatalf("replica set repeats a shard: %v", ref)
	}
	for i := 0; i < 100; i++ {
		if got := ShardReplicas("events", 3, live, 2); !reflect.DeepEqual(got, ref) {
			t.Fatalf("placement not deterministic: %v vs %v", got, ref)
		}
	}
	// Replication above the live count clamps to every live shard.
	if got := ShardReplicas("events", 0, live, 7); len(got) != len(live) {
		t.Fatalf("want clamp to %d live shards, got %v", len(live), got)
	}
	if got := ShardReplicas("events", 0, nil, 2); got != nil {
		t.Fatalf("want nil placement with no live shards, got %v", got)
	}
}

func TestShardReplicasSpreadsPartitions(t *testing.T) {
	// Consecutive partitions of one topic rotate leaders around the ring:
	// over len(live) consecutive partitions every shard leads exactly once.
	live := []int{0, 1, 2}
	leaders := make(map[int]int)
	for q := 0; q < len(live); q++ {
		leaders[ShardReplicas("events", q, live, 2)[0]]++
	}
	for _, s := range live {
		if leaders[s] != 1 {
			t.Fatalf("leader spread uneven: %v", leaders)
		}
	}
}

func TestRecruitShard(t *testing.T) {
	live := []int{0, 1, 2, 3}
	// Recruit walks the ring from past the leader and skips current members.
	got, ok := RecruitShard([]int{1, 2}, live)
	if !ok || got != 3 {
		t.Fatalf("want recruit 3, got %d ok=%v", got, ok)
	}
	// Wraps around the ring end.
	got, ok = RecruitShard([]int{3, 0}, live)
	if !ok || got != 1 {
		t.Fatalf("want recruit 1, got %d ok=%v", got, ok)
	}
	// Saturated: every live shard already holds a replica.
	if _, ok := RecruitShard([]int{0, 1}, []int{0, 1}); ok {
		t.Fatal("recruited into a saturated ring")
	}
}

func TestDetectShardDriftOrdersCorrections(t *testing.T) {
	// Shard 1 died out of {1,2}: drop the dead replica, then recruit one.
	drifts := DetectShardDrift([]int{1, 2}, []int{0, 2, 3}, 2)
	want := []ShardDrift{
		{Kind: ShardDriftDeadReplica, Shard: 1},
		{Kind: ShardDriftUnderReplicated, Shard: 3},
	}
	if !reflect.DeepEqual(drifts, want) {
		t.Fatalf("drifts = %v, want %v", drifts, want)
	}
	// No live replica left: unavailable.
	drifts = DetectShardDrift([]int{1}, []int{0, 2}, 2)
	if len(drifts) != 2 || drifts[1].Kind != ShardDriftNoLeader {
		t.Fatalf("want dead-replica then no-leader, got %v", drifts)
	}
}

func TestDetectShardDriftAntiFlap(t *testing.T) {
	// Applying the detected corrections and re-running detection yields
	// nothing — across a sweep of replica sets and live sets.
	cases := []struct {
		replicas, live []int
		replication    int
	}{
		{[]int{0, 1}, []int{0, 1, 2}, 2},
		{[]int{0, 1}, []int{1, 2}, 2},
		{[]int{2}, []int{0, 1, 2, 3}, 3},
		{[]int{0, 1, 2}, []int{2}, 2},
		{[]int{3, 1}, []int{0, 1, 2, 3, 4}, 4},
	}
	for _, c := range cases {
		set := append([]int(nil), c.replicas...)
		for _, d := range DetectShardDrift(set, c.live, c.replication) {
			switch d.Kind {
			case ShardDriftDeadReplica:
				out := set[:0]
				for _, s := range set {
					if s != d.Shard {
						out = append(out, s)
					}
				}
				set = out
			case ShardDriftUnderReplicated:
				set = append(set, d.Shard)
			}
		}
		if len(set) == 0 {
			continue // no-leader: nothing to reconverge
		}
		if again := DetectShardDrift(set, c.live, c.replication); len(again) != 0 {
			t.Fatalf("corrections flapped for %+v: second pass found %v (set %v)", c, again, set)
		}
	}
}
