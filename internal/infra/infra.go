// Package infra defines the vocabulary shared by gopilot's simulated
// infrastructures: resource allocations, payloads, and site identities.
//
// The paper's central challenge (Section III/IV) is resource management
// across *heterogeneous* infrastructure — HPC batch systems, HTC pools,
// IaaS clouds, YARN-style big-data clusters and serverless platforms. Each
// lives in a subpackage (hpc, htc, cloud, serverless, yarn) as a faithful
// behavioural simulator: queue waits, matchmaking delays, boot latencies,
// container negotiation and cold starts are all modeled in virtual time.
// The SAGA adaptor layer (package saga) gives them one face; the pilot
// layer (package core) builds late binding on top.
package infra

import (
	"context"
	"fmt"
	"time"
)

// Site identifies a physical location of compute or storage. Data affinity
// in Pilot-Data is expressed in terms of sites: a data unit stored at site
// "clusterA" is cheap to read from pilots at "clusterA" and costs a modeled
// WAN transfer elsewhere.
type Site string

// Allocation describes the concrete resources granted to a job or pilot:
// which site, how many cores, and on which (synthetic) nodes.
type Allocation struct {
	// ID uniquely identifies the allocation within its backend.
	ID string
	// Site is the location of the granted resources.
	Site Site
	// Cores is the total number of cores granted.
	Cores int
	// Nodes lists the node names backing the allocation.
	Nodes []string
	// Granted is the modeled time the resources became available.
	Granted time.Time
}

// String implements fmt.Stringer.
func (a Allocation) String() string {
	return fmt.Sprintf("alloc %s@%s cores=%d nodes=%d", a.ID, a.Site, a.Cores, len(a.Nodes))
}

// Payload is the unit of executable work handed to an infrastructure: for a
// pilot it is the pilot agent, for a directly submitted job it is the
// application task. The context is canceled on walltime expiry, eviction or
// explicit cancellation; payloads must honor it.
type Payload func(ctx context.Context, alloc Allocation) error

// NodeNames builds count synthetic node names with the given prefix
// ("prefix-0001", ...). All backends use it so that allocations are
// recognizable in logs and tests.
func NodeNames(prefix string, count int) []string {
	names := make([]string, count)
	for i := range names {
		names[i] = fmt.Sprintf("%s-%04d", prefix, i)
	}
	return names
}

// CoresOf sums a per-node core count over node names — a convenience for
// backends that grant whole nodes.
func CoresOf(nodes []string, coresPerNode int) int { return len(nodes) * coresPerNode }
