// Package infra defines the vocabulary shared by gopilot's simulated
// infrastructures: resource allocations, payloads, and site identities.
//
// The paper's central challenge (Section III/IV) is resource management
// across *heterogeneous* infrastructure — HPC batch systems, HTC pools,
// IaaS clouds, YARN-style big-data clusters and serverless platforms. Each
// lives in a subpackage (hpc, htc, cloud, serverless, yarn) as a faithful
// behavioural simulator: queue waits, matchmaking delays, boot latencies,
// container negotiation and cold starts are all modeled in virtual time.
// The SAGA adaptor layer (package saga) gives them one face; the pilot
// layer (package core) builds late binding on top.
package infra

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// ErrBackendClosed is the shared sentinel wrapped by every simulated
// backend's "closed" error (hpc.ErrClusterClosed, htc.ErrPoolClosed,
// cloud.ErrClosed, yarn.ErrClosed, serverless.ErrClosed). Callers that
// dispatch across heterogeneous backends test errors.Is(err,
// infra.ErrBackendClosed) instead of enumerating per-backend sentinels.
var ErrBackendClosed = errors.New("infra: backend closed")

// Outcome classifies how a payload run ended, the unified terminal
// taxonomy shared by the backends and the saga adaptor layer.
type Outcome int

// Payload outcomes.
const (
	// OutcomeCompleted: the payload returned nil with a live context.
	OutcomeCompleted Outcome = iota
	// OutcomeCanceled: the context was canceled (walltime, eviction,
	// explicit cancel) — cancellation wins over any payload error.
	OutcomeCanceled
	// OutcomeFailed: the payload returned an error on its own.
	OutcomeFailed
)

// ClassifyOutcome maps a payload run's (context error, payload error)
// pair onto the unified outcome: a canceled context wins, then a payload
// error, else completion. Every adaptor finalizes jobs through this one
// rule, so no backend can drift its completion semantics independently.
func ClassifyOutcome(ctxErr, payloadErr error) Outcome {
	switch {
	case ctxErr != nil:
		return OutcomeCanceled
	case payloadErr != nil:
		return OutcomeFailed
	default:
		return OutcomeCompleted
	}
}

// Site identifies a physical location of compute or storage. Data affinity
// in Pilot-Data is expressed in terms of sites: a data unit stored at site
// "clusterA" is cheap to read from pilots at "clusterA" and costs a modeled
// WAN transfer elsewhere.
type Site string

// Allocation describes the concrete resources granted to a job or pilot:
// which site, how many cores, and on which (synthetic) nodes.
type Allocation struct {
	// ID uniquely identifies the allocation within its backend.
	ID string
	// Site is the location of the granted resources.
	Site Site
	// Cores is the total number of cores granted.
	Cores int
	// Nodes lists the node names backing the allocation.
	Nodes []string
	// Granted is the modeled time the resources became available.
	Granted time.Time
}

// String implements fmt.Stringer.
func (a Allocation) String() string {
	return fmt.Sprintf("alloc %s@%s cores=%d nodes=%d", a.ID, a.Site, a.Cores, len(a.Nodes))
}

// Payload is the unit of executable work handed to an infrastructure: for a
// pilot it is the pilot agent, for a directly submitted job it is the
// application task. The context is canceled on walltime expiry, eviction or
// explicit cancellation; payloads must honor it.
type Payload func(ctx context.Context, alloc Allocation) error

// NodeNames builds count synthetic node names with the given prefix
// ("prefix-0001", ...). All backends use it so that allocations are
// recognizable in logs and tests.
func NodeNames(prefix string, count int) []string {
	names := make([]string, count)
	for i := range names {
		names[i] = fmt.Sprintf("%s-%04d", prefix, i)
	}
	return names
}

// CoresOf sums a per-node core count over node names — a convenience for
// backends that grant whole nodes.
func CoresOf(nodes []string, coresPerNode int) int { return len(nodes) * coresPerNode }
