package serverless

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"gopilot/internal/dist"
	"gopilot/internal/infra"
	"gopilot/internal/vclock"
)

func fastClock() vclock.Clock { return vclock.NewScaled(2000) }

func noop(context.Context, infra.Allocation) error { return nil }

func TestColdThenWarm(t *testing.T) {
	clock := fastClock()
	p := New(Config{
		Name:      "lambda",
		ColdStart: dist.Constant(2),
		WarmStart: dist.Constant(0.01),
		WarmTTL:   time.Hour,
		Clock:     clock,
	})
	if err := p.Invoke(context.Background(), "f", noop); err != nil {
		t.Fatal(err)
	}
	if err := p.Invoke(context.Background(), "f", noop); err != nil {
		t.Fatal(err)
	}
	if p.ColdStarts() != 1 || p.WarmStarts() != 1 {
		t.Fatalf("cold=%d warm=%d, want 1/1", p.ColdStarts(), p.WarmStarts())
	}
}

func TestWarmPoolPerFunction(t *testing.T) {
	clock := fastClock()
	p := New(Config{Name: "l", ColdStart: dist.Constant(1), WarmStart: dist.Constant(0.01), WarmTTL: time.Hour, Clock: clock})
	p.Invoke(context.Background(), "f", noop)
	p.Invoke(context.Background(), "g", noop) // different function: cold again
	if p.ColdStarts() != 2 {
		t.Fatalf("cold = %d, want 2 (per-function pools)", p.ColdStarts())
	}
}

func TestWarmTTLExpiry(t *testing.T) {
	clock := fastClock()
	p := New(Config{Name: "l", ColdStart: dist.Constant(0.5), WarmStart: dist.Constant(0.01), WarmTTL: 5 * time.Second, Clock: clock})
	p.Invoke(context.Background(), "f", noop)
	clock.Sleep(context.Background(), 30*time.Second) // let the container expire
	p.Invoke(context.Background(), "f", noop)
	if p.ColdStarts() != 2 {
		t.Fatalf("cold = %d, want 2 after TTL expiry", p.ColdStarts())
	}
}

func TestConcurrencyLimit(t *testing.T) {
	clock := fastClock()
	p := New(Config{Name: "l", ColdStart: dist.Constant(0.01), WarmStart: dist.Constant(0.01), ConcurrencyLimit: 2, Clock: clock})
	var mu sync.Mutex
	running, peak := 0, 0
	payload := func(ctx context.Context, _ infra.Allocation) error {
		mu.Lock()
		running++
		if running > peak {
			peak = running
		}
		mu.Unlock()
		clock.Sleep(ctx, time.Second)
		mu.Lock()
		running--
		mu.Unlock()
		return nil
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.Invoke(context.Background(), "f", payload)
		}()
	}
	wg.Wait()
	if peak > 2 {
		t.Fatalf("peak concurrency = %d, want ≤ 2", peak)
	}
}

func TestPayloadErrorPropagates(t *testing.T) {
	p := New(Config{Name: "l", ColdStart: dist.Constant(0.01), Clock: fastClock()})
	boom := errors.New("boom")
	err := p.Invoke(context.Background(), "f", func(context.Context, infra.Allocation) error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

func TestInvokeAfterShutdown(t *testing.T) {
	p := New(Config{Name: "l", Clock: fastClock()})
	p.Shutdown()
	if err := p.Invoke(context.Background(), "f", noop); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

func TestCancellationDuringColdStart(t *testing.T) {
	clock := fastClock()
	p := New(Config{Name: "l", ColdStart: dist.Constant(3600), Clock: clock})
	ctx, cancel := context.WithCancel(context.Background())
	go cancel()
	if err := p.Invoke(ctx, "f", noop); err == nil {
		t.Fatal("expected cancellation error")
	}
}

func TestAllocationIsSingleCore(t *testing.T) {
	clock := fastClock()
	p := New(Config{Name: "l", ColdStart: dist.Constant(0.01), Clock: clock})
	var got infra.Allocation
	p.Invoke(context.Background(), "f", func(_ context.Context, a infra.Allocation) error {
		got = a
		return nil
	})
	if got.Cores != 1 {
		t.Fatalf("Cores = %d, want 1", got.Cores)
	}
	if got.Site != infra.Site("l") {
		t.Fatalf("Site = %q, want l", got.Site)
	}
}

func TestLatencyStatsRecorded(t *testing.T) {
	p := New(Config{Name: "l", ColdStart: dist.Constant(0.1), Clock: fastClock()})
	for i := 0; i < 5; i++ {
		p.Invoke(context.Background(), "f", noop)
	}
	if s := p.LatencyStats(); s.N != 5 {
		t.Fatalf("latency samples = %d, want 5", s.N)
	}
}
