// Package serverless simulates a Functions-as-a-Service platform in the
// style of AWS Lambda: per-invocation containers with cold-start latency, a
// warm pool with idle expiry, and an account-level concurrency limit.
// Pilot-Streaming [32] and the serverless streaming study [73] use exactly
// these behaviours: cold starts dominate latency at low rates, and the
// concurrency limit caps throughput.
package serverless

import (
	"context"
	"fmt"
	"sync"
	"time"

	"gopilot/internal/dist"
	"gopilot/internal/infra"
	"gopilot/internal/metrics"
	"gopilot/internal/vclock"
)

// Config describes a simulated FaaS platform.
type Config struct {
	// Name is the platform/site name.
	Name string
	// ColdStart samples cold-start latency in seconds.
	ColdStart dist.Dist
	// WarmStart samples warm-start latency in seconds.
	WarmStart dist.Dist
	// WarmTTL is how long an idle container stays warm.
	WarmTTL time.Duration
	// ConcurrencyLimit bounds simultaneous executions; zero means 1000.
	ConcurrencyLimit int
	// Clock supplies virtual time; defaults to vclock.Real.
	Clock vclock.Clock
	// Stream is the platform's slot on the experiment's seeding spine.
	// When ColdStart/WarmStart are nil and Stream is set, canonical
	// stochastic startup models (lognormal, mean 0.5 s / 5 ms, cv 0.3)
	// are derived from its "cold-start"/"warm-start" children; with
	// neither, the historical constants apply. Defaults to
	// dist.Unseeded("infra/serverless/<name>").
	Stream *dist.Stream
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.Name == "" {
		out.Name = "faas"
	}
	hasStream := out.Stream != nil
	if !hasStream {
		out.Stream = dist.Unseeded("infra/serverless/" + out.Name)
	}
	if out.ColdStart == nil {
		if hasStream {
			out.ColdStart = dist.LogNormalFrom(out.Stream.Named("cold-start"), 0.5, 0.3)
		} else {
			out.ColdStart = dist.Constant(0.5)
		}
	}
	if out.WarmStart == nil {
		if hasStream {
			out.WarmStart = dist.LogNormalFrom(out.Stream.Named("warm-start"), 0.005, 0.3)
		} else {
			out.WarmStart = dist.Constant(0.005)
		}
	}
	if out.WarmTTL <= 0 {
		out.WarmTTL = 10 * time.Minute
	}
	if out.ConcurrencyLimit <= 0 {
		out.ConcurrencyLimit = 1000
	}
	if out.Clock == nil {
		out.Clock = vclock.NewReal()
	}
	return out
}

// Platform is a simulated FaaS provider. Containers are tracked per
// function name: an invocation reuses a warm container when one is idle
// and within TTL, otherwise it pays a cold start.
type Platform struct {
	cfg    Config
	faults infra.Faults

	sem *vclock.Sem // account concurrency limit

	mu     sync.Mutex
	warm   map[string][]time.Time // function -> idle-since timestamps
	nextID int
	closed bool

	coldStarts int
	warmStarts int
	latencies  *metrics.Series
}

// ErrClosed is returned after Shutdown; it wraps infra.ErrBackendClosed
// so heterogeneous dispatchers need only one test.
var ErrClosed = fmt.Errorf("serverless: platform closed: %w", infra.ErrBackendClosed)

// New creates a platform.
func New(cfg Config) *Platform {
	p := &Platform{
		cfg:       cfg.withDefaults(),
		warm:      make(map[string][]time.Time),
		latencies: metrics.NewSeries("invoke_latency_s"),
	}
	p.sem = vclock.NewSem(p.cfg.Clock, p.cfg.ConcurrencyLimit)
	return p
}

// Name returns the platform name.
func (p *Platform) Name() string { return p.cfg.Name }

// Site returns the platform's site identity.
func (p *Platform) Site() infra.Site { return infra.Site(p.cfg.Name) }

// Faults returns the platform's fault switchboard (chaos engineering).
func (p *Platform) Faults() *infra.Faults { return &p.faults }

// ColdStarts returns the number of cold starts so far.
func (p *Platform) ColdStarts() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.coldStarts
}

// WarmStarts returns the number of warm starts so far.
func (p *Platform) WarmStarts() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.warmStarts
}

// LatencyStats summarizes invocation latencies (startup only, seconds).
func (p *Platform) LatencyStats() metrics.Summary { return p.latencies.Summary() }

// Invoke runs fn under the platform's execution model: it acquires a
// concurrency token, pays a cold or warm start, executes the payload on a
// single-core allocation, and returns the container to the warm pool.
func (p *Platform) Invoke(ctx context.Context, function string, fn infra.Payload) error {
	if err := p.faults.Check(); err != nil {
		return fmt.Errorf("serverless: %s: %w", p.cfg.Name, err)
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ErrClosed
	}
	p.mu.Unlock()

	if !p.sem.Acquire(ctx) {
		return ctx.Err()
	}
	defer p.sem.Release()

	start := p.cfg.Clock.Now()
	cold := !p.takeWarm(function)
	var startup time.Duration
	if cold {
		startup = time.Duration(p.cfg.ColdStart.Sample() * float64(time.Second))
	} else {
		startup = time.Duration(p.cfg.WarmStart.Sample() * float64(time.Second))
	}
	if !p.cfg.Clock.Sleep(ctx, startup) {
		return ctx.Err()
	}
	p.mu.Lock()
	if cold {
		p.coldStarts++
	} else {
		p.warmStarts++
	}
	p.nextID++
	id := fmt.Sprintf("%s.%s.%d", p.cfg.Name, function, p.nextID)
	p.mu.Unlock()
	p.latencies.Add(p.cfg.Clock.Since(start).Seconds())

	alloc := infra.Allocation{
		ID:      id,
		Site:    p.Site(),
		Cores:   1,
		Nodes:   []string{id},
		Granted: p.cfg.Clock.Now(),
	}
	err := fn(ctx, alloc)
	p.returnWarm(function)
	return err
}

// takeWarm pops a warm container for the function if one is within TTL.
func (p *Platform) takeWarm(function string) bool {
	now := p.cfg.Clock.Now()
	p.mu.Lock()
	defer p.mu.Unlock()
	pool := p.warm[function]
	// Drop expired entries (kept sorted by idle-since, oldest first).
	live := pool[:0]
	for _, t := range pool {
		if now.Sub(t) <= p.cfg.WarmTTL {
			live = append(live, t)
		}
	}
	if len(live) == 0 {
		p.warm[function] = nil
		return false
	}
	p.warm[function] = live[:len(live)-1]
	return true
}

func (p *Platform) returnWarm(function string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.warm[function] = append(p.warm[function], p.cfg.Clock.Now())
}

// Shutdown closes the platform for new invocations.
func (p *Platform) Shutdown() {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
}
