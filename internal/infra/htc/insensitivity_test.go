package htc

import (
	"context"
	"testing"
	"time"

	"gopilot/internal/dist"
	"gopilot/internal/infra"
	"gopilot/internal/vclock"
)

// TestEvictionDrawsJobInsensitive pins the per-job eviction streams:
// submitting an additional concurrent job must not shift any existing
// job's eviction draws. Under the old pool-wide rand.Rand the draws
// interleaved by execution order, so extra load changed every job's
// retry count.
func TestEvictionDrawsJobInsensitive(t *testing.T) {
	run := func(extra bool) map[string]int {
		clock := vclock.NewVirtual(vclock.Epoch)
		p := New(Config{
			Name: "osg", Slots: 8,
			MatchDelay:   dist.Constant(1),
			EvictionRate: 0.5, MaxRetries: 40,
			Clock: clock, Stream: dist.NewStream(7),
		})
		clock.Adopt()
		defer func() {
			clock.Leave()
			p.Shutdown()
		}()
		payload := func(ctx context.Context, _ infra.Allocation) error {
			if !clock.Sleep(ctx, 30*time.Second) {
				return ctx.Err()
			}
			return nil
		}
		base := make([]*Job, 0, 3)
		for i := 0; i < 3; i++ {
			j, err := p.Submit(JobSpec{Name: "base", Runtime: 30 * time.Second, Payload: payload})
			if err != nil {
				t.Fatal(err)
			}
			base = append(base, j)
		}
		if extra {
			// Concurrent extra load, submitted before anything completes.
			if _, err := p.Submit(JobSpec{Name: "extra", Runtime: 30 * time.Second, Payload: payload}); err != nil {
				t.Fatal(err)
			}
		}
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		out := make(map[string]int, len(base))
		for _, j := range base {
			if s, err := j.Wait(ctx); s != Completed {
				t.Fatalf("job %s: %v (%v)", j.ID(), s, err)
			}
			out[j.ID()] = j.Attempts()
		}
		return out
	}

	alone := run(false)
	loaded := run(true)
	shifted := false
	for id, attempts := range alone {
		if attempts < 1 {
			t.Fatalf("job %s reports %d attempts", id, attempts)
		}
		if loaded[id] != attempts {
			shifted = true
			t.Errorf("job %s: %d attempts alone, %d under extra load", id, attempts, loaded[id])
		}
	}
	if !shifted && len(alone) != 3 {
		t.Fatalf("expected 3 base jobs, got %d", len(alone))
	}
}
