package htc

import (
	"context"
	"testing"
	"time"

	"gopilot/internal/dist"
	"gopilot/internal/infra"
	"gopilot/internal/vclock"
)

// Eviction watchdogs must be executor participants: with a Virtual clock
// and a high eviction rate, jobs retry through eviction without panicking
// and in zero wall time.
func TestVirtualClockEvictionWatchdog(t *testing.T) {
	clock := vclock.NewVirtual(vclock.Epoch)
	p := New(Config{
		Name: "evict", Slots: 4,
		MatchDelay:   dist.Constant(1),
		EvictionRate: 0.5, MaxRetries: 12,
		Clock: clock, Stream: dist.NewStream(3),
	})
	clock.Adopt()
	jobs := make([]*Job, 0, 8)
	for i := 0; i < 8; i++ {
		j, err := p.Submit(JobSpec{
			Name: "e", Runtime: 30 * time.Second,
			Payload: func(ctx context.Context, _ infra.Allocation) error {
				if !clock.Sleep(ctx, 30*time.Second) {
					return ctx.Err()
				}
				return nil
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	for _, j := range jobs {
		if s, err := j.Wait(ctx); s != Completed {
			t.Fatalf("job %s: %v (%v), attempts=%d", j.ID(), s, err, j.Attempts())
		}
	}
	if p.Evictions() == 0 {
		t.Fatal("expected evictions at rate 0.5")
	}
	clock.Leave()
	p.Shutdown()
}
