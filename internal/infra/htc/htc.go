// Package htc simulates a high-throughput computing pool in the style of
// Condor/OSG: a large collection of single-core (or few-core) slots,
// per-job matchmaking overhead, and opportunistic resources that can evict
// a running job at any time. These are exactly the behaviours that make
// per-task submission expensive and unreliable — and that the
// pilot-abstraction hides (paper Section IV).
package htc

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"gopilot/internal/dist"
	"gopilot/internal/infra"
	"gopilot/internal/metrics"
	"gopilot/internal/vclock"
)

// State is the lifecycle state of an HTC job.
type State int

// HTC job states.
const (
	Idle State = iota // matchmaking
	Running
	Completed
	Evicted // terminal only if retries exhausted
	Failed
	Canceled
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Idle:
		return "Idle"
	case Running:
		return "Running"
	case Completed:
		return "Completed"
	case Evicted:
		return "Evicted"
	case Failed:
		return "Failed"
	case Canceled:
		return "Canceled"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Config describes a simulated HTC pool.
type Config struct {
	// Name is the site name.
	Name string
	// Slots is the number of concurrently usable execution slots.
	Slots int
	// CoresPerSlot is the core count of each slot (usually 1).
	CoresPerSlot int
	// MatchDelay samples per-job matchmaking/negotiation overhead in seconds.
	MatchDelay dist.Dist
	// EvictionRate is the per-job probability that a run attempt is evicted
	// partway through (opportunistic resources reclaimed by their owner).
	EvictionRate float64
	// MaxRetries bounds automatic re-matching after eviction.
	MaxRetries int
	// Clock supplies virtual time; defaults to vclock.Real.
	Clock vclock.Clock
	// Stream is the pool's slot on the experiment's seeding spine. Every
	// submitted job draws its eviction sequence from the "evict"/<job
	// ordinal> child, so concurrent jobs never share a generator and
	// submitting an additional job cannot shift an existing job's draws.
	// When MatchDelay is nil and Stream is set, the canonical stochastic
	// matchmaking model (lognormal, mean 15 s, cv 0.5) is derived from the
	// "match-delay" child; with neither, matchmaking is instantaneous.
	// Defaults to dist.Unseeded("infra/htc/<name>").
	Stream *dist.Stream
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.Name == "" {
		out.Name = "htc"
	}
	if out.Slots <= 0 {
		out.Slots = 64
	}
	if out.CoresPerSlot <= 0 {
		out.CoresPerSlot = 1
	}
	hasStream := out.Stream != nil
	if !hasStream {
		out.Stream = dist.Unseeded("infra/htc/" + out.Name)
	}
	if out.MatchDelay == nil {
		if hasStream {
			out.MatchDelay = dist.LogNormalFrom(out.Stream.Named("match-delay"), 15, 0.5)
		} else {
			out.MatchDelay = dist.Constant(0)
		}
	}
	if out.Clock == nil {
		out.Clock = vclock.NewReal()
	}
	if out.MaxRetries < 0 {
		out.MaxRetries = 0
	}
	return out
}

// JobSpec describes an HTC job: a payload that will be granted one slot.
type JobSpec struct {
	// Name labels the job.
	Name string
	// Runtime is the modeled service time of the payload if the payload
	// itself only computes (used for eviction-point sampling). Zero is fine;
	// evictions then trigger immediately after start.
	Runtime time.Duration
	// Payload runs on the granted slot.
	Payload infra.Payload
}

// Job is a handle to a submitted HTC job.
type Job struct {
	id   string
	spec JobSpec

	// rng is the job's own "evict"/<ordinal> stream; evict draws one
	// success/failure per run attempt from it. Per-job streams make the
	// eviction sequence a property of the job's identity, not of how pool
	// load interleaves.
	rng   *dist.Stream
	evict *dist.BernoulliDist

	mu        sync.Mutex
	state     State
	attempts  int
	submitted time.Time
	started   time.Time
	ended     time.Time
	err       error
	cancelled bool

	done *vclock.Event
}

// ID returns the job identifier.
func (j *Job) ID() string { return j.id }

// State returns the current state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Attempts returns how many run attempts were made (1 + evict-retries).
func (j *Job) Attempts() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.attempts
}

// Err returns the terminal error, if any.
func (j *Job) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Done returns a channel closed at terminal state. Participants of a
// Virtual clock must use Wait instead.
func (j *Job) Done() <-chan struct{} { return j.done.Done() }

// Wait blocks for terminal state or ctx cancellation.
func (j *Job) Wait(ctx context.Context) (State, error) {
	if j.done.Wait(ctx) {
		return j.State(), j.Err()
	}
	return j.State(), ctx.Err()
}

// TurnaroundTime is submission-to-termination in modeled time.
func (j *Job) TurnaroundTime() time.Duration {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.ended.IsZero() {
		return 0
	}
	return j.ended.Sub(j.submitted)
}

// Pool is a simulated HTC pool.
type Pool struct {
	cfg    Config
	faults infra.Faults

	slots     *vclock.Sem  // counting semaphore of execution slots
	evictRoot *dist.Stream // parent of per-job eviction streams

	mu     sync.Mutex
	nextID int
	closed bool
	active []*stormHandle // running attempts, in start order (for Storm)

	matchDelays *metrics.Series
	evictions   int

	ctx  context.Context
	stop context.CancelFunc
	wg   *vclock.Group
}

// ErrPoolClosed is returned by Submit after Shutdown; it wraps
// infra.ErrBackendClosed so heterogeneous dispatchers need only one test.
var ErrPoolClosed = fmt.Errorf("htc: pool closed: %w", infra.ErrBackendClosed)

// New creates an HTC pool.
func New(cfg Config) *Pool {
	p := &Pool{
		cfg:         cfg.withDefaults(),
		matchDelays: metrics.NewSeries("match_delay_s"),
	}
	p.slots = vclock.NewSem(p.cfg.Clock, p.cfg.Slots)
	p.wg = vclock.NewGroup(p.cfg.Clock)
	p.evictRoot = p.cfg.Stream.Named("evict")
	p.ctx, p.stop = context.WithCancel(context.Background())
	return p
}

// Name returns the pool's site name.
func (p *Pool) Name() string { return p.cfg.Name }

// Site returns the pool's site identity.
func (p *Pool) Site() infra.Site { return infra.Site(p.cfg.Name) }

// Slots returns the pool capacity in slots.
func (p *Pool) Slots() int { return p.cfg.Slots }

// Faults returns the pool's fault switchboard (chaos engineering).
func (p *Pool) Faults() *infra.Faults { return &p.faults }

// stormHandle exposes a running attempt's eviction controls to Storm.
type stormHandle struct {
	evicted *atomic.Bool
	cancel  context.CancelFunc
}

// Storm evicts every attempt currently running on the pool, in attempt
// start order — the chaos engine's "opportunistic owners reclaim the whole
// pool at once" fault. Evicted attempts retry through the job's normal
// budget. Returns the number of attempts evicted.
func (p *Pool) Storm() int {
	p.mu.Lock()
	hs := append([]*stormHandle(nil), p.active...)
	p.mu.Unlock()
	for _, h := range hs {
		h.evicted.Store(true)
		h.cancel()
	}
	return len(hs)
}

// Evictions returns the total evictions observed.
func (p *Pool) Evictions() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.evictions
}

// MatchDelayStats summarizes observed matchmaking delays (seconds).
func (p *Pool) MatchDelayStats() metrics.Summary { return p.matchDelays.Summary() }

// Submit enqueues a job for matchmaking.
func (p *Pool) Submit(spec JobSpec) (*Job, error) {
	if spec.Payload == nil {
		return nil, errors.New("htc: job spec has nil payload")
	}
	if err := p.faults.Check(); err != nil {
		return nil, fmt.Errorf("htc: %s: %w", p.cfg.Name, err)
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, ErrPoolClosed
	}
	p.nextID++
	rng := p.evictRoot.SplitLabel(uint64(p.nextID))
	j := &Job{
		id:        fmt.Sprintf("%s.%d", p.cfg.Name, p.nextID),
		spec:      spec,
		rng:       rng,
		evict:     dist.BernoulliFrom(rng, p.cfg.EvictionRate),
		state:     Idle,
		submitted: p.cfg.Clock.Now(),
		done:      vclock.NewEvent(p.cfg.Clock),
	}
	p.mu.Unlock()
	p.wg.Add(1)
	vclock.Go(p.cfg.Clock, func() {
		defer p.wg.Done()
		p.run(j)
	})
	return j, nil
}

// Cancel requests job cancellation.
func (p *Pool) Cancel(j *Job) {
	j.mu.Lock()
	j.cancelled = true
	j.mu.Unlock()
}

// Shutdown stops the pool; running payload contexts are canceled.
func (p *Pool) Shutdown() {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.stop()
	p.wg.Wait()
}

func (p *Pool) run(j *Job) {
	for {
		// Matchmaking delay before a slot is even negotiated.
		delay := time.Duration(p.cfg.MatchDelay.Sample() * float64(time.Second))
		p.matchDelays.Add(delay.Seconds())
		if !p.cfg.Clock.Sleep(p.ctx, delay) {
			p.finish(j, Canceled, p.ctx.Err())
			return
		}
		if j.isCancelled() {
			p.finish(j, Canceled, context.Canceled)
			return
		}
		// Acquire a slot.
		if !p.slots.Acquire(p.ctx) {
			p.finish(j, Canceled, p.ctx.Err())
			return
		}
		state, err := p.attempt(j)
		p.slots.Release()
		switch state {
		case Evicted:
			j.mu.Lock()
			retry := j.attempts <= p.cfg.MaxRetries && !j.cancelled
			j.mu.Unlock()
			p.mu.Lock()
			p.evictions++
			p.mu.Unlock()
			if retry {
				continue // rematch
			}
			p.finish(j, Evicted, errors.New("htc: evicted, retries exhausted"))
			return
		default:
			p.finish(j, state, err)
			return
		}
	}
}

// attempt runs the payload once; it may be interrupted by a sampled
// eviction event.
func (p *Pool) attempt(j *Job) (State, error) {
	now := p.cfg.Clock.Now()
	j.mu.Lock()
	j.attempts++
	j.state = Running
	if j.started.IsZero() {
		j.started = now
	}
	attempt := j.attempts
	j.mu.Unlock()

	ctx, cancel := context.WithCancel(p.ctx)
	defer cancel()

	// Eviction lands in the first half of the estimated runtime so that an
	// accurate runtime estimate guarantees interruption; a payload that
	// finishes early simply escapes the eviction, as on a real pool. Both
	// draws come from the job's own labeled stream — two per attempt, so a
	// retry continues the job's sequence.
	var evicted atomic.Bool
	h := &stormHandle{evicted: &evicted, cancel: cancel}
	p.mu.Lock()
	p.active = append(p.active, h)
	p.mu.Unlock()
	defer func() {
		p.mu.Lock()
		for i, x := range p.active {
			if x == h {
				p.active = append(p.active[:i], p.active[i+1:]...)
				break
			}
		}
		p.mu.Unlock()
	}()
	willEvict := j.evict.Sample() == 1
	evictFrac := 0.1 + 0.4*j.rng.Float64()
	if willEvict && j.spec.Runtime > 0 {
		evictAfter := time.Duration(float64(j.spec.Runtime) * evictFrac)
		p.wg.Add(1)
		vclock.Go(p.cfg.Clock, func() {
			defer p.wg.Done()
			if p.cfg.Clock.Sleep(ctx, evictAfter) {
				evicted.Store(true)
				cancel()
			}
		})
	}

	alloc := infra.Allocation{
		ID:      fmt.Sprintf("%s.a%d", j.id, attempt),
		Site:    p.Site(),
		Cores:   p.cfg.CoresPerSlot,
		Nodes:   []string{fmt.Sprintf("%s-slot", p.cfg.Name)},
		Granted: now,
	}
	err := j.spec.Payload(ctx, alloc)
	if evicted.Load() {
		return Evicted, nil
	}
	switch infra.ClassifyOutcome(p.ctx.Err(), err) {
	case infra.OutcomeCanceled:
		return Canceled, p.ctx.Err()
	case infra.OutcomeFailed:
		return Failed, err
	default:
		return Completed, nil
	}
}

func (p *Pool) finish(j *Job, s State, err error) {
	j.mu.Lock()
	j.state = s
	j.err = err
	j.ended = p.cfg.Clock.Now()
	j.mu.Unlock()
	j.done.Fire()
}

func (j *Job) isCancelled() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.cancelled
}
