package htc

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"gopilot/internal/dist"
	"gopilot/internal/infra"
	"gopilot/internal/vclock"
)

func fastClock() vclock.Clock { return vclock.NewScaled(2000) }

func sleeper(d time.Duration, clock vclock.Clock) infra.Payload {
	return func(ctx context.Context, _ infra.Allocation) error {
		if !clock.Sleep(ctx, d) {
			return ctx.Err()
		}
		return nil
	}
}

func TestJobCompletes(t *testing.T) {
	clock := fastClock()
	p := New(Config{Name: "osg", Slots: 4, Clock: clock})
	defer p.Shutdown()
	j, err := p.Submit(JobSpec{Name: "t", Runtime: time.Second, Payload: sleeper(time.Second, clock)})
	if err != nil {
		t.Fatal(err)
	}
	state, err := j.Wait(context.Background())
	if state != Completed || err != nil {
		t.Fatalf("state=%v err=%v", state, err)
	}
	if j.Attempts() != 1 {
		t.Errorf("Attempts = %d, want 1", j.Attempts())
	}
}

func TestMatchDelayApplied(t *testing.T) {
	clock := fastClock()
	p := New(Config{Name: "slow", Slots: 4, MatchDelay: dist.Constant(10), Clock: clock})
	defer p.Shutdown()
	j, _ := p.Submit(JobSpec{Payload: sleeper(0, clock)})
	j.Wait(context.Background())
	if tt := j.TurnaroundTime(); tt < 8*time.Second {
		t.Errorf("turnaround = %v, want ≥ ~10s match delay", tt)
	}
	if s := p.MatchDelayStats(); s.N < 1 {
		t.Error("no match delay samples recorded")
	}
}

func TestSlotsLimitConcurrency(t *testing.T) {
	clock := fastClock()
	p := New(Config{Name: "lim", Slots: 2, Clock: clock})
	defer p.Shutdown()
	var mu sync.Mutex
	running, peak := 0, 0
	payload := func(ctx context.Context, _ infra.Allocation) error {
		mu.Lock()
		running++
		if running > peak {
			peak = running
		}
		mu.Unlock()
		clock.Sleep(ctx, 2*time.Second)
		mu.Lock()
		running--
		mu.Unlock()
		return nil
	}
	jobs := make([]*Job, 8)
	for i := range jobs {
		jobs[i], _ = p.Submit(JobSpec{Runtime: 2 * time.Second, Payload: payload})
	}
	for _, j := range jobs {
		j.Wait(context.Background())
	}
	if peak > 2 {
		t.Fatalf("peak concurrency = %d, want ≤ 2", peak)
	}
}

func TestEvictionWithRetrySucceeds(t *testing.T) {
	clock := fastClock()
	p := New(Config{Name: "ev", Slots: 2, EvictionRate: 1.0, MaxRetries: 50, Clock: clock, MatchDelay: dist.Constant(0)})
	defer p.Shutdown()
	// Payload that succeeds only if not interrupted; with retries it should
	// eventually... never succeed at rate 1.0. Use a payload that finishes
	// instantly so eviction cannot land (Runtime=0 disables eviction timer).
	j, _ := p.Submit(JobSpec{Runtime: 0, Payload: sleeper(0, clock)})
	state, _ := j.Wait(context.Background())
	if state != Completed {
		t.Fatalf("state = %v, want Completed", state)
	}
}

func TestEvictionExhaustsRetries(t *testing.T) {
	clock := fastClock()
	p := New(Config{Name: "ev2", Slots: 1, EvictionRate: 1.0, MaxRetries: 2, Clock: clock, MatchDelay: dist.Constant(0)})
	defer p.Shutdown()
	// The payload runs far past the runtime estimate the eviction point is
	// sampled from, so the eviction always lands first even under heavy
	// wall-clock timer jitter.
	j, _ := p.Submit(JobSpec{Runtime: 5 * time.Second, Payload: sleeper(120*time.Second, clock)})
	state, err := j.Wait(context.Background())
	if state != Evicted {
		t.Fatalf("state = %v err=%v, want Evicted", state, err)
	}
	if j.Attempts() != 3 { // initial + 2 retries
		t.Errorf("Attempts = %d, want 3", j.Attempts())
	}
	if p.Evictions() != 3 {
		t.Errorf("pool evictions = %d, want 3", p.Evictions())
	}
}

func TestNoEvictionAtRateZero(t *testing.T) {
	clock := fastClock()
	p := New(Config{Name: "ev0", Slots: 4, EvictionRate: 0, Clock: clock})
	defer p.Shutdown()
	jobs := make([]*Job, 16)
	for i := range jobs {
		jobs[i], _ = p.Submit(JobSpec{Runtime: time.Second, Payload: sleeper(time.Second, clock)})
	}
	for _, j := range jobs {
		if s, _ := j.Wait(context.Background()); s != Completed {
			t.Fatalf("state = %v, want Completed", s)
		}
	}
	if p.Evictions() != 0 {
		t.Errorf("evictions = %d, want 0", p.Evictions())
	}
}

func TestFailedPayload(t *testing.T) {
	clock := fastClock()
	p := New(Config{Name: "f", Slots: 1, Clock: clock})
	defer p.Shutdown()
	boom := errors.New("boom")
	j, _ := p.Submit(JobSpec{Payload: func(context.Context, infra.Allocation) error { return boom }})
	state, err := j.Wait(context.Background())
	if state != Failed || !errors.Is(err, boom) {
		t.Fatalf("state=%v err=%v", state, err)
	}
}

func TestSubmitAfterShutdown(t *testing.T) {
	p := New(Config{Name: "c", Slots: 1, Clock: fastClock()})
	p.Shutdown()
	if _, err := p.Submit(JobSpec{Payload: sleeper(0, fastClock())}); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("err = %v, want ErrPoolClosed", err)
	}
}

func TestNilPayloadRejected(t *testing.T) {
	p := New(Config{Name: "n", Clock: fastClock()})
	defer p.Shutdown()
	if _, err := p.Submit(JobSpec{}); err == nil {
		t.Fatal("nil payload accepted")
	}
}
