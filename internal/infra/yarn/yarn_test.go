package yarn

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"gopilot/internal/dist"
	"gopilot/internal/vclock"
)

func fastClock() vclock.Clock { return vclock.NewScaled(2000) }

func TestRequestAndRelease(t *testing.T) {
	c := New(Config{Name: "y", TotalCores: 32, AllocDelay: dist.Constant(0.01), Clock: fastClock()})
	defer c.Shutdown()
	cs, err := c.RequestContainers(context.Background(), 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 4 {
		t.Fatalf("got %d containers, want 4", len(cs))
	}
	if c.FreeCores() != 16 {
		t.Fatalf("FreeCores = %d, want 16", c.FreeCores())
	}
	c.Release(cs)
	if c.FreeCores() != 32 {
		t.Fatalf("FreeCores = %d after release, want 32", c.FreeCores())
	}
}

func TestDoubleReleaseIsIdempotent(t *testing.T) {
	c := New(Config{Name: "y", TotalCores: 8, AllocDelay: dist.Constant(0.001), Clock: fastClock()})
	defer c.Shutdown()
	cs, _ := c.RequestContainers(context.Background(), 1, 4)
	c.Release(cs)
	c.Release(cs)
	if c.FreeCores() != 8 {
		t.Fatalf("FreeCores = %d, want 8 (no double credit)", c.FreeCores())
	}
}

func TestBlocksUntilCapacity(t *testing.T) {
	clock := fastClock()
	c := New(Config{Name: "y", TotalCores: 8, AllocDelay: dist.Constant(0.001), Clock: clock})
	defer c.Shutdown()
	first, _ := c.RequestContainers(context.Background(), 2, 4)

	done := make(chan []*Container)
	go func() {
		cs, err := c.RequestContainers(context.Background(), 1, 8)
		if err != nil {
			t.Error(err)
		}
		done <- cs
	}()
	select {
	case <-done:
		t.Fatal("second request should block while capacity is held")
	case <-time.After(20 * time.Millisecond):
	}
	c.Release(first)
	select {
	case cs := <-done:
		c.Release(cs)
	case <-time.After(2 * time.Second):
		t.Fatal("second request never unblocked")
	}
}

func TestTooLargeRejected(t *testing.T) {
	c := New(Config{Name: "y", TotalCores: 8, Clock: fastClock()})
	defer c.Shutdown()
	if _, err := c.RequestContainers(context.Background(), 3, 4); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
}

func TestBadRequestRejected(t *testing.T) {
	c := New(Config{Name: "y", TotalCores: 8, Clock: fastClock()})
	defer c.Shutdown()
	if _, err := c.RequestContainers(context.Background(), 0, 4); err == nil {
		t.Fatal("zero containers accepted")
	}
	if _, err := c.RequestContainers(context.Background(), 1, 0); err == nil {
		t.Fatal("zero cores accepted")
	}
}

func TestContextCancelWhileWaiting(t *testing.T) {
	clock := fastClock()
	c := New(Config{Name: "y", TotalCores: 4, AllocDelay: dist.Constant(0.001), Clock: clock})
	defer c.Shutdown()
	held, _ := c.RequestContainers(context.Background(), 1, 4)
	defer c.Release(held)
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error)
	go func() {
		_, err := c.RequestContainers(ctx, 1, 4)
		errCh <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	if err := <-errCh; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestConcurrentRequestsNeverOversubscribe(t *testing.T) {
	clock := fastClock()
	c := New(Config{Name: "y", TotalCores: 16, AllocDelay: dist.Constant(0.001), Clock: clock})
	defer c.Shutdown()
	var wg sync.WaitGroup
	var mu sync.Mutex
	inUse, peak := 0, 0
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cs, err := c.RequestContainers(context.Background(), 1, 4)
			if err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			inUse += 4
			if inUse > peak {
				peak = inUse
			}
			mu.Unlock()
			clock.Sleep(context.Background(), time.Second)
			mu.Lock()
			inUse -= 4
			mu.Unlock()
			c.Release(cs)
		}()
	}
	wg.Wait()
	if peak > 16 {
		t.Fatalf("peak cores in use = %d, exceeds capacity 16", peak)
	}
	if c.FreeCores() != 16 {
		t.Fatalf("FreeCores = %d, want 16", c.FreeCores())
	}
}

func TestAllocationAggregates(t *testing.T) {
	c := New(Config{Name: "y", TotalCores: 16, AllocDelay: dist.Constant(0.001), Clock: fastClock()})
	defer c.Shutdown()
	cs, _ := c.RequestContainers(context.Background(), 2, 4)
	defer c.Release(cs)
	a := c.Allocation("app1", cs)
	if a.Cores != 8 || len(a.Nodes) != 2 {
		t.Fatalf("alloc = %+v, want 8 cores 2 nodes", a)
	}
}

func TestShutdownUnblocksWaiters(t *testing.T) {
	clock := fastClock()
	c := New(Config{Name: "y", TotalCores: 4, AllocDelay: dist.Constant(0.001), Clock: clock})
	held, _ := c.RequestContainers(context.Background(), 1, 4)
	_ = held
	errCh := make(chan error)
	go func() {
		_, err := c.RequestContainers(context.Background(), 1, 4)
		errCh <- err
	}()
	time.Sleep(10 * time.Millisecond)
	c.Shutdown()
	if err := <-errCh; !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}
