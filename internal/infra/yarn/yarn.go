// Package yarn simulates a Hadoop-YARN-style cluster resource manager:
// applications negotiate containers (bundles of cores) from a resource
// manager with a small allocation latency, and release them when done.
// Pilot-Hadoop [67], [68] manages data-processing frameworks through
// exactly this interface; gopilot's MapReduce and in-memory engines run in
// containers granted here.
package yarn

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"gopilot/internal/dist"
	"gopilot/internal/infra"
	"gopilot/internal/vclock"
)

// Config describes a simulated YARN cluster.
type Config struct {
	// Name is the cluster/site name.
	Name string
	// TotalCores is the cluster capacity.
	TotalCores int
	// AllocDelay samples container negotiation latency in seconds.
	AllocDelay dist.Dist
	// Clock supplies virtual time; defaults to vclock.Real.
	Clock vclock.Clock
	// Stream is the cluster's slot on the experiment's seeding spine.
	// When AllocDelay is nil and Stream is set, the canonical stochastic
	// negotiation model (lognormal, mean 1 s, cv 0.3) is derived from its
	// "alloc-delay" child; with neither, a constant 0.1 s is charged.
	// Defaults to dist.Unseeded("infra/yarn/<name>").
	Stream *dist.Stream
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.Name == "" {
		out.Name = "yarn"
	}
	if out.TotalCores <= 0 {
		out.TotalCores = 64
	}
	hasStream := out.Stream != nil
	if !hasStream {
		out.Stream = dist.Unseeded("infra/yarn/" + out.Name)
	}
	if out.AllocDelay == nil {
		if hasStream {
			out.AllocDelay = dist.LogNormalFrom(out.Stream.Named("alloc-delay"), 1, 0.3)
		} else {
			out.AllocDelay = dist.Constant(0.1)
		}
	}
	if out.Clock == nil {
		out.Clock = vclock.NewReal()
	}
	return out
}

// Container is a granted resource bundle.
type Container struct {
	id      string
	cores   int
	granted time.Time

	mu       sync.Mutex
	released bool
}

// ID returns the container id.
func (c *Container) ID() string { return c.id }

// Cores returns the container's core count.
func (c *Container) Cores() int { return c.cores }

// Cluster is a simulated YARN resource manager.
type Cluster struct {
	cfg    Config
	faults infra.Faults

	mu        sync.Mutex
	freeCores int
	nextID    int
	closed    bool
	waiters   []*vclock.Event
}

// ErrClosed is returned after Shutdown; it wraps infra.ErrBackendClosed
// so heterogeneous dispatchers need only one test.
var ErrClosed = fmt.Errorf("yarn: cluster closed: %w", infra.ErrBackendClosed)

// ErrTooLarge is returned when a request exceeds cluster capacity.
var ErrTooLarge = errors.New("yarn: request exceeds cluster capacity")

// New creates a cluster.
func New(cfg Config) *Cluster {
	c := &Cluster{cfg: cfg.withDefaults()}
	c.freeCores = c.cfg.TotalCores
	return c
}

// Name returns the cluster name.
func (c *Cluster) Name() string { return c.cfg.Name }

// Site returns the cluster's site identity.
func (c *Cluster) Site() infra.Site { return infra.Site(c.cfg.Name) }

// TotalCores returns the cluster capacity.
func (c *Cluster) TotalCores() int { return c.cfg.TotalCores }

// Faults returns the cluster's fault switchboard (chaos engineering).
func (c *Cluster) Faults() *infra.Faults { return &c.faults }

// FreeCores returns the currently unallocated cores.
func (c *Cluster) FreeCores() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.freeCores
}

// RequestContainers negotiates n containers of coresEach cores, blocking
// until capacity is available (containers released by other applications)
// or ctx is canceled. Containers are granted all-or-nothing.
func (c *Cluster) RequestContainers(ctx context.Context, n, coresEach int) ([]*Container, error) {
	if n <= 0 || coresEach <= 0 {
		return nil, errors.New("yarn: container request must be positive")
	}
	if err := c.faults.Check(); err != nil {
		return nil, fmt.Errorf("yarn: %s: %w", c.cfg.Name, err)
	}
	want := n * coresEach
	if want > c.cfg.TotalCores {
		return nil, fmt.Errorf("%w: want %d total %d", ErrTooLarge, want, c.cfg.TotalCores)
	}
	// Negotiation latency.
	delay := time.Duration(c.cfg.AllocDelay.Sample() * float64(time.Second))
	if !c.cfg.Clock.Sleep(ctx, delay) {
		return nil, ctx.Err()
	}
	for {
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return nil, ErrClosed
		}
		if c.freeCores >= want {
			c.freeCores -= want
			out := make([]*Container, n)
			now := c.cfg.Clock.Now()
			for i := range out {
				c.nextID++
				out[i] = &Container{
					id:      fmt.Sprintf("%s.c%d", c.cfg.Name, c.nextID),
					cores:   coresEach,
					granted: now,
				}
			}
			c.mu.Unlock()
			return out, nil
		}
		ev := vclock.NewEvent(c.cfg.Clock)
		c.waiters = append(c.waiters, ev)
		c.mu.Unlock()
		if !ev.Wait(ctx) {
			return nil, ctx.Err()
		}
	}
}

// Release returns containers to the cluster.
func (c *Cluster) Release(containers []*Container) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, ct := range containers {
		ct.mu.Lock()
		if !ct.released {
			ct.released = true
			c.freeCores += ct.cores
		}
		ct.mu.Unlock()
	}
	for _, ev := range c.waiters {
		ev.Fire()
	}
	c.waiters = nil
}

// Allocation builds an infra.Allocation spanning a container set.
func (c *Cluster) Allocation(id string, containers []*Container) infra.Allocation {
	cores := 0
	nodes := make([]string, len(containers))
	for i, ct := range containers {
		cores += ct.cores
		nodes[i] = ct.id
	}
	return infra.Allocation{
		ID:      id,
		Site:    c.Site(),
		Cores:   cores,
		Nodes:   nodes,
		Granted: c.cfg.Clock.Now(),
	}
}

// Shutdown closes the cluster; outstanding waiters fail.
func (c *Cluster) Shutdown() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	for _, ev := range c.waiters {
		ev.Fire()
	}
	c.waiters = nil
}
