// Package cloud simulates an IaaS provider in the style of EC2: on-demand
// virtual machines with boot latency, instance types, elastic scale-out and
// a cost ledger. The pilot-abstraction's dynamism case study (paper §VI,
// R3; BigJob [63]) acquires additional cloud resources at runtime to meet
// application demand — this backend provides the behaviours that exercise
// that path.
package cloud

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"gopilot/internal/dist"
	"gopilot/internal/infra"
	"gopilot/internal/vclock"
)

// VMType describes an instance type.
type VMType struct {
	// Name is the type name, e.g. "c5.xlarge".
	Name string
	// Cores per instance.
	Cores int
	// PricePerHour in abstract currency units, for the cost ledger.
	PricePerHour float64
}

// VMState is a virtual machine lifecycle state.
type VMState int

// VM states.
const (
	Booting VMState = iota
	Ready
	Terminated
)

// String implements fmt.Stringer.
func (s VMState) String() string {
	switch s {
	case Booting:
		return "Booting"
	case Ready:
		return "Ready"
	case Terminated:
		return "Terminated"
	default:
		return fmt.Sprintf("VMState(%d)", int(s))
	}
}

// VM is a provisioned instance.
type VM struct {
	id    string
	vtype VMType

	mu      sync.Mutex
	state   VMState
	started time.Time // when Ready
	ended   time.Time
}

// ID returns the instance id.
func (vm *VM) ID() string { return vm.id }

// Type returns the instance type.
func (vm *VM) Type() VMType { return vm.vtype }

// State returns the lifecycle state.
func (vm *VM) State() VMState {
	vm.mu.Lock()
	defer vm.mu.Unlock()
	return vm.state
}

// Config describes a simulated cloud region.
type Config struct {
	// Name is the region/site name.
	Name string
	// Types lists available instance types; the first is the default.
	Types []VMType
	// BootDelay samples instance provisioning latency in seconds.
	BootDelay dist.Dist
	// CapacityVMs bounds the total simultaneously running instances
	// (a quota); zero means unlimited.
	CapacityVMs int
	// Clock supplies virtual time; defaults to vclock.Real.
	Clock vclock.Clock
	// Stream is the region's slot on the experiment's seeding spine. When
	// BootDelay is nil and Stream is set, the canonical stochastic boot
	// model (lognormal, mean 45 s, cv 0.3) is derived from its
	// "boot-delay" child; with neither, boots are instantaneous. Defaults
	// to dist.Unseeded("infra/cloud/<name>").
	Stream *dist.Stream
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.Name == "" {
		out.Name = "cloud"
	}
	if len(out.Types) == 0 {
		out.Types = []VMType{{Name: "std.4", Cores: 4, PricePerHour: 0.2}}
	}
	hasStream := out.Stream != nil
	if !hasStream {
		out.Stream = dist.Unseeded("infra/cloud/" + out.Name)
	}
	if out.BootDelay == nil {
		if hasStream {
			out.BootDelay = dist.LogNormalFrom(out.Stream.Named("boot-delay"), 45, 0.3)
		} else {
			out.BootDelay = dist.Constant(0)
		}
	}
	if out.Clock == nil {
		out.Clock = vclock.NewReal()
	}
	return out
}

// Provider is a simulated IaaS region.
type Provider struct {
	cfg    Config
	faults infra.Faults

	mu     sync.Mutex
	nextID int
	active map[*VM]struct{}
	cost   float64
	closed bool
	ctx    context.Context
	stop   context.CancelFunc
	wg     *vclock.Group
}

// ErrQuota is returned when the VM quota would be exceeded.
var ErrQuota = errors.New("cloud: VM quota exceeded")

// ErrClosed is returned after Shutdown; it wraps infra.ErrBackendClosed
// so heterogeneous dispatchers need only one test.
var ErrClosed = fmt.Errorf("cloud: provider closed: %w", infra.ErrBackendClosed)

// ErrUnknownType is returned for an unknown instance type name.
var ErrUnknownType = errors.New("cloud: unknown instance type")

// New creates a provider.
func New(cfg Config) *Provider {
	p := &Provider{cfg: cfg.withDefaults(), active: make(map[*VM]struct{})}
	p.wg = vclock.NewGroup(p.cfg.Clock)
	p.ctx, p.stop = context.WithCancel(context.Background())
	return p
}

// Name returns the region name.
func (p *Provider) Name() string { return p.cfg.Name }

// Site returns the region's site identity.
func (p *Provider) Site() infra.Site { return infra.Site(p.cfg.Name) }

// DefaultType returns the default instance type.
func (p *Provider) DefaultType() VMType { return p.cfg.Types[0] }

// Faults returns the provider's fault switchboard (chaos engineering).
func (p *Provider) Faults() *infra.Faults { return &p.faults }

// TypeByName looks up an instance type.
func (p *Provider) TypeByName(name string) (VMType, error) {
	for _, t := range p.cfg.Types {
		if t.Name == name {
			return t, nil
		}
	}
	return VMType{}, fmt.Errorf("%w: %q", ErrUnknownType, name)
}

// ActiveVMs returns the number of live (booting or ready) instances.
func (p *Provider) ActiveVMs() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.active)
}

// Cost returns accumulated cost including charges accrued by still-running
// instances up to now.
func (p *Provider) Cost() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	total := p.cost
	now := p.cfg.Clock.Now()
	for vm := range p.active {
		vm.mu.Lock()
		if vm.state == Ready {
			total += now.Sub(vm.started).Hours() * vm.vtype.PricePerHour
		}
		vm.mu.Unlock()
	}
	return total
}

// Provision boots n instances of the named type (empty name selects the
// default) and blocks until they are Ready or ctx is canceled. Successfully
// booted instances are returned even on partial failure.
func (p *Provider) Provision(ctx context.Context, n int, typeName string) ([]*VM, error) {
	if n <= 0 {
		return nil, errors.New("cloud: must provision at least one VM")
	}
	vt := p.DefaultType()
	if typeName != "" {
		var err error
		if vt, err = p.TypeByName(typeName); err != nil {
			return nil, err
		}
	}
	if err := p.faults.Check(); err != nil {
		return nil, fmt.Errorf("cloud: %s: %w", p.cfg.Name, err)
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, ErrClosed
	}
	if p.cfg.CapacityVMs > 0 && len(p.active)+n > p.cfg.CapacityVMs {
		p.mu.Unlock()
		return nil, fmt.Errorf("%w: want %d active %d cap %d", ErrQuota, n, len(p.active), p.cfg.CapacityVMs)
	}
	vms := make([]*VM, n)
	for i := range vms {
		p.nextID++
		vms[i] = &VM{id: fmt.Sprintf("%s.vm%d", p.cfg.Name, p.nextID), vtype: vt, state: Booting}
		p.active[vms[i]] = struct{}{}
	}
	p.mu.Unlock()

	// Boot instances concurrently; each samples its own latency.
	wg := vclock.NewGroup(p.cfg.Clock)
	for _, vm := range vms {
		vm := vm
		boot := time.Duration(p.cfg.BootDelay.Sample() * float64(time.Second))
		wg.Add(1)
		vclock.Go(p.cfg.Clock, func() {
			defer wg.Done()
			p.cfg.Clock.Sleep(ctx, boot)
			vm.mu.Lock()
			vm.state = Ready
			vm.started = p.cfg.Clock.Now()
			vm.mu.Unlock()
		})
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		p.Terminate(vms)
		return nil, err
	}
	return vms, nil
}

// Terminate stops instances and finalizes their charges.
func (p *Provider) Terminate(vms []*VM) {
	now := p.cfg.Clock.Now()
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, vm := range vms {
		vm.mu.Lock()
		if vm.state == Ready {
			p.cost += now.Sub(vm.started).Hours() * vm.vtype.PricePerHour
		}
		if vm.state != Terminated {
			vm.state = Terminated
			vm.ended = now
		}
		vm.mu.Unlock()
		delete(p.active, vm)
	}
}

// Allocation builds an infra.Allocation spanning a set of ready VMs.
func (p *Provider) Allocation(id string, vms []*VM) infra.Allocation {
	cores := 0
	nodes := make([]string, len(vms))
	for i, vm := range vms {
		cores += vm.vtype.Cores
		nodes[i] = vm.id
	}
	return infra.Allocation{
		ID:      id,
		Site:    p.Site(),
		Cores:   cores,
		Nodes:   nodes,
		Granted: p.cfg.Clock.Now(),
	}
}

// Shutdown terminates all instances.
func (p *Provider) Shutdown() {
	p.mu.Lock()
	p.closed = true
	var vms []*VM
	for vm := range p.active {
		vms = append(vms, vm)
	}
	p.mu.Unlock()
	p.Terminate(vms)
	p.stop()
	p.wg.Wait()
}
