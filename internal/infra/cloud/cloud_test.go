package cloud

import (
	"context"
	"errors"
	"testing"
	"time"

	"gopilot/internal/dist"
	"gopilot/internal/vclock"
)

func fastClock() vclock.Clock { return vclock.NewScaled(2000) }

func testConfig(clock vclock.Clock) Config {
	return Config{
		Name: "ec2",
		Types: []VMType{
			{Name: "small", Cores: 2, PricePerHour: 0.1},
			{Name: "large", Cores: 8, PricePerHour: 0.4},
		},
		BootDelay: dist.Constant(5),
		Clock:     clock,
	}
}

func TestProvisionBootsVMs(t *testing.T) {
	clock := fastClock()
	p := New(testConfig(clock))
	defer p.Shutdown()
	start := clock.Now()
	vms, err := p.Provision(context.Background(), 3, "small")
	if err != nil {
		t.Fatal(err)
	}
	if len(vms) != 3 {
		t.Fatalf("got %d VMs, want 3", len(vms))
	}
	for _, vm := range vms {
		if vm.State() != Ready {
			t.Errorf("vm %s state = %v, want Ready", vm.ID(), vm.State())
		}
		if vm.Type().Name != "small" {
			t.Errorf("vm type = %q, want small", vm.Type().Name)
		}
	}
	if boot := clock.Since(start); boot < 4*time.Second {
		t.Errorf("boot took %v modeled, want ≈5s", boot)
	}
	if p.ActiveVMs() != 3 {
		t.Errorf("ActiveVMs = %d, want 3", p.ActiveVMs())
	}
}

func TestAllocationAggregatesCores(t *testing.T) {
	clock := fastClock()
	p := New(testConfig(clock))
	defer p.Shutdown()
	vms, _ := p.Provision(context.Background(), 2, "large")
	alloc := p.Allocation("x", vms)
	if alloc.Cores != 16 {
		t.Errorf("Cores = %d, want 16", alloc.Cores)
	}
	if len(alloc.Nodes) != 2 {
		t.Errorf("Nodes = %d, want 2", len(alloc.Nodes))
	}
	if alloc.Site != p.Site() {
		t.Errorf("Site = %q, want %q", alloc.Site, p.Site())
	}
}

func TestTerminateAccumulatesCost(t *testing.T) {
	clock := fastClock()
	p := New(testConfig(clock))
	defer p.Shutdown()
	vms, _ := p.Provision(context.Background(), 1, "large")
	clock.Sleep(context.Background(), 30*time.Second)
	p.Terminate(vms)
	if p.ActiveVMs() != 0 {
		t.Errorf("ActiveVMs = %d, want 0", p.ActiveVMs())
	}
	cost := p.Cost()
	if cost <= 0 {
		t.Fatalf("cost = %g, want > 0", cost)
	}
	// ~30 modeled seconds at 0.4/h ≈ 0.0033; allow broad band for timer slack.
	if cost > 0.05 {
		t.Errorf("cost = %g, implausibly high", cost)
	}
	if vms[0].State() != Terminated {
		t.Errorf("state = %v, want Terminated", vms[0].State())
	}
}

func TestQuotaEnforced(t *testing.T) {
	clock := fastClock()
	cfg := testConfig(clock)
	cfg.CapacityVMs = 2
	p := New(cfg)
	defer p.Shutdown()
	if _, err := p.Provision(context.Background(), 3, "small"); !errors.Is(err, ErrQuota) {
		t.Fatalf("err = %v, want ErrQuota", err)
	}
	vms, err := p.Provision(context.Background(), 2, "small")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Provision(context.Background(), 1, "small"); !errors.Is(err, ErrQuota) {
		t.Fatalf("err = %v, want ErrQuota for incremental request", err)
	}
	p.Terminate(vms)
	if _, err := p.Provision(context.Background(), 1, "small"); err != nil {
		t.Fatalf("after release: %v", err)
	}
}

func TestUnknownType(t *testing.T) {
	p := New(testConfig(fastClock()))
	defer p.Shutdown()
	if _, err := p.Provision(context.Background(), 1, "gpu.mega"); !errors.Is(err, ErrUnknownType) {
		t.Fatalf("err = %v, want ErrUnknownType", err)
	}
}

func TestProvisionCanceled(t *testing.T) {
	clock := fastClock()
	cfg := testConfig(clock)
	cfg.BootDelay = dist.Constant(3600)
	p := New(cfg)
	defer p.Shutdown()
	ctx, cancel := context.WithCancel(context.Background())
	go cancel()
	if _, err := p.Provision(ctx, 1, ""); err == nil {
		t.Fatal("expected cancellation error")
	}
	if p.ActiveVMs() != 0 {
		t.Errorf("ActiveVMs = %d after canceled provision, want 0", p.ActiveVMs())
	}
}

func TestShutdownRejects(t *testing.T) {
	p := New(testConfig(fastClock()))
	p.Shutdown()
	if _, err := p.Provision(context.Background(), 1, ""); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

func TestDefaultTypeUsed(t *testing.T) {
	p := New(testConfig(fastClock()))
	defer p.Shutdown()
	vms, err := p.Provision(context.Background(), 1, "")
	if err != nil {
		t.Fatal(err)
	}
	if vms[0].Type().Name != "small" {
		t.Errorf("default type = %q, want small", vms[0].Type().Name)
	}
}
