package infra

import (
	"errors"
	"sync"
)

// ErrBackendDown is the sentinel wrapped by backend entry points while an
// injected outage window is open (chaos engineering, internal/chaos). Like
// ErrBackendClosed it gives heterogeneous dispatchers a single test:
// errors.Is(err, infra.ErrBackendDown).
var ErrBackendDown = errors.New("backend unavailable (injected outage)")

// Faults is the per-backend fault switchboard. Every simulated backend
// owns one and consults it at its submission entry point; the chaos engine
// (internal/chaos) toggles it at exact virtual instants. The zero value is
// healthy, and a nil *Faults is always healthy, so components can consult
// one unconditionally.
//
// Faults carries no clock: outage windows are opened and closed by the
// chaos engine's own scheduled participant, which keeps this type free of
// time arithmetic and therefore trivially deterministic.
type Faults struct {
	mu      sync.Mutex
	down    bool
	outages int
}

// SetDown opens (true) or closes (false) an outage window.
func (f *Faults) SetDown(down bool) {
	if f == nil {
		return
	}
	f.mu.Lock()
	if down && !f.down {
		f.outages++
	}
	f.down = down
	f.mu.Unlock()
}

// Down reports whether an outage window is open. Nil-safe.
func (f *Faults) Down() bool {
	if f == nil {
		return false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.down
}

// Outages returns how many outage windows have been opened. Nil-safe.
func (f *Faults) Outages() int {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.outages
}

// Check returns ErrBackendDown while an outage window is open, nil
// otherwise. Nil-safe.
func (f *Faults) Check() error {
	if f.Down() {
		return ErrBackendDown
	}
	return nil
}
