package hpc

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gopilot/internal/dist"
	"gopilot/internal/infra"
	"gopilot/internal/vclock"
)

// fastClock compresses modeled seconds to 0.5ms of wall time. The factor is
// kept moderate so OS timer resolution (~0.1ms) stays small relative to the
// shortest modeled duration used in these tests.
func fastClock() vclock.Clock { return vclock.NewScaled(2000) }

func okPayload(d time.Duration, clock vclock.Clock) infra.Payload {
	return func(ctx context.Context, _ infra.Allocation) error {
		if !clock.Sleep(ctx, d) {
			return ctx.Err()
		}
		return nil
	}
}

func TestJobCompletes(t *testing.T) {
	clock := fastClock()
	c := New(Config{Name: "test", Nodes: 4, CoresPerNode: 8, Clock: clock})
	defer c.Shutdown()
	j, err := c.Submit(JobSpec{Name: "j1", Nodes: 2, Walltime: time.Hour, Payload: okPayload(10*time.Second, clock)})
	if err != nil {
		t.Fatal(err)
	}
	state, err := j.Wait(context.Background())
	if state != Completed || err != nil {
		t.Fatalf("state=%v err=%v", state, err)
	}
	if j.Runtime() < 5*time.Second {
		t.Errorf("Runtime = %v, want ≥ 5s modeled", j.Runtime())
	}
}

func TestAllocationShape(t *testing.T) {
	clock := fastClock()
	c := New(Config{Name: "alpha", Nodes: 4, CoresPerNode: 16, Clock: clock})
	defer c.Shutdown()
	var got infra.Allocation
	j, _ := c.Submit(JobSpec{Nodes: 3, Payload: func(_ context.Context, a infra.Allocation) error {
		got = a
		return nil
	}})
	j.Wait(context.Background())
	if got.Cores != 48 {
		t.Errorf("Cores = %d, want 48", got.Cores)
	}
	if len(got.Nodes) != 3 {
		t.Errorf("Nodes = %d, want 3", len(got.Nodes))
	}
	if got.Site != infra.Site("alpha") {
		t.Errorf("Site = %q, want alpha", got.Site)
	}
}

func TestCapacityWaitEmerges(t *testing.T) {
	clock := fastClock()
	c := New(Config{Name: "cap", Nodes: 1, CoresPerNode: 8, Clock: clock})
	defer c.Shutdown()
	j1, _ := c.Submit(JobSpec{Nodes: 1, Walltime: time.Hour, Payload: okPayload(20*time.Second, clock)})
	j2, _ := c.Submit(JobSpec{Nodes: 1, Walltime: time.Hour, Payload: okPayload(time.Second, clock)})
	j1.Wait(context.Background())
	j2.Wait(context.Background())
	if w := j2.QueueWait(); w < 10*time.Second {
		t.Errorf("j2 queue wait = %v, want ≥ 10s (capacity wait)", w)
	}
}

func TestExogenousQueueWaitApplied(t *testing.T) {
	clock := fastClock()
	c := New(Config{Name: "qw", Nodes: 8, CoresPerNode: 8, QueueWait: dist.Constant(30), Clock: clock})
	defer c.Shutdown()
	j, _ := c.Submit(JobSpec{Nodes: 1, Payload: okPayload(0, clock)})
	j.Wait(context.Background())
	if w := j.QueueWait(); w < 25*time.Second {
		t.Errorf("queue wait = %v, want ≈30s", w)
	}
}

func TestWalltimeEnforced(t *testing.T) {
	clock := fastClock()
	c := New(Config{Name: "wt", Nodes: 1, CoresPerNode: 1, Clock: clock})
	defer c.Shutdown()
	j, _ := c.Submit(JobSpec{Nodes: 1, Walltime: 5 * time.Second, Payload: okPayload(time.Hour, clock)})
	state, _ := j.Wait(context.Background())
	if state != TimedOut {
		t.Fatalf("state = %v, want TimedOut", state)
	}
	if !errors.Is(j.Err(), context.DeadlineExceeded) {
		t.Errorf("Err = %v, want DeadlineExceeded", j.Err())
	}
}

func TestFailedPayload(t *testing.T) {
	clock := fastClock()
	c := New(Config{Name: "fail", Nodes: 1, CoresPerNode: 1, Clock: clock})
	defer c.Shutdown()
	boom := errors.New("boom")
	j, _ := c.Submit(JobSpec{Nodes: 1, Payload: func(context.Context, infra.Allocation) error { return boom }})
	state, err := j.Wait(context.Background())
	if state != Failed || !errors.Is(err, boom) {
		t.Fatalf("state=%v err=%v, want Failed/boom", state, err)
	}
}

func TestCancelPending(t *testing.T) {
	clock := fastClock()
	// Long exogenous delay keeps the job pending.
	c := New(Config{Name: "cp", Nodes: 1, CoresPerNode: 1, QueueWait: dist.Constant(3600), Clock: clock})
	defer c.Shutdown()
	j, _ := c.Submit(JobSpec{Nodes: 1, Payload: okPayload(0, clock)})
	c.Cancel(j)
	state, _ := j.Wait(context.Background())
	if state != Canceled {
		t.Fatalf("state = %v, want Canceled", state)
	}
}

func TestCancelRunning(t *testing.T) {
	clock := fastClock()
	c := New(Config{Name: "cr", Nodes: 1, CoresPerNode: 1, Clock: clock})
	defer c.Shutdown()
	started := make(chan struct{})
	j, _ := c.Submit(JobSpec{Nodes: 1, Payload: func(ctx context.Context, _ infra.Allocation) error {
		close(started)
		<-ctx.Done()
		return ctx.Err()
	}})
	<-started
	c.Cancel(j)
	state, _ := j.Wait(context.Background())
	if state != Canceled {
		t.Fatalf("state = %v, want Canceled", state)
	}
}

func TestTooLargeRejected(t *testing.T) {
	c := New(Config{Name: "big", Nodes: 2, CoresPerNode: 8, Clock: fastClock()})
	defer c.Shutdown()
	_, err := c.Submit(JobSpec{Nodes: 3, Payload: okPayload(0, fastClock())})
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
}

func TestSubmitAfterShutdown(t *testing.T) {
	c := New(Config{Name: "closed", Nodes: 1, CoresPerNode: 1, Clock: fastClock()})
	c.Shutdown()
	_, err := c.Submit(JobSpec{Nodes: 1, Payload: okPayload(0, fastClock())})
	if !errors.Is(err, ErrClusterClosed) {
		t.Fatalf("err = %v, want ErrClusterClosed", err)
	}
}

func TestBackfillLetsSmallJobJumpQueue(t *testing.T) {
	clock := fastClock()
	c := New(Config{Name: "bf", Nodes: 4, CoresPerNode: 1, Backfill: true, Clock: clock})
	defer c.Shutdown()

	// Occupy 3 of 4 nodes for a long time.
	blocker, _ := c.Submit(JobSpec{Name: "blocker", Nodes: 3, Walltime: 200 * time.Second, Payload: okPayload(100*time.Second, clock)})
	// Head job needs all 4 nodes — must wait for the blocker.
	head, _ := c.Submit(JobSpec{Name: "head", Nodes: 4, Walltime: 100 * time.Second, Payload: okPayload(time.Second, clock)})
	// Small short job fits in the idle node and finishes before the
	// blocker's walltime: EASY backfill should run it immediately.
	small, _ := c.Submit(JobSpec{Name: "small", Nodes: 1, Walltime: 10 * time.Second, Payload: okPayload(time.Second, clock)})

	state, err := small.Wait(context.Background())
	if state != Completed {
		t.Fatalf("small job state=%v err=%v", state, err)
	}
	if small.QueueWait() > 50*time.Second {
		t.Errorf("small job waited %v; backfill should start it early", small.QueueWait())
	}
	blocker.Wait(context.Background())
	head.Wait(context.Background())
	if head.QueueWait() < 50*time.Second {
		t.Errorf("head job waited only %v, expected to wait for blocker", head.QueueWait())
	}
}

func TestNoBackfillStrictFCFS(t *testing.T) {
	clock := fastClock()
	c := New(Config{Name: "fcfs", Nodes: 4, CoresPerNode: 1, Backfill: false, Clock: clock})
	defer c.Shutdown()
	blocker, _ := c.Submit(JobSpec{Nodes: 3, Walltime: 100 * time.Second, Payload: okPayload(50*time.Second, clock)})
	head, _ := c.Submit(JobSpec{Nodes: 4, Walltime: 100 * time.Second, Payload: okPayload(time.Second, clock)})
	small, _ := c.Submit(JobSpec{Nodes: 1, Walltime: 10 * time.Second, Payload: okPayload(time.Second, clock)})
	small.Wait(context.Background())
	// Under strict FCFS the small job cannot start before the head job.
	if small.QueueWait() < 30*time.Second {
		t.Errorf("small job waited %v; FCFS should block it behind head", small.QueueWait())
	}
	blocker.Wait(context.Background())
	head.Wait(context.Background())
}

func TestManyJobsDrainAndUtilization(t *testing.T) {
	clock := fastClock()
	c := New(Config{Name: "many", Nodes: 4, CoresPerNode: 2, Clock: clock})
	defer c.Shutdown()
	var wg sync.WaitGroup
	var completed atomic.Int64
	for i := 0; i < 32; i++ {
		j, err := c.Submit(JobSpec{Nodes: 1, Walltime: time.Minute, Payload: okPayload(2*time.Second, clock)})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if s, _ := j.Wait(context.Background()); s == Completed {
				completed.Add(1)
			}
		}()
	}
	wg.Wait()
	if completed.Load() != 32 {
		t.Fatalf("completed = %d, want 32", completed.Load())
	}
	if u := c.Utilization(); u <= 0 || u > 1.01 {
		t.Errorf("utilization = %g, want (0,1]", u)
	}
	if c.QueueDepth() != 0 || c.RunningJobs() != 0 {
		t.Errorf("cluster not drained: depth=%d running=%d", c.QueueDepth(), c.RunningJobs())
	}
	if c.FreeNodes() != 4 {
		t.Errorf("FreeNodes = %d, want 4", c.FreeNodes())
	}
	if s := c.QueueWaitStats(); s.N != 32 {
		t.Errorf("queue wait samples = %d, want 32", s.N)
	}
}

func TestNilPayloadRejected(t *testing.T) {
	c := New(Config{Name: "nil", Clock: fastClock()})
	defer c.Shutdown()
	if _, err := c.Submit(JobSpec{Nodes: 1}); err == nil {
		t.Fatal("nil payload accepted")
	}
}
