// Package hpc simulates a production HPC machine fronted by a batch queue —
// the infrastructure class the pilot-abstraction was born on (BigJob [63]).
//
// The simulator reproduces the behaviours that matter to pilot systems:
//
//   - exogenous queue wait (competing users) sampled from a configurable
//     distribution, on top of emergent capacity wait;
//   - FCFS scheduling with optional EASY backfill;
//   - whole-node allocation and walltime enforcement (jobs are killed when
//     their requested walltime expires);
//   - dispatch overhead for the local resource management system.
//
// All delays are modeled in virtual time through vclock.Clock, so an
// experiment with hour-long queue waits runs in milliseconds.
package hpc

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"gopilot/internal/dist"
	"gopilot/internal/infra"
	"gopilot/internal/metrics"
	"gopilot/internal/vclock"
)

// State is the lifecycle state of a batch job.
type State int

// Batch job states, following the usual LRMS lifecycle.
const (
	Pending State = iota
	Running
	Completed
	Failed
	TimedOut
	Canceled
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Pending:
		return "Pending"
	case Running:
		return "Running"
	case Completed:
		return "Completed"
	case Failed:
		return "Failed"
	case TimedOut:
		return "TimedOut"
	case Canceled:
		return "Canceled"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Config describes a simulated HPC machine.
type Config struct {
	// Name is the site name (also the infra.Site of allocations).
	Name string
	// Nodes is the machine size in nodes.
	Nodes int
	// CoresPerNode is the homogeneous per-node core count.
	CoresPerNode int
	// QueueWait samples the exogenous queue delay, in seconds, a job incurs
	// before becoming eligible to run (competing load from other users).
	QueueWait dist.Dist
	// DispatchOverhead is the LRMS overhead between scheduling a job and its
	// payload starting (prologue, node health checks).
	DispatchOverhead time.Duration
	// Backfill enables EASY backfill; without it the queue is strict FCFS.
	Backfill bool
	// Clock supplies virtual time. Defaults to vclock.Real.
	Clock vclock.Clock
	// Stream is the cluster's slot on the experiment's seeding spine.
	// When QueueWait is nil and Stream is set, the canonical stochastic
	// queue-wait model (lognormal, mean 60 s, cv 0.5) is derived from its
	// "queue-wait" child; with neither, queue waits are zero. Defaults to
	// dist.Unseeded("infra/hpc/<name>").
	Stream *dist.Stream
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.Nodes <= 0 {
		out.Nodes = 16
	}
	if out.CoresPerNode <= 0 {
		out.CoresPerNode = 8
	}
	if out.Name == "" {
		out.Name = "hpc"
	}
	hasStream := out.Stream != nil
	if !hasStream {
		out.Stream = dist.Unseeded("infra/hpc/" + out.Name)
	}
	if out.QueueWait == nil {
		if hasStream {
			out.QueueWait = dist.LogNormalFrom(out.Stream.Named("queue-wait"), 60, 0.5)
		} else {
			out.QueueWait = dist.Constant(0)
		}
	}
	if out.Clock == nil {
		out.Clock = vclock.NewReal()
	}
	return out
}

// JobSpec describes a batch job submission.
type JobSpec struct {
	// Name labels the job in logs and stats.
	Name string
	// Nodes is the number of whole nodes requested.
	Nodes int
	// Walltime is the requested maximum runtime; the payload context is
	// canceled when it expires. Zero means unlimited.
	Walltime time.Duration
	// Payload is executed once the allocation is granted.
	Payload infra.Payload
}

// Job is a handle to a submitted batch job.
type Job struct {
	id   string
	spec JobSpec

	mu        sync.Mutex
	state     State
	submitted time.Time
	eligible  time.Time
	started   time.Time
	ended     time.Time
	err       error

	done    *vclock.Event
	timeout bool
	cancel  context.CancelFunc
}

// ID returns the backend-assigned job identifier.
func (j *Job) ID() string { return j.id }

// State returns the current lifecycle state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Err returns the payload error after the job finished.
func (j *Job) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Done returns a channel closed when the job reaches a terminal state.
// Participants of a Virtual clock must use Wait instead.
func (j *Job) Done() <-chan struct{} { return j.done.Done() }

// Wait blocks until the job terminates or ctx is canceled, returning the
// terminal state.
func (j *Job) Wait(ctx context.Context) (State, error) {
	if j.done.Wait(ctx) {
		return j.State(), j.Err()
	}
	return j.State(), ctx.Err()
}

// QueueWait returns the modeled time the job spent queued; valid once the
// job started.
func (j *Job) QueueWait() time.Duration {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.started.IsZero() {
		return 0
	}
	return j.started.Sub(j.submitted)
}

// Runtime returns the modeled run duration; valid after termination.
func (j *Job) Runtime() time.Duration {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.started.IsZero() || j.ended.IsZero() {
		return 0
	}
	return j.ended.Sub(j.started)
}

// Cluster is a simulated HPC machine. Create with New; all methods are safe
// for concurrent use.
type Cluster struct {
	cfg    Config
	faults infra.Faults

	mu        sync.Mutex
	freeNodes int
	pending   []*Job
	running   map[*Job]time.Time // expected end (start + walltime)
	nextID    int
	closed    bool

	busyNodeSec float64
	opened      time.Time

	queueWaits *metrics.Series
	runtimes   *metrics.Series

	wake *vclock.Notifier
	ctx  context.Context
	stop context.CancelFunc
	wg   *vclock.Group
}

// ErrClusterClosed is returned by Submit after Shutdown; it wraps
// infra.ErrBackendClosed so heterogeneous dispatchers need only one test.
var ErrClusterClosed = fmt.Errorf("hpc: cluster closed: %w", infra.ErrBackendClosed)

// ErrTooLarge is returned when a job requests more nodes than the machine has.
var ErrTooLarge = errors.New("hpc: job requests more nodes than cluster has")

// New creates a cluster and starts its scheduler.
func New(cfg Config) *Cluster {
	c := &Cluster{
		cfg:        cfg.withDefaults(),
		running:    make(map[*Job]time.Time),
		queueWaits: metrics.NewSeries("queue_wait_s"),
		runtimes:   metrics.NewSeries("runtime_s"),
	}
	c.wake = vclock.NewNotifier(c.cfg.Clock)
	c.wg = vclock.NewGroup(c.cfg.Clock)
	c.freeNodes = c.cfg.Nodes
	c.opened = c.cfg.Clock.Now()
	c.ctx, c.stop = context.WithCancel(context.Background())
	c.wg.Add(1)
	vclock.Go(c.cfg.Clock, c.schedulerLoop)
	return c
}

// Name returns the site name.
func (c *Cluster) Name() string { return c.cfg.Name }

// Site returns the cluster's site identity.
func (c *Cluster) Site() infra.Site { return infra.Site(c.cfg.Name) }

// Nodes returns the machine size in nodes.
func (c *Cluster) Nodes() int { return c.cfg.Nodes }

// CoresPerNode returns the per-node core count.
func (c *Cluster) CoresPerNode() int { return c.cfg.CoresPerNode }

// TotalCores returns the machine size in cores.
func (c *Cluster) TotalCores() int { return c.cfg.Nodes * c.cfg.CoresPerNode }

// Faults returns the cluster's fault switchboard (chaos engineering).
func (c *Cluster) Faults() *infra.Faults { return &c.faults }

// Submit enqueues a batch job. The job becomes eligible to run after its
// sampled exogenous queue delay and runs when FCFS/backfill order and
// capacity allow.
func (c *Cluster) Submit(spec JobSpec) (*Job, error) {
	if spec.Nodes <= 0 {
		spec.Nodes = 1
	}
	if spec.Payload == nil {
		return nil, errors.New("hpc: job spec has nil payload")
	}
	if err := c.faults.Check(); err != nil {
		return nil, fmt.Errorf("hpc: %s: %w", c.cfg.Name, err)
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClusterClosed
	}
	if spec.Nodes > c.cfg.Nodes {
		c.mu.Unlock()
		return nil, fmt.Errorf("%w: want %d have %d", ErrTooLarge, spec.Nodes, c.cfg.Nodes)
	}
	c.nextID++
	now := c.cfg.Clock.Now()
	delay := time.Duration(c.cfg.QueueWait.Sample() * float64(time.Second))
	j := &Job{
		id:        fmt.Sprintf("%s.%d", c.cfg.Name, c.nextID),
		spec:      spec,
		state:     Pending,
		submitted: now,
		eligible:  now.Add(delay),
		done:      vclock.NewEvent(c.cfg.Clock),
	}
	c.pending = append(c.pending, j)
	c.mu.Unlock()
	if delay > 0 {
		c.wakeAfter(delay)
	}
	c.kick()
	return j, nil
}

// Cancel removes a pending job or kills a running one.
func (c *Cluster) Cancel(j *Job) {
	c.mu.Lock()
	switch j.state {
	case Pending:
		for i, p := range c.pending {
			if p == j {
				c.pending = append(c.pending[:i], c.pending[i+1:]...)
				break
			}
		}
		j.mu.Lock()
		j.state = Canceled
		j.ended = c.cfg.Clock.Now()
		j.mu.Unlock()
		j.done.Fire()
		c.mu.Unlock()
		return
	case Running:
		cancel := j.cancel
		c.mu.Unlock()
		if cancel != nil {
			cancel()
		}
		return
	default:
		c.mu.Unlock()
	}
}

// QueueDepth returns the number of pending jobs.
func (c *Cluster) QueueDepth() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.pending)
}

// RunningJobs returns the number of running jobs.
func (c *Cluster) RunningJobs() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.running)
}

// FreeNodes returns the number of currently idle nodes.
func (c *Cluster) FreeNodes() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.freeNodes
}

// Utilization returns busy node-time divided by total node-time since the
// cluster opened.
func (c *Cluster) Utilization() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	elapsed := c.cfg.Clock.Since(c.opened).Seconds()
	if elapsed <= 0 {
		return 0
	}
	// Include node-time of still-running jobs up to "now".
	busy := c.busyNodeSec
	now := c.cfg.Clock.Now()
	for j := range c.running {
		j.mu.Lock()
		busy += now.Sub(j.started).Seconds() * float64(j.spec.Nodes)
		j.mu.Unlock()
	}
	return busy / (elapsed * float64(c.cfg.Nodes))
}

// QueueWaitStats returns the observed queue-wait sample (seconds).
func (c *Cluster) QueueWaitStats() metrics.Summary { return c.queueWaits.Summary() }

// Shutdown cancels all jobs and stops the scheduler.
func (c *Cluster) Shutdown() {
	c.mu.Lock()
	c.closed = true
	pend := append([]*Job(nil), c.pending...)
	c.pending = nil
	var cancels []context.CancelFunc
	for j := range c.running {
		if j.cancel != nil {
			cancels = append(cancels, j.cancel)
		}
	}
	c.mu.Unlock()
	for _, j := range pend {
		j.mu.Lock()
		j.state = Canceled
		j.ended = c.cfg.Clock.Now()
		j.mu.Unlock()
		j.done.Fire()
	}
	for _, cancel := range cancels {
		cancel()
	}
	c.stop()
	c.wg.Wait()
}

// kick nudges the scheduler loop.
func (c *Cluster) kick() { c.wake.Set() }

// wakeAfter schedules a future kick in virtual time.
func (c *Cluster) wakeAfter(d time.Duration) {
	c.wg.Add(1)
	vclock.Go(c.cfg.Clock, func() {
		defer c.wg.Done()
		if c.cfg.Clock.Sleep(c.ctx, d) {
			c.kick()
		}
	})
}

func (c *Cluster) schedulerLoop() {
	defer c.wg.Done()
	for c.wake.Wait(c.ctx) {
		c.schedule()
	}
}

// schedule implements FCFS with optional EASY backfill over eligible jobs.
func (c *Cluster) schedule() {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.cfg.Clock.Now()

	for {
		startedAny := false
		var head *Job
		for _, j := range c.pending {
			if j.eligible.After(now) {
				continue
			}
			if head == nil {
				head = j
			}
			if j == head {
				if j.spec.Nodes <= c.freeNodes {
					c.startLocked(j, now)
					startedAny = true
					break // pending mutated; rescan
				}
				if !c.cfg.Backfill {
					break
				}
				continue
			}
			// Backfill candidates beyond the head.
			if j.spec.Nodes > c.freeNodes {
				continue
			}
			shadow, extra := c.shadowLocked(head, now)
			fitsExtra := j.spec.Nodes <= extra
			finishesBeforeShadow := j.spec.Walltime > 0 && !now.Add(j.spec.Walltime).After(shadow)
			if fitsExtra || finishesBeforeShadow {
				c.startLocked(j, now)
				startedAny = true
				break
			}
		}
		if !startedAny {
			break
		}
	}
}

// shadowLocked computes the EASY backfill shadow time (earliest time the
// head job could start, assuming running jobs end at their walltime) and
// the number of nodes that will still be free at that time beyond the
// head's requirement.
func (c *Cluster) shadowLocked(head *Job, now time.Time) (time.Time, int) {
	type rel struct {
		at    time.Time
		nodes int
		id    string
	}
	rels := make([]rel, 0, len(c.running))
	for j, end := range c.running {
		rels = append(rels, rel{at: end, nodes: j.spec.Nodes, id: j.id})
	}
	// Tie-break equal release times by job id: c.running is a map, and an
	// order-dependent shadow would make backfill (and thus makespans)
	// nondeterministic across same-seed runs.
	sort.Slice(rels, func(i, k int) bool {
		if !rels[i].at.Equal(rels[k].at) {
			return rels[i].at.Before(rels[k].at)
		}
		return rels[i].id < rels[k].id
	})
	free := c.freeNodes
	for _, r := range rels {
		free += r.nodes
		if free >= head.spec.Nodes {
			return r.at, free - head.spec.Nodes
		}
	}
	// Head can start right away capacity-wise (or never; treat as now).
	return now, c.freeNodes - head.spec.Nodes
}

// startLocked transitions a pending job to running. Caller holds c.mu.
func (c *Cluster) startLocked(j *Job, now time.Time) {
	for i, p := range c.pending {
		if p == j {
			c.pending = append(c.pending[:i], c.pending[i+1:]...)
			break
		}
	}
	c.freeNodes -= j.spec.Nodes
	expectedEnd := now.Add(j.spec.Walltime)
	if j.spec.Walltime == 0 {
		expectedEnd = now.Add(365 * 24 * time.Hour)
	}
	c.running[j] = expectedEnd

	ctx, cancel := context.WithCancel(c.ctx)
	j.mu.Lock()
	j.state = Running
	j.started = now
	j.cancel = cancel
	j.mu.Unlock()
	c.queueWaits.Add(now.Sub(j.submitted).Seconds())

	alloc := infra.Allocation{
		ID:      j.id,
		Site:    c.Site(),
		Cores:   j.spec.Nodes * c.cfg.CoresPerNode,
		Nodes:   infra.NodeNames(c.cfg.Name, j.spec.Nodes),
		Granted: now,
	}

	c.wg.Add(1)
	vclock.Go(c.cfg.Clock, func() {
		defer c.wg.Done()
		c.runJob(ctx, cancel, j, alloc)
	})
}

func (c *Cluster) runJob(ctx context.Context, cancel context.CancelFunc, j *Job, alloc infra.Allocation) {
	defer cancel()
	// Walltime watchdog.
	if j.spec.Walltime > 0 {
		c.wg.Add(1)
		vclock.Go(c.cfg.Clock, func() {
			defer c.wg.Done()
			if c.cfg.Clock.Sleep(ctx, j.spec.Walltime) {
				j.mu.Lock()
				j.timeout = true
				j.mu.Unlock()
				cancel()
			}
		})
	}
	if c.cfg.DispatchOverhead > 0 {
		c.cfg.Clock.Sleep(ctx, c.cfg.DispatchOverhead)
	}
	err := j.spec.Payload(ctx, alloc)
	now := c.cfg.Clock.Now()

	j.mu.Lock()
	j.ended = now
	switch {
	case j.timeout:
		j.state = TimedOut
		j.err = context.DeadlineExceeded
	case ctx.Err() != nil && err != nil:
		j.state = Canceled
		j.err = err
	case err != nil:
		j.state = Failed
		j.err = err
	default:
		j.state = Completed
	}
	started := j.started
	j.mu.Unlock()

	c.mu.Lock()
	delete(c.running, j)
	c.freeNodes += j.spec.Nodes
	c.busyNodeSec += now.Sub(started).Seconds() * float64(j.spec.Nodes)
	c.mu.Unlock()
	c.runtimes.Add(now.Sub(started).Seconds())
	j.done.Fire()
	c.kick()
}
