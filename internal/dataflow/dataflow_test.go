package dataflow

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"gopilot/internal/core"
	"gopilot/internal/saga"
	"gopilot/internal/vclock"
)

func newMgr(t *testing.T) *core.Manager {
	t.Helper()
	clock := vclock.NewScaled(2000)
	reg := saga.NewRegistry()
	reg.Register(saga.NewLocalService("lh", 32, clock))
	mgr := core.NewManager(core.Config{Registry: reg, Clock: clock})
	t.Cleanup(mgr.Close)
	p, err := mgr.SubmitPilot(core.PilotDescription{Resource: "local://lh", Cores: 16})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for p.State() != core.PilotRunning {
		if time.Now().After(deadline) {
			t.Fatal("pilot never started")
		}
		time.Sleep(time.Millisecond)
	}
	return mgr
}

func noopStage(name string, deps []string, par int, record func(string)) Stage {
	return Stage{
		Name:        name,
		Deps:        deps,
		Parallelism: par,
		Run: func(ctx context.Context, tc core.TaskContext, idx int) error {
			record(name)
			return nil
		},
	}
}

func TestLinearPipelineOrder(t *testing.T) {
	mgr := newMgr(t)
	g := New()
	var mu sync.Mutex
	var order []string
	rec := func(s string) { mu.Lock(); order = append(order, s); mu.Unlock() }
	g.MustAdd(noopStage("extract", nil, 1, rec))
	g.MustAdd(noopStage("transform", []string{"extract"}, 1, rec))
	g.MustAdd(noopStage("load", []string{"transform"}, 1, rec))
	res, err := g.Run(context.Background(), mgr)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("results = %d, want 3", len(res))
	}
	want := []string{"extract", "transform", "load"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestDiamondDependenciesRespected(t *testing.T) {
	mgr := newMgr(t)
	g := New()
	var mu sync.Mutex
	pos := map[string]int{}
	n := 0
	rec := func(s string) {
		mu.Lock()
		if _, seen := pos[s]; !seen {
			pos[s] = n
			n++
		}
		mu.Unlock()
	}
	g.MustAdd(noopStage("src", nil, 1, rec))
	g.MustAdd(noopStage("left", []string{"src"}, 2, rec))
	g.MustAdd(noopStage("right", []string{"src"}, 2, rec))
	g.MustAdd(noopStage("sink", []string{"left", "right"}, 1, rec))
	if _, err := g.Run(context.Background(), mgr); err != nil {
		t.Fatal(err)
	}
	if pos["src"] != 0 {
		t.Errorf("src ran at position %d", pos["src"])
	}
	if pos["sink"] != 3 {
		t.Errorf("sink ran at position %d, want last", pos["sink"])
	}
}

func TestIndependentStagesOverlap(t *testing.T) {
	mgr := newMgr(t)
	g := New()
	var mu sync.Mutex
	active, peak := 0, 0
	mk := func(name string) Stage {
		return Stage{Name: name, Parallelism: 1, Run: func(ctx context.Context, tc core.TaskContext, _ int) error {
			mu.Lock()
			active++
			if active > peak {
				peak = active
			}
			mu.Unlock()
			tc.Sleep(ctx, 2*time.Second)
			mu.Lock()
			active--
			mu.Unlock()
			return nil
		}}
	}
	g.MustAdd(mk("a"))
	g.MustAdd(mk("b"))
	if _, err := g.Run(context.Background(), mgr); err != nil {
		t.Fatal(err)
	}
	if peak < 2 {
		t.Fatalf("independent stages did not overlap (peak=%d)", peak)
	}
}

func TestParallelismFanOut(t *testing.T) {
	mgr := newMgr(t)
	g := New()
	var count sync.Map
	g.MustAdd(Stage{Name: "fan", Parallelism: 8, Run: func(_ context.Context, _ core.TaskContext, idx int) error {
		count.Store(idx, true)
		return nil
	}})
	res, err := g.Run(context.Background(), mgr)
	if err != nil {
		t.Fatal(err)
	}
	if res["fan"].Tasks != 8 {
		t.Fatalf("tasks = %d, want 8", res["fan"].Tasks)
	}
	for i := 0; i < 8; i++ {
		if _, ok := count.Load(i); !ok {
			t.Errorf("task %d never ran", i)
		}
	}
}

func TestCycleDetected(t *testing.T) {
	g := New()
	g.MustAdd(Stage{Name: "a", Deps: []string{"b"}, Run: func(context.Context, core.TaskContext, int) error { return nil }})
	g.MustAdd(Stage{Name: "b", Deps: []string{"a"}, Run: func(context.Context, core.TaskContext, int) error { return nil }})
	if err := g.Validate(); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("err = %v, want cycle error", err)
	}
}

func TestUnknownDependencyRejected(t *testing.T) {
	g := New()
	g.MustAdd(Stage{Name: "a", Deps: []string{"ghost"}, Run: func(context.Context, core.TaskContext, int) error { return nil }})
	if err := g.Validate(); err == nil || !strings.Contains(err.Error(), "unknown stage") {
		t.Fatalf("err = %v, want unknown-stage error", err)
	}
}

func TestDuplicateStageRejected(t *testing.T) {
	g := New()
	g.MustAdd(Stage{Name: "a", Run: func(context.Context, core.TaskContext, int) error { return nil }})
	if err := g.Add(Stage{Name: "a", Run: func(context.Context, core.TaskContext, int) error { return nil }}); err == nil {
		t.Fatal("duplicate accepted")
	}
}

func TestStageValidation(t *testing.T) {
	g := New()
	if err := g.Add(Stage{Run: func(context.Context, core.TaskContext, int) error { return nil }}); err == nil {
		t.Error("anonymous stage accepted")
	}
	if err := g.Add(Stage{Name: "x"}); err == nil {
		t.Error("nil Run accepted")
	}
}

func TestFailingStageAbortsDownstream(t *testing.T) {
	mgr := newMgr(t)
	g := New()
	boom := errors.New("boom")
	downstreamRan := false
	g.MustAdd(Stage{Name: "bad", Run: func(context.Context, core.TaskContext, int) error { return boom }})
	g.MustAdd(Stage{Name: "after", Deps: []string{"bad"}, Run: func(context.Context, core.TaskContext, int) error {
		downstreamRan = true
		return nil
	}})
	_, err := g.Run(context.Background(), mgr)
	if err == nil || !strings.Contains(err.Error(), "bad") {
		t.Fatalf("err = %v, want stage-bad failure", err)
	}
	if downstreamRan {
		t.Fatal("downstream stage ran after dependency failure")
	}
}

func TestStageResultTiming(t *testing.T) {
	mgr := newMgr(t)
	g := New()
	g.MustAdd(Stage{Name: "s", Parallelism: 2, Run: func(ctx context.Context, tc core.TaskContext, _ int) error {
		tc.Sleep(ctx, time.Second)
		return nil
	}})
	res, err := g.Run(context.Background(), mgr)
	if err != nil {
		t.Fatal(err)
	}
	if res["s"].Elapsed() < 500*time.Millisecond {
		t.Fatalf("elapsed = %v, want ≈1s modeled", res["s"].Elapsed())
	}
}

// newVirtualMgr builds a manager on a Virtual clock with the calling test
// goroutine adopted as the driver participant.
func newVirtualMgr(t *testing.T) (*core.Manager, *vclock.Virtual) {
	t.Helper()
	clock := vclock.NewVirtual(vclock.Epoch)
	clock.Adopt()
	t.Cleanup(clock.Leave)
	reg := saga.NewRegistry()
	reg.Register(saga.NewLocalService("lh", 32, clock))
	mgr := core.NewManager(core.Config{Registry: reg, Clock: clock})
	t.Cleanup(mgr.Close)
	p, err := mgr.SubmitPilot(core.PilotDescription{Resource: "local://lh", Cores: 16})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.WaitRunning(context.Background()); err != nil {
		t.Fatal(err)
	}
	return mgr, clock
}

// TestPureStageRunsOffToken pins the Stage.Pure contract on the virtual
// clock: pure kernels execute as a parallel compute phase (real CPU,
// run-varying wall durations) yet their results and the stage's modeled
// timing are deterministic, and modeled time does not advance across a
// stage that only computes.
func TestPureStageRunsOffToken(t *testing.T) {
	mgr, clock := newVirtualMgr(t)
	start := clock.Now()
	g := New()
	results := make([]uint64, 8)
	g.MustAdd(Stage{Name: "kernel", Parallelism: len(results), Pure: true,
		Run: func(_ context.Context, _ core.TaskContext, idx int) error {
			acc := uint64(idx + 1)
			for i := 0; i < 50_000; i++ {
				acc = acc*6364136223846793005 + 1442695040888963407
			}
			results[idx] = acc
			return nil
		}})
	res, err := g.Run(context.Background(), mgr)
	if err != nil {
		t.Fatal(err)
	}
	if got := clock.Now(); !got.Equal(start) {
		t.Errorf("pure stage advanced modeled time: %v -> %v", start, got)
	}
	if res["kernel"].Elapsed() != 0 {
		t.Errorf("pure stage modeled elapsed = %v, want 0", res["kernel"].Elapsed())
	}
	for i, r := range results {
		if r == 0 {
			t.Errorf("results[%d] unset: kernel did not run", i)
		}
	}
}

// TestPureStageErrorPropagates checks that a failing pure kernel still
// aborts the graph with its own error.
func TestPureStageErrorPropagates(t *testing.T) {
	mgr, _ := newVirtualMgr(t)
	g := New()
	boom := errors.New("kernel exploded")
	g.MustAdd(Stage{Name: "bad", Pure: true,
		Run: func(context.Context, core.TaskContext, int) error { return boom }})
	if _, err := g.Run(context.Background(), mgr); err == nil || !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped kernel error", err)
	}
}
