// Package dataflow implements the paper's Table I "Dataflow" scenario: a
// directed-acyclic-graph execution engine over the pilot abstraction.
// Stages declare dependencies; each stage fans out into a configurable
// number of compute-units; a stage starts only when all its dependencies
// completed (Dryad-style coarse-grained dataflow, the model Pilot-Hadoop
// applications use for multi-stage pipelines).
package dataflow

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"gopilot/internal/core"
	"gopilot/internal/vclock"
)

// TaskFunc is the body of one task of a stage; idx ranges over
// [0, Parallelism).
type TaskFunc func(ctx context.Context, tc core.TaskContext, idx int) error

// Stage is one node of the graph.
type Stage struct {
	// Name identifies the stage; unique within a graph.
	Name string
	// Deps lists stage names that must complete first.
	Deps []string
	// Parallelism is the task fan-out (default 1).
	Parallelism int
	// CoresPerTask sizes each task (default 1).
	CoresPerTask int
	// InputData is attached to every task of the stage (for data-aware
	// placement and staging).
	InputData []string
	// Run is the task body.
	Run TaskFunc
	// Pure marks Run as a side-effect-free CPU kernel: the engine then
	// executes it as a parallel compute phase (TaskContext.Compute), so
	// the stage's tasks use real cores under the virtual-time executor
	// while results stay bit-reproducible. A pure Run must not use
	// tc.Sleep, tc.Stream, tc.Data, or the clock (see DESIGN.md "Parallel
	// compute phase"); stages that model time or stage data leave this
	// false and call tc.Compute themselves around their CPU sections.
	Pure bool
	// MaxRetries is the per-task retry budget.
	MaxRetries int
}

// StageResult reports one executed stage.
type StageResult struct {
	Name    string
	Tasks   int
	Started time.Time
	Ended   time.Time
}

// Elapsed is the stage's modeled span.
func (r StageResult) Elapsed() time.Duration { return r.Ended.Sub(r.Started) }

// Graph is a DAG of stages. The zero value is not usable; create with New.
type Graph struct {
	mu     sync.Mutex
	stages map[string]*Stage
	order  []string // insertion order, for deterministic scheduling
}

// New creates an empty graph.
func New() *Graph {
	return &Graph{stages: make(map[string]*Stage)}
}

// Add inserts a stage. It returns an error on duplicate or anonymous
// stages so misconstructed pipelines fail fast.
func (g *Graph) Add(s Stage) error {
	if s.Name == "" {
		return errors.New("dataflow: stage needs a name")
	}
	if s.Run == nil {
		return fmt.Errorf("dataflow: stage %q has nil Run", s.Name)
	}
	if s.Parallelism <= 0 {
		s.Parallelism = 1
	}
	if s.CoresPerTask <= 0 {
		s.CoresPerTask = 1
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, dup := g.stages[s.Name]; dup {
		return fmt.Errorf("dataflow: duplicate stage %q", s.Name)
	}
	g.stages[s.Name] = &s
	g.order = append(g.order, s.Name)
	return nil
}

// MustAdd is Add that panics, for statically correct pipeline literals.
func (g *Graph) MustAdd(s Stage) {
	if err := g.Add(s); err != nil {
		panic(err)
	}
}

// Validate checks that dependencies exist and the graph is acyclic.
func (g *Graph) Validate() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.validateLocked()
}

func (g *Graph) validateLocked() error {
	for name, s := range g.stages {
		for _, d := range s.Deps {
			if _, ok := g.stages[d]; !ok {
				return fmt.Errorf("dataflow: stage %q depends on unknown stage %q", name, d)
			}
		}
	}
	// Kahn's algorithm detects cycles.
	indeg := make(map[string]int, len(g.stages))
	for name := range g.stages {
		indeg[name] = 0
	}
	for _, s := range g.stages {
		for range s.Deps {
			indeg[s.Name]++
		}
	}
	queue := make([]string, 0, len(g.stages))
	for name, d := range indeg {
		if d == 0 {
			queue = append(queue, name)
		}
	}
	sort.Strings(queue)
	seen := 0
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		seen++
		for _, s := range g.stages {
			for _, d := range s.Deps {
				if d == n {
					indeg[s.Name]--
					if indeg[s.Name] == 0 {
						queue = append(queue, s.Name)
					}
				}
			}
		}
	}
	if seen != len(g.stages) {
		return errors.New("dataflow: graph has a cycle")
	}
	return nil
}

// Run executes the graph on mgr, launching every stage as soon as its
// dependencies complete (stages without mutual dependencies overlap).
// It returns per-stage results keyed by stage name.
func (g *Graph) Run(ctx context.Context, mgr *core.Manager) (map[string]StageResult, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	g.mu.Lock()
	stages := make(map[string]*Stage, len(g.stages))
	order := append([]string(nil), g.order...)
	for k, v := range g.stages {
		stages[k] = v
	}
	g.mu.Unlock()

	clock := mgr.Clock()
	doneEv := make(map[string]*vclock.Event, len(stages))
	for name := range stages {
		doneEv[name] = vclock.NewEvent(clock)
	}
	results := make(map[string]StageResult, len(stages))
	var resMu sync.Mutex
	var firstErr error
	var errOnce sync.Once
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	wg := vclock.NewGroup(clock)
	for _, name := range order {
		s := stages[name]
		wg.Add(1)
		vclock.Go(clock, func() {
			defer wg.Done()
			// Wait for dependencies.
			for _, d := range s.Deps {
				if !doneEv[d].Wait(runCtx) {
					return
				}
			}
			if runCtx.Err() != nil {
				return
			}
			res, err := runStage(runCtx, mgr, s)
			if err != nil {
				errOnce.Do(func() {
					firstErr = fmt.Errorf("dataflow: stage %q: %w", s.Name, err)
					cancel()
				})
				return
			}
			resMu.Lock()
			results[s.Name] = res
			resMu.Unlock()
			doneEv[s.Name].Fire()
		})
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return results, nil
}

func runStage(ctx context.Context, mgr *core.Manager, s *Stage) (StageResult, error) {
	clock := mgr.Clock()
	started := clock.Now()
	units := make([]*core.ComputeUnit, 0, s.Parallelism)
	for i := 0; i < s.Parallelism; i++ {
		i := i
		u, err := mgr.SubmitUnit(core.UnitDescription{
			Name:       fmt.Sprintf("%s[%d]", s.Name, i),
			Cores:      s.CoresPerTask,
			InputData:  s.InputData,
			MaxRetries: s.MaxRetries,
			Run: func(ctx context.Context, tc core.TaskContext) error {
				if !s.Pure {
					return s.Run(ctx, tc, i)
				}
				var err error
				if !tc.Compute(ctx, func() { err = s.Run(ctx, tc, i) }) {
					return ctx.Err()
				}
				return err
			},
		})
		if err != nil {
			return StageResult{}, err
		}
		units = append(units, u)
	}
	for _, u := range units {
		if st, err := u.Wait(ctx); st != core.UnitDone {
			return StageResult{}, fmt.Errorf("task %s %v: %w", u.ID(), st, err)
		}
	}
	return StageResult{Name: s.Name, Tasks: s.Parallelism, Started: started, Ended: clock.Now()}, nil
}
