// Package dist provides the seeded probability distributions that drive
// every stochastic element of the simulated infrastructure: exogenous
// batch-queue waits, VM boot delays, HTC match delays, serverless
// cold-starts, synthetic task service times, and preemption draws. The
// paper's evaluation (arXiv:2002.09009, §V) models these as lognormal /
// normal processes; its methodology demands that any experiment be
// reproducible from a single seed, which is what the splittable Stream
// underneath each distribution guarantees.
//
// All distributions are concurrency-safe: many goroutines may call
// Sample on the same value, and the sequence of draws each *component*
// sees is fixed by its own sub-stream, not by goroutine interleaving.
package dist

import (
	"math"
	"math/rand"
)

// Dist is a real-valued probability distribution. Sample draws the next
// variate from the distribution's own deterministic stream; Mean and
// Quantile expose the analytical moments the white-box performance
// models need (perfmodel's makespan bounds reason about means and
// max-of-n quantiles without burning samples).
type Dist interface {
	// Sample draws the next variate.
	Sample() float64
	// Mean returns the distribution mean.
	Mean() float64
	// Quantile returns the p-quantile (inverse CDF) for p in [0, 1].
	Quantile(p float64) float64
}

// Constant returns the degenerate distribution that always yields v —
// the workhorse of unit tests, which need exogenous delays pinned.
func Constant(v float64) Dist { return constant(v) }

type constant float64

func (c constant) Sample() float64            { return float64(c) }
func (c constant) Mean() float64              { return float64(c) }
func (c constant) Quantile(p float64) float64 { return float64(c) }

// Normal is a normal distribution drawing from its own stream.
type Normal struct {
	mean, sd float64
	s        *Stream
}

// NewNormal returns a Normal(mean, sd²) seeded independently of every
// other distribution built from a different seed.
func NewNormal(mean, sd float64, seed int64) *Normal {
	return NormalFrom(NewStream(seed), mean, sd)
}

// NormalFrom builds a Normal on an existing (sub-)stream — the hook for
// experiments that fan one root seed out into per-component streams.
func NormalFrom(s *Stream, mean, sd float64) *Normal {
	return &Normal{mean: mean, sd: math.Abs(sd), s: s}
}

func (n *Normal) Sample() float64 { return n.mean + n.sd*n.s.NormFloat64() }
func (n *Normal) Mean() float64   { return n.mean }

func (n *Normal) Quantile(p float64) float64 {
	return n.mean + n.sd*math.Sqrt2*math.Erfinv(2*clamp01(p)-1)
}

// LogNormal is a lognormal distribution parameterized — as the paper's
// queue-wait models are — by its *actual* mean and coefficient of
// variation, not by the underlying normal's (mu, sigma).
type LogNormal struct {
	mu, sigma float64 // parameters of the underlying normal
	mean      float64
	s         *Stream
}

// NewLogNormal returns a lognormal with the given mean and coefficient
// of variation (sd/mean). cv <= 0 degenerates to a constant at mean.
func NewLogNormal(mean, cv float64, seed int64) *LogNormal {
	return LogNormalFrom(NewStream(seed), mean, cv)
}

// LogNormalFrom builds a LogNormal on an existing (sub-)stream.
func LogNormalFrom(s *Stream, mean, cv float64) *LogNormal {
	if mean <= 0 {
		mean = math.SmallestNonzeroFloat64
	}
	if cv < 0 {
		cv = 0
	}
	sigma2 := math.Log(1 + cv*cv)
	return &LogNormal{
		mu:    math.Log(mean) - sigma2/2,
		sigma: math.Sqrt(sigma2),
		mean:  mean,
		s:     s,
	}
}

func (l *LogNormal) Sample() float64 {
	return math.Exp(l.mu + l.sigma*l.s.NormFloat64())
}

func (l *LogNormal) Mean() float64 { return l.mean }

func (l *LogNormal) Quantile(p float64) float64 {
	return math.Exp(l.mu + l.sigma*math.Sqrt2*math.Erfinv(2*clamp01(p)-1))
}

// BernoulliDist is the {0, 1} distribution with success probability P.
type BernoulliDist struct {
	p float64
	s *Stream
}

// NewBernoulli returns a seeded Bernoulli(p) distribution; Sample yields
// 1 with probability p and 0 otherwise.
func NewBernoulli(p float64, seed int64) *BernoulliDist {
	return BernoulliFrom(NewStream(seed), p)
}

// BernoulliFrom builds a Bernoulli on an existing (sub-)stream.
func BernoulliFrom(s *Stream, p float64) *BernoulliDist {
	return &BernoulliDist{p: clamp01(p), s: s}
}

func (b *BernoulliDist) Sample() float64 {
	if b.s.Float64() < b.p {
		return 1
	}
	return 0
}

func (b *BernoulliDist) Mean() float64 { return b.p }

func (b *BernoulliDist) Quantile(p float64) float64 {
	if clamp01(p) > 1-b.p {
		return 1
	}
	return 0
}

// Zipf draws Zipf-distributed uint64s in [0, imax] on a Stream — the
// skewed-popularity generator synthetic corpora need (wordcount's
// vocabulary). It wraps math/rand's rejection-inversion sampler, which
// is covered by the Go 1 compatibility promise, over our own Source, so
// the sequence is fixed by (stream, parameters) alone. Draws are
// concurrency-safe because the sampler is stateless between draws and
// all randomness flows through the locked Stream.
type Zipf struct {
	z *rand.Zipf
}

// ZipfFrom builds a Zipf(s, v, imax) sampler on an existing
// (sub-)stream; s > 1 is the skew exponent and v >= 1 the offset, as in
// math/rand.NewZipf.
func ZipfFrom(st *Stream, s, v float64, imax uint64) *Zipf {
	return &Zipf{z: rand.NewZipf(rand.New(st), s, v, imax)}
}

// Uint64 draws the next variate.
func (z *Zipf) Uint64() uint64 { return z.z.Uint64() }

// Unseeded returns the deterministic fallback stream for a component
// whose configuration omitted one: a child of the zero-seed root under
// "unseeded"/<path>. Components use it in their config-defaulting so no
// package ever has to mint an integer seed; real experiments should
// always wire a labeled child of their own root instead (see Named).
func Unseeded(path ...string) *Stream {
	return NewStream(0).Named("unseeded").Named(path...)
}

func clamp01(p float64) float64 {
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}
