// Package dist provides the seeded probability distributions that drive
// every stochastic element of the simulated infrastructure: exogenous
// batch-queue waits, VM boot delays, HTC match delays, serverless
// cold-starts, synthetic task service times, and preemption draws. The
// paper's evaluation (arXiv:2002.09009, §V) models these as lognormal /
// normal processes; its methodology demands that any experiment be
// reproducible from a single seed, which is what the splittable Stream
// underneath each distribution guarantees.
//
// All distributions are concurrency-safe: many goroutines may call
// Sample on the same value, and the sequence of draws each *component*
// sees is fixed by its own sub-stream, not by goroutine interleaving.
package dist

import (
	"math"
	"math/rand"
)

// Dist is a real-valued probability distribution. Sample draws the next
// variate from the distribution's own deterministic stream; Mean and
// Quantile expose the analytical moments the white-box performance
// models need (perfmodel's makespan bounds reason about means and
// max-of-n quantiles without burning samples).
type Dist interface {
	// Sample draws the next variate.
	Sample() float64
	// Mean returns the distribution mean.
	Mean() float64
	// Quantile returns the p-quantile (inverse CDF) for p in [0, 1].
	Quantile(p float64) float64
}

// Constant returns the degenerate distribution that always yields v —
// the workhorse of unit tests, which need exogenous delays pinned.
func Constant(v float64) Dist { return constant(v) }

type constant float64

func (c constant) Sample() float64            { return float64(c) }
func (c constant) Mean() float64              { return float64(c) }
func (c constant) Quantile(p float64) float64 { return float64(c) }

// Normal is a normal distribution drawing from its own stream.
type Normal struct {
	mean, sd float64
	s        *Stream
}

// NewNormal returns a Normal(mean, sd²) seeded independently of every
// other distribution built from a different seed.
func NewNormal(mean, sd float64, seed int64) *Normal {
	return NormalFrom(NewStream(seed), mean, sd)
}

// NormalFrom builds a Normal on an existing (sub-)stream — the hook for
// experiments that fan one root seed out into per-component streams.
func NormalFrom(s *Stream, mean, sd float64) *Normal {
	return &Normal{mean: mean, sd: math.Abs(sd), s: s}
}

func (n *Normal) Sample() float64 { return n.mean + n.sd*n.s.NormFloat64() }
func (n *Normal) Mean() float64   { return n.mean }

func (n *Normal) Quantile(p float64) float64 {
	return n.mean + n.sd*math.Sqrt2*math.Erfinv(2*clamp01(p)-1)
}

// LogNormal is a lognormal distribution parameterized — as the paper's
// queue-wait models are — by its *actual* mean and coefficient of
// variation, not by the underlying normal's (mu, sigma).
type LogNormal struct {
	mu, sigma float64 // parameters of the underlying normal
	mean      float64
	s         *Stream
}

// NewLogNormal returns a lognormal with the given mean and coefficient
// of variation (sd/mean). cv <= 0 degenerates to a constant at mean.
func NewLogNormal(mean, cv float64, seed int64) *LogNormal {
	return LogNormalFrom(NewStream(seed), mean, cv)
}

// LogNormalFrom builds a LogNormal on an existing (sub-)stream.
func LogNormalFrom(s *Stream, mean, cv float64) *LogNormal {
	if mean <= 0 {
		mean = math.SmallestNonzeroFloat64
	}
	if cv < 0 {
		cv = 0
	}
	sigma2 := math.Log(1 + cv*cv)
	return &LogNormal{
		mu:    math.Log(mean) - sigma2/2,
		sigma: math.Sqrt(sigma2),
		mean:  mean,
		s:     s,
	}
}

func (l *LogNormal) Sample() float64 {
	return math.Exp(l.mu + l.sigma*l.s.NormFloat64())
}

func (l *LogNormal) Mean() float64 { return l.mean }

func (l *LogNormal) Quantile(p float64) float64 {
	return math.Exp(l.mu + l.sigma*math.Sqrt2*math.Erfinv(2*clamp01(p)-1))
}

// BernoulliDist is the {0, 1} distribution with success probability P.
type BernoulliDist struct {
	p float64
	s *Stream
}

// NewBernoulli returns a seeded Bernoulli(p) distribution; Sample yields
// 1 with probability p and 0 otherwise.
func NewBernoulli(p float64, seed int64) *BernoulliDist {
	return BernoulliFrom(NewStream(seed), p)
}

// BernoulliFrom builds a Bernoulli on an existing (sub-)stream.
func BernoulliFrom(s *Stream, p float64) *BernoulliDist {
	return &BernoulliDist{p: clamp01(p), s: s}
}

func (b *BernoulliDist) Sample() float64 {
	if b.s.Float64() < b.p {
		return 1
	}
	return 0
}

func (b *BernoulliDist) Mean() float64 { return b.p }

func (b *BernoulliDist) Quantile(p float64) float64 {
	if clamp01(p) > 1-b.p {
		return 1
	}
	return 0
}

// Bernoulli draws one success/failure from a caller-owned math/rand
// generator with probability p — used by adaptors (HTC eviction) that
// already thread their own *rand.Rand.
func Bernoulli(rng *rand.Rand, p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return rng.Float64() < p
}

func clamp01(p float64) float64 {
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}
