package dist

import (
	"sync"
	"testing"
)

// TestSameSeedSameSequence is the reproducibility contract every
// experiment relies on: rebuilding a distribution from the same seed
// replays the identical draw sequence, bit for bit.
func TestSameSeedSameSequence(t *testing.T) {
	builders := []struct {
		name string
		mk   func() Dist
	}{
		{"normal", func() Dist { return NewNormal(60, 5, 42) }},
		{"lognormal", func() Dist { return NewLogNormal(600, 1.0, 42) }},
		{"bernoulli", func() Dist { return NewBernoulli(0.3, 42) }},
	}
	for _, tc := range builders {
		t.Run(tc.name, func(t *testing.T) {
			a, b := tc.mk(), tc.mk()
			for i := 0; i < 10000; i++ {
				if x, y := a.Sample(), b.Sample(); x != y {
					t.Fatalf("draw %d: %v != %v", i, x, y)
				}
			}
		})
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	a := NewLogNormal(600, 1.0, 1)
	b := NewLogNormal(600, 1.0, 2)
	for i := 0; i < 100; i++ {
		if a.Sample() != b.Sample() {
			return
		}
	}
	t.Fatal("seeds 1 and 2 produced 100 identical draws")
}

// TestSplitLabelConsumptionIndependent pins the property SplitLabel is
// for: a labeled child is a pure function of (root seed, label), no
// matter how much the parent or its other children have been consumed.
func TestSplitLabelConsumptionIndependent(t *testing.T) {
	root := NewStream(7)
	early := root.SplitLabel(3)
	var earlyDraws []uint64
	for i := 0; i < 100; i++ {
		earlyDraws = append(earlyDraws, early.Uint64())
	}

	// Consume the parent and a sibling heavily, then re-derive label 3.
	for i := 0; i < 1000; i++ {
		root.Uint64()
	}
	sib := root.SplitLabel(4)
	for i := 0; i < 500; i++ {
		sib.Uint64()
	}

	late := root.SplitLabel(3)
	for i, want := range earlyDraws {
		if got := late.Uint64(); got != want {
			t.Fatalf("draw %d: re-derived child gave %d, want %d", i, got, want)
		}
	}
}

func TestSplitLabelChildrenIndependent(t *testing.T) {
	root := NewStream(7)
	a := root.SplitLabel(0)
	b := root.SplitLabel(1)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("labels 0 and 1 collided on %d of 1000 draws", same)
	}
}

// goroutinePartitionedRun models how an experiment fans one seed out:
// worker i (a pilot, a unit generator…) owns sub-stream SplitLabel(i)
// and samples from it concurrently with every other worker. The result
// matrix must depend only on the seed — not on goroutine interleaving.
// Run under -race this also proves the plumbing is concurrency-safe.
func goroutinePartitionedRun(seed int64, workers, samples int) [][]float64 {
	root := NewStream(seed)
	out := make([][]float64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			d := LogNormalFrom(root.SplitLabel(uint64(w)), 100, 0.5)
			row := make([]float64, samples)
			for i := range row {
				row[i] = d.Sample()
			}
			out[w] = row
		}(w)
	}
	wg.Wait()
	return out
}

func TestGoroutinePartitionedDeterminism(t *testing.T) {
	const workers, samples = 16, 2000
	a := goroutinePartitionedRun(99, workers, samples)
	b := goroutinePartitionedRun(99, workers, samples)
	for w := 0; w < workers; w++ {
		for i := 0; i < samples; i++ {
			if a[w][i] != b[w][i] {
				t.Fatalf("worker %d draw %d: %v != %v across same-seed runs", w, i, a[w][i], b[w][i])
			}
		}
	}
	c := goroutinePartitionedRun(100, workers, samples)
	diff := false
	for w := 0; w < workers && !diff; w++ {
		for i := 0; i < samples; i++ {
			if a[w][i] != c[w][i] {
				diff = true
				break
			}
		}
	}
	if !diff {
		t.Fatal("seeds 99 and 100 produced identical matrices")
	}
}

// TestConcurrentSampleShared exercises many goroutines hammering one
// shared distribution. Interleaving decides which goroutine sees which
// draw, so no sequence assertion — the point is that -race stays quiet
// and every draw is well formed.
func TestConcurrentSampleShared(t *testing.T) {
	d := NewLogNormal(100, 0.8, 5)
	var wg sync.WaitGroup
	errs := make(chan float64, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				if x := d.Sample(); x <= 0 {
					select {
					case errs <- x:
					default:
					}
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	if x, bad := <-errs; bad {
		t.Fatalf("concurrent draw produced %g", x)
	}
}
