package dist

import (
	"math"
	"math/bits"
	"strings"
	"sync"
)

// Stream is a deterministic, splittable, concurrency-safe random stream.
// It is the single source of randomness for every distribution in this
// package: one experiment seed fans out — via Split/SplitLabel — into
// independent sub-streams per infrastructure component, pilot, or unit,
// so a whole run is bit-reproducible from one int64 no matter how the
// consuming goroutines interleave (each sub-stream is consumed by its
// own component; the split tree, not scheduling, fixes the draws).
//
// The generator is SplitMix64 with per-stream gamma, following Steele,
// Lea & Flood, "Fast Splittable Pseudorandom Number Generators"
// (OOPSLA'14) — the same construction as Java's SplittableRandom. It is
// implemented here rather than delegated to math/rand so the sequence
// is fixed by this repo, not by the Go release.
type Stream struct {
	mu    sync.Mutex
	state uint64
	gamma uint64 // per-stream increment; always odd
	seed0 uint64 // birth state, so SplitLabel is consumption-independent
}

const goldenGamma = 0x9E3779B97F4A7C15

// mix64 is the SplitMix64 output finalizer (variant 13 of Stafford's
// mixers).
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// mixGamma derives an odd gamma with enough 0/1 transitions to make the
// Weyl sequence well distributed.
func mixGamma(z uint64) uint64 {
	z = (z ^ (z >> 33)) * 0xFF51AFD7ED558CCD
	z = (z ^ (z >> 33)) * 0xC4CEB9FE1A85EC53
	z = (z ^ (z >> 33)) | 1
	if bits.OnesCount64(z^(z>>1)) < 24 {
		z ^= 0xAAAAAAAAAAAAAAAA
	}
	return z
}

// NewStream returns the root stream for a seed. Equal seeds yield equal
// streams.
func NewStream(seed int64) *Stream {
	s := mix64(uint64(seed))
	return &Stream{state: s, gamma: goldenGamma, seed0: s}
}

func (s *Stream) nextState() uint64 {
	s.state += s.gamma
	return s.state
}

// Uint64 returns the next 64 uniformly distributed bits.
func (s *Stream) Uint64() uint64 {
	s.mu.Lock()
	v := mix64(s.nextState())
	s.mu.Unlock()
	return v
}

// Split returns a new stream statistically independent of the receiver.
// The child's identity depends on how many values the parent has already
// produced; for order-independent children use SplitLabel.
func (s *Stream) Split() *Stream {
	s.mu.Lock()
	seed := mix64(s.nextState())
	gamma := mixGamma(s.nextState())
	s.mu.Unlock()
	return &Stream{state: seed, gamma: gamma, seed0: seed}
}

// SplitLabel returns the sub-stream for a label (a pilot index, unit
// ordinal, component id…). Unlike Split it neither advances nor reads
// the parent's position: children are derived from the parent's birth
// state, so the same (stream, label) pair always yields the same child,
// regardless of when or from which goroutine it is requested — this is
// what makes goroutine-partitioned experiments bit-reproducible.
func (s *Stream) SplitLabel(label uint64) *Stream {
	s.mu.Lock()
	base, g := s.seed0, s.gamma
	s.mu.Unlock()
	seed := mix64(base ^ mix64(label*goldenGamma+1))
	return &Stream{state: seed, gamma: mixGamma(seed ^ g), seed0: seed}
}

// labelKey hashes a string label onto SplitLabel's numeric namespace:
// FNV-1a 64 over the bytes, finalized through mix64 so short labels
// ("a", "b") land far apart. The hash — like the generator — is fixed by
// this repository, so label trees are stable across Go releases.
func labelKey(label string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 1099511628211
	}
	return mix64(h)
}

// Named returns the descendant stream for a path of string labels — the
// seeding spine's equivalent of a filesystem path. Each argument may
// itself be a "/"-separated path, so
//
//	root.Named("infra/hpc/stampede", "queue-wait")
//
// names the same stream as
//
//	root.Named("infra").Named("hpc").Named("stampede").Named("queue-wait")
//
// Like SplitLabel (which it is built on), Named neither advances nor
// reads the receiver's position: the same (stream, path) pair always
// yields the same child, regardless of what else has been drawn or
// derived. Components are therefore *insensitive* to one another —
// adding a new named component to an experiment cannot shift any other
// component's draws. Empty path segments are skipped, so trailing
// slashes do not mint distinct children.
//
// String labels (component names) and numeric SplitLabel ordinals
// (pilot 3, unit 17) compose freely: root.Named("pilot").SplitLabel(3)
// is the canonical address of the third pilot.
func (s *Stream) Named(path ...string) *Stream {
	out := s
	for _, p := range path {
		for _, seg := range strings.Split(p, "/") {
			if seg == "" {
				continue
			}
			out = out.SplitLabel(labelKey(seg))
		}
	}
	return out
}

// Float64 returns a uniform float64 in [0, 1).
func (s *Stream) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// openFloat64 returns a uniform float64 strictly inside (0, 1) — safe to
// feed through inverse CDFs that diverge at the endpoints.
func (s *Stream) openFloat64() float64 {
	return (float64(s.Uint64()>>11) + 0.5) / (1 << 53)
}

// NormFloat64 returns a standard normal variate via the inverse-CDF
// transform. One uniform draw per variate keeps sub-stream accounting
// simple (no cached spare as in Box–Muller), and the transform is
// monotone in the underlying uniform.
func (s *Stream) NormFloat64() float64 {
	return math.Sqrt2 * math.Erfinv(2*s.openFloat64()-1)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0. Rejection
// sampling keeps the draw exactly uniform (no modulo bias); almost all
// draws consume one Uint64.
func (s *Stream) Intn(n int) int {
	if n <= 0 {
		panic("dist: Intn with non-positive n")
	}
	bound := uint64(n)
	limit := ^uint64(0) / bound * bound // largest multiple of bound representable
	for {
		if v := s.Uint64(); v < limit {
			return int(v % bound)
		}
	}
}

// Bernoulli draws one success/failure with probability p, consuming
// exactly one uniform (also when p is 0 or 1, so consumption patterns
// stay rate-independent).
func (s *Stream) Bernoulli(p float64) bool {
	return s.Float64() < p
}

// Int63 makes Stream a math/rand Source, so legacy call sites can wrap a
// sub-stream in rand.New.
func (s *Stream) Int63() int64 { return int64(s.Uint64() >> 1) }

// Seed reseeds the stream in place (math/rand Source contract).
func (s *Stream) Seed(seed int64) {
	s.mu.Lock()
	s.state = mix64(uint64(seed))
	s.gamma = goldenGamma
	s.seed0 = s.state
	s.mu.Unlock()
}
