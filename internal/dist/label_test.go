package dist

import (
	"math"
	"testing"
)

func first(s *Stream, k int) []uint64 {
	out := make([]uint64, k)
	for i := range out {
		out[i] = s.Uint64()
	}
	return out
}

func equalSeq(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestNamedPathEquivalence pins the label grammar: one slash-separated
// path, several arguments, and chained Named calls must all address the
// same stream, and empty segments must not mint distinct children.
func TestNamedPathEquivalence(t *testing.T) {
	root := NewStream(42)
	want := first(root.Named("infra/hpc/stampede/queue-wait"), 8)
	variants := map[string]*Stream{
		"args":     root.Named("infra", "hpc", "stampede", "queue-wait"),
		"chained":  root.Named("infra").Named("hpc").Named("stampede").Named("queue-wait"),
		"mixed":    root.Named("infra/hpc", "stampede/queue-wait"),
		"trailing": root.Named("infra/hpc/stampede/queue-wait/"),
		"doubled":  root.Named("infra//hpc/stampede//queue-wait"),
	}
	for name, s := range variants {
		if got := first(s, 8); !equalSeq(got, want) {
			t.Errorf("%s: Named variant draws diverge from canonical path", name)
		}
	}
}

// TestNamedConsumptionIndependent is the spine's core contract: deriving
// a named child neither depends on nor disturbs the parent's position or
// its other children — so adding a component never shifts another's draws.
func TestNamedConsumptionIndependent(t *testing.T) {
	rootA := NewStream(7)
	early := first(rootA.Named("manager"), 8)

	rootB := NewStream(7)
	// Exercise rootB heavily first: direct draws, sibling components, a
	// numeric split — then derive the same child.
	rootB.Uint64()
	rootB.Uint64()
	first(rootB.Named("infra/htc/osg"), 5)
	first(rootB.Named("manager").SplitLabel(3), 5)
	late := first(rootB.Named("manager"), 8)

	if !equalSeq(early, late) {
		t.Fatal("Named child depends on parent consumption or sibling derivation")
	}
}

// TestNamedChildrenDistinct guards against label-hash collisions between
// the canonical component names used across the repo.
func TestNamedChildrenDistinct(t *testing.T) {
	root := NewStream(1)
	labels := []string{
		"infra/hpc/stampede", "infra/hpc/comet", "infra/htc/osg",
		"infra/cloud/ec2", "infra/yarn/yarn", "manager", "pilot", "unit",
		"queue-wait", "match-delay", "boot-delay", "alloc-delay", "evict",
		"app/rexchange", "app/enkf", "app/kmeans", "a", "b",
	}
	seen := make(map[uint64]string)
	for _, l := range labels {
		v := root.Named(l).Uint64()
		if prev, ok := seen[v]; ok {
			t.Fatalf("labels %q and %q yield identical first draws", prev, l)
		}
		seen[v] = l
	}
}

// TestSeedResetsSplitLabelChildren is the regression test for the
// math/rand Source compat method: reseeding a stream in place must also
// reset its birth state (seed0), so a reseeded stream's SplitLabel and
// Named children are bit-identical to a freshly constructed stream's.
func TestSeedResetsSplitLabelChildren(t *testing.T) {
	used := NewStream(1)
	// Scramble every piece of internal state reachable before reseeding:
	// position (state), and gamma via Split's child-derivation draws.
	used.Uint64()
	used.Split()
	used.SplitLabel(9)
	used.Seed(99)

	fresh := NewStream(99)
	if !equalSeq(first(used, 8), first(fresh, 8)) {
		t.Fatal("reseeded stream's direct draws diverge from a fresh stream's")
	}
	if !equalSeq(first(used.SplitLabel(17), 8), first(fresh.SplitLabel(17), 8)) {
		t.Fatal("reseeded stream's SplitLabel children diverge from a fresh stream's")
	}
	if !equalSeq(first(used.Named("pilot", "3"), 8), first(fresh.Named("pilot", "3"), 8)) {
		t.Fatal("reseeded stream's Named children diverge from a fresh stream's")
	}
}

func TestIntn(t *testing.T) {
	s := NewStream(5)
	const n = 7
	counts := make([]int, n)
	const total = 70000
	for i := 0; i < total; i++ {
		v := s.Intn(n)
		if v < 0 || v >= n {
			t.Fatalf("Intn(%d) = %d out of range", n, v)
		}
		counts[v]++
	}
	want := float64(total) / n
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Errorf("Intn(%d): value %d drawn %d times, want ≈%.0f", n, v, c, want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	s.Intn(0)
}

func TestZipfDeterministicAndSkewed(t *testing.T) {
	a := ZipfFrom(NewStream(11).Named("corpus"), 1.3, 1, 999)
	b := ZipfFrom(NewStream(11).Named("corpus"), 1.3, 1, 999)
	zero := 0
	for i := 0; i < 20000; i++ {
		va, vb := a.Uint64(), b.Uint64()
		if va != vb {
			t.Fatalf("same-stream Zipf draws diverge at %d: %d vs %d", i, va, vb)
		}
		if va > 999 {
			t.Fatalf("Zipf draw %d exceeds imax", va)
		}
		if va == 0 {
			zero++
		}
	}
	// Rank 0 of a Zipf(1.3) over 1000 symbols carries far more than the
	// uniform share (1/1000); a loose floor catches a broken sampler.
	if zero < 2000 {
		t.Errorf("rank-0 frequency %d/20000 — distribution not Zipf-skewed", zero)
	}
}

func TestUnseededDeterministicAndLabeled(t *testing.T) {
	a := Unseeded("infra", "hpc", "x")
	b := Unseeded("infra/hpc/x")
	if !equalSeq(first(a, 4), first(b, 4)) {
		t.Fatal("Unseeded is not stable across equivalent paths")
	}
	if Unseeded("a").Uint64() == Unseeded("b").Uint64() {
		t.Fatal("Unseeded ignores its path")
	}
	// The fallback must not collide with a genuine zero-seed spine root.
	if NewStream(0).Uint64() == Unseeded().Uint64() {
		t.Fatal("Unseeded collides with the bare zero-seed root")
	}
}
