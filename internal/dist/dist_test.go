package dist

import (
	"math"
	"testing"
)

// draws is sized so that standard-error-based tolerances below are tight
// enough to catch parameterization bugs (e.g. mu/sigma vs mean/cv mixups)
// but loose enough to never flake on a correct implementation.
const draws = 200000

func empiricalMoments(d Dist, n int) (mean, variance float64) {
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		x := d.Sample()
		sum += x
		sumsq += x * x
	}
	mean = sum / float64(n)
	variance = sumsq/float64(n) - mean*mean
	return mean, variance
}

func TestConstantExact(t *testing.T) {
	for _, v := range []float64{-3.5, 0, 1, 42, 1e9} {
		c := Constant(v)
		for i := 0; i < 10; i++ {
			if got := c.Sample(); got != v {
				t.Fatalf("Constant(%g).Sample() = %g", v, got)
			}
		}
		if c.Mean() != v {
			t.Errorf("Constant(%g).Mean() = %g", v, c.Mean())
		}
		for _, p := range []float64{0, 0.25, 0.5, 1} {
			if got := c.Quantile(p); got != v {
				t.Errorf("Constant(%g).Quantile(%g) = %g", v, p, got)
			}
		}
	}
}

func TestNormalMoments(t *testing.T) {
	cases := []struct {
		name     string
		mean, sd float64
		seed     int64
	}{
		{"standard", 0, 1, 1},
		{"shifted", 60, 5, 2},
		{"wide", -100, 40, 3},
		{"tight", 1e4, 0.5, 4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := NewNormal(tc.mean, tc.sd, tc.seed)
			if d.Mean() != tc.mean {
				t.Fatalf("Mean() = %g, want %g", d.Mean(), tc.mean)
			}
			m, v := empiricalMoments(d, draws)
			// 6 standard errors of the sample mean / variance.
			seMean := 6 * tc.sd / math.Sqrt(draws)
			if math.Abs(m-tc.mean) > seMean {
				t.Errorf("empirical mean = %g, want %g ± %g", m, tc.mean, seMean)
			}
			seVar := 6 * tc.sd * tc.sd * math.Sqrt2 / math.Sqrt(draws)
			if math.Abs(v-tc.sd*tc.sd) > seVar {
				t.Errorf("empirical var = %g, want %g ± %g", v, tc.sd*tc.sd, seVar)
			}
		})
	}
}

func TestLogNormalMoments(t *testing.T) {
	cases := []struct {
		name     string
		mean, cv float64
		seed     int64
	}{
		{"queue-wait", 600, 1.0, 42},
		{"boot-delay", 45, 0.3, 5},
		{"low-variance", 120, 0.1, 6},
		{"heavy-tail", 100, 1.5, 7},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := NewLogNormal(tc.mean, tc.cv, tc.seed)
			if d.Mean() != tc.mean {
				t.Fatalf("Mean() = %g, want %g", d.Mean(), tc.mean)
			}
			m, v := empiricalMoments(d, draws)
			// Relative tolerances scaled by the tail weight: the sample
			// mean of a cv=1.5 lognormal converges slowly.
			if rel := math.Abs(m-tc.mean) / tc.mean; rel > 0.03*(1+tc.cv) {
				t.Errorf("empirical mean = %g, want %g (rel err %g)", m, tc.mean, rel)
			}
			wantSD := tc.cv * tc.mean
			if rel := math.Abs(math.Sqrt(v)-wantSD) / wantSD; rel > 0.1*(1+tc.cv) {
				t.Errorf("empirical sd = %g, want %g (rel err %g)", math.Sqrt(v), wantSD, rel)
			}
			// Every lognormal draw is strictly positive by construction.
			for i := 0; i < 1000; i++ {
				if x := d.Sample(); x <= 0 || math.IsInf(x, 0) || math.IsNaN(x) {
					t.Fatalf("draw %d = %g, want finite positive", i, x)
				}
			}
		})
	}
}

func TestLogNormalDegeneratesToConstant(t *testing.T) {
	d := NewLogNormal(50, 0, 9)
	for i := 0; i < 100; i++ {
		if x := d.Sample(); math.Abs(x-50) > 1e-9 {
			t.Fatalf("cv=0 draw = %g, want 50", x)
		}
	}
}

func TestBernoulliHitRate(t *testing.T) {
	for _, p := range []float64{0, 0.05, 0.3, 0.5, 0.9, 1} {
		d := NewBernoulli(p, 11)
		hits := 0
		for i := 0; i < draws; i++ {
			switch d.Sample() {
			case 1:
				hits++
			case 0:
			default:
				t.Fatalf("Bernoulli draw outside {0,1}")
			}
		}
		rate := float64(hits) / draws
		tol := 6*math.Sqrt(p*(1-p)/draws) + 1e-12
		if math.Abs(rate-p) > tol {
			t.Errorf("p=%g: hit rate %g, want ± %g", p, rate, tol)
		}
		if d.Mean() != p {
			t.Errorf("p=%g: Mean() = %g", p, d.Mean())
		}
	}
}

func TestBernoulliHelper(t *testing.T) {
	s := NewStream(1)
	for i := 0; i < 100; i++ {
		if s.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !s.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
	hits := 0
	for i := 0; i < draws; i++ {
		if s.Bernoulli(0.3) {
			hits++
		}
	}
	rate := float64(hits) / draws
	if tol := 6 * math.Sqrt(0.3*0.7/draws); math.Abs(rate-0.3) > tol {
		t.Errorf("hit rate %g, want 0.3 ± %g", rate, tol)
	}
}

func TestQuantileMonotone(t *testing.T) {
	dists := []struct {
		name string
		d    Dist
	}{
		{"normal", NewNormal(10, 3, 21)},
		{"lognormal", NewLogNormal(100, 0.8, 22)},
		{"bernoulli", NewBernoulli(0.4, 23)},
		{"constant", Constant(7)},
	}
	for _, tc := range dists {
		t.Run(tc.name, func(t *testing.T) {
			prev := math.Inf(-1)
			for p := 0.01; p <= 0.99; p += 0.01 {
				q := tc.d.Quantile(p)
				if math.IsNaN(q) {
					t.Fatalf("Quantile(%g) is NaN", p)
				}
				if q < prev {
					t.Fatalf("Quantile(%g) = %g < Quantile(prev) = %g", p, q, prev)
				}
				prev = q
			}
		})
	}
}

func TestQuantileAgainstKnownPoints(t *testing.T) {
	n := NewNormal(50, 10, 31)
	if got := n.Quantile(0.5); math.Abs(got-50) > 1e-9 {
		t.Errorf("normal median = %g, want 50", got)
	}
	// 97.72% of a normal lies below mean + 2sd.
	if got := n.Quantile(0.9772); math.Abs(got-70) > 0.1 {
		t.Errorf("normal q(0.9772) = %g, want ≈ 70", got)
	}
	l := NewLogNormal(100, 1.0, 32)
	// Lognormal median is exp(mu) = mean / sqrt(1+cv²).
	wantMedian := 100 / math.Sqrt(2)
	if got := l.Quantile(0.5); math.Abs(got-wantMedian) > 1e-6 {
		t.Errorf("lognormal median = %g, want %g", got, wantMedian)
	}
	// Quantiles should agree with the empirical CDF: count draws below q90.
	q90 := l.Quantile(0.9)
	below := 0
	for i := 0; i < draws; i++ {
		if l.Sample() < q90 {
			below++
		}
	}
	if rate := float64(below) / draws; math.Abs(rate-0.9) > 0.01 {
		t.Errorf("empirical mass below q90 = %g, want ≈ 0.9", rate)
	}
}
