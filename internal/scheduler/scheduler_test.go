package scheduler

import (
	"context"
	"fmt"
	"testing"
	"time"

	"gopilot/internal/core"
	"gopilot/internal/data"
	"gopilot/internal/saga"
	"gopilot/internal/vclock"
)

// env wires a manager with two local "sites" so placement is observable.
type env struct {
	clock *vclock.Scaled
	mgr   *core.Manager
	data  *data.Service
}

func newEnv(t *testing.T, sched core.Scheduler) *env {
	t.Helper()
	clock := vclock.NewScaled(2000)
	reg := saga.NewRegistry()
	reg.Register(saga.NewLocalService("siteA", 32, clock))
	reg.Register(saga.NewLocalService("siteB", 32, clock))
	ds := data.NewService(data.Config{Clock: clock, DefaultLink: data.Link{Bandwidth: 12.5e6, Latency: 50 * time.Millisecond}})
	ds.AddSite("siteA")
	ds.AddSite("siteB")
	mgr := core.NewManager(core.Config{Registry: reg, Clock: clock, Scheduler: sched, Data: ds})
	t.Cleanup(mgr.Close)
	return &env{clock: clock, mgr: mgr, data: ds}
}

func (e *env) pilotAt(t *testing.T, site string, cores int) *core.Pilot {
	t.Helper()
	p, err := e.mgr.SubmitPilot(core.PilotDescription{Name: site, Resource: "local://" + site, Cores: cores})
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the agent to register.
	deadline := time.Now().Add(2 * time.Second)
	for p.State() != core.PilotRunning {
		if time.Now().After(deadline) {
			t.Fatalf("pilot at %s never started", site)
		}
		time.Sleep(time.Millisecond)
	}
	return p
}

func sleepUnit(d time.Duration) core.UnitDescription {
	return core.UnitDescription{Run: func(ctx context.Context, tc core.TaskContext) error {
		tc.Sleep(ctx, d)
		return nil
	}}
}

func waitAll(t *testing.T, mgr *core.Manager) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := mgr.WaitAll(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestFirstFitPicksFirstCandidate(t *testing.T) {
	e := newEnv(t, FirstFit{})
	p1 := e.pilotAt(t, "siteA", 4)
	e.pilotAt(t, "siteB", 4)
	u, _ := e.mgr.SubmitUnit(sleepUnit(10 * time.Millisecond))
	u.Wait(context.Background())
	if u.Pilot() != p1 {
		t.Fatalf("unit ran on %v, want first pilot", u.Pilot().ID())
	}
}

func TestRoundRobinAlternates(t *testing.T) {
	e := newEnv(t, &RoundRobin{})
	p1 := e.pilotAt(t, "siteA", 16)
	p2 := e.pilotAt(t, "siteB", 16)
	for i := 0; i < 16; i++ {
		e.mgr.SubmitUnit(sleepUnit(50 * time.Millisecond))
	}
	waitAll(t, e.mgr)
	c1, c2 := p1.UnitsCompleted(), p2.UnitsCompleted()
	if c1 == 0 || c2 == 0 {
		t.Fatalf("round-robin did not alternate: %d vs %d", c1, c2)
	}
	if diff := c1 - c2; diff < -4 || diff > 4 {
		t.Fatalf("round-robin imbalance: %d vs %d", c1, c2)
	}
}

func TestLeastLoadedPrefersFreestPilot(t *testing.T) {
	e := newEnv(t, LeastLoaded{})
	small := e.pilotAt(t, "siteA", 2)
	big := e.pilotAt(t, "siteB", 16)
	// A burst of units: least-loaded should put most on the big pilot.
	for i := 0; i < 18; i++ {
		e.mgr.SubmitUnit(sleepUnit(100 * time.Millisecond))
	}
	waitAll(t, e.mgr)
	if big.UnitsCompleted() <= small.UnitsCompleted() {
		t.Fatalf("least-loaded: big=%d small=%d", big.UnitsCompleted(), small.UnitsCompleted())
	}
}

func TestDataAwarePlacesAtDataSite(t *testing.T) {
	e := newEnv(t, DataAware{})
	e.pilotAt(t, "siteA", 4)
	pB := e.pilotAt(t, "siteB", 4)
	// Input lives at siteB.
	if err := e.data.Put(context.Background(), data.Unit{ID: "in", Content: []byte("x"), LogicalSize: 100e6, Site: "siteB"}); err != nil {
		t.Fatal(err)
	}
	u, _ := e.mgr.SubmitUnit(core.UnitDescription{
		InputData: []string{"in"},
		Run:       func(ctx context.Context, tc core.TaskContext) error { return nil },
	})
	state, err := u.Wait(context.Background())
	if state != core.UnitDone {
		t.Fatalf("state=%v err=%v", state, err)
	}
	if u.Pilot() != pB {
		t.Fatalf("unit placed at %s, want siteB (data gravity)", u.Pilot().Site())
	}
	// Placement at the data site means no cross-site transfer happened.
	if st := e.data.Stats(); st.Replications != 0 {
		t.Errorf("stage-in replicated despite co-location: %+v", st)
	}
}

func TestDataAwareFallsBackWithoutData(t *testing.T) {
	e := newEnv(t, DataAware{})
	e.pilotAt(t, "siteA", 8)
	u, _ := e.mgr.SubmitUnit(sleepUnit(0))
	state, _ := u.Wait(context.Background())
	if state != core.UnitDone {
		t.Fatalf("state = %v", state)
	}
}

func TestDataAwareExplicitAffinityWins(t *testing.T) {
	e := newEnv(t, DataAware{})
	pA := e.pilotAt(t, "siteA", 4)
	e.pilotAt(t, "siteB", 4)
	e.data.Put(context.Background(), data.Unit{ID: "in2", Content: []byte("x"), LogicalSize: 100e6, Site: "siteB"})
	u, _ := e.mgr.SubmitUnit(core.UnitDescription{
		InputData:    []string{"in2"},
		AffinitySite: "siteA", // explicit affinity overrides data gravity
		Run:          func(ctx context.Context, tc core.TaskContext) error { return nil },
	})
	u.Wait(context.Background())
	if u.Pilot() != pA {
		t.Fatalf("unit placed at %s, want siteA (explicit affinity)", u.Pilot().Site())
	}
}

func TestDataAwareStrictDefersUntilSiteAvailable(t *testing.T) {
	e := newEnv(t, DataAware{Strict: true})
	e.pilotAt(t, "siteA", 4)
	e.data.Put(context.Background(), data.Unit{ID: "in3", Content: []byte("x"), LogicalSize: 100e6, Site: "siteB"})
	u, _ := e.mgr.SubmitUnit(core.UnitDescription{
		InputData: []string{"in3"},
		Run:       func(ctx context.Context, tc core.TaskContext) error { return nil },
	})
	// No pilot at siteB yet: unit must stay pending.
	time.Sleep(50 * time.Millisecond)
	if s := u.State(); s != core.UnitPending {
		t.Fatalf("state = %v, want Pending under strict data affinity", s)
	}
	pB := e.pilotAt(t, "siteB", 4)
	state, _ := u.Wait(context.Background())
	if state != core.UnitDone || u.Pilot() != pB {
		t.Fatalf("state=%v pilot=%v, want Done at siteB", state, u.Pilot())
	}
}

func TestSchedulerNames(t *testing.T) {
	cases := map[string]core.Scheduler{
		"first-fit":         FirstFit{},
		"round-robin":       &RoundRobin{},
		"least-loaded":      LeastLoaded{},
		"data-aware":        DataAware{},
		"data-aware-strict": DataAware{Strict: true},
	}
	for want, s := range cases {
		if s.Name() != want {
			t.Errorf("Name = %q, want %q", s.Name(), want)
		}
	}
}

func TestManyUnitsManyPilotsAllComplete(t *testing.T) {
	e := newEnv(t, LeastLoaded{})
	e.pilotAt(t, "siteA", 8)
	e.pilotAt(t, "siteB", 8)
	units := make([]*core.ComputeUnit, 0, 64)
	for i := 0; i < 64; i++ {
		u, err := e.mgr.SubmitUnit(sleepUnit(time.Duration(10+i) * time.Millisecond))
		if err != nil {
			t.Fatal(err)
		}
		units = append(units, u)
	}
	waitAll(t, e.mgr)
	for _, u := range units {
		if u.State() != core.UnitDone {
			t.Fatalf("unit %s = %v (%v)", u.ID(), u.State(), u.Err())
		}
	}
	_ = fmt.Sprint() // keep fmt import for debug ergonomics
}
