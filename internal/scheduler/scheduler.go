// Package scheduler provides the pluggable late-binding policies used by
// the pilot manager. The paper's R4 (performance/efficiency for diverse
// task workloads) and Pilot-Data's data-aware placement [66] are realized
// here: the same application code can run under FIFO first-fit, round-
// robin, least-loaded or data-aware scheduling, which is exactly the
// trade-off surface the abstraction is meant to expose (§VI "Abstraction
// Design").
package scheduler

import (
	"sync"

	"gopilot/internal/core"
	"gopilot/internal/infra"
)

// FirstFit binds each unit to the first pilot that can host it (FIFO with
// opportunistic backfill). It equals the manager's built-in default and
// exists here so experiments can name it explicitly.
type FirstFit struct{}

// Name implements core.Scheduler.
func (FirstFit) Name() string { return "first-fit" }

// SelectPilot implements core.Scheduler.
func (FirstFit) SelectPilot(_ *core.ComputeUnit, candidates []*core.Pilot, _ core.DataService) *core.Pilot {
	return candidates[0]
}

// RoundRobin spreads units across pilots in rotation, which balances task
// counts when tasks are uniform.
type RoundRobin struct {
	mu   sync.Mutex
	next int
}

// Name implements core.Scheduler.
func (r *RoundRobin) Name() string { return "round-robin" }

// SelectPilot implements core.Scheduler.
func (r *RoundRobin) SelectPilot(_ *core.ComputeUnit, candidates []*core.Pilot, _ core.DataService) *core.Pilot {
	r.mu.Lock()
	defer r.mu.Unlock()
	p := candidates[r.next%len(candidates)]
	r.next++
	return p
}

// LeastLoaded binds each unit to the candidate with the most free cores,
// balancing load when tasks are heterogeneous.
type LeastLoaded struct{}

// Name implements core.Scheduler.
func (LeastLoaded) Name() string { return "least-loaded" }

// SelectPilot implements core.Scheduler.
func (LeastLoaded) SelectPilot(_ *core.ComputeUnit, candidates []*core.Pilot, _ core.DataService) *core.Pilot {
	best := candidates[0]
	bestFree := best.FreeCores()
	for _, p := range candidates[1:] {
		if f := p.FreeCores(); f > bestFree {
			best, bestFree = p, f
		}
	}
	return best
}

// DataAware implements Pilot-Data's affinity scheduling: a unit is placed
// on the pilot co-located with the largest share of its input bytes. When
// no candidate holds any input data (or the unit has none), it falls back
// to least-loaded. A unit's explicit AffinitySite takes precedence over
// data locality.
//
// Strict mode defers units (returns nil) until a pilot at the best data
// site has capacity; non-strict mode always places somewhere, trading
// locality for utilization — the knob the paper's Pilot-Data evaluation
// turns (E4).
type DataAware struct {
	// Strict defers placement until the preferred site is available.
	Strict bool
}

// Name implements core.Scheduler.
func (d DataAware) Name() string {
	if d.Strict {
		return "data-aware-strict"
	}
	return "data-aware"
}

// SelectPilot implements core.Scheduler.
func (d DataAware) SelectPilot(cu *core.ComputeUnit, candidates []*core.Pilot, data core.DataService) *core.Pilot {
	desc := cu.Description()

	// Explicit affinity dominates.
	if desc.AffinitySite != "" {
		for _, p := range candidates {
			if p.Site() == desc.AffinitySite {
				return p
			}
		}
		if d.Strict {
			return nil
		}
	}

	if data != nil && len(desc.InputData) > 0 {
		local := localBytes(desc.InputData, candidates, data)
		var best *core.Pilot
		var bestBytes int64 = -1
		for _, p := range candidates {
			if b := local[p.Site()]; b > bestBytes {
				best, bestBytes = p, b
			}
		}
		if bestBytes > 0 {
			return best
		}
		if d.Strict {
			// Data exists but no candidate is co-located: wait for one.
			if anyReplicaExists(desc.InputData, data) {
				return nil
			}
		}
	}
	return LeastLoaded{}.SelectPilot(cu, candidates, data)
}

// localBytes sums, per candidate site, the input bytes already resident.
func localBytes(ids []string, candidates []*core.Pilot, data core.DataService) map[infra.Site]int64 {
	out := make(map[infra.Site]int64, len(candidates))
	for _, id := range ids {
		sites, ok := data.Locate(id)
		if !ok {
			continue
		}
		size, _ := data.Size(id)
		for _, s := range sites {
			out[s] += size
		}
	}
	return out
}

func anyReplicaExists(ids []string, data core.DataService) bool {
	for _, id := range ids {
		if sites, ok := data.Locate(id); ok && len(sites) > 0 {
			return true
		}
	}
	return false
}

var (
	_ core.Scheduler = FirstFit{}
	_ core.Scheduler = (*RoundRobin)(nil)
	_ core.Scheduler = LeastLoaded{}
	_ core.Scheduler = DataAware{}
)
