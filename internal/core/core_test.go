package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gopilot/internal/dist"
	"gopilot/internal/infra/hpc"
	"gopilot/internal/saga"
	"gopilot/internal/vclock"
)

func fastClock() *vclock.Scaled { return vclock.NewScaled(2000) }

// testEnv builds a manager over a local service and an HPC simulator.
type testEnv struct {
	clock   *vclock.Scaled
	reg     *saga.Registry
	cluster *hpc.Cluster
	mgr     *Manager
}

func newEnv(t *testing.T, cfg Config, hpcCfg hpc.Config) *testEnv {
	t.Helper()
	clock := fastClock()
	reg := saga.NewRegistry()
	reg.Register(saga.NewLocalService("lh", 64, clock))
	hpcCfg.Clock = clock
	if hpcCfg.Name == "" {
		hpcCfg.Name = "hpcA"
	}
	cluster := hpc.New(hpcCfg)
	reg.Register(saga.NewHPCService(cluster, clock))
	cfg.Registry = reg
	cfg.Clock = clock
	mgr := NewManager(cfg)
	t.Cleanup(func() {
		mgr.Close()
		cluster.Shutdown()
	})
	return &testEnv{clock: clock, reg: reg, cluster: cluster, mgr: mgr}
}

func quickUnit(name string, d time.Duration) UnitDescription {
	return UnitDescription{
		Name: name,
		Run: func(ctx context.Context, tc TaskContext) error {
			if !tc.Sleep(ctx, d) {
				return ctx.Err()
			}
			return nil
		},
	}
}

func TestUnitRunsOnLocalPilot(t *testing.T) {
	env := newEnv(t, Config{}, hpc.Config{})
	p, err := env.mgr.SubmitPilot(PilotDescription{Name: "p", Resource: "local://lh", Cores: 4})
	if err != nil {
		t.Fatal(err)
	}
	u, err := env.mgr.SubmitUnit(quickUnit("u", time.Second))
	if err != nil {
		t.Fatal(err)
	}
	state, err := u.Wait(context.Background())
	if state != UnitDone || err != nil {
		t.Fatalf("state=%v err=%v", state, err)
	}
	if u.Pilot() != p {
		t.Errorf("unit bound to %v, want %v", u.Pilot(), p)
	}
	if u.Attempts() != 1 {
		t.Errorf("attempts = %d, want 1", u.Attempts())
	}
	if u.Runtime() <= 0 {
		t.Errorf("runtime = %v, want > 0", u.Runtime())
	}
}

func TestLateBindingUnitsBeforePilot(t *testing.T) {
	env := newEnv(t, Config{}, hpc.Config{Nodes: 2, CoresPerNode: 4})
	// Submit units first: the decoupling of workload and resource
	// acquisition is the essence of the pilot-abstraction.
	units, err := env.mgr.SubmitUnits([]UnitDescription{
		quickUnit("a", time.Second), quickUnit("b", time.Second), quickUnit("c", time.Second),
	})
	if err != nil {
		t.Fatal(err)
	}
	if env.mgr.QueueDepth() != 3 {
		t.Fatalf("queue depth = %d, want 3", env.mgr.QueueDepth())
	}
	if _, err := env.mgr.SubmitPilot(PilotDescription{Resource: "hpc://hpcA", Cores: 8, Walltime: time.Hour}); err != nil {
		t.Fatal(err)
	}
	for _, u := range units {
		if s, err := u.Wait(context.Background()); s != UnitDone {
			t.Fatalf("unit %s state=%v err=%v", u.ID(), s, err)
		}
	}
}

func TestWaitAll(t *testing.T) {
	env := newEnv(t, Config{}, hpc.Config{})
	env.mgr.SubmitPilot(PilotDescription{Resource: "local://lh", Cores: 8})
	for i := 0; i < 16; i++ {
		env.mgr.SubmitUnit(quickUnit(fmt.Sprint(i), 500*time.Millisecond))
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := env.mgr.WaitAll(ctx); err != nil {
		t.Fatal(err)
	}
	for _, u := range env.mgr.Units() {
		if u.State() != UnitDone {
			t.Errorf("unit %s state = %v", u.ID(), u.State())
		}
	}
}

func TestWaitAllHonorsContext(t *testing.T) {
	env := newEnv(t, Config{}, hpc.Config{})
	// No pilot: the unit can never run.
	env.mgr.SubmitUnit(quickUnit("stuck", time.Second))
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := env.mgr.WaitAll(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
}

func TestSlotAccountingNeverOversubscribes(t *testing.T) {
	env := newEnv(t, Config{}, hpc.Config{})
	env.mgr.SubmitPilot(PilotDescription{Resource: "local://lh", Cores: 4})
	var mu sync.Mutex
	running, peak := 0, 0
	for i := 0; i < 32; i++ {
		env.mgr.SubmitUnit(UnitDescription{
			Cores: 2,
			Run: func(ctx context.Context, tc TaskContext) error {
				mu.Lock()
				running += tc.Cores
				if running > peak {
					peak = running
				}
				mu.Unlock()
				tc.Sleep(ctx, 200*time.Millisecond)
				mu.Lock()
				running -= tc.Cores
				mu.Unlock()
				return nil
			},
		})
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := env.mgr.WaitAll(ctx); err != nil {
		t.Fatal(err)
	}
	if peak > 4 {
		t.Fatalf("peak cores in use = %d, exceeds pilot capacity 4", peak)
	}
}

func TestUnitTooLargeForAnyPilotStaysPending(t *testing.T) {
	env := newEnv(t, Config{}, hpc.Config{})
	env.mgr.SubmitPilot(PilotDescription{Resource: "local://lh", Cores: 2})
	u, _ := env.mgr.SubmitUnit(UnitDescription{Cores: 8, Run: func(ctx context.Context, tc TaskContext) error { return nil }})
	time.Sleep(50 * time.Millisecond)
	if s := u.State(); s != UnitPending {
		t.Fatalf("state = %v, want Pending (no pilot large enough)", s)
	}
}

func TestFailedUnit(t *testing.T) {
	env := newEnv(t, Config{}, hpc.Config{})
	env.mgr.SubmitPilot(PilotDescription{Resource: "local://lh", Cores: 2})
	boom := errors.New("boom")
	u, _ := env.mgr.SubmitUnit(UnitDescription{Run: func(context.Context, TaskContext) error { return boom }})
	state, err := u.Wait(context.Background())
	if state != UnitFailed || !errors.Is(err, boom) {
		t.Fatalf("state=%v err=%v", state, err)
	}
}

func TestCancelPendingUnit(t *testing.T) {
	env := newEnv(t, Config{}, hpc.Config{})
	u, _ := env.mgr.SubmitUnit(quickUnit("c", time.Second)) // no pilot yet
	env.mgr.CancelUnit(u)
	state, _ := u.Wait(context.Background())
	if state != UnitCanceled {
		t.Fatalf("state = %v, want Canceled", state)
	}
	if env.mgr.QueueDepth() != 0 {
		t.Fatalf("queue depth = %d, want 0", env.mgr.QueueDepth())
	}
}

func TestCancelRunningUnit(t *testing.T) {
	env := newEnv(t, Config{}, hpc.Config{})
	env.mgr.SubmitPilot(PilotDescription{Resource: "local://lh", Cores: 2})
	started := make(chan struct{})
	u, _ := env.mgr.SubmitUnit(UnitDescription{Run: func(ctx context.Context, tc TaskContext) error {
		close(started)
		<-ctx.Done()
		return ctx.Err()
	}})
	<-started
	env.mgr.CancelUnit(u)
	state, _ := u.Wait(context.Background())
	if state != UnitCanceled {
		t.Fatalf("state = %v, want Canceled", state)
	}
}

func TestPilotWalltimeRequeuesUnits(t *testing.T) {
	env := newEnv(t, Config{}, hpc.Config{Nodes: 4, CoresPerNode: 4})
	// Short-walltime pilot dies mid-unit; a second healthy pilot picks the
	// unit up again (MaxRetries=2).
	env.mgr.SubmitPilot(PilotDescription{Resource: "hpc://hpcA", Cores: 4, Walltime: 5 * time.Second})
	started := make(chan struct{})
	var attempts atomic.Int32
	u, _ := env.mgr.SubmitUnit(UnitDescription{
		MaxRetries: 2,
		Run: func(ctx context.Context, tc TaskContext) error {
			n := attempts.Add(1)
			if n == 1 {
				close(started)
				// First attempt outlives the pilot walltime.
				tc.Sleep(ctx, time.Hour)
				return ctx.Err()
			}
			return nil
		},
	})
	// The healthy pilot must not exist until the first attempt is running
	// on the doomed one — otherwise the scheduler can start the unit
	// directly on it, no walltime kill happens, and the unit completes in
	// one attempt (seen under -race load).
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Skip("first attempt never started inside the short walltime (overloaded host)")
	}
	env.mgr.SubmitPilot(PilotDescription{Resource: "local://lh", Cores: 4})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	state, err := u.Wait(ctx)
	if state != UnitDone {
		t.Fatalf("state=%v err=%v, want Done after retry", state, err)
	}
	if got := attempts.Load(); got < 2 {
		t.Fatalf("attempts = %d, want >= 2", got)
	}
}

func TestPilotWalltimeFailsUnitWithoutRetries(t *testing.T) {
	env := newEnv(t, Config{}, hpc.Config{Nodes: 4, CoresPerNode: 4})
	env.mgr.SubmitPilot(PilotDescription{Resource: "hpc://hpcA", Cores: 4, Walltime: 2 * time.Second})
	u, _ := env.mgr.SubmitUnit(UnitDescription{
		Run: func(ctx context.Context, tc TaskContext) error {
			tc.Sleep(ctx, time.Hour)
			return ctx.Err()
		},
	})
	state, err := u.Wait(context.Background())
	if state != UnitFailed {
		t.Fatalf("state=%v err=%v, want Failed (no retries)", state, err)
	}
}

func TestMultiplePilotsShareQueue(t *testing.T) {
	env := newEnv(t, Config{}, hpc.Config{Nodes: 4, CoresPerNode: 4})
	p1, _ := env.mgr.SubmitPilot(PilotDescription{Resource: "local://lh", Cores: 4})
	p2, _ := env.mgr.SubmitPilot(PilotDescription{Resource: "hpc://hpcA", Cores: 4, Walltime: time.Hour})
	for i := 0; i < 24; i++ {
		env.mgr.SubmitUnit(quickUnit(fmt.Sprint(i), 500*time.Millisecond))
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := env.mgr.WaitAll(ctx); err != nil {
		t.Fatal(err)
	}
	if p1.UnitsCompleted() == 0 || p2.UnitsCompleted() == 0 {
		t.Errorf("units not spread: p1=%d p2=%d", p1.UnitsCompleted(), p2.UnitsCompleted())
	}
	if p1.UnitsCompleted()+p2.UnitsCompleted() != 24 {
		t.Errorf("total = %d, want 24", p1.UnitsCompleted()+p2.UnitsCompleted())
	}
}

func TestPilotStartupTimeMeasured(t *testing.T) {
	env := newEnv(t, Config{}, hpc.Config{Nodes: 1, CoresPerNode: 4, QueueWait: dist.Constant(10)})
	p, _ := env.mgr.SubmitPilot(PilotDescription{Resource: "hpc://hpcA", Cores: 4, Walltime: time.Hour})
	u, _ := env.mgr.SubmitUnit(quickUnit("x", 0))
	u.Wait(context.Background())
	if st := p.StartupTime(); st < 8*time.Second {
		t.Errorf("startup = %v, want ≈10s (queue wait)", st)
	}
}

func TestUnitStateStrings(t *testing.T) {
	want := map[UnitState]string{
		UnitNew: "New", UnitPending: "Pending", UnitScheduled: "Scheduled",
		UnitStaging: "Staging", UnitRunning: "Running", UnitDone: "Done",
		UnitFailed: "Failed", UnitCanceled: "Canceled",
	}
	for s, w := range want {
		if s.String() != w {
			t.Errorf("%d.String() = %q, want %q", int(s), s.String(), w)
		}
	}
	if !UnitDone.Terminal() || UnitRunning.Terminal() {
		t.Error("Terminal() wrong")
	}
	wantP := map[PilotState]string{
		PilotPending: "Pending", PilotRunning: "Running", PilotDone: "Done",
		PilotFailed: "Failed", PilotCanceled: "Canceled",
	}
	for s, w := range wantP {
		if s.String() != w {
			t.Errorf("pilot %d.String() = %q, want %q", int(s), s.String(), w)
		}
	}
}

func TestSubmitAfterClose(t *testing.T) {
	env := newEnv(t, Config{}, hpc.Config{})
	env.mgr.Close()
	if _, err := env.mgr.SubmitUnit(quickUnit("x", 0)); !errors.Is(err, ErrManagerClosed) {
		t.Fatalf("err = %v, want ErrManagerClosed", err)
	}
	if _, err := env.mgr.SubmitPilot(PilotDescription{Resource: "local://lh", Cores: 1}); !errors.Is(err, ErrManagerClosed) {
		t.Fatalf("err = %v, want ErrManagerClosed", err)
	}
}

func TestCloseCancelsPendingUnits(t *testing.T) {
	env := newEnv(t, Config{}, hpc.Config{})
	u, _ := env.mgr.SubmitUnit(quickUnit("x", time.Second)) // no pilot
	env.mgr.Close()
	if s := u.State(); s != UnitCanceled {
		t.Fatalf("state = %v, want Canceled after Close", s)
	}
}

func TestUnknownResourceRejected(t *testing.T) {
	env := newEnv(t, Config{}, hpc.Config{})
	if _, err := env.mgr.SubmitPilot(PilotDescription{Resource: "hpc://nowhere", Cores: 1}); err == nil {
		t.Fatal("unknown resource accepted")
	}
}

func TestNilRunRejected(t *testing.T) {
	env := newEnv(t, Config{}, hpc.Config{})
	if _, err := env.mgr.SubmitUnit(UnitDescription{}); err == nil {
		t.Fatal("nil Run accepted")
	}
}

func TestOnUnitChangeObservesLifecycle(t *testing.T) {
	var mu sync.Mutex
	seen := map[UnitState]bool{}
	env := newEnv(t, Config{OnUnitChange: func(_ *ComputeUnit, s UnitState) {
		mu.Lock()
		seen[s] = true
		mu.Unlock()
	}}, hpc.Config{})
	env.mgr.SubmitPilot(PilotDescription{Resource: "local://lh", Cores: 2})
	u, _ := env.mgr.SubmitUnit(quickUnit("x", 100*time.Millisecond))
	u.Wait(context.Background())
	mu.Lock()
	defer mu.Unlock()
	for _, s := range []UnitState{UnitPending, UnitScheduled, UnitRunning, UnitDone} {
		if !seen[s] {
			t.Errorf("state %v not observed", s)
		}
	}
}

func TestUnitMetricsSummaries(t *testing.T) {
	env := newEnv(t, Config{}, hpc.Config{})
	env.mgr.SubmitPilot(PilotDescription{Resource: "local://lh", Cores: 8})
	for i := 0; i < 8; i++ {
		env.mgr.SubmitUnit(quickUnit(fmt.Sprint(i), time.Second))
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	env.mgr.WaitAll(ctx)
	w, r, tt := env.mgr.UnitMetrics()
	if w.N != 8 || r.N != 8 || tt.N != 8 {
		t.Fatalf("sample sizes = %d/%d/%d, want 8", w.N, r.N, tt.N)
	}
	if r.Mean < 0.5 {
		t.Errorf("mean runtime = %gs, want ≈1s", r.Mean)
	}
	if tt.Mean < r.Mean {
		t.Errorf("turnaround %g < runtime %g", tt.Mean, r.Mean)
	}
}

func TestGracefulShutdownEndsPilotDone(t *testing.T) {
	env := newEnv(t, Config{}, hpc.Config{})
	p, _ := env.mgr.SubmitPilot(PilotDescription{Resource: "local://lh", Cores: 2})
	u, _ := env.mgr.SubmitUnit(quickUnit("x", 200*time.Millisecond))
	u.Wait(context.Background())
	p.Shutdown()
	state, err := p.Wait(context.Background())
	if state != PilotDone || err != nil {
		t.Fatalf("state=%v err=%v, want Done", state, err)
	}
}
