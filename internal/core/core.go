package core
