package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"gopilot/internal/infra"
)

// PilotState is the pilot lifecycle of the P* model.
type PilotState int

// Pilot states: a pilot is Pending while its placeholder job sits in the
// backend's queue, Running once the agent has started on the allocation,
// and terminal afterwards.
const (
	PilotPending PilotState = iota
	PilotRunning
	PilotDone
	PilotFailed
	PilotCanceled
)

// String implements fmt.Stringer.
func (s PilotState) String() string {
	switch s {
	case PilotPending:
		return "Pending"
	case PilotRunning:
		return "Running"
	case PilotDone:
		return "Done"
	case PilotFailed:
		return "Failed"
	case PilotCanceled:
		return "Canceled"
	default:
		return fmt.Sprintf("PilotState(%d)", int(s))
	}
}

// Terminal reports whether the state is final.
func (s PilotState) Terminal() bool {
	return s == PilotDone || s == PilotFailed || s == PilotCanceled
}

// PilotDescription describes the placeholder job to submit (the P* pilot
// description).
type PilotDescription struct {
	// Name labels the pilot.
	Name string
	// Resource is the saga registry URL of the target infrastructure,
	// e.g. "hpc://stampede" or "cloud://ec2".
	Resource string
	// Cores is the size of the placeholder.
	Cores int
	// Walltime bounds the pilot's lifetime on the resource.
	Walltime time.Duration
	// Attributes carries backend-specific hints (queue, vm_type, ...).
	Attributes map[string]string
}

// Pilot is a handle to a submitted pilot.
type Pilot struct {
	id      string
	desc    PilotDescription
	manager *Manager

	mu        sync.Mutex
	state     PilotState
	site      infra.Site
	alloc     infra.Allocation
	freeCores int
	running   map[*ComputeUnit]struct{}
	unitsDone int
	err       error
	submitted time.Time
	started   time.Time
	ended     time.Time

	work     chan *ComputeUnit
	stopOnce sync.Once
	stopCh   chan struct{}
	done     chan struct{}
}

// ID returns the manager-assigned pilot id.
func (p *Pilot) ID() string { return p.id }

// Description returns the pilot description.
func (p *Pilot) Description() PilotDescription { return p.desc }

// State returns the current state.
func (p *Pilot) State() PilotState {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.state
}

// Err returns the terminal error, if any.
func (p *Pilot) Err() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.err
}

// Site returns the site of the granted allocation (set once Running).
func (p *Pilot) Site() infra.Site {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.site
}

// TotalCores returns the pilot's configured capacity.
func (p *Pilot) TotalCores() int { return p.desc.Cores }

// FreeCores returns the currently unreserved capacity.
func (p *Pilot) FreeCores() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.freeCores
}

// RunningUnits returns the number of units currently executing.
func (p *Pilot) RunningUnits() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.running)
}

// UnitsCompleted returns the number of units this pilot has finished.
func (p *Pilot) UnitsCompleted() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.unitsDone
}

// Done returns a channel closed when the pilot reaches a terminal state.
func (p *Pilot) Done() <-chan struct{} { return p.done }

// Wait blocks until the pilot terminates or ctx is canceled.
func (p *Pilot) Wait(ctx context.Context) (PilotState, error) {
	select {
	case <-p.done:
		return p.State(), p.Err()
	case <-ctx.Done():
		return p.State(), ctx.Err()
	}
}

// StartupTime returns submission → agent start (the pilot startup overhead
// measured by experiment E2); zero until Running.
func (p *Pilot) StartupTime() time.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.started.IsZero() {
		return 0
	}
	return p.started.Sub(p.submitted)
}

// Cancel asks the manager to cancel the pilot; running units are requeued
// or failed according to their retry budget.
func (p *Pilot) Cancel() { p.manager.cancelPilot(p) }

// Shutdown stops the agent gracefully once its queue channel drains; like
// Cancel, but intended for normal teardown (pilot ends in Done).
func (p *Pilot) Shutdown() {
	p.stopOnce.Do(func() { close(p.stopCh) })
}

// agentRun is the pilot agent: the payload of the placeholder job. It
// registers the allocation with the manager, then executes dispatched
// units until the pilot is stopped, canceled or hits walltime.
func (p *Pilot) agentRun(ctx context.Context, alloc infra.Allocation) error {
	p.manager.pilotStarted(p, alloc)
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		select {
		case cu := <-p.work:
			wg.Add(1)
			go func() {
				defer wg.Done()
				p.manager.executeUnit(ctx, p, cu)
			}()
		case <-p.stopCh:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}
