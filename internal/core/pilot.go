package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"gopilot/internal/dist"
	"gopilot/internal/infra"
	"gopilot/internal/saga"
	"gopilot/internal/vclock"
)

// PilotState is the pilot lifecycle of the P* model.
type PilotState int

// Pilot states: a pilot is Pending while its placeholder job sits in the
// backend's queue, Running once the agent has started on the allocation,
// and terminal afterwards.
const (
	PilotPending PilotState = iota
	PilotRunning
	PilotDone
	PilotFailed
	PilotCanceled
)

// String implements fmt.Stringer.
func (s PilotState) String() string {
	switch s {
	case PilotPending:
		return "Pending"
	case PilotRunning:
		return "Running"
	case PilotDone:
		return "Done"
	case PilotFailed:
		return "Failed"
	case PilotCanceled:
		return "Canceled"
	default:
		return fmt.Sprintf("PilotState(%d)", int(s))
	}
}

// Terminal reports whether the state is final.
func (s PilotState) Terminal() bool {
	return s == PilotDone || s == PilotFailed || s == PilotCanceled
}

// PilotDescription describes the placeholder job to submit (the P* pilot
// description).
type PilotDescription struct {
	// Name labels the pilot.
	Name string
	// Resource is the saga registry URL of the target infrastructure,
	// e.g. "hpc://stampede" or "cloud://ec2".
	Resource string
	// Cores is the size of the placeholder.
	Cores int
	// Walltime bounds the pilot's lifetime on the resource.
	Walltime time.Duration
	// Attributes carries backend-specific hints (queue, vm_type, ...).
	Attributes map[string]string
	// UnitPickupDelay models the agent's poll interval: the modeled time
	// between a unit arriving in the agent's work queue and the agent
	// picking it up for execution. Zero (the default) preserves immediate
	// pickup. A non-zero delay means a pilot that dies at the wrong moment
	// strands queued units, exercising the FailurePreStart retry path that
	// instantaneous pickup makes unreachable.
	UnitPickupDelay time.Duration
}

// Pilot is a handle to a submitted pilot.
type Pilot struct {
	id      string
	desc    PilotDescription
	manager *Manager
	stream  *dist.Stream  // "pilot"/<ordinal> child of the manager's stream
	faults  *infra.Faults // backend fault switchboard (immutable after submit; may be nil)

	mu        sync.Mutex
	state     PilotState
	job       saga.Job // the placeholder job handle (set after submission)
	site      infra.Site
	alloc     infra.Allocation
	freeCores int
	running   map[*ComputeUnit]struct{}
	unitsDone int
	err       error
	submitted time.Time
	startedAt time.Time
	ended     time.Time
	workQ     []*ComputeUnit

	workN   *vclock.Notifier
	stop    *vclock.Event
	started *vclock.Event
	done    *vclock.Event
}

// ID returns the manager-assigned pilot id.
func (p *Pilot) ID() string { return p.id }

// Description returns the pilot description.
func (p *Pilot) Description() PilotDescription { return p.desc }

// Stream returns the pilot's randomness identity on the seeding spine:
// the "pilot"/<ordinal> child of the manager's stream, fixed at
// submission. Agent-side draws (placement jitter, sampling inside
// pilot-level services) must come from here so that submitting an
// additional pilot never shifts an existing pilot's sequence.
func (p *Pilot) Stream() *dist.Stream { return p.stream }

// State returns the current state.
func (p *Pilot) State() PilotState {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.state
}

// Err returns the terminal error, if any.
func (p *Pilot) Err() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.err
}

// Site returns the site of the granted allocation (set once Running).
func (p *Pilot) Site() infra.Site {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.site
}

// TotalCores returns the pilot's configured capacity.
func (p *Pilot) TotalCores() int { return p.desc.Cores }

// FreeCores returns the currently unreserved capacity.
func (p *Pilot) FreeCores() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.freeCores
}

// RunningUnits returns the number of units currently executing.
func (p *Pilot) RunningUnits() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.running)
}

// QueuedUnits returns the number of units sitting in the agent's work
// queue, dispatched but not yet picked up.
func (p *Pilot) QueuedUnits() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.workQ)
}

// UnitsCompleted returns the number of units this pilot has finished.
func (p *Pilot) UnitsCompleted() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.unitsDone
}

// Done returns a channel closed when the pilot reaches a terminal state.
// Participants of a Virtual clock must use Wait instead.
func (p *Pilot) Done() <-chan struct{} { return p.done.Done() }

// Wait blocks until the pilot terminates or ctx is canceled.
func (p *Pilot) Wait(ctx context.Context) (PilotState, error) {
	if p.done.Wait(ctx) {
		return p.State(), p.Err()
	}
	return p.State(), ctx.Err()
}

// WaitRunning blocks until the pilot's agent has started (now or in the
// past) or the pilot terminated without ever running, or ctx is canceled.
func (p *Pilot) WaitRunning(ctx context.Context) error {
	if !p.started.Wait(ctx) {
		return ctx.Err()
	}
	p.mu.Lock()
	ran := !p.startedAt.IsZero()
	state, err := p.state, p.err
	p.mu.Unlock()
	if ran {
		return nil
	}
	if err != nil {
		return fmt.Errorf("core: pilot %s %v before start: %w", p.id, state, err)
	}
	return fmt.Errorf("core: pilot %s %v before start", p.id, state)
}

// StartupTime returns submission → agent start (the pilot startup overhead
// measured by experiment E2); zero until Running.
func (p *Pilot) StartupTime() time.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.startedAt.IsZero() {
		return 0
	}
	return p.startedAt.Sub(p.submitted)
}

// Cancel asks the manager to cancel the pilot; running units are requeued
// or failed according to their retry budget.
func (p *Pilot) Cancel() { p.manager.cancelPilot(p) }

// Shutdown stops the agent; like Cancel, but intended for normal teardown
// (pilot ends in Done).
func (p *Pilot) Shutdown() {
	p.stop.Fire()
	p.workN.Set()
}

// Kill hard-crashes the pilot by canceling its placeholder job at the
// backend. Unlike Shutdown's graceful drain, the agent loses its context
// mid-flight: running units fail with FailureExecution and units still in
// the work queue are stranded until drainWork routes them through
// FailurePreStart — both charged against their retry budgets. This is the
// chaos engine's pilot-crash fault.
func (p *Pilot) Kill() {
	p.mu.Lock()
	job := p.job
	p.mu.Unlock()
	if job != nil {
		job.Cancel()
	}
}

// pushWork queues a unit for the agent (called by the dispatcher; the
// unit's cores are already reserved, so the queue never overfills).
func (p *Pilot) pushWork(cu *ComputeUnit) {
	p.mu.Lock()
	p.workQ = append(p.workQ, cu)
	p.mu.Unlock()
	p.workN.Set()
}

// hasWork reports whether the work queue is non-empty.
func (p *Pilot) hasWork() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.workQ) > 0
}

// popWork dequeues the next unit, or nil.
func (p *Pilot) popWork() *ComputeUnit {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.workQ) == 0 {
		return nil
	}
	cu := p.workQ[0]
	p.workQ = p.workQ[1:]
	return cu
}

// drainWork empties the work queue (agent gone; the manager requeues).
func (p *Pilot) drainWork() []*ComputeUnit {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := p.workQ
	p.workQ = nil
	return out
}

// agentRun is the pilot agent: the payload of the placeholder job. It
// registers the allocation with the manager, then executes dispatched
// units until the pilot is stopped, canceled or hits walltime.
func (p *Pilot) agentRun(ctx context.Context, alloc infra.Allocation) error {
	p.manager.pilotStarted(p, alloc)
	clock := p.manager.cfg.Clock
	wg := vclock.NewGroup(clock)
	defer wg.Wait()
	for {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if p.stop.Fired() {
			return nil
		}
		if p.hasWork() {
			// The pickup delay runs while the unit still sits in the work
			// queue, so an agent death during it strands the unit on the
			// FailurePreStart path rather than the mid-execution one.
			if d := p.desc.UnitPickupDelay; d > 0 {
				if !clock.Sleep(ctx, d) {
					return ctx.Err()
				}
				if p.stop.Fired() {
					return nil
				}
			}
			if cu := p.popWork(); cu != nil {
				cu := cu
				wg.Add(1)
				vclock.Go(clock, func() {
					defer wg.Done()
					p.manager.executeUnit(ctx, p, cu)
				})
			}
			continue
		}
		if !p.workN.Wait(ctx) {
			return ctx.Err()
		}
	}
}
