package core_test

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gopilot/internal/core"
	"gopilot/internal/dist"
	"gopilot/internal/infra"
	"gopilot/internal/saga"
	"gopilot/internal/vclock"
)

// These tests pin the control plane's retry contract: MaxRetries bounds
// TOTAL dispatches at MaxRetries+1, pre-start strandings consume the same
// budget as mid-execution pilot losses, and every retry re-enters the
// queue at a strictly later virtual instant (no zero-delay storms).

// deadService is a saga backend whose pilots come up and immediately die
// on the resource: the payload runs with an already-canceled context, so
// the agent registers with the manager (the pilot looks Running) and then
// exits before picking up any work. The job itself stays Running until
// the test releases it, which models the window in which a dying pilot
// still attracts dispatches. Units scheduled onto such a pilot are
// stranded in its work queue — the pre-start failure class.
type deadService struct {
	clock vclock.Clock

	mu   sync.Mutex
	next int
	jobs []*deadJob
}

func (s *deadService) URL() string      { return "dead://pool" }
func (s *deadService) Site() infra.Site { return "dead" }
func (s *deadService) TotalCores() int  { return 0 }
func (s *deadService) Close() error     { return nil }

func (s *deadService) Submit(d saga.Description) (saga.Job, error) {
	now := s.clock.Now()
	s.mu.Lock()
	s.next++
	j := &deadJob{
		id:        fmt.Sprintf("dead.%d", s.next),
		state:     saga.Running,
		submitted: now,
		started:   now,
		release:   vclock.NewEvent(s.clock),
		done:      vclock.NewEvent(s.clock),
	}
	s.jobs = append(s.jobs, j)
	s.mu.Unlock()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	vclock.Go(s.clock, func() {
		_ = d.Payload(ctx, infra.Allocation{
			ID: j.id, Site: s.Site(), Cores: d.TotalCores, Nodes: []string{"dead"}, Granted: now,
		})
		j.release.Wait(context.Background())
		j.mu.Lock()
		j.state = saga.Failed
		j.err = errors.New("dead: resource reclaimed")
		j.ended = s.clock.Now()
		j.mu.Unlock()
		j.done.Fire()
	})
	return j, nil
}

// failPilot releases the i-th submitted job, letting it reach Failed.
func (s *deadService) failPilot(i int) {
	s.mu.Lock()
	j := s.jobs[i]
	s.mu.Unlock()
	j.release.Fire()
}

// releaseAll unblocks every job (cleanup path, so Close never hangs on a
// failed test).
func (s *deadService) releaseAll() {
	s.mu.Lock()
	jobs := append([]*deadJob(nil), s.jobs...)
	s.mu.Unlock()
	for _, j := range jobs {
		j.release.Fire()
	}
}

type deadJob struct {
	id string

	mu        sync.Mutex
	state     saga.JobState
	err       error
	submitted time.Time
	started   time.Time
	ended     time.Time

	release *vclock.Event
	done    *vclock.Event
}

func (j *deadJob) ID() string { return j.id }

func (j *deadJob) State() saga.JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

func (j *deadJob) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

func (j *deadJob) Done() <-chan struct{} { return j.done.Done() }

func (j *deadJob) Wait(ctx context.Context) (saga.JobState, error) {
	if j.done.Wait(ctx) {
		return j.State(), j.Err()
	}
	return j.State(), ctx.Err()
}

func (j *deadJob) Cancel() {}

func (j *deadJob) SubmitTime() time.Time { return j.submitted }
func (j *deadJob) StartTime() time.Time  { return j.started }

func (j *deadJob) EndTime() time.Time {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.ended
}

// waitUnitState polls (in real time, against a scaled clock) until the
// unit reaches the wanted state.
func waitUnitState(t *testing.T, u *core.ComputeUnit, want core.UnitState, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if u.State() == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("unit %s stuck in %v, want %v", u.ID(), u.State(), want)
}

// TestPreStartStrandsChargeRetryBudget is the stranded-unit budget
// regression: a pilot that dies before the unit is ever picked up must
// consume a retry, so a unit with MaxRetries=1 fails after its second
// stranding instead of being requeued forever. (Before the planner,
// pre-start requeues were free: this test never terminated.)
func TestPreStartStrandsChargeRetryBudget(t *testing.T) {
	clock := vclock.NewScaled(2000)
	reg := saga.NewRegistry()
	svc := &deadService{clock: clock}
	reg.Register(svc)
	mgr := core.NewManager(core.Config{Registry: reg, Clock: clock, Stream: dist.NewStream(42)})
	defer mgr.Close()
	defer svc.releaseAll()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	var runs atomic.Int32
	u, err := mgr.SubmitUnit(core.UnitDescription{
		Name: "victim", MaxRetries: 1,
		Run: func(context.Context, core.TaskContext) error {
			runs.Add(1)
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	for round := 0; round < 2; round++ {
		p, err := mgr.SubmitPilot(core.PilotDescription{
			Name: fmt.Sprintf("doomed-%d", round), Resource: "dead://pool", Cores: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := p.WaitRunning(ctx); err != nil {
			t.Fatal(err)
		}
		// The unit binds to the (already dead) pilot…
		waitUnitState(t, u, core.UnitScheduled, 10*time.Second)
		// …and is stranded when the placeholder job fails.
		svc.failPilot(round)
		if s, _ := p.Wait(ctx); s != core.PilotFailed {
			t.Fatalf("round %d: pilot ended %v, want Failed", round, s)
		}
	}

	s, werr := u.Wait(ctx)
	if s != core.UnitFailed {
		t.Fatalf("unit ended %v (err %v), want Failed after two strandings with MaxRetries=1", s, werr)
	}
	if got := u.Attempts(); got != 0 {
		t.Errorf("unit reports %d execution attempts, want 0 (never picked up)", got)
	}
	if got := runs.Load(); got != 0 {
		t.Errorf("unit body ran %d times on dead pilots, want 0", got)
	}
}

// TestMaxRetriesBoundsTotalAttempts pins the MaxRetries contract: N
// means N+1 total dispatches, exactly — MaxRetries=0 is one attempt,
// MaxRetries=2 is three. Each attempt lands on a fresh short-walltime
// pilot that dies under the (hour-long) unit.
func TestMaxRetriesBoundsTotalAttempts(t *testing.T) {
	for _, tc := range []struct {
		name         string
		maxRetries   int
		wantAttempts int
	}{
		{"zero-retries-one-attempt", 0, 1},
		{"two-retries-three-attempts", 2, 3},
	} {
		t.Run(tc.name, func(t *testing.T) {
			clock := vclock.NewScaled(4000)
			reg := saga.NewRegistry()
			reg.Register(saga.NewLocalService("box", 8, clock))
			mgr := core.NewManager(core.Config{Registry: reg, Clock: clock, Stream: dist.NewStream(11)})
			defer mgr.Close()
			ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
			defer cancel()

			var runs atomic.Int32
			u, err := mgr.SubmitUnit(core.UnitDescription{
				Name: "hog", Cores: 4, MaxRetries: tc.maxRetries,
				Run: func(ctx context.Context, tcx core.TaskContext) error {
					runs.Add(1)
					tcx.Sleep(ctx, time.Hour)
					return ctx.Err()
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			// One doomed pilot per possible attempt (plus one spare for the
			// window between pilot death and the unit's verdict): if the
			// budget worked, the extras go unused.
			for i := 0; i < tc.wantAttempts+2 && !u.State().Terminal(); i++ {
				p, err := mgr.SubmitPilot(core.PilotDescription{
					Name: fmt.Sprintf("short-%d", i), Resource: "local://box",
					Cores: 4, Walltime: 40 * time.Second,
				})
				if err != nil {
					t.Fatal(err)
				}
				if _, err := p.Wait(ctx); err != nil && ctx.Err() != nil {
					t.Fatal(err)
				}
			}
			s, werr := u.Wait(ctx)
			if s != core.UnitFailed {
				t.Fatalf("unit ended %v (err %v), want Failed", s, werr)
			}
			if got := u.Attempts(); got != tc.wantAttempts {
				t.Errorf("Attempts() = %d, want exactly %d", got, tc.wantAttempts)
			}
			if got := int(runs.Load()); got != tc.wantAttempts {
				t.Errorf("unit body ran %d times, want exactly %d", got, tc.wantAttempts)
			}
		})
	}
}

// TestRetryInstantsStrictlyIncreaseDeterministically is the zero-delay
// retry-storm regression: every retry must be re-dispatched at a virtual
// instant strictly after the failure that caused it (backoff), the
// sequence of dispatch instants must be strictly increasing, and the
// whole observable timeline must be bit-identical across five same-seed
// runs (the jitter is seeded, not ambient). Run under -race by the CI
// race leg.
func TestRetryInstantsStrictlyIncreaseDeterministically(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	type ev struct {
		State core.UnitState
		At    time.Duration
	}
	run := func() []ev {
		clock := vclock.NewVirtual(vclock.Epoch)
		clock.Adopt()
		defer clock.Leave()
		reg := saga.NewRegistry()
		reg.Register(saga.NewLocalService("box", 64, clock))
		var mu sync.Mutex
		var events []ev
		mgr := core.NewManager(core.Config{
			Registry: reg, Clock: clock, Stream: dist.NewStream(42),
			OnUnitChange: func(_ *core.ComputeUnit, s core.UnitState) {
				mu.Lock()
				events = append(events, ev{State: s, At: clock.Since(vclock.Epoch)})
				mu.Unlock()
			},
		})
		// Three staggered-walltime pilots: the unit's three attempts ride
		// pilot 1 (dies at 30s), pilot 2 (60s), pilot 3 (90s).
		for i, w := range []time.Duration{30 * time.Second, 60 * time.Second, 90 * time.Second} {
			if _, err := mgr.SubmitPilot(core.PilotDescription{
				Name: fmt.Sprintf("p%d", i), Resource: "local://box", Cores: 8, Walltime: w,
			}); err != nil {
				t.Fatal(err)
			}
		}
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		u, err := mgr.SubmitUnit(core.UnitDescription{
			Name: "hog", Cores: 8, MaxRetries: 2,
			Run: func(ctx context.Context, tcx core.TaskContext) error {
				tcx.Sleep(ctx, time.Hour)
				return ctx.Err()
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if s, werr := u.Wait(ctx); s != core.UnitFailed {
			t.Fatalf("unit ended %v (err %v), want Failed", s, werr)
		}
		mgr.Close()
		mu.Lock()
		defer mu.Unlock()
		return append([]ev(nil), events...)
	}

	base := run()
	var sched, pend []time.Duration
	for _, e := range base {
		switch e.State {
		case core.UnitScheduled:
			sched = append(sched, e.At)
		case core.UnitPending:
			pend = append(pend, e.At)
		}
	}
	if len(sched) != 3 || len(pend) != 3 {
		t.Fatalf("want 3 dispatches and 3 pending transitions (submit + 2 requeues), got %v", base)
	}
	for i := 1; i < len(sched); i++ {
		if sched[i] <= sched[i-1] {
			t.Fatalf("dispatch instants not strictly increasing: %v", sched)
		}
	}
	// pend[0] is the submission; pend[1], pend[2] are the requeues. Each
	// retry must wait out a backoff, never re-bind at the failure instant.
	for i := 1; i <= 2; i++ {
		if sched[i] <= pend[i] {
			t.Fatalf("retry %d re-dispatched at %v, not after its failure at %v (zero-delay storm)",
				i, sched[i], pend[i])
		}
	}
	for i := 2; i <= 5; i++ {
		if got := run(); !reflect.DeepEqual(base, got) {
			t.Fatalf("run %d diverged from run 1:\n base %v\n got  %v", i, base, got)
		}
	}
}
