package core

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"gopilot/internal/dist"
	"gopilot/internal/infra"
	"gopilot/internal/metrics"
	"gopilot/internal/saga"
	"gopilot/internal/vclock"
)

// Scheduler decides which pilot a pending unit binds to. Candidates are
// running pilots with enough free cores; returning nil defers the unit.
// Implementations live in package scheduler; the manager defaults to
// first-fit FIFO.
type Scheduler interface {
	// Name identifies the policy in experiment reports.
	Name() string
	// SelectPilot picks a pilot for the unit from candidates (never empty).
	SelectPilot(cu *ComputeUnit, candidates []*Pilot, data DataService) *Pilot
}

// firstFit is the default scheduler: bind to the first candidate, which —
// given submit-order iteration — yields FIFO with opportunistic backfill.
type firstFit struct{}

func (firstFit) Name() string { return "first-fit" }

func (firstFit) SelectPilot(cu *ComputeUnit, candidates []*Pilot, _ DataService) *Pilot {
	return candidates[0]
}

// Config configures a Manager.
type Config struct {
	// Registry resolves pilot resource URLs to saga services.
	Registry *saga.Registry
	// Clock supplies virtual time; defaults to vclock.Real.
	Clock vclock.Clock
	// Scheduler is the late-binding policy; defaults to first-fit FIFO.
	Scheduler Scheduler
	// Data is the Pilot-Data service; nil disables data staging.
	Data DataService
	// Stream is the manager's slot on the experiment's seeding spine.
	// Every pilot and unit receives a labeled child ("pilot"/<ordinal>,
	// "unit"/<ordinal>) derived from it, so draws made by one component
	// never shift another's — and a unit keeps the same stream across
	// retries and regardless of which pilot it lands on. Defaults to
	// dist.Unseeded("manager"); experiments should pass a named child of
	// their own root instead.
	Stream *dist.Stream
	// OnUnitChange, if set, observes every unit state transition
	// (instrumentation hook used by the Mini-App framework).
	OnUnitChange func(cu *ComputeUnit, state UnitState)
}

// Manager is the Pilot-Manager of the P* model: it owns pilots, the shared
// unit queue, and the late-binding dispatch cycle. It corresponds to the
// Pilot-API's PilotComputeService/ComputeDataService pair.
type Manager struct {
	cfg Config

	pilotRoot *dist.Stream // parent of per-pilot streams ("pilot"/<ordinal>)
	unitRoot  *dist.Stream // parent of per-unit streams ("unit"/<ordinal>)

	mu          sync.Mutex
	pilots      []*Pilot
	pending     []*ComputeUnit
	units       []*ComputeUnit
	nextPilotID int
	nextUnitID  int
	activeUnits int
	idle        *vclock.Event
	closed      bool

	kick *vclock.Notifier
	ctx  context.Context
	stop context.CancelFunc
	wg   *vclock.Group
}

// ErrManagerClosed is returned by submissions after Close.
var ErrManagerClosed = errors.New("core: manager closed")

// NewManager creates a Manager and starts its dispatch loop.
func NewManager(cfg Config) *Manager {
	if cfg.Registry == nil {
		cfg.Registry = saga.NewRegistry()
	}
	if cfg.Clock == nil {
		cfg.Clock = vclock.NewReal()
	}
	if cfg.Scheduler == nil {
		cfg.Scheduler = firstFit{}
	}
	if cfg.Stream == nil {
		cfg.Stream = dist.Unseeded("manager")
	}
	m := &Manager{
		cfg:       cfg,
		pilotRoot: cfg.Stream.Named("pilot"),
		unitRoot:  cfg.Stream.Named("unit"),
		idle:      vclock.NewEvent(cfg.Clock),
		kick:      vclock.NewNotifier(cfg.Clock),
		wg:        vclock.NewGroup(cfg.Clock),
	}
	m.idle.Fire() // no active units yet: idle
	m.ctx, m.stop = context.WithCancel(context.Background())
	m.wg.Add(1)
	vclock.Go(cfg.Clock, m.dispatchLoop)
	return m
}

// Clock returns the manager's clock (tasks and frameworks share it).
func (m *Manager) Clock() vclock.Clock { return m.cfg.Clock }

// Data returns the configured data service (may be nil).
func (m *Manager) Data() DataService { return m.cfg.Data }

// Registry returns the saga registry.
func (m *Manager) Registry() *saga.Registry { return m.cfg.Registry }

// SchedulerName returns the active scheduling policy's name.
func (m *Manager) SchedulerName() string { return m.cfg.Scheduler.Name() }

// Stream returns the manager's randomness root on the seeding spine.
// Frameworks running on the manager (apps, processors) derive their own
// labeled children from it when not handed a stream explicitly.
func (m *Manager) Stream() *dist.Stream { return m.cfg.Stream }

// SubmitPilot submits a placeholder job to the resource named in the
// description and returns immediately with a Pending pilot.
func (m *Manager) SubmitPilot(d PilotDescription) (*Pilot, error) {
	if d.Cores <= 0 {
		d.Cores = 1
	}
	svc, err := m.cfg.Registry.Lookup(d.Resource)
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, ErrManagerClosed
	}
	m.nextPilotID++
	p := &Pilot{
		id:        fmt.Sprintf("pilot-%d", m.nextPilotID),
		desc:      d,
		manager:   m,
		stream:    m.pilotRoot.SplitLabel(uint64(m.nextPilotID)),
		state:     PilotPending,
		running:   make(map[*ComputeUnit]struct{}),
		submitted: m.cfg.Clock.Now(),
		workN:     vclock.NewNotifier(m.cfg.Clock),
		stop:      vclock.NewEvent(m.cfg.Clock),
		started:   vclock.NewEvent(m.cfg.Clock),
		done:      vclock.NewEvent(m.cfg.Clock),
	}
	m.pilots = append(m.pilots, p)
	m.mu.Unlock()

	job, err := svc.Submit(saga.Description{
		Name:       d.Name,
		TotalCores: d.Cores,
		Walltime:   d.Walltime,
		Payload:    p.agentRun,
		Attributes: d.Attributes,
	})
	if err != nil {
		m.mu.Lock()
		for i, q := range m.pilots {
			if q == p {
				m.pilots = append(m.pilots[:i], m.pilots[i+1:]...)
				break
			}
		}
		m.mu.Unlock()
		return nil, fmt.Errorf("core: pilot submission to %s failed: %w", d.Resource, err)
	}
	m.wg.Add(1)
	vclock.Go(m.cfg.Clock, func() {
		defer m.wg.Done()
		job.Wait(context.Background())
		m.pilotEnded(p, job)
	})
	return p, nil
}

// SubmitUnit adds a unit to the shared queue for late binding.
func (m *Manager) SubmitUnit(d UnitDescription) (*ComputeUnit, error) {
	if d.Run == nil {
		return nil, errors.New("core: unit description has nil Run")
	}
	if d.Cores <= 0 {
		d.Cores = 1
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, ErrManagerClosed
	}
	m.nextUnitID++
	u := &ComputeUnit{
		id:        fmt.Sprintf("unit-%d", m.nextUnitID),
		desc:      d,
		stream:    m.unitRoot.SplitLabel(uint64(m.nextUnitID)),
		state:     UnitPending,
		submitted: m.cfg.Clock.Now(),
		done:      vclock.NewEvent(m.cfg.Clock),
	}
	m.units = append(m.units, u)
	m.pending = append(m.pending, u)
	if m.activeUnits == 0 {
		m.idle = vclock.NewEvent(m.cfg.Clock)
	}
	m.activeUnits++
	m.mu.Unlock()
	m.notify(u, UnitPending)
	m.wake()
	return u, nil
}

// SubmitUnits submits a batch of units in order.
func (m *Manager) SubmitUnits(ds []UnitDescription) ([]*ComputeUnit, error) {
	out := make([]*ComputeUnit, 0, len(ds))
	for _, d := range ds {
		u, err := m.SubmitUnit(d)
		if err != nil {
			return out, err
		}
		out = append(out, u)
	}
	return out, nil
}

// CancelUnit cancels a unit: pending units terminate immediately, running
// units have their task context canceled.
func (m *Manager) CancelUnit(u *ComputeUnit) {
	u.mu.Lock()
	u.cancelled = true
	cancel := u.cancelRun
	state := u.state
	u.mu.Unlock()
	if state == UnitPending {
		m.mu.Lock()
		for i, q := range m.pending {
			if q == u {
				m.pending = append(m.pending[:i], m.pending[i+1:]...)
				break
			}
		}
		m.mu.Unlock()
		m.finishUnit(nil, u, UnitCanceled, context.Canceled)
		return
	}
	if cancel != nil {
		cancel()
	}
}

// Pilots returns a snapshot of all pilots.
func (m *Manager) Pilots() []*Pilot {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]*Pilot(nil), m.pilots...)
}

// Units returns a snapshot of all units ever submitted.
func (m *Manager) Units() []*ComputeUnit {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]*ComputeUnit(nil), m.units...)
}

// QueueDepth returns the number of units awaiting binding.
func (m *Manager) QueueDepth() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.pending)
}

// WaitAll blocks until every submitted unit is terminal, or ctx is done.
func (m *Manager) WaitAll(ctx context.Context) error {
	for {
		m.mu.Lock()
		if m.activeUnits == 0 {
			m.mu.Unlock()
			return nil
		}
		ev := m.idle
		m.mu.Unlock()
		if !ev.Wait(ctx) {
			return ctx.Err()
		}
	}
}

// Close cancels all pilots and pending units and stops the dispatch loop.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	pend := append([]*ComputeUnit(nil), m.pending...)
	m.pending = nil
	pilots := append([]*Pilot(nil), m.pilots...)
	m.mu.Unlock()

	for _, u := range pend {
		u.mu.Lock()
		u.cancelled = true
		u.mu.Unlock()
		m.finishUnit(nil, u, UnitCanceled, ErrManagerClosed)
	}
	for _, p := range pilots {
		p.Shutdown()
	}
	m.stop()
	m.wg.Wait()
}

// UnitMetrics summarizes waiting/runtime/turnaround over all Done units, in
// seconds — the raw material of the paper's performance tables.
func (m *Manager) UnitMetrics() (waiting, runtime, turnaround metrics.Summary) {
	m.mu.Lock()
	units := append([]*ComputeUnit(nil), m.units...)
	m.mu.Unlock()
	var w, r, t []float64
	for _, u := range units {
		if u.State() != UnitDone {
			continue
		}
		w = append(w, u.WaitingTime().Seconds())
		r = append(r, u.Runtime().Seconds())
		t = append(t, u.TurnaroundTime().Seconds())
	}
	return metrics.Summarize(w), metrics.Summarize(r), metrics.Summarize(t)
}

// ---------------------------------------------------------------------------
// Internal machinery
// ---------------------------------------------------------------------------

func (m *Manager) wake() { m.kick.Set() }

func (m *Manager) notify(u *ComputeUnit, s UnitState) {
	if m.cfg.OnUnitChange != nil {
		m.cfg.OnUnitChange(u, s)
	}
}

func (m *Manager) dispatchLoop() {
	defer m.wg.Done()
	for m.kick.Wait(m.ctx) {
		m.dispatchOnce()
	}
}

// dispatchOnce performs one late-binding pass: pending units, in submission
// order, are offered to the scheduler; bound units are reserved onto their
// pilot and handed to its agent. Units that fit nowhere stay queued, so
// smaller later units may bind first (opportunistic backfill inside the
// pilot pool).
func (m *Manager) dispatchOnce() {
	m.mu.Lock()
	defer m.mu.Unlock()
	var remaining []*ComputeUnit
	now := m.cfg.Clock.Now()
	for _, cu := range m.pending {
		cands := m.candidatesLocked(cu)
		if len(cands) == 0 {
			remaining = append(remaining, cu)
			continue
		}
		p := m.cfg.Scheduler.SelectPilot(cu, cands, m.cfg.Data)
		if p == nil {
			remaining = append(remaining, cu)
			continue
		}
		p.mu.Lock()
		p.freeCores -= cu.desc.Cores
		p.running[cu] = struct{}{}
		p.mu.Unlock()
		cu.mu.Lock()
		cu.state = UnitScheduled
		cu.pilot = p
		cu.scheduled = now
		cu.mu.Unlock()
		m.notify(cu, UnitScheduled)
		p.pushWork(cu)
	}
	m.pending = remaining
}

// candidatesLocked returns running pilots able to host cu right now.
func (m *Manager) candidatesLocked(cu *ComputeUnit) []*Pilot {
	var out []*Pilot
	for _, p := range m.pilots {
		p.mu.Lock()
		ok := p.state == PilotRunning && p.freeCores >= cu.desc.Cores
		p.mu.Unlock()
		if ok {
			out = append(out, p)
		}
	}
	return out
}

// pilotStarted registers the agent's allocation (called from agentRun).
func (m *Manager) pilotStarted(p *Pilot, alloc infra.Allocation) {
	now := m.cfg.Clock.Now()
	m.mu.Lock()
	p.mu.Lock()
	p.state = PilotRunning
	p.site = alloc.Site
	p.alloc = alloc
	p.freeCores = p.desc.Cores
	p.startedAt = now
	p.mu.Unlock()
	m.mu.Unlock()
	p.started.Fire()
	m.wake()
}

// pilotEnded finalizes a pilot when its placeholder job terminates, and
// requeues units that were assigned but never picked up.
func (m *Manager) pilotEnded(p *Pilot, job saga.Job) {
	now := m.cfg.Clock.Now()
	m.mu.Lock()
	p.mu.Lock()
	switch job.State() {
	case saga.Done:
		p.state = PilotDone
	case saga.Canceled:
		p.state = PilotCanceled
		p.err = job.Err()
	default:
		p.state = PilotFailed
		p.err = job.Err()
	}
	p.ended = now
	p.mu.Unlock()

	// Units stuck in the work queue (agent gone) go back to the queue.
	stranded := p.drainWork()
	m.mu.Unlock()
	for _, cu := range stranded {
		m.returnSlots(p, cu)
		m.requeueOrFail(cu, fmt.Errorf("core: pilot %s terminated before unit start", p.id))
	}
	p.started.Fire() // unblock WaitRunning callers on failed pilots
	p.done.Fire()
	m.wake()
}

func (m *Manager) cancelPilot(p *Pilot) {
	// Cancel the placeholder job through the agent context: closing stopCh
	// makes agentRun return nil, which ends the saga job as Done; to force
	// cancellation semantics we mark the state first.
	p.Shutdown()
}

// executeUnit stages, runs and finalizes one unit on pilot p. It runs on
// the agent's goroutine pool; ctx is the pilot's payload context.
func (m *Manager) executeUnit(ctx context.Context, p *Pilot, cu *ComputeUnit) {
	if cu.State() == UnitCanceled || cu.isCancelled() {
		m.returnSlots(p, cu)
		m.finishUnit(p, cu, UnitCanceled, context.Canceled)
		return
	}
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	cu.mu.Lock()
	cu.cancelRun = cancel
	cu.attempts++
	cu.mu.Unlock()

	site := p.Site()
	// Stage inputs to the pilot's site (Pilot-Data integration).
	if len(cu.desc.InputData) > 0 && m.cfg.Data != nil {
		cu.setState(UnitStaging)
		m.notify(cu, UnitStaging)
		for _, id := range cu.desc.InputData {
			if err := m.cfg.Data.StageIn(runCtx, id, site); err != nil {
				m.returnSlots(p, cu)
				if runCtx.Err() != nil && !cu.isCancelled() {
					m.requeueOrFail(cu, fmt.Errorf("core: staging interrupted: %w", err))
				} else if cu.isCancelled() {
					m.finishUnit(p, cu, UnitCanceled, err)
				} else {
					m.finishUnit(p, cu, UnitFailed, fmt.Errorf("core: stage-in of %s failed: %w", id, err))
				}
				return
			}
		}
	}

	now := m.cfg.Clock.Now()
	cu.mu.Lock()
	cu.state = UnitRunning
	cu.started = now
	cu.mu.Unlock()
	m.notify(cu, UnitRunning)

	tc := TaskContext{
		Unit:  cu,
		Cores: cu.desc.Cores,
		Site:  site,
		Alloc: p.allocation(),
		Data:  m.cfg.Data,
		Sleep: m.cfg.Clock.Sleep,
		Compute: func(ctx context.Context, fn func()) bool {
			return vclock.Compute(m.cfg.Clock, ctx, fn)
		},
		Stream: cu.stream,
	}
	err := cu.desc.Run(runCtx, tc)

	m.returnSlots(p, cu)
	switch {
	case cu.isCancelled():
		m.finishUnit(p, cu, UnitCanceled, context.Canceled)
	case runCtx.Err() != nil && ctx.Err() != nil:
		// The pilot died under the unit (walltime/eviction): retry budget
		// decides between requeue and failure.
		m.requeueOrFail(cu, fmt.Errorf("core: pilot %s lost during execution: %w", p.id, runCtx.Err()))
	case err != nil:
		m.finishUnit(p, cu, UnitFailed, err)
	default:
		m.finishUnit(p, cu, UnitDone, nil)
	}
}

// returnSlots releases the unit's reservation on p.
func (m *Manager) returnSlots(p *Pilot, cu *ComputeUnit) {
	p.mu.Lock()
	if _, ok := p.running[cu]; ok {
		delete(p.running, cu)
		p.freeCores += cu.desc.Cores
		p.unitsDone++
	}
	p.mu.Unlock()
	m.wake()
}

// requeueOrFail returns a unit to the pending queue if it has retry budget.
func (m *Manager) requeueOrFail(cu *ComputeUnit, cause error) {
	cu.mu.Lock()
	retry := cu.attempts <= cu.desc.MaxRetries && !cu.cancelled
	if retry {
		cu.state = UnitPending
		cu.pilot = nil
		cu.cancelRun = nil
	}
	cu.mu.Unlock()
	if !retry {
		m.finishUnit(nil, cu, UnitFailed, cause)
		return
	}
	m.mu.Lock()
	closed := m.closed
	if !closed {
		m.pending = append(m.pending, cu)
	}
	m.mu.Unlock()
	if closed {
		m.finishUnit(nil, cu, UnitCanceled, ErrManagerClosed)
		return
	}
	m.notify(cu, UnitPending)
	m.wake()
}

// finishUnit moves a unit to a terminal state exactly once.
func (m *Manager) finishUnit(p *Pilot, cu *ComputeUnit, s UnitState, err error) {
	now := m.cfg.Clock.Now()
	cu.mu.Lock()
	if cu.state.Terminal() {
		cu.mu.Unlock()
		return
	}
	cu.state = s
	cu.err = err
	cu.ended = now
	cu.mu.Unlock()
	cu.done.Fire()
	m.notify(cu, s)

	m.mu.Lock()
	m.activeUnits--
	idle := m.idle
	fire := m.activeUnits == 0
	m.mu.Unlock()
	if fire {
		idle.Fire()
	}
}

func (u *ComputeUnit) isCancelled() bool {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.cancelled
}

func (u *ComputeUnit) setState(s UnitState) {
	u.mu.Lock()
	u.state = s
	u.mu.Unlock()
}

func (p *Pilot) allocation() infra.Allocation {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.alloc
}
