package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"gopilot/internal/dist"
	"gopilot/internal/infra"
	"gopilot/internal/metrics"
	"gopilot/internal/plan"
	"gopilot/internal/saga"
	"gopilot/internal/vclock"
)

// Scheduler decides which pilot a pending unit binds to. Candidates are
// running pilots with enough free cores; returning nil defers the unit.
// Implementations live in package scheduler; the manager defaults to
// first-fit FIFO. The manager wires the policy into the control plane's
// TickPlanner (package plan), which owns the queue and retry state around
// this choice.
type Scheduler interface {
	// Name identifies the policy in experiment reports.
	Name() string
	// SelectPilot picks a pilot for the unit from candidates (never empty).
	SelectPilot(cu *ComputeUnit, candidates []*Pilot, data DataService) *Pilot
}

// firstFit is the default scheduler: bind to the first candidate, which —
// given submit-order iteration — yields FIFO with opportunistic backfill.
type firstFit struct{}

func (firstFit) Name() string { return "first-fit" }

func (firstFit) SelectPilot(cu *ComputeUnit, candidates []*Pilot, _ DataService) *Pilot {
	return candidates[0]
}

// Config configures a Manager.
type Config struct {
	// Registry resolves pilot resource URLs to saga services.
	Registry *saga.Registry
	// Clock supplies virtual time; defaults to vclock.Real.
	Clock vclock.Clock
	// Scheduler is the late-binding policy; defaults to first-fit FIFO.
	Scheduler Scheduler
	// Data is the Pilot-Data service; nil disables data staging.
	Data DataService
	// Stream is the manager's slot on the experiment's seeding spine.
	// Every pilot and unit receives a labeled child ("pilot"/<ordinal>,
	// "unit"/<ordinal>) derived from it, so draws made by one component
	// never shift another's — and a unit keeps the same stream across
	// retries and regardless of which pilot it lands on. The planner's
	// retry jitter lives in its own "retry"/<ordinal> subtree. Defaults to
	// dist.Unseeded("manager"); experiments should pass a named child of
	// their own root instead.
	Stream *dist.Stream
	// OnUnitChange, if set, observes every unit state transition
	// (instrumentation hook used by the Mini-App framework).
	OnUnitChange func(cu *ComputeUnit, state UnitState)
	// Backoff shapes the retry delay applied by the planner when a pilot
	// is lost under (or before) a unit; zero fields take the defaults
	// documented on plan.Backoff.
	Backoff plan.Backoff
	// ReconcileEvery is the drift-reconciliation period in virtual time:
	// desired unit/pilot state is compared against agent state and
	// divergences are corrected. Zero means the 30s default; negative
	// disables the reconciler.
	ReconcileEvery time.Duration
}

// DefaultReconcileEvery is the reconciler period used when
// Config.ReconcileEvery is zero.
const DefaultReconcileEvery = 30 * time.Second

// Manager is the Pilot-Manager of the P* model: it owns pilots and the
// unit lifecycle, and corresponds to the Pilot-API's
// PilotComputeService/ComputeDataService pair. Placement itself is
// delegated: a plan.Planner owns the pending queue, retry budget/backoff
// and per-backend watermarks, and the manager's dispatch loop just asks
// it for decisions and executes them.
type Manager struct {
	cfg Config

	pilotRoot *dist.Stream // parent of per-pilot streams ("pilot"/<ordinal>)
	unitRoot  *dist.Stream // parent of per-unit streams ("unit"/<ordinal>)

	mu          sync.Mutex
	planner     *plan.Planner
	recon       *plan.Reconciler
	pilots      []*Pilot
	units       []*ComputeUnit
	pilotByID   map[string]*Pilot
	unitByID    map[string]*ComputeUnit
	nextPilotID int
	nextUnitID  int
	activeUnits int
	idle        *vclock.Event
	nextWake    time.Time // earliest scheduled dispatch self-wake
	closed      bool

	kick      *vclock.Notifier
	reconKick *vclock.Notifier
	ctx       context.Context
	stop      context.CancelFunc
	wg        *vclock.Group
}

// ErrManagerClosed is returned by submissions after Close.
var ErrManagerClosed = errors.New("core: manager closed")

// NewManager creates a Manager and starts its dispatch and reconcile
// loops.
func NewManager(cfg Config) *Manager {
	if cfg.Registry == nil {
		cfg.Registry = saga.NewRegistry()
	}
	if cfg.Clock == nil {
		cfg.Clock = vclock.NewReal()
	}
	if cfg.Scheduler == nil {
		cfg.Scheduler = firstFit{}
	}
	if cfg.Stream == nil {
		cfg.Stream = dist.Unseeded("manager")
	}
	if cfg.ReconcileEvery == 0 {
		cfg.ReconcileEvery = DefaultReconcileEvery
	}
	m := &Manager{
		cfg:       cfg,
		pilotRoot: cfg.Stream.Named("pilot"),
		unitRoot:  cfg.Stream.Named("unit"),
		pilotByID: make(map[string]*Pilot),
		unitByID:  make(map[string]*ComputeUnit),
		recon:     plan.NewReconciler(),
		idle:      vclock.NewEvent(cfg.Clock),
		kick:      vclock.NewNotifier(cfg.Clock),
		reconKick: vclock.NewNotifier(cfg.Clock),
		wg:        vclock.NewGroup(cfg.Clock),
	}
	m.planner = plan.New(plan.Config{
		Stream:  cfg.Stream,
		Backoff: cfg.Backoff,
		// The policy adapter resolves planner IDs back to live objects for
		// the pluggable Scheduler. It runs inside Plan, under m.mu.
		Policy: func(u plan.UnitSpec, cands []plan.Candidate) string {
			cu := m.unitByID[u.ID]
			if cu == nil {
				return ""
			}
			pilots := make([]*Pilot, 0, len(cands))
			for _, c := range cands {
				if p := m.pilotByID[c.ID]; p != nil {
					pilots = append(pilots, p)
				}
			}
			if len(pilots) == 0 {
				return ""
			}
			p := m.cfg.Scheduler.SelectPilot(cu, pilots, m.cfg.Data)
			if p == nil {
				return ""
			}
			return p.id
		},
	})
	m.idle.Fire() // no active units yet: idle
	m.ctx, m.stop = context.WithCancel(context.Background())
	m.wg.Add(1)
	vclock.Go(cfg.Clock, m.dispatchLoop)
	if cfg.ReconcileEvery > 0 {
		m.wg.Add(1)
		vclock.Go(cfg.Clock, m.reconcileLoop)
	}
	return m
}

// Clock returns the manager's clock (tasks and frameworks share it).
func (m *Manager) Clock() vclock.Clock { return m.cfg.Clock }

// Data returns the configured data service (may be nil).
func (m *Manager) Data() DataService { return m.cfg.Data }

// Registry returns the saga registry.
func (m *Manager) Registry() *saga.Registry { return m.cfg.Registry }

// SchedulerName returns the active scheduling policy's name.
func (m *Manager) SchedulerName() string { return m.cfg.Scheduler.Name() }

// Stream returns the manager's randomness root on the seeding spine.
// Frameworks running on the manager (apps, processors) derive their own
// labeled children from it when not handed a stream explicitly.
func (m *Manager) Stream() *dist.Stream { return m.cfg.Stream }

// Watermarks returns the planner's per-backend dispatch watermarks.
func (m *Manager) Watermarks() map[string]plan.Watermark {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.planner.Watermarks()
}

// SubmitPilot submits a placeholder job to the resource named in the
// description and returns immediately with a Pending pilot.
func (m *Manager) SubmitPilot(d PilotDescription) (*Pilot, error) {
	if d.Cores <= 0 {
		d.Cores = 1
	}
	svc, err := m.cfg.Registry.Lookup(d.Resource)
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, ErrManagerClosed
	}
	m.nextPilotID++
	p := &Pilot{
		id:        fmt.Sprintf("pilot-%d", m.nextPilotID),
		desc:      d,
		manager:   m,
		stream:    m.pilotRoot.SplitLabel(uint64(m.nextPilotID)),
		state:     PilotPending,
		running:   make(map[*ComputeUnit]struct{}),
		submitted: m.cfg.Clock.Now(),
		workN:     vclock.NewNotifier(m.cfg.Clock),
		stop:      vclock.NewEvent(m.cfg.Clock),
		started:   vclock.NewEvent(m.cfg.Clock),
		done:      vclock.NewEvent(m.cfg.Clock),
	}
	// A backend outage must empty the candidate set for pilots already
	// running there, so the pilot caches its service's fault switchboard
	// when the adaptor exposes one.
	if fp, ok := svc.(interface{ Faults() *infra.Faults }); ok {
		p.faults = fp.Faults()
	}
	m.pilots = append(m.pilots, p)
	m.pilotByID[p.id] = p
	m.mu.Unlock()

	job, err := svc.Submit(saga.Description{
		Name:       d.Name,
		TotalCores: d.Cores,
		Walltime:   d.Walltime,
		Payload:    p.agentRun,
		Attributes: d.Attributes,
	})
	if err != nil {
		m.mu.Lock()
		for i, q := range m.pilots {
			if q == p {
				m.pilots = append(m.pilots[:i], m.pilots[i+1:]...)
				break
			}
		}
		delete(m.pilotByID, p.id)
		m.mu.Unlock()
		return nil, fmt.Errorf("core: pilot submission to %s failed: %w", d.Resource, err)
	}
	p.mu.Lock()
	p.job = job
	p.mu.Unlock()
	m.reconKick.Set()
	m.wg.Add(1)
	vclock.Go(m.cfg.Clock, func() {
		defer m.wg.Done()
		job.Wait(context.Background())
		m.pilotEnded(p, job)
	})
	return p, nil
}

// SubmitUnit adds a unit to the planner's queue for late binding.
func (m *Manager) SubmitUnit(d UnitDescription) (*ComputeUnit, error) {
	if d.Run == nil {
		return nil, errors.New("core: unit description has nil Run")
	}
	if d.Cores <= 0 {
		d.Cores = 1
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, ErrManagerClosed
	}
	m.nextUnitID++
	u := &ComputeUnit{
		id:        fmt.Sprintf("unit-%d", m.nextUnitID),
		desc:      d,
		stream:    m.unitRoot.SplitLabel(uint64(m.nextUnitID)),
		state:     UnitPending,
		submitted: m.cfg.Clock.Now(),
		done:      vclock.NewEvent(m.cfg.Clock),
	}
	m.units = append(m.units, u)
	m.unitByID[u.id] = u
	m.planner.Admit(plan.UnitSpec{
		ID:         u.id,
		Ordinal:    uint64(m.nextUnitID),
		Cores:      d.Cores,
		MaxRetries: d.MaxRetries,
	})
	if m.activeUnits == 0 {
		m.idle = vclock.NewEvent(m.cfg.Clock)
	}
	m.activeUnits++
	m.mu.Unlock()
	m.notify(u, UnitPending)
	m.reconKick.Set()
	m.wake()
	return u, nil
}

// SubmitUnits submits a batch of units in order.
func (m *Manager) SubmitUnits(ds []UnitDescription) ([]*ComputeUnit, error) {
	out := make([]*ComputeUnit, 0, len(ds))
	for _, d := range ds {
		u, err := m.SubmitUnit(d)
		if err != nil {
			return out, err
		}
		out = append(out, u)
	}
	return out, nil
}

// CancelUnit cancels a unit: pending units terminate immediately, running
// units have their task context canceled.
func (m *Manager) CancelUnit(u *ComputeUnit) {
	u.mu.Lock()
	u.cancelled = true
	cancel := u.cancelRun
	state := u.state
	u.mu.Unlock()
	if state == UnitPending {
		m.mu.Lock()
		m.planner.Forget(u.id)
		m.mu.Unlock()
		m.finishUnit(nil, u, UnitCanceled, context.Canceled)
		return
	}
	if cancel != nil {
		cancel()
	}
}

// Pilots returns a snapshot of all pilots.
func (m *Manager) Pilots() []*Pilot {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]*Pilot(nil), m.pilots...)
}

// Units returns a snapshot of all units ever submitted.
func (m *Manager) Units() []*ComputeUnit {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]*ComputeUnit(nil), m.units...)
}

// QueueDepth returns the number of units awaiting binding (including
// units parked in retry backoff).
func (m *Manager) QueueDepth() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.planner.PendingLen()
}

// WaitAll blocks until every submitted unit is terminal, or ctx is done.
func (m *Manager) WaitAll(ctx context.Context) error {
	for {
		m.mu.Lock()
		if m.activeUnits == 0 {
			m.mu.Unlock()
			return nil
		}
		ev := m.idle
		m.mu.Unlock()
		if !ev.Wait(ctx) {
			return ctx.Err()
		}
	}
}

// Close cancels all pilots and pending units and stops the dispatch and
// reconcile loops.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	var pend []*ComputeUnit
	for _, id := range m.planner.DrainPending() {
		if u := m.unitByID[id]; u != nil {
			pend = append(pend, u)
		}
	}
	pilots := append([]*Pilot(nil), m.pilots...)
	m.mu.Unlock()

	for _, u := range pend {
		u.mu.Lock()
		u.cancelled = true
		u.mu.Unlock()
		m.finishUnit(nil, u, UnitCanceled, ErrManagerClosed)
	}
	for _, p := range pilots {
		p.Shutdown()
	}
	m.stop()
	m.wg.Wait()
}

// UnitMetrics summarizes waiting/runtime/turnaround over all Done units, in
// seconds — the raw material of the paper's performance tables.
func (m *Manager) UnitMetrics() (waiting, runtime, turnaround metrics.Summary) {
	m.mu.Lock()
	units := append([]*ComputeUnit(nil), m.units...)
	m.mu.Unlock()
	var w, r, t []float64
	for _, u := range units {
		if u.State() != UnitDone {
			continue
		}
		w = append(w, u.WaitingTime().Seconds())
		r = append(r, u.Runtime().Seconds())
		t = append(t, u.TurnaroundTime().Seconds())
	}
	return metrics.Summarize(w), metrics.Summarize(r), metrics.Summarize(t)
}

// ---------------------------------------------------------------------------
// Internal machinery
// ---------------------------------------------------------------------------

func (m *Manager) wake() { m.kick.Set() }

// Kick nudges the dispatch loop to run a late-binding pass now. The chaos
// engine calls it when an injected backend outage clears: recovery alone
// produces no dispatch-visible event, so without a kick units would wait
// for the next unrelated wake-up.
func (m *Manager) Kick() { m.wake() }

func (m *Manager) notify(u *ComputeUnit, s UnitState) {
	if m.cfg.OnUnitChange != nil {
		m.cfg.OnUnitChange(u, s)
	}
}

func (m *Manager) dispatchLoop() {
	defer m.wg.Done()
	for m.kick.Wait(m.ctx) {
		m.dispatchOnce()
	}
}

// dispatchOnce performs one late-binding pass: it asks the planner for
// this instant's decisions and executes them through the plannerExec
// callbacks. If the planner is holding units in retry backoff, a
// self-wake is scheduled for the earliest eligibility instant.
func (m *Manager) dispatchOnce() {
	now := m.cfg.Clock.Now()
	m.mu.Lock()
	next := m.planner.Plan(now, &plannerExec{m: m, now: now})
	if !next.IsZero() {
		m.wakeAtLocked(next)
	}
	m.mu.Unlock()
}

// plannerExec executes planner decisions against the live world. Its
// methods are called synchronously from plan.Plan while m.mu is held, so
// each bind is visible to the next unit's candidate query within the
// same tick.
type plannerExec struct {
	m   *Manager
	now time.Time
}

// Candidates implements plan.Executor.
func (e *plannerExec) Candidates(u plan.UnitSpec) []plan.Candidate {
	cu := e.m.unitByID[u.ID]
	if cu == nil {
		return nil
	}
	pilots := e.m.candidatesLocked(cu)
	out := make([]plan.Candidate, 0, len(pilots))
	for _, p := range pilots {
		out = append(out, plan.Candidate{ID: p.id, Backend: p.desc.Resource, FreeCores: p.FreeCores()})
	}
	return out
}

// Bind implements plan.Executor: reserve cores, mark the unit Scheduled
// and hand it to the pilot's agent.
func (e *plannerExec) Bind(u plan.UnitSpec, pilotID string) {
	m := e.m
	cu := m.unitByID[u.ID]
	p := m.pilotByID[pilotID]
	if cu == nil || p == nil {
		return
	}
	p.mu.Lock()
	p.freeCores -= cu.desc.Cores
	p.running[cu] = struct{}{}
	p.mu.Unlock()
	cu.mu.Lock()
	cu.state = UnitScheduled
	cu.pilot = p
	cu.scheduled = e.now
	cu.mu.Unlock()
	vclock.Mark(m.cfg.Clock, "bind "+u.ID+" -> "+pilotID, u.Ordinal)
	m.notify(cu, UnitScheduled)
	p.pushWork(cu)
}

// wakeAtLocked schedules a dispatch self-wake at t (m.mu must be held).
// Only an improvement on the earliest outstanding wake spawns a sleeper;
// late sleepers just trigger a no-op dispatch pass.
func (m *Manager) wakeAtLocked(t time.Time) {
	if m.closed {
		return
	}
	if !m.nextWake.IsZero() && !t.Before(m.nextWake) {
		return
	}
	m.nextWake = t
	d := t.Sub(m.cfg.Clock.Now())
	if d < 0 {
		d = 0
	}
	m.wg.Add(1)
	vclock.Go(m.cfg.Clock, func() {
		defer m.wg.Done()
		if !m.cfg.Clock.Sleep(m.ctx, d) {
			return
		}
		m.mu.Lock()
		if m.nextWake.Equal(t) {
			m.nextWake = time.Time{}
		}
		m.mu.Unlock()
		m.wake()
	})
}

// candidatesLocked returns running pilots able to host cu right now. A
// pilot whose backend is inside an injected outage window is unreachable
// and therefore not a candidate.
func (m *Manager) candidatesLocked(cu *ComputeUnit) []*Pilot {
	var out []*Pilot
	for _, p := range m.pilots {
		p.mu.Lock()
		ok := p.state == PilotRunning && p.freeCores >= cu.desc.Cores
		p.mu.Unlock()
		if ok && !p.faults.Down() {
			out = append(out, p)
		}
	}
	return out
}

// pilotStarted registers the agent's allocation (called from agentRun).
func (m *Manager) pilotStarted(p *Pilot, alloc infra.Allocation) {
	now := m.cfg.Clock.Now()
	m.mu.Lock()
	p.mu.Lock()
	p.state = PilotRunning
	p.site = alloc.Site
	p.alloc = alloc
	p.freeCores = p.desc.Cores
	p.startedAt = now
	p.mu.Unlock()
	m.mu.Unlock()
	p.started.Fire()
	m.wake()
}

// pilotEnded finalizes a pilot when its placeholder job terminates, and
// routes units that were assigned but never picked up through the
// planner's pre-start failure path.
func (m *Manager) pilotEnded(p *Pilot, job saga.Job) {
	now := m.cfg.Clock.Now()
	m.mu.Lock()
	p.mu.Lock()
	switch job.State() {
	case saga.Done:
		p.state = PilotDone
	case saga.Canceled:
		p.state = PilotCanceled
		p.err = job.Err()
	default:
		p.state = PilotFailed
		p.err = job.Err()
	}
	p.ended = now
	p.mu.Unlock()

	// Units stuck in the work queue (agent gone) go back to the planner.
	stranded := p.drainWork()
	m.mu.Unlock()
	for _, cu := range stranded {
		m.returnSlots(p, cu)
		m.requeueOrFail(cu, plan.FailurePreStart,
			fmt.Errorf("core: pilot %s terminated before unit start", p.id))
	}
	p.started.Fire() // unblock WaitRunning callers on failed pilots
	p.done.Fire()
	m.wake()
}

func (m *Manager) cancelPilot(p *Pilot) {
	// Cancel the placeholder job through the agent context: closing stopCh
	// makes agentRun return nil, which ends the saga job as Done; to force
	// cancellation semantics we mark the state first.
	p.Shutdown()
}

// executeUnit stages, runs and finalizes one unit on pilot p. It runs on
// the agent's goroutine pool; ctx is the pilot's payload context.
func (m *Manager) executeUnit(ctx context.Context, p *Pilot, cu *ComputeUnit) {
	if cu.State() == UnitCanceled || cu.isCancelled() {
		m.returnSlots(p, cu)
		m.finishUnit(p, cu, UnitCanceled, context.Canceled)
		return
	}
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	cu.mu.Lock()
	cu.cancelRun = cancel
	cu.attempts++
	cu.mu.Unlock()

	site := p.Site()
	// Stage inputs to the pilot's site (Pilot-Data integration).
	if len(cu.desc.InputData) > 0 && m.cfg.Data != nil {
		cu.setState(UnitStaging)
		m.notify(cu, UnitStaging)
		for _, id := range cu.desc.InputData {
			if err := m.cfg.Data.StageIn(runCtx, id, site); err != nil {
				m.returnSlots(p, cu)
				if runCtx.Err() != nil && !cu.isCancelled() {
					m.requeueOrFail(cu, plan.FailureExecution, fmt.Errorf("core: staging interrupted: %w", err))
				} else if cu.isCancelled() {
					m.finishUnit(p, cu, UnitCanceled, err)
				} else {
					m.finishUnit(p, cu, UnitFailed, fmt.Errorf("core: stage-in of %s failed: %w", id, err))
				}
				return
			}
		}
	}

	now := m.cfg.Clock.Now()
	cu.mu.Lock()
	cu.state = UnitRunning
	cu.started = now
	cu.mu.Unlock()
	m.notify(cu, UnitRunning)

	tc := TaskContext{
		Unit:  cu,
		Cores: cu.desc.Cores,
		Site:  site,
		Alloc: p.allocation(),
		Data:  m.cfg.Data,
		Sleep: m.cfg.Clock.Sleep,
		Compute: func(ctx context.Context, fn func()) bool {
			return vclock.Compute(m.cfg.Clock, ctx, fn)
		},
		Stream: cu.stream,
	}
	err := cu.desc.Run(runCtx, tc)

	m.returnSlots(p, cu)
	switch {
	case cu.isCancelled():
		m.finishUnit(p, cu, UnitCanceled, context.Canceled)
	case runCtx.Err() != nil && ctx.Err() != nil:
		// The pilot died under the unit (walltime/eviction): retry budget
		// decides between requeue and failure.
		m.requeueOrFail(cu, plan.FailureExecution,
			fmt.Errorf("core: pilot %s lost during execution: %w", p.id, runCtx.Err()))
	case err != nil:
		m.finishUnit(p, cu, UnitFailed, err)
	default:
		m.finishUnit(p, cu, UnitDone, nil)
	}
}

// returnSlots releases the unit's reservation on p.
func (m *Manager) returnSlots(p *Pilot, cu *ComputeUnit) {
	p.mu.Lock()
	if _, ok := p.running[cu]; ok {
		delete(p.running, cu)
		p.freeCores += cu.desc.Cores
		p.unitsDone++
	}
	p.mu.Unlock()
	m.wake()
}

// requeueOrFail routes a failed dispatch through the planner: one charge
// against the unit's shared MaxRetries budget, then either a backoff-
// delayed requeue or terminal failure.
func (m *Manager) requeueOrFail(cu *ComputeUnit, class plan.FailureClass, cause error) {
	now := m.cfg.Clock.Now()
	m.mu.Lock()
	if m.closed {
		m.planner.Forget(cu.id)
		m.mu.Unlock()
		m.finishUnit(nil, cu, UnitCanceled, ErrManagerClosed)
		return
	}
	var v plan.Verdict
	if cu.isCancelled() {
		m.planner.Forget(cu.id)
	} else {
		v = m.planner.NoteFailure(cu.id, class, now)
	}
	if v.Retry {
		cu.mu.Lock()
		cu.state = UnitPending
		cu.pilot = nil
		cu.cancelRun = nil
		cu.mu.Unlock()
	}
	m.mu.Unlock()
	if !v.Retry {
		m.finishUnit(nil, cu, UnitFailed, cause)
		return
	}
	m.notify(cu, UnitPending)
	m.wake()
}

// finishUnit moves a unit to a terminal state exactly once.
func (m *Manager) finishUnit(p *Pilot, cu *ComputeUnit, s UnitState, err error) {
	now := m.cfg.Clock.Now()
	cu.mu.Lock()
	if cu.state.Terminal() {
		cu.mu.Unlock()
		return
	}
	cu.state = s
	cu.err = err
	cu.ended = now
	cu.mu.Unlock()
	cu.done.Fire()
	m.notify(cu, s)

	m.mu.Lock()
	m.planner.Forget(cu.id)
	m.activeUnits--
	idle := m.idle
	fire := m.activeUnits == 0
	m.mu.Unlock()
	if fire {
		idle.Fire()
	}
}

// ---------------------------------------------------------------------------
// Drift reconciliation
// ---------------------------------------------------------------------------

// reconcileLoop periodically compares desired vs actual state and applies
// corrections. While the manager has neither live pilots nor active units
// it parks without a deadline, so an idle manager adds no timeline events.
func (m *Manager) reconcileLoop() {
	defer m.wg.Done()
	for {
		m.mu.Lock()
		busy := m.activeUnits > 0
		if !busy {
			for _, p := range m.pilots {
				if !p.State().Terminal() {
					busy = true
					break
				}
			}
		}
		m.mu.Unlock()
		if !busy {
			if !m.reconKick.Wait(m.ctx) {
				return
			}
			continue
		}
		if !m.cfg.Clock.Sleep(m.ctx, m.cfg.ReconcileEvery) {
			return
		}
		m.ReconcileOnce()
	}
}

// ReconcileOnce runs one desired-vs-actual scan and corrects every drift
// confirmed by two consecutive scans (plan.Reconciler's anti-flap rule).
// It returns the corrections applied, in deterministic order.
func (m *Manager) ReconcileOnce() []plan.Drift {
	m.mu.Lock()
	units := make([]plan.UnitStatus, 0, len(m.units))
	for _, u := range m.units {
		u.mu.Lock()
		st := plan.UnitStatus{ID: u.id, Terminal: u.state.Terminal()}
		if u.pilot != nil && (u.state == UnitScheduled || u.state == UnitStaging || u.state == UnitRunning) {
			st.Bound = true
			st.Started = u.state != UnitScheduled
			st.Pilot = u.pilot.id
		}
		u.mu.Unlock()
		units = append(units, st)
	}
	pilots := make([]plan.PilotStatus, 0, len(m.pilots))
	for _, p := range m.pilots {
		p.mu.Lock()
		st := plan.PilotStatus{
			ID:       p.id,
			Running:  p.state == PilotRunning,
			Terminal: p.state.Terminal(),
		}
		for _, cu := range p.workQ {
			st.Units = append(st.Units, cu.id)
		}
		for cu := range p.running {
			st.Units = append(st.Units, cu.id)
		}
		p.mu.Unlock()
		sort.Strings(st.Units)
		st.Units = dedupSorted(st.Units)
		pilots = append(pilots, st)
	}
	confirmed := m.recon.Observe(units, pilots)
	m.mu.Unlock()

	var applied []plan.Drift
	for _, d := range confirmed {
		m.mu.Lock()
		cu := m.unitByID[d.Unit]
		p := m.pilotByID[d.Pilot]
		m.mu.Unlock()
		if p == nil {
			continue
		}
		if m.applyDrift(d, cu, p) {
			applied = append(applied, d)
		}
	}
	return applied
}

// applyDrift corrects one confirmed drift, rechecking that it still holds
// under the object locks. Reports whether a correction was applied.
func (m *Manager) applyDrift(d plan.Drift, cu *ComputeUnit, p *Pilot) bool {
	switch d.Class {
	case plan.DriftOrphan:
		// The agent holds a unit the control plane no longer binds there:
		// release the reservation and drop it from the work queue.
		if cu == nil {
			return false
		}
		cu.mu.Lock()
		stillBound := !cu.state.Terminal() && cu.pilot == p
		cu.mu.Unlock()
		if stillBound {
			return false
		}
		p.mu.Lock()
		freed := false
		if _, ok := p.running[cu]; ok {
			delete(p.running, cu)
			p.freeCores += cu.desc.Cores
			freed = true
		}
		for i, q := range p.workQ {
			if q == cu {
				p.workQ = append(p.workQ[:i], p.workQ[i+1:]...)
				freed = true
				break
			}
		}
		p.mu.Unlock()
		if freed {
			m.wake()
		}
		return freed

	case plan.DriftStateMismatch:
		// A live unit is bound to a terminal pilot: release its slot there
		// and route it through the planner's failure path.
		if cu == nil || !p.State().Terminal() {
			return false
		}
		cu.mu.Lock()
		mismatched := !cu.state.Terminal() && cu.pilot == p
		started := cu.state == UnitStaging || cu.state == UnitRunning
		cu.mu.Unlock()
		if !mismatched {
			return false
		}
		p.mu.Lock()
		if _, ok := p.running[cu]; ok {
			delete(p.running, cu)
			p.freeCores += cu.desc.Cores
		}
		for i, q := range p.workQ {
			if q == cu {
				p.workQ = append(p.workQ[:i], p.workQ[i+1:]...)
				break
			}
		}
		p.mu.Unlock()
		class := plan.FailurePreStart
		if started {
			class = plan.FailureExecution
		}
		m.requeueOrFail(cu, class, fmt.Errorf("core: reconcile: unit bound to terminated pilot %s", p.id))
		return true

	default: // plan.DriftMissingOnAgent
		// A bound unit vanished from the agent's bookkeeping: restore the
		// reservation, and re-queue it with the agent if it had not
		// started executing.
		if cu == nil {
			return false
		}
		cu.mu.Lock()
		bound := !cu.state.Terminal() && cu.pilot == p
		scheduled := cu.state == UnitScheduled
		cu.mu.Unlock()
		if !bound {
			return false
		}
		p.mu.Lock()
		if p.state != PilotRunning {
			p.mu.Unlock()
			return false
		}
		if _, ok := p.running[cu]; ok {
			p.mu.Unlock()
			return false
		}
		for _, q := range p.workQ {
			if q == cu {
				p.mu.Unlock()
				return false
			}
		}
		p.running[cu] = struct{}{}
		p.freeCores -= cu.desc.Cores
		if scheduled {
			p.workQ = append(p.workQ, cu)
		}
		p.mu.Unlock()
		if scheduled {
			p.workN.Set()
		}
		return true
	}
}

// dedupSorted removes adjacent duplicates from a sorted slice in place.
func dedupSorted(s []string) []string {
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out
}

func (u *ComputeUnit) isCancelled() bool {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.cancelled
}

func (u *ComputeUnit) setState(s UnitState) {
	u.mu.Lock()
	u.state = s
	u.mu.Unlock()
}

func (p *Pilot) allocation() infra.Allocation {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.alloc
}
