package core

import (
	"context"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"gopilot/internal/dist"
	"gopilot/internal/saga"
	"gopilot/internal/vclock"
)

// Drift-reconciliation regression: inject each of the three drift
// classes directly into agent/unit state (the kind of divergence a lost
// message or crashed agent produces), and require the reconcile loop to
// correct all of them at a deterministic virtual instant — the second
// scan after injection, per the anti-flap rule — bit-identically across
// five same-seed runs. The CI race leg runs this under -race; the test
// itself pins GOMAXPROCS=4 so the schedule pressure is reproducible.

// reconObservation is everything externally observable about one run.
type reconObservation struct {
	// OrphanFixedAt / MissingFixedAt: first polled instant (offsets from
	// the epoch, polled at X.5s) at which the injected capacity drift was
	// corrected.
	OrphanFixedAt  time.Duration
	MissingFixedAt time.Duration
	// PendEvents: the stranded unit's Pending-notification instants
	// (submission, then the reconciler's requeue).
	PendEvents []time.Duration
	// PendCharges: retry budget consumed by the stranded unit.
	PendCharges int
}

// sleepUntil advances the driver to the given offset from the epoch.
func sleepUntil(ctx context.Context, clock vclock.Clock, off time.Duration) {
	if d := off - clock.Since(vclock.Epoch); d > 0 {
		clock.Sleep(ctx, d)
	}
}

func runReconcileDriftWorkload(t *testing.T) reconObservation {
	t.Helper()
	clock := vclock.NewVirtual(vclock.Epoch)
	clock.Adopt()
	defer clock.Leave()
	reg := saga.NewRegistry()
	reg.Register(saga.NewLocalService("box", 64, clock))

	var mu sync.Mutex
	var pendEvents []time.Duration
	mgr := NewManager(Config{
		Registry: reg, Clock: clock, Stream: dist.NewStream(5),
		OnUnitChange: func(cu *ComputeUnit, s UnitState) {
			if cu.Description().Name == "pend" && s == UnitPending {
				mu.Lock()
				pendEvents = append(pendEvents, clock.Since(vclock.Epoch))
				mu.Unlock()
			}
		},
	})
	defer mgr.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	// pilotO hosts the orphan, pilotD is the terminal pilot of the
	// state mismatch, pilotM the running pilot that "loses" its unit.
	pilotO, err := mgr.SubmitPilot(PilotDescription{Name: "pO", Resource: "local://box", Cores: 1})
	if err != nil {
		t.Fatal(err)
	}
	pilotD, err := mgr.SubmitPilot(PilotDescription{Name: "pD", Resource: "local://box", Cores: 4, Walltime: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	pilotM, err := mgr.SubmitPilot(PilotDescription{Name: "pM", Resource: "local://box", Cores: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []*Pilot{pilotO, pilotD, pilotM} {
		if err := p.WaitRunning(ctx); err != nil {
			t.Fatal(err)
		}
	}

	// uDone completes instantly on pilotO (the only 1-core-sized fit in
	// submission order); uRun occupies pilotM for an hour; uPend fits
	// nowhere and stays queued.
	uDone, err := mgr.SubmitUnit(UnitDescription{
		Name: "done", Cores: 1,
		Run: func(context.Context, TaskContext) error { return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	if s, werr := uDone.Wait(ctx); s != UnitDone {
		t.Fatalf("uDone ended %v (%v)", s, werr)
	}
	uRun, err := mgr.SubmitUnit(UnitDescription{
		Name: "run", Cores: 8,
		Run: func(ctx context.Context, tc TaskContext) error {
			tc.Sleep(ctx, time.Hour)
			return ctx.Err()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	uPend, err := mgr.SubmitUnit(UnitDescription{
		Name: "pend", Cores: 32, MaxRetries: 3,
		Run: func(context.Context, TaskContext) error { return nil },
	})
	if err != nil {
		t.Fatal(err)
	}

	if s, _ := pilotD.Wait(ctx); !s.Terminal() {
		t.Fatalf("walltime pilot ended %v, want terminal", s)
	}
	sleepUntil(ctx, clock, 10*time.Second)
	if uRun.State() != UnitRunning {
		t.Fatalf("uRun is %v at injection time, want Running", uRun.State())
	}

	// Inject the three drifts at t=10s, under the documented lock order.
	// Orphan: the agent re-acquired a terminal unit's slot.
	pilotO.mu.Lock()
	pilotO.running[uDone] = struct{}{}
	pilotO.freeCores -= uDone.desc.Cores
	pilotO.mu.Unlock()
	// State mismatch: a live unit bound to an already-terminal pilot.
	uPend.mu.Lock()
	uPend.state = UnitScheduled
	uPend.pilot = pilotD
	uPend.mu.Unlock()
	// Missing on agent: a running pilot lost a bound unit's bookkeeping.
	pilotM.mu.Lock()
	delete(pilotM.running, uRun)
	pilotM.freeCores += uRun.desc.Cores
	pilotM.mu.Unlock()

	// Poll every virtual second, offset half a second past the reconcile
	// ticks so each sample sees a fully settled instant. Scans run at
	// t=30s (first sighting) and t=60s (confirmation + correction).
	var obs reconObservation
	for off := 10*time.Second + 500*time.Millisecond; off <= 70*time.Second; off += time.Second {
		sleepUntil(ctx, clock, off)
		if obs.OrphanFixedAt == 0 && pilotO.FreeCores() == 1 {
			obs.OrphanFixedAt = off
		}
		if obs.MissingFixedAt == 0 && pilotM.FreeCores() == 0 {
			obs.MissingFixedAt = off
		}
	}

	// The corrected world: reservations restored, the mismatched unit
	// requeued with one retry charged, the running unit untouched.
	if uRun.State() != UnitRunning || pilotM.RunningUnits() != 1 {
		t.Fatalf("uRun %v / pilotM holds %d units after correction, want Running / 1",
			uRun.State(), pilotM.RunningUnits())
	}
	if uPend.State() != UnitPending {
		t.Fatalf("uPend is %v after correction, want Pending (requeued)", uPend.State())
	}
	mgr.mu.Lock()
	obs.PendCharges = mgr.planner.Charges(uPend.id)
	mgr.mu.Unlock()
	mu.Lock()
	obs.PendEvents = append([]time.Duration(nil), pendEvents...)
	mu.Unlock()
	return obs
}

func TestReconcilerCorrectsInjectedDriftDeterministically(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	base := runReconcileDriftWorkload(t)

	// All three corrections land at the second 30s scan after the t=10s
	// injection (anti-flap: sighted at 30s, corrected at 60s), observed by
	// the first poll afterwards.
	fixedAt := 60*time.Second + 500*time.Millisecond
	if base.OrphanFixedAt != fixedAt {
		t.Errorf("orphan corrected at %v, want %v", base.OrphanFixedAt, fixedAt)
	}
	if base.MissingFixedAt != fixedAt {
		t.Errorf("missing-on-agent corrected at %v, want %v", base.MissingFixedAt, fixedAt)
	}
	wantPend := []time.Duration{0, 60 * time.Second}
	if !reflect.DeepEqual(base.PendEvents, wantPend) {
		t.Errorf("state-mismatch requeue instants = %v, want %v", base.PendEvents, wantPend)
	}
	if base.PendCharges != 1 {
		t.Errorf("state-mismatch charged %d retries, want 1", base.PendCharges)
	}

	for i := 2; i <= 5; i++ {
		if got := runReconcileDriftWorkload(t); !reflect.DeepEqual(base, got) {
			t.Fatalf("run %d diverged from run 1:\n base %+v\n got  %+v", i, base, got)
		}
	}
}
