// Package core implements the pilot-abstraction — the paper's primary
// contribution — following the P* model [6]: a Pilot is a placeholder job
// that acquires resources from heterogeneous infrastructure; a ComputeUnit
// is a self-contained task; the Manager (Pilot-Manager in P*) owns the
// shared unit queue and performs *late binding* of units to pilots through
// a pluggable Scheduler. Data-units are integrated as first-class citizens
// via the DataService interface implemented by the Pilot-Data layer.
package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"gopilot/internal/dist"
	"gopilot/internal/infra"
	"gopilot/internal/vclock"
)

// UnitState is the compute-unit lifecycle of the P* model.
type UnitState int

// Compute-unit states. Units flow New → Pending → Scheduled → Staging →
// Running → {Done, Failed, Canceled}; a unit whose pilot dies mid-run may
// return to Pending (retry).
const (
	UnitNew UnitState = iota
	UnitPending
	UnitScheduled
	UnitStaging
	UnitRunning
	UnitDone
	UnitFailed
	UnitCanceled
)

// String implements fmt.Stringer.
func (s UnitState) String() string {
	switch s {
	case UnitNew:
		return "New"
	case UnitPending:
		return "Pending"
	case UnitScheduled:
		return "Scheduled"
	case UnitStaging:
		return "Staging"
	case UnitRunning:
		return "Running"
	case UnitDone:
		return "Done"
	case UnitFailed:
		return "Failed"
	case UnitCanceled:
		return "Canceled"
	default:
		return fmt.Sprintf("UnitState(%d)", int(s))
	}
}

// Terminal reports whether the state is final.
func (s UnitState) Terminal() bool {
	return s == UnitDone || s == UnitFailed || s == UnitCanceled
}

// TaskContext is the execution environment handed to a unit's TaskFunc.
type TaskContext struct {
	// Unit is the unit being executed.
	Unit *ComputeUnit
	// Cores granted to this unit.
	Cores int
	// Site the unit runs at (for data-locality-aware application code).
	Site infra.Site
	// Alloc describes the hosting pilot's allocation.
	Alloc infra.Allocation
	// Data is the Pilot-Data service, or nil if the manager has none.
	Data DataService
	// Sleep blocks for a modeled duration, honoring cancellation — tasks
	// use it to model compute phases without binding to wall time.
	Sleep func(ctx context.Context, d time.Duration) bool
	// Compute runs a side-effect-free CPU closure as a parallel compute
	// phase: on the virtual clock the task releases the executor's
	// single-runner token, fn executes with real parallelism alongside
	// other tasks' compute phases, and the task re-enters the schedule at
	// the same virtual instant — so results stay bit-reproducible while
	// multi-core hardware is actually used. fn must not read the clock,
	// sleep, draw from streams, touch the data service, or mutate shared
	// state (see DESIGN.md "Parallel compute phase"). Returns false,
	// without running fn, if ctx is already canceled.
	Compute func(ctx context.Context, fn func()) bool
	// Stream is the unit's randomness identity on the seeding spine (the
	// "unit"/<ordinal> child of the manager's stream). Task bodies draw
	// from it — never from ambient sources — so their stochastic behavior
	// is fixed by the experiment root regardless of which pilot the unit
	// lands on, and continues across retries.
	Stream *dist.Stream
}

// TaskFunc is the body of a compute unit.
type TaskFunc func(ctx context.Context, tc TaskContext) error

// UnitDescription describes a compute unit (the P* compute-unit
// description, extended with data dependencies per Pilot-Data [66]).
type UnitDescription struct {
	// Name labels the unit.
	Name string
	// Cores is the number of cores the unit needs (default 1).
	Cores int
	// Run is the unit body.
	Run TaskFunc
	// InputData lists data-unit IDs staged to the execution site before the
	// unit starts.
	InputData []string
	// OutputData lists data-unit IDs the unit promises to produce; used by
	// data-aware schedulers for placement of downstream consumers.
	OutputData []string
	// AffinitySite is an optional placement preference.
	AffinitySite infra.Site
	// MaxRetries is the unit's shared failure budget: the number of times
	// the control plane will re-dispatch it after a pilot-caused failure,
	// so a unit is dispatched at most MaxRetries+1 times in total
	// (MaxRetries=0 → exactly one attempt, =2 → at most three). The
	// budget is charged for every pilot-caused failure — a pilot lost
	// mid-execution and a pilot that dies before the unit is picked up
	// both consume one retry. Each retry re-enters the queue after an
	// exponential backoff with deterministic jitter (plan.Backoff). Task
	// body errors are never retried.
	MaxRetries int
}

// ComputeUnit is a handle to a submitted unit.
type ComputeUnit struct {
	id     string
	desc   UnitDescription
	stream *dist.Stream // "unit"/<ordinal> child of the manager's stream

	mu        sync.Mutex
	state     UnitState
	pilot     *Pilot
	attempts  int
	err       error
	submitted time.Time
	scheduled time.Time
	started   time.Time
	ended     time.Time
	cancelled bool
	cancelRun context.CancelFunc

	done *vclock.Event
}

// ID returns the manager-assigned unit id.
func (u *ComputeUnit) ID() string { return u.id }

// Description returns the unit description.
func (u *ComputeUnit) Description() UnitDescription { return u.desc }

// Stream returns the unit's randomness identity on the seeding spine,
// fixed at submission (also available to task bodies as
// TaskContext.Stream).
func (u *ComputeUnit) Stream() *dist.Stream { return u.stream }

// State returns the current state.
func (u *ComputeUnit) State() UnitState {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.state
}

// Err returns the terminal error, if any.
func (u *ComputeUnit) Err() error {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.err
}

// Pilot returns the pilot the unit is (or was last) bound to, or nil.
func (u *ComputeUnit) Pilot() *Pilot {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.pilot
}

// Attempts returns the number of execution attempts.
func (u *ComputeUnit) Attempts() int {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.attempts
}

// Done returns a channel closed when the unit reaches a terminal state.
// Participants of a Virtual clock must use Wait instead.
func (u *ComputeUnit) Done() <-chan struct{} { return u.done.Done() }

// Wait blocks until the unit terminates or ctx is canceled.
func (u *ComputeUnit) Wait(ctx context.Context) (UnitState, error) {
	if u.done.Wait(ctx) {
		return u.State(), u.Err()
	}
	return u.State(), ctx.Err()
}

// SubmitTime returns the modeled submission time.
func (u *ComputeUnit) SubmitTime() time.Time {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.submitted
}

// StartTime returns the modeled execution start time (zero until Running).
func (u *ComputeUnit) StartTime() time.Time {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.started
}

// EndTime returns the modeled termination time.
func (u *ComputeUnit) EndTime() time.Time {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.ended
}

// WaitingTime is submission → binding: the late-binding queue delay.
func (u *ComputeUnit) WaitingTime() time.Duration {
	u.mu.Lock()
	defer u.mu.Unlock()
	if u.scheduled.IsZero() {
		return 0
	}
	return u.scheduled.Sub(u.submitted)
}

// Runtime is execution start → end.
func (u *ComputeUnit) Runtime() time.Duration {
	u.mu.Lock()
	defer u.mu.Unlock()
	if u.started.IsZero() || u.ended.IsZero() {
		return 0
	}
	return u.ended.Sub(u.started)
}

// TurnaroundTime is submission → end.
func (u *ComputeUnit) TurnaroundTime() time.Duration {
	u.mu.Lock()
	defer u.mu.Unlock()
	if u.ended.IsZero() {
		return 0
	}
	return u.ended.Sub(u.submitted)
}

// DataService is the contract between the pilot layer and Pilot-Data
// (package data implements it). It treats data as a first-class citizen of
// scheduling: units declare input/output data-units, schedulers query
// placement, and the runtime stages replicas with modeled transfer costs.
type DataService interface {
	// Locate returns the sites currently holding a replica of the data unit.
	Locate(id string) ([]infra.Site, bool)
	// Size returns the data unit's size in bytes.
	Size(id string) (int64, bool)
	// StageIn ensures a replica exists at the target site, paying the
	// modeled transfer cost.
	StageIn(ctx context.Context, id string, to infra.Site) error
	// Read returns the content of a data unit, reading from the named site
	// (paying a transfer if the site has no replica).
	Read(ctx context.Context, id string, at infra.Site) ([]byte, error)
	// Write creates or replaces a data unit at the given site.
	Write(ctx context.Context, id string, content []byte, at infra.Site) error
}
