package core

import (
	"context"
	"runtime"
	"testing"
	"time"

	"gopilot/internal/dist"
	"gopilot/internal/saga"
	"gopilot/internal/vclock"
)

// Close while a reconcile scan is parked on its (long) period must exit
// the reconcile loop promptly: the loop's sleep runs on the manager
// context, so cancellation wakes it at the current instant instead of
// letting the virtual clock jump to the end of the period (or leaking
// the goroutine past Close on real clocks).
func TestCloseInterruptsParkedReconcileScan(t *testing.T) {
	clock := vclock.NewVirtual(vclock.Epoch)
	clock.Adopt()
	defer clock.Leave()
	reg := saga.NewRegistry()
	reg.Register(saga.NewLocalService("box", 8, clock))

	before := runtime.NumGoroutine()
	mgr := NewManager(Config{
		Registry: reg, Clock: clock, Stream: dist.NewStream(3),
		ReconcileEvery: 6 * time.Hour,
	})
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	pilot, err := mgr.SubmitPilot(PilotDescription{Name: "p", Resource: "local://box", Cores: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := pilot.WaitRunning(ctx); err != nil {
		t.Fatal(err)
	}
	// An active unit keeps the reconcile loop in its busy branch, parked
	// mid-period on the 6h sleep. The unit itself ends at t=40s, so the
	// only thing that could hold Close past ~40s is that parked scan.
	if _, err := mgr.SubmitUnit(UnitDescription{
		Name: "short", Cores: 1,
		Run: func(ctx context.Context, tc TaskContext) error {
			tc.Sleep(ctx, 40*time.Second)
			return nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	sleepUntil(ctx, clock, 30*time.Second)

	mgr.Close()
	if at := clock.Since(vclock.Epoch); at > 2*time.Minute {
		t.Fatalf("Close returned at virtual %v: the parked reconcile scan ran out its 6h period", at)
	}
	// The loop goroutine must be gone, not merely unblocked: poll briefly
	// (wall time) for the count to settle back to the pre-manager level.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > before {
		t.Fatalf("%d goroutines after Close, %d before the manager existed: reconcile loop leaked", got, before)
	}
}

// Anti-flap under chaos timing: a fault-shaped drift injected *between*
// two reconcile scans must still converge on the standard
// sight-then-confirm cadence — sighted by the first scan after
// injection, corrected exactly at the second — and a transient drift
// that clears before its first sighting must never trigger a correction.
func TestReconcileAntiFlapWithMidScanFault(t *testing.T) {
	run := func(transient bool) (fixedAt time.Duration) {
		clock := vclock.NewVirtual(vclock.Epoch)
		clock.Adopt()
		defer clock.Leave()
		reg := saga.NewRegistry()
		reg.Register(saga.NewLocalService("box", 8, clock))
		mgr := NewManager(Config{Registry: reg, Clock: clock, Stream: dist.NewStream(4)})
		defer mgr.Close()
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()

		pilot, err := mgr.SubmitPilot(PilotDescription{Name: "p", Resource: "local://box", Cores: 4})
		if err != nil {
			t.Fatal(err)
		}
		if err := pilot.WaitRunning(ctx); err != nil {
			t.Fatal(err)
		}
		uDone, err := mgr.SubmitUnit(UnitDescription{
			Name: "done", Cores: 1,
			Run: func(context.Context, TaskContext) error { return nil },
		})
		if err != nil {
			t.Fatal(err)
		}
		if s, werr := uDone.Wait(ctx); s != UnitDone {
			t.Fatalf("uDone ended %v (%v)", s, werr)
		}
		// Keep the reconcile loop busy so scans tick at 30s, 60s, 90s.
		if _, err := mgr.SubmitUnit(UnitDescription{
			Name: "busy", Cores: 1,
			Run: func(ctx context.Context, tc TaskContext) error {
				tc.Sleep(ctx, time.Hour)
				return ctx.Err()
			},
		}); err != nil {
			t.Fatal(err)
		}

		// The fault lands at t=35s — after the 30s scan has already run,
		// the shape a chaos crash leaves behind: the agent holds a slot
		// for a unit the control plane knows is terminal (orphan drift).
		sleepUntil(ctx, clock, 35*time.Second)
		pilot.mu.Lock()
		pilot.running[uDone] = struct{}{}
		pilot.freeCores -= uDone.desc.Cores
		pilot.mu.Unlock()
		if transient {
			// The fault clears on its own before the 60s scan can sight it.
			sleepUntil(ctx, clock, 50*time.Second)
			pilot.mu.Lock()
			delete(pilot.running, uDone)
			pilot.freeCores += uDone.desc.Cores
			pilot.mu.Unlock()
		}

		for off := 35*time.Second + 500*time.Millisecond; off <= 100*time.Second; off += time.Second {
			sleepUntil(ctx, clock, off)
			if !transient && fixedAt == 0 && pilot.FreeCores() == 3 {
				fixedAt = off
			}
		}
		if transient && pilot.FreeCores() != 3 {
			t.Fatalf("transient drift left %d free cores, want 3", pilot.FreeCores())
		}
		return fixedAt
	}

	// Persistent drift: sighted at 60s, corrected at 90s (the second scan
	// after the fault), observed by the next poll.
	if fixedAt := run(false); fixedAt != 90*time.Second+500*time.Millisecond {
		t.Errorf("mid-scan fault corrected at %v, want 90.5s (second scan after injection)", fixedAt)
	}
	// Transient drift: cleared before its first sighting — the reconciler
	// must never have acted (checked inside run; a correction on a
	// self-healed fault would double-return the cores to 4+1).
	run(true)
}
