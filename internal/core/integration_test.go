package core_test

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"gopilot/internal/core"
	"gopilot/internal/data"
	"gopilot/internal/dist"
	"gopilot/internal/infra/htc"
	"gopilot/internal/saga"
	"gopilot/internal/vclock"
)

// These tests inject infrastructure failures under the pilot layer and
// check the abstraction's recovery behaviour — the "leaky abstraction"
// robustness the paper's §VI lessons demand.

func TestPilotOnEvictingHTCPoolFailsButUnitsRetryElsewhere(t *testing.T) {
	clock := vclock.NewScaled(2000)
	reg := saga.NewRegistry()
	// An HTC pool that always evicts mid-run and has no retry budget: any
	// pilot placed there will be lost while units are executing.
	pool := htc.New(htc.Config{
		Name: "flaky", Slots: 8,
		EvictionRate: 1.0, MaxRetries: 0,
		MatchDelay: dist.Constant(0.1),
		Clock:      clock, Stream: dist.NewStream(3),
	})
	defer pool.Shutdown()
	reg.Register(saga.NewHTCService(pool, clock))
	reg.Register(saga.NewLocalService("safe", 8, clock))

	mgr := core.NewManager(core.Config{Registry: reg, Clock: clock})
	defer mgr.Close()

	flaky, err := mgr.SubmitPilot(core.PilotDescription{
		Name: "flaky-pilot", Resource: "htc://flaky", Cores: 4, Walltime: 60 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	var attempts atomic.Int32
	u, err := mgr.SubmitUnit(core.UnitDescription{
		Name:       "survivor",
		MaxRetries: 3,
		Run: func(ctx context.Context, tc core.TaskContext) error {
			attempts.Add(1)
			if tc.Site == "flaky" {
				// On the doomed pilot: run until the eviction kills us.
				tc.Sleep(ctx, time.Hour)
				return ctx.Err()
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Healthy pilot appears while (or after) the flaky one dies.
	if _, err := mgr.SubmitPilot(core.PilotDescription{
		Name: "safe-pilot", Resource: "local://safe", Cores: 4,
	}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	state, err := u.Wait(ctx)
	if state != core.UnitDone {
		t.Fatalf("unit state=%v err=%v attempts=%d", state, err, attempts.Load())
	}
	if u.Pilot().Site() != "safe" {
		t.Fatalf("unit finished at %q, want the safe site", u.Pilot().Site())
	}
	// The flaky pilot must have terminated unsuccessfully.
	if ps, _ := flaky.Wait(ctx); ps == core.PilotDone {
		t.Fatalf("flaky pilot ended %v, expected failure/cancel", ps)
	}
}

func TestTwoManagersShareOneBackend(t *testing.T) {
	clock := vclock.NewScaled(2000)
	reg := saga.NewRegistry()
	reg.Register(saga.NewLocalService("shared", 64, clock))

	mgrA := core.NewManager(core.Config{Registry: reg, Clock: clock})
	defer mgrA.Close()
	mgrB := core.NewManager(core.Config{Registry: reg, Clock: clock})
	defer mgrB.Close()

	for _, m := range []*core.Manager{mgrA, mgrB} {
		if _, err := m.SubmitPilot(core.PilotDescription{Resource: "local://shared", Cores: 8}); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 8; i++ {
			if _, err := m.SubmitUnit(core.UnitDescription{Run: func(ctx context.Context, tc core.TaskContext) error {
				tc.Sleep(ctx, 200*time.Millisecond)
				return nil
			}}); err != nil {
				t.Fatal(err)
			}
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := mgrA.WaitAll(ctx); err != nil {
		t.Fatal(err)
	}
	if err := mgrB.WaitAll(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestUnitWithInputDataButNoDataServiceRuns(t *testing.T) {
	clock := vclock.NewScaled(2000)
	reg := saga.NewRegistry()
	reg.Register(saga.NewLocalService("lh", 4, clock))
	mgr := core.NewManager(core.Config{Registry: reg, Clock: clock}) // no Data
	defer mgr.Close()
	mgr.SubmitPilot(core.PilotDescription{Resource: "local://lh", Cores: 2})
	u, _ := mgr.SubmitUnit(core.UnitDescription{
		InputData: []string{"phantom"},
		Run: func(ctx context.Context, tc core.TaskContext) error {
			if tc.Data != nil {
				t.Error("task context has a data service")
			}
			return nil
		},
	})
	if s, err := u.Wait(context.Background()); s != core.UnitDone {
		t.Fatalf("state=%v err=%v", s, err)
	}
}

func TestStageInFailureFailsUnit(t *testing.T) {
	clock := vclock.NewScaled(2000)
	reg := saga.NewRegistry()
	reg.Register(saga.NewLocalService("lh", 4, clock))
	ds := data.NewService(data.Config{Clock: clock})
	ds.AddSite("lh")
	mgr := core.NewManager(core.Config{Registry: reg, Clock: clock, Data: ds})
	defer mgr.Close()
	mgr.SubmitPilot(core.PilotDescription{Resource: "local://lh", Cores: 2})
	// Input data-unit was never registered: staging must fail the unit.
	u, _ := mgr.SubmitUnit(core.UnitDescription{
		InputData: []string{"never-registered"},
		Run:       func(context.Context, core.TaskContext) error { return nil },
	})
	state, err := u.Wait(context.Background())
	if state != core.UnitFailed || err == nil {
		t.Fatalf("state=%v err=%v, want Failed on stage-in", state, err)
	}
}

func TestCancelDuringStaging(t *testing.T) {
	clock := vclock.NewScaled(2000)
	reg := saga.NewRegistry()
	reg.Register(saga.NewLocalService("siteX", 4, clock))
	// Glacial WAN so staging takes long enough to cancel into.
	ds := data.NewService(data.Config{Clock: clock, DefaultLink: data.Link{Bandwidth: 1e3, Latency: 0}})
	ds.AddSite("siteX")
	ds.Put(context.Background(), data.Unit{ID: "big", LogicalSize: 1e9, Site: "elsewhere"})
	mgr := core.NewManager(core.Config{Registry: reg, Clock: clock, Data: ds})
	defer mgr.Close()
	mgr.SubmitPilot(core.PilotDescription{Resource: "local://siteX", Cores: 2})

	staging := make(chan struct{}, 1)
	u, _ := mgr.SubmitUnit(core.UnitDescription{
		InputData: []string{"big"},
		Run:       func(context.Context, core.TaskContext) error { return nil },
	})
	go func() {
		for u.State() != core.UnitStaging {
			time.Sleep(time.Millisecond)
		}
		staging <- struct{}{}
	}()
	select {
	case <-staging:
	case <-time.After(5 * time.Second):
		t.Fatal("unit never entered Staging")
	}
	mgr.CancelUnit(u)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	state, _ := u.Wait(ctx)
	if state != core.UnitCanceled {
		t.Fatalf("state = %v, want Canceled during staging", state)
	}
}

func TestManyUnitsManyRetriesDrainDeterministically(t *testing.T) {
	clock := vclock.NewScaled(2000)
	reg := saga.NewRegistry()
	reg.Register(saga.NewLocalService("lh", 16, clock))
	mgr := core.NewManager(core.Config{Registry: reg, Clock: clock})
	defer mgr.Close()
	mgr.SubmitPilot(core.PilotDescription{Resource: "local://lh", Cores: 8})
	var flaky atomic.Int32
	for i := 0; i < 40; i++ {
		mgr.SubmitUnit(core.UnitDescription{
			MaxRetries: 2,
			Run: func(ctx context.Context, tc core.TaskContext) error {
				// Deterministic single transient failure for every 4th call.
				if flaky.Add(1)%4 == 0 {
					return context.DeadlineExceeded
				}
				return nil
			},
		})
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := mgr.WaitAll(ctx); err != nil {
		t.Fatal(err)
	}
	done, failed := 0, 0
	for _, u := range mgr.Units() {
		switch u.State() {
		case core.UnitDone:
			done++
		case core.UnitFailed:
			failed++
		}
	}
	// Task-body errors are not retried (only pilot loss is): exactly the
	// failures injected above fail, everything else completes.
	if done+failed != 40 {
		t.Fatalf("done=%d failed=%d, want 40 total", done, failed)
	}
	if failed == 0 || done == 0 {
		t.Fatalf("degenerate outcome: done=%d failed=%d", done, failed)
	}
}
