// Package data implements Pilot-Data [66]: data-units as first-class
// citizens of resource management. A Service federates per-site object
// stores behind one namespace, models transfer costs between sites
// (latency + size/bandwidth, slept in virtual time), supports replication
// and exposes the placement queries (Locate/Size) that data-aware
// schedulers use.
//
// Content versus logical size: a data-unit carries real bytes (Content)
// that application kernels compute on, and a LogicalSize used by the
// transfer-cost model. Experiments that sweep multi-gigabyte workloads set
// LogicalSize large while keeping Content small, preserving the paper's
// transfer/compute ratios without allocating gigabytes.
package data

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"gopilot/internal/core"
	"gopilot/internal/infra"
	"gopilot/internal/vclock"
)

// Unit describes a data-unit to register with the service.
type Unit struct {
	// ID is the namespace-unique identifier.
	ID string
	// Content is the actual payload available to tasks (may be nil for
	// purely synthetic units).
	Content []byte
	// LogicalSize is the size used by the transfer model; when zero it
	// defaults to len(Content).
	LogicalSize int64
	// Site is the initial placement.
	Site infra.Site
}

// Link models the connectivity between two sites.
type Link struct {
	// Bandwidth in bytes per modeled second.
	Bandwidth float64
	// Latency per transfer.
	Latency time.Duration
}

// Config configures a Service.
type Config struct {
	// Clock supplies virtual time; defaults to vclock.Real.
	Clock vclock.Clock
	// LocalBandwidth is the within-site read/write bandwidth (default
	// 500 MB/s — parallel filesystem class).
	LocalBandwidth float64
	// DefaultLink is used for site pairs with no explicit link (default
	// 12.5 MB/s / 50 ms — a 100 Mbit WAN).
	DefaultLink Link
}

// Stats aggregates the service's observed data traffic.
type Stats struct {
	// LocalReads counts reads served by a co-located replica.
	LocalReads int
	// RemoteReads counts reads that paid a cross-site transfer.
	RemoteReads int
	// Replications counts StageIn copies performed.
	Replications int
	// BytesMoved is the cross-site volume in (logical) bytes.
	BytesMoved int64
	// TransferTime is the summed modeled time spent in cross-site
	// transfers.
	TransferTime time.Duration
}

type object struct {
	content []byte
	logical int64
	// replicas is the set of sites holding the object.
	replicas map[infra.Site]struct{}
}

// Service is the Pilot-Data implementation of core.DataService.
type Service struct {
	cfg Config

	mu      sync.Mutex
	sites   map[infra.Site]struct{}
	objects map[string]*object
	links   map[[2]infra.Site]Link
	stats   Stats
}

// ErrUnknownUnit is returned for operations on unregistered data-units.
var ErrUnknownUnit = errors.New("data: unknown data-unit")

// ErrUnknownSite is returned when a site has no registered store.
var ErrUnknownSite = errors.New("data: unknown site")

// NewService creates a Pilot-Data service.
func NewService(cfg Config) *Service {
	if cfg.Clock == nil {
		cfg.Clock = vclock.NewReal()
	}
	if cfg.LocalBandwidth <= 0 {
		cfg.LocalBandwidth = 500e6
	}
	if cfg.DefaultLink.Bandwidth <= 0 {
		cfg.DefaultLink = Link{Bandwidth: 12.5e6, Latency: 50 * time.Millisecond}
	}
	return &Service{
		cfg:     cfg,
		sites:   make(map[infra.Site]struct{}),
		objects: make(map[string]*object),
		links:   make(map[[2]infra.Site]Link),
	}
}

// AddSite registers a site store.
func (s *Service) AddSite(site infra.Site) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sites[site] = struct{}{}
}

// SetLink installs a directed link model between two sites (set both
// directions for symmetric links).
func (s *Service) SetLink(from, to infra.Site, l Link) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.links[[2]infra.Site{from, to}] = l
}

// link returns the transfer model from → to.
func (s *Service) link(from, to infra.Site) Link {
	if l, ok := s.links[[2]infra.Site{from, to}]; ok {
		return l
	}
	return s.cfg.DefaultLink
}

// Put registers a data-unit at its initial site (creating the site store
// on demand). It pays the local write cost.
func (s *Service) Put(ctx context.Context, u Unit) error {
	if u.ID == "" {
		return errors.New("data: unit needs an ID")
	}
	if u.Site == "" {
		return errors.New("data: unit needs a site")
	}
	logical := u.LogicalSize
	if logical == 0 {
		logical = int64(len(u.Content))
	}
	// Local write cost.
	if !s.cfg.Clock.Sleep(ctx, s.localCost(logical)) {
		return ctx.Err()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sites[u.Site] = struct{}{}
	s.objects[u.ID] = &object{
		content:  u.Content,
		logical:  logical,
		replicas: map[infra.Site]struct{}{u.Site: {}},
	}
	return nil
}

// localCost is the modeled time of a within-site read or write.
func (s *Service) localCost(bytes int64) time.Duration {
	return time.Duration(float64(bytes) / s.cfg.LocalBandwidth * float64(time.Second))
}

// transferCost is the modeled time of moving bytes across a link.
func (s *Service) transferCost(l Link, bytes int64) time.Duration {
	return l.Latency + time.Duration(float64(bytes)/l.Bandwidth*float64(time.Second))
}

// Locate implements core.DataService. Sites are returned in deterministic
// (sorted) order.
func (s *Service) Locate(id string) ([]infra.Site, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	o, ok := s.objects[id]
	if !ok {
		return nil, false
	}
	out := make([]infra.Site, 0, len(o.replicas))
	for site := range o.replicas {
		out = append(out, site)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, true
}

// Size implements core.DataService.
func (s *Service) Size(id string) (int64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	o, ok := s.objects[id]
	if !ok {
		return 0, false
	}
	return o.logical, true
}

// StageIn implements core.DataService: it replicates the unit to the
// target site, paying one cross-site transfer if no replica is local.
func (s *Service) StageIn(ctx context.Context, id string, to infra.Site) error {
	s.mu.Lock()
	o, ok := s.objects[id]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrUnknownUnit, id)
	}
	if _, have := o.replicas[to]; have {
		s.mu.Unlock()
		return nil
	}
	src, ok := nearestReplica(o, to)
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("data: unit %q has no replicas", id)
	}
	cost := s.transferCost(s.link(src, to), o.logical)
	s.mu.Unlock()

	if !s.cfg.Clock.Sleep(ctx, cost) {
		return ctx.Err()
	}

	s.mu.Lock()
	o.replicas[to] = struct{}{}
	s.sites[to] = struct{}{}
	s.stats.Replications++
	s.stats.BytesMoved += o.logical
	s.stats.TransferTime += cost
	s.mu.Unlock()
	return nil
}

// Read implements core.DataService: reads the content at the given site,
// paying local cost for a resident replica or a cross-site transfer
// otherwise (read-through, no replica is created).
func (s *Service) Read(ctx context.Context, id string, at infra.Site) ([]byte, error) {
	s.mu.Lock()
	o, ok := s.objects[id]
	if !ok {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrUnknownUnit, id)
	}
	var cost time.Duration
	var remote bool
	if _, have := o.replicas[at]; have {
		cost = s.localCost(o.logical)
	} else {
		src, okSrc := nearestReplica(o, at)
		if !okSrc {
			s.mu.Unlock()
			return nil, fmt.Errorf("data: unit %q has no replicas", id)
		}
		cost = s.transferCost(s.link(src, at), o.logical)
		remote = true
	}
	content := o.content
	logical := o.logical
	s.mu.Unlock()

	if !s.cfg.Clock.Sleep(ctx, cost) {
		return nil, ctx.Err()
	}
	s.mu.Lock()
	if remote {
		s.stats.RemoteReads++
		s.stats.BytesMoved += logical
		s.stats.TransferTime += cost
	} else {
		s.stats.LocalReads++
	}
	s.mu.Unlock()
	return content, nil
}

// Write implements core.DataService: creates or replaces a data-unit at a
// site, paying the local write cost.
func (s *Service) Write(ctx context.Context, id string, content []byte, at infra.Site) error {
	return s.Put(ctx, Unit{ID: id, Content: content, Site: at})
}

// Remove deletes a data-unit from the namespace.
func (s *Service) Remove(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.objects, id)
}

// Replicas returns the replica count of a unit (0 if unknown).
func (s *Service) Replicas(id string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	o, ok := s.objects[id]
	if !ok {
		return 0
	}
	return len(o.replicas)
}

// Stats returns a snapshot of the observed traffic.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// ResetStats zeroes the traffic counters (between experiment phases).
func (s *Service) ResetStats() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats = Stats{}
}

// nearestReplica picks the source replica for a transfer to `to`. Sites
// are ordered deterministically; a same-site replica would have been found
// by the caller already.
func nearestReplica(o *object, to infra.Site) (infra.Site, bool) {
	if len(o.replicas) == 0 {
		return "", false
	}
	sites := make([]infra.Site, 0, len(o.replicas))
	for s := range o.replicas {
		sites = append(sites, s)
	}
	sort.Slice(sites, func(i, j int) bool { return sites[i] < sites[j] })
	return sites[0], true
}

var _ core.DataService = (*Service)(nil)
