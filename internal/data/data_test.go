package data

import (
	"context"
	"errors"
	"testing"
	"time"

	"gopilot/internal/infra"
	"gopilot/internal/vclock"
)

func fastClock() vclock.Clock { return vclock.NewScaled(2000) }

func newSvc(t *testing.T) *Service {
	t.Helper()
	s := NewService(Config{
		Clock:          fastClock(),
		LocalBandwidth: 500e6,
		DefaultLink:    Link{Bandwidth: 12.5e6, Latency: 50 * time.Millisecond},
	})
	s.AddSite("siteA")
	s.AddSite("siteB")
	return s
}

func TestPutLocateSize(t *testing.T) {
	s := newSvc(t)
	if err := s.Put(context.Background(), Unit{ID: "d1", Content: []byte("hello"), Site: "siteA"}); err != nil {
		t.Fatal(err)
	}
	sites, ok := s.Locate("d1")
	if !ok || len(sites) != 1 || sites[0] != "siteA" {
		t.Fatalf("Locate = %v %v", sites, ok)
	}
	size, ok := s.Size("d1")
	if !ok || size != 5 {
		t.Fatalf("Size = %d %v, want 5", size, ok)
	}
}

func TestLogicalSizeOverridesContentLength(t *testing.T) {
	s := newSvc(t)
	s.Put(context.Background(), Unit{ID: "big", Content: []byte("x"), LogicalSize: 1 << 30, Site: "siteA"})
	size, _ := s.Size("big")
	if size != 1<<30 {
		t.Fatalf("Size = %d, want 1 GiB", size)
	}
}

func TestLocalReadIsCheapRemoteReadPaysTransfer(t *testing.T) {
	clock := vclock.NewScaled(2000)
	s := NewService(Config{Clock: clock, LocalBandwidth: 500e6, DefaultLink: Link{Bandwidth: 12.5e6, Latency: 100 * time.Millisecond}})
	// 125 MB logical: local ≈ 0.25s, remote ≈ 10s + latency.
	s.Put(context.Background(), Unit{ID: "d", Content: []byte("payload"), LogicalSize: 125e6, Site: "siteA"})

	t0 := clock.Now()
	if _, err := s.Read(context.Background(), "d", "siteA"); err != nil {
		t.Fatal(err)
	}
	localCost := clock.Since(t0)

	t1 := clock.Now()
	content, err := s.Read(context.Background(), "d", "siteB")
	if err != nil {
		t.Fatal(err)
	}
	remoteCost := clock.Since(t1)

	if string(content) != "payload" {
		t.Errorf("content = %q", content)
	}
	if remoteCost < 4*localCost {
		t.Errorf("remote read %v not ≫ local read %v", remoteCost, localCost)
	}
	st := s.Stats()
	if st.LocalReads != 1 || st.RemoteReads != 1 {
		t.Errorf("stats = %+v, want 1 local / 1 remote", st)
	}
	if st.BytesMoved != 125e6 {
		t.Errorf("BytesMoved = %d, want 125e6", st.BytesMoved)
	}
}

func TestReadThroughDoesNotReplicate(t *testing.T) {
	s := newSvc(t)
	s.Put(context.Background(), Unit{ID: "d", Content: []byte("x"), Site: "siteA"})
	s.Read(context.Background(), "d", "siteB")
	if n := s.Replicas("d"); n != 1 {
		t.Fatalf("replicas = %d, want 1 (read-through)", n)
	}
}

func TestStageInReplicates(t *testing.T) {
	s := newSvc(t)
	s.Put(context.Background(), Unit{ID: "d", Content: []byte("x"), LogicalSize: 1e6, Site: "siteA"})
	if err := s.StageIn(context.Background(), "d", "siteB"); err != nil {
		t.Fatal(err)
	}
	if n := s.Replicas("d"); n != 2 {
		t.Fatalf("replicas = %d, want 2", n)
	}
	sites, _ := s.Locate("d")
	if len(sites) != 2 {
		t.Fatalf("Locate = %v", sites)
	}
	// Second stage-in to the same site is free and idempotent.
	before := s.Stats().Replications
	s.StageIn(context.Background(), "d", "siteB")
	if s.Stats().Replications != before {
		t.Error("idempotent stage-in incremented replication count")
	}
}

func TestStageInUnknownUnit(t *testing.T) {
	s := newSvc(t)
	if err := s.StageIn(context.Background(), "nope", "siteA"); !errors.Is(err, ErrUnknownUnit) {
		t.Fatalf("err = %v, want ErrUnknownUnit", err)
	}
}

func TestReadUnknownUnit(t *testing.T) {
	s := newSvc(t)
	if _, err := s.Read(context.Background(), "nope", "siteA"); !errors.Is(err, ErrUnknownUnit) {
		t.Fatalf("err = %v, want ErrUnknownUnit", err)
	}
}

func TestWriteCreatesUnitAtSite(t *testing.T) {
	s := newSvc(t)
	if err := s.Write(context.Background(), "out", []byte("result"), "siteB"); err != nil {
		t.Fatal(err)
	}
	sites, ok := s.Locate("out")
	if !ok || sites[0] != "siteB" {
		t.Fatalf("Locate = %v %v", sites, ok)
	}
}

func TestCustomLinkUsed(t *testing.T) {
	clock := vclock.NewScaled(2000)
	s := NewService(Config{Clock: clock, LocalBandwidth: 1e9, DefaultLink: Link{Bandwidth: 1e6, Latency: time.Second}})
	// Fast dedicated link A→B: 1 GB at 1 GB/s ≈ 1s modeled, versus ≈1000s
	// over the 1 MB/s default link.
	s.SetLink("siteA", "siteB", Link{Bandwidth: 1e9, Latency: time.Millisecond})
	s.Put(context.Background(), Unit{ID: "d", LogicalSize: 1e9, Site: "siteA"})
	t0 := clock.Now()
	if err := s.StageIn(context.Background(), "d", "siteB"); err != nil {
		t.Fatal(err)
	}
	if cost := clock.Since(t0); cost > 30*time.Second {
		t.Errorf("transfer over fast link took %v, want ≈1s", cost)
	}
}

func TestRemove(t *testing.T) {
	s := newSvc(t)
	s.Put(context.Background(), Unit{ID: "d", Content: []byte("x"), Site: "siteA"})
	s.Remove("d")
	if _, ok := s.Locate("d"); ok {
		t.Fatal("unit still located after Remove")
	}
}

func TestPutValidation(t *testing.T) {
	s := newSvc(t)
	if err := s.Put(context.Background(), Unit{Site: "siteA"}); err == nil {
		t.Error("missing ID accepted")
	}
	if err := s.Put(context.Background(), Unit{ID: "x"}); err == nil {
		t.Error("missing site accepted")
	}
}

func TestResetStats(t *testing.T) {
	s := newSvc(t)
	s.Put(context.Background(), Unit{ID: "d", Content: []byte("x"), Site: "siteA"})
	s.Read(context.Background(), "d", "siteA")
	s.ResetStats()
	if st := s.Stats(); st.LocalReads != 0 {
		t.Fatalf("stats not reset: %+v", st)
	}
}

func TestStageInCanceled(t *testing.T) {
	clock := vclock.NewScaled(2000)
	s := NewService(Config{Clock: clock, DefaultLink: Link{Bandwidth: 1, Latency: 0}}) // absurdly slow
	s.Put(context.Background(), Unit{ID: "d", LogicalSize: 1e9, Site: "siteA"})
	ctx, cancel := context.WithCancel(context.Background())
	go cancel()
	if err := s.StageIn(ctx, "d", "siteB"); err == nil {
		t.Fatal("expected cancellation")
	}
	if s.Replicas("d") != 1 {
		t.Fatal("canceled transfer created replica")
	}
}

func TestConcurrentAccessIsSafe(t *testing.T) {
	s := newSvc(t)
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		g := g
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 20; i++ {
				id := "d" + string(rune('a'+g))
				s.Put(context.Background(), Unit{ID: id, Content: []byte("x"), Site: "siteA"})
				s.Read(context.Background(), id, "siteA")
				s.StageIn(context.Background(), id, "siteB")
				s.Locate(id)
			}
		}()
	}
	for g := 0; g < 8; g++ {
		<-done
	}
}

func TestSiteConstant(t *testing.T) {
	if infra.Site("siteA") != infra.Site("siteA") {
		t.Fatal("site identity broken")
	}
}
