package chaos

import (
	"fmt"
	"sync"
	"time"

	"gopilot/internal/core"
	"gopilot/internal/streaming"
	"gopilot/internal/vclock"
)

// Violation is one invariant breach, timestamped in virtual time.
type Violation struct {
	// Invariant names the broken invariant (stable identifiers:
	// "exactly-once", "cursor-rewind", "stranded-barrier",
	// "retry-budget", "leaked-reservation", "completeness",
	// "shard-placement", "diverged-replica-after-repair", plus whatever
	// a scenario reports through Violate).
	Invariant string
	// At is the virtual instant of detection (offset from vclock.Epoch).
	At time.Duration
	// Detail describes the breach.
	Detail string
}

// String implements fmt.Stringer.
func (v Violation) String() string {
	return fmt.Sprintf("[%s @%v] %s", v.Invariant, v.At, v.Detail)
}

// Checker is the invariant suite that runs continuously during a chaos
// scenario. The streaming-side checks are fed by hooks (the group
// handler calls Handled, BrokerConfig.OnCommit calls OnCommit); the
// batch-side checks run once the workload quiesces (CheckUnits,
// CheckPilots after reconcile). All methods are safe for concurrent use.
type Checker struct {
	clock vclock.Clock

	mu         sync.Mutex
	handled    map[uint64]int   // partition<<48|offset -> times processed
	commits    map[string]int64 // "topic/part" -> last commit mark seen
	violations []Violation
}

// NewChecker builds a checker; clock timestamps violations (virtual
// offsets from vclock.Epoch).
func NewChecker(clock vclock.Clock) *Checker {
	return &Checker{
		clock:   clock,
		handled: make(map[uint64]int),
		commits: make(map[string]int64),
	}
}

// Violate records a breach. Scenario code uses it for checks the suite
// cannot see from its hooks (e.g. liveness watchdogs).
func (c *Checker) Violate(invariant, format string, args ...any) {
	v := Violation{
		Invariant: invariant,
		At:        c.clock.Now().Sub(vclock.Epoch),
		Detail:    fmt.Sprintf(format, args...),
	}
	c.mu.Lock()
	c.violations = append(c.violations, v)
	c.mu.Unlock()
}

// Violations returns the breaches recorded so far.
func (c *Checker) Violations() []Violation {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Violation(nil), c.violations...)
}

// Ok reports whether no invariant has been breached.
func (c *Checker) Ok() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.violations) == 0
}

// Handled asserts exactly-once processing: the group handler calls it
// per message, and a (partition, offset) seen twice is a duplicate —
// under the generation barrier no partition ever has two simultaneous
// owners, so a second delivery means an ownership overlap (e.g. the
// barrier-carry defect) let a retiree and its successor process the same
// offsets.
func (c *Checker) Handled(partition int, offset int64) {
	key := uint64(partition)<<48 | uint64(offset)
	c.mu.Lock()
	c.handled[key]++
	n := c.handled[key]
	c.mu.Unlock()
	if n > 1 {
		c.Violate("exactly-once", "partition %d offset %d processed %d times", partition, offset, n)
	}
}

// HandledCount returns how many distinct (partition, offset) pairs were
// processed — the completeness numerator.
func (c *Checker) HandledCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.handled)
}

// OnCommit asserts the consumer cursor never rewinds; wire it to
// streaming.BrokerConfig.OnCommit. The broker reports applied commits
// only, so each must strictly advance the last mark this checker saw and
// start where the previous one ended.
func (c *Checker) OnCommit(topic string, partition int, from, through int64) {
	key := fmt.Sprintf("%s/%d", topic, partition)
	c.mu.Lock()
	prev, seen := c.commits[key]
	if !seen || through > prev {
		c.commits[key] = through
	}
	c.mu.Unlock()
	if through <= from {
		c.Violate("cursor-rewind", "%s: commit through %d does not advance from %d", key, through, from)
		return
	}
	if seen && from != prev {
		c.Violate("cursor-rewind", "%s: commit starts at %d, last mark was %d", key, from, prev)
	}
}

// CheckCompleteness asserts every produced message was processed (run it
// after the workload quiesces, with stalls recovered).
func (c *Checker) CheckCompleteness(produced int) {
	if got := c.HandledCount(); got != produced {
		c.Violate("completeness", "processed %d of %d produced messages", got, produced)
	}
}

// CheckBarrier asserts no generation barrier is stranded once the group
// has quiesced: every membership change must eventually activate.
func (c *Checker) CheckBarrier(g *streaming.Group) {
	if n := g.BarrierPending(); n > 0 {
		c.Violate("stranded-barrier", "generation barrier still waiting on %d workers", n)
	}
}

// CheckPlacement asserts a federated cluster reconverged after shard
// losses: once the workload quiesces, every partition must have a live
// leader and a full replica set — full meaning min(replication target,
// live shards), since fewer live shards than the target leaves nothing
// to recruit — with no recruit still syncing.
func (c *Checker) CheckPlacement(cl *streaming.Cluster) {
	want := cl.Replication()
	if live := len(cl.LiveShards()); want > live {
		want = live
	}
	for _, p := range cl.Placement() {
		if len(p.Replicas) < want {
			c.Violate("shard-placement", "%s[%d] has %d of %d replicas after quiesce",
				p.Topic, p.Partition, len(p.Replicas), want)
		}
		if p.Syncing {
			c.Violate("shard-placement", "%s[%d] still re-replicating after quiesce", p.Topic, p.Partition)
		}
	}
}

// CheckReplicas asserts replica-log convergence: after the workload
// quiesces (faults recovered, replication lag drained), every replica's
// epoch-span chain must agree with its leader's — a replica still
// holding a suffix the leader never acknowledged means divergence repair
// failed to truncate and re-stream it ("diverged-replica-after-repair",
// the invariant the rehomed stale-handoff defect trips).
func (c *Checker) CheckReplicas(cl *streaming.Cluster, topic string) {
	for _, d := range cl.CheckReplicaConsistency(topic) {
		c.Violate("diverged-replica-after-repair", "%s", d)
	}
}

// CheckUnits asserts retry-budget conservation: a unit is dispatched at
// most MaxRetries+1 times, whatever mix of crashes, outages and
// reconcile corrections it survived, and every unit has reached a
// terminal state.
func (c *Checker) CheckUnits(units []*core.ComputeUnit) {
	for _, u := range units {
		if budget := u.Description().MaxRetries + 1; u.Attempts() > budget {
			c.Violate("retry-budget", "unit %s: %d attempts exceed budget %d", u.ID(), u.Attempts(), budget)
		}
		if !u.State().Terminal() {
			c.Violate("completeness", "unit %s still %v after quiesce", u.ID(), u.State())
		}
	}
}

// CheckPilots asserts no leaked reservations: after the workload
// quiesced and reconcile ran, every still-running pilot must be fully
// drained — all cores free, nothing running or queued. A shortfall means
// a crash path returned a unit without returning its cores.
func (c *Checker) CheckPilots(pilots []*core.Pilot) {
	for _, p := range pilots {
		if p.State() != core.PilotRunning {
			continue
		}
		if r := p.RunningUnits(); r > 0 {
			c.Violate("leaked-reservation", "pilot %s: %d units still running after quiesce", p.ID(), r)
		}
		if q := p.QueuedUnits(); q > 0 {
			c.Violate("leaked-reservation", "pilot %s: %d units still queued after quiesce", p.ID(), q)
		}
		if free, total := p.FreeCores(), p.TotalCores(); free != total {
			c.Violate("leaked-reservation", "pilot %s: %d of %d cores free after quiesce", p.ID(), free, total)
		}
	}
}
