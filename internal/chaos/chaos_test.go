package chaos

import (
	"reflect"
	"runtime"
	"sort"
	"testing"
	"time"

	"gopilot/internal/dist"
	"gopilot/internal/vclock"
)

func testConfig() Config {
	return Config{
		Horizon: 5 * time.Minute,
		Counts: map[Kind]int{
			BackendOutage:  2,
			PilotCrash:     3,
			EvictStorm:     1,
			PartitionStall: 2,
			CommitSkew:     1,
			WorkerChurn:    2,
		},
	}
}

// Same seed, same plan — bit-identical across 5 runs under the race
// detector at GOMAXPROCS=4 (the determinism contract a reproducing seed
// rests on).
func TestCompileDeterministic(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	base := Compile(dist.NewStream(1234), testConfig())
	if len(base.Faults) != 11 {
		t.Fatalf("got %d faults, want 11", len(base.Faults))
	}
	for run := 1; run <= 5; run++ {
		p := Compile(dist.NewStream(1234), testConfig())
		if !reflect.DeepEqual(p, base) {
			t.Fatalf("run %d: plan diverged from run 0", run)
		}
		if p.Hash() != base.Hash() {
			t.Fatalf("run %d: hash diverged", run)
		}
	}
}

func TestCompileSeedSensitive(t *testing.T) {
	a := Compile(dist.NewStream(1), testConfig())
	b := Compile(dist.NewStream(2), testConfig())
	if a.Hash() == b.Hash() {
		t.Fatal("different seeds produced identical plans")
	}
}

// Changing one kind's count must not shift another kind's draws: each
// fault has its own labeled stream slot.
func TestCompileKindInsensitive(t *testing.T) {
	cfg := testConfig()
	base := Compile(dist.NewStream(7), cfg)
	cfg.Counts = map[Kind]int{BackendOutage: 2} // drop every other kind
	only := Compile(dist.NewStream(7), cfg)
	pick := func(p Plan) []Fault {
		var out []Fault
		for _, f := range p.Faults {
			if f.Kind == BackendOutage {
				out = append(out, f)
			}
		}
		return out
	}
	if !reflect.DeepEqual(pick(base), pick(only)) {
		t.Fatal("backend-outage faults shifted when other kinds were removed")
	}
}

func TestCompileSortedAndBounded(t *testing.T) {
	cfg := testConfig()
	p := Compile(dist.NewStream(99), cfg)
	if !sort.SliceIsSorted(p.Faults, func(a, b int) bool {
		if p.Faults[a].At != p.Faults[b].At {
			return p.Faults[a].At < p.Faults[b].At
		}
		if p.Faults[a].Kind != p.Faults[b].Kind {
			return p.Faults[a].Kind < p.Faults[b].Kind
		}
		return p.Faults[a].Ordinal < p.Faults[b].Ordinal
	}) {
		t.Fatal("plan not sorted by (At, Kind, Ordinal)")
	}
	for _, f := range p.Faults {
		if f.At < 0 || f.At >= cfg.Horizon {
			t.Fatalf("%v: At outside [0, horizon)", f)
		}
		if f.Kind.windowed() && f.Until <= f.At {
			t.Fatalf("%v: windowed fault without recovery window", f)
		}
		if f.Kind == CommitSkew && f.Delay <= 0 {
			t.Fatalf("%v: commit skew without delay", f)
		}
	}
}

func TestTruncate(t *testing.T) {
	p := Compile(dist.NewStream(5), testConfig())
	half := p.Truncate(5)
	if len(half.Faults) != 5 {
		t.Fatalf("got %d faults, want 5", len(half.Faults))
	}
	if !reflect.DeepEqual(half.Faults, p.Faults[:5]) {
		t.Fatal("truncation is not a prefix")
	}
	if got := p.Truncate(100); len(got.Faults) != len(p.Faults) {
		t.Fatal("over-truncation changed length")
	}
	if got := p.Truncate(-1); len(got.Faults) != 0 {
		t.Fatal("negative truncation kept faults")
	}
}

func TestBisectFaults(t *testing.T) {
	// Failure appears from prefix length 7 on.
	calls := 0
	got := BisectFaults(11, func(n int) bool { calls++; return n >= 7 })
	if got != 7 {
		t.Fatalf("bisected to %d, want 7", got)
	}
	if calls > 5 {
		t.Fatalf("bisection used %d probes for 12 candidates", calls)
	}
	if got := BisectFaults(4, func(n int) bool { return false }); got != 5 {
		t.Fatalf("no-failure bisection returned %d, want total+1", got)
	}
}

func TestFirstDivergentBlock(t *testing.T) {
	a := vclock.RecorderState{Stride: 100, Checkpoints: []uint64{1, 2, 3, 4}}
	b := vclock.RecorderState{Stride: 100, Checkpoints: []uint64{1, 2, 9, 9}}
	from, to, ok := FirstDivergentBlock(a, b)
	if !ok || from != 200 || to != 300 {
		t.Fatalf("got (%d,%d,%v), want (200,300,true)", from, to, ok)
	}
	if _, _, ok := FirstDivergentBlock(a, a); ok {
		t.Fatal("identical traces reported divergent")
	}
	if _, _, ok := FirstDivergentBlock(a, vclock.RecorderState{Stride: 50}); ok {
		t.Fatal("stride mismatch must not report a block")
	}
}

func TestFirstDivergence(t *testing.T) {
	mk := func(seqs ...uint64) []vclock.TraceEntry {
		out := make([]vclock.TraceEntry, len(seqs))
		for i, s := range seqs {
			out[i] = vclock.TraceEntry{N: uint64(i + 1), Kind: vclock.TraceGrant, Seq: s}
		}
		return out
	}
	if got := FirstDivergence(mk(1, 2, 3), mk(1, 2, 4)); got != 2 {
		t.Fatalf("got %d, want 2", got)
	}
	if got := FirstDivergence(mk(1, 2), mk(1, 2, 3)); got != -1 {
		t.Fatalf("prefix traces: got %d, want -1", got)
	}
}

func TestCheckerStreamingInvariants(t *testing.T) {
	clk := vclock.NewManual(vclock.Epoch)
	c := NewChecker(clk)
	c.Handled(0, 0)
	c.Handled(0, 1)
	c.Handled(1, 0)
	if !c.Ok() {
		t.Fatalf("clean handles flagged: %v", c.Violations())
	}
	c.Handled(0, 1) // duplicate
	if c.Ok() {
		t.Fatal("duplicate handle not flagged")
	}

	c2 := NewChecker(clk)
	c2.OnCommit("t", 0, 0, 10)
	c2.OnCommit("t", 0, 10, 25)
	if !c2.Ok() {
		t.Fatalf("monotone commits flagged: %v", c2.Violations())
	}
	c2.OnCommit("t", 0, 5, 30) // gap/rewind: starts before the last mark
	if c2.Ok() {
		t.Fatal("commit rewind not flagged")
	}
	c2.CheckCompleteness(3)
	found := false
	for _, v := range c2.Violations() {
		if v.Invariant == "completeness" {
			found = true
		}
	}
	if !found {
		t.Fatal("completeness shortfall not flagged")
	}
}
