// Package chaos is gopilot's deterministic fault-injection layer. A
// Plan — compiled from a Config and one labeled slot on the seeding
// spine — schedules faults at exact virtual instants: backend outages
// and recoveries, pilot crashes, evict storms, broker partition
// unavailability windows, delayed commits, consumer-group worker churn,
// federated shard losses, inter-shard link partitions, replication-lag
// windows, torn replication streams, and crashes of shards mid-catchup.
// An Engine
// replays the plan against live targets as an ordinary
// clock participant, so the same seed produces the same faults at the
// same modeled instants, interleaved identically with the workload.
//
// Everything here is seed-driven and clock-driven: the package draws
// randomness only from labeled dist.Streams ("chaos"/<kind>/<ordinal>)
// and waits only on the injected vclock.Clock — never math/rand, never
// the wall clock (tools/seed-audit.sh rule 7 enforces this). That is
// what makes a failing chaos seed a complete reproduction recipe: replay
// it, record the schedule (vclock.RecorderState), and bisect to the
// first divergent scheduling decision (see replay.go, cmd/chaosreplay).
package chaos

import (
	"fmt"
	"sort"
	"time"

	"gopilot/internal/dist"
)

// Kind enumerates the fault taxonomy.
type Kind int

// Fault kinds. Windowed kinds (BackendOutage, PartitionStall,
// CommitSkew, ShardLink) have a recovery instant; the rest are point
// faults.
const (
	// BackendOutage marks an infrastructure backend down for a window:
	// submissions fail with infra.ErrBackendDown and the dispatcher's
	// Candidates skip its pilots until recovery.
	BackendOutage Kind = iota
	// PilotCrash hard-kills a live pilot (Pilot.Kill): running units fail
	// mid-execution, queued units are stranded pre-start.
	PilotCrash
	// EvictStorm preempts every active HTC glidein at once (Pool.Storm).
	EvictStorm
	// PartitionStall blacks out one broker partition for a window:
	// consumers see no data past their offsets and park as on an empty log.
	PartitionStall
	// CommitSkew delays every broker commit acknowledgement by a drawn
	// lag for a window, stretching the staleness of commit marks.
	CommitSkew
	// WorkerChurn removes one consumer-group worker and immediately adds
	// a replacement — a back-to-back rebalance.
	WorkerChurn
	// ShardLoss permanently fails one live federated broker shard: every
	// partition it led fences, hands off to a surviving replica after the
	// modeled election delay, and re-replicates onto a recruit in virtual
	// time. Skipped when it would fail the last live shard.
	ShardLoss
	// ShardLink severs the replication link between two shards for a
	// window: partitions whose leader needs the link to reach an in-sync
	// follower cannot acknowledge publishes until the link heals.
	ShardLink
	// ReplicaLag slows the catch-up streams of one replication link for a
	// window (a drawn pacing multiplier), stretching follower lag and the
	// stale-suffix exposure of a handoff inside the window.
	ReplicaLag
	// TornReplication freezes replication into one follower slot of one
	// partition for a window: the stream stops at a clean batch boundary
	// (batches are never half-applied) and the follower falls behind
	// until the window closes.
	TornReplication
	// CrashMidCatchup permanently fails a shard that is currently
	// re-replicating as a recruit — the crash-mid-catchup case of the
	// recovery protocol. Skipped when no shard is syncing (or when it
	// would fail the last live shard).
	CrashMidCatchup

	numKinds
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case BackendOutage:
		return "backend-outage"
	case PilotCrash:
		return "pilot-crash"
	case EvictStorm:
		return "evict-storm"
	case PartitionStall:
		return "partition-stall"
	case CommitSkew:
		return "commit-skew"
	case WorkerChurn:
		return "worker-churn"
	case ShardLoss:
		return "shard-loss"
	case ShardLink:
		return "shard-link"
	case ReplicaLag:
		return "replica-lag"
	case TornReplication:
		return "torn-replication"
	case CrashMidCatchup:
		return "crash-mid-catchup"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// windowed reports whether the kind has a recovery instant.
func (k Kind) windowed() bool {
	return k == BackendOutage || k == PartitionStall || k == CommitSkew || k == ShardLink ||
		k == ReplicaLag || k == TornReplication
}

// Fault is one scheduled fault. All instants are virtual offsets from
// the scenario start.
type Fault struct {
	// Kind classifies the fault.
	Kind Kind
	// Ordinal is the fault's per-kind index; together with Kind it names
	// the stream the fault was drawn from ("chaos"/<kind>/<ordinal>).
	Ordinal int
	// At is the injection instant.
	At time.Duration
	// Until is the recovery instant (windowed kinds; zero otherwise).
	Until time.Duration
	// Target selects the victim (backend index, live-pilot slot,
	// partition, group member slot — reduced modulo the population by the
	// engine at injection time).
	Target uint64
	// Delay is the drawn lag magnitude: the injected commit lag for
	// CommitSkew, and the severity knob the engine maps to a link pacing
	// multiplier for ReplicaLag.
	Delay time.Duration
}

// String implements fmt.Stringer.
func (f Fault) String() string {
	s := fmt.Sprintf("%s/%d @%v target=%d", f.Kind, f.Ordinal, f.At, f.Target)
	if f.Kind.windowed() {
		s += fmt.Sprintf(" until=%v", f.Until)
	}
	if f.Kind == CommitSkew || f.Kind == ReplicaLag {
		s += fmt.Sprintf(" delay=%v", f.Delay)
	}
	return s
}

// Config bounds a plan: how many faults of each kind, over what horizon,
// with what window lengths.
type Config struct {
	// Horizon is the injection window: every fault's At falls in
	// [0, Horizon). Default 10 minutes.
	Horizon time.Duration
	// Counts is the number of faults per kind; kinds absent from the map
	// inject nothing.
	Counts map[Kind]int
	// WindowMin/WindowMax bound the drawn outage/stall/skew window length
	// (defaults 15s / 90s).
	WindowMin, WindowMax time.Duration
	// SkewMin/SkewMax bound the drawn commit lag of CommitSkew faults
	// (defaults 500ms / 3s).
	SkewMin, SkewMax time.Duration
}

func (c Config) withDefaults() Config {
	if c.Horizon <= 0 {
		c.Horizon = 10 * time.Minute
	}
	if c.WindowMin <= 0 {
		c.WindowMin = 15 * time.Second
	}
	if c.WindowMax < c.WindowMin {
		c.WindowMax = 90 * time.Second
		if c.WindowMax < c.WindowMin {
			c.WindowMax = c.WindowMin
		}
	}
	if c.SkewMin <= 0 {
		c.SkewMin = 500 * time.Millisecond
	}
	if c.SkewMax < c.SkewMin {
		c.SkewMax = 3 * time.Second
		if c.SkewMax < c.SkewMin {
			c.SkewMax = c.SkewMin
		}
	}
	return c
}

// Plan is a compiled fault schedule: faults sorted by (At, Kind,
// Ordinal), ready for the Engine.
type Plan struct {
	// Horizon echoes the compiled Config's horizon.
	Horizon time.Duration
	// Faults is the full schedule, injection order.
	Faults []Fault
}

// Compile draws a fault schedule from the stream. Each fault of kind k
// with per-kind ordinal i draws from stream's "chaos"/<kind>/<i> child —
// its own independent slot, so changing one kind's count never shifts
// another kind's draws (the spine's component-insensitivity contract).
// Per fault the draw order is fixed at four draws — At, Target, window
// length, skew lag — with the unused draws discarded, so the schema can
// grow without re-dealing earlier faults.
func Compile(stream *dist.Stream, cfg Config) Plan {
	cfg = cfg.withDefaults()
	root := stream.Named("chaos")
	var faults []Fault
	for k := Kind(0); k < numKinds; k++ {
		kindRoot := root.Named(k.String())
		for i := 0; i < cfg.Counts[k]; i++ {
			st := kindRoot.SplitLabel(uint64(i))
			f := Fault{Kind: k, Ordinal: i}
			f.At = time.Duration(st.Float64() * float64(cfg.Horizon)).Truncate(time.Millisecond)
			f.Target = st.Uint64()
			window := cfg.WindowMin + time.Duration(st.Float64()*float64(cfg.WindowMax-cfg.WindowMin))
			skew := cfg.SkewMin + time.Duration(st.Float64()*float64(cfg.SkewMax-cfg.SkewMin))
			if k.windowed() {
				f.Until = (f.At + window).Truncate(time.Millisecond)
			}
			if k == CommitSkew || k == ReplicaLag {
				f.Delay = skew.Truncate(time.Millisecond)
			}
			faults = append(faults, f)
		}
	}
	sort.Slice(faults, func(a, b int) bool {
		if faults[a].At != faults[b].At {
			return faults[a].At < faults[b].At
		}
		if faults[a].Kind != faults[b].Kind {
			return faults[a].Kind < faults[b].Kind
		}
		return faults[a].Ordinal < faults[b].Ordinal
	})
	return Plan{Horizon: cfg.Horizon, Faults: faults}
}

// Truncate returns the plan reduced to its first n faults (injection
// order) — the bisection step: the smallest failing prefix isolates the
// fault that first matters.
func (p Plan) Truncate(n int) Plan {
	if n < 0 {
		n = 0
	}
	if n > len(p.Faults) {
		n = len(p.Faults)
	}
	return Plan{Horizon: p.Horizon, Faults: p.Faults[:n]}
}

// Hash folds the schedule into a 64-bit identity, used to prove two runs
// compiled the same plan before comparing their schedules.
func (p Plan) Hash() uint64 {
	h := uint64(len(p.Faults))
	mix := func(v uint64) {
		h ^= v
		h ^= h >> 30
		h *= 0xbf58476d1ce4e5b9
		h ^= h >> 27
		h *= 0x94d049bb133111eb
		h ^= h >> 31
	}
	mix(uint64(p.Horizon))
	for _, f := range p.Faults {
		mix(uint64(f.Kind)<<32 | uint64(uint32(f.Ordinal)))
		mix(uint64(f.At))
		mix(uint64(f.Until))
		mix(f.Target)
		mix(uint64(f.Delay))
	}
	return h
}
