package chaos

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"gopilot/internal/core"
	"gopilot/internal/infra"
	"gopilot/internal/streaming"
	"gopilot/internal/vclock"
)

// Backend is one infrastructure target the engine can take down.
type Backend struct {
	// Name labels the backend in the applied-fault log.
	Name string
	// Faults is the backend's switchboard (its Faults() accessor).
	Faults *infra.Faults
	// OnRecover, if set, runs at the outage-clear instant — typically
	// Manager.Kick, so the dispatcher immediately re-considers pilots the
	// outage had filtered out of Candidates.
	OnRecover func()
}

// Targets are the live handles the engine injects faults into. Any
// subset may be nil/empty; faults without a target are logged as skipped
// rather than erroring, so one plan can run against scenarios of
// different shapes.
type Targets struct {
	// Clock paces the injection timeline (required).
	Clock vclock.Clock
	// Backends are outage victims, indexed by Target modulo the count.
	Backends []Backend
	// LivePilots returns the pilots currently eligible to crash; the
	// engine picks Target modulo the count. Return only non-terminal
	// pilots so crashes always hit something alive.
	LivePilots func() []*core.Pilot
	// Storm triggers an evict storm and reports how many glideins it hit.
	Storm func() int
	// Broker and Topic locate partitions for stall/skew faults.
	Broker *streaming.Broker
	Topic  string
	// Group is the consumer group churned by WorkerChurn.
	Group *streaming.Group
	// Cluster is the federated broker ShardLoss/ShardLink act on.
	Cluster *streaming.Cluster
}

// Applied is one injection-log entry: what a fault actually hit.
type Applied struct {
	// Fault is the scheduled fault.
	Fault Fault
	// At is the modeled injection instant (offset from Run's start).
	At time.Duration
	// Hit reports whether the fault found a victim.
	Hit bool
	// Note names the victim or the skip reason.
	Note string
}

// Engine replays a Plan against Targets. Run is a clock participant: it
// sleeps from event to event on the injected clock, so faults land at
// exact virtual instants, deterministically interleaved with the
// workload.
type Engine struct {
	plan Plan
	t    Targets

	mu      sync.Mutex
	applied []Applied
}

// NewEngine pairs a plan with its targets.
func NewEngine(plan Plan, t Targets) *Engine {
	return &Engine{plan: plan, t: t}
}

// event is one timeline entry: a fault's injection or recovery.
type event struct {
	at  time.Duration
	seq int // 2·i for fault i's injection, 2·i+1 for its recovery
	fn  func(now time.Duration)
}

// Run injects the plan. It returns when the last event has fired or ctx
// is canceled; on cancellation every outstanding recovery runs
// immediately so no backend or partition is left down past the scenario.
// The injection log is also available from Log afterwards.
func (e *Engine) Run(ctx context.Context) []Applied {
	events, recoveries := e.timeline()
	start := e.t.Clock.Now()
	for _, ev := range events {
		if d := ev.at - e.t.Clock.Now().Sub(start); d > 0 {
			if !e.t.Clock.Sleep(ctx, d) {
				break
			}
		}
		if ctx.Err() != nil {
			break
		}
		now := e.t.Clock.Now().Sub(start)
		ev.fn(now)
		delete(recoveries, ev.seq)
	}
	// Cancellation path: clear anything still down, at the current instant.
	if len(recoveries) > 0 {
		now := e.t.Clock.Now().Sub(start)
		seqs := make([]int, 0, len(recoveries))
		for seq := range recoveries {
			seqs = append(seqs, seq)
		}
		sort.Ints(seqs)
		for _, seq := range seqs {
			recoveries[seq](now)
		}
	}
	return e.Log()
}

// Log returns the injection log so far, injection order.
func (e *Engine) Log() []Applied {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]Applied(nil), e.applied...)
}

func (e *Engine) record(f Fault, now time.Duration, hit bool, format string, args ...any) {
	a := Applied{Fault: f, At: now, Hit: hit, Note: fmt.Sprintf(format, args...)}
	e.mu.Lock()
	e.applied = append(e.applied, a)
	e.mu.Unlock()
	// Marks land in the schedule recorder, so a recorded trace shows the
	// exact decision at which each fault entered the timeline.
	vclock.Mark(e.t.Clock, "chaos "+f.Kind.String()+" "+a.Note, uint64(f.Ordinal))
}

// timeline expands the plan into sorted events. Recovery closures are
// returned separately, keyed by event seq, so Run can fire the
// outstanding ones on early exit. Events sort by (at, seq): a recovery
// scheduled at the same instant as a later fault's injection runs first
// exactly when its fault was scheduled first — the plan's order is the
// tiebreak, fixed at compile time.
func (e *Engine) timeline() ([]event, map[int]func(now time.Duration)) {
	var events []event
	recoveries := make(map[int]func(now time.Duration))
	add := func(at time.Duration, seq int, fn func(now time.Duration)) {
		events = append(events, event{at: at, seq: seq, fn: fn})
	}
	for i, f := range e.plan.Faults {
		f := f
		inj, rec := 2*i, 2*i+1
		switch f.Kind {
		case BackendOutage:
			if len(e.t.Backends) == 0 {
				add(f.At, inj, func(now time.Duration) { e.record(f, now, false, "no backends") })
				continue
			}
			b := e.t.Backends[int(f.Target%uint64(len(e.t.Backends)))]
			add(f.At, inj, func(now time.Duration) {
				b.Faults.SetDown(true)
				e.record(f, now, true, "down %s", b.Name)
			})
			undo := func(now time.Duration) {
				b.Faults.SetDown(false)
				if b.OnRecover != nil {
					b.OnRecover()
				}
				e.record(f, now, true, "up %s", b.Name)
			}
			add(f.Until, rec, undo)
			recoveries[rec] = undo
		case PilotCrash:
			add(f.At, inj, func(now time.Duration) {
				if e.t.LivePilots == nil {
					e.record(f, now, false, "no pilot source")
					return
				}
				pilots := e.t.LivePilots()
				if len(pilots) == 0 {
					e.record(f, now, false, "no live pilots")
					return
				}
				p := pilots[int(f.Target%uint64(len(pilots)))]
				p.Kill()
				e.record(f, now, true, "killed %s", p.ID())
			})
		case EvictStorm:
			add(f.At, inj, func(now time.Duration) {
				if e.t.Storm == nil {
					e.record(f, now, false, "no storm target")
					return
				}
				n := e.t.Storm()
				e.record(f, now, n > 0, "evicted %d glideins", n)
			})
		case PartitionStall:
			// Prefer the federated cluster (stall at the coordination layer)
			// and fall back to a standalone broker.
			if e.t.Cluster == nil && (e.t.Broker == nil || e.t.Topic == "") {
				add(f.At, inj, func(now time.Duration) { e.record(f, now, false, "no broker") })
				continue
			}
			var nparts int
			var err error
			if e.t.Cluster != nil {
				nparts, err = e.t.Cluster.Partitions(e.t.Topic)
			} else {
				nparts, err = e.t.Broker.Partitions(e.t.Topic)
			}
			if err != nil || nparts == 0 {
				add(f.At, inj, func(now time.Duration) { e.record(f, now, false, "no partitions") })
				continue
			}
			part := int(f.Target % uint64(nparts))
			setDown := func(down bool) {
				if e.t.Cluster != nil {
					e.t.Cluster.SetPartitionDown(e.t.Topic, part, down)
				} else {
					e.t.Broker.SetPartitionDown(e.t.Topic, part, down)
				}
			}
			add(f.At, inj, func(now time.Duration) {
				setDown(true)
				e.record(f, now, true, "stalled %s[%d]", e.t.Topic, part)
			})
			undo := func(now time.Duration) {
				setDown(false)
				e.record(f, now, true, "restored %s[%d]", e.t.Topic, part)
			}
			add(f.Until, rec, undo)
			recoveries[rec] = undo
		case CommitSkew:
			if e.t.Cluster == nil && e.t.Broker == nil {
				add(f.At, inj, func(now time.Duration) { e.record(f, now, false, "no broker") })
				continue
			}
			setDelay := func(d time.Duration) {
				if e.t.Cluster != nil {
					e.t.Cluster.SetCommitDelay(d)
				} else {
					e.t.Broker.SetCommitDelay(d)
				}
			}
			add(f.At, inj, func(now time.Duration) {
				setDelay(f.Delay)
				e.record(f, now, true, "commit delay %v", f.Delay)
			})
			undo := func(now time.Duration) {
				setDelay(0)
				e.record(f, now, true, "commit delay cleared")
			}
			add(f.Until, rec, undo)
			recoveries[rec] = undo
		case WorkerChurn:
			add(f.At, inj, func(now time.Duration) {
				if e.t.Group == nil {
					e.record(f, now, false, "no group")
					return
				}
				members := e.t.Group.Members()
				if len(members) == 0 {
					e.record(f, now, false, "no members")
					return
				}
				ord := members[int(f.Target%uint64(len(members)))]
				if err := e.t.Group.RemoveWorker(ord); err != nil {
					e.record(f, now, false, "remove %d: %v", ord, err)
					return
				}
				repl, err := e.t.Group.AddWorker()
				if err != nil {
					e.record(f, now, false, "removed %d, add failed: %v", ord, err)
					return
				}
				e.record(f, now, true, "churned worker %d -> %d", ord, repl)
			})
		case ShardLoss:
			add(f.At, inj, func(now time.Duration) {
				if e.t.Cluster == nil {
					e.record(f, now, false, "no cluster")
					return
				}
				live := e.t.Cluster.LiveShards()
				if len(live) <= 1 {
					e.record(f, now, false, "only %d live shard(s)", len(live))
					return
				}
				id := live[int(f.Target%uint64(len(live)))]
				if err := e.t.Cluster.FailShard(id); err != nil {
					e.record(f, now, false, "fail shard %d: %v", id, err)
					return
				}
				e.record(f, now, true, "lost shard %d (%d handoffs total)", id, e.t.Cluster.Handoffs())
			})
		case ShardLink:
			if e.t.Cluster == nil || e.t.Cluster.ShardCount() < 2 {
				add(f.At, inj, func(now time.Duration) { e.record(f, now, false, "no cluster shards to partition") })
				continue
			}
			// The victim pair derives from Target at compile-known shard
			// count, so injection and recovery name the same link.
			n := e.t.Cluster.ShardCount()
			a := int(f.Target % uint64(n))
			b := (a + 1 + int((f.Target>>16)%uint64(n-1))) % n
			add(f.At, inj, func(now time.Duration) {
				if err := e.t.Cluster.SeverLink(a, b); err != nil {
					e.record(f, now, false, "sever %d<->%d: %v", a, b, err)
					return
				}
				e.record(f, now, true, "severed link %d<->%d", a, b)
			})
			undo := func(now time.Duration) {
				if err := e.t.Cluster.HealLink(a, b); err != nil {
					e.record(f, now, false, "heal %d<->%d: %v", a, b, err)
					return
				}
				e.record(f, now, true, "healed link %d<->%d", a, b)
			}
			add(f.Until, rec, undo)
			recoveries[rec] = undo
		case ReplicaLag:
			if e.t.Cluster == nil || e.t.Cluster.ShardCount() < 2 {
				add(f.At, inj, func(now time.Duration) { e.record(f, now, false, "no cluster links to lag") })
				continue
			}
			// Victim pair and severity derive from the compiled fault, so
			// injection and recovery name the same link at the same factor.
			n := e.t.Cluster.ShardCount()
			a := int(f.Target % uint64(n))
			b := (a + 1 + int((f.Target>>16)%uint64(n-1))) % n
			factor := 1 + f.Delay.Seconds()*2
			add(f.At, inj, func(now time.Duration) {
				if err := e.t.Cluster.SetLinkLag(a, b, factor); err != nil {
					e.record(f, now, false, "lag %d<->%d: %v", a, b, err)
					return
				}
				e.record(f, now, true, "lagged link %d<->%d x%.1f", a, b, factor)
			})
			undo := func(now time.Duration) {
				if err := e.t.Cluster.SetLinkLag(a, b, 1); err != nil {
					e.record(f, now, false, "unlag %d<->%d: %v", a, b, err)
					return
				}
				e.record(f, now, true, "link %d<->%d back to nominal", a, b)
			}
			add(f.Until, rec, undo)
			recoveries[rec] = undo
		case TornReplication:
			if e.t.Cluster == nil || e.t.Topic == "" || e.t.Cluster.Replication() < 2 {
				add(f.At, inj, func(now time.Duration) { e.record(f, now, false, "no replicated cluster topic") })
				continue
			}
			nparts, err := e.t.Cluster.Partitions(e.t.Topic)
			if err != nil || nparts == 0 {
				add(f.At, inj, func(now time.Duration) { e.record(f, now, false, "no partitions") })
				continue
			}
			part := int(f.Target % uint64(nparts))
			slot := int((f.Target >> 16) % uint64(e.t.Cluster.Replication()-1))
			add(f.At, inj, func(now time.Duration) {
				if err := e.t.Cluster.FreezeReplica(e.t.Topic, part, slot, true); err != nil {
					e.record(f, now, false, "freeze %s[%d] slot %d: %v", e.t.Topic, part, slot, err)
					return
				}
				e.record(f, now, true, "tore replication %s[%d] slot %d", e.t.Topic, part, slot)
			})
			undo := func(now time.Duration) {
				if err := e.t.Cluster.FreezeReplica(e.t.Topic, part, slot, false); err != nil {
					e.record(f, now, false, "resume %s[%d] slot %d: %v", e.t.Topic, part, slot, err)
					return
				}
				e.record(f, now, true, "resumed replication %s[%d] slot %d", e.t.Topic, part, slot)
			}
			add(f.Until, rec, undo)
			recoveries[rec] = undo
		case CrashMidCatchup:
			add(f.At, inj, func(now time.Duration) {
				if e.t.Cluster == nil {
					e.record(f, now, false, "no cluster")
					return
				}
				syncing := e.t.Cluster.SyncingShards()
				if len(syncing) == 0 {
					e.record(f, now, false, "no shard mid-catchup")
					return
				}
				if len(e.t.Cluster.LiveShards()) <= 1 {
					e.record(f, now, false, "only one live shard")
					return
				}
				id := syncing[int(f.Target%uint64(len(syncing)))]
				if err := e.t.Cluster.FailShard(id); err != nil {
					e.record(f, now, false, "fail syncing shard %d: %v", id, err)
					return
				}
				e.record(f, now, true, "crashed shard %d mid-catchup", id)
			})
		}
	}
	sort.SliceStable(events, func(a, b int) bool {
		if events[a].at != events[b].at {
			return events[a].at < events[b].at
		}
		return events[a].seq < events[b].seq
	})
	return events, recoveries
}
