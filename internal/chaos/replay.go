package chaos

import (
	"sort"

	"gopilot/internal/vclock"
)

// This file holds the bisection helpers behind cmd/chaosreplay. Two
// levels of bisection narrow a failing seed down:
//
//  1. Fault bisection (BisectFaults): rerun the scenario with plan
//     prefixes to find the smallest number of faults that still breaks
//     an invariant — the last fault of that prefix is the one that first
//     matters.
//  2. Decision bisection (FirstDivergentBlock + FirstDivergence): given
//     two recorded schedules that were expected to match (e.g. the
//     failing run against a baseline with the deliberate bug disabled,
//     or against the minimal failing prefix), compare hash-chain
//     checkpoints to find the first divergent block of decisions, then
//     re-record that window exactly and diff entry by entry for the
//     first divergent scheduling decision.

// BisectFaults finds the smallest n in [0, total] for which fails(n)
// reports an invariant violation, assuming failure is monotone in the
// fault-prefix length (more faults never fix a broken run). fails is
// invoked O(log total) times; the caller replays the scenario with
// Plan.Truncate(n) inside it. Returns total+1 if no prefix fails.
func BisectFaults(total int, fails func(n int) bool) int {
	n := sort.Search(total+1, fails)
	return n
}

// FirstDivergentBlock compares two recorded schedules checkpoint by
// checkpoint and returns the ordinal range [from, to) of the first block
// of decisions whose hash chains differ. ok is false when the traces
// agree through their common checkpoints (same prefix — any difference
// is past the shorter trace's end, or there is none).
func FirstDivergentBlock(a, b vclock.RecorderState) (from, to uint64, ok bool) {
	stride := a.Stride
	if stride == 0 || b.Stride != stride {
		return 0, 0, false
	}
	n := len(a.Checkpoints)
	if len(b.Checkpoints) < n {
		n = len(b.Checkpoints)
	}
	for i := 0; i < n; i++ {
		if a.Checkpoints[i] != b.Checkpoints[i] {
			return uint64(i) * stride, uint64(i+1) * stride, true
		}
	}
	return 0, 0, false
}

// FirstDivergence diffs two exact-capture windows (RecorderState.Window
// of re-recorded runs over the same ordinal range) and returns the index
// of the first differing decision, or -1 when one window is a prefix of
// the other.
func FirstDivergence(a, b []vclock.TraceEntry) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return -1
}
