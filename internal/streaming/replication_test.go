package streaming

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"gopilot/internal/vclock"
)

// TestDivergenceRepairAfterHandoff drives the recovery protocol's repair
// path deterministically: a follower frozen mid-stream leaves the
// acknowledged watermark behind while the other follower keeps pace with
// the leader; killing the leader promotes the *lagging* follower (first
// in replica order), so the caught-up follower now holds a suffix the
// new leader never acknowledged — epoch-chain divergence. The catch-up
// runner must detect it, truncate the diverged suffix, re-stream the
// authoritative history, and leave both logs identical; the mid-publish
// producer's batch must survive via re-append to the new leader.
func TestDivergenceRepairAfterHandoff(t *testing.T) {
	clock := vclock.NewVirtual(vclock.Epoch)
	clock.Adopt()
	defer clock.Leave()
	c := NewCluster(ClusterConfig{
		Shards: 3, Replication: 3, HandoffDelay: 50 * time.Millisecond,
		AppendCost: 10 * time.Microsecond, FetchLatency: 100 * time.Microsecond,
		Clock: clock,
	})
	defer c.Close()
	if err := c.CreateTopic("t", 1); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		if _, err := c.Publish(ctx, "t", nil, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	reps, err := c.ReplicasOf("t", 0)
	if err != nil {
		t.Fatal(err)
	}
	leader, f1, f2 := reps[0], reps[1], reps[2]

	// Freeze slot 0 (follower f1): the watermark pins at its log end.
	if err := c.FreezeReplica("t", 0, 0, true); err != nil {
		t.Fatal(err)
	}
	var pubErr error
	pubDone := vclock.NewEvent(clock)
	vclock.Go(clock, func() {
		defer pubDone.Fire()
		pubErr = c.PublishValues(ctx, "t", [][]byte{{10}, {11}, {12}, {13}})
	})
	if !clock.Sleep(ctx, time.Second) {
		t.Fatal("sleep interrupted")
	}
	if pubDone.Fired() {
		t.Fatal("publish acknowledged without a full-quorum watermark")
	}
	if e, _ := c.shards[leader].EndOffset("t", 0); e != 9 {
		t.Fatalf("leader end = %d, want 9", e)
	}
	if e, _ := c.shards[f2].EndOffset("t", 0); e != 9 {
		t.Fatalf("follower f2 end = %d, want 9 (should keep pace)", e)
	}
	if e, _ := c.shards[f1].EndOffset("t", 0); e != 5 {
		t.Fatalf("frozen follower f1 end = %d, want 5", e)
	}
	if hw, _ := c.AckedOffset("t", 0); hw != 5 {
		t.Fatalf("acked = %d, want 5 (pinned by the frozen follower)", hw)
	}

	// Kill the leader: f1 (first surviving member) is promoted despite
	// lagging — its log already ends at the watermark. f2's [5,9) suffix
	// was never acknowledged and now carries a dead epoch.
	if err := c.FailShard(leader); err != nil {
		t.Fatal(err)
	}
	if nl, _ := c.LeaderOf("t", 0); nl != f1 {
		t.Fatalf("promoted leader = %d, want first surviving member %d", nl, f1)
	}
	// Resume replication into slot 0, which now addresses f2.
	if err := c.FreezeReplica("t", 0, 0, false); err != nil {
		t.Fatal(err)
	}
	if !pubDone.Wait(ctx) {
		t.Fatal("publish never completed")
	}
	if pubErr != nil {
		t.Fatal(pubErr)
	}
	deadline := clock.Now().Add(time.Minute)
	for c.UnderReplicated() != 0 {
		if clock.Now().After(deadline) {
			t.Fatal("replication never drained after the handoff")
		}
		clock.Sleep(ctx, 10*time.Millisecond)
	}
	if r := c.Repairs(); r < 1 {
		t.Fatalf("repairs = %d, want >= 1 (diverged suffix must be truncated and re-streamed)", r)
	}
	if d := c.CheckReplicaConsistency("t"); len(d) != 0 {
		t.Fatalf("replicas still diverged after repair: %v", d)
	}
	// Post-repair log identity: the repaired follower's log matches the
	// new leader's message for message, and the producer's batch landed
	// exactly once at [5,9).
	assertReplicaLogsIdentical(t, c, "t", 0)
	msgs, err := c.Fetch(ctx, "t", 0, 5, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 4 {
		t.Fatalf("fetched %d messages past the watermark, want the re-appended 4", len(msgs))
	}
	for i, m := range msgs {
		if m.Offset != int64(5+i) || len(m.Value) != 1 || m.Value[0] != byte(10+i) {
			t.Fatalf("msg %d = offset %d value %v, want offset %d value [%d]",
				i, m.Offset, m.Value, 5+i, 10+i)
		}
	}
}

// TestStaleHandoffBugLeavesDivergedReplica proves the planted defect is
// observable at this layer: with the stale-handoff bug enabled, the same
// choreography as TestDivergenceRepairAfterHandoff must leave the
// deposed suffix in place — no repair runs and CheckReplicaConsistency
// reports the divergence.
func TestStaleHandoffBugLeavesDivergedReplica(t *testing.T) {
	EnableStaleHandoffBug(true)
	defer EnableStaleHandoffBug(false)
	clock := vclock.NewVirtual(vclock.Epoch)
	clock.Adopt()
	defer clock.Leave()
	c := NewCluster(ClusterConfig{
		Shards: 3, Replication: 3, HandoffDelay: 50 * time.Millisecond,
		AppendCost: 10 * time.Microsecond, Clock: clock,
	})
	defer c.Close()
	if err := c.CreateTopic("t", 1); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		if _, err := c.Publish(ctx, "t", nil, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	reps, _ := c.ReplicasOf("t", 0)
	if err := c.FreezeReplica("t", 0, 0, true); err != nil {
		t.Fatal(err)
	}
	pubDone := vclock.NewEvent(clock)
	var pubErr error
	vclock.Go(clock, func() {
		defer pubDone.Fire()
		pubErr = c.PublishValues(ctx, "t", [][]byte{{10}, {11}, {12}, {13}})
	})
	if !clock.Sleep(ctx, time.Second) {
		t.Fatal("sleep interrupted")
	}
	if err := c.FailShard(reps[0]); err != nil {
		t.Fatal(err)
	}
	if err := c.FreezeReplica("t", 0, 0, false); err != nil {
		t.Fatal(err)
	}
	if !pubDone.Wait(ctx) {
		t.Fatal("publish never completed")
	}
	if pubErr != nil {
		t.Fatal(pubErr)
	}
	deadline := clock.Now().Add(time.Minute)
	for c.UnderReplicated() != 0 {
		if clock.Now().After(deadline) {
			t.Fatal("replication never drained")
		}
		clock.Sleep(ctx, 10*time.Millisecond)
	}
	if r := c.Repairs(); r != 0 {
		t.Fatalf("repairs = %d with the repair-skipping defect enabled, want 0", r)
	}
	if d := c.CheckReplicaConsistency("t"); len(d) == 0 {
		t.Fatal("defect left no detectable divergence — the invariant has nothing to catch")
	}
}

// assertReplicaLogsIdentical compares every follower's retained log
// against its leader's, message for message (offset, key, value, epoch
// chain), over the overlap of their retained ranges.
func assertReplicaLogsIdentical(t *testing.T, c *Cluster, topic string, part int) {
	t.Helper()
	reps, err := c.ReplicasOf(topic, part)
	if err != nil {
		t.Fatal(err)
	}
	lb := c.shards[reps[0]]
	lSpans := lb.epochSpans(topic, part)
	lEnd, err := lb.EndOffset(topic, part)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range reps[1:] {
		fb := c.shards[f]
		fEnd, err := fb.EndOffset(topic, part)
		if err != nil {
			t.Fatal(err)
		}
		if fEnd != lEnd {
			t.Fatalf("shard %d log end %d != leader end %d", f, fEnd, lEnd)
		}
		fSpans := fb.epochSpans(topic, part)
		if fmt.Sprint(fSpans) != fmt.Sprint(lSpans) {
			t.Fatalf("shard %d epoch chain %v != leader chain %v", f, fSpans, lSpans)
		}
		lo := mustOldest(t, lb, topic, part)
		if ff := mustOldest(t, fb, topic, part); ff > lo {
			lo = ff
		}
		for o := lo; o < lEnd; {
			// replBatch serves one-segment views: walk both logs in steps.
			lMsgs, _, _, _ := lb.replBatch(topic, part, o, 1024)
			fMsgs, _, _, _ := fb.replBatch(topic, part, o, 1024)
			n := len(lMsgs)
			if len(fMsgs) < n {
				n = len(fMsgs)
			}
			if n == 0 {
				t.Fatalf("shard %d: no messages served at offset %d (leader %d, follower %d)",
					f, o, len(lMsgs), len(fMsgs))
			}
			for i := 0; i < n; i++ {
				lm, fm := lMsgs[i], fMsgs[i]
				if lm.Offset != fm.Offset || string(lm.Key) != string(fm.Key) || string(lm.Value) != string(fm.Value) {
					t.Fatalf("shard %d offset %d: message %+v != leader %+v", f, lm.Offset, fm, lm)
				}
			}
			o += int64(n)
		}
	}
}

func mustOldest(t *testing.T, b *Broker, topic string, part int) int64 {
	t.Helper()
	o, err := b.OldestOffset(topic, part)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

// TestReplicationFaultProperty is the randomized replication-fault
// property test: over 10 seeds, a producer streams through an RF-3
// cluster while link-lag windows, torn replication streams, and one
// leader loss land at seed-driven instants. Three properties must hold
// on every seed: the acknowledged watermark advances monotonically and
// gaplessly (checked inline via OnAcked), replication lag drains to zero
// once faults recover, and every replica log is identical to its
// leader's after the drain — divergence repaired, nothing torn. Run
// under -race in CI at GOMAXPROCS=4.
func TestReplicationFaultProperty(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	const (
		shards = 3
		rf     = 3
		parts  = 2
		total  = 400
	)
	for seed := int64(0); seed < 10; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			clock := vclock.NewVirtual(vclock.Epoch)
			clock.Adopt()
			defer clock.Leave()
			// Per-seed xorshift: deterministic fault interleavings without
			// math/rand (seed-audit rule 1).
			rng := uint64(seed)*0x9E3779B97F4A7C15 + 0x2545F4914F6CDD1D
			next := func(n int) int {
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				return int(rng % uint64(n))
			}

			var mu sync.Mutex
			lastAcked := make([]int64, parts)
			var ackViolations []string
			c := NewCluster(ClusterConfig{
				Shards: shards, Replication: rf, SegmentSize: 64,
				HandoffDelay: 20 * time.Millisecond,
				AppendCost:   10 * time.Microsecond,
				Clock:        clock,
				OnAcked: func(_ string, p int, from, to int64) {
					mu.Lock()
					if from != lastAcked[p] || to <= from {
						ackViolations = append(ackViolations,
							fmt.Sprintf("partition %d: acked moved %d->%d, last seen %d", p, from, to, lastAcked[p]))
					}
					lastAcked[p] = to
					mu.Unlock()
				},
			})
			defer c.Close()
			if err := c.CreateTopic("t", parts); err != nil {
				t.Fatal(err)
			}
			ctx := context.Background()

			var pubErr error
			pubDone := vclock.NewEvent(clock)
			vclock.Go(clock, func() {
				defer pubDone.Fire()
				payload := []byte("replicated-payload")
				sent := 0
				for sent < total {
					k := 1 + next(16)
					if k > total-sent {
						k = total - sent
					}
					values := make([][]byte, k)
					for i := range values {
						values[i] = payload
					}
					if pubErr = c.PublishValues(ctx, "t", values); pubErr != nil {
						return
					}
					sent += k
					if !clock.Sleep(ctx, time.Millisecond) {
						return
					}
				}
			})

			// Seed-driven fault storm, interleaved with the producer in
			// virtual time; one leader loss lands at a fixed op index.
			failed := false
			for op := 0; !pubDone.Fired(); op++ {
				switch next(6) {
				case 0: // stretch a random link
					a := next(shards)
					b := (a + 1 + next(shards-1)) % shards
					if err := c.SetLinkLag(a, b, float64(1+next(6))); err != nil {
						t.Fatal(err)
					}
				case 1: // heal a random link
					a := next(shards)
					b := (a + 1 + next(shards-1)) % shards
					if err := c.SetLinkLag(a, b, 1); err != nil {
						t.Fatal(err)
					}
				case 2: // tear one replication stream
					if err := c.FreezeReplica("t", next(parts), next(rf-1), true); err != nil {
						t.Fatal(err)
					}
				case 3: // resume every stream of a random partition
					p := next(parts)
					for s := 0; s < rf-1; s++ {
						if err := c.FreezeReplica("t", p, s, false); err != nil {
							t.Fatal(err)
						}
					}
				}
				if op == 40 && !failed {
					failed = true
					if lead, err := c.LeaderOf("t", 0); err == nil {
						if err := c.FailShard(lead); err != nil {
							t.Fatal(err)
						}
					}
				}
				if !clock.Sleep(ctx, 5*time.Millisecond) {
					t.Fatal("sleep interrupted")
				}
			}
			if pubErr != nil {
				t.Fatal(pubErr)
			}

			// Recover every fault, then the lag bound must drain to zero.
			for p := 0; p < parts; p++ {
				for s := 0; s < rf-1; s++ {
					if err := c.FreezeReplica("t", p, s, false); err != nil {
						t.Fatal(err)
					}
				}
			}
			for a := 0; a < shards; a++ {
				for b := a + 1; b < shards; b++ {
					if err := c.SetLinkLag(a, b, 1); err != nil {
						t.Fatal(err)
					}
				}
			}
			deadline := clock.Now().Add(5 * time.Minute)
			for c.UnderReplicated() != 0 {
				if clock.Now().After(deadline) {
					t.Fatalf("replication lag never drained: %d partitions under-replicated", c.UnderReplicated())
				}
				clock.Sleep(ctx, 20*time.Millisecond)
			}
			mu.Lock()
			av := ackViolations
			mu.Unlock()
			if len(av) != 0 {
				t.Fatalf("acknowledged watermark not monotone/gapless: %v", av)
			}
			if d := c.CheckReplicaConsistency("t"); len(d) != 0 {
				t.Fatalf("diverged replicas after drain: %v", d)
			}
			for p := 0; p < parts; p++ {
				assertReplicaLogsIdentical(t, c, "t", p)
			}
		})
	}
}

// TestClusterCloseMidHandoffUnwindsCleanly is the teardown regression
// test: publishes parked on the quorum watermark, publishes and fetches
// parked behind a handoff fence, and fetches canceled by their context
// must all unwind — cancellation returns ctx.Err() while the cluster
// stays live, and a Close in the middle of a handoff window releases
// every parked caller with ErrBrokerClosed and leaks no goroutines.
func TestClusterCloseMidHandoffUnwindsCleanly(t *testing.T) {
	base := runtime.NumGoroutine()
	clock := vclock.NewVirtual(vclock.Epoch)
	clock.Adopt()
	defer clock.Leave()
	c := NewCluster(ClusterConfig{
		Shards: 3, Replication: 3, HandoffDelay: 10 * time.Second,
		AppendCost: 10 * time.Microsecond, Clock: clock,
	})
	if err := c.CreateTopic("t", 1); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, err := c.Publish(ctx, "t", nil, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}

	// A parked fetch honors context cancellation while the cluster is up.
	cctx, cancel := context.WithCancel(ctx)
	var cancelErr error
	cancelDone := vclock.NewEvent(clock)
	vclock.Go(clock, func() {
		defer cancelDone.Fire()
		_, cancelErr = c.Fetch(cctx, "t", 0, 3, 10) // nothing at 3: parks
	})
	if !clock.Sleep(ctx, 50*time.Millisecond) {
		t.Fatal("sleep interrupted")
	}
	cancel()
	if !cancelDone.Wait(ctx) {
		t.Fatal("canceled fetch never returned")
	}
	if !errors.Is(cancelErr, context.Canceled) {
		t.Fatalf("canceled fetch returned %v, want context.Canceled", cancelErr)
	}

	// Park a publish on the quorum watermark (torn follower)...
	if err := c.FreezeReplica("t", 0, 0, true); err != nil {
		t.Fatal(err)
	}
	var quorumErr error
	quorumDone := vclock.NewEvent(clock)
	vclock.Go(clock, func() {
		defer quorumDone.Fire()
		quorumErr = c.PublishValues(ctx, "t", [][]byte{{9}, {9}})
	})
	if !clock.Sleep(ctx, 50*time.Millisecond) {
		t.Fatal("sleep interrupted")
	}
	// ...then fence the partition mid-handoff (10s window, never walked
	// to completion) and park a publish and a fetch behind the fence.
	lead, err := c.LeaderOf("t", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.FailShard(lead); err != nil {
		t.Fatal(err)
	}
	var fencePubErr, fenceFetchErr error
	fencePubDone := vclock.NewEvent(clock)
	fenceFetchDone := vclock.NewEvent(clock)
	vclock.Go(clock, func() {
		defer fencePubDone.Fire()
		_, fencePubErr = c.Publish(ctx, "t", nil, []byte("fenced"))
	})
	vclock.Go(clock, func() {
		defer fenceFetchDone.Fire()
		_, fenceFetchErr = c.Fetch(ctx, "t", 0, 0, 10)
	})
	if !clock.Sleep(ctx, 100*time.Millisecond) {
		t.Fatal("sleep interrupted")
	}
	if quorumDone.Fired() || fencePubDone.Fired() || fenceFetchDone.Fired() {
		t.Fatal("a parked caller completed while fenced/unacknowledged")
	}

	// Close mid-handoff: every parked caller unwinds with ErrBrokerClosed.
	c.Close()
	for _, w := range []*vclock.Event{quorumDone, fencePubDone, fenceFetchDone} {
		if !w.Wait(ctx) {
			t.Fatal("parked caller never returned after Close")
		}
	}
	for name, err := range map[string]error{
		"quorum publish": quorumErr, "fenced publish": fencePubErr, "fenced fetch": fenceFetchErr,
	} {
		if !errors.Is(err, ErrBrokerClosed) {
			t.Fatalf("%s returned %v after Close, want ErrBrokerClosed", name, err)
		}
	}
	// No leaked goroutines: catch-up runners, fence walkers and parked
	// callers all exit. The fence walker parks in a virtual sleep whose
	// context Close just canceled, and canceled sleepers are reaped by
	// the scheduler's sweep on its next pass — so keep driving the clock
	// while polling (the wall-clock sleep lets the reaped goroutines'
	// exits land; they are asynchronous to the sweep).
	for i := 0; i < 200 && runtime.NumGoroutine() > base; i++ {
		clock.Sleep(ctx, time.Millisecond)
		time.Sleep(5 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > base {
		buf := make([]byte, 1<<16)
		t.Fatalf("goroutines leaked after Close: %d > %d\n%s", n, base, buf[:runtime.Stack(buf, true)])
	}
}
