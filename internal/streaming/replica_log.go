package streaming

import (
	"context"
	"fmt"
	"time"

	"gopilot/internal/plan"
	"gopilot/internal/vclock"
)

// Broker-side primitives of the per-shard replicated log. Every shard in
// a federated Cluster runs its own physical Broker; the cluster's
// replication plane drives these package-private hooks to stream
// acknowledged batches leader→follower, detect and repair diverged
// suffixes after a handoff, and bootstrap recruits. None of them charge
// modeled time themselves — pacing lives in the cluster's catch-up
// runners, where it belongs to the *link*, not the log.

// partRef resolves one partition of a topic, with bounds checking.
func (b *Broker) partRef(topicName string, pi int) (*partition, error) {
	t, err := b.topicByName(topicName)
	if err != nil {
		return nil, err
	}
	if pi < 0 || pi >= len(t.partitions) {
		return nil, fmt.Errorf("streaming: partition %d out of range for %q", pi, topicName)
	}
	return t.partitions[pi], nil
}

// setEpoch sets the leadership epoch stamped onto subsequent local
// appends of one partition. The cluster bumps it on the promoted leader
// at every handoff, which is what makes divergence detectable: a deposed
// leader's locally-acked suffix carries the old epoch.
func (b *Broker) setEpoch(topicName string, pi, epoch int) {
	part, err := b.partRef(topicName, pi)
	if err != nil {
		return
	}
	part.mu.Lock()
	part.curEpoch = epoch
	part.mu.Unlock()
}

// epochSpans returns a snapshot copy of a partition's epoch-span chain.
func (b *Broker) epochSpans(topicName string, pi int) []plan.EpochSpan {
	return b.epochSpansInto(topicName, pi, nil)
}

// epochSpansInto is epochSpans with a caller-owned scratch buffer: the
// snapshot is appended to buf[:0] so a hot caller (the catch-up runners
// compare chains every streamed batch) amortizes the copy to zero
// allocations once the buffer's capacity stabilizes. The returned slice
// must not be retained past the caller's next reuse of buf.
func (b *Broker) epochSpansInto(topicName string, pi int, buf []plan.EpochSpan) []plan.EpochSpan {
	part, err := b.partRef(topicName, pi)
	if err != nil {
		return nil
	}
	part.mu.Lock()
	defer part.mu.Unlock()
	return append(buf[:0], part.epochs...)
}

// replBatch snapshots one replication batch: up to maxMsgs messages
// starting at `from` as a zero-copy one-segment view, plus the
// partition's (first, end, committed) coordinates at the same instant.
// An empty batch with end > from means `from` fell below the retention
// floor (the follower must be reset); an empty batch with end == from
// means the follower is caught up.
func (b *Broker) replBatch(topicName string, pi int, from int64, maxMsgs int) (msgs []Message, first, end, committed int64) {
	part, err := b.partRef(topicName, pi)
	if err != nil {
		return nil, 0, 0, 0
	}
	part.mu.Lock()
	defer part.mu.Unlock()
	first, end, committed = part.first, part.end, part.committed
	if from < part.first || from >= part.end {
		return nil, first, end, committed
	}
	return part.view(from, maxMsgs, b.cfg.SegmentSize), first, end, committed
}

// appendReplicated appends a leader-streamed batch verbatim to a
// follower's log: offsets, payloads, Published stamps and the epoch
// chain all come from the leader. The batch must be contiguous with the
// follower's end — the catch-up runner re-validates membership and
// epoch after its pacing sleep and discards torn batches, so a gap here
// is a protocol bug, not a runtime condition. The follower's commit
// mark advances lazily toward the leader's (never past its own end)
// without firing OnCommit: the commit was already observed, exactly
// once, on the leader.
func (b *Broker) appendReplicated(topicName string, pi int, msgs []Message, spans []plan.EpochSpan, leaderCommitted int64) error {
	if len(msgs) == 0 {
		return nil
	}
	part, err := b.partRef(topicName, pi)
	if err != nil {
		return err
	}
	segSize := b.cfg.SegmentSize
	part.mu.Lock()
	defer part.mu.Unlock()
	if msgs[0].Offset != part.end {
		return fmt.Errorf("streaming: replicated append of %s[%d] at offset %d, follower end %d",
			topicName, pi, msgs[0].Offset, part.end)
	}
	s := part.end
	for i := range msgs {
		var seg *segment
		if len(part.segs) > 0 {
			seg = part.segs[len(part.segs)-1]
		}
		if seg == nil || len(seg.msgs) == segSize {
			seg = newSegment(segSize)
			part.segs = append(part.segs, seg)
		}
		seg.msgs = seg.msgs[:len(seg.msgs)+1]
		seg.msgs[len(seg.msgs)-1] = msgs[i]
		part.end++
		part.totalBytes += int64(len(msgs[i].Key) + len(msgs[i].Value))
		seg.cum = append(seg.cum, part.totalBytes)
	}
	e := part.end
	// Merge the leader's epoch chain restricted to the appended range.
	for i, sp := range spans {
		spEnd := e
		if i+1 < len(spans) {
			spEnd = spans[i+1].Start
		}
		if spEnd <= s || sp.Start >= e {
			continue
		}
		start := sp.Start
		if start < s {
			start = s
		}
		if n := len(part.epochs); n == 0 || part.epochs[n-1].Epoch != sp.Epoch {
			part.epochs = append(part.epochs, plan.EpochSpan{Start: start, Epoch: sp.Epoch})
		}
	}
	if c := leaderCommitted; c > part.committed {
		if c > part.end {
			c = part.end
		}
		part.committed = c
	}
	part.inflight = part.totalBytes - part.bytesThrough(part.committed, int64(segSize))
	return nil
}

// truncateTo discards a partition's suffix at and above `to` — the
// repair half of divergence handling (truncate-to-watermark, then
// re-stream from the leader). Safe for zero-copy consumers: the cluster
// only ever hands out views below the acknowledged watermark, and every
// truncation point is at or above it, so no live view reaches the
// dropped (and later overwritten) slots. The commit mark clamps down
// with the log; epoch spans starting at or above `to` are dropped.
func (b *Broker) truncateTo(topicName string, pi int, to int64) {
	part, err := b.partRef(topicName, pi)
	if err != nil {
		return
	}
	segSize := int64(b.cfg.SegmentSize)
	part.mu.Lock()
	defer part.mu.Unlock()
	if to >= part.end {
		return
	}
	if to < part.first {
		to = part.first
	}
	rel := to - part.first
	idx := int(rel / segSize)
	within := int(rel % segSize)
	for i := idx + 1; i < len(part.segs); i++ {
		part.segs[i] = nil
	}
	if idx < len(part.segs) {
		seg := part.segs[idx]
		seg.msgs = seg.msgs[:within]
		seg.cum = seg.cum[:within]
		part.segs = part.segs[:idx+1]
	}
	part.end = to
	part.totalBytes = part.bytesThrough(to, segSize)
	if part.committed > to {
		part.committed = to
	}
	part.inflight = part.totalBytes - part.bytesThrough(part.committed, segSize)
	k := len(part.epochs)
	for k > 0 && part.epochs[k-1].Start >= to {
		k--
	}
	part.epochs = part.epochs[:k]
}

// resetTo empties a partition's log and repositions it at `first` — the
// bootstrap for a recruit shard whose log starts behind the leader's
// retention floor. All segment indexing is relative to the floor, so
// `first` needs no alignment.
func (b *Broker) resetTo(topicName string, pi int, first int64) {
	part, err := b.partRef(topicName, pi)
	if err != nil {
		return
	}
	part.mu.Lock()
	part.segs = nil
	part.first = first
	part.end = first
	part.committed = first
	part.totalBytes = 0
	part.trimmedCum = 0
	part.inflight = 0
	part.epochs = nil
	part.mu.Unlock()
}

// setCommitted moves a partition's commit mark to `mark` (clamped to
// the retained range) without firing OnCommit — the handoff restore
// path, where the coordinator re-applies its own commit mark to a
// promoted follower whose lazily-replicated local mark may trail it.
// The in-flight account is recomputed to match.
func (b *Broker) setCommitted(topicName string, pi int, mark int64) {
	part, err := b.partRef(topicName, pi)
	if err != nil {
		return
	}
	segSize := int64(b.cfg.SegmentSize)
	part.mu.Lock()
	if mark < part.first {
		mark = part.first
	}
	if mark > part.end {
		mark = part.end
	}
	if mark != part.committed {
		part.committed = mark
		part.inflight = part.totalBytes - part.bytesThrough(mark, segSize)
	}
	part.mu.Unlock()
}

// wakeFetchers fires a partition's parked data waiters — the cluster
// calls this when the acknowledged watermark advances, because a parked
// consumer's fetchable range is gated by the watermark, not just by the
// leader's log end.
func (b *Broker) wakeFetchers(topicName string, pi int) {
	part, err := b.partRef(topicName, pi)
	if err != nil {
		return
	}
	part.mu.Lock()
	ws := part.waiters
	part.waiters = nil
	part.mu.Unlock()
	for _, w := range ws {
		w.Fire()
	}
}

// registerFetchWaiter parks w on a partition's data-waiter list (the
// cluster's catch-up runners use this to sleep until the leader's log
// grows).
func (b *Broker) registerFetchWaiter(topicName string, pi int, w *vclock.Event) {
	part, err := b.partRef(topicName, pi)
	if err != nil {
		w.Fire()
		return
	}
	part.mu.Lock()
	registerEvent(&part.waiters, w)
	part.mu.Unlock()
}

// clusterAppend is the leader-side append of one cluster publish: the
// per-partition body of Broker.publish (backpressure park, modeled
// append cost, consumer wake) exposed so the Cluster can route each
// sub-batch to the partition's current leader shard and re-drive it
// after a mid-publish handoff. idxs are the batch indices destined for
// this partition; kv resolves index→(key, value); add is their payload
// byte total; when out is non-nil it has len(idxs) slots and receives
// the appended messages. Returns the appended offset range [start, end)
// and the modeled finish time (the caller sleeps once, to the slowest
// partition, after all sub-batches land).
func (b *Broker) clusterAppend(ctx context.Context, topicName string, pi int, idxs []int32, kv func(int) ([]byte, []byte), add int64, out []Message) (start, end int64, finish time.Time, err error) {
	t, terr := b.topicByName(topicName)
	if terr != nil {
		return 0, 0, time.Time{}, terr
	}
	if pi < 0 || pi >= len(t.partitions) {
		return 0, 0, time.Time{}, fmt.Errorf("streaming: partition %d out of range for %q", pi, topicName)
	}
	part := t.partitions[pi]
	clock := b.cfg.Clock
	segSize := b.cfg.SegmentSize
	part.mu.Lock()
	for part.fencePub || (b.cfg.MaxInflightBytes > 0 && part.inflight > 0 && part.inflight+add > b.cfg.MaxInflightBytes) {
		w := vclock.NewEvent(clock)
		registerEvent(&part.space, w)
		part.mu.Unlock()
		// Same closed/canceled discipline as Broker.publish: re-check after
		// registering, fire on every abandoning exit (see registerEvent).
		if b.isClosed() {
			w.Fire()
			return 0, 0, time.Time{}, ErrBrokerClosed
		}
		if !w.Wait(ctx) {
			w.Fire()
			return 0, 0, time.Time{}, ctx.Err()
		}
		if b.isClosed() {
			return 0, 0, time.Time{}, ErrBrokerClosed
		}
		part.mu.Lock()
	}
	now := clock.Now()
	st := part.nextFree
	if st.Before(now) {
		st = now
	}
	finish = st.Add(time.Duration(len(idxs)) * b.cfg.AppendCost)
	part.nextFree = finish
	start = part.end
	for k, i := range idxs {
		k0, v0 := kv(int(i))
		m := part.appendInPlace(t.name, pi, k0, v0, now, segSize)
		if out != nil {
			out[k] = *m
		}
	}
	end = part.end
	part.inflight += add
	waiters := part.waiters
	part.waiters = nil
	part.mu.Unlock()
	for _, w := range waiters {
		w.Fire()
	}
	return start, end, finish, nil
}
