package streaming

import (
	"context"
	"sync"
	"testing"
	"time"

	"gopilot/internal/dist"
	"gopilot/internal/infra/serverless"
	"gopilot/internal/vclock"
)

func newPlatform(clock vclock.Clock) *serverless.Platform {
	return serverless.New(serverless.Config{
		Name:             "lambda",
		ColdStart:        dist.Constant(1),
		WarmStart:        dist.Constant(0.005),
		WarmTTL:          time.Hour,
		ConcurrencyLimit: 64,
		Clock:            clock,
	})
}

func TestServerlessProcessorConsumesAll(t *testing.T) {
	clock := fastClock()
	b := newBroker(clock)
	defer b.Close()
	b.CreateTopic("t", 4)
	platform := newPlatform(clock)
	defer platform.Shutdown()

	var mu sync.Mutex
	seen := map[int64]bool{}
	proc, err := StartServerless(context.Background(), platform, b, ServerlessConfig{
		Topic: "t", Function: "recon", BatchSize: 16,
		CostPerMessage: time.Millisecond,
		Handler: func(_ context.Context, m Message) error {
			mu.Lock()
			seen[int64(m.Partition)<<32|m.Offset] = true
			mu.Unlock()
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	const n = 120
	for i := 0; i < n; i++ {
		if _, err := b.Publish(context.Background(), "t", nil, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := proc.WaitProcessed(ctx, n); err != nil {
		t.Fatalf("processed %d/%d: %v", proc.Processed(), n, err)
	}
	proc.Stop()
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != n {
		t.Fatalf("distinct messages = %d, want %d", len(seen), n)
	}
	if proc.Throughput() <= 0 {
		t.Error("throughput not measured")
	}
	// One cold start per partition dispatcher at most a handful.
	if platform.ColdStarts() == 0 {
		t.Error("no cold start recorded despite fresh platform")
	}
	if platform.WarmStarts() == 0 {
		t.Error("no warm reuse despite many batches")
	}
}

func TestServerlessValidation(t *testing.T) {
	clock := fastClock()
	b := newBroker(clock)
	defer b.Close()
	b.CreateTopic("t", 1)
	platform := newPlatform(clock)
	defer platform.Shutdown()
	if _, err := StartServerless(context.Background(), platform, b, ServerlessConfig{Topic: "t"}); err == nil {
		t.Error("nil handler accepted")
	}
	if _, err := StartServerless(context.Background(), platform, b, ServerlessConfig{
		Topic:   "ghost",
		Handler: func(context.Context, Message) error { return nil },
	}); err == nil {
		t.Error("unknown topic accepted")
	}
}

func TestServerlessColdStartShowsInLatency(t *testing.T) {
	clock := vclock.NewScaled(500)
	b := NewBroker(BrokerConfig{AppendCost: time.Millisecond, FetchLatency: time.Millisecond, Clock: clock})
	defer b.Close()
	b.CreateTopic("t", 1)
	// Expensive cold start, no warm expiry within the test.
	platform := serverless.New(serverless.Config{
		ColdStart: dist.Constant(5), WarmStart: dist.Constant(0.005),
		WarmTTL: time.Hour, Clock: clock,
	})
	defer platform.Shutdown()

	proc, err := StartServerless(context.Background(), platform, b, ServerlessConfig{
		Topic: "t", BatchSize: 8,
		Handler: func(context.Context, Message) error { return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	// First message pays the cold start; publish more afterwards.
	b.Publish(context.Background(), "t", nil, []byte("first"))
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := proc.WaitProcessed(ctx, 1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		b.Publish(ctx, "t", nil, []byte("more"))
	}
	if err := proc.WaitProcessed(ctx, 41); err != nil {
		t.Fatalf("processed %d/41: %v", proc.Processed(), err)
	}
	proc.Stop()
	lat := proc.LatencyStats()
	// The cold-started first message dominates the max; warm batches are
	// far cheaper than the 5s cold start.
	if lat.Max < 4 {
		t.Errorf("max latency %.2fs does not reflect the 5s cold start", lat.Max)
	}
	if lat.Median > lat.Max/2 {
		t.Errorf("median %.2fs not ≪ max %.2fs (warm path should dominate)", lat.Median, lat.Max)
	}
}

func TestServerlessStopTerminates(t *testing.T) {
	clock := fastClock()
	b := newBroker(clock)
	defer b.Close()
	b.CreateTopic("t", 2)
	platform := newPlatform(clock)
	defer platform.Shutdown()
	proc, err := StartServerless(context.Background(), platform, b, ServerlessConfig{
		Topic:   "t",
		Handler: func(context.Context, Message) error { return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		proc.Stop()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Stop hung")
	}
}
