package streaming

import (
	"context"
	"errors"
	"fmt"
	"time"

	"gopilot/internal/vclock"
)

// The Cluster's Bus surface: the replicated-log data plane. Publishes
// append on each partition's leader shard and park until the batch is
// acknowledged on quorum (every full member holds it); fetches serve
// zero-copy views from the leader's log capped at the acknowledged
// watermark; commits route to the leader and advance the coordinator's
// cluster-truth mark. A leader handoff mid-call re-routes transparently:
// parked publishes re-append their un-acknowledged suffix to the new
// leader, parked fetches re-resolve the leader on wake.

// pubRec tracks one partition's sub-batch through a cluster publish:
// where it landed ([s, e) on the leader under `epoch`), which batch
// indices it carries, and the result slots it fills.
type pubRec struct {
	p     int
	idxs  []int32
	res   []Message // len(idxs) result slots, nil for PublishValues
	add   int64     // payload bytes of idxs
	s, e  int64
	epoch int
}

// Partitions returns a topic's partition count.
func (c *Cluster) Partitions(name string) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return 0, ErrBrokerClosed
	}
	t, ok := c.topics[name]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrUnknownTopic, name)
	}
	return len(t.parts), nil
}

// Publish appends one message through the replicated log, returning once
// it is acknowledged on quorum.
func (c *Cluster) Publish(ctx context.Context, topic string, key, value []byte) (Message, error) {
	out := make([]Message, 0, 1)
	err := c.publish(ctx, topic, 1, func(int) ([]byte, []byte) { return key, value }, &out)
	if err != nil {
		return Message{}, err
	}
	return out[0], nil
}

// PublishBatch appends a batch of (key, value) pairs, returning once
// every sub-batch is acknowledged on quorum.
func (c *Cluster) PublishBatch(ctx context.Context, topic string, kvs [][2][]byte) ([]Message, error) {
	out := make([]Message, 0, len(kvs))
	err := c.publish(ctx, topic, len(kvs), func(i int) ([]byte, []byte) { return kvs[i][0], kvs[i][1] }, &out)
	return out, err
}

// PublishValues appends a key-less batch (the bulk-ingest fast path).
func (c *Cluster) PublishValues(ctx context.Context, topic string, values [][]byte) error {
	return c.publish(ctx, topic, len(values), func(i int) ([]byte, []byte) { return nil, values[i] }, nil)
}

// publish is the shared producer path: assign partitions under the
// cluster lock (same counting-sort grouping as Broker.publish), append
// each sub-batch on its partition's current leader, then park until
// every sub-batch is acknowledged on quorum. A handoff while parked
// re-appends the un-acknowledged suffix — the prefix below the handoff's
// truncation point survived on the promoted log — so a publish that
// returns nil has every message durable on every full member.
func (c *Cluster) publish(ctx context.Context, topicName string, n int, kv func(int) ([]byte, []byte), out *[]Message) error {
	if n == 0 {
		return nil
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrBrokerClosed
	}
	t, ok := c.topics[topicName]
	if !ok {
		c.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrUnknownTopic, topicName)
	}
	nparts := len(t.parts)

	sc := pubScratchPool.Get().(*pubScratch)
	defer pubScratchPool.Put(sc)
	if cap(sc.assign) < n {
		sc.assign = make([]int32, n)
		sc.order = make([]int32, n)
	}
	if cap(sc.counts) < nparts {
		sc.counts = make([]int32, nparts)
		sc.fill = make([]int32, nparts)
		sc.bytes = make([]int64, nparts)
	}
	assign, order := sc.assign[:n], sc.order[:n]
	counts, fill, bytes := sc.counts[:nparts], sc.fill[:nparts], sc.bytes[:nparts]
	for p := range counts {
		counts[p], bytes[p] = 0, 0
	}
	for i := 0; i < n; i++ {
		k, v := kv(i)
		var p int
		if len(k) > 0 {
			p = partitionOf(k, nparts)
		} else {
			p = t.rr % nparts
			t.rr++
		}
		assign[i] = int32(p)
		counts[p]++
		bytes[p] += int64(len(k) + len(v))
	}
	c.mu.Unlock()

	var sum int32
	for p := range counts {
		fill[p] = sum
		sum += counts[p]
	}
	for i := 0; i < n; i++ {
		p := assign[i]
		order[fill[p]] = int32(i)
		fill[p]++
	}

	var res []Message
	if out != nil {
		base := len(*out)
		*out = append(*out, make([]Message, n)...)
		res = (*out)[base:]
	}

	// Phase 1: append every sub-batch on its partition's current leader.
	recs := make([]pubRec, 0, 4)
	var latest time.Time
	var lo int32
	for p := 0; p < nparts; p++ {
		idxs := order[lo:fill[p]]
		slot := res
		if res != nil {
			slot = res[lo:fill[p]]
		}
		lo = fill[p]
		if len(idxs) == 0 {
			continue
		}
		r := pubRec{p: p, idxs: idxs, res: slot, add: bytes[p]}
		if err := c.appendToLeader(ctx, t, &r, kv, &latest); err != nil {
			return err
		}
		recs = append(recs, r)
	}

	// Phase 2: wait for quorum acknowledgement, re-appending across
	// handoffs.
	for ri := range recs {
		if err := c.awaitAcked(ctx, t, &recs[ri], kv, &latest); err != nil {
			return err
		}
	}

	// Phase 3: one modeled sleep to the slowest partition's append finish
	// (acknowledgement waits above advance virtual time on their own).
	if wait := latest.Sub(c.clock.Now()); wait > 0 {
		if !c.clock.Sleep(ctx, wait) {
			return ctx.Err()
		}
	}
	return nil
}

// appendToLeader appends one sub-batch on its partition's current
// leader, parking while the partition is fenced mid-handoff and
// re-routing if the leader dies underneath the call. Fills r.s, r.e and
// r.epoch; res slots (when present) receive the appended messages.
func (c *Cluster) appendToLeader(ctx context.Context, t *fedTopic, r *pubRec, kv func(int) ([]byte, []byte), latest *time.Time) error {
	for {
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return ErrBrokerClosed
		}
		p := t.parts[r.p]
		if !p.availableAt.IsZero() {
			w := vclock.NewEvent(c.clock)
			registerEvent(&c.ctrl, w)
			c.mu.Unlock()
			if !w.Wait(ctx) {
				w.Fire()
				return ctx.Err()
			}
			continue
		}
		leader := p.replicas[0]
		r.epoch = p.epoch
		c.mu.Unlock()
		s, e, finish, err := c.shards[leader].clusterAppend(ctx, t.name, r.p, r.idxs, kv, r.add, r.res)
		if err != nil {
			if errors.Is(err, ErrBrokerClosed) && !c.isClosed() {
				continue // the leader died under us; retry on its successor
			}
			return err
		}
		r.s, r.e = s, e
		if finish.After(*latest) {
			*latest = finish
		}
		// Under RF=1 the append itself is the quorum: advance the
		// watermark now (with followers, the catch-up runners advance it).
		c.mu.Lock()
		if !c.closed {
			c.recomputeAckedLocked(t, t.parts[r.p])
		}
		c.mu.Unlock()
		return nil
	}
}

// awaitAcked parks until a sub-batch's offset range is below the
// partition's acknowledged watermark. If a handoff intervened, the
// suffix above that handoff's truncation point was discarded with the
// deposed leader's log: re-append it to the new leader (the acknowledged
// prefix stays where it is) and keep waiting.
func (c *Cluster) awaitAcked(ctx context.Context, t *fedTopic, r *pubRec, kv func(int) ([]byte, []byte), latest *time.Time) error {
	for {
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return ErrBrokerClosed
		}
		p := t.parts[r.p]
		if p.acked >= r.e {
			c.mu.Unlock()
			return nil
		}
		if p.epoch != r.epoch {
			// The truncation point of the *first* handoff after our append
			// bounds what survived; later handoffs only truncate at or
			// above it (the watermark is monotone).
			durable := p.ackedAtEpoch[r.epoch+1]
			if durable > r.e {
				durable = r.e
			}
			skip := durable - r.s
			if skip < 0 {
				skip = 0
			}
			if skip >= int64(len(r.idxs)) {
				// The whole sub-batch survived; wait out the new epoch.
				r.epoch = p.epoch
				c.mu.Unlock()
				continue
			}
			if !p.availableAt.IsZero() {
				w := vclock.NewEvent(c.clock)
				registerEvent(&c.ctrl, w)
				c.mu.Unlock()
				if !w.Wait(ctx) {
					w.Fire()
					return ctx.Err()
				}
				continue
			}
			leader := p.replicas[0]
			newEpoch := p.epoch
			c.mu.Unlock()
			r.idxs = r.idxs[skip:]
			if r.res != nil {
				r.res = r.res[skip:]
			}
			r.add = 0
			for _, i := range r.idxs {
				k, v := kv(int(i))
				r.add += int64(len(k) + len(v))
			}
			s, e, finish, err := c.shards[leader].clusterAppend(ctx, t.name, r.p, r.idxs, kv, r.add, r.res)
			if err != nil {
				if errors.Is(err, ErrBrokerClosed) && !c.isClosed() {
					continue
				}
				return err
			}
			r.s, r.e, r.epoch = s, e, newEpoch
			if finish.After(*latest) {
				*latest = finish
			}
			c.mu.Lock()
			if !c.closed {
				c.recomputeAckedLocked(t, t.parts[r.p])
			}
			c.mu.Unlock()
			continue
		}
		// Park until the watermark advances or the epoch moves; both fire
		// the partition's ackWait list.
		w := vclock.NewEvent(c.clock)
		registerEvent(&p.ackWait, w)
		c.mu.Unlock()
		if !w.Wait(ctx) {
			w.Fire()
			return ctx.Err()
		}
		if c.isClosed() {
			return ErrBrokerClosed
		}
	}
}

// Fetch long-polls one partition (see FetchOrWait).
func (c *Cluster) Fetch(ctx context.Context, topic string, partition int, offset int64, max int) ([]Message, error) {
	_, msgs, err := c.FetchOrWait(ctx, topic, []int{partition}, []int64{offset}, 0, max)
	return msgs, err
}

// FetchOrWait is the consumer hot path (see Broker.FetchOrWait): one
// modeled long-poll over a set of partitions, served from each
// partition's leader log and capped at the acknowledged watermark —
// consumers never see offsets that could be truncated by a handoff. A
// partition mid-handoff or under an injected stall parks its fetchers on
// the control plane; leadership changes re-resolve transparently.
func (c *Cluster) FetchOrWait(ctx context.Context, topicName string, parts []int, offsets []int64, start, max int) (int, []Message, error) {
	nparts, err := c.Partitions(topicName)
	if err != nil {
		return 0, nil, err
	}
	if len(parts) == 0 {
		return 0, nil, errors.New("streaming: FetchOrWait needs at least one partition")
	}
	if len(offsets) != len(parts) {
		return 0, nil, fmt.Errorf("streaming: FetchOrWait got %d offsets for %d partitions", len(offsets), len(parts))
	}
	for _, pi := range parts {
		if pi < 0 || pi >= nparts {
			return 0, nil, fmt.Errorf("streaming: partition %d out of range for %q", pi, topicName)
		}
	}
	if max <= 0 {
		max = 512
	}
	if start < 0 {
		start = 0
	}
	if !c.clock.Sleep(ctx, c.fetchLatency) {
		return 0, nil, ctx.Err()
	}
	ackedSeen := make([]int64, len(parts))
	for {
		var w *vclock.Event
		retry := false
		for i := 0; i < len(parts) && !retry; i++ {
			j := (start + i) % len(parts)
			c.mu.Lock()
			if c.closed {
				c.mu.Unlock()
				if w != nil {
					w.Fire()
				}
				return 0, nil, ErrBrokerClosed
			}
			_, p, _ := c.fedPartition(topicName, parts[j])
			blocked := p.stalled || !p.availableAt.IsZero()
			leader := p.replicas[0]
			acked := p.acked
			ackedSeen[j] = acked
			if blocked {
				if w == nil {
					w = vclock.NewEvent(c.clock)
				}
				registerEvent(&c.ctrl, w)
				c.mu.Unlock()
				continue
			}
			c.mu.Unlock()
			lp, err := c.shards[leader].partRef(topicName, parts[j])
			if err != nil {
				// The leader died between snapshot and use: treat as a
				// control change and re-resolve next round.
				if w == nil {
					w = vclock.NewEvent(c.clock)
				}
				c.mu.Lock()
				registerEvent(&c.ctrl, w)
				c.mu.Unlock()
				retry = true
				continue
			}
			lp.mu.Lock()
			if offsets[j] < lp.first {
				oor := &OffsetOutOfRangeError{Topic: topicName, Partition: parts[j],
					Offset: offsets[j], Oldest: lp.first}
				lp.mu.Unlock()
				if w != nil {
					w.Fire()
				}
				return j, nil, oor
			}
			if limit := acked - offsets[j]; limit > 0 {
				m := max
				if int64(m) > limit {
					m = int(limit)
				}
				if batch := lp.view(offsets[j], m, c.segSize); len(batch) > 0 {
					lp.mu.Unlock()
					if w != nil {
						w.Fire() // mark registrations on earlier partitions dead
					}
					return j, batch, nil
				}
			}
			if w == nil {
				w = vclock.NewEvent(c.clock)
			}
			registerEvent(&lp.waiters, w)
			lp.mu.Unlock()
			c.mu.Lock()
			registerEvent(&c.ctrl, w)
			c.mu.Unlock()
		}
		// Close the register-vs-watermark race on real clocks: if any
		// partition's watermark moved past what this round's view check
		// used, the advance may have fired the waiter lists before we
		// registered — re-scan instead of parking.
		if !retry {
			c.mu.Lock()
			for i := 0; i < len(parts); i++ {
				j := (start + i) % len(parts)
				if _, p, err := c.fedPartition(topicName, parts[j]); err == nil && p.acked > ackedSeen[j] {
					retry = true
					break
				}
			}
			c.mu.Unlock()
		}
		if retry {
			if w != nil {
				w.Fire()
			}
			continue
		}
		if c.isClosed() {
			w.Fire()
			return 0, nil, ErrBrokerClosed
		}
		if !w.Wait(ctx) {
			w.Fire()
			return 0, nil, ctx.Err()
		}
		if c.isClosed() {
			return 0, nil, ErrBrokerClosed
		}
	}
}

// Commit acknowledges consumption through an offset: clamped to the
// acknowledged watermark (uncommitted ≥ unacknowledged, always), applied
// on the leader's log (whose OnCommit is the one observable commit
// stream), then recorded as the coordinator's cluster-truth mark — the
// mark a promoted leader is restored to, so cursors survive handoffs.
func (c *Cluster) Commit(topic string, partition int, through int64) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrBrokerClosed
	}
	_, p, err := c.fedPartition(topic, partition)
	if err != nil {
		c.mu.Unlock()
		return err
	}
	if through > p.acked {
		through = p.acked
	}
	leader := p.replicas[0]
	c.mu.Unlock()
	if err := c.shards[leader].Commit(topic, partition, through); err != nil {
		if errors.Is(err, ErrBrokerClosed) && !c.isClosed() {
			// The leader died mid-commit; the commit is lost with it — the
			// consumer re-delivers from its last durable cursor, which is
			// the at-least-once contract. Report closed only when the
			// cluster itself is gone.
			return nil
		}
		return err
	}
	c.mu.Lock()
	if _, p, err := c.fedPartition(topic, partition); err == nil && through > p.commit {
		p.commit = through
	}
	c.mu.Unlock()
	return nil
}

// Committed returns a partition's coordinator commit mark (the next
// uncommitted offset, as the cluster-truth cursor).
func (c *Cluster) Committed(topic string, partition int) (int64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return 0, ErrBrokerClosed
	}
	_, p, err := c.fedPartition(topic, partition)
	if err != nil {
		return 0, err
	}
	return p.commit, nil
}

// EndOffset returns the next offset awaiting quorum acknowledgement on a
// partition — the end of what a consumer can ever fetch, which is the
// end of the log as the Bus contract sees it.
func (c *Cluster) EndOffset(topic string, partition int) (int64, error) {
	return c.AckedOffset(topic, partition)
}
