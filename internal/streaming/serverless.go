package streaming

import (
	"context"
	"errors"
	"time"

	"gopilot/internal/dist"
	"gopilot/internal/infra"
	"gopilot/internal/infra/serverless"
	"gopilot/internal/vclock"
)

// ServerlessConfig describes a FaaS-backed stream processor: the
// serverless deployment mode of Pilot-Streaming studied in [73], where
// message batches are dispatched to function invocations instead of
// long-running pilot workers. Cold starts and the platform's concurrency
// limit shape latency and throughput.
type ServerlessConfig struct {
	// Topic to consume.
	Topic string
	// Function is the FaaS function name (its warm pool is keyed by this).
	Function string
	// BatchSize bounds messages per invocation (default 64, like a Kinesis
	// → Lambda event source mapping).
	BatchSize int
	// CostPerMessage is the modeled processing cost per message inside the
	// function, charged once per invocation batch.
	CostPerMessage time.Duration
	// CostCV makes per-invocation batch cost stochastic (lognormal
	// multiplier, mean 1). Zero keeps costs deterministic.
	CostCV float64
	// Stream is the processor's slot on the experiment's seeding spine;
	// the dispatcher for partition q draws its cost jitter from Stream's
	// "partition"/<q> child. Only consumed when CostCV > 0. Defaults to
	// dist.Unseeded("streaming/serverless/<function>").
	Stream *dist.Stream
	// Handler is the real computation applied to each message inside the
	// invocation.
	Handler func(ctx context.Context, msg Message) error
	// PureHandler marks Handler as a side-effect-free CPU kernel: each
	// invocation's handler loop then runs as one parallel compute phase
	// (see ProcessorConfig.PureHandler), overlapping invocations on real
	// cores without disturbing the virtual-time schedule.
	PureHandler bool
}

// ServerlessProcessor drives a topic through function invocations, one
// ordered dispatcher per partition (matching the per-shard ordering of
// real event source mappings).
type ServerlessProcessor struct {
	*counters
	cfg      ServerlessConfig
	broker   Bus
	platform *serverless.Platform

	stop context.CancelFunc
	wg   *vclock.Group
}

// StartServerless begins consuming the topic via FaaS invocations.
func StartServerless(ctx context.Context, platform *serverless.Platform, broker Bus, cfg ServerlessConfig) (*ServerlessProcessor, error) {
	if cfg.Handler == nil {
		return nil, errors.New("streaming: serverless processor needs a handler")
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 64
	}
	if cfg.Function == "" {
		cfg.Function = "stream-fn"
	}
	if cfg.Stream == nil {
		cfg.Stream = dist.Unseeded("streaming/serverless/" + cfg.Function)
	}
	nparts, err := broker.Partitions(cfg.Topic)
	if err != nil {
		return nil, err
	}
	runCtx, cancel := context.WithCancel(ctx)
	p := &ServerlessProcessor{
		counters: newCounters(broker.Clock(), "faas_e2e_latency_s"),
		cfg:      cfg,
		broker:   broker,
		platform: platform,
		stop:     cancel,
		wg:       vclock.NewGroup(broker.Clock()),
	}
	partRoot := cfg.Stream.Named("partition")
	for part := 0; part < nparts; part++ {
		part := part
		var jitter dist.Dist
		if cfg.CostCV > 0 {
			jitter = dist.LogNormalFrom(partRoot.SplitLabel(uint64(part)), 1, cfg.CostCV)
		}
		p.wg.Add(1)
		vclock.Go(broker.Clock(), func() {
			defer p.wg.Done()
			p.dispatch(runCtx, part, jitter)
		})
	}
	return p, nil
}

// dispatch is the per-partition poll → invoke loop.
func (p *ServerlessProcessor) dispatch(ctx context.Context, part int, jitter dist.Dist) {
	clock := p.broker.Clock()
	parts := []int{part}
	offsets := []int64{0}
	for {
		if ctx.Err() != nil {
			return
		}
		// One combined long-poll per invocation batch (one modeled RTT,
		// clock-aware park while the shard is drained); each dispatcher
		// owns exactly one partition, so blocking here is the per-shard
		// ordering a real event source mapping provides.
		_, batch, err := p.broker.FetchOrWait(ctx, p.cfg.Topic, parts, offsets, 0, p.cfg.BatchSize)
		if err != nil {
			return
		}
		// One function invocation per batch; the invocation pays cold or
		// warm start inside the platform, then the modeled batch cost and
		// the handler loop through the shared batch-execution core
		// (latency is recorded after the whole invocation succeeds, so no
		// per-message afterEach here).
		err = p.platform.Invoke(ctx, p.cfg.Function, func(ictx context.Context, _ infra.Allocation) error {
			return chargeAndRun(ictx, clock, batch, p.cfg.CostPerMessage, jitter,
				p.cfg.PureHandler, "serverless handler at",
				func(hctx context.Context, m *Message) error { return p.cfg.Handler(hctx, *m) },
				nil)
		})
		if err != nil {
			if ctx.Err() != nil || errors.Is(err, serverless.ErrClosed) {
				return
			}
			// Invocation failure: the batch is retried (at-least-once
			// semantics of real event source mappings).
			continue
		}
		p.recordBatch(clock.Now(), batch)
		offsets[0] += int64(len(batch))
	}
}

// Stop terminates the dispatchers.
func (p *ServerlessProcessor) Stop() {
	p.stop()
	p.wg.Wait()
	p.markStopped()
}
