package streaming

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"gopilot/internal/dist"
	"gopilot/internal/infra"
	"gopilot/internal/infra/serverless"
	"gopilot/internal/metrics"
	"gopilot/internal/vclock"
)

// ServerlessConfig describes a FaaS-backed stream processor: the
// serverless deployment mode of Pilot-Streaming studied in [73], where
// message batches are dispatched to function invocations instead of
// long-running pilot workers. Cold starts and the platform's concurrency
// limit shape latency and throughput.
type ServerlessConfig struct {
	// Topic to consume.
	Topic string
	// Function is the FaaS function name (its warm pool is keyed by this).
	Function string
	// BatchSize bounds messages per invocation (default 64, like a Kinesis
	// → Lambda event source mapping).
	BatchSize int
	// CostPerMessage is the modeled processing cost per message inside the
	// function, charged once per invocation batch.
	CostPerMessage time.Duration
	// CostCV makes per-invocation batch cost stochastic (lognormal
	// multiplier, mean 1). Zero keeps costs deterministic.
	CostCV float64
	// Stream is the processor's slot on the experiment's seeding spine;
	// the dispatcher for partition q draws its cost jitter from Stream's
	// "partition"/<q> child. Only consumed when CostCV > 0. Defaults to
	// dist.Unseeded("streaming/serverless/<function>").
	Stream *dist.Stream
	// Handler is the real computation applied to each message inside the
	// invocation.
	Handler func(ctx context.Context, msg Message) error
	// PureHandler marks Handler as a side-effect-free CPU kernel: each
	// invocation's handler loop then runs as one parallel compute phase
	// (see ProcessorConfig.PureHandler), overlapping invocations on real
	// cores without disturbing the virtual-time schedule.
	PureHandler bool
}

// ServerlessProcessor drives a topic through function invocations, one
// ordered dispatcher per partition (matching the per-shard ordering of
// real event source mappings).
type ServerlessProcessor struct {
	cfg      ServerlessConfig
	broker   *Broker
	platform *serverless.Platform

	stop context.CancelFunc
	wg   *vclock.Group

	progress *vclock.Notifier

	mu        sync.Mutex
	processed int64
	started   time.Time
	stopped   time.Time
	latencies *metrics.Series
}

// StartServerless begins consuming the topic via FaaS invocations.
func StartServerless(ctx context.Context, platform *serverless.Platform, broker *Broker, cfg ServerlessConfig) (*ServerlessProcessor, error) {
	if cfg.Handler == nil {
		return nil, errors.New("streaming: serverless processor needs a handler")
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 64
	}
	if cfg.Function == "" {
		cfg.Function = "stream-fn"
	}
	if cfg.Stream == nil {
		cfg.Stream = dist.Unseeded("streaming/serverless/" + cfg.Function)
	}
	nparts, err := broker.Partitions(cfg.Topic)
	if err != nil {
		return nil, err
	}
	runCtx, cancel := context.WithCancel(ctx)
	p := &ServerlessProcessor{
		cfg:       cfg,
		broker:    broker,
		platform:  platform,
		stop:      cancel,
		wg:        vclock.NewGroup(broker.Clock()),
		progress:  vclock.NewNotifier(broker.Clock()),
		started:   broker.Clock().Now(),
		latencies: metrics.NewSeries("faas_e2e_latency_s"),
	}
	partRoot := cfg.Stream.Named("partition")
	for part := 0; part < nparts; part++ {
		part := part
		var jitter dist.Dist
		if cfg.CostCV > 0 {
			jitter = dist.LogNormalFrom(partRoot.SplitLabel(uint64(part)), 1, cfg.CostCV)
		}
		p.wg.Add(1)
		vclock.Go(broker.Clock(), func() {
			defer p.wg.Done()
			p.dispatch(runCtx, part, jitter)
		})
	}
	return p, nil
}

// dispatch is the per-partition poll → invoke loop.
func (p *ServerlessProcessor) dispatch(ctx context.Context, part int, jitter dist.Dist) {
	clock := p.broker.Clock()
	var offset int64
	for {
		if ctx.Err() != nil {
			return
		}
		// Fetch long-polls through the broker's clock-aware wait; each
		// dispatcher owns exactly one partition, so blocking here is the
		// per-shard ordering a real event source mapping provides.
		batch, err := p.broker.Fetch(ctx, p.cfg.Topic, part, offset, p.cfg.BatchSize)
		if err != nil {
			if errors.Is(err, ErrBrokerClosed) || ctx.Err() != nil {
				return
			}
			return
		}
		// One function invocation per batch; the invocation pays cold or
		// warm start inside the platform, then the modeled batch cost.
		err = p.platform.Invoke(ctx, p.cfg.Function, func(ictx context.Context, _ infra.Allocation) error {
			if p.cfg.CostPerMessage > 0 {
				cost := time.Duration(len(batch)) * p.cfg.CostPerMessage
				if jitter != nil {
					cost = time.Duration(float64(cost) * jitter.Sample())
				}
				if !clock.Sleep(ictx, cost) {
					return ictx.Err()
				}
			}
			if p.cfg.PureHandler {
				var herr error
				if !vclock.Compute(clock, ictx, func() {
					for _, m := range batch {
						if err := p.cfg.Handler(ictx, m); err != nil {
							herr = fmt.Errorf("streaming: serverless handler at %s[%d]@%d: %w",
								m.Topic, m.Partition, m.Offset, err)
							return
						}
					}
				}) {
					return ictx.Err()
				}
				return herr
			}
			for _, m := range batch {
				if err := p.cfg.Handler(ictx, m); err != nil {
					return fmt.Errorf("streaming: serverless handler at %s[%d]@%d: %w",
						m.Topic, m.Partition, m.Offset, err)
				}
			}
			return nil
		})
		if err != nil {
			if ctx.Err() != nil || errors.Is(err, serverless.ErrClosed) {
				return
			}
			// Invocation failure: the batch is retried (at-least-once
			// semantics of real event source mappings).
			continue
		}
		now := clock.Now()
		p.mu.Lock()
		for _, m := range batch {
			p.latencies.Add(now.Sub(m.Published).Seconds())
			p.processed++
		}
		p.mu.Unlock()
		p.progress.Set()
		offset += int64(len(batch))
	}
}

// Processed returns the number of messages completed.
func (p *ServerlessProcessor) Processed() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.processed
}

// WaitProcessed blocks until at least n messages completed or ctx ends.
func (p *ServerlessProcessor) WaitProcessed(ctx context.Context, n int64) error {
	for {
		if p.Processed() >= n {
			return nil
		}
		if !p.progress.Wait(ctx) {
			return ctx.Err()
		}
	}
}

// Stop terminates the dispatchers.
func (p *ServerlessProcessor) Stop() {
	p.stop()
	p.wg.Wait()
	p.mu.Lock()
	p.stopped = p.broker.Clock().Now()
	p.mu.Unlock()
}

// Throughput returns completed messages per modeled second.
func (p *ServerlessProcessor) Throughput() float64 {
	p.mu.Lock()
	processed := p.processed
	end := p.stopped
	p.mu.Unlock()
	if end.IsZero() {
		end = p.broker.Clock().Now()
	}
	elapsed := end.Sub(p.started).Seconds()
	if elapsed <= 0 {
		return 0
	}
	return float64(processed) / elapsed
}

// LatencyStats summarizes end-to-end latency (seconds).
func (p *ServerlessProcessor) LatencyStats() metrics.Summary { return p.latencies.Summary() }
