// Package streaming implements Pilot-Streaming [32]: a partitioned-log
// message broker (Kafka-class semantics: topics, partitions, offsets,
// per-partition ordering) plus pilot-managed stream processors. The broker
// models per-partition append capacity as a queueing process in virtual
// time, so the throughput-vs-partitions and latency-vs-load shapes of the
// paper's streaming evaluation (E7/E8/E13) emerge from first principles.
//
// The data plane is built for million-message runs (DESIGN.md "Streaming
// data plane"): each partition is a segmented append-only log of
// fixed-size immutable segments, fetches return read-only views into
// those segments instead of copying, and all modeled accounting (append
// cost, long-poll RTT) is amortized per batch, so one PublishBatch or
// FetchOrWait costs one scheduler interaction on vclock.Virtual no matter
// how many messages it moves.
package streaming

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"time"

	"gopilot/internal/plan"
	"gopilot/internal/vclock"
)

// Message is one record in a partitioned log.
//
// Messages returned by Fetch/FetchOrWait are read-only views into the
// broker's log segments, and Key/Value alias the byte slices the producer
// published: neither consumers nor producers may mutate them after the
// publish call returns (the zero-copy aliasing contract, DESIGN.md
// "Streaming data plane").
type Message struct {
	Topic     string
	Partition int
	Offset    int64
	Key       []byte
	Value     []byte
	// Published is the modeled time the producer handed the message to the
	// broker (before broker-side queueing), so end-to-end latency includes
	// broker delay.
	Published time.Time
}

// BrokerConfig configures a Broker.
type BrokerConfig struct {
	// Name labels the broker.
	Name string
	// AppendCost is the modeled broker-side cost per message appended to a
	// partition; it bounds per-partition throughput at 1/AppendCost msg/s.
	// Default 100µs (≈10k msg/s per partition).
	AppendCost time.Duration
	// FetchLatency is the modeled cost per consumer long-poll round trip
	// (charged once per Fetch/FetchOrWait call, however many messages the
	// poll returns and however long it parks). Default 1ms.
	FetchLatency time.Duration
	// SegmentSize is the number of messages per log segment (default
	// 4096). A segment's backing array is allocated once at full capacity
	// and never reallocated, which is what makes fetched views stable.
	SegmentSize int
	// MaxInflightBytes bounds, per partition, the bytes published but not
	// yet committed (see Commit). When the bound is hit, publishes to that
	// partition block in modeled time until consumers commit — the
	// backpressure that keeps a lagging consumer group from being buried.
	// Zero disables backpressure (consumers that never commit, like plain
	// Processors, then run unthrottled).
	MaxInflightBytes int64
	// OnCommit, if set, observes every *applied* commit: the partition's
	// mark moved from `from` to `through`. Clamped and no-op commits are
	// not reported. Invoked under the partition lock, so callbacks see
	// per-partition commits in application order and must not call back
	// into the broker. The chaos invariant checker uses this to prove
	// consumer cursors never rewind.
	OnCommit func(topic string, partition int, from, through int64)
	// Clock supplies virtual time; defaults to vclock.Real.
	Clock vclock.Clock
}

// Broker is an in-process partitioned-log message broker.
type Broker struct {
	cfg BrokerConfig

	mu          sync.Mutex
	topics      map[string]*topic
	order       []*topic // creation order: deterministic iteration for Close
	closed      bool
	commitDelay time.Duration // injected commit skew (chaos), zero normally
}

type topic struct {
	name       string
	partitions []*partition
	// rr is the round-robin cursor for key-less publishes. It is shared
	// mutable state across all producers of the topic, advanced under the
	// broker lock while a batch's partitions are being assigned — so
	// placement is a pure function of the topic-wide publish order. On
	// vclock.Virtual that order is seed-determined, which makes key-less
	// placement bit-identical across same-seed runs
	// (TestKeylessPlacementDeterministicAcrossProducers); on real clocks
	// concurrent producers race for the cursor and placement is only
	// guaranteed to stay balanced, not reproducible.
	rr int
}

// segment is a fixed-size run of the partition log. msgs is allocated at
// full capacity once: appends never reallocate the backing array and
// sealed entries are never rewritten, so a sub-slice handed to a consumer
// remains valid and immutable while the writer keeps appending behind it.
// cum[i] is the partition-cumulative payload byte total through msgs[i]
// (inclusive), which makes the bytes of any committed offset range a
// two-lookup subtraction instead of a per-message walk.
type segment struct {
	msgs []Message
	cum  []int64
}

// newSegment allocates a segment with both arrays at full capacity in
// one struct-sized allocation each; capacities are exact so neither ever
// reallocates (the stable-backing-array invariant).
func newSegment(segSize int) *segment {
	return &segment{
		msgs: make([]Message, 0, segSize),
		cum:  make([]int64, 0, segSize),
	}
}

type partition struct {
	mu       sync.Mutex
	segs     []*segment
	end      int64     // next offset to be written
	nextFree time.Time // modeled time the partition finishes current appends

	// curEpoch is the leadership epoch stamped onto new appends; the
	// federated Cluster bumps it on every leader handoff (standalone
	// brokers stay at epoch 0). epochs is the compact epoch-span chain of
	// the retained log: epochs[i] says offsets from epochs[i].Start up to
	// the next span's Start were appended under that epoch. One entry per
	// leadership change, so the chain stays tiny and is retained across
	// trims (divergence detection needs history below the current end).
	curEpoch int
	epochs   []plan.EpochSpan

	committed  int64 // offsets below this are consumer-acknowledged
	inflight   int64 // bytes in [committed, end): published, not yet committed
	totalBytes int64 // cumulative payload bytes ever appended (feeds segment.cum)

	// first is the oldest retained offset. Trim discards whole sealed
	// segments, so first is always segment-aligned: segs[0] begins at
	// first, and the segment holding offset o is segs[(o-first)/segSize].
	first int64
	// trimmedCum is the cumulative payload byte total through offset
	// first — the prefix the trimmed segments carried — so bytesThrough
	// stays a two-lookup subtraction across trims and resident bytes are
	// totalBytes - trimmedCum.
	trimmedCum int64

	// down marks an injected unavailability window (chaos): while set,
	// consumers see no data past their offsets and park as if the log were
	// empty. Producers are unaffected — the blackout is on the fetch side.
	down bool
	// fencePub parks producers (in the backpressure loop) regardless of
	// in-flight bytes: the write fence a federated cluster drops during a
	// leader handoff or while a severed replication link would leave a
	// publish unacknowledgeable. Clearing it wakes parked producers.
	fencePub bool

	waiters []*vclock.Event // consumers parked until data arrives
	space   []*vclock.Event // producers parked until inflight drops
}

// ErrUnknownTopic is returned for operations on absent topics.
var ErrUnknownTopic = errors.New("streaming: unknown topic")

// ErrBrokerClosed is returned after Close.
var ErrBrokerClosed = errors.New("streaming: broker closed")

// ErrOffsetOutOfRange is the sentinel that errors.Is matches when a
// fetch asks for an offset below the partition's oldest retained one —
// retention trimmed the log past the requested position. The concrete
// error is *OffsetOutOfRangeError; errors.As extracts the coordinates,
// and Oldest is where a consumer should resume (the
// auto.offset.reset=earliest policy Group applies).
var ErrOffsetOutOfRange = errors.New("streaming: offset below oldest retained")

// OffsetOutOfRangeError reports a fetch below the retention floor.
type OffsetOutOfRangeError struct {
	Topic     string
	Partition int
	// Offset is the requested position; Oldest the oldest still-retained
	// offset (fetches from Oldest succeed).
	Offset, Oldest int64
}

// Error implements error.
func (e *OffsetOutOfRangeError) Error() string {
	return fmt.Sprintf("streaming: %s[%d] offset %d below oldest retained %d",
		e.Topic, e.Partition, e.Offset, e.Oldest)
}

// Is makes errors.Is(err, ErrOffsetOutOfRange) true.
func (e *OffsetOutOfRangeError) Is(target error) bool { return target == ErrOffsetOutOfRange }

// NewBroker creates a broker.
func NewBroker(cfg BrokerConfig) *Broker {
	if cfg.Name == "" {
		cfg.Name = "broker"
	}
	if cfg.AppendCost <= 0 {
		cfg.AppendCost = 100 * time.Microsecond
	}
	if cfg.FetchLatency <= 0 {
		cfg.FetchLatency = time.Millisecond
	}
	if cfg.SegmentSize <= 0 {
		cfg.SegmentSize = 4096
	}
	if cfg.Clock == nil {
		cfg.Clock = vclock.NewReal()
	}
	return &Broker{cfg: cfg, topics: make(map[string]*topic)}
}

// Clock returns the broker's clock.
func (b *Broker) Clock() vclock.Clock { return b.cfg.Clock }

// CreateTopic creates a topic with n partitions. Creating an existing
// topic with the same partition count is a no-op.
func (b *Broker) CreateTopic(name string, partitions int) error {
	if partitions <= 0 {
		return fmt.Errorf("streaming: topic %q needs at least one partition", name)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return ErrBrokerClosed
	}
	if t, ok := b.topics[name]; ok {
		if len(t.partitions) != partitions {
			return fmt.Errorf("streaming: topic %q exists with %d partitions", name, len(t.partitions))
		}
		return nil
	}
	t := &topic{name: name, partitions: make([]*partition, partitions)}
	for i := range t.partitions {
		t.partitions[i] = &partition{}
	}
	b.topics[name] = t
	b.order = append(b.order, t)
	return nil
}

// Partitions returns the partition count of a topic.
func (b *Broker) Partitions(name string) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	t, ok := b.topics[name]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrUnknownTopic, name)
	}
	return len(t.partitions), nil
}

func (b *Broker) topicByName(name string) (*topic, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil, ErrBrokerClosed
	}
	t, ok := b.topics[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownTopic, name)
	}
	return t, nil
}

// Publish appends one message, selecting the partition by key hash (or
// round-robin for empty keys). It blocks, in modeled time, while the
// partition works through its backlog — per-partition capacity is the
// broker's bottleneck resource — and, under backpressure, while the
// partition's in-flight bytes exceed MaxInflightBytes.
func (b *Broker) Publish(ctx context.Context, topicName string, key, value []byte) (Message, error) {
	out := make([]Message, 0, 1)
	err := b.publish(ctx, topicName, 1, func(int) ([]byte, []byte) { return key, value }, &out)
	if err != nil {
		return Message{}, err
	}
	return out[0], nil
}

// PublishBatch appends a batch of (key, value) pairs. The modeled append
// cost is charged once per message, but each target partition takes one
// lock, one waiter wake, and the producer one modeled sleep for the whole
// batch — the amortization real producers use, and on vclock.Virtual ~N×
// fewer scheduler interactions than per-message publishes. On context
// cancellation mid-batch the messages already appended are returned along
// with the error.
func (b *Broker) PublishBatch(ctx context.Context, topicName string, kvs [][2][]byte) ([]Message, error) {
	out := make([]Message, 0, len(kvs))
	err := b.publish(ctx, topicName, len(kvs), func(i int) ([]byte, []byte) { return kvs[i][0], kvs[i][1] }, &out)
	return out, err
}

// PublishValues appends a batch of key-less values without materializing
// per-message results — the bulk-ingest fast path (zero allocations per
// message beyond the log segments themselves). Accounting is identical to
// PublishBatch.
func (b *Broker) PublishValues(ctx context.Context, topicName string, values [][]byte) error {
	return b.publish(ctx, topicName, len(values), func(i int) ([]byte, []byte) { return nil, values[i] }, nil)
}

// pubScratch is the reusable workspace of one publish call: per-message
// partition assignment, per-partition counts and byte totals, and the
// counting-sorted index order. Pooled so a steady-state publish allocates
// nothing beyond the log segments themselves.
type pubScratch struct {
	assign []int32 // partition per message
	order  []int32 // message indices grouped by partition, publish order kept
	counts []int32 // messages per partition
	fill   []int32 // counting-sort cursor, then per-partition group ends
	bytes  []int64 // payload bytes per partition
}

var pubScratchPool = sync.Pool{New: func() any { return new(pubScratch) }}

// publish is the shared producer path: assign partitions (round-robin
// cursor under the broker lock), then per target partition wait for
// backpressure space, append the sub-batch to the segmented log and wake
// consumers, and finally sleep once until the slowest partition has
// worked through its backlog.
//
// The batch is traversed once under the broker lock — assignment, counts
// and byte totals in the same pass — and a counting sort over pooled
// scratch yields each partition's indices in publish order without
// growing per-partition slices, so the grouping stage costs one kv() call
// per message and zero steady-state allocations.
func (b *Broker) publish(ctx context.Context, topicName string, n int, kv func(int) ([]byte, []byte), out *[]Message) error {
	if n == 0 {
		return nil
	}
	t, err := b.topicByName(topicName)
	if err != nil {
		return err
	}
	nparts := len(t.partitions)

	sc := pubScratchPool.Get().(*pubScratch)
	defer pubScratchPool.Put(sc)
	if cap(sc.assign) < n {
		sc.assign = make([]int32, n)
		sc.order = make([]int32, n)
	}
	if cap(sc.counts) < nparts {
		sc.counts = make([]int32, nparts)
		sc.fill = make([]int32, nparts)
		sc.bytes = make([]int64, nparts)
	}
	assign, order := sc.assign[:n], sc.order[:n]
	counts, fill, bytes := sc.counts[:nparts], sc.fill[:nparts], sc.bytes[:nparts]
	for p := range counts {
		counts[p], bytes[p] = 0, 0
	}

	// Group the batch per target partition, in index order: consumer
	// wake-up order below must not depend on randomized iteration.
	b.mu.Lock()
	for i := 0; i < n; i++ {
		k, v := kv(i)
		var p int
		if len(k) > 0 {
			p = partitionOf(k, nparts)
		} else {
			p = t.rr % nparts
			t.rr++
		}
		assign[i] = int32(p)
		counts[p]++
		bytes[p] += int64(len(k) + len(v))
	}
	b.mu.Unlock()

	// Counting sort: scatter message indices into order, grouped by
	// partition with publish order preserved inside each group. After the
	// scatter, fill[p] is the end of partition p's group.
	var sum int32
	for p := range counts {
		fill[p] = sum
		sum += counts[p]
	}
	for i := 0; i < n; i++ {
		p := assign[i]
		order[fill[p]] = int32(i)
		fill[p]++
	}

	clock := b.cfg.Clock
	segSize := b.cfg.SegmentSize
	var latest time.Time
	var lo int32
	for p := 0; p < nparts; p++ {
		idxs := order[lo:fill[p]]
		lo = fill[p]
		if len(idxs) == 0 {
			continue
		}
		part := t.partitions[p]
		add := bytes[p]
		// Backpressure: park (in modeled time) until the partition has
		// room. An idle partition always admits at least one batch, so a
		// batch larger than the whole bound cannot deadlock.
		part.mu.Lock()
		for part.fencePub || (b.cfg.MaxInflightBytes > 0 && part.inflight > 0 && part.inflight+add > b.cfg.MaxInflightBytes) {
			w := vclock.NewEvent(clock)
			registerEvent(&part.space, w)
			part.mu.Unlock()
			// Re-check closed *after* registering: Close sets the flag
			// before sweeping the waiter lists, so a registration the sweep
			// missed is guaranteed to see the flag here instead of parking
			// on an event nobody will ever fire. Fire on every abandoning
			// exit so registerEvent recognizes the entry as dead — without
			// that, repeatedly canceled publishes against a full partition
			// would grow part.space without bound until the next Commit.
			if b.isClosed() {
				w.Fire()
				return ErrBrokerClosed
			}
			if !w.Wait(ctx) {
				w.Fire()
				return ctx.Err()
			}
			if b.isClosed() {
				return ErrBrokerClosed
			}
			part.mu.Lock()
		}
		// Read the clock after any backpressure wait: Published stamps the
		// instant the broker accepted the message.
		now := clock.Now()
		start := part.nextFree
		if start.Before(now) {
			start = now
		}
		finish := start.Add(time.Duration(len(idxs)) * b.cfg.AppendCost)
		part.nextFree = finish
		if finish.After(latest) {
			latest = finish
		}
		for _, i := range idxs {
			k, v := kv(int(i))
			m := part.appendInPlace(t.name, p, k, v, now, segSize)
			if out != nil {
				*out = append(*out, *m)
			}
		}
		part.inflight += add
		waiters := part.waiters
		part.waiters = nil
		part.mu.Unlock()
		for _, w := range waiters {
			w.Fire()
		}
	}
	// Partitions absorb their sub-batches in parallel; the producer blocks
	// until the slowest partition has caught up (one sleep for the whole
	// batch, not one per message or per partition).
	if wait := latest.Sub(clock.Now()); wait > 0 {
		if !clock.Sleep(ctx, wait) {
			return ctx.Err()
		}
	}
	return nil
}

// appendInPlace claims the next tail-segment slot and builds the message
// directly in it — no intermediate Message values, so the hot publish
// loop copies each field exactly once. Segments are allocated at full
// SegmentSize capacity, so the backing array of a segment never moves and
// entries below the published length are immutable — the invariants
// behind zero-copy fetch views. The partition-cumulative byte total is
// recorded alongside the slot for O(1) commit accounting. Caller holds
// p.mu; the returned pointer is only valid until the lock is released.
func (p *partition) appendInPlace(topic string, pi int, key, value []byte, published time.Time, segSize int) *Message {
	var seg *segment
	if len(p.segs) > 0 {
		seg = p.segs[len(p.segs)-1]
	}
	if seg == nil || len(seg.msgs) == segSize {
		seg = newSegment(segSize)
		p.segs = append(p.segs, seg)
	}
	seg.msgs = seg.msgs[:len(seg.msgs)+1]
	m := &seg.msgs[len(seg.msgs)-1]
	m.Topic = topic
	m.Partition = pi
	m.Offset = p.end
	m.Key = key
	m.Value = value
	m.Published = published
	if n := len(p.epochs); n == 0 || p.epochs[n-1].Epoch != p.curEpoch {
		p.epochs = append(p.epochs, plan.EpochSpan{Start: p.end, Epoch: p.curEpoch})
	}
	p.end++
	p.totalBytes += int64(len(key) + len(value))
	seg.cum = append(seg.cum, p.totalBytes)
	return m
}

// bytesThrough returns the cumulative payload bytes of offsets [0, o):
// two segment lookups, independent of how many messages the range spans.
// For o at or below the retention floor the trimmed prefix's total is
// the answer (commit marks never sit below the floor — Trim clamps to
// committed — so no caller asks inside the trimmed range). Caller holds
// p.mu.
func (p *partition) bytesThrough(o, segSize int64) int64 {
	if o <= p.first {
		return p.trimmedCum
	}
	i := o - 1 - p.first
	return p.segs[i/segSize].cum[i%segSize]
}

// view returns up to max messages starting at offset as a read-only
// sub-slice of one segment (callers may see fewer than max at a segment
// boundary and loop). Returns nil when offset is at the end of the log.
// Offsets below the retention floor are the caller's problem (FetchOrWait
// turns them into OffsetOutOfRangeError before getting here). Caller
// holds p.mu; the returned view stays valid after release because
// segments never reallocate and sealed entries never change.
func (p *partition) view(offset int64, max, segSize int) []Message {
	if offset >= p.end || offset < p.first {
		return nil
	}
	rel := offset - p.first
	seg := p.segs[rel/int64(segSize)]
	lo := int(rel % int64(segSize))
	hi := len(seg.msgs)
	if hi-lo > max {
		hi = lo + max
	}
	return seg.msgs[lo:hi:hi]
}

// registerEvent parks w on one of a partition's waiter lists (data
// waiters or backpressure space waiters), pruning entries already fired.
// Every exit path of a parked call fires its event — including the
// abandoning ones (context canceled, broker closed, poll satisfied by
// another partition) — so stale registrations are recognizably dead and
// swept on the next registration. Without that, skewed traffic or
// repeatedly canceled publishes would grow a list by one event per
// wake-up until a publish, Commit or Close cleared it. Caller holds
// part.mu.
func registerEvent(list *[]*vclock.Event, w *vclock.Event) {
	live := (*list)[:0]
	for _, old := range *list {
		if !old.Fired() {
			live = append(live, old)
		}
	}
	*list = append(live, w)
}

// Fetch returns up to max messages from a partition starting at offset,
// long-polling until at least one message is available, ctx is done, or
// the broker closes. One call charges the modeled fetch latency exactly
// once. The returned slice is a read-only view into the log (see Message).
func (b *Broker) Fetch(ctx context.Context, topicName string, partitionIdx int, offset int64, max int) ([]Message, error) {
	_, msgs, err := b.FetchOrWait(ctx, topicName, []int{partitionIdx}, []int64{offset}, 0, max)
	return msgs, err
}

// FetchOrWait is the consumer hot path: one modeled long-poll over a set
// of partitions (offsets[i] pairs with parts[i]). It charges FetchLatency
// exactly once — the poll's round trip — then returns the first available
// batch, parking (clock-aware, zero extra charge) until one of the
// partitions has data past its offset, ctx is done, or the broker closes.
// Scanning begins at parts[start%len(parts)], so callers rotate a cursor
// for deterministic fairness across their partitions. The returned index
// points into parts; the batch is a read-only view into the log and may
// be shorter than max at a segment boundary.
//
// Combining the poll and the park in one call is what eliminates the
// fetch-then-wait double charge: a message that arrives while the
// consumer is parked is delivered at its arrival instant, not one
// FetchLatency later.
func (b *Broker) FetchOrWait(ctx context.Context, topicName string, parts []int, offsets []int64, start, max int) (int, []Message, error) {
	t, err := b.topicByName(topicName)
	if err != nil {
		return 0, nil, err
	}
	if len(parts) == 0 {
		return 0, nil, errors.New("streaming: FetchOrWait needs at least one partition")
	}
	if len(offsets) != len(parts) {
		return 0, nil, fmt.Errorf("streaming: FetchOrWait got %d offsets for %d partitions", len(offsets), len(parts))
	}
	for _, pi := range parts {
		if pi < 0 || pi >= len(t.partitions) {
			return 0, nil, fmt.Errorf("streaming: partition %d out of range for %q", pi, topicName)
		}
	}
	if max <= 0 {
		max = 512
	}
	if start < 0 {
		start = 0
	}
	if !b.cfg.Clock.Sleep(ctx, b.cfg.FetchLatency) {
		return 0, nil, ctx.Err()
	}
	for {
		var w *vclock.Event
		for i := 0; i < len(parts); i++ {
			j := (start + i) % len(parts)
			part := t.partitions[parts[j]]
			part.mu.Lock()
			if !part.down {
				if offsets[j] < part.first {
					// Retention trimmed past the requested position: a typed
					// error, not a silent snap — the caller decides whether
					// skipping to Oldest is acceptable for its semantics.
					oor := &OffsetOutOfRangeError{Topic: topicName, Partition: parts[j],
						Offset: offsets[j], Oldest: part.first}
					part.mu.Unlock()
					if w != nil {
						w.Fire()
					}
					return j, nil, oor
				}
				if batch := part.view(offsets[j], max, b.cfg.SegmentSize); len(batch) > 0 {
					part.mu.Unlock()
					if w != nil {
						w.Fire() // mark registrations on earlier partitions dead
					}
					return j, batch, nil
				}
			}
			if w == nil {
				w = vclock.NewEvent(b.cfg.Clock)
			}
			registerEvent(&part.waiters, w)
			part.mu.Unlock()
		}
		// Checked after registration (see publish): a Close whose sweep ran
		// before we registered is visible here, before we park.
		if b.isClosed() {
			w.Fire()
			return 0, nil, ErrBrokerClosed
		}
		if !w.Wait(ctx) {
			w.Fire()
			return 0, nil, ctx.Err()
		}
		if b.isClosed() {
			return 0, nil, ErrBrokerClosed
		}
	}
}

// WaitAny parks until at least one of the given partitions has data past
// its offset (offsets[i] pairs with parts[i]), the broker closes, or ctx
// ends. It returns true when data may be available. Unlike FetchOrWait it
// charges nothing: it is the bare scheduling hook (consumer-group
// rebalancing interrupts parked polls through the same waiter machinery).
func (b *Broker) WaitAny(ctx context.Context, topicName string, parts []int, offsets []int64) (bool, error) {
	t, err := b.topicByName(topicName)
	if err != nil {
		return false, err
	}
	if len(parts) == 0 {
		return false, errors.New("streaming: WaitAny needs at least one partition")
	}
	if len(offsets) != len(parts) {
		return false, fmt.Errorf("streaming: WaitAny got %d offsets for %d partitions", len(offsets), len(parts))
	}
	for _, pi := range parts {
		if pi < 0 || pi >= len(t.partitions) {
			return false, fmt.Errorf("streaming: partition %d out of range for %q", pi, topicName)
		}
	}
	w := vclock.NewEvent(b.cfg.Clock)
	for i, pi := range parts {
		part := t.partitions[pi]
		part.mu.Lock()
		if !part.down && part.end > offsets[i] {
			part.mu.Unlock()
			w.Fire()
			return true, nil
		}
		registerEvent(&part.waiters, w)
		part.mu.Unlock()
	}
	if b.isClosed() {
		w.Fire()
		return false, ErrBrokerClosed
	}
	if !w.Wait(ctx) {
		w.Fire()
		return false, ctx.Err()
	}
	if b.isClosed() {
		return false, ErrBrokerClosed
	}
	return true, nil
}

// Commit acknowledges consumption of a partition through offset `through`
// (exclusive: offsets below it are consumed). It releases the committed
// bytes from the partition's in-flight account and wakes producers parked
// on backpressure. Commits are monotone; committing at or below the
// current mark is a no-op. Committing is what lets MaxInflightBytes
// throttle producers to consumer speed — consumers that never commit
// (plain Processors) must run against a broker without backpressure.
func (b *Broker) Commit(topicName string, partitionIdx int, through int64) error {
	t, err := b.topicByName(topicName)
	if err != nil {
		return err
	}
	if partitionIdx < 0 || partitionIdx >= len(t.partitions) {
		return fmt.Errorf("streaming: partition %d out of range for %q", partitionIdx, topicName)
	}
	b.mu.Lock()
	delay := b.commitDelay
	b.mu.Unlock()
	if delay > 0 {
		// Injected commit skew (chaos): the acknowledgement is in flight for
		// `delay` of modeled time before it lands. Uncancellable — a skewed
		// commit still arrives, just late.
		b.cfg.Clock.Sleep(context.Background(), delay)
	}
	part := t.partitions[partitionIdx]
	part.mu.Lock()
	if through > part.end {
		through = part.end
	}
	if through <= part.committed {
		part.mu.Unlock()
		return nil
	}
	segSize := int64(b.cfg.SegmentSize)
	freed := part.bytesThrough(through, segSize) - part.bytesThrough(part.committed, segSize)
	from := part.committed
	part.committed = through
	part.inflight -= freed
	if b.cfg.OnCommit != nil {
		b.cfg.OnCommit(topicName, partitionIdx, from, through)
	}
	// Coalesced space wakes: a parked producer needs inflight+add ≤ the
	// bound (or an idle partition), so while inflight still sits at or
	// above the bound every wake would be spurious — the producer would
	// re-check, re-register and park again, one scheduler round trip per
	// waiter per commit. Leave them parked until a commit makes progress
	// possible; they re-evaluate their own batch size on wake.
	var ws []*vclock.Event
	if part.inflight == 0 || part.inflight < b.cfg.MaxInflightBytes {
		ws = part.space
		part.space = nil
	}
	part.mu.Unlock()
	for _, w := range ws {
		w.Fire()
	}
	return nil
}

// SetCommitDelay injects commit skew: every subsequent Commit holds the
// acknowledgement in flight for d of modeled time before applying it.
// Zero restores immediate commits. The chaos engine toggles this to
// stretch the window in which backpressure and rebalance decisions act on
// stale commit marks.
func (b *Broker) SetCommitDelay(d time.Duration) {
	b.mu.Lock()
	b.commitDelay = d
	b.mu.Unlock()
}

// SetPartitionDown opens (down=true) or closes an injected unavailability
// window on one partition. While down, consumers see no data past their
// offsets and park exactly as on an empty log; producers are unaffected.
// Clearing the window wakes parked fetchers so delivery resumes at the
// clearing instant. The chaos engine is the intended caller.
func (b *Broker) SetPartitionDown(topicName string, partitionIdx int, down bool) error {
	t, err := b.topicByName(topicName)
	if err != nil {
		return err
	}
	if partitionIdx < 0 || partitionIdx >= len(t.partitions) {
		return fmt.Errorf("streaming: partition %d out of range for %q", partitionIdx, topicName)
	}
	part := t.partitions[partitionIdx]
	part.mu.Lock()
	part.down = down
	var ws []*vclock.Event
	if !down {
		ws = part.waiters
		part.waiters = nil
	}
	part.mu.Unlock()
	for _, w := range ws {
		w.Fire()
	}
	return nil
}

// SetPublishFence raises (fenced=true) or drops a write fence on one
// partition: while fenced, publishes park in modeled time exactly as
// under backpressure, whatever the in-flight account says. Dropping the
// fence wakes parked producers. The federated Cluster fences writes
// during leader handoffs and while a severed replication link would
// leave appends unacknowledgeable; fetch-side fencing reuses
// SetPartitionDown.
func (b *Broker) SetPublishFence(topicName string, partitionIdx int, fenced bool) error {
	t, err := b.topicByName(topicName)
	if err != nil {
		return err
	}
	if partitionIdx < 0 || partitionIdx >= len(t.partitions) {
		return fmt.Errorf("streaming: partition %d out of range for %q", partitionIdx, topicName)
	}
	part := t.partitions[partitionIdx]
	part.mu.Lock()
	part.fencePub = fenced
	var ws []*vclock.Event
	if !fenced {
		ws = part.space
		part.space = nil
	}
	part.mu.Unlock()
	for _, w := range ws {
		w.Fire()
	}
	return nil
}

// Trim discards log segments of one partition wholly below `below`,
// bounding resident memory under infinite streams. Only sealed (full)
// segments strictly under the mark are dropped, so the floor stays
// segment-aligned and the unsealed tail is never touched; `below` is
// clamped to the commit mark, so uncommitted data is never trimmed.
// Fetches under the new floor return OffsetOutOfRangeError. Returns the
// oldest retained offset after the trim. Callers own the policy — the
// Cluster trims below the low-watermark of persisted group offsets.
func (b *Broker) Trim(topicName string, partitionIdx int, below int64) (int64, error) {
	t, err := b.topicByName(topicName)
	if err != nil {
		return 0, err
	}
	if partitionIdx < 0 || partitionIdx >= len(t.partitions) {
		return 0, fmt.Errorf("streaming: partition %d out of range for %q", partitionIdx, topicName)
	}
	part := t.partitions[partitionIdx]
	segSize := int64(b.cfg.SegmentSize)
	part.mu.Lock()
	defer part.mu.Unlock()
	if below > part.committed {
		below = part.committed
	}
	k := 0
	for k < len(part.segs) {
		segEnd := part.first + int64(k+1)*segSize
		if segEnd > below || int64(len(part.segs[k].msgs)) < segSize {
			break
		}
		k++
	}
	if k == 0 {
		return part.first, nil
	}
	part.trimmedCum = part.segs[k-1].cum[segSize-1]
	// Nil out the dropped heads before resliceing: the backing array
	// survives in segs, and a live pointer there would pin every trimmed
	// segment — exactly the memory the trim exists to release.
	for i := 0; i < k; i++ {
		part.segs[i] = nil
	}
	part.segs = part.segs[k:]
	part.first += int64(k) * segSize
	return part.first, nil
}

// OldestOffset returns a partition's retention floor: the oldest offset
// a fetch can still serve (zero until the first trim).
func (b *Broker) OldestOffset(topicName string, partitionIdx int) (int64, error) {
	t, err := b.topicByName(topicName)
	if err != nil {
		return 0, err
	}
	if partitionIdx < 0 || partitionIdx >= len(t.partitions) {
		return 0, fmt.Errorf("streaming: partition %d out of range for %q", partitionIdx, topicName)
	}
	part := t.partitions[partitionIdx]
	part.mu.Lock()
	defer part.mu.Unlock()
	return part.first, nil
}

// ResidentBytes returns the payload bytes a partition currently holds in
// memory — everything appended minus everything trimmed. This is the
// quantity the retention contract bounds.
func (b *Broker) ResidentBytes(topicName string, partitionIdx int) (int64, error) {
	t, err := b.topicByName(topicName)
	if err != nil {
		return 0, err
	}
	if partitionIdx < 0 || partitionIdx >= len(t.partitions) {
		return 0, fmt.Errorf("streaming: partition %d out of range for %q", partitionIdx, topicName)
	}
	part := t.partitions[partitionIdx]
	part.mu.Lock()
	defer part.mu.Unlock()
	return part.totalBytes - part.trimmedCum, nil
}

// EndOffset returns the next offset to be written on a partition.
func (b *Broker) EndOffset(topicName string, partitionIdx int) (int64, error) {
	t, err := b.topicByName(topicName)
	if err != nil {
		return 0, err
	}
	if partitionIdx < 0 || partitionIdx >= len(t.partitions) {
		return 0, fmt.Errorf("streaming: partition %d out of range for %q", partitionIdx, topicName)
	}
	part := t.partitions[partitionIdx]
	part.mu.Lock()
	defer part.mu.Unlock()
	return part.end, nil
}

// Committed returns a partition's commit mark (the next uncommitted
// offset).
func (b *Broker) Committed(topicName string, partitionIdx int) (int64, error) {
	t, err := b.topicByName(topicName)
	if err != nil {
		return 0, err
	}
	if partitionIdx < 0 || partitionIdx >= len(t.partitions) {
		return 0, fmt.Errorf("streaming: partition %d out of range for %q", partitionIdx, topicName)
	}
	part := t.partitions[partitionIdx]
	part.mu.Lock()
	defer part.mu.Unlock()
	return part.committed, nil
}

// InflightBytes returns a partition's published-but-uncommitted bytes —
// the quantity MaxInflightBytes bounds.
func (b *Broker) InflightBytes(topicName string, partitionIdx int) (int64, error) {
	t, err := b.topicByName(topicName)
	if err != nil {
		return 0, err
	}
	if partitionIdx < 0 || partitionIdx >= len(t.partitions) {
		return 0, fmt.Errorf("streaming: partition %d out of range for %q", partitionIdx, topicName)
	}
	part := t.partitions[partitionIdx]
	part.mu.Lock()
	defer part.mu.Unlock()
	return part.inflight, nil
}

// Close rejects further operations and wakes blocked fetchers and
// backpressured producers. Topics are swept in creation order so wake-up
// order never depends on map iteration.
func (b *Broker) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	for _, t := range b.order {
		for _, p := range t.partitions {
			p.mu.Lock()
			ws := p.waiters
			p.waiters = nil
			sp := p.space
			p.space = nil
			p.mu.Unlock()
			for _, w := range ws {
				w.Fire()
			}
			for _, w := range sp {
				w.Fire()
			}
		}
	}
}

func (b *Broker) isClosed() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.closed
}

func partitionOf(key []byte, n int) int {
	h := fnv.New32a()
	h.Write(key)
	return int(h.Sum32() % uint32(n))
}
