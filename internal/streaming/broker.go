// Package streaming implements Pilot-Streaming [32]: a partitioned-log
// message broker (Kafka-class semantics: topics, partitions, offsets,
// per-partition ordering) plus pilot-managed stream processors. The broker
// models per-partition append capacity as a queueing process in virtual
// time, so the throughput-vs-partitions and latency-vs-load shapes of the
// paper's streaming evaluation (E7/E8) emerge from first principles.
package streaming

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"time"

	"gopilot/internal/vclock"
)

// Message is one record in a partitioned log.
type Message struct {
	Topic     string
	Partition int
	Offset    int64
	Key       []byte
	Value     []byte
	// Published is the modeled time the producer handed the message to the
	// broker (before broker-side queueing), so end-to-end latency includes
	// broker delay.
	Published time.Time
}

// BrokerConfig configures a Broker.
type BrokerConfig struct {
	// Name labels the broker.
	Name string
	// AppendCost is the modeled broker-side cost per message appended to a
	// partition; it bounds per-partition throughput at 1/AppendCost msg/s.
	// Default 100µs (≈10k msg/s per partition).
	AppendCost time.Duration
	// FetchLatency is the modeled cost per consumer fetch (long-poll RTT).
	// Default 1ms.
	FetchLatency time.Duration
	// Clock supplies virtual time; defaults to vclock.Real.
	Clock vclock.Clock
}

// Broker is an in-process partitioned-log message broker.
type Broker struct {
	cfg BrokerConfig

	mu     sync.Mutex
	topics map[string]*topic
	closed bool
}

type topic struct {
	name       string
	partitions []*partition
	rr         int // round-robin cursor for key-less publishes
}

type partition struct {
	mu       sync.Mutex
	msgs     []Message
	nextFree time.Time // modeled time the partition finishes current appends
	waiters  []*vclock.Event
}

// ErrUnknownTopic is returned for operations on absent topics.
var ErrUnknownTopic = errors.New("streaming: unknown topic")

// ErrBrokerClosed is returned after Close.
var ErrBrokerClosed = errors.New("streaming: broker closed")

// NewBroker creates a broker.
func NewBroker(cfg BrokerConfig) *Broker {
	if cfg.Name == "" {
		cfg.Name = "broker"
	}
	if cfg.AppendCost <= 0 {
		cfg.AppendCost = 100 * time.Microsecond
	}
	if cfg.FetchLatency <= 0 {
		cfg.FetchLatency = time.Millisecond
	}
	if cfg.Clock == nil {
		cfg.Clock = vclock.NewReal()
	}
	return &Broker{cfg: cfg, topics: make(map[string]*topic)}
}

// Clock returns the broker's clock.
func (b *Broker) Clock() vclock.Clock { return b.cfg.Clock }

// CreateTopic creates a topic with n partitions. Creating an existing
// topic with the same partition count is a no-op.
func (b *Broker) CreateTopic(name string, partitions int) error {
	if partitions <= 0 {
		return fmt.Errorf("streaming: topic %q needs at least one partition", name)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return ErrBrokerClosed
	}
	if t, ok := b.topics[name]; ok {
		if len(t.partitions) != partitions {
			return fmt.Errorf("streaming: topic %q exists with %d partitions", name, len(t.partitions))
		}
		return nil
	}
	t := &topic{name: name, partitions: make([]*partition, partitions)}
	for i := range t.partitions {
		t.partitions[i] = &partition{}
	}
	b.topics[name] = t
	return nil
}

// Partitions returns the partition count of a topic.
func (b *Broker) Partitions(name string) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	t, ok := b.topics[name]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrUnknownTopic, name)
	}
	return len(t.partitions), nil
}

func (b *Broker) topicByName(name string) (*topic, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil, ErrBrokerClosed
	}
	t, ok := b.topics[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownTopic, name)
	}
	return t, nil
}

// Publish appends one message, selecting the partition by key hash (or
// round-robin for empty keys). It blocks, in modeled time, while the
// partition works through its backlog — per-partition capacity is the
// broker's bottleneck resource.
func (b *Broker) Publish(ctx context.Context, topicName string, key, value []byte) (Message, error) {
	msgs, err := b.PublishBatch(ctx, topicName, [][2][]byte{{key, value}})
	if err != nil {
		return Message{}, err
	}
	return msgs[0], nil
}

// PublishBatch appends a batch of (key, value) pairs, charging the
// modeled append cost once per message but sleeping once per partition
// batch — the batching real producers use to amortize overhead.
func (b *Broker) PublishBatch(ctx context.Context, topicName string, kvs [][2][]byte) ([]Message, error) {
	t, err := b.topicByName(topicName)
	if err != nil {
		return nil, err
	}
	now := b.cfg.Clock.Now()

	// Group the batch per target partition.
	byPart := make(map[int][][2][]byte)
	b.mu.Lock()
	for _, kv := range kvs {
		var p int
		if len(kv[0]) > 0 {
			p = partitionOf(kv[0], len(t.partitions))
		} else {
			p = t.rr % len(t.partitions)
			t.rr++
		}
		byPart[p] = append(byPart[p], kv)
	}
	b.mu.Unlock()

	// Partitions absorb their sub-batches in parallel; the producer blocks
	// until the slowest partition has caught up (one sleep, not one per
	// partition). Partitions are visited in index order: byPart is a map,
	// and consumer wake-up order must not depend on map iteration.
	parts := make([]int, 0, len(byPart))
	for p := range byPart {
		parts = append(parts, p)
	}
	sort.Ints(parts)
	out := make([]Message, 0, len(kvs))
	var latest time.Time
	for _, p := range parts {
		batch := byPart[p]
		part := t.partitions[p]
		busy := time.Duration(len(batch)) * b.cfg.AppendCost

		part.mu.Lock()
		start := part.nextFree
		if start.Before(now) {
			start = now
		}
		finish := start.Add(busy)
		part.nextFree = finish
		if finish.After(latest) {
			latest = finish
		}
		for _, kv := range batch {
			m := Message{
				Topic:     topicName,
				Partition: p,
				Offset:    int64(len(part.msgs)),
				Key:       kv[0],
				Value:     kv[1],
				Published: now,
			}
			part.msgs = append(part.msgs, m)
			out = append(out, m)
		}
		waiters := part.waiters
		part.waiters = nil
		part.mu.Unlock()
		for _, w := range waiters {
			w.Fire()
		}
	}
	if wait := latest.Sub(now); wait > 0 {
		if !b.cfg.Clock.Sleep(ctx, wait) {
			return out, ctx.Err()
		}
	}
	return out, nil
}

// Fetch returns up to max messages from a partition starting at offset,
// long-polling until at least one message is available, ctx is done, or
// the broker closes. It charges the modeled fetch latency once per call.
func (b *Broker) Fetch(ctx context.Context, topicName string, partitionIdx int, offset int64, max int) ([]Message, error) {
	t, err := b.topicByName(topicName)
	if err != nil {
		return nil, err
	}
	if partitionIdx < 0 || partitionIdx >= len(t.partitions) {
		return nil, fmt.Errorf("streaming: partition %d out of range for %q", partitionIdx, topicName)
	}
	if max <= 0 {
		max = 512
	}
	if !b.cfg.Clock.Sleep(ctx, b.cfg.FetchLatency) {
		return nil, ctx.Err()
	}
	part := t.partitions[partitionIdx]
	for {
		part.mu.Lock()
		if int64(len(part.msgs)) > offset {
			end := offset + int64(max)
			if end > int64(len(part.msgs)) {
				end = int64(len(part.msgs))
			}
			batch := append([]Message(nil), part.msgs[offset:end]...)
			part.mu.Unlock()
			return batch, nil
		}
		w := vclock.NewEvent(b.cfg.Clock)
		part.waiters = append(part.waiters, w)
		part.mu.Unlock()
		if !w.Wait(ctx) {
			return nil, ctx.Err()
		}
		// Either new data arrived or the broker closed; a closed broker
		// will never produce data, so surface that instead of spinning.
		b.mu.Lock()
		closed := b.closed
		b.mu.Unlock()
		if closed {
			return nil, ErrBrokerClosed
		}
	}
}

// WaitAny parks until at least one of the given partitions has data past
// its offset (offsets[i] pairs with parts[i]), the broker closes, or ctx
// ends. It returns true when data may be available — consumers owning
// several partitions long-poll through this instead of spinning with
// wall-clock timeouts, which keeps virtual-time runs deterministic.
func (b *Broker) WaitAny(ctx context.Context, topicName string, parts []int, offsets []int64) (bool, error) {
	t, err := b.topicByName(topicName)
	if err != nil {
		return false, err
	}
	if len(parts) == 0 {
		return false, errors.New("streaming: WaitAny needs at least one partition")
	}
	if len(offsets) != len(parts) {
		return false, fmt.Errorf("streaming: WaitAny got %d offsets for %d partitions", len(offsets), len(parts))
	}
	for _, pi := range parts {
		if pi < 0 || pi >= len(t.partitions) {
			return false, fmt.Errorf("streaming: partition %d out of range for %q", pi, topicName)
		}
	}
	// Every exit path below fires w, so stale registrations left in other
	// partitions' waiter lists are recognizably dead and pruned on the
	// next registration — without that, skewed traffic would grow a
	// never-published partition's list by one event per wake-up.
	w := vclock.NewEvent(b.cfg.Clock)
	for i, pi := range parts {
		part := t.partitions[pi]
		part.mu.Lock()
		if int64(len(part.msgs)) > offsets[i] {
			part.mu.Unlock()
			w.Fire()
			return true, nil
		}
		live := part.waiters[:0]
		for _, old := range part.waiters {
			if !old.Fired() {
				live = append(live, old)
			}
		}
		part.waiters = append(live, w)
		part.mu.Unlock()
	}
	if !w.Wait(ctx) {
		w.Fire()
		return false, ctx.Err()
	}
	b.mu.Lock()
	closed := b.closed
	b.mu.Unlock()
	if closed {
		return false, ErrBrokerClosed
	}
	return true, nil
}

// EndOffset returns the next offset to be written on a partition.
func (b *Broker) EndOffset(topicName string, partitionIdx int) (int64, error) {
	t, err := b.topicByName(topicName)
	if err != nil {
		return 0, err
	}
	if partitionIdx < 0 || partitionIdx >= len(t.partitions) {
		return 0, fmt.Errorf("streaming: partition %d out of range for %q", partitionIdx, topicName)
	}
	part := t.partitions[partitionIdx]
	part.mu.Lock()
	defer part.mu.Unlock()
	return int64(len(part.msgs)), nil
}

// Close rejects further operations and wakes blocked fetchers.
func (b *Broker) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	for _, t := range b.topics {
		for _, p := range t.partitions {
			p.mu.Lock()
			ws := p.waiters
			p.waiters = nil
			p.mu.Unlock()
			for _, w := range ws {
				w.Fire()
			}
		}
	}
}

func partitionOf(key []byte, n int) int {
	h := fnv.New32a()
	h.Write(key)
	return int(h.Sum32() % uint32(n))
}
