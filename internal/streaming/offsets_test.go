package streaming

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"gopilot/internal/core"
	"gopilot/internal/vclock"
)

func TestOffsetStoreMonotonicSaveAndLowWatermark(t *testing.T) {
	s := NewOffsetStore()
	notified := 0
	s.OnSave(func(group, topic string, partition int) { notified++ })

	s.Save("g1", "t", 0, 5)
	s.Save("g1", "t", 0, 3) // stale: registers nothing new, keeps 5, no notify
	if got, ok := s.Load("g1", "t", 0); !ok || got != 5 {
		t.Fatalf("Load = %d,%v; want 5,true", got, ok)
	}
	if notified != 1 {
		t.Fatalf("stale save notified: %d notifications, want 1", notified)
	}
	if _, ok := s.Load("g1", "t", 1); ok {
		t.Fatal("Load of unregistered key reported ok")
	}
	if _, ok := s.LowWatermark("t", 1); ok {
		t.Fatal("LowWatermark with no registered group reported ok")
	}

	// A fresh group registering at 0 floors the low-watermark even though
	// 0 is "no progress" — that is what protects its unread backlog from
	// retention.
	s.Save("g2", "t", 0, 0)
	if lw, ok := s.LowWatermark("t", 0); !ok || lw != 0 {
		t.Fatalf("LowWatermark = %d,%v; want 0,true", lw, ok)
	}
	s.Save("g2", "t", 0, 2)
	if lw, _ := s.LowWatermark("t", 0); lw != 2 {
		t.Fatalf("LowWatermark = %d, want 2", lw)
	}
}

// TestOffsetStoreOnSaveSubscriptionOrdering pins the subscription
// contract: every applied save notifies all subscribers, in registration
// order, with the saved key's coordinates; subscribers registered after
// a save see only later saves; suppressed saves (stale or
// already-current) notify nobody.
func TestOffsetStoreOnSaveSubscriptionOrdering(t *testing.T) {
	s := NewOffsetStore()
	var order []string
	sub := func(name string) func(group, topic string, partition int) {
		return func(group, topic string, partition int) {
			order = append(order, fmt.Sprintf("%s:%s/%s/%d", name, group, topic, partition))
		}
	}
	s.OnSave(sub("a"))
	s.OnSave(sub("b"))
	s.Save("g", "t", 0, 1) // applied: both notified, a before b
	s.OnSave(sub("c"))
	s.Save("g", "t", 0, 1) // already current: suppressed
	s.Save("g", "t", 0, 0) // stale: suppressed
	s.Save("g", "t", 1, 4) // applied: all three notified, registration order
	want := []string{"a:g/t/0", "b:g/t/0", "a:g/t/1", "b:g/t/1", "c:g/t/1"}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("notification order = %v, want %v", order, want)
	}
}

// TestOffsetStoreConcurrentSavesStayMonotonic hammers one key from many
// goroutines (run under -race in CI): whatever the interleaving, the
// stored cursor must equal the maximum saved value — never a stale
// overwrite — and every notification must carry a value the store
// actually holds at or above the previous notification's.
func TestOffsetStoreConcurrentSavesStayMonotonic(t *testing.T) {
	const (
		savers  = 8
		perSave = 200
	)
	s := NewOffsetStore()
	var mu sync.Mutex
	var lastSeen int64 = -1
	rewinds := 0
	s.OnSave(func(group, topic string, partition int) {
		// Load inside the callback observes the store after the applied
		// save; values must never run backwards from a subscriber's view.
		v, ok := s.Load(group, topic, partition)
		mu.Lock()
		if !ok || v < lastSeen {
			rewinds++
		} else {
			lastSeen = v
		}
		mu.Unlock()
	})
	var wg sync.WaitGroup
	for g := 0; g < savers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 1; i <= perSave; i++ {
				s.Save("g", "t", 0, int64(i*savers+g))
			}
		}(g)
	}
	wg.Wait()
	// Max saved value: i=perSave maximized over g.
	want := int64(perSave*savers + savers - 1)
	if got, ok := s.Load("g", "t", 0); !ok || got != want {
		t.Fatalf("final cursor = %d,%v; want %d (monotonic max)", got, ok, want)
	}
	if rewinds != 0 {
		t.Fatalf("%d subscriber observations ran backwards", rewinds)
	}
	if lw, ok := s.LowWatermark("t", 0); !ok || lw != want {
		t.Fatalf("low-watermark = %d,%v; want %d", lw, ok, want)
	}
}

func TestOffsetStoreSnapshotRestoreRoundTrip(t *testing.T) {
	s := NewOffsetStore()
	s.Save("g1", "t", 0, 7)
	s.Save("g1", "t", 1, 3)
	s.Save("g2", "u", 0, 11)

	snap := s.Snapshot()
	restored := NewOffsetStore()
	restored.Restore(snap)
	if got := restored.Snapshot(); !reflect.DeepEqual(got, snap) {
		t.Fatalf("round trip diverged:\n%v\nvs\n%v", got, snap)
	}

	// Restoring an older snapshot over newer state never rewinds: Restore
	// goes through the monotonic Save path.
	restored.Save("g1", "t", 0, 20)
	restored.Restore(snap)
	if got, _ := restored.Load("g1", "t", 0); got != 20 {
		t.Fatalf("restore rewound cursor to %d, want 20", got)
	}
}

// TestGroupRestartResumesFromPersistedOffsets is the offset-persistence
// acceptance test: a consumer group wired to an OffsetStore is stopped
// after draining a first wave of messages and restarted (same name, same
// store) for a second wave. The restarted generation must load its
// cursors from the store and resume with zero duplicates and zero gaps
// across the whole stream.
func TestGroupRestartResumesFromPersistedOffsets(t *testing.T) {
	clock := vclock.NewVirtual(vclock.Epoch)
	clock.Adopt()
	defer clock.Leave()
	b := NewBroker(BrokerConfig{
		AppendCost: 100 * time.Microsecond, FetchLatency: time.Millisecond, Clock: clock,
	})
	defer b.Close()
	const parts = 4
	if err := b.CreateTopic("t", parts); err != nil {
		t.Fatal(err)
	}
	mgr := newVirtualStreamEnv(t, clock, 8)
	defer mgr.Close()
	store := NewOffsetStore()

	var mu sync.Mutex
	seen := map[string]int{}
	ctx := context.Background()
	runWave := func(wave, n int) {
		t.Helper()
		g, err := StartGroup(ctx, mgr, b, GroupConfig{
			Name: "g", Topic: "t", Workers: 2, BatchSize: 16,
			CostPerMessage: time.Millisecond,
			Offsets:        store,
			Handler: func(_ context.Context, _ core.TaskContext, m Message) error {
				mu.Lock()
				seen[fmt.Sprintf("%d@%d", m.Partition, m.Offset)]++
				mu.Unlock()
				return nil
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		values := make([][]byte, n)
		for i := range values {
			values[i] = []byte("x")
		}
		if err := b.PublishValues(ctx, "t", values); err != nil {
			t.Fatal(err)
		}
		deadline := clock.Now().Add(5 * time.Minute)
		for g.Processed() < int64(n) {
			if clock.Now().After(deadline) {
				t.Fatalf("wave %d: stuck at %d/%d processed", wave, g.Processed(), n)
			}
			clock.Sleep(ctx, 10*time.Millisecond)
		}
		g.Stop()
	}
	const wave = 400
	runWave(1, wave)
	runWave(2, wave)

	// Zero gaps, zero duplicates across both generations: every offset of
	// every partition handled exactly once.
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != 2*wave {
		t.Fatalf("saw %d distinct messages, want %d", len(seen), 2*wave)
	}
	perPart := 2 * wave / parts
	for p := 0; p < parts; p++ {
		for o := 0; o < perPart; o++ {
			if n := seen[fmt.Sprintf("%d@%d", p, o)]; n != 1 {
				t.Fatalf("partition %d offset %d handled %d times", p, o, n)
			}
		}
	}
	// The persisted cursors ended at the head of every partition.
	for p := 0; p < parts; p++ {
		if next, ok := store.Load("g", "t", p); !ok || next != int64(perPart) {
			t.Fatalf("persisted cursor for partition %d = %d,%v; want %d", p, next, ok, perPart)
		}
	}
}

// TestRestartRedeliversExactlyTheUncommittedBatch pins the redelivery
// contract when a consumer dies after processing a batch but before
// committing it: the restarted consumer (resuming from the persisted
// cursor, here via a snapshot/restore of the store as a deployment
// restart would) receives exactly the uncommitted batch [B, 2B) — every
// offset of it, and nothing from the committed batch before it.
func TestRestartRedeliversExactlyTheUncommittedBatch(t *testing.T) {
	clock := vclock.NewVirtual(vclock.Epoch)
	clock.Adopt()
	defer clock.Leave()
	b := NewBroker(BrokerConfig{AppendCost: 10 * time.Microsecond, Clock: clock})
	defer b.Close()
	if err := b.CreateTopic("t", 1); err != nil {
		t.Fatal(err)
	}
	store := NewOffsetStore()
	ctx := context.Background()
	const B = 16
	values := make([][]byte, 2*B)
	for i := range values {
		values[i] = []byte{byte(i)}
	}
	if err := b.PublishValues(ctx, "t", values); err != nil {
		t.Fatal(err)
	}

	// First incarnation: processes batch 1 and commits+persists it, then
	// processes batch 2 and crashes before committing.
	batch1, err := b.Fetch(ctx, "t", 0, 0, B)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch1) != B {
		t.Fatalf("batch 1: %d messages, want %d", len(batch1), B)
	}
	if err := b.Commit("t", 0, B); err != nil {
		t.Fatal(err)
	}
	store.Save("g", "t", 0, B)
	if batch2, err := b.Fetch(ctx, "t", 0, B, B); err != nil || len(batch2) != B {
		t.Fatalf("batch 2 before crash: %d messages, %v", len(batch2), err)
	}
	// No commit, no save: the crash point.

	// Restart from the persisted snapshot.
	recovered := NewOffsetStore()
	recovered.Restore(store.Snapshot())
	cursor, ok := recovered.Load("g", "t", 0)
	if !ok || cursor != B {
		t.Fatalf("recovered cursor = %d,%v; want %d", cursor, ok, B)
	}
	redelivered, err := b.Fetch(ctx, "t", 0, cursor, 4*B)
	if err != nil {
		t.Fatal(err)
	}
	if len(redelivered) != B {
		t.Fatalf("redelivered %d messages, want exactly the uncommitted %d", len(redelivered), B)
	}
	for i, m := range redelivered {
		if want := int64(B + i); m.Offset != want {
			t.Fatalf("redelivered[%d] is offset %d, want %d", i, m.Offset, want)
		}
	}
}
