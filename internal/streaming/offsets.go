package streaming

import "sync"

// OffsetStore is the durable consumer-offset state of a streaming
// deployment: a small KV snapshot mapping (group, topic, partition) to
// the next offset the group would consume, in the style of the
// persys-scheduler's state-in-a-KV-store reconcile loop — desired state
// lives outside the components acting on it, so a restarted component
// reconverges by reading it back. Groups save after every broker commit
// and load at start, which is what makes a group restart resume with
// zero duplicates and zero gaps; the Cluster watches saves and trims log
// segments below the low-watermark of all persisted offsets, which is
// what bounds resident memory under infinite streams.
//
// Keys are registered once and then updated in place; iteration
// (LowWatermark, Snapshot) walks the registration-order slice, never a
// map, so every read is deterministic (seed-audit rule 5).
type OffsetStore struct {
	mu      sync.Mutex
	entries []*offsetEntry // registration order: deterministic iteration
	byKey   map[offsetKey]*offsetEntry
	subs    []func(group, topic string, partition int)
}

type offsetKey struct {
	group, topic string
	partition    int
}

type offsetEntry struct {
	offsetKey
	next int64
}

// OffsetRecord is one persisted cursor, the unit of Snapshot/Restore.
type OffsetRecord struct {
	Group, Topic string
	Partition    int
	// Next is the next offset the group would consume (all offsets below
	// it are processed and committed).
	Next int64
}

// NewOffsetStore creates an empty store.
func NewOffsetStore() *OffsetStore {
	return &OffsetStore{byKey: make(map[offsetKey]*offsetEntry)}
}

// OnSave registers a callback invoked (outside the store's lock, on the
// saver's goroutine) after every applied save — the hook the Cluster
// uses to evaluate retention at exactly the persist instants.
func (s *OffsetStore) OnSave(fn func(group, topic string, partition int)) {
	s.mu.Lock()
	s.subs = append(s.subs, fn)
	s.mu.Unlock()
}

// Save persists a group's cursor for one partition, monotonically: a
// save at or below the stored value only registers the key (a fresh
// group saves 0 to declare interest, which floors the low-watermark
// until it makes progress). Saves of an already-current value do not
// re-notify.
func (s *OffsetStore) Save(group, topic string, partition int, next int64) {
	key := offsetKey{group: group, topic: topic, partition: partition}
	s.mu.Lock()
	e, ok := s.byKey[key]
	if !ok {
		e = &offsetEntry{offsetKey: key, next: next}
		s.byKey[key] = e
		s.entries = append(s.entries, e)
	} else if next > e.next {
		e.next = next
	} else {
		s.mu.Unlock()
		return
	}
	subs := s.subs
	s.mu.Unlock()
	for _, fn := range subs {
		fn(group, topic, partition)
	}
}

// Load returns a group's persisted cursor for one partition.
func (s *OffsetStore) Load(group, topic string, partition int) (int64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.byKey[offsetKey{group: group, topic: topic, partition: partition}]
	if !ok {
		return 0, false
	}
	return e.next, true
}

// LowWatermark returns the minimum persisted cursor across every group
// registered on (topic, partition) — the retention floor: offsets below
// it are committed by all known consumers and safe to trim. ok is false
// while no group has registered, in which case nothing may be trimmed.
func (s *OffsetStore) LowWatermark(topic string, partition int) (int64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var lw int64
	found := false
	for _, e := range s.entries {
		if e.topic != topic || e.partition != partition {
			continue
		}
		if !found || e.next < lw {
			lw = e.next
			found = true
		}
	}
	return lw, found
}

// Snapshot returns every persisted cursor in registration order — the
// small KV snapshot a restarted deployment Restores from.
func (s *OffsetStore) Snapshot() []OffsetRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]OffsetRecord, len(s.entries))
	for i, e := range s.entries {
		out[i] = OffsetRecord{Group: e.group, Topic: e.topic, Partition: e.partition, Next: e.next}
	}
	return out
}

// Restore applies a snapshot through the same monotonic Save path (so
// restoring an older snapshot over newer state never rewinds a cursor).
func (s *OffsetStore) Restore(records []OffsetRecord) {
	for _, r := range records {
		s.Save(r.Group, r.Topic, r.Partition, r.Next)
	}
}
