package streaming

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gopilot/internal/core"
	"gopilot/internal/saga"
	"gopilot/internal/vclock"
)

// newVirtualStreamEnv builds a virtual-clock manager with one running
// pilot of the given core count. The caller must have adopted the clock
// and must `defer mgr.Close()` *after* its `defer clock.Leave()` (so the
// manager tears down while the driver is still a clock participant —
// t.Cleanup would run too late, after Leave).
func newVirtualStreamEnv(t *testing.T, clock *vclock.Virtual, cores int) *core.Manager {
	t.Helper()
	reg := saga.NewRegistry()
	reg.Register(saga.NewLocalService("gs", cores, clock))
	mgr := core.NewManager(core.Config{Registry: reg, Clock: clock})
	if _, err := mgr.SubmitPilot(core.PilotDescription{Resource: "local://gs", Cores: cores}); err != nil {
		t.Fatal(err)
	}
	return mgr
}

// TestGroupRebalanceExactlyOnce drives a group through a live join and a
// live leave and requires every (partition, offset) pair to be handled
// exactly once: the generation barrier must hand partition cursors over
// without loss or double-processing.
func TestGroupRebalanceExactlyOnce(t *testing.T) {
	clock := vclock.NewVirtual(vclock.Epoch)
	clock.Adopt()
	defer clock.Leave()
	b := NewBroker(BrokerConfig{
		AppendCost: 100 * time.Microsecond, FetchLatency: time.Millisecond, Clock: clock,
	})
	defer b.Close()
	if err := b.CreateTopic("t", 6); err != nil {
		t.Fatal(err)
	}
	mgr := newVirtualStreamEnv(t, clock, 8)
	defer mgr.Close()

	var mu sync.Mutex
	seen := map[string]int{}
	g, err := StartGroup(context.Background(), mgr, b, GroupConfig{
		Name: "g", Topic: "t", Workers: 2, BatchSize: 16,
		CostPerMessage: time.Millisecond,
		Handler: func(_ context.Context, _ core.TaskContext, m Message) error {
			mu.Lock()
			seen[fmt.Sprintf("%d@%d", m.Partition, m.Offset)]++
			mu.Unlock()
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	const n = 600
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	done := vclock.NewEvent(clock)
	vclock.Go(clock, func() {
		defer done.Fire()
		values := make([][]byte, 32)
		for i := range values {
			values[i] = []byte("x")
		}
		for sent := 0; sent < n; {
			k := len(values)
			if n-sent < k {
				k = n - sent
			}
			if err := b.PublishValues(ctx, "t", values[:k]); err != nil {
				t.Error(err)
				return
			}
			sent += k
		}
	})
	if err := g.WaitProcessed(ctx, n/4); err != nil {
		t.Fatalf("before join: %d/%d: %v", g.Processed(), n, err)
	}
	ord, err := g.AddWorker()
	if err != nil {
		t.Fatal(err)
	}
	if err := g.WaitProcessed(ctx, n/2); err != nil {
		t.Fatalf("before leave: %d/%d: %v", g.Processed(), n, err)
	}
	if err := g.RemoveWorker(ord); err != nil {
		t.Fatal(err)
	}
	if err := g.WaitProcessed(ctx, n); err != nil {
		t.Fatalf("processed %d/%d: %v", g.Processed(), n, err)
	}
	if !done.Wait(ctx) {
		t.Fatal(ctx.Err())
	}
	g.Stop()
	if g.Rebalances() != 2 {
		t.Errorf("rebalances = %d, want 2", g.Rebalances())
	}
	if got := len(g.Members()); got != 2 {
		t.Errorf("members = %d, want 2", got)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != n {
		t.Fatalf("distinct messages = %d, want %d", len(seen), n)
	}
	for k, c := range seen {
		if c != 1 {
			t.Fatalf("message %s handled %d times, want exactly once", k, c)
		}
	}
	if g.Processed() != n {
		t.Errorf("processed = %d, want %d (exactly-once accounting)", g.Processed(), n)
	}
}

// groupJitterRun is one full same-seed group run whose *real* completion
// order is perturbed: pure handlers burn a wall-clock jitter derived from
// jitterSeed (different every run) while the modeled world stays fixed.
// It fingerprints every externally visible measurement, mirroring
// vclock's TestComputeScheduleIndependentOfCompletionOrder harness.
func groupJitterRun(t *testing.T, jitterSeed uint64) string {
	t.Helper()
	clock := vclock.NewVirtual(vclock.Epoch)
	clock.Adopt()
	defer clock.Leave()
	b := NewBroker(BrokerConfig{
		AppendCost: 100 * time.Microsecond, FetchLatency: time.Millisecond,
		SegmentSize: 64, MaxInflightBytes: 1 << 12, Clock: clock,
	})
	defer b.Close()
	const nparts = 8
	if err := b.CreateTopic("t", nparts); err != nil {
		t.Fatal(err)
	}
	mgr := newVirtualStreamEnv(t, clock, 8)
	defer mgr.Close()
	g, err := StartGroup(context.Background(), mgr, b, GroupConfig{
		Name: "g", Topic: "t", Workers: 3, BatchSize: 32,
		CostPerMessage: 500 * time.Microsecond,
		PureHandler:    true,
		Handler: func(_ context.Context, _ core.TaskContext, m Message) error {
			// Real CPU whose wall duration varies with the run's jitter
			// seed: completion order across workers is race-determined,
			// the modeled schedule must not be.
			spin := splitmix(jitterSeed^uint64(m.Partition)<<32^uint64(m.Offset)) % 2000
			acc := uint64(1)
			for i := uint64(0); i < spin; i++ {
				acc = splitmix(acc)
			}
			if acc == 42 {
				return fmt.Errorf("unreachable")
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	const n = 2000
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	done := vclock.NewEvent(clock)
	vclock.Go(clock, func() {
		defer done.Fire()
		values := make([][]byte, 50)
		for i := range values {
			values[i] = []byte("payload")
		}
		for sent := 0; sent < n; {
			k := len(values)
			if n-sent < k {
				k = n - sent
			}
			if err := b.PublishValues(ctx, "t", values[:k]); err != nil {
				t.Error(err)
				return
			}
			sent += k
		}
	})
	if err := g.WaitProcessed(ctx, n/4); err != nil {
		t.Fatalf("before join: %d/%d: %v", g.Processed(), n, err)
	}
	ord, err := g.AddWorker()
	if err != nil {
		t.Fatal(err)
	}
	if err := g.WaitProcessed(ctx, 3*n/4); err != nil {
		t.Fatalf("before leave: %d/%d: %v", g.Processed(), n, err)
	}
	if err := g.RemoveWorker(ord); err != nil {
		t.Fatal(err)
	}
	if err := g.WaitProcessed(ctx, n); err != nil {
		t.Fatalf("processed %d/%d: %v", g.Processed(), n, err)
	}
	if !done.Wait(ctx) {
		t.Fatal(ctx.Err())
	}
	g.Stop()
	lat := g.LatencyStats()
	fp := fmt.Sprintf("processed=%d rebalances=%d tput=%.6f lat{mean=%.9f p50=%.9f p95=%.9f max=%.9f}",
		g.Processed(), g.Rebalances(), g.Throughput(), lat.Mean, lat.Median, lat.P95, lat.Max)
	for q := 0; q < nparts; q++ {
		c, err := b.Committed("t", q)
		if err != nil {
			t.Fatal(err)
		}
		fp += fmt.Sprintf(" c%d=%d", q, c)
	}
	return fp
}

func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// TestGroupRebalanceDeterministic is the consumer-group determinism
// contract: five same-seed runs — live join and leave, backpressured
// producer, parallel compute-phase handlers with run-varying wall-clock
// completion jitter, forced GOMAXPROCS=4 — must produce bit-identical
// throughput, latency quantiles and per-partition commit cursors.
func TestGroupRebalanceDeterministic(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	ref := groupJitterRun(t, 0)
	for seed := uint64(1); seed <= 4; seed++ {
		if got := groupJitterRun(t, seed); got != ref {
			t.Fatalf("jitter seed %d diverged:\n%s\n%s", seed, ref, got)
		}
	}
}

// TestPublishBackpressureBlocksAndResumes pins backpressure to exact
// virtual instants: a publish that exceeds MaxInflightBytes must park
// until the consumer commits, resume at precisely the commit instant,
// and pay its append cost from there.
func TestPublishBackpressureBlocksAndResumes(t *testing.T) {
	clock := vclock.NewVirtual(vclock.Epoch)
	clock.Adopt()
	defer clock.Leave()
	b := NewBroker(BrokerConfig{
		AppendCost:       time.Millisecond,
		FetchLatency:     time.Millisecond,
		MaxInflightBytes: 100,
		Clock:            clock,
	})
	defer b.Close()
	if err := b.CreateTopic("t", 1); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	payload := make([]byte, 10)

	// Fill the partition exactly to the bound: 10 messages × 10 bytes.
	values := make([][]byte, 10)
	for i := range values {
		values[i] = payload
	}
	if err := b.PublishValues(ctx, "t", values); err != nil {
		t.Fatal(err)
	}
	t10 := vclock.Epoch.Add(10 * time.Millisecond) // 10 appends × 1ms
	if now := clock.Now(); !now.Equal(t10) {
		t.Fatalf("after fill clock = %v, want %v", now, t10)
	}
	if inflight, _ := b.InflightBytes("t", 0); inflight != 100 {
		t.Fatalf("inflight = %d, want 100", inflight)
	}

	// An 11th message must block: the partition is at its bound.
	var published Message
	var resumedAt time.Time
	done := vclock.NewEvent(clock)
	vclock.Go(clock, func() {
		defer done.Fire()
		m, err := b.Publish(ctx, "t", nil, payload)
		if err != nil {
			t.Error(err)
			return
		}
		published = m
		resumedAt = clock.Now()
	})
	// Let the producer park, then commit half the log 20ms later.
	if !clock.Sleep(ctx, 20*time.Millisecond) {
		t.Fatal("driver sleep canceled")
	}
	tCommit := t10.Add(20 * time.Millisecond)
	if err := b.Commit("t", 0, 5); err != nil {
		t.Fatal(err)
	}
	if !done.Wait(ctx) {
		t.Fatal("producer never resumed")
	}
	// The message was accepted at the commit instant and the producer
	// resumed one append cost later — not a nanosecond before or after.
	if !published.Published.Equal(tCommit) {
		t.Errorf("blocked publish accepted at %v, want commit instant %v", published.Published, tCommit)
	}
	if want := tCommit.Add(time.Millisecond); !resumedAt.Equal(want) {
		t.Errorf("producer resumed at %v, want %v", resumedAt, want)
	}
	if committed, _ := b.Committed("t", 0); committed != 5 {
		t.Errorf("committed = %d, want 5", committed)
	}
	// 100 - 5×10 freed + 10 published while blocked.
	if inflight, _ := b.InflightBytes("t", 0); inflight != 60 {
		t.Errorf("inflight = %d, want 60", inflight)
	}
}

// TestGroupWorkerFailureEvictsAndRebalances covers the abnormal-exit
// path: a worker whose handler fails must evict itself — its partitions
// reshard onto the survivors (the uncommitted batch is redelivered), and
// a later AddWorker's generation barrier must not wedge waiting for the
// dead worker's ack.
func TestGroupWorkerFailureEvictsAndRebalances(t *testing.T) {
	clock := vclock.NewVirtual(vclock.Epoch)
	clock.Adopt()
	defer clock.Leave()
	b := NewBroker(BrokerConfig{
		AppendCost: 100 * time.Microsecond, FetchLatency: time.Millisecond, Clock: clock,
	})
	defer b.Close()
	const nparts = 4
	if err := b.CreateTopic("t", nparts); err != nil {
		t.Fatal(err)
	}
	mgr := newVirtualStreamEnv(t, clock, 8)
	defer mgr.Close()
	var tripped atomic.Bool
	g, err := StartGroup(context.Background(), mgr, b, GroupConfig{
		Name: "g", Topic: "t", Workers: 2, BatchSize: 8,
		CostPerMessage: time.Millisecond,
		Handler: func(_ context.Context, _ core.TaskContext, m Message) error {
			if m.Partition == 2 && m.Offset == 5 && tripped.CompareAndSwap(false, true) {
				return fmt.Errorf("injected handler failure")
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	publish := func(k int) {
		values := make([][]byte, k)
		for i := range values {
			values[i] = []byte("x")
		}
		if err := b.PublishValues(ctx, "t", values); err != nil {
			t.Fatal(err)
		}
	}
	// Commit cursors dodge the at-least-once double count of the
	// redelivered batch: all offsets below the cursor were processed.
	waitCommitted := func(target int64) {
		for i := 0; ; i++ {
			var sum int64
			for q := 0; q < nparts; q++ {
				c, err := b.Committed("t", q)
				if err != nil {
					t.Fatal(err)
				}
				sum += c
			}
			if sum >= target {
				return
			}
			if i > 10_000 || !clock.Sleep(ctx, 10*time.Millisecond) {
				t.Fatalf("committed %d of %d", sum, target)
			}
		}
	}
	publish(200)
	waitCommitted(200)
	if !tripped.Load() {
		t.Fatal("injected failure never fired")
	}
	if got := len(g.Members()); got != 1 {
		t.Fatalf("members = %d after worker failure, want 1 (evicted)", got)
	}
	// The barrier must still work: a join completes and the grown group
	// keeps consuming.
	if _, err := g.AddWorker(); err != nil {
		t.Fatal(err)
	}
	publish(100)
	waitCommitted(300)
	if got := len(g.Members()); got != 2 {
		t.Fatalf("members = %d after re-join, want 2", got)
	}
	g.Stop()
}

// TestGroupBackToBackRebalanceExactlyOnce is the regression test for the
// generation-barrier carry-forward: a worker removed in generation N is
// in neither N's nor N+1's member set, so if membership changes again
// before it quiesces, only N's still-pending barrier slots remember it.
// The successor barrier must inherit those slots — otherwise the new
// assignment activates (N's ready is force-fired on retirement) while
// the removed worker still owns a partition mid-batch, and its messages
// are processed twice.
//
// Construction: all traffic is keyed to partition 1, whose owner (worker
// ordinal 1) is deep in a long modeled batch when the driver issues
// RemoveWorker(1) immediately followed by AddWorker() — two membership
// changes with no ack in between. The joiner inherits partition 1 and
// must not re-consume the in-flight batch.
func TestGroupBackToBackRebalanceExactlyOnce(t *testing.T) {
	clock := vclock.NewVirtual(vclock.Epoch)
	clock.Adopt()
	defer clock.Leave()
	b := NewBroker(BrokerConfig{
		AppendCost: 100 * time.Microsecond, FetchLatency: time.Millisecond, Clock: clock,
	})
	defer b.Close()
	const nparts = 2
	if err := b.CreateTopic("t", nparts); err != nil {
		t.Fatal(err)
	}
	mgr := newVirtualStreamEnv(t, clock, 8)
	defer mgr.Close()

	// A key owned by partition 1, so every publish lands on worker 1's
	// shard while worker 0 idles on an empty partition 0.
	var key []byte
	for i := 0; key == nil; i++ {
		if k := []byte(fmt.Sprintf("k%d", i)); partitionOf(k, nparts) == 1 {
			key = k
		}
	}

	var mu sync.Mutex
	seen := map[string]int{}
	g, err := StartGroup(context.Background(), mgr, b, GroupConfig{
		Name: "g", Topic: "t", Workers: 2, BatchSize: 64,
		CostPerMessage: 4 * time.Millisecond, // 48-message batch = 192ms mid-flight window
		Handler: func(_ context.Context, _ core.TaskContext, m Message) error {
			mu.Lock()
			seen[fmt.Sprintf("%d@%d", m.Partition, m.Offset)]++
			mu.Unlock()
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	const batch = 48
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	publish := func() {
		kvs := make([][2][]byte, batch)
		for i := range kvs {
			kvs[i] = [2][]byte{key, []byte("x")}
		}
		if _, err := b.PublishBatch(ctx, "t", kvs); err != nil {
			t.Fatal(err)
		}
	}
	publish()
	// Land the driver strictly inside worker 1's batch window: the fetch
	// completes within ~6ms of Epoch, the modeled batch cost runs ~192ms.
	if !clock.Sleep(ctx, 50*time.Millisecond) {
		t.Fatal("driver sleep canceled")
	}
	ord := g.Members()[1]
	if err := g.RemoveWorker(ord); err != nil {
		t.Fatal(err)
	}
	// Second membership change before anyone acked the first: the barrier
	// for this generation must still wait for the removed worker 1.
	if _, err := g.AddWorker(); err != nil {
		t.Fatal(err)
	}
	publish()
	if err := g.WaitProcessed(ctx, 2*batch); err != nil {
		t.Fatalf("processed %d/%d: %v", g.Processed(), 2*batch, err)
	}
	// The commit cursor must converge on exactly one pass over the log:
	// the late retiree's commit lands first, the successor's follows.
	for i := 0; ; i++ {
		c, err := b.Committed("t", 1)
		if err != nil {
			t.Fatal(err)
		}
		if c == 2*batch {
			break
		}
		if c > 2*batch {
			t.Fatalf("committed = %d past end of log %d", c, 2*batch)
		}
		if i > 10_000 || !clock.Sleep(ctx, 10*time.Millisecond) {
			t.Fatalf("committed %d of %d", c, 2*batch)
		}
	}
	g.Stop()
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != 2*batch {
		t.Fatalf("distinct messages = %d, want %d", len(seen), 2*batch)
	}
	for k, c := range seen {
		if c != 1 {
			t.Fatalf("message %s handled %d times, want exactly once (late retiree raced the joiner)", k, c)
		}
	}
	if got := g.Processed(); got != 2*batch {
		t.Errorf("processed = %d, want %d (exactly-once accounting)", got, 2*batch)
	}
}

// TestCanceledBackpressurePublishLeavesNoWaiters pins the space-waiter
// hygiene of the producer park: a publish abandoned on context
// cancellation must fire its event so the next registration prunes it —
// repeatedly canceled publishes against a full partition must not grow
// part.space until a Commit or Close sweeps it.
func TestCanceledBackpressurePublishLeavesNoWaiters(t *testing.T) {
	clock := vclock.NewVirtual(vclock.Epoch)
	clock.Adopt()
	defer clock.Leave()
	b := NewBroker(BrokerConfig{
		AppendCost:       time.Millisecond,
		MaxInflightBytes: 100,
		Clock:            clock,
	})
	defer b.Close()
	if err := b.CreateTopic("t", 1); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	payload := make([]byte, 100)
	// Fill the partition exactly to the backpressure bound.
	if err := b.PublishValues(ctx, "t", [][]byte{payload}); err != nil {
		t.Fatal(err)
	}
	canceled, cancelNow := context.WithCancel(ctx)
	cancelNow()
	for i := 0; i < 50; i++ {
		if _, err := b.Publish(canceled, "t", nil, payload); !errors.Is(err, context.Canceled) {
			t.Fatalf("publish %d: err = %v, want context.Canceled", i, err)
		}
	}
	b.mu.Lock()
	part := b.topics["t"].partitions[0]
	b.mu.Unlock()
	part.mu.Lock()
	waiters := len(part.space)
	part.mu.Unlock()
	// At most the last abandoned (already-fired) entry may linger; every
	// earlier one must have been pruned at registration time.
	if waiters > 1 {
		t.Fatalf("part.space holds %d entries after 50 canceled publishes, want <= 1", waiters)
	}
	// The surviving entry must be recognizably dead so a live producer's
	// registration sweeps it too.
	part.mu.Lock()
	for _, w := range part.space {
		if !w.Fired() {
			t.Error("abandoned space waiter left unfired")
		}
	}
	part.mu.Unlock()
}

// TestGroupValidation covers the constructor error paths.
func TestGroupValidation(t *testing.T) {
	clock := vclock.NewVirtual(vclock.Epoch)
	clock.Adopt()
	defer clock.Leave()
	b := NewBroker(BrokerConfig{Clock: clock})
	defer b.Close()
	b.CreateTopic("t", 1)
	mgr := newVirtualStreamEnv(t, clock, 2)
	defer mgr.Close()
	if _, err := StartGroup(context.Background(), mgr, b, GroupConfig{Topic: "t"}); err == nil {
		t.Error("nil handler accepted")
	}
	h := func(context.Context, core.TaskContext, Message) error { return nil }
	if _, err := StartGroup(context.Background(), mgr, b, GroupConfig{Topic: "ghost", Handler: h}); err == nil {
		t.Error("unknown topic accepted")
	}
	g, err := StartGroup(context.Background(), mgr, b, GroupConfig{Topic: "t", Handler: h})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.RemoveWorker(99); err == nil {
		t.Error("removing an unknown ordinal succeeded")
	}
	g.Stop()
}
