package streaming

import (
	"context"
	"errors"
	"fmt"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"gopilot/internal/core"
	"gopilot/internal/dist"
	"gopilot/internal/vclock"
)

// This file implements consumer groups: a coordinator that shards a
// topic's partitions across a dynamic pool of pilot-managed workers with
// Kafka-style generation-based rebalancing, deterministic under the
// virtual-time executor.
//
// Protocol (DESIGN.md "Streaming data plane"): membership changes create
// a new *generation*. Workers of the obsolete generation are interrupted
// mid-long-poll (their generation context is canceled, which wakes the
// clock-aware park inside FetchOrWait — the WaitAny waiter machinery),
// finish and commit any batch already in flight, then acknowledge the new
// generation. Only when every worker touched by the change has
// acknowledged does the new assignment activate (the generation barrier),
// so no partition is ever consumed by two workers at once and the commit
// cursor handoff is exact: processing is exactly-once across rebalances.
//
// Assignment is a pure function of the sorted member ordinals: the i-th
// member (by spawn ordinal) owns partitions {q : q mod M == i}. Ordinals
// are assigned at spawn and never reused, so the assignment never depends
// on join timing races or map iteration.
//
// A worker that dies abnormally (handler failure, broker closed under it)
// evicts itself on the way out: its partitions reshard onto the survivors
// and its slot in any pending barrier is released, so one crashed worker
// can neither strand its shard nor wedge later rebalances.

// GroupConfig describes a consumer group: a coordinator plus a pool of
// worker units consuming one topic with dynamic membership, commit-based
// progress, and (with Broker.MaxInflightBytes) backpressure.
type GroupConfig struct {
	// Name labels the group's compute units.
	Name string
	// Topic to consume.
	Topic string
	// Workers is the initial pool size (default 1); AddWorker/RemoveWorker
	// change it at runtime.
	Workers int
	// BatchSize bounds messages per poll (default 256).
	BatchSize int
	// Handler processes each message.
	Handler HandlerFunc
	// PureHandler marks Handler as a side-effect-free CPU kernel; batches
	// then run as parallel compute phases (see ProcessorConfig.PureHandler).
	PureHandler bool
	// CostPerMessage is the modeled processing cost per message, charged
	// once per poll batch.
	CostPerMessage time.Duration
	// CostCV makes per-batch cost stochastic (lognormal multiplier, mean
	// 1). Zero keeps costs deterministic.
	CostCV float64
	// Stream is the group's slot on the seeding spine; worker ordinal w
	// draws its cost jitter from Stream's "worker"/<w> child, so joins and
	// leaves never shift an existing worker's draws. Only consumed when
	// CostCV > 0. Defaults to dist.Unseeded("streaming/group/<name>").
	Stream *dist.Stream
	// CoresPerWorker sizes each worker unit (default 1).
	CoresPerWorker int
	// Offsets, when set, makes the group's progress durable: every
	// partition cursor is saved to the store after its broker commit, and
	// StartGroup loads persisted cursors back — a restarted group resumes
	// exactly where the last committed batch ended, with zero duplicates
	// and zero gaps. Partitions without a persisted cursor register at 0,
	// which floors the store's low-watermark (so a federated cluster never
	// trims data a known group has not durably consumed). Nil keeps the
	// group ephemeral.
	Offsets *OffsetStore
}

// generation is one epoch of the membership. It activates (ready fires)
// once every worker of the previous epoch has quiesced, and retires
// (ctx canceled, changed fired) when the next epoch is created.
type generation struct {
	id      int
	members []int // sorted worker ordinals
	ctx     context.Context
	cancel  context.CancelFunc
	changed *vclock.Event // a newer generation exists
	ready   *vclock.Event // the barrier: assignment is active
	waitFor []int         // ordinals whose ack still gates ready
}

// Group is a running consumer group.
type Group struct {
	*counters
	cfg    GroupConfig
	broker Bus
	mgr    *core.Manager
	nparts int

	runCtx     context.Context
	stop       context.CancelFunc
	workerRoot *dist.Stream

	mu          sync.Mutex
	cur         *generation
	nextOrdinal int
	units       []*core.ComputeUnit
	offsets     []int64 // per-partition consume cursor, handed off at the barrier
	seeded      bool    // initial pool is up; later changes count as rebalances
	rebalances  int
}

// StartGroup deploys the initial workers onto mgr's pilots and starts
// consuming from the given transport (one Broker or a federated
// Cluster). Stop (or ctx cancellation) terminates the group.
func StartGroup(ctx context.Context, mgr *core.Manager, broker Bus, cfg GroupConfig) (*Group, error) {
	if cfg.Handler == nil {
		return nil, errors.New("streaming: group needs a handler")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 256
	}
	if cfg.CoresPerWorker <= 0 {
		cfg.CoresPerWorker = 1
	}
	if cfg.Name == "" {
		cfg.Name = "stream-group"
	}
	if cfg.Stream == nil {
		cfg.Stream = dist.Unseeded("streaming/group/" + cfg.Name)
	}
	nparts, err := broker.Partitions(cfg.Topic)
	if err != nil {
		return nil, err
	}
	runCtx, cancel := context.WithCancel(ctx)
	g := &Group{
		counters:   newCounters(broker.Clock(), "group_e2e_latency_s"),
		cfg:        cfg,
		broker:     broker,
		mgr:        mgr,
		nparts:     nparts,
		runCtx:     runCtx,
		stop:       cancel,
		workerRoot: cfg.Stream.Named("worker"),
	}
	g.offsets = make([]int64, nparts)
	if cfg.Offsets != nil {
		// Resume from the persisted snapshot: cursors pick up exactly where
		// the last committed batch of a previous incarnation ended.
		// Partitions never saved register at 0 now, so the store's
		// low-watermark accounts for this group from the first instant.
		for q := 0; q < nparts; q++ {
			if next, ok := cfg.Offsets.Load(cfg.Name, cfg.Topic, q); ok {
				g.offsets[q] = next
			} else {
				cfg.Offsets.Save(cfg.Name, cfg.Topic, q, 0)
			}
		}
	}
	// Generation 0: empty membership, already active.
	gen0ctx, gen0cancel := context.WithCancel(runCtx)
	g.cur = &generation{id: 0, ctx: gen0ctx, cancel: gen0cancel,
		changed: vclock.NewEvent(broker.Clock()), ready: vclock.NewEvent(broker.Clock())}
	g.cur.ready.Fire()
	for i := 0; i < cfg.Workers; i++ {
		if _, err := g.AddWorker(); err != nil {
			cancel()
			g.Stop()
			return nil, err
		}
	}
	g.mu.Lock()
	g.seeded = true
	g.mu.Unlock()
	return g, nil
}

// barrierCarryBug, when set, makes newGenerationLocked drop the
// old.waitFor carry-forward — reintroducing a fixed defect (a worker
// removed during generation N could still own a partition when N+1
// activated, breaking the exactly-once handoff under back-to-back
// rebalances). It exists solely so the chaos harness can prove its
// invariant checkers catch the bug class; nothing outside tests and
// cmd/chaosreplay may set it.
var barrierCarryBug atomic.Bool

// EnableBarrierCarryBug toggles the deliberate barrier-carry defect used
// to validate the chaos invariant suite. See barrierCarryBug.
func EnableBarrierCarryBug(on bool) { barrierCarryBug.Store(on) }

// newGenerationLocked installs the next generation for the given member
// set. Callers hold g.mu.
func (g *Group) newGenerationLocked(members []int) *generation {
	old := g.cur
	ng := &generation{
		id:      old.id + 1,
		members: members,
		changed: vclock.NewEvent(g.broker.Clock()),
		ready:   vclock.NewEvent(g.broker.Clock()),
	}
	ng.ctx, ng.cancel = context.WithCancel(g.runCtx)
	// The barrier waits for every worker the change touches: continuing
	// and departing members of the old epoch, joiners (whose ack doubles
	// as proof their unit actually started), and — because membership can
	// change again before everyone converges — the ordinals the old epoch
	// was itself still waiting on. A worker removed in generation N is in
	// neither N's nor N+1's member set, and N's ready is force-fired on
	// retirement below; if it has not yet acked N, only old.waitFor still
	// records that it is out there finishing a batch under an older
	// assignment. Dropping it would let back-to-back membership changes
	// activate N+1 while that worker still owns a partition, breaking the
	// exactly-once handoff (its late commit would also rewind g.offsets).
	ng.waitFor = unionInts(unionInts(old.waitFor, old.members), members)
	if barrierCarryBug.Load() {
		ng.waitFor = unionInts(old.members, members) // the pre-fix defect
	}
	if len(ng.waitFor) == 0 {
		ng.ready.Fire()
	}
	g.cur = ng
	if g.seeded {
		g.rebalances++
	}
	// Retire the old epoch: interrupt parked polls and release anyone
	// still waiting on a barrier that can no longer complete (they re-read
	// g.cur and converge on this generation).
	old.cancel()
	old.changed.Fire()
	old.ready.Fire()
	return ng
}

// dropWaitLocked releases ordinal's slot in gen's barrier, firing ready
// when the last slot empties — the single place barrier slots are
// removed, whatever the reason (ack, eviction, spawn failure). Callers
// hold g.mu; firing under the lock is safe, newGenerationLocked already
// fires retired-generation events the same way.
func dropWaitLocked(gen *generation, ordinal int) {
	for i, o := range gen.waitFor {
		if o == ordinal {
			gen.waitFor = append(gen.waitFor[:i], gen.waitFor[i+1:]...)
			break
		}
	}
	if len(gen.waitFor) == 0 && !gen.ready.Fired() {
		gen.ready.Fire()
	}
}

// AddWorker grows the pool by one worker, returning its ordinal. The new
// assignment activates once every current worker has finished its
// in-flight batch (the generation barrier).
func (g *Group) AddWorker() (int, error) {
	g.mu.Lock()
	ord := g.nextOrdinal
	g.nextOrdinal++
	members := append(append([]int(nil), g.cur.members...), ord)
	slices.Sort(members)
	g.newGenerationLocked(members)
	g.mu.Unlock()

	var jitter dist.Dist
	if g.cfg.CostCV > 0 {
		jitter = dist.LogNormalFrom(g.workerRoot.SplitLabel(uint64(ord)), 1, g.cfg.CostCV)
	}
	u, err := g.mgr.SubmitUnit(core.UnitDescription{
		Name:  fmt.Sprintf("%s[%d]", g.cfg.Name, ord),
		Cores: g.cfg.CoresPerWorker,
		Run: func(_ context.Context, tc core.TaskContext) error {
			return g.run(tc, ord, jitter)
		},
	})
	g.mu.Lock()
	defer g.mu.Unlock()
	if err != nil {
		// Compensate: drop the member again and release its barrier slot —
		// its unit will never ack.
		g.newGenerationLocked(removeInt(g.cur.members, ord))
		dropWaitLocked(g.cur, ord)
		return 0, err
	}
	g.units = append(g.units, u)
	return ord, nil
}

// RemoveWorker shrinks the pool, interrupting the worker's in-flight poll
// and re-sharding its partitions once it (and everyone else) quiesces.
func (g *Group) RemoveWorker(ordinal int) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if !slices.Contains(g.cur.members, ordinal) {
		return fmt.Errorf("streaming: group %q has no worker %d", g.cfg.Name, ordinal)
	}
	g.newGenerationLocked(removeInt(g.cur.members, ordinal))
	return nil
}

// Members returns the current sorted worker ordinals.
func (g *Group) Members() []int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]int(nil), g.cur.members...)
}

// BarrierPending returns how many workers the current generation's
// barrier is still waiting on; zero means the assignment is active. The
// chaos invariant suite polls this to detect a stranded barrier.
func (g *Group) BarrierPending() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.cur.ready.Fired() {
		return 0
	}
	return len(g.cur.waitFor)
}

// Rebalances returns how many membership changes occurred after the
// initial pool came up.
func (g *Group) Rebalances() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.rebalances
}

// assignedParts returns the partitions the idx-th of m members owns.
func assignedParts(idx, m, nparts int) []int {
	var parts []int
	for q := idx; q < nparts; q += m {
		parts = append(parts, q)
	}
	return parts
}

// run is one worker's life: converge on the current generation, pass the
// barrier, consume the assigned shard until the generation retires, and
// exit once no longer a member.
func (g *Group) run(tc core.TaskContext, ordinal int, jitter dist.Dist) error {
	acked := -1
	for {
		if g.runCtx.Err() != nil {
			return nil
		}
		g.mu.Lock()
		gen := g.cur
		if gen.id != acked {
			// The ack must happen under the same lock that read g.cur:
			// between a bare read and a later ack, a membership change could
			// install a successor that inherits this ordinal through the
			// waitFor carry-forward — acking the stale epoch and exiting
			// would then leave the successor's barrier waiting forever on a
			// worker that is gone. (vclock.Virtual's single-runner token
			// makes that window unreachable; on real clocks it is a genuine
			// race.)
			dropWaitLocked(gen, ordinal)
			acked = gen.id
		}
		g.mu.Unlock()
		idx := slices.Index(gen.members, ordinal)
		if idx < 0 {
			return nil // removed from the group
		}
		if !gen.ready.Wait(g.runCtx) {
			if g.runCtx.Err() != nil {
				return nil
			}
			continue
		}
		parts := assignedParts(idx, len(gen.members), g.nparts)
		if len(parts) == 0 {
			// More workers than partitions: idle until the next rebalance.
			if !gen.changed.Wait(g.runCtx) && g.runCtx.Err() != nil {
				return nil
			}
			continue
		}
		if err := g.consume(gen, tc, parts, jitter); err != nil {
			// The worker is exiting abnormally: leave the membership so
			// its partitions are resharded and no future barrier waits for
			// an ack this unit will never send.
			g.evict(ordinal)
			if errors.Is(err, ErrBrokerClosed) {
				return nil // no more data will ever arrive
			}
			return err
		}
	}
}

// evict removes a worker that is exiting abnormally (handler failure,
// broker closed) from the membership, rebalancing its partitions onto the
// survivors and releasing its slot in the current barrier. During group
// teardown it is a no-op — every worker exits then.
func (g *Group) evict(ordinal int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.runCtx.Err() != nil {
		return
	}
	if slices.Contains(g.cur.members, ordinal) {
		g.newGenerationLocked(removeInt(g.cur.members, ordinal))
	}
	dropWaitLocked(g.cur, ordinal)
}

// consume drains the shard until the generation retires or the group
// stops. The partition cursors live in g.offsets; between the barrier
// handing them to us and our final commit, this worker is their only
// reader and writer.
func (g *Group) consume(gen *generation, tc core.TaskContext, parts []int, jitter dist.Dist) error {
	offsets := make([]int64, len(parts))
	g.mu.Lock()
	for i, q := range parts {
		offsets[i] = g.offsets[q]
	}
	g.mu.Unlock()
	start := 0
	for {
		// The poll runs on the generation context: a rebalance cancels it,
		// which wakes the clock-aware park deterministically.
		i, batch, err := g.broker.FetchOrWait(gen.ctx, g.cfg.Topic, parts, offsets, start, g.cfg.BatchSize)
		if err != nil {
			if gen.ctx.Err() != nil {
				return nil // rebalance or stop; run() re-converges
			}
			var oor *OffsetOutOfRangeError
			if errors.As(err, &oor) {
				// Retention trimmed past our cursor — possible only for
				// offsets below every persisted group cursor (e.g. a group
				// joining an already-trimmed stream at 0), never for this
				// group's own committed progress. Snap to the oldest retained
				// offset and continue: auto.offset.reset=earliest.
				for k, q := range parts {
					if q == oor.Partition && offsets[k] < oor.Oldest {
						offsets[k] = oor.Oldest
						g.mu.Lock()
						if oor.Oldest > g.offsets[q] {
							g.offsets[q] = oor.Oldest
						}
						g.mu.Unlock()
					}
				}
				continue
			}
			return err // ErrBrokerClosed and real failures: run() decides
		}
		// The batch itself completes on the run context: a rebalance
		// interrupts polls, not processing, so the batch commits exactly
		// once before the partition is handed to its next owner.
		if err := runBatch(g.runCtx, tc, g.counters, batch, g.cfg.CostPerMessage, jitter, g.cfg.PureHandler, g.cfg.Handler); err != nil {
			if g.runCtx.Err() != nil {
				return nil
			}
			return err
		}
		offsets[i] += int64(len(batch))
		g.mu.Lock()
		// Monotonic max, not a blind store: the barrier guarantees sole
		// ownership during a tenure, and this guard makes the guarantee
		// robust — even a late retiree's commit can never rewind the cursor
		// a successor has already advanced (broker.Commit is monotone too).
		if offsets[i] > g.offsets[parts[i]] {
			g.offsets[parts[i]] = offsets[i]
		}
		g.mu.Unlock()
		if err := g.broker.Commit(g.cfg.Topic, parts[i], offsets[i]); err != nil {
			// Broker closed (or topic torn down) between the fetch and the
			// commit: exit so run() evicts this worker now instead of
			// discovering the closure on the next poll.
			return err
		}
		if g.cfg.Offsets != nil {
			// Persist after the broker commit, same value: the durable
			// snapshot never runs ahead of the broker's mark, so a restart
			// from it can re-deliver at most the batches committed after the
			// last persist — and with this ordering there are none.
			g.cfg.Offsets.Save(g.cfg.Name, g.cfg.Topic, parts[i], offsets[i])
		}
		if gen.ctx.Err() != nil {
			return nil
		}
		start = i + 1
	}
}

// Stop terminates the workers and waits for their units to finish.
func (g *Group) Stop() {
	g.stop()
	g.mu.Lock()
	units := append([]*core.ComputeUnit(nil), g.units...)
	g.mu.Unlock()
	for _, u := range units {
		u.Wait(context.Background())
	}
	g.markStopped()
}

func removeInt(xs []int, x int) []int {
	return slices.DeleteFunc(slices.Clone(xs), func(v int) bool { return v == x })
}

// unionInts merges two sorted ordinal sets.
func unionInts(a, b []int) []int {
	out := slices.Concat(a, b)
	slices.Sort(out)
	return slices.Compact(out)
}
