package streaming

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"gopilot/internal/plan"
	"gopilot/internal/vclock"
)

// Cluster federates N broker shards behind the single client-facing Bus
// API (DESIGN.md "Federation"): producers and consumer groups talk to
// the cluster exactly as to one Broker, while every shard runs its own
// physical Broker and every partition's log is *replicated* — the leader
// appends locally, per-link catch-up runners stream acknowledged batches
// to the followers in virtual time, and a per-partition acknowledged
// high watermark (the minimum log end across full members) gates what
// consumers may fetch and commit. Only quorum-acknowledged offsets are
// visible, so a publish returns when its batch is replicated, and a
// slow or severed replication link back-pressures producers instead of
// losing data.
//
// Handoff is a genuine recovery protocol. When a leader shard dies the
// control plane promotes the first fully-replicated survivor, bumps the
// leadership epoch, truncates the promoted log to the acknowledged
// watermark (its un-acked suffix may be stale), and restores the
// coordinator's commit mark onto it; the deposed shard's locally-acked
// suffix — and any follower that replicated past the watermark — now
// *diverges* from the new leader's chain. Each batch carries its
// leadership epoch, so a log is summarized by a compact epoch-span
// chain, and the catch-up runners detect divergence by chain compare
// (plan.DivergencePoint), repair it by truncate-to-watermark, and
// re-stream the authoritative suffix.
//
// Placement stays planner state: replica sets come from
// plan.ShardReplicas, failures reconverge through plan.DetectShardDrift,
// and divergence/lag classification is plan.ClassifyReplica — pure
// functions, so same-seed runs place, re-place and repair identically.
type Cluster struct {
	cfg     ClusterConfig
	shards  []*Broker
	offsets *OffsetStore
	clock   vclock.Clock

	fetchLatency time.Duration
	segSize      int

	runCtx context.Context
	stopFn context.CancelFunc

	mu       sync.Mutex
	closed   bool
	up       []bool      // shard liveness, indexed by shard id
	severed  [][]bool    // severed[a][b]: replication link a<->b is down
	lagFac   [][]float64 // per-link catch-up pacing multiplier (0 = nominal)
	topics   map[string]*fedTopic
	order    []*fedTopic // creation order: deterministic control sweeps
	handoffs int
	repairs  int
	// ctrl holds waiters parked on control-plane state (fences, epochs,
	// links, stalls): fired and swept on every control change and on
	// Close, so nothing outlives the state it waits on.
	ctrl []*vclock.Event
}

// fedTopic is the control-plane view of one topic.
type fedTopic struct {
	name  string
	parts []*fedPart
	rr    int // round-robin cursor for key-less publishes (see topic.rr)
}

// fedPart is the control-plane state of one partition.
type fedPart struct {
	idx      int
	epoch    int   // leader epoch, bumped per handoff
	replicas []int // shard ids, leader first, live by invariant
	// syncing lists the recruits still catching up: members whose log end
	// has not yet reached the leader's. They replicate like any follower
	// but do not count toward the acknowledged watermark.
	syncing []int
	// availableAt fences the partition (fetches and publishes park on
	// ctrl) until the handoff completes; zero means available.
	availableAt time.Time
	// stalled marks an injected fetch blackout (chaos): consumers park as
	// if no data were acknowledged. Producers are unaffected.
	stalled bool
	// frozen[slot] freezes replication into follower slot `slot`
	// (replicas[1+slot]) — the torn-replication chaos fault.
	frozen []bool
	// acked is the acknowledged high watermark: offsets below it are on
	// every full member. Monotone. commit is the coordinator's commit
	// mark — the cluster-truth cursor that survives leader handoffs.
	acked  int64
	commit int64
	// ackedAtEpoch[e] is the watermark at the instant epoch e was
	// installed — the truncation point of that handoff, which tells a
	// mid-publish producer exactly how much of its batch survived. One
	// entry per epoch; epochs are bounded by shard deaths.
	ackedAtEpoch []int64
	// ackWait holds producers parked until acked reaches their batch end
	// or the epoch moves; fired on watermark advance and on handoff.
	ackWait []*vclock.Event
}

// ClusterConfig configures a Cluster. The broker-shaped fields
// (AppendCost, FetchLatency, SegmentSize, MaxInflightBytes, OnCommit,
// Clock) carry the same semantics as BrokerConfig and apply to every
// shard's broker.
type ClusterConfig struct {
	// Name labels the cluster (default "cluster").
	Name string
	// Shards is the number of broker shards (default 3).
	Shards int
	// Replication is the per-partition replica count, leader included
	// (default 2, clamped to Shards).
	Replication int
	// HandoffDelay is the modeled leader-election time: a partition whose
	// leader shard fails is unavailable for this long before the promoted
	// replica starts serving (default 500ms).
	HandoffDelay time.Duration
	// CatchupBytesPerSec paces replication: each leader→follower link
	// streams batches at this modeled rate (default 64 MiB/s). Chaos
	// replica-lag faults multiply a link's pace via SetLinkLag.
	CatchupBytesPerSec int64
	// Offsets is the shared consumer-offset KV; groups wired to the same
	// store drive retention. Minted fresh when nil.
	Offsets *OffsetStore
	// DisableRetention keeps every segment resident (no trimming) while
	// leaving offset persistence on.
	DisableRetention bool
	// OnRetention, if set, observes every retention evaluation (each
	// offset persist): the leader's resident bytes and oldest retained
	// offset after any trim. Property tests assert the resident bound
	// here, at exactly the instants the contract speaks about.
	OnRetention func(topic string, partition int, resident, oldest int64)
	// OnAcked, if set, observes every advance of a partition's
	// acknowledged high watermark: from → to, to > from. Invoked under
	// the cluster lock — callbacks must not call back into the cluster.
	// The E13 inline invariants prove watermark monotonicity here.
	OnAcked func(topic string, partition int, from, to int64)

	AppendCost       time.Duration
	FetchLatency     time.Duration
	SegmentSize      int
	MaxInflightBytes int64
	OnCommit         func(topic string, partition int, from, through int64)
	Clock            vclock.Clock
}

// staleHandoffBug, when set, plants the deliberate stale-handoff defect:
// a promoted leader restores the coordinator commit mark from its own
// lazily-replicated local mark (stale by up to one replication round),
// and the catch-up runners skip divergence repair, streaming blindly
// past a follower's stale suffix. Together those surface as the
// cursor-rewind and diverged-replica-after-repair invariant violations
// the chaos suite exists to catch. Nothing outside tests and
// cmd/chaosreplay may set it.
var staleHandoffBug atomic.Bool

// EnableStaleHandoffBug toggles the deliberate stale-handoff defect used
// to validate the chaos invariant suite. See staleHandoffBug.
func EnableStaleHandoffBug(on bool) { staleHandoffBug.Store(on) }

// replBatchMax bounds one replication batch (messages per runner round).
const replBatchMax = 4096

// NewCluster creates a federated cluster of cfg.Shards broker shards,
// all up, each with its own physical log.
func NewCluster(cfg ClusterConfig) *Cluster {
	if cfg.Name == "" {
		cfg.Name = "cluster"
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 3
	}
	if cfg.Replication <= 0 {
		cfg.Replication = 2
	}
	if cfg.Replication > cfg.Shards {
		cfg.Replication = cfg.Shards
	}
	if cfg.HandoffDelay <= 0 {
		cfg.HandoffDelay = 500 * time.Millisecond
	}
	if cfg.CatchupBytesPerSec <= 0 {
		cfg.CatchupBytesPerSec = 64 << 20
	}
	if cfg.Clock == nil {
		cfg.Clock = vclock.NewReal()
	}
	if cfg.Offsets == nil {
		cfg.Offsets = NewOffsetStore()
	}
	fetchLatency := cfg.FetchLatency
	if fetchLatency <= 0 {
		fetchLatency = time.Millisecond
	}
	segSize := cfg.SegmentSize
	if segSize <= 0 {
		segSize = 4096
	}
	runCtx, stop := context.WithCancel(context.Background())
	c := &Cluster{
		cfg:          cfg,
		offsets:      cfg.Offsets,
		clock:        cfg.Clock,
		fetchLatency: fetchLatency,
		segSize:      segSize,
		runCtx:       runCtx,
		stopFn:       stop,
		up:           make([]bool, cfg.Shards),
		severed:      make([][]bool, cfg.Shards),
		lagFac:       make([][]float64, cfg.Shards),
		topics:       make(map[string]*fedTopic),
	}
	c.shards = make([]*Broker, cfg.Shards)
	for i := range c.shards {
		c.shards[i] = NewBroker(BrokerConfig{
			Name:             fmt.Sprintf("%s-shard%d", cfg.Name, i),
			AppendCost:       cfg.AppendCost,
			FetchLatency:     cfg.FetchLatency,
			SegmentSize:      cfg.SegmentSize,
			MaxInflightBytes: cfg.MaxInflightBytes,
			OnCommit:         cfg.OnCommit,
			Clock:            cfg.Clock,
		})
	}
	for i := range c.up {
		c.up[i] = true
		c.severed[i] = make([]bool, cfg.Shards)
		c.lagFac[i] = make([]float64, cfg.Shards)
	}
	c.offsets.OnSave(c.onSave)
	return c
}

// Clock returns the cluster's clock.
func (c *Cluster) Clock() vclock.Clock { return c.clock }

// Shard exposes one shard's physical broker — for tests and accounting
// reads that address a specific log copy. Client traffic goes through
// the Cluster's Bus surface.
func (c *Cluster) Shard(id int) *Broker {
	if id < 0 || id >= len(c.shards) {
		return nil
	}
	return c.shards[id]
}

// Offsets returns the cluster's consumer-offset KV; wire it into
// GroupConfig.Offsets so group commits drive retention.
func (c *Cluster) Offsets() *OffsetStore { return c.offsets }

// ShardCount returns the configured shard count.
func (c *Cluster) ShardCount() int { return c.cfg.Shards }

// Replication returns the per-partition replica target.
func (c *Cluster) Replication() int { return c.cfg.Replication }

// LiveShards returns the ids of the shards currently up, ascending.
func (c *Cluster) LiveShards() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.liveLocked()
}

func (c *Cluster) liveLocked() []int {
	live := make([]int, 0, len(c.up))
	for i, ok := range c.up {
		if ok {
			live = append(live, i)
		}
	}
	return live
}

// Handoffs returns how many leader handoffs the cluster has performed.
func (c *Cluster) Handoffs() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.handoffs
}

// Repairs returns how many diverged-replica repairs (truncate +
// re-stream) the catch-up runners have performed.
func (c *Cluster) Repairs() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.repairs
}

// fireCtrlLocked wakes everything parked on control-plane state. Caller
// holds c.mu.
func (c *Cluster) fireCtrlLocked() {
	ws := c.ctrl
	c.ctrl = nil
	for _, w := range ws {
		w.Fire()
	}
}

// fireAckWaitLocked wakes the producers parked on one partition's
// watermark. Caller holds c.mu.
func (c *Cluster) fireAckWaitLocked(p *fedPart) {
	ws := p.ackWait
	p.ackWait = nil
	for _, w := range ws {
		w.Fire()
	}
}

// recomputeAckedLocked advances a partition's acknowledged watermark to
// the minimum log end across full members (recruits excluded), firing
// OnAcked, parked producers and the leader's fetch waiters on progress.
// The watermark is monotone: an unclean promotion (no full member
// survived) can leave it above the new leader's end, and the gap
// surfaces as data loss through the completeness invariants rather than
// as a silent rewind. Caller holds c.mu.
func (c *Cluster) recomputeAckedLocked(t *fedTopic, p *fedPart) {
	lo := int64(-1)
	for _, s := range p.replicas {
		if containsInt(p.syncing, s) {
			continue
		}
		e, err := c.shards[s].EndOffset(t.name, p.idx)
		if err != nil {
			continue
		}
		if lo < 0 || e < lo {
			lo = e
		}
	}
	if lo > p.acked {
		from := p.acked
		p.acked = lo
		if c.cfg.OnAcked != nil {
			c.cfg.OnAcked(t.name, p.idx, from, lo)
		}
		c.fireAckWaitLocked(p)
		// Wake parked fetchers *after* the watermark is in place: a waiter
		// that re-checks immediately sees the new fetchable range.
		c.shards[p.replicas[0]].wakeFetchers(t.name, p.idx)
	}
}

// CreateTopic creates a topic on every shard, places each partition's
// replica set on the live shard ring via plan.ShardReplicas, and starts
// the partition's catch-up runners (one per follower slot).
func (c *Cluster) CreateTopic(name string, partitions int) error {
	for _, b := range c.shards {
		if err := b.CreateTopic(name, partitions); err != nil {
			return err
		}
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrBrokerClosed
	}
	if _, ok := c.topics[name]; ok {
		c.mu.Unlock()
		return nil // shards validated the partition count
	}
	live := c.liveLocked()
	if len(live) == 0 {
		c.mu.Unlock()
		return fmt.Errorf("streaming: cluster %q has no live shards", c.cfg.Name)
	}
	t := &fedTopic{name: name, parts: make([]*fedPart, partitions)}
	for q := range t.parts {
		t.parts[q] = &fedPart{
			idx:          q,
			replicas:     plan.ShardReplicas(name, q, live, c.cfg.Replication),
			frozen:       make([]bool, c.cfg.Replication-1),
			ackedAtEpoch: []int64{0},
		}
	}
	c.topics[name] = t
	c.order = append(c.order, t)
	c.mu.Unlock()
	// One catch-up runner per (partition, follower slot), spawned in
	// deterministic order so runner identity is stable across runs.
	for q := 0; q < partitions; q++ {
		for s := 0; s < c.cfg.Replication-1; s++ {
			q, s := q, s
			vclock.Go(c.clock, func() { c.replicate(name, q, s) })
		}
	}
	return nil
}

func (c *Cluster) fedPartition(topic string, partition int) (*fedTopic, *fedPart, error) {
	t, ok := c.topics[topic]
	if !ok {
		return nil, nil, fmt.Errorf("%w: %q", ErrUnknownTopic, topic)
	}
	if partition < 0 || partition >= len(t.parts) {
		return nil, nil, fmt.Errorf("streaming: partition %d out of range for %q", partition, topic)
	}
	return t, t.parts[partition], nil
}

// LeaderOf returns the shard currently leading a partition.
func (c *Cluster) LeaderOf(topic string, partition int) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, p, err := c.fedPartition(topic, partition)
	if err != nil {
		return 0, err
	}
	return p.replicas[0], nil
}

// ReplicasOf returns a partition's replica set, leader first.
func (c *Cluster) ReplicasOf(topic string, partition int) ([]int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, p, err := c.fedPartition(topic, partition)
	if err != nil {
		return nil, err
	}
	return append([]int(nil), p.replicas...), nil
}

// Epoch returns a partition's leader epoch (bumped once per handoff).
func (c *Cluster) Epoch(topic string, partition int) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, p, err := c.fedPartition(topic, partition)
	if err != nil {
		return 0, err
	}
	return p.epoch, nil
}

// AckedOffset returns a partition's acknowledged high watermark — the
// next offset awaiting quorum acknowledgement. Only offsets below it are
// fetchable or committable.
func (c *Cluster) AckedOffset(topic string, partition int) (int64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, p, err := c.fedPartition(topic, partition)
	if err != nil {
		return 0, err
	}
	return p.acked, nil
}

// replicaLagLocked returns the maximum replication lag (leader log end −
// follower log end, in messages) across a partition's full members.
// Caller holds c.mu.
func (c *Cluster) replicaLagLocked(t *fedTopic, p *fedPart) int64 {
	lEnd, err := c.shards[p.replicas[0]].EndOffset(t.name, p.idx)
	if err != nil {
		return 0
	}
	var max int64
	for _, s := range p.replicas[1:] {
		if containsInt(p.syncing, s) {
			continue
		}
		fEnd, err := c.shards[s].EndOffset(t.name, p.idx)
		if err != nil {
			continue
		}
		if lag := lEnd - fEnd; lag > max {
			max = lag
		}
	}
	return max
}

// UnderReplicated counts partitions below their replication target,
// still syncing a recruit, or carrying nonzero replication lag (a full
// follower whose log end trails the leader's) — so drift detection sees
// slow followers, not just missing ones.
func (c *Cluster) UnderReplicated() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	want := c.cfg.Replication
	if live := len(c.liveLocked()); want > live {
		want = live
	}
	n := 0
	for _, t := range c.order {
		for _, p := range t.parts {
			if len(p.replicas) < want || len(p.syncing) > 0 || c.replicaLagLocked(t, p) > 0 {
				n++
			}
		}
	}
	return n
}

// ShardPlacement is one partition's placement, the planner-visible
// snapshot row.
type ShardPlacement struct {
	Topic     string
	Partition int
	Epoch     int
	Leader    int
	Replicas  []int
	// Syncing is true while a recruited follower is still replaying the
	// log (re-replication in progress).
	Syncing bool
	// Lag is the partition's maximum replication lag in messages (leader
	// log end − follower log end, over full members).
	Lag int64
	// AckedHW is the acknowledged high watermark at snapshot time.
	AckedHW int64
}

// Placement snapshots every partition's placement in topic-creation and
// partition order — deterministic, so placement can feed state hashes.
func (c *Cluster) Placement() []ShardPlacement {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []ShardPlacement
	for _, t := range c.order {
		for _, p := range t.parts {
			out = append(out, ShardPlacement{
				Topic: t.name, Partition: p.idx, Epoch: p.epoch,
				Leader:   p.replicas[0],
				Replicas: append([]int(nil), p.replicas...),
				Syncing:  len(p.syncing) > 0,
				Lag:      c.replicaLagLocked(t, p),
				AckedHW:  p.acked,
			})
		}
	}
	return out
}

// SyncingShards returns the ids of shards currently catching up as
// recruits on any partition, ascending — the crash-mid-catchup chaos
// fault targets these.
func (c *Cluster) SyncingShards() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	seen := make([]bool, len(c.up))
	for _, t := range c.order {
		for _, p := range t.parts {
			for _, s := range p.syncing {
				seen[s] = true
			}
		}
	}
	var out []int
	for i, ok := range seen {
		if ok {
			out = append(out, i)
		}
	}
	return out
}

// CheckReplicaConsistency classifies every replica of a topic against
// its leader's epoch-span chain and reports the diverged ones — replicas
// holding offsets whose epoch disagrees with the leader's, or offsets
// past the leader's end. After quiescence (no faults in flight, lag
// drained) every report is an invariant violation: repair should have
// truncated and re-streamed them.
func (c *Cluster) CheckReplicaConsistency(topic string) []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	t, ok := c.topics[topic]
	if !ok {
		return nil
	}
	var out []string
	for _, p := range t.parts {
		leader := p.replicas[0]
		lSpans := c.shards[leader].epochSpans(t.name, p.idx)
		lEnd, err := c.shards[leader].EndOffset(t.name, p.idx)
		if err != nil {
			continue
		}
		lFirst, _ := c.shards[leader].OldestOffset(t.name, p.idx)
		for _, f := range p.replicas[1:] {
			fEnd, err := c.shards[f].EndOffset(t.name, p.idx)
			if err != nil {
				continue
			}
			fFirst, _ := c.shards[f].OldestOffset(t.name, p.idx)
			from := lFirst
			if fFirst > from {
				from = fFirst
			}
			r := plan.ClassifyReplica(lSpans, c.shards[f].epochSpans(t.name, p.idx), from, lEnd, fEnd)
			if r.State == plan.ReplicaDiverged {
				out = append(out, fmt.Sprintf("%s[%d] shard %d diverged from leader %d at offset %d (leader end %d, replica end %d)",
					t.name, p.idx, f, leader, r.DivergedAt, lEnd, fEnd))
			}
		}
	}
	return out
}

// FailShard permanently fails one shard: every partition it led fences
// (fetches and publishes park) for the modeled election delay, then
// promotion runs the recovery protocol — the first fully-replicated
// survivor becomes leader under a bumped epoch, its log is truncated to
// the acknowledged watermark (the un-acked suffix may be stale), and the
// coordinator's commit mark is restored onto it; every partition the
// dead shard followed recruits a replacement that re-replicates the log
// over its catch-up link in virtual time. Failing the last live shard is
// refused (this model has no cold storage to recover a leaderless
// partition from).
func (c *Cluster) FailShard(id int) error {
	c.mu.Lock()
	if id < 0 || id >= len(c.up) {
		c.mu.Unlock()
		return fmt.Errorf("streaming: cluster %q has no shard %d", c.cfg.Name, id)
	}
	if !c.up[id] {
		c.mu.Unlock()
		return nil // already down
	}
	live := c.liveLocked()
	if len(live) <= 1 {
		c.mu.Unlock()
		return fmt.Errorf("streaming: cannot fail shard %d: last live shard of %q", id, c.cfg.Name)
	}
	c.up[id] = false
	live = c.liveLocked()
	now := c.clock.Now()

	type pending struct {
		t     *fedTopic
		p     *fedPart
		epoch int
		at    time.Time
	}
	var fenced []pending
	for _, t := range c.order {
		for _, p := range t.parts {
			if !containsInt(p.replicas, id) {
				continue
			}
			wasLeader := p.replicas[0] == id
			p.replicas = removeShard(p.replicas, id)
			p.syncing = removeShard(p.syncing, id)
			if wasLeader {
				c.handoffs++
				p.epoch++
				p.ackedAtEpoch = append(p.ackedAtEpoch, p.acked)
				// Promote the first fully-replicated survivor; only when no
				// full member is left does a mid-catchup recruit take over —
				// an *unclean* promotion whose missing suffix is genuine data
				// loss, surfaced by the completeness invariants.
				nl := -1
				for _, s := range p.replicas {
					if !containsInt(p.syncing, s) {
						nl = s
						break
					}
				}
				if nl < 0 {
					nl = p.replicas[0]
					p.syncing = removeShard(p.syncing, nl)
					vclock.Mark(c.clock, fmt.Sprintf("unclean promotion %s[%d] shard %d epoch %d",
						t.name, p.idx, nl, p.epoch), uint64(p.epoch))
				}
				p.replicas = removeShard(p.replicas, nl)
				p.replicas = append([]int{nl}, p.replicas...)
				nb := c.shards[nl]
				// Recovery: the promoted log's un-acked suffix was never on
				// quorum — truncate to the watermark; re-streaming under the
				// new epoch replaces it with the authoritative history.
				nb.truncateTo(t.name, p.idx, p.acked)
				nb.setEpoch(t.name, p.idx, p.epoch)
				if staleHandoffBug.Load() {
					// Planted defect: restore the coordinator commit mark from
					// the promoted follower's lazily-replicated local mark —
					// stale by up to one replication round, so the next applied
					// commit rewinds the cursor.
					if lc, err := nb.Committed(t.name, p.idx); err == nil {
						p.commit = lc
					}
				} else {
					nb.setCommitted(t.name, p.idx, p.commit)
				}
				avail := now.Add(c.cfg.HandoffDelay)
				p.availableAt = avail
				// The handoff decision lands in the schedule recorder: a
				// bisected failing seed names this exact instant.
				vclock.Mark(c.clock, fmt.Sprintf("federation handoff %s[%d] shard %d -> %d epoch %d",
					t.name, p.idx, id, nl, p.epoch), uint64(p.epoch))
				fenced = append(fenced, pending{t: t, p: p, epoch: p.epoch, at: avail})
			}
			// Re-replication: reconverge the replica set through the
			// planner's drift classifier. Recruits join as syncing members;
			// their catch-up runner bootstraps and streams the real log.
			for _, d := range plan.DetectShardDrift(p.replicas, live, c.cfg.Replication) {
				if d.Kind != plan.ShardDriftUnderReplicated {
					continue
				}
				p.replicas = append(p.replicas, d.Shard)
				p.syncing = append(p.syncing, d.Shard)
			}
			// The dead member may have been the watermark's minimum (e.g. a
			// follower starved behind a severed link): with it gone, quorum
			// may already cover more of the leader's log — recompute, or
			// producers waiting on its lag would park forever.
			c.recomputeAckedLocked(t, p)
			// Membership and leadership moved: wake parked producers (their
			// batch may need re-appending) and control waiters (runners must
			// re-resolve their follower slots).
			c.fireAckWaitLocked(p)
		}
	}
	c.fireCtrlLocked()
	c.mu.Unlock()

	// Close the dead shard's broker: anything parked inside it (leader
	// appends under backpressure, stray accounting reads) unblocks with
	// ErrBrokerClosed and re-routes through the new placement.
	c.shards[id].Close()

	if len(fenced) > 0 {
		// One clock participant per failure walks the handoff completions
		// in instant order and reopens each partition whose epoch is still
		// the one this failure installed.
		sort.SliceStable(fenced, func(a, b int) bool { return fenced[a].at.Before(fenced[b].at) })
		vclock.Go(c.clock, func() {
			for _, f := range fenced {
				if d := f.at.Sub(c.clock.Now()); d > 0 {
					if !c.clock.Sleep(c.runCtx, d) {
						return
					}
				}
				c.mu.Lock()
				if f.p.epoch == f.epoch {
					f.p.availableAt = time.Time{}
					c.fireCtrlLocked()
				}
				c.mu.Unlock()
			}
		})
	}
	return nil
}

// SeverLink cuts the replication link between shards a and b: catch-up
// streams over the link freeze, so partitions whose leader needs it to
// reach a full follower stop advancing their watermark and publishes
// park in the acknowledgement wait until HealLink. Fetches of already
// acknowledged data are unaffected.
func (c *Cluster) SeverLink(a, b int) error { return c.setLink(a, b, true) }

// HealLink restores the replication link between shards a and b; frozen
// catch-up streams resume and the backlog drains at the link's pace.
func (c *Cluster) HealLink(a, b int) error { return c.setLink(a, b, false) }

func (c *Cluster) setLink(a, b int, sever bool) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if a < 0 || a >= len(c.up) || b < 0 || b >= len(c.up) || a == b {
		return fmt.Errorf("streaming: cluster %q has no shard link %d<->%d", c.cfg.Name, a, b)
	}
	c.severed[a][b] = sever
	c.severed[b][a] = sever
	c.fireCtrlLocked()
	return nil
}

// SetLinkLag multiplies the catch-up pacing of the replication link
// between shards a and b: factor 2 halves the link's modeled bandwidth,
// 1 (or 0) restores nominal pace. The chaos replica-lag fault drives
// this to stretch follower lag windows.
func (c *Cluster) SetLinkLag(a, b int, factor float64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if a < 0 || a >= len(c.up) || b < 0 || b >= len(c.up) || a == b {
		return fmt.Errorf("streaming: cluster %q has no shard link %d<->%d", c.cfg.Name, a, b)
	}
	if factor < 1 {
		factor = 1
	}
	c.lagFac[a][b] = factor
	c.lagFac[b][a] = factor
	c.fireCtrlLocked()
	return nil
}

// FreezeReplica freezes (frozen=true) or resumes replication into one
// follower slot of a partition — the torn-replication chaos fault: the
// follower stops mid-stream with a clean batch boundary (batches are
// discarded, never half-applied) and falls behind until resumed.
func (c *Cluster) FreezeReplica(topic string, partition, slot int, frozen bool) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, p, err := c.fedPartition(topic, partition)
	if err != nil {
		return err
	}
	if slot < 0 || slot >= len(p.frozen) {
		return fmt.Errorf("streaming: %s[%d] has no replica slot %d", topic, partition, slot)
	}
	p.frozen[slot] = frozen
	c.fireCtrlLocked()
	return nil
}

// SetPartitionDown opens (down=true) or closes an injected fetch
// blackout on one partition: consumers park as if nothing were
// acknowledged past their offsets; producers are unaffected. The chaos
// engine is the intended caller.
func (c *Cluster) SetPartitionDown(topic string, partition int, down bool) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, p, err := c.fedPartition(topic, partition)
	if err != nil {
		return err
	}
	p.stalled = down
	c.fireCtrlLocked()
	return nil
}

// SetCommitDelay injects commit skew on every shard (see
// Broker.SetCommitDelay).
func (c *Cluster) SetCommitDelay(d time.Duration) {
	for _, b := range c.shards {
		b.SetCommitDelay(d)
	}
}

// linkLagLocked returns the pacing multiplier of link a<->b (≥1).
// Caller holds c.mu.
func (c *Cluster) linkLagLocked(a, b int) float64 {
	f := c.lagFac[a][b]
	if f < 1 {
		return 1
	}
	return f
}

// replicate is one partition's catch-up runner for one follower slot:
// it resolves the slot's current follower, detects and repairs diverged
// suffixes (epoch chain compare, truncate-to-watermark, re-stream),
// bootstraps recruits from behind the retention floor, and streams the
// leader's log batch by batch, paced in virtual time by the link's
// bandwidth. After each pacing sleep the control state is re-validated
// and stale batches are discarded — a torn stream never half-applies.
func (c *Cluster) replicate(topicName string, q, slot int) {
	// Scratch buffers for the per-round epoch-chain snapshots: chains are
	// a handful of spans, so after the first rounds these never allocate.
	var lSpans, fSpans []plan.EpochSpan
	for {
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return
		}
		t, p, err := c.fedPartition(topicName, q)
		if err != nil {
			c.mu.Unlock()
			return
		}
		leader := p.replicas[0]
		follower := -1
		if 1+slot < len(p.replicas) {
			follower = p.replicas[1+slot]
		}
		epoch := p.epoch
		frozen := follower >= 0 && (c.severed[leader][follower] || p.frozen[slot])
		var lag float64
		if follower >= 0 {
			lag = c.linkLagLocked(leader, follower)
		}
		c.mu.Unlock()

		if follower < 0 || frozen {
			if !c.parkCtrl() {
				return
			}
			continue
		}
		lb, fb := c.shards[leader], c.shards[follower]
		fEnd, ferr := fb.EndOffset(topicName, q)
		lEnd, lerr := lb.EndOffset(topicName, q)
		if ferr != nil || lerr != nil {
			// A shard died between snapshot and use; membership is changing.
			if !c.parkCtrl() {
				return
			}
			continue
		}
		lFirst, _ := lb.OldestOffset(topicName, q)
		fFirst, _ := fb.OldestOffset(topicName, q)

		// Divergence repair: compare epoch chains over the shared range.
		// The planted defect skips this, streaming blindly past a stale
		// suffix — the diverged-replica-after-repair invariant catches it.
		from := lFirst
		if fFirst > from {
			from = fFirst
		}
		lSpans = lb.epochSpansInto(topicName, q, lSpans)
		fSpans = fb.epochSpansInto(topicName, q, fSpans)
		if at, ok := plan.DivergencePoint(lSpans, fSpans, from, lEnd, fEnd); ok && !staleHandoffBug.Load() {
			fb.truncateTo(topicName, q, at)
			vclock.Mark(c.clock, fmt.Sprintf("replica repair %s[%d] shard %d truncated to %d (%d dropped)",
				topicName, q, follower, at, fEnd-at), uint64(at))
			c.mu.Lock()
			c.repairs++
			c.mu.Unlock()
			continue
		}

		if fEnd < lFirst {
			// Recruit starting behind the leader's retention floor: no
			// history to stream — bootstrap an empty log at the floor.
			fb.resetTo(topicName, q, lFirst)
			continue
		}

		msgs, _, lEnd2, lCommitted := lb.replBatch(topicName, q, fEnd, replBatchMax)
		if len(msgs) == 0 {
			if lEnd2 > fEnd {
				continue // raced a trim; re-resolve coordinates
			}
			// Caught up. Promote a recruit to full member, then park until
			// the leader appends or the control plane changes.
			c.mu.Lock()
			if !c.closed {
				if _, p2, err := c.fedPartition(topicName, q); err == nil &&
					p2.epoch == epoch && containsInt(p2.syncing, follower) &&
					1+slot < len(p2.replicas) && p2.replicas[1+slot] == follower {
					p2.syncing = removeShard(p2.syncing, follower)
					vclock.Mark(c.clock, fmt.Sprintf("replica synced %s[%d] shard %d at %d",
						topicName, q, follower, fEnd), uint64(fEnd))
					c.recomputeAckedLocked(t, p2)
					c.fireCtrlLocked()
					c.mu.Unlock()
					continue
				}
			}
			c.mu.Unlock()
			if !c.parkData(lb, topicName, q, fEnd) {
				return
			}
			continue
		}

		// Pace the batch over the link in virtual time.
		var bytes int64
		for i := range msgs {
			bytes += int64(len(msgs[i].Key) + len(msgs[i].Value))
		}
		d := time.Duration(float64(bytes) / float64(c.cfg.CatchupBytesPerSec) * float64(time.Second) * lag)
		if d > 0 && !c.clock.Sleep(c.runCtx, d) {
			return
		}

		// Re-validate after the sleep: if leadership, membership, the
		// epoch or the link moved while the batch was in flight, the
		// stream is torn — discard the batch and re-resolve.
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return
		}
		_, p2, err := c.fedPartition(topicName, q)
		intact := err == nil && p2.epoch == epoch && p2.replicas[0] == leader &&
			1+slot < len(p2.replicas) && p2.replicas[1+slot] == follower &&
			!c.severed[leader][follower] && !p2.frozen[slot]
		c.mu.Unlock()
		if !intact {
			continue
		}
		// Fresh chain snapshot: the pre-pacing one may predate appends.
		lSpans = lb.epochSpansInto(topicName, q, lSpans)
		if err := fb.appendReplicated(topicName, q, msgs, lSpans, lCommitted); err != nil {
			continue // follower log moved (repair/reset raced); re-resolve
		}
		c.mu.Lock()
		if !c.closed {
			if _, p2, err := c.fedPartition(topicName, q); err == nil {
				c.recomputeAckedLocked(t, p2)
			}
		}
		c.mu.Unlock()
	}
}

// parkCtrl parks the calling runner until the control plane changes or
// the cluster closes. Returns false when the runner should exit.
func (c *Cluster) parkCtrl() bool {
	w := vclock.NewEvent(c.clock)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		w.Fire()
		return false
	}
	registerEvent(&c.ctrl, w)
	c.mu.Unlock()
	if !w.Wait(c.runCtx) {
		w.Fire()
		return false
	}
	return !c.isClosed()
}

// parkData parks the calling runner until the leader's log grows past
// end, the control plane changes, or the cluster closes. Returns false
// when the runner should exit.
func (c *Cluster) parkData(lb *Broker, topicName string, q int, end int64) bool {
	w := vclock.NewEvent(c.clock)
	lb.registerFetchWaiter(topicName, q, w)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		w.Fire()
		return false
	}
	registerEvent(&c.ctrl, w)
	c.mu.Unlock()
	// Registered on both lists: re-check the condition to close the
	// register-vs-append race on real clocks.
	if e, err := lb.EndOffset(topicName, q); err != nil || e > end {
		w.Fire()
		return true
	}
	if !w.Wait(c.runCtx) {
		w.Fire()
		return false
	}
	return !c.isClosed()
}

func (c *Cluster) isClosed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}

// onSave runs at every consumer-offset persist: trim every replica's log
// below the low-watermark of all persisted group cursors (whole sealed
// segments only — each floor stays segment-aligned; follower trims
// self-clamp to their lazily-replicated commit marks), then report the
// leader's retention state. This is the bounded-memory contract:
// trimming happens at exactly the instants the durable state advances,
// and never above what every registered group has durably consumed.
func (c *Cluster) onSave(_ string, topic string, partition int) {
	lw, ok := c.offsets.LowWatermark(topic, partition)
	if !ok {
		return
	}
	c.mu.Lock()
	_, p, err := c.fedPartition(topic, partition)
	if err != nil {
		c.mu.Unlock()
		return
	}
	members := append([]int(nil), p.replicas...)
	c.mu.Unlock()
	leader := members[0]
	oldest := int64(0)
	if !c.cfg.DisableRetention {
		for _, s := range members {
			if o, err := c.shards[s].Trim(topic, partition, lw); err == nil && s == leader {
				oldest = o
			}
		}
	} else if o, err := c.shards[leader].OldestOffset(topic, partition); err == nil {
		oldest = o
	}
	if c.cfg.OnRetention != nil {
		resident, err := c.shards[leader].ResidentBytes(topic, partition)
		if err != nil {
			return
		}
		c.cfg.OnRetention(topic, partition, resident, oldest)
	}
}

// ResidentBytes sums the resident payload bytes across a topic's
// partitions on their current leaders — the quantity retention bounds.
func (c *Cluster) ResidentBytes(topic string) (int64, error) {
	c.mu.Lock()
	t, ok := c.topics[topic]
	if !ok {
		c.mu.Unlock()
		return 0, fmt.Errorf("%w: %q", ErrUnknownTopic, topic)
	}
	leaders := make([]int, len(t.parts))
	for q, p := range t.parts {
		leaders[q] = p.replicas[0]
	}
	c.mu.Unlock()
	var total int64
	for q, l := range leaders {
		r, err := c.shards[l].ResidentBytes(topic, q)
		if err != nil {
			return 0, err
		}
		total += r
	}
	return total, nil
}

// OldestOffset returns a partition's retention floor on its current
// leader: the oldest offset a fetch can still serve.
func (c *Cluster) OldestOffset(topic string, partition int) (int64, error) {
	c.mu.Lock()
	_, p, err := c.fedPartition(topic, partition)
	if err != nil {
		c.mu.Unlock()
		return 0, err
	}
	leader := p.replicas[0]
	c.mu.Unlock()
	return c.shards[leader].OldestOffset(topic, partition)
}

// Close stops the replication plane and control walkers, wakes
// everything parked on cluster state (producers in acknowledgement
// waits, fetchers behind fences, catch-up runners), and closes every
// shard broker — so a Close mid-handoff unwinds cleanly with no leaked
// waiters or goroutines.
func (c *Cluster) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	ctrl := c.ctrl
	c.ctrl = nil
	var acks []*vclock.Event
	for _, t := range c.order {
		for _, p := range t.parts {
			acks = append(acks, p.ackWait...)
			p.ackWait = nil
		}
	}
	c.mu.Unlock()
	c.stopFn()
	for _, w := range ctrl {
		w.Fire()
	}
	for _, w := range acks {
		w.Fire()
	}
	for _, b := range c.shards {
		b.Close()
	}
}

func containsInt(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

func removeShard(xs []int, x int) []int {
	out := xs[:0]
	for _, v := range xs {
		if v != x {
			out = append(out, v)
		}
	}
	return out
}
