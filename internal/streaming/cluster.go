package streaming

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"gopilot/internal/plan"
	"gopilot/internal/vclock"
)

// Cluster federates N broker shards behind the single client-facing Bus
// API (DESIGN.md "Federation"): producers and consumer groups talk to
// the cluster exactly as to one Broker, while a control plane tracks
// which shard leads each partition, fails shards at injected instants,
// hands leadership to a surviving replica after a modeled election
// delay, re-replicates the partition onto a recruit in virtual time, and
// trims log segments below the low-watermark of persisted consumer
// offsets so resident bytes stay bounded under infinite streams.
//
// Placement is planner state: the replica set of every partition comes
// from plan.ShardReplicas, and failures reconverge through
// plan.DetectShardDrift — pure functions of (topic, partition, live
// shards), so same-seed runs place and re-place identically. The data
// plane stays the one segmented zero-copy log (the shards of this model
// are consistent replicas, so one authoritative store stands in for all
// copies); federation manifests as availability: a partition mid-handoff
// is down for fetches and fenced for publishes, and a severed
// inter-shard link fences publishes on partitions whose leader can no
// longer reach a follower for acknowledgement.
type Cluster struct {
	cfg     ClusterConfig
	store   *Broker
	offsets *OffsetStore
	clock   vclock.Clock

	runCtx context.Context
	stopFn context.CancelFunc

	mu       sync.Mutex
	up       []bool   // shard liveness, indexed by shard id
	severed  [][]bool // severed[a][b]: replication link a<->b is down
	topics   map[string]*fedTopic
	order    []*fedTopic // creation order: deterministic control sweeps
	handoffs int
}

// fedTopic is the control-plane view of one topic.
type fedTopic struct {
	name  string
	parts []*fedPart
}

// fedPart is the control-plane state of one partition.
type fedPart struct {
	idx      int
	epoch    int   // leader epoch, bumped per handoff
	replicas []int // shard ids, leader first, live by invariant
	// availableAt fences the partition (fetch-down + publish-fence) until
	// the handoff completes; zero means available.
	availableAt time.Time
	// recruit is a follower still replaying the log (-1 when none);
	// syncedAt is the virtual instant it becomes fully in sync.
	recruit  int
	syncedAt time.Time
	// lastLW/staleLW track the offset-store low-watermark as of the last
	// and second-to-last persists — staleLW models the one-checkpoint
	// replication lag the deliberate stale-handoff defect restores from.
	lastLW, staleLW int64
}

// ClusterConfig configures a Cluster. The broker-shaped fields
// (AppendCost, FetchLatency, SegmentSize, MaxInflightBytes, OnCommit,
// Clock) carry the same semantics as BrokerConfig.
type ClusterConfig struct {
	// Name labels the cluster (default "cluster").
	Name string
	// Shards is the number of broker shards (default 3).
	Shards int
	// Replication is the per-partition replica count, leader included
	// (default 2, clamped to Shards).
	Replication int
	// HandoffDelay is the modeled leader-election time: a partition whose
	// leader shard fails is unavailable for this long before the promoted
	// replica starts serving (default 500ms).
	HandoffDelay time.Duration
	// CatchupBytesPerSec paces re-replication: a recruited follower
	// replays the partition's resident bytes at this modeled rate before
	// counting as in sync (default 64 MiB/s).
	CatchupBytesPerSec int64
	// Offsets is the shared consumer-offset KV; groups wired to the same
	// store drive retention. Minted fresh when nil.
	Offsets *OffsetStore
	// DisableRetention keeps every segment resident (no trimming) while
	// leaving offset persistence on.
	DisableRetention bool
	// OnRetention, if set, observes every retention evaluation (each
	// offset persist): the partition's resident bytes and oldest retained
	// offset after any trim. Property tests assert the resident bound
	// here, at exactly the instants the contract speaks about.
	OnRetention func(topic string, partition int, resident, oldest int64)

	AppendCost       time.Duration
	FetchLatency     time.Duration
	SegmentSize      int
	MaxInflightBytes int64
	OnCommit         func(topic string, partition int, from, through int64)
	Clock            vclock.Clock
}

// staleHandoffBug, when set, makes a promoted leader restore the commit
// mark from the stale (one-checkpoint-old) persisted snapshot instead of
// the live mark — a reintroducible defect class (cursor rewind across
// failover) that exists solely so the chaos suite can prove its
// invariant checkers and bisection catch it. Nothing outside tests and
// cmd/chaosreplay may set it.
var staleHandoffBug atomic.Bool

// EnableStaleHandoffBug toggles the deliberate stale-handoff defect used
// to validate the chaos invariant suite. See staleHandoffBug.
func EnableStaleHandoffBug(on bool) { staleHandoffBug.Store(on) }

// NewCluster creates a federated cluster of cfg.Shards broker shards,
// all up.
func NewCluster(cfg ClusterConfig) *Cluster {
	if cfg.Name == "" {
		cfg.Name = "cluster"
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 3
	}
	if cfg.Replication <= 0 {
		cfg.Replication = 2
	}
	if cfg.Replication > cfg.Shards {
		cfg.Replication = cfg.Shards
	}
	if cfg.HandoffDelay <= 0 {
		cfg.HandoffDelay = 500 * time.Millisecond
	}
	if cfg.CatchupBytesPerSec <= 0 {
		cfg.CatchupBytesPerSec = 64 << 20
	}
	if cfg.Clock == nil {
		cfg.Clock = vclock.NewReal()
	}
	if cfg.Offsets == nil {
		cfg.Offsets = NewOffsetStore()
	}
	store := NewBroker(BrokerConfig{
		Name:             cfg.Name + "-store",
		AppendCost:       cfg.AppendCost,
		FetchLatency:     cfg.FetchLatency,
		SegmentSize:      cfg.SegmentSize,
		MaxInflightBytes: cfg.MaxInflightBytes,
		OnCommit:         cfg.OnCommit,
		Clock:            cfg.Clock,
	})
	runCtx, stop := context.WithCancel(context.Background())
	c := &Cluster{
		cfg:     cfg,
		store:   store,
		offsets: cfg.Offsets,
		clock:   cfg.Clock,
		runCtx:  runCtx,
		stopFn:  stop,
		up:      make([]bool, cfg.Shards),
		severed: make([][]bool, cfg.Shards),
		topics:  make(map[string]*fedTopic),
	}
	for i := range c.up {
		c.up[i] = true
		c.severed[i] = make([]bool, cfg.Shards)
	}
	c.offsets.OnSave(c.onSave)
	return c
}

// Clock returns the cluster's clock.
func (c *Cluster) Clock() vclock.Clock { return c.clock }

// Store exposes the authoritative data-plane broker, for fault injectors
// (partition stalls, commit skew) and accounting reads that address the
// log directly. Client traffic goes through the Cluster's Bus surface.
func (c *Cluster) Store() *Broker { return c.store }

// Offsets returns the cluster's consumer-offset KV; wire it into
// GroupConfig.Offsets so group commits drive retention.
func (c *Cluster) Offsets() *OffsetStore { return c.offsets }

// ShardCount returns the configured shard count.
func (c *Cluster) ShardCount() int { return c.cfg.Shards }

// Replication returns the per-partition replica target.
func (c *Cluster) Replication() int { return c.cfg.Replication }

// LiveShards returns the ids of the shards currently up, ascending.
func (c *Cluster) LiveShards() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.liveLocked()
}

func (c *Cluster) liveLocked() []int {
	live := make([]int, 0, len(c.up))
	for i, ok := range c.up {
		if ok {
			live = append(live, i)
		}
	}
	return live
}

// Handoffs returns how many leader handoffs the cluster has performed.
func (c *Cluster) Handoffs() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.handoffs
}

// CreateTopic creates a topic and places every partition's replica set
// on the live shard ring via plan.ShardReplicas.
func (c *Cluster) CreateTopic(name string, partitions int) error {
	if err := c.store.CreateTopic(name, partitions); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.topics[name]; ok {
		return nil // store validated the partition count
	}
	live := c.liveLocked()
	if len(live) == 0 {
		return fmt.Errorf("streaming: cluster %q has no live shards", c.cfg.Name)
	}
	t := &fedTopic{name: name, parts: make([]*fedPart, partitions)}
	for q := range t.parts {
		t.parts[q] = &fedPart{
			idx:      q,
			replicas: plan.ShardReplicas(name, q, live, c.cfg.Replication),
			recruit:  -1,
		}
	}
	c.topics[name] = t
	c.order = append(c.order, t)
	return nil
}

func (c *Cluster) fedPartition(topic string, partition int) (*fedTopic, *fedPart, error) {
	t, ok := c.topics[topic]
	if !ok {
		return nil, nil, fmt.Errorf("%w: %q", ErrUnknownTopic, topic)
	}
	if partition < 0 || partition >= len(t.parts) {
		return nil, nil, fmt.Errorf("streaming: partition %d out of range for %q", partition, topic)
	}
	return t, t.parts[partition], nil
}

// LeaderOf returns the shard currently leading a partition.
func (c *Cluster) LeaderOf(topic string, partition int) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, p, err := c.fedPartition(topic, partition)
	if err != nil {
		return 0, err
	}
	return p.replicas[0], nil
}

// ReplicasOf returns a partition's replica set, leader first.
func (c *Cluster) ReplicasOf(topic string, partition int) ([]int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, p, err := c.fedPartition(topic, partition)
	if err != nil {
		return nil, err
	}
	return append([]int(nil), p.replicas...), nil
}

// Epoch returns a partition's leader epoch (bumped once per handoff).
func (c *Cluster) Epoch(topic string, partition int) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, p, err := c.fedPartition(topic, partition)
	if err != nil {
		return 0, err
	}
	return p.epoch, nil
}

// UnderReplicated counts partitions below their replication target or
// still syncing a recruit at the current instant.
func (c *Cluster) UnderReplicated() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.clock.Now()
	want := c.cfg.Replication
	if live := len(c.liveLocked()); want > live {
		want = live
	}
	n := 0
	for _, t := range c.order {
		for _, p := range t.parts {
			if len(p.replicas) < want || (p.recruit >= 0 && p.syncedAt.After(now)) {
				n++
			}
		}
	}
	return n
}

// ShardPlacement is one partition's placement, the planner-visible
// snapshot row.
type ShardPlacement struct {
	Topic     string
	Partition int
	Epoch     int
	Leader    int
	Replicas  []int
	// Syncing is true while a recruited follower is still replaying the
	// log (re-replication in progress).
	Syncing bool
}

// Placement snapshots every partition's placement in topic-creation and
// partition order — deterministic, so placement can feed state hashes.
func (c *Cluster) Placement() []ShardPlacement {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.clock.Now()
	var out []ShardPlacement
	for _, t := range c.order {
		for _, p := range t.parts {
			out = append(out, ShardPlacement{
				Topic: t.name, Partition: p.idx, Epoch: p.epoch,
				Leader:   p.replicas[0],
				Replicas: append([]int(nil), p.replicas...),
				Syncing:  p.recruit >= 0 && p.syncedAt.After(now),
			})
		}
	}
	return out
}

// FailShard permanently fails one shard: every partition it led fences
// (down for fetches, publish-fenced) for the modeled election delay —
// longer if the only surviving replica is a recruit still catching up —
// then hands leadership to the surviving replica and reopens; every
// partition it followed recruits a replacement follower that re-replicates
// the partition's resident bytes in virtual time. Failing the last live
// shard is refused (plan.ShardDriftNoLeader: this model has no cold
// storage to recover a leaderless partition from).
func (c *Cluster) FailShard(id int) error {
	c.mu.Lock()
	if id < 0 || id >= len(c.up) {
		c.mu.Unlock()
		return fmt.Errorf("streaming: cluster %q has no shard %d", c.cfg.Name, id)
	}
	if !c.up[id] {
		c.mu.Unlock()
		return nil // already down
	}
	live := c.liveLocked()
	if len(live) <= 1 {
		c.mu.Unlock()
		return fmt.Errorf("streaming: cannot fail shard %d: last live shard of %q", id, c.cfg.Name)
	}
	c.up[id] = false
	live = c.liveLocked()
	now := c.clock.Now()

	type pending struct {
		t     *fedTopic
		p     *fedPart
		epoch int
		at    time.Time
	}
	var fenced []pending
	for _, t := range c.order {
		for _, p := range t.parts {
			if !containsInt(p.replicas, id) {
				continue
			}
			wasLeader := p.replicas[0] == id
			p.replicas = removeShard(p.replicas, id)
			if p.recruit == id {
				p.recruit = -1 // the syncing recruit died with the shard
			}
			if wasLeader {
				c.handoffs++
				p.epoch++
				avail := now.Add(c.cfg.HandoffDelay)
				if p.recruit >= 0 && p.replicas[0] == p.recruit {
					// The heir is a recruit mid-catchup: it cannot serve
					// before it finishes replaying the log.
					if p.syncedAt.After(avail) {
						avail = p.syncedAt
					}
					p.recruit = -1
				}
				p.availableAt = avail
				// The handoff decision lands in the schedule recorder: a
				// bisected failing seed names this exact instant.
				vclock.Mark(c.clock, fmt.Sprintf("federation handoff %s[%d] shard %d -> %d epoch %d",
					t.name, p.idx, id, p.replicas[0], p.epoch), uint64(p.epoch))
				if staleHandoffBug.Load() {
					// Planted defect: the promoted leader restores the commit
					// mark from the stale persisted checkpoint instead of the
					// live mark — the cursor-rewind class the chaos invariant
					// suite must catch.
					c.store.rewindCommit(t.name, p.idx, p.staleLW)
				}
				fenced = append(fenced, pending{t: t, p: p, epoch: p.epoch, at: avail})
			}
			// Re-replication: reconverge the replica set through the
			// planner's drift classifier.
			for _, d := range plan.DetectShardDrift(p.replicas, live, c.cfg.Replication) {
				if d.Kind != plan.ShardDriftUnderReplicated {
					continue
				}
				p.replicas = append(p.replicas, d.Shard)
				p.recruit = d.Shard
				resident, _ := c.store.ResidentBytes(t.name, p.idx)
				syncStart := now
				if p.availableAt.After(syncStart) {
					syncStart = p.availableAt
				}
				catchup := time.Duration(float64(resident) / float64(c.cfg.CatchupBytesPerSec) * float64(time.Second))
				p.syncedAt = syncStart.Add(catchup)
			}
		}
	}
	// Apply the fences and recompute link fences for every partition (a
	// link to the dead shard no longer matters) in deterministic order.
	for _, f := range fenced {
		c.store.SetPartitionDown(f.t.name, f.p.idx, true)
	}
	c.applyPubFencesLocked()
	c.mu.Unlock()

	if len(fenced) > 0 {
		// One clock participant per failure walks the handoff completions
		// in instant order and reopens each partition whose epoch is still
		// the one this failure installed.
		sort.SliceStable(fenced, func(a, b int) bool { return fenced[a].at.Before(fenced[b].at) })
		vclock.Go(c.clock, func() {
			for _, f := range fenced {
				if d := f.at.Sub(c.clock.Now()); d > 0 {
					if !c.clock.Sleep(c.runCtx, d) {
						return
					}
				}
				c.mu.Lock()
				if f.p.epoch == f.epoch {
					f.p.availableAt = time.Time{}
					c.store.SetPartitionDown(f.t.name, f.p.idx, false)
					c.applyPubFencesLocked()
				}
				c.mu.Unlock()
			}
		})
	}
	return nil
}

// SeverLink cuts the replication link between shards a and b: partitions
// whose leader needs the link to reach an in-sync follower cannot
// acknowledge publishes and fence until HealLink. Fetches of already
// acknowledged data are unaffected.
func (c *Cluster) SeverLink(a, b int) error { return c.setLink(a, b, true) }

// HealLink restores the replication link between shards a and b,
// unfencing the partitions only it was fencing.
func (c *Cluster) HealLink(a, b int) error { return c.setLink(a, b, false) }

func (c *Cluster) setLink(a, b int, sever bool) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if a < 0 || a >= len(c.up) || b < 0 || b >= len(c.up) || a == b {
		return fmt.Errorf("streaming: cluster %q has no shard link %d<->%d", c.cfg.Name, a, b)
	}
	c.severed[a][b] = sever
	c.severed[b][a] = sever
	c.applyPubFencesLocked()
	return nil
}

// applyPubFencesLocked recomputes every partition's publish fence from
// the current control state: fenced while mid-handoff, or while the
// leader's link to any in-sync follower is severed (synchronous
// replication cannot acknowledge). Swept in topic-creation and partition
// order so fence toggles land deterministically. Caller holds c.mu.
func (c *Cluster) applyPubFencesLocked() {
	for _, t := range c.order {
		for _, p := range t.parts {
			fence := !p.availableAt.IsZero()
			if !fence {
				leader := p.replicas[0]
				for _, f := range p.replicas[1:] {
					if f != p.recruit && c.severed[leader][f] {
						fence = true
						break
					}
				}
			}
			c.store.SetPublishFence(t.name, p.idx, fence)
		}
	}
}

// onSave runs at every consumer-offset persist: trim the partition's log
// below the low-watermark of all persisted group cursors (whole sealed
// segments only — the floor stays segment-aligned), then report the
// retention state. This is the bounded-memory contract: trimming happens
// at exactly the instants the durable state advances, and never above
// what every registered group has durably consumed.
func (c *Cluster) onSave(_ string, topic string, partition int) {
	lw, ok := c.offsets.LowWatermark(topic, partition)
	if !ok {
		return
	}
	c.mu.Lock()
	if _, p, err := c.fedPartition(topic, partition); err == nil {
		p.staleLW = p.lastLW
		p.lastLW = lw
	}
	c.mu.Unlock()
	oldest := int64(0)
	if !c.cfg.DisableRetention {
		if o, err := c.store.Trim(topic, partition, lw); err == nil {
			oldest = o
		}
	} else if o, err := c.store.OldestOffset(topic, partition); err == nil {
		oldest = o
	}
	if c.cfg.OnRetention != nil {
		resident, err := c.store.ResidentBytes(topic, partition)
		if err != nil {
			return
		}
		c.cfg.OnRetention(topic, partition, resident, oldest)
	}
}

// ResidentBytes sums the resident payload bytes across a topic's
// partitions — the quantity retention bounds.
func (c *Cluster) ResidentBytes(topic string) (int64, error) {
	n, err := c.store.Partitions(topic)
	if err != nil {
		return 0, err
	}
	var total int64
	for q := 0; q < n; q++ {
		r, err := c.store.ResidentBytes(topic, q)
		if err != nil {
			return 0, err
		}
		total += r
	}
	return total, nil
}

// --- Bus delegation: the data plane is the shared store. ---

// Partitions returns a topic's partition count.
func (c *Cluster) Partitions(name string) (int, error) { return c.store.Partitions(name) }

// Publish appends one message through the federated log.
func (c *Cluster) Publish(ctx context.Context, topic string, key, value []byte) (Message, error) {
	return c.store.Publish(ctx, topic, key, value)
}

// PublishBatch appends a batch of (key, value) pairs.
func (c *Cluster) PublishBatch(ctx context.Context, topic string, kvs [][2][]byte) ([]Message, error) {
	return c.store.PublishBatch(ctx, topic, kvs)
}

// PublishValues appends a key-less batch (the bulk-ingest fast path).
func (c *Cluster) PublishValues(ctx context.Context, topic string, values [][]byte) error {
	return c.store.PublishValues(ctx, topic, values)
}

// Fetch long-polls one partition.
func (c *Cluster) Fetch(ctx context.Context, topic string, partition int, offset int64, max int) ([]Message, error) {
	return c.store.Fetch(ctx, topic, partition, offset, max)
}

// FetchOrWait is the consumer hot path (see Broker.FetchOrWait).
func (c *Cluster) FetchOrWait(ctx context.Context, topic string, parts []int, offsets []int64, start, max int) (int, []Message, error) {
	return c.store.FetchOrWait(ctx, topic, parts, offsets, start, max)
}

// Commit acknowledges consumption through an offset.
func (c *Cluster) Commit(topic string, partition int, through int64) error {
	return c.store.Commit(topic, partition, through)
}

// Committed returns a partition's commit mark.
func (c *Cluster) Committed(topic string, partition int) (int64, error) {
	return c.store.Committed(topic, partition)
}

// EndOffset returns the next offset to be written on a partition.
func (c *Cluster) EndOffset(topic string, partition int) (int64, error) {
	return c.store.EndOffset(topic, partition)
}

// Close stops the control plane and closes the underlying store.
func (c *Cluster) Close() {
	c.stopFn()
	c.store.Close()
}

func containsInt(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

func removeShard(xs []int, x int) []int {
	out := xs[:0]
	for _, v := range xs {
		if v != x {
			out = append(out, v)
		}
	}
	return out
}
