package streaming

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"gopilot/internal/vclock"
)

// TestClusterPlacementDeterministic pins that placement is a pure
// function of configuration: two clusters built the same way place every
// partition identically, and leaders spread across the ring.
func TestClusterPlacementDeterministic(t *testing.T) {
	build := func() *Cluster {
		c := NewCluster(ClusterConfig{Shards: 3, Replication: 2})
		if err := c.CreateTopic("events", 6); err != nil {
			t.Fatal(err)
		}
		return c
	}
	a, b := build(), build()
	defer a.Close()
	defer b.Close()
	pa, pb := a.Placement(), b.Placement()
	if len(pa) != 6 || fmt.Sprint(pa) != fmt.Sprint(pb) {
		t.Fatalf("placement not deterministic:\n%v\nvs\n%v", pa, pb)
	}
	leaders := map[int]int{}
	for _, p := range pa {
		if len(p.Replicas) != 2 || p.Replicas[0] == p.Replicas[1] {
			t.Fatalf("bad replica set for %s[%d]: %v", p.Topic, p.Partition, p.Replicas)
		}
		leaders[p.Leader]++
	}
	if len(leaders) != 3 {
		t.Fatalf("leaders concentrated on %d of 3 shards: %v", len(leaders), leaders)
	}
}

// TestClusterRefusesLastLiveShard: failing a shard is permanent, failing
// the last live shard is refused (no cold storage to recover from), and
// re-failing a dead shard is a no-op.
func TestClusterRefusesLastLiveShard(t *testing.T) {
	clock := vclock.NewVirtual(vclock.Epoch)
	clock.Adopt()
	defer clock.Leave()
	c := NewCluster(ClusterConfig{Shards: 2, Replication: 2, Clock: clock})
	defer c.Close()
	if err := c.CreateTopic("t", 2); err != nil {
		t.Fatal(err)
	}
	if err := c.FailShard(5); err == nil {
		t.Fatal("failing an unknown shard succeeded")
	}
	if err := c.FailShard(0); err != nil {
		t.Fatal(err)
	}
	if err := c.FailShard(0); err != nil {
		t.Fatalf("re-failing a dead shard should be a no-op, got %v", err)
	}
	if err := c.FailShard(1); err == nil {
		t.Fatal("failing the last live shard succeeded")
	}
	if got := c.LiveShards(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("live shards = %v, want [1]", got)
	}
}

// TestClusterShardLossHandoff drives the full failover path in virtual
// time: failing a partition's leader fences the partition for exactly
// HandoffDelay (a parked fetch completes no earlier than the handoff
// instant), bumps the epoch, promotes the surviving replica, and
// re-replicates onto a recruit until the cluster is fully replicated
// again.
func TestClusterShardLossHandoff(t *testing.T) {
	clock := vclock.NewVirtual(vclock.Epoch)
	clock.Adopt()
	defer clock.Leave()
	const delay = 500 * time.Millisecond
	c := NewCluster(ClusterConfig{
		Shards: 3, Replication: 2, HandoffDelay: delay,
		AppendCost: 10 * time.Microsecond, FetchLatency: 100 * time.Microsecond,
		Clock: clock,
	})
	defer c.Close()
	if err := c.CreateTopic("t", 3); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := c.Publish(ctx, "t", nil, []byte("before")); err != nil {
		t.Fatal(err)
	}
	// Locate the partition that message landed on (round-robin from 0).
	const part = 0
	lead, err := c.LeaderOf("t", part)
	if err != nil {
		t.Fatal(err)
	}
	old, err := c.ReplicasOf("t", part)
	if err != nil {
		t.Fatal(err)
	}

	failedAt := clock.Now()
	if err := c.FailShard(lead); err != nil {
		t.Fatal(err)
	}
	if got := c.Handoffs(); got < 1 {
		t.Fatalf("handoffs = %d, want >= 1", got)
	}
	if ep, _ := c.Epoch("t", part); ep != 1 {
		t.Fatalf("epoch = %d, want 1", ep)
	}
	if nl, _ := c.LeaderOf("t", part); nl != old[1] {
		t.Fatalf("new leader = %d, want promoted follower %d", nl, old[1])
	}

	// A fetch against the fenced partition parks and completes no earlier
	// than the handoff instant.
	var fetchedAt time.Time
	var fetchErr error
	fetched := vclock.NewEvent(clock)
	vclock.Go(clock, func() {
		defer fetched.Fire()
		_, fetchErr = c.Fetch(ctx, "t", part, 0, 10)
		fetchedAt = clock.Now()
	})
	if !clock.Sleep(ctx, 2*delay) {
		t.Fatal("sleep interrupted")
	}
	if !fetched.Wait(ctx) {
		t.Fatal("fetch never completed")
	}
	if fetchErr != nil {
		t.Fatal(fetchErr)
	}
	if woke := fetchedAt.Sub(failedAt); woke < delay {
		t.Fatalf("fetch completed %v after failure, before the %v handoff delay", woke, delay)
	}

	// Re-replication reconverged: every partition back at 2 live replicas,
	// none still syncing, none placed on the dead shard.
	if n := c.UnderReplicated(); n != 0 {
		t.Fatalf("%d partitions still under-replicated after handoff", n)
	}
	for _, p := range c.Placement() {
		if len(p.Replicas) != 2 {
			t.Fatalf("%s[%d] has %d replicas", p.Topic, p.Partition, len(p.Replicas))
		}
		for _, r := range p.Replicas {
			if r == lead {
				t.Fatalf("%s[%d] still placed on dead shard %d", p.Topic, p.Partition, lead)
			}
		}
	}
}

// TestClusterSeverLinkFencesPublish: severing the leader->follower
// replication link of a partition blocks publish acknowledgement until
// the link heals; links between shards not replicating the partition
// change nothing.
func TestClusterSeverLinkFencesPublish(t *testing.T) {
	clock := vclock.NewVirtual(vclock.Epoch)
	clock.Adopt()
	defer clock.Leave()
	c := NewCluster(ClusterConfig{
		Shards: 3, Replication: 2, AppendCost: 10 * time.Microsecond, Clock: clock,
	})
	defer c.Close()
	if err := c.CreateTopic("t", 1); err != nil {
		t.Fatal(err)
	}
	reps, err := c.ReplicasOf("t", 0)
	if err != nil {
		t.Fatal(err)
	}
	leader, follower := reps[0], reps[1]
	bystander := 0
	for s := 0; s < 3; s++ {
		if s != leader && s != follower {
			bystander = s
		}
	}
	ctx := context.Background()

	// A link not on the replication path fences nothing.
	if err := c.SeverLink(follower, bystander); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Publish(ctx, "t", nil, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := c.HealLink(follower, bystander); err != nil {
		t.Fatal(err)
	}

	// The leader<->follower link fences publishes until healed.
	if err := c.SeverLink(leader, follower); err != nil {
		t.Fatal(err)
	}
	var pubAt time.Time
	var pubErr error
	published := vclock.NewEvent(clock)
	vclock.Go(clock, func() {
		defer published.Fire()
		_, pubErr = c.Publish(ctx, "t", nil, []byte("fenced"))
		pubAt = clock.Now()
	})
	const window = 200 * time.Millisecond
	severedAt := clock.Now()
	if !clock.Sleep(ctx, window) {
		t.Fatal("sleep interrupted")
	}
	if published.Fired() {
		t.Fatal("publish acknowledged while the replication link was severed")
	}
	if err := c.HealLink(leader, follower); err != nil {
		t.Fatal(err)
	}
	if !published.Wait(ctx) {
		t.Fatal("publish never completed after heal")
	}
	if pubErr != nil {
		t.Fatal(pubErr)
	}
	if held := pubAt.Sub(severedAt); held < window {
		t.Fatalf("publish acknowledged %v after sever, before the link healed", held)
	}
	if err := c.SeverLink(leader, leader); err == nil {
		t.Fatal("severing a self-link succeeded")
	}
}

// TestFetchTrimmedOffsetTypedError pins the retention contract's error
// surface: a fetch below the trimmed floor fails with
// OffsetOutOfRangeError (matching ErrOffsetOutOfRange, carrying the
// oldest retained offset), and fetches at the floor still serve.
func TestFetchTrimmedOffsetTypedError(t *testing.T) {
	clock := vclock.NewVirtual(vclock.Epoch)
	clock.Adopt()
	defer clock.Leave()
	const segSize = 4
	c := NewCluster(ClusterConfig{Shards: 1, Replication: 1, SegmentSize: segSize, Clock: clock})
	defer c.Close()
	if err := c.CreateTopic("t", 1); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < 10; i++ {
		if _, err := c.Publish(ctx, "t", nil, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Commit("t", 0, 9); err != nil {
		t.Fatal(err)
	}
	// Persisting the cursor drives retention: segments wholly below offset
	// 9 trim (two full segments of 4), leaving the floor at 8.
	c.Offsets().Save("g", "t", 0, 9)
	if oldest, err := c.OldestOffset("t", 0); err != nil || oldest != 8 {
		t.Fatalf("oldest = %d, %v; want 8", oldest, err)
	}

	_, err := c.Fetch(ctx, "t", 0, 0, 10)
	if err == nil {
		t.Fatal("fetch below the retention floor succeeded")
	}
	if !errors.Is(err, ErrOffsetOutOfRange) {
		t.Fatalf("error does not match ErrOffsetOutOfRange: %v", err)
	}
	var oor *OffsetOutOfRangeError
	if !errors.As(err, &oor) {
		t.Fatalf("error is not *OffsetOutOfRangeError: %T", err)
	}
	if oor.Topic != "t" || oor.Partition != 0 || oor.Offset != 0 || oor.Oldest != 8 {
		t.Fatalf("wrong coordinates: %+v", oor)
	}

	msgs, err := c.Fetch(ctx, "t", 0, 8, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 2 || msgs[0].Offset != 8 || msgs[1].Offset != 9 {
		t.Fatalf("fetch at the floor returned %d msgs starting at %d, want [8,10)", len(msgs), msgs[0].Offset)
	}
}

// TestRetentionBoundProperty is the bounded-memory property test: over
// 10 randomized seeds, a randomized interleaving of publishes, consumer
// commits, and the trims they trigger must keep resident bytes within
// the retention contract's bound at every persist instant — resident
// counts exactly the bytes in [oldest, end), the floor never passes the
// low-watermark of persisted cursors, and it trails it by less than one
// segment. Once every consumer has drained and persisted, at most one
// segment of bytes remains resident however many messages flowed
// through. Run under -race in CI at GOMAXPROCS=4.
func TestRetentionBoundProperty(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	const (
		segSize    = 64
		payloadLen = 32
		total      = 2500
		maxBatch   = 48
	)
	for seed := int64(0); seed < 10; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			clock := vclock.NewVirtual(vclock.Epoch)
			clock.Adopt()
			defer clock.Leave()
			// Per-seed xorshift: deterministic interleavings without
			// math/rand (seed-audit rule 1).
			rng := uint64(seed)*0x9E3779B97F4A7C15 + 0x2545F4914F6CDD1D
			next := func(n int) int {
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				return int(rng % uint64(n))
			}

			var cl *Cluster
			trims, evals := 0, 0
			lastOldest := int64(0)
			cl = NewCluster(ClusterConfig{
				Shards: 3, Replication: 2, SegmentSize: segSize,
				AppendCost: 10 * time.Microsecond, FetchLatency: 100 * time.Microsecond,
				Clock: clock,
				OnRetention: func(topic string, q int, resident, oldest int64) {
					evals++
					end, err := cl.EndOffset(topic, q)
					if err != nil {
						t.Error(err)
						return
					}
					lw, ok := cl.Offsets().LowWatermark(topic, q)
					if !ok {
						t.Error("retention evaluated with no registered group")
						return
					}
					if got, want := resident, (end-oldest)*payloadLen; got != want {
						t.Errorf("resident %d != bytes in [oldest,end) = %d", got, want)
					}
					if oldest > lw {
						t.Errorf("floor %d passed low-watermark %d", oldest, lw)
					}
					if lw-oldest >= segSize {
						t.Errorf("floor %d trails low-watermark %d by a full segment", oldest, lw)
					}
					if bound := (end - lw + segSize) * payloadLen; resident > bound {
						t.Errorf("resident %d exceeds bound %d (end %d, lw %d)", resident, bound, end, lw)
					}
					if oldest > lastOldest {
						lastOldest = oldest
						trims++
					}
				},
			})
			defer cl.Close()
			if err := cl.CreateTopic("t", 1); err != nil {
				t.Fatal(err)
			}
			ctx := context.Background()
			groups := [2]string{"fast", "slow"}
			var cursor [2]int64
			for i := range groups {
				cl.Offsets().Save(groups[i], "t", 0, 0) // register: floors the low-watermark
			}

			payload := make([]byte, payloadLen)
			published := 0
			for published < total || cursor[0] < total || cursor[1] < total {
				switch next(4) {
				case 0, 1: // publish a random batch
					if published == total {
						continue
					}
					k := 1 + next(maxBatch)
					if k > total-published {
						k = total - published
					}
					values := make([][]byte, k)
					for i := range values {
						values[i] = payload
					}
					if err := cl.PublishValues(ctx, "t", values); err != nil {
						t.Fatal(err)
					}
					published += k
				default: // one consumer fetches, commits, persists (trim instant)
					i := next(2)
					end, err := cl.EndOffset("t", 0)
					if err != nil {
						t.Fatal(err)
					}
					if cursor[i] >= end {
						continue // nothing to consume; Fetch would park
					}
					msgs, err := cl.Fetch(ctx, "t", 0, cursor[i], 1+next(96))
					if err != nil {
						t.Fatalf("consumer %s at %d: %v", groups[i], cursor[i], err)
					}
					cursor[i] += int64(len(msgs))
					if err := cl.Commit("t", 0, cursor[i]); err != nil {
						t.Fatal(err)
					}
					cl.Offsets().Save(groups[i], "t", 0, cursor[i])
				}
			}
			if evals == 0 || trims == 0 {
				t.Fatalf("property not exercised: %d evaluations, %d trims", evals, trims)
			}
			resident, err := cl.ResidentBytes("t")
			if err != nil {
				t.Fatal(err)
			}
			if resident > segSize*payloadLen {
				t.Fatalf("drained cluster retains %d bytes, want <= one segment (%d)", resident, segSize*payloadLen)
			}
			if oldest, _ := cl.OldestOffset("t", 0); oldest < total-segSize {
				t.Fatalf("final floor %d never approached the head (%d published)", oldest, total)
			}
		})
	}
}
