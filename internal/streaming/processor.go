package streaming

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"gopilot/internal/core"
	"gopilot/internal/dist"
	"gopilot/internal/metrics"
	"gopilot/internal/vclock"
)

// HandlerFunc processes one message; processing cost should be modeled by
// sleeping through tc.Sleep inside the handler (or by real computation).
type HandlerFunc func(ctx context.Context, tc core.TaskContext, msg Message) error

// ProcessorConfig describes a pilot-managed stream processing deployment:
// Pilot-Streaming's core operation of coupling a broker to processing
// resources managed via the pilot-abstraction.
type ProcessorConfig struct {
	// Name labels the processor's compute units.
	Name string
	// Topic to consume.
	Topic string
	// Workers is the number of parallel consumer units; partitions are
	// assigned round-robin across workers (Workers > partitions leaves the
	// excess idle, as in Kafka consumer groups).
	Workers int
	// BatchSize bounds messages per fetch (default 256).
	BatchSize int
	// Handler processes each message.
	Handler HandlerFunc
	// PureHandler marks Handler as a side-effect-free CPU kernel (no
	// tc.Sleep, no clock reads, no stream draws, no shared mutation): the
	// processor then runs each fetch batch's handler calls as one parallel
	// compute phase, so workers reconstruct/decode on real cores under the
	// virtual-time executor while latency accounting stays on the token
	// and bit-reproducible. Handlers that model per-message time with
	// tc.Sleep must leave this false.
	PureHandler bool
	// CostPerMessage is the modeled processing cost per message, charged
	// once per fetch batch (sleeping per message would be distorted by OS
	// timer granularity under aggressive virtual-time compression, exactly
	// as real consumers amortize per-record overhead across poll batches).
	CostPerMessage time.Duration
	// CostCV makes the per-batch processing cost stochastic: each batch's
	// cost is CostPerMessage·len(batch) scaled by a lognormal multiplier
	// with mean 1 and this coefficient of variation. Zero (the default)
	// keeps costs deterministic.
	CostCV float64
	// Stream is the processor's slot on the experiment's seeding spine;
	// worker w draws its cost jitter from Stream's "worker"/<w> child, so
	// resizing the worker pool never shifts an existing worker's draws.
	// Only consumed when CostCV > 0. Defaults to
	// dist.Unseeded("streaming/processor/<name>").
	Stream *dist.Stream
	// CoresPerWorker sizes each worker unit (default 1).
	CoresPerWorker int
}

// Processor is a running set of consumer units with latency/throughput
// accounting.
type Processor struct {
	cfg    ProcessorConfig
	broker *Broker
	mgr    *core.Manager

	units []*core.ComputeUnit
	stop  context.CancelFunc

	progress *vclock.Notifier

	mu        sync.Mutex
	processed int64
	started   time.Time
	stopped   time.Time
	latencies *metrics.Series
}

// StartProcessor deploys the processing units onto mgr's pilots and starts
// consuming. Stop (or ctx cancellation) terminates the workers.
func StartProcessor(ctx context.Context, mgr *core.Manager, broker *Broker, cfg ProcessorConfig) (*Processor, error) {
	if cfg.Handler == nil {
		return nil, errors.New("streaming: processor needs a handler")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 256
	}
	if cfg.CoresPerWorker <= 0 {
		cfg.CoresPerWorker = 1
	}
	if cfg.Name == "" {
		cfg.Name = "stream-proc"
	}
	if cfg.Stream == nil {
		cfg.Stream = dist.Unseeded("streaming/processor/" + cfg.Name)
	}
	nparts, err := broker.Partitions(cfg.Topic)
	if err != nil {
		return nil, err
	}

	runCtx, cancel := context.WithCancel(ctx)
	p := &Processor{
		cfg:       cfg,
		broker:    broker,
		mgr:       mgr,
		stop:      cancel,
		progress:  vclock.NewNotifier(broker.Clock()),
		started:   broker.Clock().Now(),
		latencies: metrics.NewSeries("e2e_latency_s"),
	}

	// Static partition assignment: worker w owns partitions w, w+W, ...
	workerRoot := cfg.Stream.Named("worker")
	for w := 0; w < cfg.Workers; w++ {
		var parts []int
		for q := w; q < nparts; q += cfg.Workers {
			parts = append(parts, q)
		}
		var jitter dist.Dist
		if cfg.CostCV > 0 {
			jitter = dist.LogNormalFrom(workerRoot.SplitLabel(uint64(w)), 1, cfg.CostCV)
		}
		u, err := mgr.SubmitUnit(core.UnitDescription{
			Name:  fmt.Sprintf("%s[%d]", cfg.Name, w),
			Cores: cfg.CoresPerWorker,
			Run: func(_ context.Context, tc core.TaskContext) error {
				return p.consume(runCtx, tc, parts, jitter)
			},
		})
		if err != nil {
			cancel()
			return nil, err
		}
		p.units = append(p.units, u)
	}
	return p, nil
}

// consume is one worker's loop over its partition set.
func (p *Processor) consume(ctx context.Context, tc core.TaskContext, parts []int, jitter dist.Dist) error {
	if len(parts) == 0 {
		// No partitions assigned: idle until stopped, without holding the
		// virtual-time executor's token.
		idle := vclock.NewNotifier(p.broker.Clock())
		idle.Wait(ctx)
		return nil
	}
	offsets := make([]int64, len(parts))
	clock := p.broker.Clock()
	for {
		progressed := false
		for i, part := range parts {
			if ctx.Err() != nil {
				return nil
			}
			// Non-blocking check first so one empty partition does not
			// stall the others: long-poll only when all were empty.
			end, err := p.broker.EndOffset(p.cfg.Topic, part)
			if err != nil {
				if errors.Is(err, ErrBrokerClosed) {
					return nil
				}
				return err
			}
			if end <= offsets[i] {
				continue
			}
			batch, err := p.broker.Fetch(ctx, p.cfg.Topic, part, offsets[i], p.cfg.BatchSize)
			if err != nil {
				if errors.Is(err, ErrBrokerClosed) || ctx.Err() != nil {
					return nil
				}
				return err
			}
			if err := p.processBatch(ctx, tc, clock, batch, jitter); err != nil {
				if ctx.Err() != nil {
					return nil
				}
				return err
			}
			offsets[i] += int64(len(batch))
			progressed = true
		}
		if !progressed {
			// All partitions drained: park until any owned partition has
			// data (or the broker closes / the processor stops). This
			// replaces the old wall-clock poll timeout, whose firing order
			// was invisible to the virtual-time executor.
			if _, err := p.broker.WaitAny(ctx, p.cfg.Topic, parts, offsets); err != nil {
				if errors.Is(err, ErrBrokerClosed) || ctx.Err() != nil {
					return nil
				}
				return err
			}
		}
	}
}

// processBatch charges the batch's modeled processing cost, then runs the
// handler (real computation) over each message and records its end-to-end
// latency. With PureHandler set, the whole batch's handler calls execute
// as one parallel compute phase: modeled time is pinned while they run,
// so every message observes the same completion instant it would have on
// the token, and concurrent workers' batches overlap on real cores.
func (p *Processor) processBatch(ctx context.Context, tc core.TaskContext, clock vclock.Clock, batch []Message, jitter dist.Dist) error {
	if p.cfg.CostPerMessage > 0 {
		cost := time.Duration(len(batch)) * p.cfg.CostPerMessage
		if jitter != nil {
			cost = time.Duration(float64(cost) * jitter.Sample())
		}
		if !clock.Sleep(ctx, cost) {
			return ctx.Err()
		}
	}
	if p.cfg.PureHandler {
		var herr error
		if !vclock.Compute(clock, ctx, func() {
			for _, m := range batch {
				if err := p.cfg.Handler(ctx, tc, m); err != nil {
					herr = fmt.Errorf("streaming: handler on %s[%d]@%d: %w", m.Topic, m.Partition, m.Offset, err)
					return
				}
			}
		}) {
			return ctx.Err()
		}
		if herr != nil {
			return herr
		}
		now := clock.Now()
		for _, m := range batch {
			p.record(now.Sub(m.Published))
		}
		return nil
	}
	for _, m := range batch {
		if err := p.cfg.Handler(ctx, tc, m); err != nil {
			return fmt.Errorf("streaming: handler on %s[%d]@%d: %w", m.Topic, m.Partition, m.Offset, err)
		}
		p.record(clock.Now().Sub(m.Published))
	}
	return nil
}

func (p *Processor) record(lat time.Duration) {
	p.latencies.Add(lat.Seconds())
	p.mu.Lock()
	p.processed++
	p.mu.Unlock()
	p.progress.Set()
}

// Processed returns the number of messages handled so far.
func (p *Processor) Processed() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.processed
}

// WaitProcessed blocks until at least n messages were handled or ctx ends.
func (p *Processor) WaitProcessed(ctx context.Context, n int64) error {
	for {
		if p.Processed() >= n {
			return nil
		}
		if !p.progress.Wait(ctx) {
			return ctx.Err()
		}
	}
}

// Stop terminates the workers and waits for their units to finish.
func (p *Processor) Stop() {
	p.stop()
	for _, u := range p.units {
		u.Wait(context.Background())
	}
	p.mu.Lock()
	p.stopped = p.broker.Clock().Now()
	p.mu.Unlock()
}

// Throughput returns processed messages per modeled second between start
// and Stop (or now while running).
func (p *Processor) Throughput() float64 {
	p.mu.Lock()
	processed := p.processed
	end := p.stopped
	p.mu.Unlock()
	if end.IsZero() {
		end = p.broker.Clock().Now()
	}
	elapsed := end.Sub(p.started).Seconds()
	if elapsed <= 0 {
		return 0
	}
	return float64(processed) / elapsed
}

// LatencyStats summarizes end-to-end latency in seconds.
func (p *Processor) LatencyStats() metrics.Summary { return p.latencies.Summary() }

// Produce publishes n messages at a target rate (messages per modeled
// second) in batches, returning the achieved rate. A rate <= 0 publishes
// as fast as the broker admits (the saturation probe used by E7).
func Produce(ctx context.Context, b *Broker, topic string, n int, rate float64, payload []byte) (float64, error) {
	clock := b.Clock()
	start := clock.Now()
	const batch = 64
	sent := 0
	for sent < n {
		k := batch
		if n-sent < k {
			k = n - sent
		}
		kvs := make([][2][]byte, k)
		for i := range kvs {
			kvs[i] = [2][]byte{nil, payload}
		}
		if _, err := b.PublishBatch(ctx, topic, kvs); err != nil {
			return 0, err
		}
		sent += k
		if rate > 0 {
			// Pace to the target rate: sleep off any time we are ahead.
			expected := time.Duration(float64(sent) / rate * float64(time.Second))
			ahead := expected - clock.Now().Sub(start)
			if ahead > 0 {
				if !clock.Sleep(ctx, ahead) {
					return 0, ctx.Err()
				}
			}
		}
	}
	elapsed := clock.Now().Sub(start).Seconds()
	if elapsed <= 0 {
		return float64(n), nil
	}
	return float64(n) / elapsed, nil
}

// Window groups messages into tumbling windows of the given modeled width
// by publish time, calling flush with each completed window. It is a
// stateful helper for streaming aggregations (Table I's "global state
// across batches").
type Window struct {
	width time.Duration
	flush func(start time.Time, msgs []Message)

	mu      sync.Mutex
	current time.Time
	batch   []Message
}

// NewWindow creates a tumbling window aggregator.
func NewWindow(width time.Duration, flush func(start time.Time, msgs []Message)) *Window {
	if width <= 0 {
		panic("streaming: window width must be positive")
	}
	return &Window{width: width, flush: flush}
}

// Add routes a message into its window, flushing completed windows.
func (w *Window) Add(m Message) {
	w.mu.Lock()
	defer w.mu.Unlock()
	ws := m.Published.Truncate(w.width)
	if w.current.IsZero() {
		w.current = ws
	}
	if ws.After(w.current) {
		w.flushLocked()
		w.current = ws
	}
	w.batch = append(w.batch, m)
}

// Flush emits any buffered window.
func (w *Window) Flush() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.flushLocked()
}

func (w *Window) flushLocked() {
	if len(w.batch) == 0 {
		return
	}
	batch := w.batch
	w.batch = nil
	w.flush(w.current, batch)
}
