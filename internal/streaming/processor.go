package streaming

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"gopilot/internal/core"
	"gopilot/internal/dist"
	"gopilot/internal/metrics"
	"gopilot/internal/vclock"
)

// HandlerFunc processes one message; processing cost should be modeled by
// sleeping through tc.Sleep inside the handler (or by real computation).
type HandlerFunc func(ctx context.Context, tc core.TaskContext, msg Message) error

// ProcessorConfig describes a pilot-managed stream processing deployment:
// Pilot-Streaming's core operation of coupling a broker to processing
// resources managed via the pilot-abstraction.
type ProcessorConfig struct {
	// Name labels the processor's compute units.
	Name string
	// Topic to consume.
	Topic string
	// Workers is the number of parallel consumer units; partitions are
	// assigned round-robin across workers (Workers > partitions leaves the
	// excess idle, as in Kafka consumer groups). The assignment is static
	// for the processor's lifetime — use a Group for dynamic membership.
	Workers int
	// BatchSize bounds messages per fetch (default 256).
	BatchSize int
	// Handler processes each message.
	Handler HandlerFunc
	// PureHandler marks Handler as a side-effect-free CPU kernel (no
	// tc.Sleep, no clock reads, no stream draws, no shared mutation): the
	// processor then runs each fetch batch's handler calls as one parallel
	// compute phase, so workers reconstruct/decode on real cores under the
	// virtual-time executor while latency accounting stays on the token
	// and bit-reproducible. Handlers that model per-message time with
	// tc.Sleep must leave this false.
	PureHandler bool
	// CostPerMessage is the modeled processing cost per message, charged
	// once per fetch batch (sleeping per message would be distorted by OS
	// timer granularity under aggressive virtual-time compression, exactly
	// as real consumers amortize per-record overhead across poll batches).
	CostPerMessage time.Duration
	// CostCV makes the per-batch processing cost stochastic: each batch's
	// cost is CostPerMessage·len(batch) scaled by a lognormal multiplier
	// with mean 1 and this coefficient of variation. Zero (the default)
	// keeps costs deterministic.
	CostCV float64
	// Stream is the processor's slot on the experiment's seeding spine;
	// worker w draws its cost jitter from Stream's "worker"/<w> child, so
	// resizing the worker pool never shifts an existing worker's draws.
	// Only consumed when CostCV > 0. Defaults to
	// dist.Unseeded("streaming/processor/<name>").
	Stream *dist.Stream
	// CoresPerWorker sizes each worker unit (default 1).
	CoresPerWorker int
}

// counters is the shared measurement core of the consumer deployments
// (Processor, ServerlessProcessor, Group): processed count, end-to-end
// latency series, throughput window, and the progress notifier behind
// WaitProcessed.
type counters struct {
	clock    vclock.Clock
	progress *vclock.Notifier

	mu        sync.Mutex
	processed int64
	started   time.Time
	stopped   time.Time
	latencies *metrics.Series
}

func newCounters(clock vclock.Clock, series string) *counters {
	return &counters{
		clock:     clock,
		progress:  vclock.NewNotifier(clock),
		started:   clock.Now(),
		latencies: metrics.NewSeries(series),
	}
}

// record accounts one processed message (the per-message path, used when
// handlers sleep mid-batch and each message observes its own instant).
func (c *counters) record(lat time.Duration) {
	c.latencies.Add(lat.Seconds())
	c.mu.Lock()
	c.processed++
	c.mu.Unlock()
	c.progress.Set()
}

// recordBatch accounts a whole batch completing at one instant: one
// series lock, one counter lock, one progress wake — the amortization
// that keeps million-message runs off the scheduler's hot path.
// Latencies are computed straight into the series' tail (no per-message
// Add, no staging copy), so a batch costs two lock acquisitions total
// instead of one per message.
func (c *counters) recordBatch(now time.Time, batch []Message) {
	c.latencies.AddFunc(len(batch), func(i int) float64 {
		return now.Sub(batch[i].Published).Seconds()
	})
	c.mu.Lock()
	c.processed += int64(len(batch))
	c.mu.Unlock()
	c.progress.Set()
}

func (c *counters) markStopped() {
	c.mu.Lock()
	c.stopped = c.clock.Now()
	c.mu.Unlock()
}

// Processed returns the number of messages handled so far.
func (c *counters) Processed() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.processed
}

// WaitProcessed blocks until at least n messages were handled or ctx ends.
func (c *counters) WaitProcessed(ctx context.Context, n int64) error {
	for {
		if c.Processed() >= n {
			return nil
		}
		if !c.progress.Wait(ctx) {
			return ctx.Err()
		}
	}
}

// Throughput returns processed messages per modeled second between start
// and Stop (or now while running).
func (c *counters) Throughput() float64 {
	c.mu.Lock()
	processed := c.processed
	end := c.stopped
	c.mu.Unlock()
	if end.IsZero() {
		end = c.clock.Now()
	}
	elapsed := end.Sub(c.started).Seconds()
	if elapsed <= 0 {
		return 0
	}
	return float64(processed) / elapsed
}

// LatencyStats summarizes end-to-end latency in seconds.
func (c *counters) LatencyStats() metrics.Summary { return c.latencies.Summary() }

// chargeAndRun is the batch-execution core shared by every consumer
// deployment: charge the batch's modeled cost once (scaled by the
// optional jitter draw), then run handler over each message — as one
// parallel compute phase when pure (modeled time pinned, bodies overlap
// on real cores), serially otherwise with afterEach (when non-nil)
// called behind every message for interleaved accounting. Handler errors
// are wrapped with errPrefix and the failing message's coordinates.
// Handlers and afterEach receive pointers into the batch (read-only
// views), so the hot per-message loop moves one word instead of copying
// a Message per call; the copy the public by-value HandlerFunc API
// requires happens once, at that boundary.
func chargeAndRun(ctx context.Context, clock vclock.Clock, batch []Message,
	cost time.Duration, jitter dist.Dist, pure bool, errPrefix string,
	handler func(context.Context, *Message) error, afterEach func(*Message)) error {
	if cost > 0 {
		total := time.Duration(len(batch)) * cost
		if jitter != nil {
			total = time.Duration(float64(total) * jitter.Sample())
		}
		if !clock.Sleep(ctx, total) {
			return ctx.Err()
		}
	}
	if pure {
		var herr error
		if !vclock.Compute(clock, ctx, func() {
			for i := range batch {
				if err := handler(ctx, &batch[i]); err != nil {
					m := &batch[i]
					herr = fmt.Errorf("streaming: %s %s[%d]@%d: %w", errPrefix, m.Topic, m.Partition, m.Offset, err)
					return
				}
			}
		}) {
			return ctx.Err()
		}
		return herr
	}
	for i := range batch {
		if err := handler(ctx, &batch[i]); err != nil {
			m := &batch[i]
			return fmt.Errorf("streaming: %s %s[%d]@%d: %w", errPrefix, m.Topic, m.Partition, m.Offset, err)
		}
		if afterEach != nil {
			afterEach(&batch[i])
		}
	}
	return nil
}

// runBatch executes a batch for a pilot-worker deployment (Processor,
// Group), recording end-to-end latencies into c — per message on the
// serial path (handlers may sleep mid-batch), at the pinned post-join
// instant on the pure path.
func runBatch(ctx context.Context, tc core.TaskContext, c *counters, batch []Message,
	cost time.Duration, jitter dist.Dist, pure bool, handler HandlerFunc) error {
	clock := c.clock
	h := func(ctx context.Context, m *Message) error { return handler(ctx, tc, *m) }
	var afterEach func(*Message)
	if !pure {
		afterEach = func(m *Message) { c.record(clock.Now().Sub(m.Published)) }
	}
	if err := chargeAndRun(ctx, clock, batch, cost, jitter, pure, "handler on", h, afterEach); err != nil {
		return err
	}
	if pure {
		c.recordBatch(clock.Now(), batch)
	}
	return nil
}

// Processor is a running set of consumer units with latency/throughput
// accounting.
type Processor struct {
	*counters
	cfg    ProcessorConfig
	broker Bus
	mgr    *core.Manager

	units []*core.ComputeUnit
	stop  context.CancelFunc
}

// StartProcessor deploys the processing units onto mgr's pilots and starts
// consuming. Stop (or ctx cancellation) terminates the workers.
func StartProcessor(ctx context.Context, mgr *core.Manager, broker Bus, cfg ProcessorConfig) (*Processor, error) {
	if cfg.Handler == nil {
		return nil, errors.New("streaming: processor needs a handler")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 256
	}
	if cfg.CoresPerWorker <= 0 {
		cfg.CoresPerWorker = 1
	}
	if cfg.Name == "" {
		cfg.Name = "stream-proc"
	}
	if cfg.Stream == nil {
		cfg.Stream = dist.Unseeded("streaming/processor/" + cfg.Name)
	}
	nparts, err := broker.Partitions(cfg.Topic)
	if err != nil {
		return nil, err
	}

	runCtx, cancel := context.WithCancel(ctx)
	p := &Processor{
		counters: newCounters(broker.Clock(), "e2e_latency_s"),
		cfg:      cfg,
		broker:   broker,
		mgr:      mgr,
		stop:     cancel,
	}

	// Static partition assignment: worker w owns partitions w, w+W, ...
	workerRoot := cfg.Stream.Named("worker")
	for w := 0; w < cfg.Workers; w++ {
		var parts []int
		for q := w; q < nparts; q += cfg.Workers {
			parts = append(parts, q)
		}
		var jitter dist.Dist
		if cfg.CostCV > 0 {
			jitter = dist.LogNormalFrom(workerRoot.SplitLabel(uint64(w)), 1, cfg.CostCV)
		}
		u, err := mgr.SubmitUnit(core.UnitDescription{
			Name:  fmt.Sprintf("%s[%d]", cfg.Name, w),
			Cores: cfg.CoresPerWorker,
			Run: func(_ context.Context, tc core.TaskContext) error {
				return p.consume(runCtx, tc, parts, jitter)
			},
		})
		if err != nil {
			cancel()
			return nil, err
		}
		p.units = append(p.units, u)
	}
	return p, nil
}

// consume is one worker's loop over its partition set: one FetchOrWait
// long-poll per batch (one modeled RTT, parking clock-aware when all
// owned partitions are drained), rotating the scan start across polls so
// every partition gets served under sustained load.
func (p *Processor) consume(ctx context.Context, tc core.TaskContext, parts []int, jitter dist.Dist) error {
	if len(parts) == 0 {
		// No partitions assigned: idle until stopped, without holding the
		// virtual-time executor's token.
		idle := vclock.NewNotifier(p.broker.Clock())
		idle.Wait(ctx)
		return nil
	}
	offsets := make([]int64, len(parts))
	start := 0
	for {
		if ctx.Err() != nil {
			return nil
		}
		i, batch, err := p.broker.FetchOrWait(ctx, p.cfg.Topic, parts, offsets, start, p.cfg.BatchSize)
		if err != nil {
			if errors.Is(err, ErrBrokerClosed) || ctx.Err() != nil {
				return nil
			}
			return err
		}
		if err := runBatch(ctx, tc, p.counters, batch, p.cfg.CostPerMessage, jitter, p.cfg.PureHandler, p.cfg.Handler); err != nil {
			if ctx.Err() != nil {
				return nil
			}
			return err
		}
		offsets[i] += int64(len(batch))
		start = i + 1
	}
}

// Stop terminates the workers and waits for their units to finish.
func (p *Processor) Stop() {
	p.stop()
	for _, u := range p.units {
		u.Wait(context.Background())
	}
	p.markStopped()
}

// Produce publishes n messages at a target rate (messages per modeled
// second) in batches of 64, returning the achieved rate. A rate <= 0
// publishes as fast as the broker admits (the saturation probe used by
// E7).
func Produce(ctx context.Context, b Bus, topic string, n int, rate float64, payload []byte) (float64, error) {
	return ProduceBatched(ctx, b, topic, n, rate, payload, 64)
}

// ProduceBatched is Produce with a caller-chosen publish batch size:
// larger batches amortize broker interactions further (one lock, wake
// and producer sleep per batch) — the bulk-ingest setting E13 uses.
func ProduceBatched(ctx context.Context, b Bus, topic string, n int, rate float64, payload []byte, batch int) (float64, error) {
	if batch <= 0 {
		batch = 64
	}
	clock := b.Clock()
	start := clock.Now()
	// Every batch carries the same payload: fill the value slice once and
	// reslice per batch instead of rewriting a million pointer slots.
	values := make([][]byte, batch)
	for i := range values {
		values[i] = payload
	}
	sent := 0
	for sent < n {
		k := batch
		if n-sent < k {
			k = n - sent
		}
		if err := b.PublishValues(ctx, topic, values[:k]); err != nil {
			return 0, err
		}
		sent += k
		if rate > 0 {
			// Pace to the target rate: sleep off any time we are ahead.
			expected := time.Duration(float64(sent) / rate * float64(time.Second))
			ahead := expected - clock.Now().Sub(start)
			if ahead > 0 {
				if !clock.Sleep(ctx, ahead) {
					return 0, ctx.Err()
				}
			}
		}
	}
	elapsed := clock.Now().Sub(start).Seconds()
	if elapsed <= 0 {
		return float64(n), nil
	}
	return float64(n) / elapsed, nil
}

// Window groups messages into tumbling windows of the given modeled width
// by publish time, calling flush with each completed window. It is a
// stateful helper for streaming aggregations (Table I's "global state
// across batches").
type Window struct {
	width time.Duration
	flush func(start time.Time, msgs []Message)

	mu      sync.Mutex
	current time.Time
	batch   []Message
}

// NewWindow creates a tumbling window aggregator.
func NewWindow(width time.Duration, flush func(start time.Time, msgs []Message)) *Window {
	if width <= 0 {
		panic("streaming: window width must be positive")
	}
	return &Window{width: width, flush: flush}
}

// Add routes a message into its window, flushing completed windows.
func (w *Window) Add(m Message) {
	w.mu.Lock()
	defer w.mu.Unlock()
	ws := m.Published.Truncate(w.width)
	if w.current.IsZero() {
		w.current = ws
	}
	if ws.After(w.current) {
		w.flushLocked()
		w.current = ws
	}
	w.batch = append(w.batch, m)
}

// Flush emits any buffered window.
func (w *Window) Flush() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.flushLocked()
}

func (w *Window) flushLocked() {
	if len(w.batch) == 0 {
		return
	}
	batch := w.batch
	w.batch = nil
	w.flush(w.current, batch)
}
