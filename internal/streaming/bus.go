package streaming

import (
	"context"

	"gopilot/internal/vclock"
)

// Bus is the client-facing surface of a message transport: everything
// producers and consumer deployments (Group, Processor,
// ServerlessProcessor, Produce) need from the log, and nothing about how
// it is hosted. One in-process Broker satisfies it, and so does a
// federated Cluster of N broker shards — a deployment moves from one to
// the other by swapping the constructor, which is the resource
// decoupling of the pilot abstraction applied to the broker layer
// itself (DESIGN.md "Federation").
type Bus interface {
	// Clock returns the transport's clock.
	Clock() vclock.Clock
	// CreateTopic creates a topic with n partitions (idempotent for equal
	// partition counts).
	CreateTopic(name string, partitions int) error
	// Partitions returns a topic's partition count.
	Partitions(name string) (int, error)
	// Publish appends one message; PublishBatch a batch of (key, value)
	// pairs; PublishValues a key-less batch without materializing
	// results. All block in modeled time under backpressure and fences.
	Publish(ctx context.Context, topic string, key, value []byte) (Message, error)
	PublishBatch(ctx context.Context, topic string, kvs [][2][]byte) ([]Message, error)
	PublishValues(ctx context.Context, topic string, values [][]byte) error
	// Fetch long-polls one partition; FetchOrWait is the multi-partition
	// consumer hot path (see Broker.FetchOrWait for the full contract).
	// Both return *OffsetOutOfRangeError for offsets below the retention
	// floor.
	Fetch(ctx context.Context, topic string, partition int, offset int64, max int) ([]Message, error)
	FetchOrWait(ctx context.Context, topic string, parts []int, offsets []int64, start, max int) (int, []Message, error)
	// Commit acknowledges consumption through an offset (monotone);
	// Committed and EndOffset read the partition's marks.
	Commit(topic string, partition int, through int64) error
	Committed(topic string, partition int) (int64, error)
	EndOffset(topic string, partition int) (int64, error)
	// Close rejects further operations and wakes everything parked.
	Close()
}

var (
	_ Bus = (*Broker)(nil)
	_ Bus = (*Cluster)(nil)
)
