package streaming

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"gopilot/internal/core"
	"gopilot/internal/saga"
	"gopilot/internal/vclock"
)

func fastClock() *vclock.Scaled { return vclock.NewScaled(2000) }

func newBroker(clock *vclock.Scaled) *Broker {
	return NewBroker(BrokerConfig{
		Name:         "b",
		AppendCost:   time.Millisecond, // 1000 msg/s per partition
		FetchLatency: time.Millisecond,
		Clock:        clock,
	})
}

func TestCreateTopicAndPartitions(t *testing.T) {
	b := newBroker(fastClock())
	defer b.Close()
	if err := b.CreateTopic("t", 4); err != nil {
		t.Fatal(err)
	}
	n, err := b.Partitions("t")
	if err != nil || n != 4 {
		t.Fatalf("Partitions = %d %v", n, err)
	}
	// Idempotent with same count, conflict with different count.
	if err := b.CreateTopic("t", 4); err != nil {
		t.Fatal(err)
	}
	if err := b.CreateTopic("t", 8); err == nil {
		t.Fatal("conflicting partition count accepted")
	}
	if err := b.CreateTopic("z", 0); err == nil {
		t.Fatal("zero partitions accepted")
	}
}

func TestPublishFetchRoundTrip(t *testing.T) {
	b := newBroker(fastClock())
	defer b.Close()
	b.CreateTopic("t", 1)
	m, err := b.Publish(context.Background(), "t", []byte("k"), []byte("v"))
	if err != nil {
		t.Fatal(err)
	}
	if m.Offset != 0 || m.Partition != 0 {
		t.Fatalf("msg = %+v", m)
	}
	got, err := b.Fetch(context.Background(), "t", 0, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || string(got[0].Value) != "v" {
		t.Fatalf("fetch = %+v", got)
	}
}

func TestPerPartitionOrdering(t *testing.T) {
	b := newBroker(fastClock())
	defer b.Close()
	b.CreateTopic("t", 2)
	key := []byte("same-key")
	for i := 0; i < 20; i++ {
		b.Publish(context.Background(), "t", key, []byte{byte(i)})
	}
	p := partitionOf(key, 2)
	msgs, err := b.Fetch(context.Background(), "t", p, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 20 {
		t.Fatalf("got %d messages, want 20", len(msgs))
	}
	for i, m := range msgs {
		if int(m.Value[0]) != i || m.Offset != int64(i) {
			t.Fatalf("ordering violated at %d: %+v", i, m)
		}
	}
}

func TestKeylessPublishesSpreadRoundRobin(t *testing.T) {
	b := newBroker(fastClock())
	defer b.Close()
	b.CreateTopic("t", 4)
	counts := make(map[int]int)
	for i := 0; i < 16; i++ {
		m, err := b.Publish(context.Background(), "t", nil, []byte("x"))
		if err != nil {
			t.Fatal(err)
		}
		counts[m.Partition]++
	}
	for p := 0; p < 4; p++ {
		if counts[p] != 4 {
			t.Fatalf("partition %d got %d messages, want 4 (%v)", p, counts[p], counts)
		}
	}
}

func TestFetchLongPollWakesOnPublish(t *testing.T) {
	b := newBroker(fastClock())
	defer b.Close()
	b.CreateTopic("t", 1)
	got := make(chan []Message, 1)
	go func() {
		msgs, err := b.Fetch(context.Background(), "t", 0, 0, 10)
		if err != nil {
			t.Error(err)
		}
		got <- msgs
	}()
	time.Sleep(20 * time.Millisecond)
	b.Publish(context.Background(), "t", nil, []byte("wake"))
	select {
	case msgs := <-got:
		if len(msgs) != 1 || string(msgs[0].Value) != "wake" {
			t.Fatalf("msgs = %+v", msgs)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("long poll never woke")
	}
}

func TestFetchAfterCloseReturnsError(t *testing.T) {
	b := newBroker(fastClock())
	b.CreateTopic("t", 1)
	errCh := make(chan error, 1)
	go func() {
		_, err := b.Fetch(context.Background(), "t", 0, 0, 10)
		errCh <- err
	}()
	time.Sleep(20 * time.Millisecond)
	b.Close()
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrBrokerClosed) {
			t.Fatalf("err = %v, want ErrBrokerClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("fetch never returned after close")
	}
}

func TestUnknownTopicErrors(t *testing.T) {
	b := newBroker(fastClock())
	defer b.Close()
	if _, err := b.Publish(context.Background(), "ghost", nil, nil); !errors.Is(err, ErrUnknownTopic) {
		t.Fatalf("err = %v", err)
	}
	if _, err := b.Fetch(context.Background(), "ghost", 0, 0, 1); !errors.Is(err, ErrUnknownTopic) {
		t.Fatalf("err = %v", err)
	}
	if _, err := b.EndOffset("ghost", 0); !errors.Is(err, ErrUnknownTopic) {
		t.Fatalf("err = %v", err)
	}
}

func TestAppendCostThrottlesProducer(t *testing.T) {
	// Virtual clock: modeled durations are exact, so the rate assertions
	// cannot be eroded by wall-clock noise under instrumentation or
	// oversubscribed GOMAXPROCS.
	clock := vclock.NewVirtual(vclock.Epoch)
	clock.Adopt()
	defer clock.Leave()
	b := NewBroker(BrokerConfig{AppendCost: 10 * time.Millisecond, FetchLatency: time.Millisecond, Clock: clock})
	defer b.Close()
	b.CreateTopic("t", 1)
	start := clock.Now()
	// 400 messages at 10ms each = 4s modeled on a single partition.
	rate, err := Produce(context.Background(), b, "t", 400, 0, []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := clock.Since(start); elapsed != 4*time.Second {
		t.Errorf("elapsed = %v, want exactly 4s (throttled)", elapsed)
	}
	if rate != 100 {
		t.Errorf("achieved rate = %g msg/s, want exactly 100 (single partition cap)", rate)
	}
}

func TestMorePartitionsRaiseCapacity(t *testing.T) {
	clock := vclock.NewVirtual(vclock.Epoch)
	clock.Adopt()
	defer clock.Leave()
	b := NewBroker(BrokerConfig{AppendCost: 10 * time.Millisecond, FetchLatency: time.Millisecond, Clock: clock})
	defer b.Close()
	b.CreateTopic("one", 1)
	b.CreateTopic("four", 4)
	r1, err := Produce(context.Background(), b, "one", 400, 0, []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	r4, err := Produce(context.Background(), b, "four", 400, 0, []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if r4 < 3.9*r1 {
		t.Errorf("4-partition rate %.0f not ≈4x 1-partition rate %.0f", r4, r1)
	}
}

func newStreamEnv(t *testing.T, clock *vclock.Scaled, cores int) *core.Manager {
	t.Helper()
	reg := saga.NewRegistry()
	reg.Register(saga.NewLocalService("sp", cores, clock))
	mgr := core.NewManager(core.Config{Registry: reg, Clock: clock})
	t.Cleanup(mgr.Close)
	p, err := mgr.SubmitPilot(core.PilotDescription{Resource: "local://sp", Cores: cores})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for p.State() != core.PilotRunning {
		if time.Now().After(deadline) {
			t.Fatal("pilot never started")
		}
		time.Sleep(time.Millisecond)
	}
	return mgr
}

func TestProcessorConsumesAll(t *testing.T) {
	clock := fastClock()
	b := newBroker(clock)
	defer b.Close()
	b.CreateTopic("t", 4)
	mgr := newStreamEnv(t, clock, 8)

	var mu sync.Mutex
	seen := map[string]bool{}
	proc, err := StartProcessor(context.Background(), mgr, b, ProcessorConfig{
		Name: "p", Topic: "t", Workers: 2,
		Handler: func(_ context.Context, _ core.TaskContext, m Message) error {
			mu.Lock()
			seen[string(m.Value)] = true
			mu.Unlock()
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	const n = 100
	for i := 0; i < n; i++ {
		if _, err := b.Publish(context.Background(), "t", nil, []byte(fmt.Sprintf("m%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := proc.WaitProcessed(ctx, n); err != nil {
		t.Fatalf("processed %d of %d: %v", proc.Processed(), n, err)
	}
	proc.Stop()
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != n {
		t.Fatalf("distinct messages = %d, want %d", len(seen), n)
	}
	if proc.Throughput() <= 0 {
		t.Error("throughput not measured")
	}
	if proc.LatencyStats().N != n {
		t.Errorf("latency samples = %d, want %d", proc.LatencyStats().N, n)
	}
}

func TestProcessorLatencyGrowsWithSlowHandler(t *testing.T) {
	clock := fastClock()
	b := newBroker(clock)
	defer b.Close()
	b.CreateTopic("t", 1)
	mgr := newStreamEnv(t, clock, 2)

	proc, err := StartProcessor(context.Background(), mgr, b, ProcessorConfig{
		Topic: "t", Workers: 1,
		Handler: func(ctx context.Context, tc core.TaskContext, _ Message) error {
			tc.Sleep(ctx, 50*time.Millisecond) // slower than arrival
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		b.Publish(context.Background(), "t", nil, []byte("x"))
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := proc.WaitProcessed(ctx, 50); err != nil {
		t.Fatal(err)
	}
	proc.Stop()
	lat := proc.LatencyStats()
	// Later messages queue behind earlier ones: p95 must exceed median.
	if lat.P95 <= lat.Median {
		t.Errorf("latency did not grow under backlog: median=%g p95=%g", lat.Median, lat.P95)
	}
}

func TestProcessorValidation(t *testing.T) {
	clock := fastClock()
	b := newBroker(clock)
	defer b.Close()
	b.CreateTopic("t", 1)
	mgr := newStreamEnv(t, clock, 2)
	if _, err := StartProcessor(context.Background(), mgr, b, ProcessorConfig{Topic: "t"}); err == nil {
		t.Error("nil handler accepted")
	}
	if _, err := StartProcessor(context.Background(), mgr, b, ProcessorConfig{Topic: "ghost", Handler: func(context.Context, core.TaskContext, Message) error { return nil }}); err == nil {
		t.Error("unknown topic accepted")
	}
}

func TestWindowTumbles(t *testing.T) {
	var mu sync.Mutex
	var flushed [][]Message
	w := NewWindow(time.Minute, func(_ time.Time, msgs []Message) {
		mu.Lock()
		flushed = append(flushed, msgs)
		mu.Unlock()
	})
	base := time.Date(2020, 3, 25, 12, 0, 0, 0, time.UTC)
	w.Add(Message{Published: base.Add(10 * time.Second)})
	w.Add(Message{Published: base.Add(30 * time.Second)})
	w.Add(Message{Published: base.Add(70 * time.Second)}) // next window → flush first
	mu.Lock()
	if len(flushed) != 1 || len(flushed[0]) != 2 {
		t.Fatalf("flushed = %v", flushed)
	}
	mu.Unlock()
	w.Flush()
	mu.Lock()
	defer mu.Unlock()
	if len(flushed) != 2 || len(flushed[1]) != 1 {
		t.Fatalf("flushed after Flush = %v", flushed)
	}
}

func TestWindowPanicsOnBadWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewWindow(0, func(time.Time, []Message) {})
}

func TestProduceAtRate(t *testing.T) {
	clock := fastClock()
	b := NewBroker(BrokerConfig{AppendCost: 100 * time.Microsecond, FetchLatency: time.Millisecond, Clock: clock})
	defer b.Close()
	b.CreateTopic("t", 4)
	rate, err := Produce(context.Background(), b, "t", 200, 100, []byte("x")) // 100 msg/s target
	if err != nil {
		t.Fatal(err)
	}
	if rate > 150 {
		t.Errorf("achieved rate %.0f exceeds 100 msg/s target by too much", rate)
	}
}

// TestFetchSegmentBoundaries covers the segmented log: a fetch never
// crosses a segment, so consumers see at most SegmentSize messages per
// view and loop across boundaries without losing order.
func TestFetchSegmentBoundaries(t *testing.T) {
	b := NewBroker(BrokerConfig{
		AppendCost: time.Microsecond, FetchLatency: time.Microsecond,
		SegmentSize: 4, Clock: fastClock(),
	})
	defer b.Close()
	b.CreateTopic("t", 1)
	for i := 0; i < 10; i++ {
		if _, err := b.Publish(context.Background(), "t", nil, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	var got []byte
	var off int64
	for _, wantLen := range []int{4, 4, 2} {
		batch, err := b.Fetch(context.Background(), "t", 0, off, 100)
		if err != nil {
			t.Fatal(err)
		}
		if len(batch) != wantLen {
			t.Fatalf("fetch at %d returned %d messages, want %d (segment bound)", off, len(batch), wantLen)
		}
		for _, m := range batch {
			if m.Offset != off {
				t.Fatalf("offset %d out of order (want %d)", m.Offset, off)
			}
			got = append(got, m.Value[0])
			off++
		}
	}
	for i, v := range got {
		if int(v) != i {
			t.Fatalf("value order violated at %d: %v", i, got)
		}
	}
}

// TestFetchViewStableWhileAppending pins the zero-copy contract: a view
// returned by Fetch stays valid and immutable while the producer keeps
// appending into the same segment, and appending to the view cannot
// clobber the log.
func TestFetchViewStableWhileAppending(t *testing.T) {
	b := NewBroker(BrokerConfig{
		AppendCost: time.Microsecond, FetchLatency: time.Microsecond,
		SegmentSize: 8, Clock: fastClock(),
	})
	defer b.Close()
	b.CreateTopic("t", 1)
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		b.Publish(ctx, "t", nil, []byte{byte(i)})
	}
	view, err := b.Fetch(ctx, "t", 0, 0, 100)
	if err != nil || len(view) != 3 {
		t.Fatalf("view = %d msgs, %v", len(view), err)
	}
	// Appends land in the same segment, behind the view.
	for i := 3; i < 5; i++ {
		b.Publish(ctx, "t", nil, []byte{byte(i)})
	}
	// A consumer appending to its batch must not write into the log.
	_ = append(view, Message{Value: []byte{99}})
	if len(view) != 3 {
		t.Fatalf("view length changed: %d", len(view))
	}
	for i, m := range view {
		if int(m.Value[0]) != i {
			t.Fatalf("view mutated at %d: %v", i, m.Value)
		}
	}
	all, err := b.Fetch(ctx, "t", 0, 0, 100)
	if err != nil || len(all) != 5 {
		t.Fatalf("full fetch = %d msgs, %v", len(all), err)
	}
	for i, m := range all {
		if int(m.Value[0]) != i {
			t.Fatalf("log clobbered at %d: got %v", i, m.Value)
		}
	}
}

// TestFetchOrWaitChargesLatencyOnce is the empty-poll regression test:
// one FetchOrWait charges the long-poll RTT exactly once, whether data
// was ready or the poll had to park. Before the combined call, a parked
// consumer paid FetchLatency again after waking (WaitAny then Fetch),
// inflating modeled end-to-end latency by one RTT on every empty poll.
func TestFetchOrWaitChargesLatencyOnce(t *testing.T) {
	clock := vclock.NewVirtual(vclock.Epoch)
	clock.Adopt()
	defer clock.Leave()
	const (
		appendCost = 2 * time.Millisecond
		fetchRTT   = 3 * time.Millisecond
	)
	b := NewBroker(BrokerConfig{AppendCost: appendCost, FetchLatency: fetchRTT, Clock: clock})
	defer b.Close()
	b.CreateTopic("t", 1)
	ctx := context.Background()

	// Data already available: delivery = publish + append + one RTT.
	m0, err := b.Publish(ctx, "t", nil, []byte("ready"))
	if err != nil {
		t.Fatal(err)
	}
	_, batch, err := b.FetchOrWait(ctx, "t", []int{0}, []int64{0}, 0, 10)
	if err != nil || len(batch) != 1 {
		t.Fatalf("ready poll = %d msgs, %v", len(batch), err)
	}
	deliveredAt := clock.Now()
	if want := m0.Published.Add(appendCost + fetchRTT); !deliveredAt.Equal(want) {
		t.Fatalf("ready-path delivery at %v, want %v (exactly one RTT)", deliveredAt, want)
	}

	// Empty poll: the consumer parks with its RTT already paid, so a
	// message arriving while parked is delivered at its arrival instant —
	// zero extra charge.
	var gotPublished, gotDelivered time.Time
	done := vclock.NewEvent(clock)
	vclock.Go(clock, func() {
		defer done.Fire()
		_, batch, err := b.FetchOrWait(ctx, "t", []int{0}, []int64{1}, 0, 10)
		if err != nil || len(batch) != 1 {
			t.Errorf("parked poll = %d msgs, %v", len(batch), err)
			return
		}
		gotPublished = batch[0].Published
		gotDelivered = clock.Now()
	})
	// Publish well after the poll parked (the RTT ends before this).
	if !clock.Sleep(ctx, 10*time.Millisecond) {
		t.Fatal("driver sleep canceled")
	}
	m1, err := b.Publish(ctx, "t", nil, []byte("late"))
	if err != nil {
		t.Fatal(err)
	}
	if !done.Wait(ctx) {
		t.Fatal("parked poll never returned")
	}
	if !gotPublished.Equal(m1.Published) {
		t.Fatalf("parked poll saw Published %v, want %v", gotPublished, m1.Published)
	}
	if !gotDelivered.Equal(m1.Published) {
		t.Fatalf("parked poll delivered at %v, want the arrival instant %v (no second RTT)", gotDelivered, m1.Published)
	}
}

// TestKeylessPlacementDeterministicAcrossProducers pins the round-robin
// cursor contract: with two producers interleaving key-less publishes on
// the virtual clock, every (producer, sequence) → (partition, offset)
// placement is bit-identical across same-seed runs.
func TestKeylessPlacementDeterministicAcrossProducers(t *testing.T) {
	run := func() string {
		clock := vclock.NewVirtual(vclock.Epoch)
		clock.Adopt()
		defer clock.Leave()
		b := NewBroker(BrokerConfig{AppendCost: time.Millisecond, FetchLatency: time.Millisecond, Clock: clock})
		defer b.Close()
		b.CreateTopic("t", 4)
		placements := make([][]string, 2)
		wg := vclock.NewGroup(clock)
		for pr := 0; pr < 2; pr++ {
			pr := pr
			wg.Add(1)
			vclock.Go(clock, func() {
				defer wg.Done()
				for i := 0; i < 20; i++ {
					m, err := b.Publish(context.Background(), "t", nil, []byte{byte(pr), byte(i)})
					if err != nil {
						t.Error(err)
						return
					}
					placements[pr] = append(placements[pr], fmt.Sprintf("p%d.%d->%d@%d", pr, i, m.Partition, m.Offset))
				}
			})
		}
		wg.Wait()
		return strings.Join(placements[0], " ") + " | " + strings.Join(placements[1], " ")
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same-seed key-less placement diverged:\n%s\n%s", a, b)
	}
}

// TestWaitAnyWakesAcrossPartitions keeps the bare scheduling hook
// honest: a WaitAny over several partitions wakes on a publish to any of
// them and charges nothing.
func TestWaitAnyWakesAcrossPartitions(t *testing.T) {
	clock := vclock.NewVirtual(vclock.Epoch)
	clock.Adopt()
	defer clock.Leave()
	b := NewBroker(BrokerConfig{AppendCost: time.Millisecond, FetchLatency: time.Millisecond, Clock: clock})
	defer b.Close()
	b.CreateTopic("t", 3)
	woke := vclock.NewEvent(clock)
	var wokeAt time.Time
	vclock.Go(clock, func() {
		defer woke.Fire()
		ok, err := b.WaitAny(context.Background(), "t", []int{0, 1, 2}, []int64{0, 0, 0})
		if !ok || err != nil {
			t.Errorf("WaitAny = %v, %v", ok, err)
			return
		}
		wokeAt = clock.Now()
	})
	if !clock.Sleep(context.Background(), 5*time.Millisecond) {
		t.Fatal("driver sleep canceled")
	}
	m, err := b.Publish(context.Background(), "t", []byte("key-to-some-partition"), []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if !woke.Wait(context.Background()) {
		t.Fatal("WaitAny never woke")
	}
	if !wokeAt.Equal(m.Published) {
		t.Errorf("WaitAny woke at %v, want the publish instant %v (no charge)", wokeAt, m.Published)
	}
}

// benchDataPlane pushes 100k messages through a 4-partition topic and
// drains them, either through the batched zero-copy path (PublishValues +
// view fetches) or the naive per-message-copy path (per-message Publish,
// consumer copying every batch). The allocs/op gap between the two is the
// number BENCH_baseline.json's allocs_per_op gate locks in.
func benchDataPlane(b *testing.B, naive bool) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		clock := vclock.NewVirtual(vclock.Epoch)
		clock.Adopt()
		br := NewBroker(BrokerConfig{AppendCost: 10 * time.Microsecond, FetchLatency: time.Millisecond, Clock: clock})
		br.CreateTopic("t", 4)
		const n = 100_000
		payload := make([]byte, 64)
		ctx := context.Background()
		if naive {
			for j := 0; j < n; j++ {
				if _, err := br.Publish(ctx, "t", nil, payload); err != nil {
					b.Fatal(err)
				}
			}
		} else {
			values := make([][]byte, 1024)
			for j := range values {
				values[j] = payload
			}
			for sent := 0; sent < n; {
				k := len(values)
				if n-sent < k {
					k = n - sent
				}
				if err := br.PublishValues(ctx, "t", values[:k]); err != nil {
					b.Fatal(err)
				}
				sent += k
			}
		}
		total := 0
		for q := 0; q < 4; q++ {
			end, _ := br.EndOffset("t", q)
			var off int64
			for off < end {
				batch, err := br.Fetch(ctx, "t", q, off, 1024)
				if err != nil {
					b.Fatal(err)
				}
				if naive {
					batch = append([]Message(nil), batch...)
				}
				total += len(batch)
				off += int64(len(batch))
			}
		}
		br.Close()
		clock.Leave()
		if total != n {
			b.Fatalf("drained %d of %d", total, n)
		}
	}
}

// BenchmarkDataPlaneZeroCopy is the batched zero-copy hot path.
func BenchmarkDataPlaneZeroCopy(b *testing.B) { benchDataPlane(b, false) }

// BenchmarkDataPlaneNaivePerMessage is the per-message-copy baseline the
// zero-copy win is measured against.
func BenchmarkDataPlaneNaivePerMessage(b *testing.B) { benchDataPlane(b, true) }

// pureHandlerRun drives one full produce→process cycle on a fresh Virtual
// clock with PureHandler set (real CPU per message) and fingerprints every
// externally visible measurement.
func pureHandlerRun(t *testing.T) string {
	t.Helper()
	clock := vclock.NewVirtual(vclock.Epoch)
	clock.Adopt()
	defer clock.Leave()
	b := NewBroker(BrokerConfig{
		Name: "b", AppendCost: time.Millisecond, FetchLatency: time.Millisecond, Clock: clock,
	})
	defer b.Close()
	if err := b.CreateTopic("t", 4); err != nil {
		t.Fatal(err)
	}
	reg := saga.NewRegistry()
	reg.Register(saga.NewLocalService("lh", 32, clock))
	mgr := core.NewManager(core.Config{Registry: reg, Clock: clock})
	defer mgr.Close()
	if _, err := mgr.SubmitPilot(core.PilotDescription{Resource: "local://lh", Cores: 8}); err != nil {
		t.Fatal(err)
	}
	proc, err := StartProcessor(context.Background(), mgr, b, ProcessorConfig{
		Name: "p", Topic: "t", Workers: 4, BatchSize: 8,
		CostPerMessage: 2 * time.Millisecond,
		PureHandler:    true,
		Handler: func(_ context.Context, _ core.TaskContext, m Message) error {
			acc := uint64(len(m.Value)) // real CPU, pure
			for i := 0; i < 20_000; i++ {
				acc = acc*6364136223846793005 + 1442695040888963407
			}
			if acc == 42 { // keep the loop alive
				return errors.New("unreachable")
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	const n = 200
	if _, err := Produce(context.Background(), b, "t", n, 0, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := proc.WaitProcessed(ctx, n); err != nil {
		t.Fatalf("processed %d/%d: %v", proc.Processed(), n, err)
	}
	proc.Stop()
	lat := proc.LatencyStats()
	return fmt.Sprintf("processed=%d tput=%.6f lat{mean=%.9f p50=%.9f p95=%.9f max=%.9f}",
		proc.Processed(), proc.Throughput(), lat.Mean, lat.Median, lat.P95, lat.Max)
}

// TestPureHandlerDeterministicOnVirtualClock pins the compute-phase
// contract at the streaming layer: batches processed as parallel compute
// phases (real CPU, wall-time-racy completion) must leave throughput and
// every latency quantile bit-identical across runs.
func TestPureHandlerDeterministicOnVirtualClock(t *testing.T) {
	a := pureHandlerRun(t)
	for i := 0; i < 4; i++ {
		if b := pureHandlerRun(t); b != a {
			t.Fatalf("run %d diverged:\n%s\n%s", i+2, a, b)
		}
	}
}
