package streaming

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"gopilot/internal/core"
	"gopilot/internal/saga"
	"gopilot/internal/vclock"
)

func fastClock() *vclock.Scaled { return vclock.NewScaled(2000) }

func newBroker(clock *vclock.Scaled) *Broker {
	return NewBroker(BrokerConfig{
		Name:         "b",
		AppendCost:   time.Millisecond, // 1000 msg/s per partition
		FetchLatency: time.Millisecond,
		Clock:        clock,
	})
}

func TestCreateTopicAndPartitions(t *testing.T) {
	b := newBroker(fastClock())
	defer b.Close()
	if err := b.CreateTopic("t", 4); err != nil {
		t.Fatal(err)
	}
	n, err := b.Partitions("t")
	if err != nil || n != 4 {
		t.Fatalf("Partitions = %d %v", n, err)
	}
	// Idempotent with same count, conflict with different count.
	if err := b.CreateTopic("t", 4); err != nil {
		t.Fatal(err)
	}
	if err := b.CreateTopic("t", 8); err == nil {
		t.Fatal("conflicting partition count accepted")
	}
	if err := b.CreateTopic("z", 0); err == nil {
		t.Fatal("zero partitions accepted")
	}
}

func TestPublishFetchRoundTrip(t *testing.T) {
	b := newBroker(fastClock())
	defer b.Close()
	b.CreateTopic("t", 1)
	m, err := b.Publish(context.Background(), "t", []byte("k"), []byte("v"))
	if err != nil {
		t.Fatal(err)
	}
	if m.Offset != 0 || m.Partition != 0 {
		t.Fatalf("msg = %+v", m)
	}
	got, err := b.Fetch(context.Background(), "t", 0, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || string(got[0].Value) != "v" {
		t.Fatalf("fetch = %+v", got)
	}
}

func TestPerPartitionOrdering(t *testing.T) {
	b := newBroker(fastClock())
	defer b.Close()
	b.CreateTopic("t", 2)
	key := []byte("same-key")
	for i := 0; i < 20; i++ {
		b.Publish(context.Background(), "t", key, []byte{byte(i)})
	}
	p := partitionOf(key, 2)
	msgs, err := b.Fetch(context.Background(), "t", p, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 20 {
		t.Fatalf("got %d messages, want 20", len(msgs))
	}
	for i, m := range msgs {
		if int(m.Value[0]) != i || m.Offset != int64(i) {
			t.Fatalf("ordering violated at %d: %+v", i, m)
		}
	}
}

func TestKeylessPublishesSpreadRoundRobin(t *testing.T) {
	b := newBroker(fastClock())
	defer b.Close()
	b.CreateTopic("t", 4)
	counts := make(map[int]int)
	for i := 0; i < 16; i++ {
		m, err := b.Publish(context.Background(), "t", nil, []byte("x"))
		if err != nil {
			t.Fatal(err)
		}
		counts[m.Partition]++
	}
	for p := 0; p < 4; p++ {
		if counts[p] != 4 {
			t.Fatalf("partition %d got %d messages, want 4 (%v)", p, counts[p], counts)
		}
	}
}

func TestFetchLongPollWakesOnPublish(t *testing.T) {
	b := newBroker(fastClock())
	defer b.Close()
	b.CreateTopic("t", 1)
	got := make(chan []Message, 1)
	go func() {
		msgs, err := b.Fetch(context.Background(), "t", 0, 0, 10)
		if err != nil {
			t.Error(err)
		}
		got <- msgs
	}()
	time.Sleep(20 * time.Millisecond)
	b.Publish(context.Background(), "t", nil, []byte("wake"))
	select {
	case msgs := <-got:
		if len(msgs) != 1 || string(msgs[0].Value) != "wake" {
			t.Fatalf("msgs = %+v", msgs)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("long poll never woke")
	}
}

func TestFetchAfterCloseReturnsError(t *testing.T) {
	b := newBroker(fastClock())
	b.CreateTopic("t", 1)
	errCh := make(chan error, 1)
	go func() {
		_, err := b.Fetch(context.Background(), "t", 0, 0, 10)
		errCh <- err
	}()
	time.Sleep(20 * time.Millisecond)
	b.Close()
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrBrokerClosed) {
			t.Fatalf("err = %v, want ErrBrokerClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("fetch never returned after close")
	}
}

func TestUnknownTopicErrors(t *testing.T) {
	b := newBroker(fastClock())
	defer b.Close()
	if _, err := b.Publish(context.Background(), "ghost", nil, nil); !errors.Is(err, ErrUnknownTopic) {
		t.Fatalf("err = %v", err)
	}
	if _, err := b.Fetch(context.Background(), "ghost", 0, 0, 1); !errors.Is(err, ErrUnknownTopic) {
		t.Fatalf("err = %v", err)
	}
	if _, err := b.EndOffset("ghost", 0); !errors.Is(err, ErrUnknownTopic) {
		t.Fatalf("err = %v", err)
	}
}

func TestAppendCostThrottlesProducer(t *testing.T) {
	// Moderate factor: modeled durations must dominate wall-clock noise
	// when we assert on achieved rates.
	clock := vclock.NewScaled(100)
	b := NewBroker(BrokerConfig{AppendCost: 10 * time.Millisecond, FetchLatency: time.Millisecond, Clock: clock})
	defer b.Close()
	b.CreateTopic("t", 1)
	start := clock.Now()
	// 400 messages at 10ms each ≈ 4s modeled on a single partition.
	rate, err := Produce(context.Background(), b, "t", 400, 0, []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	elapsed := clock.Since(start)
	if elapsed < 2*time.Second {
		t.Errorf("elapsed = %v, want ≈4s (throttled)", elapsed)
	}
	if rate > 150 {
		t.Errorf("achieved rate = %g msg/s, want ≈100 (single partition cap)", rate)
	}
}

func TestMorePartitionsRaiseCapacity(t *testing.T) {
	clock := vclock.NewScaled(100)
	b := NewBroker(BrokerConfig{AppendCost: 10 * time.Millisecond, FetchLatency: time.Millisecond, Clock: clock})
	defer b.Close()
	b.CreateTopic("one", 1)
	b.CreateTopic("four", 4)
	r1, err := Produce(context.Background(), b, "one", 400, 0, []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	r4, err := Produce(context.Background(), b, "four", 400, 0, []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if r4 < 2*r1 {
		t.Errorf("4-partition rate %.0f not ≫ 1-partition rate %.0f", r4, r1)
	}
}

func newStreamEnv(t *testing.T, clock *vclock.Scaled, cores int) *core.Manager {
	t.Helper()
	reg := saga.NewRegistry()
	reg.Register(saga.NewLocalService("sp", cores, clock))
	mgr := core.NewManager(core.Config{Registry: reg, Clock: clock})
	t.Cleanup(mgr.Close)
	p, err := mgr.SubmitPilot(core.PilotDescription{Resource: "local://sp", Cores: cores})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for p.State() != core.PilotRunning {
		if time.Now().After(deadline) {
			t.Fatal("pilot never started")
		}
		time.Sleep(time.Millisecond)
	}
	return mgr
}

func TestProcessorConsumesAll(t *testing.T) {
	clock := fastClock()
	b := newBroker(clock)
	defer b.Close()
	b.CreateTopic("t", 4)
	mgr := newStreamEnv(t, clock, 8)

	var mu sync.Mutex
	seen := map[string]bool{}
	proc, err := StartProcessor(context.Background(), mgr, b, ProcessorConfig{
		Name: "p", Topic: "t", Workers: 2,
		Handler: func(_ context.Context, _ core.TaskContext, m Message) error {
			mu.Lock()
			seen[string(m.Value)] = true
			mu.Unlock()
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	const n = 100
	for i := 0; i < n; i++ {
		if _, err := b.Publish(context.Background(), "t", nil, []byte(fmt.Sprintf("m%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := proc.WaitProcessed(ctx, n); err != nil {
		t.Fatalf("processed %d of %d: %v", proc.Processed(), n, err)
	}
	proc.Stop()
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != n {
		t.Fatalf("distinct messages = %d, want %d", len(seen), n)
	}
	if proc.Throughput() <= 0 {
		t.Error("throughput not measured")
	}
	if proc.LatencyStats().N != n {
		t.Errorf("latency samples = %d, want %d", proc.LatencyStats().N, n)
	}
}

func TestProcessorLatencyGrowsWithSlowHandler(t *testing.T) {
	clock := fastClock()
	b := newBroker(clock)
	defer b.Close()
	b.CreateTopic("t", 1)
	mgr := newStreamEnv(t, clock, 2)

	proc, err := StartProcessor(context.Background(), mgr, b, ProcessorConfig{
		Topic: "t", Workers: 1,
		Handler: func(ctx context.Context, tc core.TaskContext, _ Message) error {
			tc.Sleep(ctx, 50*time.Millisecond) // slower than arrival
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		b.Publish(context.Background(), "t", nil, []byte("x"))
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := proc.WaitProcessed(ctx, 50); err != nil {
		t.Fatal(err)
	}
	proc.Stop()
	lat := proc.LatencyStats()
	// Later messages queue behind earlier ones: p95 must exceed median.
	if lat.P95 <= lat.Median {
		t.Errorf("latency did not grow under backlog: median=%g p95=%g", lat.Median, lat.P95)
	}
}

func TestProcessorValidation(t *testing.T) {
	clock := fastClock()
	b := newBroker(clock)
	defer b.Close()
	b.CreateTopic("t", 1)
	mgr := newStreamEnv(t, clock, 2)
	if _, err := StartProcessor(context.Background(), mgr, b, ProcessorConfig{Topic: "t"}); err == nil {
		t.Error("nil handler accepted")
	}
	if _, err := StartProcessor(context.Background(), mgr, b, ProcessorConfig{Topic: "ghost", Handler: func(context.Context, core.TaskContext, Message) error { return nil }}); err == nil {
		t.Error("unknown topic accepted")
	}
}

func TestWindowTumbles(t *testing.T) {
	var mu sync.Mutex
	var flushed [][]Message
	w := NewWindow(time.Minute, func(_ time.Time, msgs []Message) {
		mu.Lock()
		flushed = append(flushed, msgs)
		mu.Unlock()
	})
	base := time.Date(2020, 3, 25, 12, 0, 0, 0, time.UTC)
	w.Add(Message{Published: base.Add(10 * time.Second)})
	w.Add(Message{Published: base.Add(30 * time.Second)})
	w.Add(Message{Published: base.Add(70 * time.Second)}) // next window → flush first
	mu.Lock()
	if len(flushed) != 1 || len(flushed[0]) != 2 {
		t.Fatalf("flushed = %v", flushed)
	}
	mu.Unlock()
	w.Flush()
	mu.Lock()
	defer mu.Unlock()
	if len(flushed) != 2 || len(flushed[1]) != 1 {
		t.Fatalf("flushed after Flush = %v", flushed)
	}
}

func TestWindowPanicsOnBadWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewWindow(0, func(time.Time, []Message) {})
}

func TestProduceAtRate(t *testing.T) {
	clock := fastClock()
	b := NewBroker(BrokerConfig{AppendCost: 100 * time.Microsecond, FetchLatency: time.Millisecond, Clock: clock})
	defer b.Close()
	b.CreateTopic("t", 4)
	rate, err := Produce(context.Background(), b, "t", 200, 100, []byte("x")) // 100 msg/s target
	if err != nil {
		t.Fatal(err)
	}
	if rate > 150 {
		t.Errorf("achieved rate %.0f exceeds 100 msg/s target by too much", rate)
	}
}

// pureHandlerRun drives one full produce→process cycle on a fresh Virtual
// clock with PureHandler set (real CPU per message) and fingerprints every
// externally visible measurement.
func pureHandlerRun(t *testing.T) string {
	t.Helper()
	clock := vclock.NewVirtual(vclock.Epoch)
	clock.Adopt()
	defer clock.Leave()
	b := NewBroker(BrokerConfig{
		Name: "b", AppendCost: time.Millisecond, FetchLatency: time.Millisecond, Clock: clock,
	})
	defer b.Close()
	if err := b.CreateTopic("t", 4); err != nil {
		t.Fatal(err)
	}
	reg := saga.NewRegistry()
	reg.Register(saga.NewLocalService("lh", 32, clock))
	mgr := core.NewManager(core.Config{Registry: reg, Clock: clock})
	defer mgr.Close()
	if _, err := mgr.SubmitPilot(core.PilotDescription{Resource: "local://lh", Cores: 8}); err != nil {
		t.Fatal(err)
	}
	proc, err := StartProcessor(context.Background(), mgr, b, ProcessorConfig{
		Name: "p", Topic: "t", Workers: 4, BatchSize: 8,
		CostPerMessage: 2 * time.Millisecond,
		PureHandler:    true,
		Handler: func(_ context.Context, _ core.TaskContext, m Message) error {
			acc := uint64(len(m.Value)) // real CPU, pure
			for i := 0; i < 20_000; i++ {
				acc = acc*6364136223846793005 + 1442695040888963407
			}
			if acc == 42 { // keep the loop alive
				return errors.New("unreachable")
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	const n = 200
	if _, err := Produce(context.Background(), b, "t", n, 0, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := proc.WaitProcessed(ctx, n); err != nil {
		t.Fatalf("processed %d/%d: %v", proc.Processed(), n, err)
	}
	proc.Stop()
	lat := proc.LatencyStats()
	return fmt.Sprintf("processed=%d tput=%.6f lat{mean=%.9f p50=%.9f p95=%.9f max=%.9f}",
		proc.Processed(), proc.Throughput(), lat.Mean, lat.Median, lat.P95, lat.Max)
}

// TestPureHandlerDeterministicOnVirtualClock pins the compute-phase
// contract at the streaming layer: batches processed as parallel compute
// phases (real CPU, wall-time-racy completion) must leave throughput and
// every latency quantile bit-identical across runs.
func TestPureHandlerDeterministicOnVirtualClock(t *testing.T) {
	a := pureHandlerRun(t)
	for i := 0; i < 4; i++ {
		if b := pureHandlerRun(t); b != a {
			t.Fatalf("run %d diverged:\n%s\n%s", i+2, a, b)
		}
	}
}
