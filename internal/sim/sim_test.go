package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestEventsFireInTimeOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	e.After(3*time.Second, func(*Engine) { order = append(order, 3) })
	e.After(1*time.Second, func(*Engine) { order = append(order, 1) })
	e.After(2*time.Second, func(*Engine) { order = append(order, 2) })
	end := e.Run()
	if end != 3*time.Second {
		t.Fatalf("end = %v, want 3s", end)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestTieBreakIsFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(time.Second, func(*Engine) { order = append(order, i) })
	}
	e.Run()
	for i := range order {
		if order[i] != i {
			t.Fatalf("ties not FIFO: %v", order)
		}
	}
}

func TestChainedScheduling(t *testing.T) {
	e := NewEngine()
	count := 0
	var tick func(*Engine)
	tick = func(en *Engine) {
		count++
		if count < 5 {
			en.After(time.Second, tick)
		}
	}
	e.After(time.Second, tick)
	end := e.Run()
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
	if end != 5*time.Second {
		t.Fatalf("end = %v, want 5s", end)
	}
	if e.Processed() != 5 {
		t.Fatalf("Processed = %d, want 5", e.Processed())
	}
}

func TestRunUntilLeavesLaterEvents(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.After(time.Second, func(*Engine) { fired++ })
	e.After(10*time.Second, func(*Engine) { fired++ })
	e.RunUntil(5 * time.Second)
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if e.Now() != 5*time.Second {
		t.Fatalf("Now = %v, want 5s", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", e.Pending())
	}
	e.Run()
	if fired != 2 {
		t.Fatalf("fired = %d, want 2 after Run", fired)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := NewEngine()
	e.After(10*time.Second, func(en *Engine) {
		defer func() {
			if recover() == nil {
				t.Error("expected panic scheduling in the past")
			}
		}()
		en.At(time.Second, func(*Engine) {})
	})
	e.Run()
}

func TestNegativeAfterClamped(t *testing.T) {
	e := NewEngine()
	ran := false
	e.After(-time.Second, func(*Engine) { ran = true })
	e.Run()
	if !ran {
		t.Fatal("negative After did not run")
	}
}

// Property: for any set of non-negative delays, events fire in sorted order
// and the engine ends at the max delay.
func TestOrderProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEngine()
		var fired []time.Duration
		var maxD time.Duration
		for _, d := range delays {
			d := time.Duration(d) * time.Millisecond
			if d > maxD {
				maxD = d
			}
			e.At(d, func(en *Engine) { fired = append(fired, en.Now()) })
		}
		end := e.Run()
		if len(delays) > 0 && end != maxD {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(fired) == len(delays)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
