// Package sim implements a small deterministic discrete-event simulation
// (DES) kernel. gopilot uses it for the analytical side of the paper's
// model-vs-measurement comparisons (Section V.C): the same pilot scheduling
// policies that the concurrent runtime executes in scaled real time can be
// swept exactly — thousands of tasks, dozens of configurations — in
// microseconds, with fully reproducible event ordering.
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Event is a scheduled callback. Events with equal timestamps fire in
// scheduling order (FIFO tie-break), which makes runs deterministic.
type Event struct {
	at  time.Duration
	seq uint64
	fn  func(e *Engine)
}

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*Event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Engine is the DES event loop. The zero value is not usable; create one
// with NewEngine. Engines are single-threaded by design: all event handlers
// run on the caller of Run.
type Engine struct {
	now    time.Duration
	seq    uint64
	queue  eventQueue
	nEvent uint64
}

// NewEngine creates an empty simulation starting at virtual time zero.
func NewEngine() *Engine {
	e := &Engine{}
	heap.Init(&e.queue)
	return e
}

// Now returns the current virtual time (elapsed since simulation start).
func (e *Engine) Now() time.Duration { return e.now }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.nEvent }

// At schedules fn at absolute virtual time t. Scheduling in the past panics:
// it is always a modelling bug.
func (e *Engine) At(t time.Duration, fn func(*Engine)) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	e.seq++
	heap.Push(&e.queue, &Event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn d after the current virtual time. Negative d is
// clamped to zero.
func (e *Engine) After(d time.Duration, fn func(*Engine)) {
	if d < 0 {
		d = 0
	}
	e.At(e.now+d, fn)
}

// Run executes events until the queue is empty and returns the final
// virtual time.
func (e *Engine) Run() time.Duration {
	for e.queue.Len() > 0 {
		e.step()
	}
	return e.now
}

// RunUntil executes events with timestamps <= limit, leaving later events
// queued, and advances the clock to min(limit, last event time). It returns
// the virtual time after the run.
func (e *Engine) RunUntil(limit time.Duration) time.Duration {
	for e.queue.Len() > 0 && e.queue[0].at <= limit {
		e.step()
	}
	if e.now < limit {
		e.now = limit
	}
	return e.now
}

func (e *Engine) step() {
	ev := heap.Pop(&e.queue).(*Event)
	e.now = ev.at
	e.nEvent++
	ev.fn(e)
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return e.queue.Len() }
