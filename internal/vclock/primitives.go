package vclock

import (
	"context"
	"sync"
)

// This file provides the clock-aware synchronization primitives that the
// runtime layers (core, saga, infra, streaming) use instead of bare
// channels. On a *Virtual clock they participate in the executor's token
// handoff — a parked waiter is quiescent, and a waker makes waiters
// runnable *before* it can itself park, so virtual time never advances
// past a pending wake-up. On every other Clock they degrade to the plain
// channel behavior they replace.

// Go spawns fn as a participant of c when c is a Virtual clock, and as a
// plain goroutine otherwise. Every goroutine spawned by a component that
// sleeps or synchronizes on its clock must be started this way.
func Go(c Clock, fn func()) {
	if v, ok := c.(*Virtual); ok {
		v.Go(fn)
		return
	}
	go fn()
}

// Notifier is a level-triggered wake-up signal, the clock-aware
// replacement for the `make(chan struct{}, 1)` kick-channel idiom. Set
// never blocks; Wait returns true when signaled (waking every current
// waiter, who recheck their condition) and false when ctx is done.
type Notifier struct {
	v *Virtual

	mu      sync.Mutex
	set     bool
	waiters []*parker     // virtual-mode waiter list
	nwait   int           // non-virtual: waiters on the current generation
	gen     chan struct{} // non-virtual: closed (and replaced) per Set
}

// NewNotifier creates a Notifier for the given clock.
func NewNotifier(c Clock) *Notifier {
	n := &Notifier{}
	if v, ok := c.(*Virtual); ok {
		n.v = v
	}
	return n
}

// Set signals the notifier: every currently parked waiter becomes
// runnable; with no (live) waiter the signal is latched for the next Wait.
func (n *Notifier) Set() {
	if n.v == nil {
		n.mu.Lock()
		if n.nwait > 0 {
			close(n.gen) // broadcast to the whole generation
			n.gen = nil
			n.nwait = 0
		} else {
			n.set = true
		}
		n.mu.Unlock()
		return
	}
	n.mu.Lock()
	ws := n.waiters
	n.waiters = nil
	woke := false
	for _, w := range ws {
		if n.v.wake(w) {
			woke = true
		}
	}
	if !woke {
		n.set = true
	}
	n.mu.Unlock()
}

// Wait parks until the notifier is Set (true) or ctx is done (false). A
// canceled wait leaves any latched signal in place for other waiters.
func (n *Notifier) Wait(ctx context.Context) bool {
	if ctx.Err() != nil {
		return false
	}
	n.mu.Lock()
	if n.set {
		n.set = false
		n.mu.Unlock()
		return true
	}
	if n.v == nil {
		if n.gen == nil {
			n.gen = make(chan struct{})
		}
		ch := n.gen
		n.nwait++
		n.mu.Unlock()
		select {
		case <-ch:
			return true
		case <-ctx.Done():
			n.mu.Lock()
			if n.gen != ch {
				// Our generation was broadcast concurrently: signaled.
				n.mu.Unlock()
				return true
			}
			n.nwait--
			n.mu.Unlock()
			return false
		}
	}
	r := n.v.newParker(ctx)
	n.waiters = append(n.waiters, r)
	n.mu.Unlock()
	n.v.park(r)
	if n.v.await(r) {
		return true
	}
	n.mu.Lock()
	removeParker(&n.waiters, r)
	n.mu.Unlock()
	return false
}

// Event is a one-shot broadcast, the clock-aware replacement for the
// `close(done)` idiom. Fire is idempotent; Done exposes the underlying
// channel for legacy selects by code outside the scheduled world.
type Event struct {
	v *Virtual

	mu      sync.Mutex
	fired   bool
	waiters []*parker
	ch      chan struct{}
}

// NewEvent creates an Event for the given clock.
func NewEvent(c Clock) *Event {
	e := &Event{ch: make(chan struct{})}
	if v, ok := c.(*Virtual); ok {
		e.v = v
	}
	return e
}

// Fire marks the event and wakes every waiter. Safe to call repeatedly.
func (e *Event) Fire() {
	e.mu.Lock()
	if e.fired {
		e.mu.Unlock()
		return
	}
	e.fired = true
	ws := e.waiters
	e.waiters = nil
	close(e.ch)
	for _, w := range ws {
		e.v.wake(w)
	}
	e.mu.Unlock()
}

// Fired reports whether the event has fired.
func (e *Event) Fired() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.fired
}

// Done returns a channel closed when the event fires. Participants of a
// Virtual clock must use Wait instead of selecting on this channel.
func (e *Event) Done() <-chan struct{} { return e.ch }

// Wait parks until the event fires (true) or ctx is done (false).
func (e *Event) Wait(ctx context.Context) bool {
	if e.v == nil {
		select {
		case <-e.ch:
			return true
		case <-ctx.Done():
			return false
		}
	}
	e.mu.Lock()
	if e.fired {
		e.mu.Unlock()
		return ctx.Err() == nil
	}
	r := e.v.newParker(ctx)
	e.waiters = append(e.waiters, r)
	e.mu.Unlock()
	e.v.park(r)
	if e.v.await(r) {
		return true
	}
	e.mu.Lock()
	removeParker(&e.waiters, r)
	e.mu.Unlock()
	return false
}

// Group is a clock-aware sync.WaitGroup replacement for waiting out
// participant goroutines at teardown.
type Group struct {
	v *Virtual

	wg sync.WaitGroup // non-virtual fallback

	mu      sync.Mutex
	n       int
	waiters []*parker
}

// NewGroup creates a Group for the given clock.
func NewGroup(c Clock) *Group {
	g := &Group{}
	if v, ok := c.(*Virtual); ok {
		g.v = v
	}
	return g
}

// Add adds delta to the group counter.
func (g *Group) Add(delta int) {
	if g.v == nil {
		g.wg.Add(delta)
		return
	}
	g.mu.Lock()
	g.n += delta
	if g.n < 0 {
		g.mu.Unlock()
		panic("vclock: negative Group counter")
	}
	var ws []*parker
	if g.n == 0 {
		ws = g.waiters
		g.waiters = nil
	}
	g.mu.Unlock()
	for _, w := range ws {
		g.v.wake(w)
	}
}

// Done decrements the group counter.
func (g *Group) Done() { g.Add(-1) }

// Wait parks until the counter reaches zero.
func (g *Group) Wait() {
	if g.v == nil {
		g.wg.Wait()
		return
	}
	g.mu.Lock()
	if g.n == 0 {
		g.mu.Unlock()
		return
	}
	r := g.v.newParker(nil)
	g.waiters = append(g.waiters, r)
	g.mu.Unlock()
	g.v.park(r)
	g.v.await(r)
}

// Sem is a clock-aware counting semaphore (FIFO), the replacement for the
// `chan struct{}` slot-pool idiom.
type Sem struct {
	v   *Virtual
	cap int

	ch chan struct{} // non-virtual fallback

	mu      sync.Mutex
	held    int
	waiters []*parker
}

// NewSem creates a semaphore with n slots.
func NewSem(c Clock, n int) *Sem {
	s := &Sem{cap: n}
	if v, ok := c.(*Virtual); ok {
		s.v = v
	} else {
		s.ch = make(chan struct{}, n)
	}
	return s
}

// Acquire takes a slot, parking until one frees up; false means ctx ended
// first.
func (s *Sem) Acquire(ctx context.Context) bool {
	if s.v == nil {
		select {
		case s.ch <- struct{}{}:
			return true
		case <-ctx.Done():
			return false
		}
	}
	s.mu.Lock()
	if s.held < s.cap {
		if ctx.Err() != nil {
			// Do not take the slot: the caller treats false as
			// not-acquired and will never Release.
			s.mu.Unlock()
			return false
		}
		s.held++
		s.mu.Unlock()
		return true
	}
	r := s.v.newParker(ctx)
	s.waiters = append(s.waiters, r)
	s.mu.Unlock()
	s.v.park(r)
	if s.v.await(r) {
		// The releaser handed its slot directly to us.
		return true
	}
	s.mu.Lock()
	removeParker(&s.waiters, r)
	s.mu.Unlock()
	return false
}

// Release returns a slot, handing it to the longest-parked live waiter.
func (s *Sem) Release() {
	if s.v == nil {
		<-s.ch
		return
	}
	s.mu.Lock()
	for len(s.waiters) > 0 {
		r := s.waiters[0]
		s.waiters = s.waiters[1:]
		if s.v.wake(r) {
			// Slot handed over; held stays constant.
			s.mu.Unlock()
			return
		}
	}
	s.held--
	if s.held < 0 {
		s.mu.Unlock()
		panic("vclock: Sem released more than acquired")
	}
	s.mu.Unlock()
}
