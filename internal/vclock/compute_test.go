package vclock

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// hash64 is a tiny splitmix64 step: a deterministic stand-in for a stream
// draw, advanced only on the executor token.
func hash64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// computeScheduleRun drives a world of `workers` participants, each
// looping `rounds` times: an off-token Compute body (burning real CPU and
// wall-sleeping a jitter drawn from jitterSeed — i.e. a *real*,
// run-varying completion order), then, back on the token, a pseudo-draw
// from its own state, an append to the shared trace, and a modeled sleep.
// The returned trace captures every token-order-visible fact: worker,
// round, draw value, and the virtual instant it was observed at.
func computeScheduleRun(t *testing.T, jitterSeed int64) []string {
	t.Helper()
	const (
		workers = 8
		rounds  = 4
	)
	rng := rand.New(rand.NewSource(jitterSeed))
	jitter := make([][]time.Duration, workers)
	for w := range jitter {
		jitter[w] = make([]time.Duration, rounds)
		for r := range jitter[w] {
			jitter[w][r] = time.Duration(rng.Intn(300)) * time.Microsecond
		}
	}

	v := NewVirtual(Epoch)
	v.Adopt()
	defer v.Leave()
	var trace []string // appended only on the token
	wg := NewGroup(v)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		v.Go(func() {
			defer wg.Done()
			state := uint64(w + 1)
			for r := 0; r < rounds; r++ {
				before := v.Now()
				var result uint64
				ok := v.Compute(context.Background(), func() {
					time.Sleep(jitter[w][r]) // real completion jitter
					acc := uint64(0)
					for i := 0; i < 1000; i++ { // real CPU
						acc = hash64(acc + uint64(i))
					}
					result = acc
				})
				if !ok {
					t.Errorf("w%d.r%d: Compute returned false without cancellation", w, r)
					return
				}
				after := v.Now()
				if !after.Equal(before) {
					t.Errorf("w%d.r%d: virtual time moved across Compute: %v -> %v", w, r, before, after)
				}
				state = hash64(state) // the downstream "draw", on-token
				trace = append(trace, fmt.Sprintf("w%d.r%d draw=%d result=%d at=%s",
					w, r, state, result, after.Format(time.RFC3339Nano)))
				if !v.Sleep(context.Background(), time.Duration(w%3+1)*time.Millisecond) {
					t.Errorf("w%d.r%d: sleep canceled", w, r)
				}
			}
		})
	}
	wg.Wait()
	return trace
}

// TestComputeScheduleIndependentOfCompletionOrder is the compute-phase
// determinism contract: N parallel Compute bodies whose *real* completion
// order varies (randomized wall-clock jitter, a different jitter seed per
// run) must leave every token-order-visible fact — downstream draw
// sequences, virtual instants, trace order — bit-identical across 10
// runs. Join order is fixed by spawn ordinal, not by who finishes first.
func TestComputeScheduleIndependentOfCompletionOrder(t *testing.T) {
	ref := computeScheduleRun(t, 0)
	if len(ref) == 0 {
		t.Fatal("empty trace")
	}
	for seed := int64(1); seed <= 9; seed++ {
		got := computeScheduleRun(t, seed)
		if strings.Join(got, "\n") != strings.Join(ref, "\n") {
			t.Fatalf("jitter seed %d changed the schedule:\n--- ref ---\n%s\n--- got ---\n%s",
				seed, strings.Join(ref, "\n"), strings.Join(got, "\n"))
		}
	}
}

// TestComputeHoldsTimeStill pins the rule that a pending compute phase
// freezes the clock: while one participant computes, a sleeping
// participant's deadline must not be reached, however long the compute
// takes in wall time.
func TestComputeHoldsTimeStill(t *testing.T) {
	v := NewVirtual(Epoch)
	v.Adopt()
	defer v.Leave()
	var sleeperWokeAt time.Time
	wg := NewGroup(v)
	wg.Add(2)
	v.Go(func() {
		defer wg.Done()
		v.Sleep(context.Background(), time.Microsecond) // earliest deadline in the world
		sleeperWokeAt = v.Now()
	})
	v.Go(func() {
		defer wg.Done()
		start := v.Now()
		v.Compute(context.Background(), func() { time.Sleep(2 * time.Millisecond) })
		if got := v.Now(); !got.Equal(start) {
			t.Errorf("time advanced during compute: %v -> %v", start, got)
		}
	})
	wg.Wait()
	want := Epoch.Add(time.Microsecond)
	if !sleeperWokeAt.Equal(want) {
		t.Errorf("sleeper woke at %v, want %v", sleeperWokeAt, want)
	}
}

// TestComputeCanceledContext pins the cancellation semantics: an already-
// canceled context skips the body entirely and reports false.
func TestComputeCanceledContext(t *testing.T) {
	v := NewVirtual(Epoch)
	v.Adopt()
	defer v.Leave()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	if v.Compute(ctx, func() { ran = true }) {
		t.Error("Compute returned true on canceled context")
	}
	if ran {
		t.Error("Compute ran fn despite canceled context")
	}
	// The world must still be live afterwards.
	if !v.Compute(context.Background(), func() { ran = true }) || !ran {
		t.Error("Compute after canceled attempt did not run")
	}
}

// TestComputePoolDeterministicJoin runs a fan-out wave through ComputePool
// with run-varying wall jitter in each body: results must be observable
// after Wait, the join must happen at the departure instant, and the
// post-join draw must be identical across repetitions.
func TestComputePoolDeterministicJoin(t *testing.T) {
	run := func(jitterSeed int64) string {
		rng := rand.New(rand.NewSource(jitterSeed))
		jit := make([]time.Duration, 16)
		for i := range jit {
			jit[i] = time.Duration(rng.Intn(200)) * time.Microsecond
		}
		v := NewVirtual(Epoch)
		v.Adopt()
		defer v.Leave()
		before := v.Now()
		pool := NewComputePool(v)
		results := make([]uint64, len(jit))
		for i := range jit {
			i := i
			pool.Go(func() {
				time.Sleep(jit[i])
				results[i] = hash64(uint64(i))
			})
		}
		if !pool.Wait(context.Background()) {
			t.Fatal("pool Wait returned false")
		}
		if got := v.Now(); !got.Equal(before) {
			t.Fatalf("time advanced across pool join: %v -> %v", before, got)
		}
		var sb strings.Builder
		for i, r := range results {
			fmt.Fprintf(&sb, "%d:%d ", i, r)
		}
		return sb.String()
	}
	ref := run(0)
	for seed := int64(1); seed <= 9; seed++ {
		if got := run(seed); got != ref {
			t.Fatalf("pool results varied with completion jitter:\nref %s\ngot %s", ref, got)
		}
	}
}

// TestComputeNonVirtualDegrades checks the package-level helper on a
// non-virtual clock: inline execution, cancellation respected.
func TestComputeNonVirtualDegrades(t *testing.T) {
	ran := false
	if !Compute(NewReal(), context.Background(), func() { ran = true }) || !ran {
		t.Error("Compute on Real clock did not run inline")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if Compute(NewReal(), ctx, func() { t.Error("fn ran despite canceled ctx") }) {
		t.Error("Compute on Real clock ignored cancellation")
	}
	pool := NewComputePool(NewScaled(100))
	var n atomic.Int32
	for i := 0; i < 8; i++ {
		pool.Go(func() { n.Add(1) })
	}
	if !pool.Wait(context.Background()) || n.Load() != 8 {
		t.Errorf("pool on scaled clock: wait ok, n=%d want 8", n.Load())
	}
}

// TestComputeUnregisteredPanics pins the registration contract, matching
// Sleep and the primitives.
func TestComputeUnregisteredPanics(t *testing.T) {
	v := NewVirtual(Epoch)
	defer func() {
		if recover() == nil {
			t.Error("Compute from unregistered goroutine did not panic")
		}
	}()
	v.Compute(context.Background(), func() {})
}

// TestComputeBodiesOverlapInWallTime proves the phase delivers real
// concurrency: 8 participants each run a Compute body that blocks 40ms of
// wall time. Under the old single-runner serialization that is ≥320ms;
// with the compute phase the bodies fly together and the whole world
// finishes in a fraction of that. (Wall-sleep stands in for CPU work so
// the test also demonstrates overlap on single-core CI machines; on
// multi-core hardware the same overlap applies to CPU-bound kernels.)
func TestComputeBodiesOverlapInWallTime(t *testing.T) {
	v := NewVirtual(Epoch)
	v.Adopt()
	defer v.Leave()
	const bodies = 8
	const each = 40 * time.Millisecond
	wg := NewGroup(v)
	start := time.Now()
	for i := 0; i < bodies; i++ {
		wg.Add(1)
		v.Go(func() {
			defer wg.Done()
			v.Compute(context.Background(), func() { time.Sleep(each) })
		})
	}
	wg.Wait()
	elapsed := time.Since(start)
	// Serial execution would take bodies×each = 320ms; allow generous
	// slack for slow CI machines while still ruling serialization out.
	if elapsed > time.Duration(bodies)*each/2 {
		t.Fatalf("8×40ms compute bodies took %v wall — they did not overlap", elapsed)
	}
}
