package vclock

import (
	"context"
	"reflect"
	"testing"
	"time"
)

// traceWorkload runs a fixed multi-goroutine sleep pattern that exercises
// grants, advances, cancellation sweeps and marks, and returns the
// recorder snapshot taken at the end.
func traceWorkload(t *testing.T, cfg RecorderConfig) RecorderState {
	t.Helper()
	c := NewVirtual(Epoch)
	c.Adopt()
	defer c.Leave()
	c.StartRecorder(cfg)

	ctx, cancel := context.WithCancel(context.Background())
	done := NewGroup(c)
	for i := 0; i < 4; i++ {
		i := i
		done.Add(1)
		c.Go(func() {
			defer done.Done()
			for round := 0; round < 8; round++ {
				c.Sleep(ctx, time.Duration(i+1)*time.Millisecond)
				c.Mark("round", uint64(i*8+round))
			}
		})
	}
	// One sleeper that dies to the cancellation sweep.
	done.Add(1)
	c.Go(func() {
		defer done.Done()
		c.Sleep(ctx, time.Hour)
	})
	c.Sleep(context.Background(), 50*time.Millisecond)
	cancel()
	done.Wait()
	return c.RecorderState()
}

// Same workload, same decisions: the trace hash, checkpoint vector, ring
// and decision count are bit-identical across runs — the property that
// lets a reproducing seed be compared checkpoint-by-checkpoint.
func TestRecorderDeterministic(t *testing.T) {
	cfg := RecorderConfig{Ring: 32, Stride: 16}
	base := traceWorkload(t, cfg)
	if base.Decisions == 0 {
		t.Fatal("recorder captured nothing")
	}
	if len(base.Checkpoints) != int(base.Decisions/cfg.Stride) {
		t.Fatalf("%d checkpoints for %d decisions at stride %d",
			len(base.Checkpoints), base.Decisions, cfg.Stride)
	}
	for run := 1; run <= 3; run++ {
		got := traceWorkload(t, cfg)
		if !reflect.DeepEqual(got, base) {
			t.Fatalf("run %d: recorder state diverged:\n base %+v\n got  %+v", run, base, got)
		}
	}
}

// The ring keeps exactly the last Ring decisions, oldest first, with
// contiguous ordinals ending at the total decision count.
func TestRecorderRingWraps(t *testing.T) {
	s := traceWorkload(t, RecorderConfig{Ring: 8, Stride: 1 << 20})
	if s.Decisions <= 8 {
		t.Fatalf("workload made only %d decisions; ring cannot have wrapped", s.Decisions)
	}
	if len(s.Ring) != 8 {
		t.Fatalf("ring holds %d entries, want 8", len(s.Ring))
	}
	for i, e := range s.Ring {
		if want := s.Decisions - 8 + uint64(i) + 1; e.N != want {
			t.Fatalf("ring[%d].N = %d, want %d (oldest-first contiguous)", i, e.N, want)
		}
	}
}

// An exact-capture window [from, to) holds precisely those ordinals — the
// mechanism chaosreplay uses to zoom in on a divergent checkpoint block.
func TestRecorderWindowCapture(t *testing.T) {
	s := traceWorkload(t, RecorderConfig{WindowFrom: 5, WindowTo: 12})
	if len(s.Window) != 7 {
		t.Fatalf("window holds %d entries, want 7", len(s.Window))
	}
	for i, e := range s.Window {
		if e.N != uint64(5+i) {
			t.Fatalf("window[%d].N = %d, want %d", i, e.N, 5+i)
		}
	}
	// Both-zero disables the window entirely.
	if s2 := traceWorkload(t, RecorderConfig{}); len(s2.Window) != 0 {
		t.Fatalf("disabled window captured %d entries", len(s2.Window))
	}
}

// Marks enter the decision stream: note and seq are preserved, they
// perturb the hash, and the package-level helper is a no-op on
// non-virtual clocks and when recording is off.
func TestRecorderMark(t *testing.T) {
	c := NewVirtual(Epoch)
	c.Adopt()
	defer c.Leave()
	Mark(c, "before start", 1) // off: must not panic or count
	c.StartRecorder(RecorderConfig{})
	Mark(c, "bind", 42)
	s := c.RecorderState()
	if s.Decisions != 1 || len(s.Ring) != 1 {
		t.Fatalf("mark not recorded: %+v", s)
	}
	if e := s.Ring[0]; e.Kind != TraceMark || e.Note != "bind" || e.Seq != 42 {
		t.Fatalf("mark entry mangled: %+v", e)
	}
	noMark := c.RecorderState().Hash
	Mark(c, "bind2", 43)
	if c.RecorderState().Hash == noMark {
		t.Fatal("mark did not perturb the hash chain")
	}
	Mark(NewManual(Epoch), "ignored", 0) // non-virtual: no-op
}

// Recording is off by default and StopRecorder discards state; RecorderState
// is zero-valued in both cases.
func TestRecorderOffByDefault(t *testing.T) {
	c := NewVirtual(Epoch)
	c.Adopt()
	defer c.Leave()
	if s := c.RecorderState(); !reflect.DeepEqual(s, RecorderState{}) {
		t.Fatalf("recorder on by default: %+v", s)
	}
	c.StartRecorder(RecorderConfig{})
	c.Mark("x", 1)
	c.StopRecorder()
	if s := c.RecorderState(); !reflect.DeepEqual(s, RecorderState{}) {
		t.Fatalf("StopRecorder left state behind: %+v", s)
	}
}
