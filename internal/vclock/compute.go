package vclock

import (
	"context"
	"runtime"
	"sync"
)

// This file implements the deterministic parallel compute phase: a way to
// run *pure* CPU closures (wordcount kernels, Hausdorff distances, frame
// reconstruction) with real hardware parallelism without giving up the
// Virtual executor's bit-reproducibility.
//
// The single-runner token serializes every clock read and scheduling
// decision — that is what makes same-seed runs identical — but it also
// serializes task bodies, so an exhibit dominated by real computation runs
// one-core no matter how many cores the modeled pilot has. Compute opens a
// parallel phase for the portions of a task body that are side-effect-free
// CPU work:
//
//   - the calling participant releases the token and runs fn on its own
//     goroutine, in parallel with whoever holds the token next and with
//     any other in-flight Compute bodies (the Go runtime schedules them
//     across up to GOMAXPROCS cores);
//   - while any Compute body is in flight the scheduler refuses to advance
//     modeled time, sweep cancellations, or stall — the world is pinned to
//     the instant the phase opened;
//   - when the run queue drains and every in-flight body has finished, the
//     callers re-enter the run queue sorted by their *spawn ordinal* (the
//     token-order of the Compute calls), never by real completion order.
//
// Those three rules make the phase invisible to the schedule: every Now()
// before, during (there is none — fn must not read the clock) and after
// the phase reads the same instant in every run, and the token handoff
// sequence after the join is a pure function of the seed.
//
// The purity contract for fn (specified in DESIGN.md "Parallel compute
// phase"): no clock reads, no modeled sleeps, no stream draws, no
// data-service calls, no primitive waits, and no mutation of state shared
// with other participants. fn gets real parallelism precisely because
// nobody is watching it. tools/seed-audit.sh lint-checks the inline
// `Compute(..., func() {...})` form; kernels reaching a compute phase
// another way — dataflow.Stage.Pure, streaming's PureHandler, a named
// function — are beyond the lint's sight and must honor the contract
// themselves (a violating sleep or wait deadlocks the pinned world; a
// violating draw silently breaks bit-reproducibility).

// Compute runs fn — a side-effect-free CPU closure — off the execution
// token, in parallel with other participants and other Compute bodies,
// and re-enters the cooperative schedule at the same virtual instant
// before returning. Join order across concurrent Compute calls is fixed
// by spawn ordinal (token order of the calls), not completion order, so
// downstream draw sequences are bit-identical run to run.
//
// If ctx is already canceled, fn does not run and Compute returns false.
// Once started, fn always runs to completion (pure CPU work is not
// interruptible); the return value is then true and the caller re-checks
// ctx if it wants prompt teardown.
func (c *Virtual) Compute(ctx context.Context, fn func()) bool {
	if ctx != nil && ctx.Err() != nil {
		return false
	}
	c.mu.Lock()
	if !c.hasCurrent {
		c.mu.Unlock()
		panic("vclock: Compute on Virtual clock from an unregistered goroutine (use Go or Adopt)")
	}
	c.computeSeq++
	ord := c.computeSeq
	c.computing++
	c.hasCurrent = false
	c.scheduleLocked()
	c.mu.Unlock()

	fn()

	r := &parker{g: make(grant, 1), seq: ord}
	c.mu.Lock()
	c.computing--
	c.computeDone = append(c.computeDone, r)
	if !c.hasCurrent {
		// The token is free, so the run queue is empty: this was the last
		// (or only) straggler the scheduler was holding the world for.
		c.scheduleLocked()
	}
	c.mu.Unlock()
	<-r.g
	return true
}

// Computing reports how many Compute bodies are currently in flight
// (diagnostics; a world whose Stalls() is flat but whose Computing() is
// stuck non-zero has a hung — impure or non-terminating — compute body).
func (c *Virtual) Computing() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.computing
}

// Compute runs fn as a parallel compute phase of c when c is a Virtual
// clock (see Virtual.Compute for the purity contract and determinism
// rules), and inline otherwise — on real and scaled clocks the caller's
// goroutine already runs in parallel with everything else, so there is
// nothing to release. Reports false, without running fn, when ctx is
// already canceled.
func Compute(c Clock, ctx context.Context, fn func()) bool {
	if v, ok := c.(*Virtual); ok {
		return v.Compute(ctx, fn)
	}
	if ctx != nil && ctx.Err() != nil {
		return false
	}
	fn()
	return true
}

// computeSlots bounds the number of ComputePool bodies executing at once
// to the real parallelism available, so a wide fan-out (one closure per
// map split, per trajectory pair, per record batch) degrades to a work
// queue instead of thousands of runnable goroutines. Virtual.Compute
// deliberately does not draw from this pool: its callers are scheduler
// participants (bounded by the workload's own concurrency), and a join
// closure like ComputePool.Wait must never hold a slot its own workers
// still need.
var computeSlots = make(chan struct{}, runtime.GOMAXPROCS(0))

// ComputePool fans pure CPU closures out across up to GOMAXPROCS workers
// and joins them deterministically: Go starts a body immediately on a
// pool worker (off-token, so it overlaps both the caller's on-token work
// and other bodies), and Wait parks the caller — through Compute on a
// Virtual clock — until every body has finished, re-entering the schedule
// at the same virtual instant. Bodies obey the Compute purity contract;
// their results must only be observed after Wait returns.
//
// The zero value is not usable; create with NewComputePool. A pool is for
// one wave of work owned by one participant: Go must not be called
// concurrently with Wait.
type ComputePool struct {
	clock Clock
	wg    sync.WaitGroup
}

// NewComputePool creates a pool for the given clock.
func NewComputePool(c Clock) *ComputePool {
	return &ComputePool{clock: c}
}

// Go starts fn on a pool worker immediately. fn must be side-effect-free
// CPU work (the Compute purity contract); nothing may observe its results
// until Wait returns.
func (p *ComputePool) Go(fn func()) {
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		computeSlots <- struct{}{}
		defer func() { <-computeSlots }()
		fn()
	}()
}

// Wait joins the pool: it blocks until every body started with Go has
// finished, releasing the execution token while it waits (on a Virtual
// clock) and rejoining at the same virtual instant. Reports false,
// without waiting, when ctx is already canceled — the bodies still run to
// completion in the background, so a canceled caller must not reuse or
// observe the pool afterwards.
func (p *ComputePool) Wait(ctx context.Context) bool {
	return Compute(p.clock, ctx, p.wg.Wait)
}
