package vclock

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

var virtualEpoch = Epoch

// TestVirtualSleepExactElapsed pins the satellite regression from the
// Scaled clock's old 1µs sleep floor: on the virtual clock, modeled
// elapsed equals requested exactly, down to sub-resolution (sub-µs)
// durations, and costs no modeled overhead between dense sleeps.
func TestVirtualSleepExactElapsed(t *testing.T) {
	c := NewVirtual(virtualEpoch)
	c.Adopt()
	defer c.Leave()
	ctx := context.Background()
	for _, d := range []time.Duration{
		1 * time.Nanosecond,
		100 * time.Nanosecond, // far below any wall-timer resolution
		999 * time.Nanosecond,
		1 * time.Microsecond,
		3 * time.Hour,
	} {
		start := c.Now()
		if !c.Sleep(ctx, d) {
			t.Fatalf("Sleep(%v) interrupted", d)
		}
		if got := c.Since(start); got != d {
			t.Fatalf("Sleep(%v): modeled elapsed = %v", d, got)
		}
	}
	// 10k dense sub-resolution sleeps accumulate exactly, with zero drift.
	start := c.Now()
	for i := 0; i < 10000; i++ {
		c.Sleep(ctx, 100*time.Nanosecond)
	}
	if got, want := c.Since(start), 10000*100*time.Nanosecond; got != want {
		t.Fatalf("dense sleeps: modeled elapsed = %v, want %v", got, want)
	}
}

// TestVirtualSleepCostsNoWallTime checks hours of modeled time replay in
// (milliseconds of) wall time.
func TestVirtualSleepCostsNoWallTime(t *testing.T) {
	c := NewVirtual(virtualEpoch)
	c.Adopt()
	defer c.Leave()
	wall := time.Now()
	if !c.Sleep(context.Background(), 24*365*time.Hour) {
		t.Fatal("sleep interrupted")
	}
	if elapsed := time.Since(wall); elapsed > 5*time.Second {
		t.Fatalf("a modeled year took %v of wall time", elapsed)
	}
}

// runInterleaved spawns n participants with interleaved, overlapping sleep
// patterns and returns the observed wake order with timestamps.
func runInterleaved(n, rounds int) []string {
	c := NewVirtual(virtualEpoch)
	var mu sync.Mutex
	var order []string
	ctx := context.Background()
	done := NewGroup(c)
	c.Adopt()
	for i := 0; i < n; i++ {
		i := i
		done.Add(1)
		c.Go(func() {
			defer done.Done()
			for r := 0; r < rounds; r++ {
				// Overlapping deadlines across goroutines, including exact
				// ties (same product for different (i, r) pairs).
				d := time.Duration((i+1)*(r+1)) * time.Millisecond
				c.Sleep(ctx, d)
				mu.Lock()
				order = append(order, fmt.Sprintf("g%d.r%d@%s", i, r, c.Since(virtualEpoch)))
				mu.Unlock()
			}
		})
	}
	done.Wait()
	c.Leave()
	return order
}

// TestVirtualDeterministicWakeOrder is the -race-clean determinism suite:
// N goroutines with interleaved sleeps observe the same wake order and the
// same modeled timestamps on every run.
func TestVirtualDeterministicWakeOrder(t *testing.T) {
	ref := runInterleaved(8, 6)
	if len(ref) != 8*6 {
		t.Fatalf("observed %d wakes, want %d", len(ref), 8*6)
	}
	for run := 0; run < 5; run++ {
		got := runInterleaved(8, 6)
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("run %d diverged at wake %d: %q != %q", run, i, got[i], ref[i])
			}
		}
	}
}

// TestVirtualTieBreak: sleepers with identical deadlines wake in
// Sleep-call order.
func TestVirtualTieBreak(t *testing.T) {
	c := NewVirtual(virtualEpoch)
	var mu sync.Mutex
	var order []int
	done := NewGroup(c)
	c.Adopt()
	for i := 0; i < 5; i++ {
		i := i
		done.Add(1)
		c.Go(func() {
			defer done.Done()
			c.Sleep(context.Background(), time.Second)
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
		})
	}
	done.Wait()
	c.Leave()
	// Go(i) runs in spawn order, so Sleep-call order is 0..4.
	for i, g := range order {
		if g != i {
			t.Fatalf("tie wake order = %v", order)
		}
	}
}

// TestVirtualCancellationSweep: a cancellation issued by a participant
// takes effect at the modeled instant it was issued — the canceled sleeper
// must not observe a time jump to its original deadline.
func TestVirtualCancellationSweep(t *testing.T) {
	c := NewVirtual(virtualEpoch)
	ctx, cancel := context.WithCancel(context.Background())
	var wokeAt time.Duration
	var full bool
	done := NewGroup(c)
	done.Add(1)
	c.Go(func() {
		defer done.Done()
		full = c.Sleep(ctx, time.Hour)
		wokeAt = c.Since(virtualEpoch)
	})
	c.Adopt()
	c.Sleep(context.Background(), time.Minute)
	cancel()
	done.Wait()
	c.Leave()
	if full {
		t.Fatal("canceled sleep reported full elapse")
	}
	if wokeAt != time.Minute {
		t.Fatalf("canceled sleeper woke at %v, want 1m (no jump to its 1h deadline)", wokeAt)
	}
}

// TestVirtualPrimitivesHandoff exercises Notifier/Event/Sem token handoff
// end to end: a waker's signal must reach parked waiters before time can
// advance past it.
func TestVirtualPrimitivesHandoff(t *testing.T) {
	c := NewVirtual(virtualEpoch)
	n := NewNotifier(c)
	e := NewEvent(c)
	s := NewSem(c, 1)
	ctx := context.Background()
	var consumed int
	done := NewGroup(c)
	done.Add(1)
	c.Go(func() {
		defer done.Done()
		for n.Wait(ctx) {
			consumed++
			if e.Fired() {
				return
			}
		}
	})
	c.Adopt()
	if !s.Acquire(ctx) {
		t.Fatal("sem acquire failed")
	}
	for i := 0; i < 3; i++ {
		n.Set()
		c.Sleep(ctx, time.Second) // quiesce: waiter must have consumed the set
	}
	e.Fire()
	n.Set()
	done.Wait()
	s.Release()
	c.Leave()
	if consumed < 3 {
		t.Fatalf("notifier consumed %d sets, want >= 3", consumed)
	}
	if got := c.Since(virtualEpoch); got != 3*time.Second {
		t.Fatalf("modeled time = %v, want 3s", got)
	}
}

// TestVirtualStallCounter: a world where every participant parks with no
// sleeper records a stall (the deadlock-vs-starvation diagnostic) and
// recovers via external context cancellation.
func TestVirtualStallCounter(t *testing.T) {
	c := NewVirtual(virtualEpoch)
	n := NewNotifier(c)
	ctx, cancel := context.WithCancel(context.Background())
	done := NewGroup(c)
	done.Add(1)
	c.Go(func() {
		defer done.Done()
		n.Wait(ctx)
	})
	// Let the participant park: the world stalls (no driver adopted).
	deadline := time.Now().Add(5 * time.Second)
	for c.Stalls() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no stall recorded")
		}
		time.Sleep(time.Millisecond)
	}
	cancel() // external cancellation must recover the parked waiter
	done.wgWaitExternal(t)
}

// wgWaitExternal waits for the group from outside the scheduled world
// (test-only helper; production code calls Wait as a participant).
func (g *Group) wgWaitExternal(t *testing.T) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		g.mu.Lock()
		n := g.n
		g.mu.Unlock()
		if n == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("group never drained")
		}
		time.Sleep(time.Millisecond)
	}
}
