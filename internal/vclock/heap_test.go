package vclock

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// This file is the determinism insurance for the sleeper-heap refactor:
// the heap must change the cost of a scheduling decision, never the
// decision. Two properties pin that down — (1) the heap's pop/remove
// order is bit-identical to the linear minimum scan it replaced, over
// randomized operation sequences; (2) full randomized sleep/cancel/
// compute interleavings replay bit-identically run over run at
// GOMAXPROCS=4 (the -race leg exercises the same tests). A third guard
// bounds the recorder's off-path cost per decision.

// linearScanMin is the pre-refactor selection rule verbatim: scan every
// sleeper, keep the earliest (deadline, seq). The heap must always pop
// exactly this element.
func linearScanMin(model []*parker) int {
	best := 0
	for i := 1; i < len(model); i++ {
		if sleepBefore(model[i], model[best]) {
			best = i
		}
	}
	return best
}

// TestSleeperHeapMatchesLinearScan drives a sleepHeap and a linear-scan
// model with identical randomized operation sequences — pushes with dense
// deadline ties, pops, and arbitrary-position removals (the cancellation
// sweep's access pattern) — and asserts every pop returns the exact
// parker the linear scan would have selected.
func TestSleeperHeapMatchesLinearScan(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var h sleepHeap
		var model []*parker
		var seq uint64
		epoch := virtualEpoch
		removeModel := func(i int) {
			model[i] = model[len(model)-1]
			model = model[:len(model)-1]
		}
		for op := 0; op < 3000; op++ {
			switch k := rng.Intn(10); {
			case k < 5 || len(model) == 0: // push, dense tie domain
				seq++
				r := &parker{
					deadline: epoch.Add(time.Duration(1+rng.Intn(8)) * time.Millisecond),
					seq:      seq,
					heapIdx:  -1,
				}
				h.push(r)
				model = append(model, r)
			case k < 8: // pop: heap vs linear scan must agree exactly
				want := model[linearScanMin(model)]
				got := h.popMin()
				if got != want {
					t.Fatalf("seed %d op %d: popMin = (deadline %v, seq %d), linear scan selects (deadline %v, seq %d)",
						seed, op, got.deadline, got.seq, want.deadline, want.seq)
				}
				removeModel(linearScanMin(model))
			default: // arbitrary removal, as the cancellation sweep does
				i := rng.Intn(len(model))
				r := model[i]
				h.removeIdx(r.heapIdx)
				if r.heapIdx != -1 {
					t.Fatalf("seed %d op %d: removeIdx left heapIdx %d", seed, op, r.heapIdx)
				}
				removeModel(i)
			}
			if len(h) != len(model) {
				t.Fatalf("seed %d op %d: heap len %d, model len %d", seed, op, len(h), len(model))
			}
		}
		// Drain: the full remaining wake order must match the scan order.
		for len(model) > 0 {
			i := linearScanMin(model)
			want := model[i]
			if got := h.popMin(); got != want {
				t.Fatalf("seed %d drain: popMin seq %d, linear scan selects seq %d", seed, got.seq, want.seq)
			}
			removeModel(i)
		}
	}
}

// schedOp scripts one worker round: a sleep duration and whether a
// parallel compute phase follows the wake.
type schedOp struct {
	sleep   time.Duration
	compute bool
}

// cancelEv scripts the canceler participant: at modeled instant `at`
// (since epoch), cancel worker w's round-r context.
type cancelEv struct {
	at   time.Duration
	w, r int
}

var computeSink atomic.Int64

// runRandomInterleaving executes one seeded scenario — workers with
// tie-dense sleeps, a canceler firing scripted cancellations (including
// at instants that collide with wake deadlines, exercising the
// sweep-before-advance ordering), and scripted compute phases — and
// returns the observed wake/outcome log plus the recorder's decision
// hash. The op script is fully pre-generated from the seed before any
// participant starts, so the scenario itself draws nothing at runtime.
func runRandomInterleaving(seed int64) ([]string, uint64) {
	const (
		workers = 6
		rounds  = 18
		cancels = 12
	)
	rng := rand.New(rand.NewSource(seed))
	script := make([][]schedOp, workers)
	for w := range script {
		script[w] = make([]schedOp, rounds)
		for r := range script[w] {
			script[w][r] = schedOp{
				sleep:   time.Duration(1+rng.Intn(8)) * time.Millisecond,
				compute: rng.Intn(4) == 0,
			}
		}
	}
	evs := make([]cancelEv, cancels)
	for i := range evs {
		evs[i] = cancelEv{
			at: time.Duration(rng.Intn(rounds*8)) * time.Millisecond,
			w:  rng.Intn(workers),
			r:  rng.Intn(rounds),
		}
	}
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].at < evs[j].at })

	c := NewVirtual(virtualEpoch)
	c.StartRecorder(RecorderConfig{})
	ctxs := make([][]context.Context, workers)
	cancelFns := make([][]context.CancelFunc, workers)
	for w := range ctxs {
		ctxs[w] = make([]context.Context, rounds)
		cancelFns[w] = make([]context.CancelFunc, rounds)
		for r := range ctxs[w] {
			ctxs[w][r], cancelFns[w][r] = context.WithCancel(context.Background())
		}
	}

	var mu sync.Mutex
	var log []string
	done := NewGroup(c)
	c.Adopt()
	for w := 0; w < workers; w++ {
		w := w
		done.Add(1)
		c.Go(func() {
			defer done.Done()
			for r := 0; r < rounds; r++ {
				op := script[w][r]
				ok := c.Sleep(ctxs[w][r], op.sleep)
				ran := false
				if op.compute {
					ran = c.Compute(ctxs[w][r], func() {
						s := int64(0)
						for i := int64(0); i < 64; i++ {
							s += i * i
						}
						computeSink.Add(s)
					})
				}
				mu.Lock()
				log = append(log, fmt.Sprintf("g%d.r%d@%s ok=%t compute=%t/%t",
					w, r, c.Since(virtualEpoch), ok, op.compute, ran))
				mu.Unlock()
			}
		})
	}
	done.Add(1)
	c.Go(func() {
		defer done.Done()
		for _, ev := range evs {
			if d := ev.at - c.Since(virtualEpoch); d > 0 {
				c.Sleep(context.Background(), d)
			}
			cancelFns[ev.w][ev.r]()
		}
	})
	done.Wait()
	hash := c.RecorderState().Hash
	c.Leave()
	for w := range cancelFns {
		for _, cancel := range cancelFns[w] {
			cancel()
		}
	}
	return log, hash
}

// TestVirtualRandomInterleavingBitIdentical replays randomized
// sleep/cancel/compute interleavings at GOMAXPROCS=4 and asserts the
// wake order, every outcome, every modeled timestamp and the recorder's
// decision hash are bit-identical run over run — the heap and the
// fast-path token handoff may not shift a single decision. The -race CI
// leg runs this same test.
func TestVirtualRandomInterleavingBitIdentical(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	for seed := int64(1); seed <= 4; seed++ {
		ref, refHash := runRandomInterleaving(seed)
		if len(ref) != 6*18 {
			t.Fatalf("seed %d: %d log entries, want %d", seed, len(ref), 6*18)
		}
		for run := 0; run < 3; run++ {
			got, gotHash := runRandomInterleaving(seed)
			if gotHash != refHash {
				t.Fatalf("seed %d run %d: decision hash %#x != %#x", seed, run, gotHash, refHash)
			}
			for i := range ref {
				if got[i] != ref[i] {
					t.Fatalf("seed %d run %d diverged at wake %d: %q != %q", seed, run, i, got[i], ref[i])
				}
			}
		}
	}
}

// benchSchedulerHandoff is the scheduler-dominated microbench: the
// measured participant sleeps among three background sleepers, so every
// op is pure token handoff + heap traffic (push, pop, advance) with no
// application work at all.
func benchSchedulerHandoff(b *testing.B, record bool) {
	c := NewVirtual(virtualEpoch)
	if record {
		// A huge stride keeps checkpoint appends out of the loop: this
		// measures the steady-state per-decision recording cost.
		c.StartRecorder(RecorderConfig{Ring: 64, Stride: 1 << 40})
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := NewGroup(c)
	c.Adopt()
	for i := 0; i < 3; i++ {
		i := i
		done.Add(1)
		c.Go(func() {
			defer done.Done()
			for c.Sleep(ctx, time.Duration(i+1)*time.Microsecond) {
			}
		})
	}
	bg := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Sleep(bg, 2*time.Microsecond)
	}
	b.StopTimer()
	cancel()
	done.Wait()
	c.Leave()
}

// BenchmarkSchedulerHandoffRecorderOff measures raw scheduling decisions
// with the recorder off (the production configuration).
func BenchmarkSchedulerHandoffRecorderOff(b *testing.B) { benchSchedulerHandoff(b, false) }

// BenchmarkSchedulerHandoffRecorderOn measures the same microbench with
// the recorder on; the delta against ...RecorderOff is the full
// recording cost, an upper bound on what the off-path nil check can
// possibly cost.
func BenchmarkSchedulerHandoffRecorderOn(b *testing.B) { benchSchedulerHandoff(b, true) }

// TestRecorderOffOverheadGuard bounds the recorder's off-path cost below
// 2% of a scheduling decision. Comparing two wall-clock runs of the
// microbench would drown a 2% bound in host noise, so the guard measures
// the ratio's two sides separately and deterministically: (a) the
// per-call cost of the off-path itself (recordLocked with rec == nil —
// the exact code every decision executes when recording is off), (b) the
// per-op cost of the scheduler-dominated microbench, and (c) the number
// of recorded decisions one op comprises, counted exactly by a recorded
// calibration run. The off-path share of a decision is then
// a·c/b — independent of the noise floor that a direct off-vs-on delta
// would sit under.
func TestRecorderOffOverheadGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("timing measurement")
	}
	// (a) off-path cost per decision: the nil-check dispatch itself.
	off := testing.Benchmark(func(b *testing.B) {
		c := NewVirtual(virtualEpoch)
		for i := 0; i < b.N; i++ {
			c.recordLocked(TraceGrant, uint64(i), "")
		}
	})
	offNs := float64(off.T.Nanoseconds()) / float64(off.N)

	// (b) full decision cost in the scheduler-dominated microbench.
	sched := testing.Benchmark(func(b *testing.B) { benchSchedulerHandoff(b, false) })
	schedNs := float64(sched.T.Nanoseconds()) / float64(sched.N)

	// (c) decisions per microbench op, counted exactly.
	const calOps = 2000
	c := NewVirtual(virtualEpoch)
	c.StartRecorder(RecorderConfig{Ring: 64, Stride: 1 << 40})
	ctx, cancel := context.WithCancel(context.Background())
	done := NewGroup(c)
	c.Adopt()
	for i := 0; i < 3; i++ {
		i := i
		done.Add(1)
		c.Go(func() {
			defer done.Done()
			for c.Sleep(ctx, time.Duration(i+1)*time.Microsecond) {
			}
		})
	}
	before := c.RecorderState().Decisions
	bg := context.Background()
	for i := 0; i < calOps; i++ {
		c.Sleep(bg, 2*time.Microsecond)
	}
	decisionsPerOp := float64(c.RecorderState().Decisions-before) / calOps
	cancel()
	done.Wait()
	c.Leave()

	overheadPct := offNs * decisionsPerOp / schedNs * 100
	t.Logf("off-path %.2fns/decision × %.1f decisions/op over %.0fns/op = %.3f%% overhead",
		offNs, decisionsPerOp, schedNs, overheadPct)
	if overheadPct >= 2 {
		t.Fatalf("recorder off-path costs %.3f%% of a scheduling decision, budget 2%%", overheadPct)
	}
}
