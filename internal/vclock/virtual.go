package vclock

import (
	"context"
	"sync"
	"time"
)

// Virtual is a conservative virtual-time executor: a Clock whose modeled
// time advances to the earliest sleeper deadline whenever every registered
// goroutine is quiescent (blocked in Sleep or parked in a clock-aware
// primitive), so modeled sleeps cost zero wall time.
//
// The executor is cooperative and single-runner: at most one registered
// participant executes at a time, holding an implicit execution token.
// The token is released when the holder sleeps, parks (Notifier, Event,
// Group, Sem — see primitives.go), blocks (Block/Unblock) or exits, and is
// handed to the next runnable participant in FIFO order; when no
// participant is runnable, time jumps to the earliest sleeper's deadline
// and that sleeper runs. Ties on deadline wake in Sleep-call order. This
// serialization makes a same-seed run bit-reproducible: every Now() reads
// the same modeled instant in every run, and every scheduling decision
// happens in the same order.
//
// Context cancellation is delivered through the scheduler: every Sleep and
// primitive Wait registers its context, and before the executor advances
// modeled time (or declares the world stalled) it sweeps the wait lists
// and makes every waiter with a canceled context runnable at the *current*
// instant. A cancellation issued by a participant therefore takes effect
// at the modeled time it was issued — never after a spurious time jump —
// which keeps teardown paths (walltime kills, evictions, processor stops)
// deterministic. Cancellations arriving from outside the scheduled world
// (a wall-clock context timeout on a hung run) are picked up by the same
// sweep, raced only by their nature.
//
// Participation contract:
//
//   - Every goroutine that touches the clock (or state shared with clock
//     users) must be a participant: spawned via Go, or registered via
//     Adopt (the experiment driver does this) and deregistered via Leave.
//   - Participants must not block on bare channels/sync primitives fed by
//     other participants; they park through Sleep or the clock-aware
//     primitives instead. A bare block holds the token and stalls the
//     world (a real deadlock, surfaced by the caller's context timeout).
//   - Block/Unblock is the escape hatch for waiting on *external*
//     (non-participant) work; between the two calls the goroutine is
//     invisible to the scheduler, so signals from fellow participants must
//     not be awaited this way (the world may advance past the signal).
type Virtual struct {
	mu           sync.Mutex
	now          time.Time
	seq          uint64
	hasCurrent   bool
	runq         []*parker
	sleepers     []*parker
	parked       []*parker
	blocked      int
	participants int
	stalls       uint64

	// Parallel compute phase (compute.go). computing counts Compute bodies
	// currently executing off-token; computeDone holds finished bodies
	// awaiting deterministic readmission; computeSeq numbers Compute calls
	// in token order (the spawn ordinal that fixes the join order).
	computing   int
	computeSeq  uint64
	computeDone []*parker

	// rec, when non-nil, records every scheduling decision (trace.go).
	rec *recorder
}

// grant is a one-shot execution-token handoff channel (buffered so the
// granter never blocks).
type grant chan struct{}

// parker is one goroutine's registration in a wait list: the run queue, the
// sleeper list (deadline set) or the parked list (waiting on a primitive).
// A parker is claimed exactly once — by its primitive's signal, by the
// scheduler's deadline wake, or by the cancellation sweep.
type parker struct {
	g        grant
	ctx      context.Context // nil: not cancelable
	deadline time.Time       // zero: not sleeping
	seq      uint64
	claimed  bool
	canceled bool
}

// NewVirtual creates a virtual-time executor starting at the given modeled
// time. The calling goroutine is NOT registered; call Adopt (or spawn all
// work via Go) before touching the clock.
func NewVirtual(start time.Time) *Virtual {
	return &Virtual{now: start}
}

// Now implements Clock.
func (c *Virtual) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Since implements Clock.
func (c *Virtual) Since(t time.Time) time.Duration { return c.Now().Sub(t) }

// Sleep implements Clock: the calling participant parks until modeled time
// reaches now+d, which costs no wall time. Returns false if ctx was
// canceled first.
func (c *Virtual) Sleep(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	c.mu.Lock()
	if !c.hasCurrent {
		c.mu.Unlock()
		panic("vclock: Sleep on Virtual clock from an unregistered goroutine (use Go or Adopt)")
	}
	c.seq++
	r := &parker{g: make(grant, 1), ctx: ctx, deadline: c.now.Add(d), seq: c.seq}
	c.sleepers = append(c.sleepers, r)
	c.hasCurrent = false
	c.scheduleLocked()
	c.mu.Unlock()
	return c.await(r)
}

// await blocks until r's grant arrives, nudging the scheduler if r's
// context fires first (external cancellations reach a stalled world this
// way; participant-issued ones are claimed by the scheduler's own sweep).
// It reports whether the wake-up was a signal (true) or a cancellation.
func (c *Virtual) await(r *parker) bool {
	if r.ctx == nil {
		<-r.g
	} else {
		select {
		case <-r.g:
		case <-r.ctx.Done():
			c.nudge()
			<-r.g
		}
	}
	// r.claimed was set before the grant was sent; the channel receive
	// orders the read of r.canceled after it.
	return !r.canceled
}

// Go spawns fn as a registered participant. It may be called from inside
// or outside the scheduled world; fn starts once the scheduler hands it
// the execution token.
func (c *Virtual) Go(fn func()) {
	r := &parker{g: make(grant, 1)}
	c.mu.Lock()
	c.participants++
	c.runq = append(c.runq, r)
	c.scheduleLocked()
	c.mu.Unlock()
	go func() {
		<-r.g
		defer c.exit()
		fn()
	}()
}

// Adopt registers the calling goroutine as a participant and blocks until
// it holds the execution token. Experiment drivers call this once, before
// interacting with any component on the clock, and pair it with Leave.
func (c *Virtual) Adopt() {
	r := &parker{g: make(grant, 1)}
	c.mu.Lock()
	c.participants++
	c.runq = append(c.runq, r)
	c.scheduleLocked()
	c.mu.Unlock()
	<-r.g
}

// Leave deregisters the calling participant (the inverse of Adopt) and
// releases the execution token.
func (c *Virtual) Leave() { c.exit() }

// Block marks the calling participant as waiting on something external to
// the scheduled world and releases the execution token. It must be paired
// with Unblock. See the participation contract above for when this is
// (and is not) safe.
func (c *Virtual) Block() {
	c.mu.Lock()
	if !c.hasCurrent {
		c.mu.Unlock()
		panic("vclock: Block on Virtual clock from an unregistered goroutine")
	}
	c.blocked++
	c.hasCurrent = false
	c.scheduleLocked()
	c.mu.Unlock()
}

// Unblock re-enters the scheduled world after Block, waiting for the
// execution token.
func (c *Virtual) Unblock() {
	r := &parker{g: make(grant, 1)}
	c.mu.Lock()
	c.blocked--
	c.runq = append(c.runq, r)
	c.scheduleLocked()
	c.mu.Unlock()
	<-r.g
}

// Participants returns the number of registered participant goroutines.
func (c *Virtual) Participants() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.participants
}

// PendingSleepers reports how many participants are blocked in Sleep.
func (c *Virtual) PendingSleepers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.sleepers)
}

// Stalls counts the times the scheduler found participants registered but
// nothing runnable and nothing sleeping — i.e. everyone parked waiting for
// an external signal. A rising count with no external waker in sight is a
// deadlock (see DESIGN.md, "Deadlock versus starvation").
func (c *Virtual) Stalls() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stalls
}

// exit removes the current participant from the world.
func (c *Virtual) exit() {
	c.mu.Lock()
	if !c.hasCurrent {
		c.mu.Unlock()
		panic("vclock: participant exit without holding the execution token")
	}
	c.participants--
	c.hasCurrent = false
	c.scheduleLocked()
	c.mu.Unlock()
}

// ---------------------------------------------------------------------------
// Primitive support (used by primitives.go)
// ---------------------------------------------------------------------------

// newParker allocates a wait registration for the current goroutine; the
// caller stores it in a primitive's waiter list, then calls park.
func (c *Virtual) newParker(ctx context.Context) *parker {
	c.mu.Lock()
	c.seq++
	r := &parker{g: make(grant, 1), ctx: ctx, seq: c.seq}
	c.mu.Unlock()
	return r
}

// park releases the token on behalf of the current participant whose
// registration r is held by a primitive. The caller then awaits r.
func (c *Virtual) park(r *parker) {
	c.mu.Lock()
	if !c.hasCurrent {
		c.mu.Unlock()
		panic("vclock: wait on Virtual-clock primitive from an unregistered goroutine (use Go or Adopt)")
	}
	if !r.claimed {
		// A signal from outside the scheduled world may land between the
		// primitive registering r and this park; r is then already claimed
		// and queued runnable, and must not enter the parked list.
		c.parked = append(c.parked, r)
	}
	c.hasCurrent = false
	c.scheduleLocked()
	c.mu.Unlock()
}

// wake makes a parked waiter runnable after its primitive signaled it; the
// waker keeps running, so this never blocks. It reports whether the signal
// claimed the waiter (false: already canceled in the meantime).
func (c *Virtual) wake(r *parker) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if r.claimed {
		return false
	}
	r.claimed = true
	removeParker(&c.parked, r)
	c.runq = append(c.runq, r)
	c.scheduleLocked()
	return true
}

// nudge asks the scheduler to re-run its cancellation sweep if the world
// is currently idle. Called from await when a context fires while its
// goroutine is parked: if a participant holds the token the next natural
// schedule pass will sweep (deterministically); if the world is stalled
// this recovers liveness.
func (c *Virtual) nudge() {
	c.mu.Lock()
	if !c.hasCurrent {
		c.scheduleLocked()
	}
	c.mu.Unlock()
}

// ---------------------------------------------------------------------------
// Scheduler core
// ---------------------------------------------------------------------------

// scheduleLocked hands the execution token to the next runnable
// participant; with none runnable it readmits any completed compute phase,
// sweeps canceled waiters, then advances modeled time to the earliest
// sleeper. Caller holds c.mu.
func (c *Virtual) scheduleLocked() {
	if c.hasCurrent {
		return
	}
	if len(c.runq) == 0 && (c.computing > 0 || len(c.computeDone) > 0) {
		// An off-token compute phase is pending. Readmission may only
		// happen here — the run queue is empty, so this juncture is reached
		// at a schedule-determined point — and only once *every* in-flight
		// body has finished, so the admitted set never depends on real
		// completion order. Until then the world holds still: no grant, no
		// cancellation sweep, and above all no time advance — Compute
		// rejoins at the exact virtual instant it left.
		if c.computing > 0 {
			return // the last finishing body re-runs the scheduler
		}
		for i := 1; i < len(c.computeDone); i++ {
			for j := i; j > 0 && c.computeDone[j].seq < c.computeDone[j-1].seq; j-- {
				c.computeDone[j], c.computeDone[j-1] = c.computeDone[j-1], c.computeDone[j]
			}
		}
		for _, r := range c.computeDone {
			c.recordLocked(TraceCompute, r.seq, "")
		}
		c.runq = append(c.runq, c.computeDone...)
		c.computeDone = nil
	}
	if len(c.runq) == 0 {
		// Before letting time move (or stalling), deliver pending
		// cancellations at the current instant, in registration order.
		c.sweepCanceledLocked()
	}
	if len(c.runq) > 0 {
		r := c.runq[0]
		c.runq = c.runq[1:]
		c.hasCurrent = true
		c.recordLocked(TraceGrant, r.seq, "")
		r.g <- struct{}{}
		return
	}
	if len(c.sleepers) > 0 {
		best := 0
		for i, s := range c.sleepers[1:] {
			b := c.sleepers[best]
			if s.deadline.Before(b.deadline) ||
				(s.deadline.Equal(b.deadline) && s.seq < b.seq) {
				best = i + 1
			}
		}
		s := c.sleepers[best]
		c.sleepers = append(c.sleepers[:best], c.sleepers[best+1:]...)
		if s.deadline.After(c.now) {
			c.now = s.deadline
		}
		s.claimed = true
		c.hasCurrent = true
		c.recordLocked(TraceAdvance, s.seq, "")
		s.g <- struct{}{}
		return
	}
	if c.participants > 0 {
		// Everyone is parked and no modeled work is pending: the world can
		// only resume on an external signal (Adopt, Unblock, a primitive
		// fired from outside, or a context cancellation).
		c.stalls++
	}
}

// sweepCanceledLocked claims every sleeper and parked waiter whose context
// is already canceled, making them runnable (in seq order) at the current
// modeled time. Caller holds c.mu.
func (c *Virtual) sweepCanceledLocked() {
	var due []*parker
	keep := c.sleepers[:0]
	for _, r := range c.sleepers {
		switch {
		case r.claimed:
			// Already woken through another path; never grant twice.
		case r.ctx != nil && r.ctx.Err() != nil:
			due = append(due, r)
		default:
			keep = append(keep, r)
		}
	}
	c.sleepers = keep
	keepP := c.parked[:0]
	for _, r := range c.parked {
		switch {
		case r.claimed:
		case r.ctx != nil && r.ctx.Err() != nil:
			due = append(due, r)
		default:
			keepP = append(keepP, r)
		}
	}
	c.parked = keepP
	if len(due) == 0 {
		return
	}
	for i := 1; i < len(due); i++ {
		for j := i; j > 0 && due[j].seq < due[j-1].seq; j-- {
			due[j], due[j-1] = due[j-1], due[j]
		}
	}
	for _, r := range due {
		r.claimed = true
		r.canceled = true
		c.recordLocked(TraceCancel, r.seq, "")
		c.runq = append(c.runq, r)
	}
}

func removeParker(ws *[]*parker, r *parker) bool {
	for i, x := range *ws {
		if x == r {
			*ws = append((*ws)[:i], (*ws)[i+1:]...)
			return true
		}
	}
	return false
}

var _ Clock = (*Virtual)(nil)
