package vclock

import (
	"context"
	"sync"
	"time"
)

// Virtual is a conservative virtual-time executor: a Clock whose modeled
// time advances to the earliest sleeper deadline whenever every registered
// goroutine is quiescent (blocked in Sleep or parked in a clock-aware
// primitive), so modeled sleeps cost zero wall time.
//
// The executor is cooperative and single-runner: at most one registered
// participant executes at a time, holding an implicit execution token.
// The token is released when the holder sleeps, parks (Notifier, Event,
// Group, Sem — see primitives.go), blocks (Block/Unblock) or exits, and is
// handed to the next runnable participant in FIFO order; when no
// participant is runnable, time jumps to the earliest sleeper's deadline
// and that sleeper runs. Ties on deadline wake in Sleep-call order. This
// serialization makes a same-seed run bit-reproducible: every Now() reads
// the same modeled instant in every run, and every scheduling decision
// happens in the same order.
//
// Context cancellation is delivered through the scheduler: every Sleep and
// primitive Wait registers its context, and before the executor advances
// modeled time (or declares the world stalled) it sweeps the wait lists
// and makes every waiter with a canceled context runnable at the *current*
// instant. A cancellation issued by a participant therefore takes effect
// at the modeled time it was issued — never after a spurious time jump —
// which keeps teardown paths (walltime kills, evictions, processor stops)
// deterministic. Cancellations arriving from outside the scheduled world
// (a wall-clock context timeout on a hung run) are picked up by the same
// sweep, raced only by their nature.
//
// Participation contract:
//
//   - Every goroutine that touches the clock (or state shared with clock
//     users) must be a participant: spawned via Go, or registered via
//     Adopt (the experiment driver does this) and deregistered via Leave.
//   - Participants must not block on bare channels/sync primitives fed by
//     other participants; they park through Sleep or the clock-aware
//     primitives instead. A bare block holds the token and stalls the
//     world (a real deadlock, surfaced by the caller's context timeout).
//   - Block/Unblock is the escape hatch for waiting on *external*
//     (non-participant) work; between the two calls the goroutine is
//     invisible to the scheduler, so signals from fellow participants must
//     not be awaited this way (the world may advance past the signal).
type Virtual struct {
	mu         sync.Mutex
	now        time.Time
	seq        uint64
	hasCurrent bool

	// runq is a head-indexed FIFO deque: pops advance runqHead instead of
	// re-slicing, so the backing array's capacity is reused across
	// grant/readmit cycles instead of being reallocated by every
	// append-after-pop. Empty means runqHead == len(runq).
	runq     []*parker
	runqHead int

	// sleepers is a binary min-heap keyed by (deadline, seq): the next
	// sleeper to wake is peeked in O(1) and popped in O(log n), and the
	// (deadline, Sleep-ordinal) key reproduces exactly the order the old
	// linear scan selected (ties on deadline wake in Sleep-call order;
	// both keys together are unique, so the order is total).
	sleepers sleepHeap

	// parked is an intrusive doubly-linked list of primitive waiters:
	// wake unlinks in O(1) where a slice would be scanned linearly. List
	// order is insertion order, but nothing depends on it — the
	// cancellation sweep re-sorts due waiters by seq.
	parkedHead, parkedTail *parker
	parkedLen              int

	blocked      int
	participants int
	stalls       uint64

	// Parallel compute phase (compute.go). computing counts Compute bodies
	// currently executing off-token; computeDone holds finished bodies
	// awaiting deterministic readmission; computeSeq numbers Compute calls
	// in token order (the spawn ordinal that fixes the join order).
	computing   int
	computeSeq  uint64
	computeDone []*parker

	// rec, when non-nil, records every scheduling decision (trace.go).
	rec *recorder
}

// grant is a one-shot execution-token handoff channel (buffered so the
// granter never blocks).
type grant chan struct{}

// parker is one goroutine's registration in a wait list: the run queue, the
// sleeper heap (deadline set) or the parked list (waiting on a primitive).
// A parker is claimed exactly once — by its primitive's signal, by the
// scheduler's deadline wake, or by the cancellation sweep.
type parker struct {
	g        grant
	ctx      context.Context // nil: not cancelable
	deadline time.Time       // zero: not sleeping
	seq      uint64
	claimed  bool
	canceled bool

	// heapIdx is this parker's position in the sleeper heap (-1 when not
	// enrolled); the heap maintains it so the cancellation sweep can
	// remove an arbitrary sleeper in O(log n).
	heapIdx int

	// prev/next link the scheduler's intrusive parked list; onParked
	// distinguishes "not on the list" from "first/last element".
	prev, next *parker
	onParked   bool
}

// ---------------------------------------------------------------------------
// Sleeper heap
// ---------------------------------------------------------------------------

// sleepHeap is a binary min-heap of sleepers ordered by (deadline, seq).
// The key is unique per entry (seq is), so the pop order is a total order
// identical to the linear minimum scan it replaced — the heap changes the
// cost of a decision, never the decision (TestSleeperHeapMatchesLinearScan
// proves the equivalence property over randomized operation sequences).
type sleepHeap []*parker

// sleepBefore is the scheduling order: earlier deadline first, ties broken
// by Sleep-call order.
func sleepBefore(a, b *parker) bool {
	if a.deadline.Equal(b.deadline) {
		return a.seq < b.seq
	}
	return a.deadline.Before(b.deadline)
}

func (h sleepHeap) swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].heapIdx = i
	h[j].heapIdx = j
}

func (h sleepHeap) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !sleepBefore(h[i], h[p]) {
			return
		}
		h.swap(i, p)
		i = p
	}
}

func (h sleepHeap) down(i int) {
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && sleepBefore(h[r], h[l]) {
			m = r
		}
		if !sleepBefore(h[m], h[i]) {
			return
		}
		h.swap(i, m)
		i = m
	}
}

func (h *sleepHeap) push(r *parker) {
	*h = append(*h, r)
	r.heapIdx = len(*h) - 1
	h.up(r.heapIdx)
}

// popMin removes and returns the sleeper with the smallest (deadline, seq).
func (h *sleepHeap) popMin() *parker {
	old := *h
	r := old[0]
	last := len(old) - 1
	old[0] = old[last]
	old[0].heapIdx = 0
	old[last] = nil
	*h = old[:last]
	if last > 0 {
		h.down(0)
	}
	r.heapIdx = -1
	return r
}

// removeIdx removes the sleeper at heap index i (the cancellation sweep's
// arbitrary-position removal).
func (h *sleepHeap) removeIdx(i int) {
	old := *h
	last := len(old) - 1
	r := old[i]
	if i != last {
		old[i] = old[last]
		old[i].heapIdx = i
	}
	old[last] = nil
	*h = old[:last]
	if i < last {
		h.down(i)
		h.up(i)
	}
	r.heapIdx = -1
}

// NewVirtual creates a virtual-time executor starting at the given modeled
// time. The calling goroutine is NOT registered; call Adopt (or spawn all
// work via Go) before touching the clock.
func NewVirtual(start time.Time) *Virtual {
	return &Virtual{now: start}
}

// Now implements Clock.
func (c *Virtual) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Since implements Clock.
func (c *Virtual) Since(t time.Time) time.Duration { return c.Now().Sub(t) }

// Sleep implements Clock: the calling participant parks until modeled time
// reaches now+d, which costs no wall time. Returns false if ctx was
// canceled first.
func (c *Virtual) Sleep(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	c.mu.Lock()
	if !c.hasCurrent {
		c.mu.Unlock()
		panic("vclock: Sleep on Virtual clock from an unregistered goroutine (use Go or Adopt)")
	}
	c.seq++
	r := &parker{g: make(grant, 1), ctx: ctx, deadline: c.now.Add(d), seq: c.seq, heapIdx: -1}
	c.sleepers.push(r)
	c.hasCurrent = false
	c.scheduleLocked()
	c.mu.Unlock()
	return c.await(r)
}

// await blocks until r's grant arrives, nudging the scheduler if r's
// context fires first (external cancellations reach a stalled world this
// way; participant-issued ones are claimed by the scheduler's own sweep).
// It reports whether the wake-up was a signal (true) or a cancellation.
func (c *Virtual) await(r *parker) bool {
	if r.ctx == nil {
		<-r.g
	} else {
		select {
		case <-r.g:
		case <-r.ctx.Done():
			c.nudge()
			<-r.g
		}
	}
	// r.claimed was set before the grant was sent; the channel receive
	// orders the read of r.canceled after it.
	return !r.canceled
}

// Go spawns fn as a registered participant. It may be called from inside
// or outside the scheduled world; fn starts once the scheduler hands it
// the execution token.
func (c *Virtual) Go(fn func()) {
	r := &parker{g: make(grant, 1)}
	c.mu.Lock()
	c.participants++
	c.runq = append(c.runq, r)
	c.scheduleLocked()
	c.mu.Unlock()
	go func() {
		<-r.g
		defer c.exit()
		fn()
	}()
}

// Adopt registers the calling goroutine as a participant and blocks until
// it holds the execution token. Experiment drivers call this once, before
// interacting with any component on the clock, and pair it with Leave.
func (c *Virtual) Adopt() {
	r := &parker{g: make(grant, 1)}
	c.mu.Lock()
	c.participants++
	c.runq = append(c.runq, r)
	c.scheduleLocked()
	c.mu.Unlock()
	<-r.g
}

// Leave deregisters the calling participant (the inverse of Adopt) and
// releases the execution token.
func (c *Virtual) Leave() { c.exit() }

// Block marks the calling participant as waiting on something external to
// the scheduled world and releases the execution token. It must be paired
// with Unblock. See the participation contract above for when this is
// (and is not) safe.
func (c *Virtual) Block() {
	c.mu.Lock()
	if !c.hasCurrent {
		c.mu.Unlock()
		panic("vclock: Block on Virtual clock from an unregistered goroutine")
	}
	c.blocked++
	c.hasCurrent = false
	c.scheduleLocked()
	c.mu.Unlock()
}

// Unblock re-enters the scheduled world after Block, waiting for the
// execution token.
func (c *Virtual) Unblock() {
	r := &parker{g: make(grant, 1)}
	c.mu.Lock()
	c.blocked--
	c.runq = append(c.runq, r)
	c.scheduleLocked()
	c.mu.Unlock()
	<-r.g
}

// Participants returns the number of registered participant goroutines.
func (c *Virtual) Participants() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.participants
}

// PendingSleepers reports how many participants are blocked in Sleep.
func (c *Virtual) PendingSleepers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.sleepers)
}

// Stalls counts the times the scheduler found participants registered but
// nothing runnable and nothing sleeping — i.e. everyone parked waiting for
// an external signal. A rising count with no external waker in sight is a
// deadlock (see DESIGN.md, "Deadlock versus starvation").
func (c *Virtual) Stalls() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stalls
}

// exit removes the current participant from the world.
func (c *Virtual) exit() {
	c.mu.Lock()
	if !c.hasCurrent {
		c.mu.Unlock()
		panic("vclock: participant exit without holding the execution token")
	}
	c.participants--
	c.hasCurrent = false
	c.scheduleLocked()
	c.mu.Unlock()
}

// ---------------------------------------------------------------------------
// Primitive support (used by primitives.go)
// ---------------------------------------------------------------------------

// newParker allocates a wait registration for the current goroutine; the
// caller stores it in a primitive's waiter list, then calls park.
func (c *Virtual) newParker(ctx context.Context) *parker {
	c.mu.Lock()
	c.seq++
	r := &parker{g: make(grant, 1), ctx: ctx, seq: c.seq, heapIdx: -1}
	c.mu.Unlock()
	return r
}

// parkedPush appends r to the tail of the intrusive parked list. Caller
// holds c.mu.
func (c *Virtual) parkedPush(r *parker) {
	r.onParked = true
	r.prev = c.parkedTail
	r.next = nil
	if c.parkedTail != nil {
		c.parkedTail.next = r
	} else {
		c.parkedHead = r
	}
	c.parkedTail = r
	c.parkedLen++
}

// parkedRemove unlinks r from the parked list in O(1); a no-op when r is
// not on it. Caller holds c.mu.
func (c *Virtual) parkedRemove(r *parker) {
	if !r.onParked {
		return
	}
	if r.prev != nil {
		r.prev.next = r.next
	} else {
		c.parkedHead = r.next
	}
	if r.next != nil {
		r.next.prev = r.prev
	} else {
		c.parkedTail = r.prev
	}
	r.prev, r.next = nil, nil
	r.onParked = false
	c.parkedLen--
}

// park releases the token on behalf of the current participant whose
// registration r is held by a primitive. The caller then awaits r.
func (c *Virtual) park(r *parker) {
	c.mu.Lock()
	if !c.hasCurrent {
		c.mu.Unlock()
		panic("vclock: wait on Virtual-clock primitive from an unregistered goroutine (use Go or Adopt)")
	}
	if !r.claimed {
		// A signal from outside the scheduled world may land between the
		// primitive registering r and this park; r is then already claimed
		// and queued runnable, and must not enter the parked list.
		c.parkedPush(r)
	}
	c.hasCurrent = false
	c.scheduleLocked()
	c.mu.Unlock()
}

// wake makes a parked waiter runnable after its primitive signaled it; the
// waker keeps running, so this never blocks. It reports whether the signal
// claimed the waiter (false: already canceled in the meantime).
func (c *Virtual) wake(r *parker) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if r.claimed {
		return false
	}
	r.claimed = true
	c.parkedRemove(r)
	c.runq = append(c.runq, r)
	c.scheduleLocked()
	return true
}

// nudge asks the scheduler to re-run its cancellation sweep if the world
// is currently idle. Called from await when a context fires while its
// goroutine is parked: if a participant holds the token the next natural
// schedule pass will sweep (deterministically); if the world is stalled
// this recovers liveness.
func (c *Virtual) nudge() {
	c.mu.Lock()
	if !c.hasCurrent {
		c.scheduleLocked()
	}
	c.mu.Unlock()
}

// ---------------------------------------------------------------------------
// Scheduler core
// ---------------------------------------------------------------------------

// grantNextLocked pops the run queue's head and hands it the token.
// Caller holds c.mu and has checked the queue is non-empty.
func (c *Virtual) grantNextLocked() {
	r := c.runq[c.runqHead]
	c.runq[c.runqHead] = nil
	c.runqHead++
	if c.runqHead == len(c.runq) {
		c.runq = c.runq[:0]
		c.runqHead = 0
	}
	c.hasCurrent = true
	c.recordLocked(TraceGrant, r.seq, "")
	r.g <- struct{}{}
}

// scheduleLocked hands the execution token to the next runnable
// participant; with none runnable it readmits any completed compute phase,
// sweeps canceled waiters, then advances modeled time to the earliest
// sleeper. Caller holds c.mu.
func (c *Virtual) scheduleLocked() {
	if c.hasCurrent {
		return
	}
	if c.runqHead < len(c.runq) {
		// Fast path: a runnable successor takes the token without the
		// scheduler touching the sleeper heap or the parked list at all —
		// the compute-readmit juncture and the cancellation sweep only
		// ever happen on an empty run queue, exactly as before the heap
		// refactor, so hoisting the grant changes no decision.
		c.grantNextLocked()
		return
	}
	if c.computing > 0 || len(c.computeDone) > 0 {
		// An off-token compute phase is pending. Readmission may only
		// happen here — the run queue is empty, so this juncture is reached
		// at a schedule-determined point — and only once *every* in-flight
		// body has finished, so the admitted set never depends on real
		// completion order. Until then the world holds still: no grant, no
		// cancellation sweep, and above all no time advance — Compute
		// rejoins at the exact virtual instant it left.
		if c.computing > 0 {
			return // the last finishing body re-runs the scheduler
		}
		for i := 1; i < len(c.computeDone); i++ {
			for j := i; j > 0 && c.computeDone[j].seq < c.computeDone[j-1].seq; j-- {
				c.computeDone[j], c.computeDone[j-1] = c.computeDone[j-1], c.computeDone[j]
			}
		}
		for _, r := range c.computeDone {
			c.recordLocked(TraceCompute, r.seq, "")
		}
		c.runq = append(c.runq, c.computeDone...)
		c.computeDone = nil
		c.grantNextLocked()
		return
	}
	// Before letting time move (or stalling), deliver pending
	// cancellations at the current instant, in registration order.
	c.sweepCanceledLocked()
	if c.runqHead < len(c.runq) {
		c.grantNextLocked()
		return
	}
	if len(c.sleepers) > 0 {
		s := c.sleepers.popMin()
		if s.deadline.After(c.now) {
			c.now = s.deadline
		}
		s.claimed = true
		c.hasCurrent = true
		c.recordLocked(TraceAdvance, s.seq, "")
		s.g <- struct{}{}
		return
	}
	if c.participants > 0 {
		// Everyone is parked and no modeled work is pending: the world can
		// only resume on an external signal (Adopt, Unblock, a primitive
		// fired from outside, or a context cancellation).
		c.stalls++
	}
}

// sweepCanceledLocked claims every sleeper and parked waiter whose context
// is already canceled, making them runnable (in seq order) at the current
// modeled time. The common no-cancellation case only reads: one ctx check
// per waiter, no restructuring. Caller holds c.mu.
func (c *Virtual) sweepCanceledLocked() {
	var due []*parker
	// Scan the heap's backing array directly — collection order is
	// irrelevant because due is sorted by seq below, and removal by heap
	// index keeps the heap invariant without a rebuild.
	for i := 0; i < len(c.sleepers); {
		r := c.sleepers[i]
		switch {
		case r.claimed:
			// Already woken through another path; never grant twice.
			c.sleepers.removeIdx(i)
			// The entry swapped into i is unexamined: do not advance.
		case r.ctx != nil && r.ctx.Err() != nil:
			due = append(due, r)
			c.sleepers.removeIdx(i)
		default:
			i++
		}
	}
	for r := c.parkedHead; r != nil; {
		next := r.next
		switch {
		case r.claimed:
			c.parkedRemove(r)
		case r.ctx != nil && r.ctx.Err() != nil:
			due = append(due, r)
			c.parkedRemove(r)
		}
		r = next
	}
	if len(due) == 0 {
		return
	}
	for i := 1; i < len(due); i++ {
		for j := i; j > 0 && due[j].seq < due[j-1].seq; j-- {
			due[j], due[j-1] = due[j-1], due[j]
		}
	}
	for _, r := range due {
		r.claimed = true
		r.canceled = true
		c.recordLocked(TraceCancel, r.seq, "")
		c.runq = append(c.runq, r)
	}
}

func removeParker(ws *[]*parker, r *parker) bool {
	for i, x := range *ws {
		if x == r {
			*ws = append((*ws)[:i], (*ws)[i+1:]...)
			return true
		}
	}
	return false
}

var _ Clock = (*Virtual)(nil)
