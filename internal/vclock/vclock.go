// Package vclock provides the virtual-time substrate that lets gopilot
// reproduce testbed-scale experiments (hours of queue waits, minutes-long
// tasks) in milliseconds of wall time while preserving every ratio the
// paper's figures depend on.
//
// All *modeled* latencies in the simulated infrastructures (batch queue
// waits, VM boot times, data transfers, task service times) are expressed in
// modeled time and slept through a Clock. Four implementations exist:
//
//   - Real: modeled time == wall time (for demos running live).
//   - Scaled: modeled time divided by a factor before sleeping. A factor of
//     1000 makes one modeled second cost one wall millisecond.
//   - Manual: a deterministic test clock advanced explicitly.
//   - Virtual: a conservative virtual-time executor (virtual.go) that
//     advances to the earliest sleeper deadline whenever all registered
//     goroutines are quiescent — modeled sleeps cost zero wall time and
//     same-seed runs are bit-reproducible. Pure CPU kernels escape its
//     single-runner serialization through the deterministic parallel
//     compute phase (compute.go): real cores, same schedule.
//
// Experiment reports always quote modeled durations, so results read like
// the paper's (seconds and minutes, not microseconds).
package vclock

import (
	"context"
	"sort"
	"sync"
	"time"
)

// Clock abstracts the passage of modeled time.
type Clock interface {
	// Now returns the current modeled time.
	Now() time.Time
	// Sleep blocks for the given modeled duration (or until the context is
	// done, whichever comes first) and reports whether the full duration
	// elapsed (false means the context was canceled).
	Sleep(ctx context.Context, d time.Duration) bool
	// Since returns the modeled time elapsed since t.
	Since(t time.Time) time.Duration
}

// Real is a Clock backed directly by wall time.
type Real struct{}

// NewReal returns a wall-time clock.
func NewReal() Real { return Real{} }

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// Since implements Clock.
func (Real) Since(t time.Time) time.Duration { return time.Since(t) }

// Sleep implements Clock.
func (Real) Sleep(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// Scaled is a Clock in which modeled time passes `Factor` times faster than
// wall time: Sleep(d) sleeps d/Factor of wall time, and Now advances by
// Factor modeled units per wall unit. It is the workhorse for experiments.
type Scaled struct {
	factor float64
	epoch  time.Time // modeled epoch
	start  time.Time // wall time at construction
}

// Epoch is the fixed modeled epoch shared by Scaled and (by convention)
// Virtual clocks, so timestamps agree across clock modes and runs. It is
// the arXiv v2 date of the paper.
var Epoch = time.Date(2020, 3, 25, 0, 0, 0, 0, time.UTC)

// NewScaled creates a scaled clock. factor must be >= 1; the modeled epoch
// is fixed for reproducible timestamps across runs.
func NewScaled(factor float64) *Scaled {
	if factor < 1 {
		factor = 1
	}
	return &Scaled{
		factor: factor,
		epoch:  Epoch,
		start:  time.Now(),
	}
}

// Factor returns the speed-up factor.
func (c *Scaled) Factor() float64 { return c.factor }

// Now implements Clock.
func (c *Scaled) Now() time.Time {
	wall := time.Since(c.start)
	return c.epoch.Add(time.Duration(float64(wall) * c.factor))
}

// Since implements Clock.
func (c *Scaled) Since(t time.Time) time.Duration { return c.Now().Sub(t) }

// Sleep implements Clock. The wall duration is the modeled duration
// divided by the factor, not floored: a 1µs floor here used to inflate
// dense sub-resolution modeled sleeps by up to 1000× at high factors,
// skewing short-task exhibits. Sub-nanosecond remainders round to a 1ns
// timer, which still yields the scheduler so ordering remains plausible.
func (c *Scaled) Sleep(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	wall := time.Duration(float64(d) / c.factor)
	if wall <= 0 {
		wall = time.Nanosecond
	}
	t := time.NewTimer(wall)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// Manual is a deterministic Clock for unit tests: time only moves when
// Advance is called. Goroutines blocked in Sleep are released in timestamp
// order as the clock passes their deadlines.
type Manual struct {
	mu      sync.Mutex
	now     time.Time
	waiters []*manualWaiter
}

type manualWaiter struct {
	deadline time.Time
	ch       chan struct{}
}

// NewManual creates a manual clock starting at the given time.
func NewManual(start time.Time) *Manual { return &Manual{now: start} }

// Now implements Clock.
func (c *Manual) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Since implements Clock.
func (c *Manual) Since(t time.Time) time.Duration { return c.Now().Sub(t) }

// Sleep implements Clock.
func (c *Manual) Sleep(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	c.mu.Lock()
	w := &manualWaiter{deadline: c.now.Add(d), ch: make(chan struct{})}
	c.waiters = append(c.waiters, w)
	c.mu.Unlock()
	select {
	case <-w.ch:
		return true
	case <-ctx.Done():
		c.remove(w)
		return false
	}
}

func (c *Manual) remove(w *manualWaiter) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, x := range c.waiters {
		if x == w {
			c.waiters = append(c.waiters[:i], c.waiters[i+1:]...)
			return
		}
	}
}

// Advance moves the clock forward by d, waking every sleeper whose deadline
// has passed (in deadline order).
func (c *Manual) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	var due []*manualWaiter
	var rest []*manualWaiter
	for _, w := range c.waiters {
		if !w.deadline.After(c.now) {
			due = append(due, w)
		} else {
			rest = append(rest, w)
		}
	}
	c.waiters = rest
	c.mu.Unlock()
	sort.Slice(due, func(i, j int) bool { return due[i].deadline.Before(due[j].deadline) })
	for _, w := range due {
		close(w.ch)
	}
}

// PendingSleepers reports how many goroutines are currently blocked in Sleep.
func (c *Manual) PendingSleepers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.waiters)
}

var (
	_ Clock = Real{}
	_ Clock = (*Scaled)(nil)
	_ Clock = (*Manual)(nil)
)
