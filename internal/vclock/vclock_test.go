package vclock

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestRealSleepRespectsContext(t *testing.T) {
	c := NewReal()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if c.Sleep(ctx, time.Hour) {
		t.Fatal("Sleep returned true with canceled context")
	}
}

func TestRealSleepZero(t *testing.T) {
	c := NewReal()
	if !c.Sleep(context.Background(), 0) {
		t.Fatal("zero sleep should complete")
	}
}

func TestScaledSleepIsFaster(t *testing.T) {
	c := NewScaled(1000)
	start := time.Now()
	if !c.Sleep(context.Background(), 2*time.Second) {
		t.Fatal("Sleep failed")
	}
	wall := time.Since(start)
	if wall > 500*time.Millisecond {
		t.Fatalf("2s modeled sleep took %v wall time at factor 1000", wall)
	}
}

func TestScaledNowAdvancesByFactor(t *testing.T) {
	c := NewScaled(1000)
	t0 := c.Now()
	time.Sleep(10 * time.Millisecond)
	elapsed := c.Since(t0)
	// 10ms wall at factor 1000 ≈ 10 modeled seconds; allow generous slack.
	if elapsed < 5*time.Second || elapsed > 60*time.Second {
		t.Fatalf("modeled elapsed = %v, want ≈10s", elapsed)
	}
}

func TestScaledFactorClamped(t *testing.T) {
	c := NewScaled(0.5)
	if c.Factor() != 1 {
		t.Fatalf("Factor = %g, want clamp to 1", c.Factor())
	}
}

func TestManualSleepWakesInOrder(t *testing.T) {
	c := NewManual(time.Unix(0, 0))
	var mu sync.Mutex
	var order []int
	var wg sync.WaitGroup
	sleep := func(id int, d time.Duration) {
		defer wg.Done()
		c.Sleep(context.Background(), d)
		mu.Lock()
		order = append(order, id)
		mu.Unlock()
	}
	wg.Add(2)
	go sleep(1, 10*time.Second)
	go sleep(2, 5*time.Second)
	// Wait until both goroutines are blocked.
	for c.PendingSleepers() != 2 {
		time.Sleep(time.Millisecond)
	}
	c.Advance(20 * time.Second)
	wg.Wait()
	if len(order) != 2 {
		t.Fatalf("order = %v", order)
	}
	if c.PendingSleepers() != 0 {
		t.Fatalf("PendingSleepers = %d, want 0", c.PendingSleepers())
	}
}

func TestManualPartialAdvance(t *testing.T) {
	c := NewManual(time.Unix(0, 0))
	done := make(chan bool, 1)
	go func() {
		done <- c.Sleep(context.Background(), 10*time.Second)
	}()
	for c.PendingSleepers() != 1 {
		time.Sleep(time.Millisecond)
	}
	c.Advance(5 * time.Second)
	select {
	case <-done:
		t.Fatal("sleeper woke before deadline")
	case <-time.After(10 * time.Millisecond):
	}
	c.Advance(5 * time.Second)
	if !<-done {
		t.Fatal("sleeper should complete")
	}
}

func TestManualSleepCancel(t *testing.T) {
	c := NewManual(time.Unix(0, 0))
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan bool, 1)
	go func() {
		done <- c.Sleep(ctx, time.Hour)
	}()
	for c.PendingSleepers() != 1 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if <-done {
		t.Fatal("canceled sleep returned true")
	}
	if c.PendingSleepers() != 0 {
		t.Fatalf("canceled waiter not removed: %d", c.PendingSleepers())
	}
}

func TestManualNowAndSince(t *testing.T) {
	start := time.Unix(100, 0)
	c := NewManual(start)
	if !c.Now().Equal(start) {
		t.Fatal("Now != start")
	}
	c.Advance(30 * time.Second)
	if got := c.Since(start); got != 30*time.Second {
		t.Fatalf("Since = %v, want 30s", got)
	}
}
