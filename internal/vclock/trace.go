package vclock

import "time"

// This file implements the schedule recorder: an optional, ring-buffered
// trace of every scheduling decision a Virtual executor makes — token
// grants, time advances, cancellation deliveries, compute-phase
// readmissions, plus application-level marks (e.g. planner binds). Because
// a same-seed run replays the exact same decision sequence, the recorder
// turns "this seed fails" into "decision #N is where two runs diverge":
// the chaos replay tool (cmd/chaosreplay) compares the running hash chain
// checkpoint-by-checkpoint, then re-records only the divergent window to
// pinpoint the first differing decision.
//
// The recorder is off by default and costs one nil-check per decision when
// off. When on, it keeps (a) a running 64-bit hash chain over all
// decisions, (b) a checkpoint of that hash every Stride decisions, (c) a
// ring buffer of the last Ring decisions, and (d) an exact capture of the
// decisions whose ordinal falls in [WindowFrom, WindowTo).

// TraceKind classifies one scheduling decision.
type TraceKind uint8

// Scheduling decision kinds.
const (
	// TraceGrant: the execution token was handed to a runnable participant.
	TraceGrant TraceKind = iota
	// TraceAdvance: modeled time advanced to a sleeper's deadline and the
	// sleeper was granted the token.
	TraceAdvance
	// TraceCancel: a canceled waiter was claimed by the cancellation sweep
	// and made runnable at the current instant.
	TraceCancel
	// TraceCompute: a finished parallel compute body was readmitted to the
	// run queue at the instant it left.
	TraceCompute
	// TraceMark: an application-level annotation (e.g. a planner bind)
	// recorded via Mark.
	TraceMark
)

// String implements fmt.Stringer.
func (k TraceKind) String() string {
	switch k {
	case TraceGrant:
		return "grant"
	case TraceAdvance:
		return "advance"
	case TraceCancel:
		return "cancel"
	case TraceCompute:
		return "compute"
	case TraceMark:
		return "mark"
	default:
		return "unknown"
	}
}

// TraceEntry is one recorded scheduling decision.
type TraceEntry struct {
	// N is the 1-based decision ordinal.
	N uint64
	// Kind classifies the decision.
	Kind TraceKind
	// At is the modeled instant of the decision.
	At time.Time
	// Seq identifies the affected parker (its registration sequence number;
	// 0 for participants registered without one and for marks).
	Seq uint64
	// Note carries the annotation of a TraceMark ("" otherwise).
	Note string
}

// RecorderConfig configures StartRecorder.
type RecorderConfig struct {
	// Ring is the number of most-recent decisions kept verbatim
	// (default 256).
	Ring int
	// Stride is the checkpoint interval: the running hash is snapshotted
	// every Stride decisions (default 1024).
	Stride uint64
	// WindowFrom/WindowTo select an exact-capture window of decision
	// ordinals [WindowFrom, WindowTo); both zero disables the window.
	WindowFrom, WindowTo uint64
}

// RecorderState is a snapshot of the recorder, safe to retain.
type RecorderState struct {
	// Decisions is the total number of decisions recorded.
	Decisions uint64
	// Hash is the running hash chain over all decisions.
	Hash uint64
	// Stride is the checkpoint interval in effect.
	Stride uint64
	// Checkpoints holds the hash chain value after decision Stride, 2·Stride,
	// ... — the coarse comparison vector for bisection.
	Checkpoints []uint64
	// Ring holds the last len(Ring) decisions, oldest first.
	Ring []TraceEntry
	// Window holds the exact capture of [WindowFrom, WindowTo), if set.
	Window []TraceEntry
}

// recorder is the internal recorder state; all access is under Virtual.mu.
type recorder struct {
	cfg         RecorderConfig
	n           uint64
	hash        uint64
	checkpoints []uint64
	ring        []TraceEntry // ring buffer, len == cfg.Ring once warm
	ringStart   int          // index of the oldest entry
	window      []TraceEntry
}

// traceMix is the splitmix64 finalizer, used to chain decision hashes. It
// is self-contained so vclock stays dependency-free.
func traceMix(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// traceNoteHash hashes a mark note (FNV-1a).
func traceNoteHash(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// StartRecorder enables schedule recording on the executor. Call it before
// the workload starts so every run records the same decision ordinals;
// calling it again resets the recorder.
func (c *Virtual) StartRecorder(cfg RecorderConfig) {
	if cfg.Ring <= 0 {
		cfg.Ring = 256
	}
	if cfg.Stride == 0 {
		cfg.Stride = 1024
	}
	c.mu.Lock()
	c.rec = &recorder{cfg: cfg}
	c.mu.Unlock()
}

// StopRecorder disables recording (existing state is discarded).
func (c *Virtual) StopRecorder() {
	c.mu.Lock()
	c.rec = nil
	c.mu.Unlock()
}

// RecorderState snapshots the recorder; zero-valued when recording is off.
func (c *Virtual) RecorderState() RecorderState {
	c.mu.Lock()
	defer c.mu.Unlock()
	r := c.rec
	if r == nil {
		return RecorderState{}
	}
	out := RecorderState{
		Decisions:   r.n,
		Hash:        r.hash,
		Stride:      r.cfg.Stride,
		Checkpoints: append([]uint64(nil), r.checkpoints...),
		Window:      append([]TraceEntry(nil), r.window...),
	}
	out.Ring = make([]TraceEntry, 0, len(r.ring))
	for i := 0; i < len(r.ring); i++ {
		out.Ring = append(out.Ring, r.ring[(r.ringStart+i)%len(r.ring)])
	}
	return out
}

// Mark records an application-level annotation as a scheduling decision.
// No-op when recording is off. The seq argument is free-form (chaos uses
// it for fault/bind ordinals).
func (c *Virtual) Mark(note string, seq uint64) {
	c.mu.Lock()
	c.recordLocked(TraceMark, seq, note)
	c.mu.Unlock()
}

// Mark forwards to Virtual.Mark when c is a Virtual clock and is a no-op
// otherwise, mirroring the Go/Compute package-helper pattern so callers
// need not switch on clock mode.
func Mark(c Clock, note string, seq uint64) {
	if v, ok := c.(*Virtual); ok {
		v.Mark(note, seq)
	}
}

// recordLocked appends one decision to the recorder. Caller holds c.mu.
func (c *Virtual) recordLocked(kind TraceKind, seq uint64, note string) {
	r := c.rec
	if r == nil {
		return
	}
	r.n++
	e := TraceEntry{N: r.n, Kind: kind, At: c.now, Seq: seq, Note: note}
	h := traceMix(uint64(kind)<<56 ^ seq)
	h ^= traceMix(uint64(c.now.UnixNano()))
	if note != "" {
		h ^= traceNoteHash(note)
	}
	r.hash = traceMix(r.hash ^ h)
	if r.n%r.cfg.Stride == 0 {
		r.checkpoints = append(r.checkpoints, r.hash)
	}
	if len(r.ring) < r.cfg.Ring {
		r.ring = append(r.ring, e)
	} else {
		r.ring[r.ringStart] = e
		r.ringStart = (r.ringStart + 1) % len(r.ring)
	}
	if r.cfg.WindowTo > r.cfg.WindowFrom && r.n >= r.cfg.WindowFrom && r.n < r.cfg.WindowTo {
		r.window = append(r.window, e)
	}
}
