// Package rexchange implements the (adaptive) replica-exchange molecular
// dynamics case study [48], [72] — the application that drove the first
// pilot system and the paper's canonical Table I "Task-Parallel" scenario.
//
// Each cycle runs one MD compute-unit per replica (a synthetic MD kernel:
// modeled compute plus a real Metropolis random walk over a potential),
// then a synchronous exchange phase attempts temperature swaps between
// neighbouring replicas with the standard parallel-tempering criterion.
// The adaptive variant ([48]) retunes the temperature ladder at runtime
// when acceptance drifts from the target — the paper's R3 dynamism.
package rexchange

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"gopilot/internal/core"
	"gopilot/internal/dist"
)

// Replica is the state of one ensemble member.
type Replica struct {
	// ID indexes the replica.
	ID int
	// Temperature of the replica's thermostat.
	Temperature float64
	// Energy is the current potential energy.
	Energy float64
	// Position is the 1-D reaction coordinate of the synthetic potential.
	Position float64
}

// Config describes a replica-exchange run.
type Config struct {
	// Replicas is the ensemble size.
	Replicas int
	// Cycles is the number of MD+exchange generations.
	Cycles int
	// CoresPerReplica sizes each MD unit.
	CoresPerReplica int
	// MDTime samples the modeled MD phase duration (seconds).
	MDTime dist.Dist
	// ExchangeTime is the modeled synchronous exchange cost per cycle.
	ExchangeTime time.Duration
	// StepsPerCycle is the number of real Metropolis steps per MD phase.
	StepsPerCycle int
	// TMin and TMax bound the temperature ladder.
	TMin, TMax float64
	// Adaptive retunes the ladder when acceptance leaves
	// [TargetAcceptance/2, min(1, 2·TargetAcceptance)].
	Adaptive         bool
	TargetAcceptance float64
	// Stream is the run's slot on the experiment's seeding spine. The
	// driver (initial positions, exchange decisions) draws from its
	// "driver" child and replica i's Metropolis walk from its
	// "replica"/<i> child, so replica walks are independent of unit
	// placement and of one another. Defaults to the manager's
	// "app/rexchange" child.
	Stream *dist.Stream
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.Replicas <= 0 {
		out.Replicas = 8
	}
	if out.Cycles <= 0 {
		out.Cycles = 4
	}
	if out.CoresPerReplica <= 0 {
		out.CoresPerReplica = 1
	}
	if out.MDTime == nil {
		out.MDTime = dist.Constant(10)
	}
	if out.StepsPerCycle <= 0 {
		out.StepsPerCycle = 200
	}
	if out.TMin <= 0 {
		out.TMin = 1
	}
	if out.TMax <= out.TMin {
		out.TMax = out.TMin * 8
	}
	if out.TargetAcceptance <= 0 || out.TargetAcceptance >= 1 {
		out.TargetAcceptance = 0.25
	}
	return out
}

// Result reports a completed run.
type Result struct {
	// Replicas is the final ensemble state.
	Replicas []Replica
	// CycleTimes records the modeled duration of each cycle.
	CycleTimes []time.Duration
	// Elapsed is the total modeled runtime.
	Elapsed time.Duration
	// ExchangesAttempted and ExchangesAccepted count swap proposals.
	ExchangesAttempted int
	ExchangesAccepted  int
	// LadderRetunes counts adaptive ladder adjustments.
	LadderRetunes int
}

// AcceptanceRatio returns accepted/attempted exchanges.
func (r *Result) AcceptanceRatio() float64 {
	if r.ExchangesAttempted == 0 {
		return 0
	}
	return float64(r.ExchangesAccepted) / float64(r.ExchangesAttempted)
}

// potential is the synthetic double-well landscape the replicas explore:
// rough, multi-minimum, cheap to evaluate.
func potential(x float64) float64 {
	return 0.05*x*x*x*x - 2*x*x + 3*math.Sin(3*x)
}

// mdPhase advances a replica with Metropolis steps at its temperature —
// the real computation of the kernel.
func mdPhase(r *Replica, steps int, rng *dist.Stream) {
	for s := 0; s < steps; s++ {
		trial := r.Position + rng.NormFloat64()*0.5
		dE := potential(trial) - r.Energy
		if dE <= 0 || rng.Float64() < math.Exp(-dE/r.Temperature) {
			r.Position = trial
			r.Energy += dE
		}
	}
}

// geometricLadder spaces temperatures geometrically, the standard choice.
func geometricLadder(n int, tmin, tmax float64) []float64 {
	out := make([]float64, n)
	if n == 1 {
		out[0] = tmin
		return out
	}
	ratio := math.Pow(tmax/tmin, 1/float64(n-1))
	t := tmin
	for i := range out {
		out[i] = t
		t *= ratio
	}
	return out
}

// Run executes the ensemble on mgr's pilots, one compute-unit per replica
// per cycle, with a synchronous exchange between cycles.
func Run(ctx context.Context, mgr *core.Manager, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if mgr == nil {
		return nil, errors.New("rexchange: nil manager")
	}
	clock := mgr.Clock()
	if cfg.Stream == nil {
		cfg.Stream = mgr.Stream().Named("app/rexchange")
	}
	master := cfg.Stream.Named("driver")
	replicaRoot := cfg.Stream.Named("replica")
	ladder := geometricLadder(cfg.Replicas, cfg.TMin, cfg.TMax)

	replicas := make([]Replica, cfg.Replicas)
	walks := make([]*dist.Stream, cfg.Replicas)
	for i := range replicas {
		replicas[i] = Replica{ID: i, Temperature: ladder[i], Position: master.NormFloat64()}
		replicas[i].Energy = potential(replicas[i].Position)
		walks[i] = replicaRoot.SplitLabel(uint64(i))
	}

	res := &Result{}
	start := clock.Now()

	for cycle := 0; cycle < cfg.Cycles; cycle++ {
		cycleStart := clock.Now()

		// MD phase: one unit per replica, barrier at cycle end (the
		// synchronous ensemble pattern of [48]).
		var mu sync.Mutex
		units := make([]*core.ComputeUnit, 0, cfg.Replicas)
		for i := range replicas {
			i := i
			mdDur := time.Duration(cfg.MDTime.Sample() * float64(time.Second))
			// Replica i's walk continues its own labeled stream across
			// cycles, wherever the unit lands.
			rng := walks[i]
			u, err := mgr.SubmitUnit(core.UnitDescription{
				Name:  fmt.Sprintf("rex-c%d-r%d", cycle, i),
				Cores: cfg.CoresPerReplica,
				Run: func(ctx context.Context, tc core.TaskContext) error {
					if !tc.Sleep(ctx, mdDur) {
						return ctx.Err()
					}
					mu.Lock()
					r := replicas[i]
					mu.Unlock()
					mdPhase(&r, cfg.StepsPerCycle, rng)
					mu.Lock()
					replicas[i] = r
					mu.Unlock()
					return nil
				},
			})
			if err != nil {
				return nil, err
			}
			units = append(units, u)
		}
		for _, u := range units {
			if s, err := u.Wait(ctx); s != core.UnitDone {
				return nil, fmt.Errorf("rexchange: MD unit %s %v: %w", u.ID(), s, err)
			}
		}

		// Exchange phase (synchronous, alternating even/odd pairs).
		if cfg.ExchangeTime > 0 {
			if !clock.Sleep(ctx, cfg.ExchangeTime) {
				return nil, ctx.Err()
			}
		}
		off := cycle % 2
		cycleAttempted, cycleAccepted := 0, 0
		for i := off; i+1 < len(replicas); i += 2 {
			a, b := &replicas[i], &replicas[i+1]
			cycleAttempted++
			delta := (1/a.Temperature - 1/b.Temperature) * (b.Energy - a.Energy)
			if delta <= 0 || master.Float64() < math.Exp(-delta) {
				a.Temperature, b.Temperature = b.Temperature, a.Temperature
				cycleAccepted++
			}
		}
		res.ExchangesAttempted += cycleAttempted
		res.ExchangesAccepted += cycleAccepted

		// Adaptive ladder retuning [48]: compress the ladder when this
		// cycle's acceptance falls below half the target, stretch it when
		// exchanges are accepted too freely (replicas too close in T).
		if cfg.Adaptive && cycleAttempted > 0 {
			acc := float64(cycleAccepted) / float64(cycleAttempted)
			lo, hi := cfg.TargetAcceptance/2, math.Min(1, cfg.TargetAcceptance*2)
			if acc < lo || acc > hi {
				factor := 0.7
				if acc > hi {
					factor = 1.4
				}
				cfg.TMax = math.Max(cfg.TMin*1.5, cfg.TMax*factor)
				ladder = geometricLadder(cfg.Replicas, cfg.TMin, cfg.TMax)
				for i := range replicas {
					replicas[i].Temperature = ladder[i]
				}
				res.LadderRetunes++
			}
		}
		res.CycleTimes = append(res.CycleTimes, clock.Now().Sub(cycleStart))
	}
	res.Replicas = replicas
	res.Elapsed = clock.Now().Sub(start)
	return res, nil
}
