package rexchange

import (
	"context"
	"math"
	"testing"
	"time"

	"gopilot/internal/core"
	"gopilot/internal/dist"
	"gopilot/internal/saga"
	"gopilot/internal/vclock"
)

func newMgr(t *testing.T, cores int) *core.Manager {
	t.Helper()
	clock := vclock.NewScaled(2000)
	reg := saga.NewRegistry()
	reg.Register(saga.NewLocalService("lh", cores, clock))
	mgr := core.NewManager(core.Config{Registry: reg, Clock: clock})
	t.Cleanup(mgr.Close)
	mgr.SubmitPilot(core.PilotDescription{Resource: "local://lh", Cores: cores})
	return mgr
}

func TestGeometricLadder(t *testing.T) {
	l := geometricLadder(4, 1, 8)
	if l[0] != 1 || math.Abs(l[3]-8) > 1e-9 {
		t.Fatalf("ladder = %v", l)
	}
	for i := 1; i < len(l); i++ {
		if l[i] <= l[i-1] {
			t.Fatalf("ladder not increasing: %v", l)
		}
	}
	if ratio1, ratio2 := l[1]/l[0], l[2]/l[1]; math.Abs(ratio1-ratio2) > 1e-9 {
		t.Fatalf("ladder not geometric: %v", l)
	}
	single := geometricLadder(1, 2, 16)
	if len(single) != 1 || single[0] != 2 {
		t.Fatalf("singleton ladder = %v", single)
	}
}

func TestMDPhaseExploresAndTracksEnergy(t *testing.T) {
	rng := dist.NewStream(1)
	r := Replica{Temperature: 2, Position: 0, Energy: potential(0)}
	start := r.Position
	mdPhase(&r, 500, rng)
	if r.Position == start {
		t.Error("replica never moved")
	}
	// Energy bookkeeping must stay consistent with the potential.
	if math.Abs(r.Energy-potential(r.Position)) > 1e-6 {
		t.Errorf("energy %g drifted from potential %g", r.Energy, potential(r.Position))
	}
}

func TestHotterReplicaMovesMore(t *testing.T) {
	move := func(temp float64) float64 {
		rng := dist.NewStream(7)
		total := 0.0
		for trial := 0; trial < 20; trial++ {
			r := Replica{Temperature: temp, Position: 0, Energy: potential(0)}
			prev := r.Position
			for s := 0; s < 50; s++ {
				mdPhase(&r, 1, rng)
				total += math.Abs(r.Position - prev)
				prev = r.Position
			}
		}
		return total
	}
	if move(10) <= move(0.1) {
		t.Error("high-temperature replica did not move more than cold one")
	}
}

func TestRunCompletesAndCounts(t *testing.T) {
	mgr := newMgr(t, 8)
	res, err := Run(context.Background(), mgr, Config{
		Replicas: 8, Cycles: 3, MDTime: dist.Constant(1),
		ExchangeTime: 200 * time.Millisecond, Stream: dist.NewStream(42),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Replicas) != 8 {
		t.Fatalf("replicas = %d", len(res.Replicas))
	}
	if len(res.CycleTimes) != 3 {
		t.Fatalf("cycle times = %d, want 3", len(res.CycleTimes))
	}
	// Alternating pairing: cycle0 even pairs (4), cycle1 odd pairs (3), cycle2 even (4).
	if res.ExchangesAttempted != 11 {
		t.Fatalf("attempted = %d, want 11", res.ExchangesAttempted)
	}
	if res.ExchangesAccepted < 0 || res.ExchangesAccepted > res.ExchangesAttempted {
		t.Fatalf("accepted = %d of %d", res.ExchangesAccepted, res.ExchangesAttempted)
	}
	if res.Elapsed <= 0 {
		t.Error("elapsed not measured")
	}
}

func TestTemperatureSetPreservedByExchanges(t *testing.T) {
	mgr := newMgr(t, 8)
	cfg := Config{Replicas: 6, Cycles: 4, MDTime: dist.Constant(0.5), TMin: 1, TMax: 8, Stream: dist.NewStream(3)}
	res, err := Run(context.Background(), mgr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Exchanges permute temperatures but never create/destroy them.
	want := geometricLadder(6, 1, 8)
	got := make([]float64, 0, 6)
	for _, r := range res.Replicas {
		got = append(got, r.Temperature)
	}
	for _, w := range want {
		found := false
		for _, g := range got {
			if math.Abs(g-w) < 1e-9 {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("temperature %g missing from final set %v", w, got)
		}
	}
}

func TestWavesWhenPilotSmallerThanEnsemble(t *testing.T) {
	mgr := newMgr(t, 4) // 8 replicas on 4 cores → 2 waves per cycle
	res, err := Run(context.Background(), mgr, Config{
		Replicas: 8, Cycles: 2, MDTime: dist.Constant(2), Stream: dist.NewStream(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Each cycle ≈ 2 waves × 2s = 4s; accept broad band but must exceed
	// one wave.
	for i, ct := range res.CycleTimes {
		if ct < 3*time.Second {
			t.Errorf("cycle %d = %v, want ≥ ~4s (two waves)", i, ct)
		}
	}
}

func TestAdaptiveRetunesLadder(t *testing.T) {
	mgr := newMgr(t, 16)
	// A very low acceptance target: any cycle accepting more than 10% of
	// proposals is "too free", so the controller must stretch the ladder.
	// With 8 replicas the wide ladder's top rungs accept readily, making
	// the out-of-band condition near-certain within 6 cycles.
	res, err := Run(context.Background(), mgr, Config{
		Replicas: 8, Cycles: 6, MDTime: dist.Constant(0.2),
		TMin: 0.5, TMax: 64, Adaptive: true, TargetAcceptance: 0.05, Stream: dist.NewStream(17),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.LadderRetunes == 0 {
		t.Fatal("adaptive run never retuned the ladder")
	}
}

func TestDefaultsApplied(t *testing.T) {
	cfg := (&Config{}).withDefaults()
	if cfg.Replicas != 8 || cfg.Cycles != 4 || cfg.TMax <= cfg.TMin {
		t.Fatalf("defaults = %+v", cfg)
	}
}

func TestAcceptanceRatioEdge(t *testing.T) {
	r := &Result{}
	if r.AcceptanceRatio() != 0 {
		t.Fatal("ratio with zero attempts should be 0")
	}
}
