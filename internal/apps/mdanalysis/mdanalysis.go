// Package mdanalysis implements the task-parallel molecular-dynamics
// trajectory analysis of Paraskevakos et al. [53]: Hausdorff distance
// between trajectory pairs, RMSD time series, and a leaflet finder
// (connected components over an atom proximity graph). The paper's §VI
// lesson "Optimize Application Algorithms" comes from exactly this study —
// the early-break Hausdorff variant (ablation E11) beats scaling out the
// naive O(n·m) one.
package mdanalysis

import (
	"math"

	"gopilot/internal/dist"
)

// Point3 is a 3-D coordinate.
type Point3 [3]float64

// Frame is one trajectory frame: positions of all atoms.
type Frame []Point3

// Trajectory is a sequence of frames.
type Trajectory []Frame

// GenerateTrajectory random-walks n atoms over f frames (step σ), starting
// from a compact blob — a synthetic stand-in for an MD trajectory with the
// same data shape.
func GenerateTrajectory(atoms, frames int, step float64, rng *dist.Stream) Trajectory {
	cur := make(Frame, atoms)
	for i := range cur {
		for d := 0; d < 3; d++ {
			cur[i][d] = rng.NormFloat64() * 5
		}
	}
	out := make(Trajectory, frames)
	for f := 0; f < frames; f++ {
		next := make(Frame, atoms)
		for i := range cur {
			for d := 0; d < 3; d++ {
				next[i][d] = cur[i][d] + rng.NormFloat64()*step
			}
		}
		out[f] = next
		cur = next
	}
	return out
}

func dist2(a, b Point3) float64 {
	dx := a[0] - b[0]
	dy := a[1] - b[1]
	dz := a[2] - b[2]
	return dx*dx + dy*dy + dz*dz
}

// HausdorffNaive computes the symmetric Hausdorff distance between two
// point sets with the textbook O(n·m) double scan.
//
// All the analysis kernels in this package (HausdorffNaive,
// HausdorffEarlyBreak, DistanceOps, RMSD, RMSDSeries, LeafletFinder) are
// pure CPU over read-only frames — no clock reads, no stream draws, no
// shared mutation — and therefore safe to run inside a parallel compute
// phase (vclock.Compute / core.TaskContext.Compute), which is how the E11
// ablation scales them across real cores. The Generate* helpers draw from
// a stream and are NOT pure: call them on the executor token.
func HausdorffNaive(a, b Frame) float64 {
	return math.Sqrt(math.Max(directedMax(a, b, false), directedMax(b, a, false)))
}

// HausdorffEarlyBreak computes the same value with the early-break
// optimization (Taha & Hanbury): the inner scan aborts as soon as a
// distance below the current outer maximum is found. Identical result,
// often an order of magnitude fewer distance evaluations.
func HausdorffEarlyBreak(a, b Frame) float64 {
	return math.Sqrt(math.Max(directedMax(a, b, true), directedMax(b, a, true)))
}

// directedMax returns max over x in xs of (min over y in ys of d²(x,y)).
func directedMax(xs, ys Frame, earlyBreak bool) float64 {
	cmax := 0.0
	for _, x := range xs {
		cmin := math.MaxFloat64
		for _, y := range ys {
			d := dist2(x, y)
			if d < cmin {
				cmin = d
			}
			if earlyBreak && cmin <= cmax {
				break
			}
		}
		if cmin > cmax && cmin != math.MaxFloat64 {
			cmax = cmin
		}
	}
	return cmax
}

// DistanceOps counts distance evaluations for both variants — the metric
// the ablation reports alongside runtime.
func DistanceOps(a, b Frame, earlyBreak bool) int {
	count := 0
	directed := func(xs, ys Frame) float64 {
		cmax := 0.0
		for _, x := range xs {
			cmin := math.MaxFloat64
			for _, y := range ys {
				count++
				d := dist2(x, y)
				if d < cmin {
					cmin = d
				}
				if earlyBreak && cmin <= cmax {
					break
				}
			}
			if cmin > cmax && cmin != math.MaxFloat64 {
				cmax = cmin
			}
		}
		return cmax
	}
	_ = math.Max(directed(a, b), directed(b, a))
	return count
}

// RMSD computes the root-mean-square deviation between two frames of the
// same atom count (no superposition — trajectories are pre-aligned here).
func RMSD(a, b Frame) float64 {
	if len(a) == 0 || len(a) != len(b) {
		return math.NaN()
	}
	var s float64
	for i := range a {
		s += dist2(a[i], b[i])
	}
	return math.Sqrt(s / float64(len(a)))
}

// RMSDSeries computes RMSD of every frame against the first — the classic
// per-trajectory analysis task (one compute-unit per trajectory in [53]).
func RMSDSeries(t Trajectory) []float64 {
	if len(t) == 0 {
		return nil
	}
	out := make([]float64, len(t))
	for i, f := range t {
		out[i] = RMSD(t[0], f)
	}
	return out
}

// LeafletFinder partitions atoms into spatially connected components
// ("leaflets"): atoms closer than cutoff are connected; components are
// found with union-find over the proximity graph — the graph-based
// algorithm of the MDAnalysis leaflet finder.
func LeafletFinder(f Frame, cutoff float64) [][]int {
	n := len(f)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	c2 := cutoff * cutoff
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if dist2(f[i], f[j]) <= c2 {
				union(i, j)
			}
		}
	}
	groups := map[int][]int{}
	for i := 0; i < n; i++ {
		r := find(i)
		groups[r] = append(groups[r], i)
	}
	out := make([][]int, 0, len(groups))
	for _, g := range groups {
		out = append(out, g)
	}
	// Deterministic order: largest first, then by first atom index.
	for i := 0; i < len(out); i++ {
		for j := i + 1; j < len(out); j++ {
			if len(out[j]) > len(out[i]) || (len(out[j]) == len(out[i]) && out[j][0] < out[i][0]) {
				out[i], out[j] = out[j], out[i]
			}
		}
	}
	return out
}

// GenerateBilayer builds a synthetic membrane: two parallel sheets of
// atoms separated in z, with jitter — the structure LeafletFinder should
// split into exactly two components.
func GenerateBilayer(perLeaflet int, gap float64, rng *dist.Stream) Frame {
	out := make(Frame, 0, perLeaflet*2)
	side := int(math.Ceil(math.Sqrt(float64(perLeaflet))))
	for leaflet := 0; leaflet < 2; leaflet++ {
		z := float64(leaflet) * gap
		for i := 0; i < perLeaflet; i++ {
			x := float64(i%side) + rng.Float64()*0.2
			y := float64(i/side) + rng.Float64()*0.2
			out = append(out, Point3{x, y, z + rng.Float64()*0.1})
		}
	}
	return out
}
