package mdanalysis

import (
	"math"
	"testing"
	"testing/quick"

	"gopilot/internal/dist"
)

func TestGenerateTrajectoryShape(t *testing.T) {
	tr := GenerateTrajectory(50, 10, 0.5, dist.NewStream(1))
	if len(tr) != 10 {
		t.Fatalf("frames = %d", len(tr))
	}
	for _, f := range tr {
		if len(f) != 50 {
			t.Fatalf("atoms = %d", len(f))
		}
	}
}

func TestHausdorffIdenticalSetsIsZero(t *testing.T) {
	f := GenerateTrajectory(40, 1, 0.5, dist.NewStream(2))[0]
	if d := HausdorffNaive(f, f); d != 0 {
		t.Fatalf("H(a,a) = %g, want 0", d)
	}
	if d := HausdorffEarlyBreak(f, f); d != 0 {
		t.Fatalf("H_eb(a,a) = %g, want 0", d)
	}
}

func TestHausdorffKnownValue(t *testing.T) {
	a := Frame{{0, 0, 0}, {1, 0, 0}}
	b := Frame{{0, 0, 0}, {4, 0, 0}}
	// directed a→b: max(min(0,4), min(1,3)) = 1... min for (1,0,0) is 3.
	// d(a→b)=3? point (1,0,0): distances 1,3 → min 1. So a→b max = 1.
	// b→a: (0,0,0)→0; (4,0,0)→ min(4,3)=3. symmetric H = 3.
	if d := HausdorffNaive(a, b); math.Abs(d-3) > 1e-12 {
		t.Fatalf("H = %g, want 3", d)
	}
}

// Property: early-break equals naive on random frames (the optimization
// must be exact), and the metric axioms hold (symmetry, identity).
func TestEarlyBreakEqualsNaive(t *testing.T) {
	f := func(seedA, seedB int64) bool {
		a := GenerateTrajectory(30, 1, 1.0, dist.NewStream(seedA))[0]
		b := GenerateTrajectory(30, 1, 1.0, dist.NewStream(seedB))[0]
		naive := HausdorffNaive(a, b)
		eb := HausdorffEarlyBreak(a, b)
		if math.Abs(naive-eb) > 1e-12 {
			return false
		}
		return math.Abs(HausdorffNaive(a, b)-HausdorffNaive(b, a)) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestEarlyBreakDoesFewerOps(t *testing.T) {
	a := GenerateTrajectory(200, 1, 1.0, dist.NewStream(5))[0]
	b := GenerateTrajectory(200, 1, 1.0, dist.NewStream(6))[0]
	naiveOps := DistanceOps(a, b, false)
	ebOps := DistanceOps(a, b, true)
	if naiveOps != 2*200*200 {
		t.Fatalf("naive ops = %d, want %d", naiveOps, 2*200*200)
	}
	if ebOps >= naiveOps {
		t.Fatalf("early break ops %d not fewer than naive %d", ebOps, naiveOps)
	}
	// The paper's §VI lesson: the algorithmic win is large.
	if float64(ebOps) > 0.8*float64(naiveOps) {
		t.Errorf("early break saved only %d of %d ops", naiveOps-ebOps, naiveOps)
	}
}

func TestRMSD(t *testing.T) {
	a := Frame{{0, 0, 0}, {0, 0, 0}}
	b := Frame{{3, 4, 0}, {0, 0, 0}}
	// mean squared = (25+0)/2 → rmsd = √12.5
	if got := RMSD(a, b); math.Abs(got-math.Sqrt(12.5)) > 1e-12 {
		t.Fatalf("RMSD = %g", got)
	}
	if !math.IsNaN(RMSD(a, Frame{{0, 0, 0}})) {
		t.Fatal("mismatched frames should be NaN")
	}
}

func TestRMSDSeriesStartsAtZeroAndGrows(t *testing.T) {
	tr := GenerateTrajectory(60, 20, 0.8, dist.NewStream(9))
	series := RMSDSeries(tr)
	if len(series) != 20 {
		t.Fatalf("series length %d", len(series))
	}
	if series[0] != 0 {
		t.Fatalf("RMSD to self = %g", series[0])
	}
	// Random walk drifts: late RMSD should exceed early RMSD.
	if series[19] <= series[1] {
		t.Errorf("RMSD did not grow: %g → %g", series[1], series[19])
	}
	if RMSDSeries(nil) != nil {
		t.Error("empty trajectory should yield nil")
	}
}

func TestLeafletFinderSplitsBilayer(t *testing.T) {
	f := GenerateBilayer(100, 10, dist.NewStream(3)) // two sheets 10 apart
	groups := LeafletFinder(f, 2.0)
	if len(groups) != 2 {
		t.Fatalf("leaflets = %d, want 2", len(groups))
	}
	if len(groups[0])+len(groups[1]) != 200 {
		t.Fatalf("atoms covered = %d", len(groups[0])+len(groups[1]))
	}
	// No atom may appear in both leaflets.
	seen := map[int]bool{}
	for _, g := range groups {
		for _, idx := range g {
			if seen[idx] {
				t.Fatalf("atom %d in two leaflets", idx)
			}
			seen[idx] = true
		}
	}
}

func TestLeafletFinderOneBlobOneGroup(t *testing.T) {
	f := GenerateBilayer(50, 0.5, dist.NewStream(4)) // sheets nearly touching → one component
	groups := LeafletFinder(f, 2.0)
	if len(groups) != 1 {
		t.Fatalf("groups = %d, want 1 for merged bilayer", len(groups))
	}
}

func TestLeafletFinderSingletons(t *testing.T) {
	f := Frame{{0, 0, 0}, {100, 0, 0}, {200, 0, 0}}
	groups := LeafletFinder(f, 1.0)
	if len(groups) != 3 {
		t.Fatalf("groups = %d, want 3 singletons", len(groups))
	}
}
