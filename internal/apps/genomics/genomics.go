// Package genomics implements the genome-sequencing case study of
// Pilot-Data [66]: read alignment against a reference, with reads and
// reference managed as data-units. The aligner is a real Smith-Waterman
// local-alignment implementation (affine-free, linear gap penalty) —
// computationally faithful to the BWA-class workloads the paper ran,
// scaled down. Chunks of reads are one compute-unit each; the reference
// is a large shared data-unit whose staging cost data-aware scheduling
// avoids (experiment E4).
package genomics

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"gopilot/internal/core"
	"gopilot/internal/data"
	"gopilot/internal/dist"
	"gopilot/internal/infra"
)

var bases = []byte("ACGT")

// GenerateReference builds a random reference genome of length n,
// drawing from the generator's stream on the experiment's seeding spine.
func GenerateReference(n int, s *dist.Stream) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = bases[s.Intn(4)]
	}
	return string(b)
}

// SampleReads draws reads of the given length from the reference, mutating
// each base with the given rate (substitutions only), as a sequencer would.
func SampleReads(ref string, count, length int, mutationRate float64, s *dist.Stream) []string {
	out := make([]string, count)
	for i := range out {
		start := s.Intn(len(ref) - length)
		read := []byte(ref[start : start+length])
		for j := range read {
			if s.Bernoulli(mutationRate) {
				read[j] = bases[s.Intn(4)]
			}
		}
		out[i] = string(read)
	}
	return out
}

// SWScore computes the Smith-Waterman local alignment score between a read
// and a reference window with match +2, mismatch -1, gap -2 — the real
// dynamic program, O(len(a)·len(b)).
func SWScore(a, b string) int {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	prev := make([]int, len(b)+1)
	curr := make([]int, len(b)+1)
	best := 0
	for i := 1; i <= len(a); i++ {
		for j := 1; j <= len(b); j++ {
			sub := prev[j-1]
			if a[i-1] == b[j-1] {
				sub += 2
			} else {
				sub--
			}
			v := sub
			if d := prev[j] - 2; d > v {
				v = d
			}
			if d := curr[j-1] - 2; d > v {
				v = d
			}
			if v < 0 {
				v = 0
			}
			curr[j] = v
			if v > best {
				best = v
			}
		}
		prev, curr = curr, prev
	}
	return best
}

// AlignRead scans the reference in overlapping windows and returns the
// best local-alignment score and its window offset. Window size is twice
// the read length with 50% overlap — a seed-free, brute-force aligner
// whose compute shape matches the DP-heavy inner loops of real tools.
func AlignRead(read, ref string) (best int, offset int) {
	w := 2 * len(read)
	if w > len(ref) {
		w = len(ref)
	}
	step := w / 2
	if step == 0 {
		step = 1
	}
	for off := 0; off < len(ref); off += step {
		end := off + w
		if end > len(ref) {
			end = len(ref)
		}
		if s := SWScore(read, ref[off:end]); s > best {
			best, offset = s, off
		}
		if end == len(ref) {
			break
		}
	}
	return best, offset
}

// Config describes a distributed alignment run.
type Config struct {
	// ReferenceID is the data-unit holding the reference genome.
	ReferenceID string
	// ChunkIDs are the read-chunk data-units, one compute-unit each.
	ChunkIDs []string
	// MinScore is the alignment acceptance threshold.
	MinScore int
	// CoresPerTask sizes each alignment unit.
	CoresPerTask int
	// MaxRetries is the per-unit retry budget.
	MaxRetries int
}

// Result reports a completed alignment run.
type Result struct {
	// TotalReads and AlignedReads count reads processed and accepted.
	TotalReads, AlignedReads int
	// Elapsed is the modeled end-to-end runtime.
	Elapsed time.Duration
	// ChunkTimes records per-chunk modeled runtimes.
	ChunkTimes []time.Duration
}

// StageInputs uploads the reference and read chunks into Pilot-Data.
// refLogicalSize inflates the reference's modeled size (real references
// are gigabytes; content stays small).
func StageInputs(ctx context.Context, ds *data.Service, site infra.Site, ref string, chunks [][]string, refLogicalSize int64) (refID string, chunkIDs []string, err error) {
	refID = "genome-ref"
	if refLogicalSize <= 0 {
		refLogicalSize = int64(len(ref))
	}
	if err := ds.Put(ctx, data.Unit{ID: refID, Content: []byte(ref), LogicalSize: refLogicalSize, Site: site}); err != nil {
		return "", nil, err
	}
	for i, chunk := range chunks {
		id := fmt.Sprintf("reads-chunk-%d", i)
		content := strings.Join(chunk, "\n")
		if err := ds.Put(ctx, data.Unit{ID: id, Content: []byte(content), Site: site}); err != nil {
			return "", nil, err
		}
		chunkIDs = append(chunkIDs, id)
	}
	return refID, chunkIDs, nil
}

// Run aligns every chunk against the reference on mgr's pilots.
func Run(ctx context.Context, mgr *core.Manager, cfg Config) (*Result, error) {
	if mgr.Data() == nil {
		return nil, errors.New("genomics: manager has no data service")
	}
	if cfg.ReferenceID == "" || len(cfg.ChunkIDs) == 0 {
		return nil, errors.New("genomics: reference and chunks required")
	}
	if cfg.CoresPerTask <= 0 {
		cfg.CoresPerTask = 1
	}
	clock := mgr.Clock()
	start := clock.Now()

	var mu sync.Mutex
	res := &Result{}
	units := make([]*core.ComputeUnit, 0, len(cfg.ChunkIDs))
	for _, chunkID := range cfg.ChunkIDs {
		chunkID := chunkID
		u, err := mgr.SubmitUnit(core.UnitDescription{
			Name:       "align-" + chunkID,
			Cores:      cfg.CoresPerTask,
			InputData:  []string{cfg.ReferenceID, chunkID},
			MaxRetries: cfg.MaxRetries,
			Run: func(ctx context.Context, tc core.TaskContext) error {
				t0 := clock.Now()
				refBytes, err := tc.Data.Read(ctx, cfg.ReferenceID, tc.Site)
				if err != nil {
					return fmt.Errorf("read reference: %w", err)
				}
				chunkBytes, err := tc.Data.Read(ctx, chunkID, tc.Site)
				if err != nil {
					return fmt.Errorf("read chunk: %w", err)
				}
				ref := string(refBytes)
				total, aligned := 0, 0
				for _, read := range strings.Split(string(chunkBytes), "\n") {
					if read == "" {
						continue
					}
					if err := ctx.Err(); err != nil {
						return err
					}
					total++
					if score, _ := AlignRead(read, ref); score >= cfg.MinScore {
						aligned++
					}
				}
				mu.Lock()
				res.TotalReads += total
				res.AlignedReads += aligned
				res.ChunkTimes = append(res.ChunkTimes, clock.Now().Sub(t0))
				mu.Unlock()
				return nil
			},
		})
		if err != nil {
			return nil, err
		}
		units = append(units, u)
	}
	for _, u := range units {
		if s, err := u.Wait(ctx); s != core.UnitDone {
			return nil, fmt.Errorf("genomics: unit %s %v: %w", u.ID(), s, err)
		}
	}
	res.Elapsed = clock.Now().Sub(start)
	return res, nil
}

// Chunk splits reads into n roughly equal chunks.
func Chunk(reads []string, n int) [][]string {
	if n <= 0 {
		n = 1
	}
	out := make([][]string, n)
	for i := range out {
		lo := i * len(reads) / n
		hi := (i + 1) * len(reads) / n
		out[i] = reads[lo:hi]
	}
	return out
}
