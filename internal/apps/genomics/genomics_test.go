package genomics

import (
	"context"
	"strings"
	"testing"
	"time"

	"gopilot/internal/dist"

	"gopilot/internal/core"
	"gopilot/internal/data"
	"gopilot/internal/saga"
	"gopilot/internal/vclock"
)

func TestGenerateReference(t *testing.T) {
	ref := GenerateReference(1000, dist.NewStream(1))
	if len(ref) != 1000 {
		t.Fatalf("len = %d", len(ref))
	}
	for _, c := range ref {
		if !strings.ContainsRune("ACGT", c) {
			t.Fatalf("bad base %q", c)
		}
	}
	if ref != GenerateReference(1000, dist.NewStream(1)) {
		t.Fatal("not reproducible")
	}
}

func TestSampleReadsComeFromReference(t *testing.T) {
	ref := GenerateReference(500, dist.NewStream(2))
	reads := SampleReads(ref, 20, 30, 0, dist.NewStream(3))
	for _, r := range reads {
		if len(r) != 30 {
			t.Fatalf("read length %d", len(r))
		}
		if !strings.Contains(ref, r) {
			t.Fatalf("unmutated read %q not found in reference", r)
		}
	}
}

func TestSWScoreKnownCases(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"ACGT", "ACGT", 8},         // perfect match: 4×2
		{"AAAA", "TTTT", 0},         // nothing aligns locally
		{"ACGT", "TTACGTTT", 8},     // embedded match
		{"", "ACGT", 0},             // empty query
		{"ACGTACGT", "ACGACGT", 11}, // one deletion: 7 matches ×2 −2 gap... at least beats 10
	}
	for _, c := range cases[:4] {
		if got := SWScore(c.a, c.b); got != c.want {
			t.Errorf("SWScore(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
	if got := SWScore("ACGTACGT", "ACGACGT"); got < 10 {
		t.Errorf("gapped score = %d, want ≥ 10", got)
	}
}

func TestSWScoreSymmetric(t *testing.T) {
	a, b := "ACGTTGCA", "TGCAACGT"
	if SWScore(a, b) != SWScore(b, a) {
		t.Fatal("SW score not symmetric")
	}
}

func TestAlignReadFindsOrigin(t *testing.T) {
	ref := GenerateReference(2000, dist.NewStream(5))
	read := ref[700:750]
	score, offset := AlignRead(read, ref)
	if score != 2*len(read) {
		t.Fatalf("perfect read scored %d, want %d", score, 2*len(read))
	}
	// Window with 50% overlap: origin 700 must fall inside the best window.
	if offset > 700 || offset+2*len(read) < 750 {
		t.Fatalf("offset %d does not cover read origin 700", offset)
	}
}

func TestMutatedReadsStillAlign(t *testing.T) {
	ref := GenerateReference(1000, dist.NewStream(6))
	reads := SampleReads(ref, 10, 40, 0.05, dist.NewStream(7))
	for _, r := range reads {
		score, _ := AlignRead(r, ref)
		// 5% mutations: expect ≥ ~80% of max score.
		if score < 2*len(r)*6/10 {
			t.Errorf("mutated read scored %d of %d", score, 2*len(r))
		}
	}
}

func TestChunk(t *testing.T) {
	reads := make([]string, 10)
	chunks := Chunk(reads, 3)
	total := 0
	for _, c := range chunks {
		total += len(c)
	}
	if total != 10 || len(chunks) != 3 {
		t.Fatalf("chunks = %d covering %d", len(chunks), total)
	}
}

func TestDistributedAlignment(t *testing.T) {
	clock := vclock.NewScaled(2000)
	reg := saga.NewRegistry()
	reg.Register(saga.NewLocalService("siteA", 8, clock))
	ds := data.NewService(data.Config{Clock: clock})
	ds.AddSite("siteA")
	mgr := core.NewManager(core.Config{Registry: reg, Clock: clock, Data: ds})
	defer mgr.Close()
	mgr.SubmitPilot(core.PilotDescription{Resource: "local://siteA", Cores: 4})

	ref := GenerateReference(800, dist.NewStream(9))
	reads := SampleReads(ref, 24, 30, 0.02, dist.NewStream(10))
	chunks := Chunk(reads, 4)
	refID, chunkIDs, err := StageInputs(context.Background(), ds, "siteA", ref, chunks, 0)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	res, err := Run(ctx, mgr, Config{ReferenceID: refID, ChunkIDs: chunkIDs, MinScore: 40})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalReads != 24 {
		t.Fatalf("total reads = %d, want 24", res.TotalReads)
	}
	// 2% mutation, threshold 40 of 60: nearly all should align.
	if res.AlignedReads < 20 {
		t.Fatalf("aligned = %d of 24, want ≥ 20", res.AlignedReads)
	}
	if len(res.ChunkTimes) != 4 {
		t.Fatalf("chunk times = %d", len(res.ChunkTimes))
	}
}

func TestRunValidation(t *testing.T) {
	clock := vclock.NewScaled(2000)
	reg := saga.NewRegistry()
	reg.Register(saga.NewLocalService("siteA", 2, clock))
	mgrNoData := core.NewManager(core.Config{Registry: reg, Clock: clock})
	defer mgrNoData.Close()
	if _, err := Run(context.Background(), mgrNoData, Config{ReferenceID: "r", ChunkIDs: []string{"c"}}); err == nil {
		t.Error("manager without data service accepted")
	}
	ds := data.NewService(data.Config{Clock: clock})
	mgr := core.NewManager(core.Config{Registry: reg, Clock: clock, Data: ds})
	defer mgr.Close()
	if _, err := Run(context.Background(), mgr, Config{}); err == nil {
		t.Error("empty config accepted")
	}
}
