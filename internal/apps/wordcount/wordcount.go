// Package wordcount provides the classic MapReduce wordcount application
// (Table II's Pilot-Hadoop case study) plus a Zipfian corpus generator, so
// benchmarks control corpus size and skew reproducibly.
package wordcount

import (
	"context"
	"fmt"
	"strconv"
	"strings"

	"gopilot/internal/dist"
	"gopilot/internal/mapreduce"
)

// GenerateCorpus builds nSplits documents of wordsPerSplit words drawn
// Zipf-skewed from a synthetic vocabulary of vocab words. The stream is
// the generator's slot on the experiment's seeding spine (e.g.
// root.Named("corpus")).
func GenerateCorpus(nSplits, wordsPerSplit, vocab int, s *dist.Stream) []string {
	z := dist.ZipfFrom(s, 1.3, 1, uint64(vocab-1))
	out := make([]string, nSplits)
	var sb strings.Builder
	for i := range out {
		sb.Reset()
		for w := 0; w < wordsPerSplit; w++ {
			fmt.Fprintf(&sb, "w%d ", z.Uint64())
		}
		out[i] = sb.String()
	}
	return out
}

// Map tokenizes a split and emits (word, 1). It is a pure CPU kernel —
// no clock reads, no stream draws, no shared mutation — so the MapReduce
// engine runs it inside a parallel compute phase (vclock.Compute) and
// map tasks use real cores under the virtual-time executor.
func Map(_ context.Context, _ string, value string, emit func(k, v string)) error {
	for _, w := range strings.Fields(value) {
		emit(w, "1")
	}
	return nil
}

// Reduce sums counts per word. It doubles as the combiner. Like Map it is
// a pure CPU kernel, safe inside a parallel compute phase.
func Reduce(_ context.Context, key string, values []string, emit func(k, v string)) error {
	sum := 0
	for _, v := range values {
		n, err := strconv.Atoi(v)
		if err != nil {
			return fmt.Errorf("wordcount: bad count %q: %w", v, err)
		}
		sum += n
	}
	emit(key, strconv.Itoa(sum))
	return nil
}

// Sequential counts words in-process, the reference for correctness tests.
func Sequential(splits []string) map[string]int {
	out := map[string]int{}
	for _, s := range splits {
		for _, w := range strings.Fields(s) {
			out[w]++
		}
	}
	return out
}

// Config assembles the MapReduce job configuration for a corpus already
// staged as data-units.
func Config(name string, inputIDs []string, reducers int) mapreduce.Config {
	return mapreduce.Config{
		Name:     name,
		InputIDs: inputIDs,
		Reducers: reducers,
		Map:      Map,
		Reduce:   Reduce,
		Combine:  Reduce,
	}
}
