package wordcount

import (
	"context"
	"strconv"
	"strings"
	"testing"

	"gopilot/internal/dist"
)

func TestGenerateCorpusShape(t *testing.T) {
	c := GenerateCorpus(4, 100, 50, dist.NewStream(1))
	if len(c) != 4 {
		t.Fatalf("splits = %d", len(c))
	}
	for _, s := range c {
		if got := len(strings.Fields(s)); got != 100 {
			t.Fatalf("words = %d, want 100", got)
		}
	}
	// Reproducible.
	c2 := GenerateCorpus(4, 100, 50, dist.NewStream(1))
	if c[0] != c2[0] {
		t.Fatal("corpus not reproducible")
	}
}

func TestCorpusIsSkewed(t *testing.T) {
	c := GenerateCorpus(1, 5000, 100, dist.NewStream(2))
	counts := Sequential(c)
	// Zipf: the most frequent word dominates the median word.
	max := 0
	for _, n := range counts {
		if n > max {
			max = n
		}
	}
	if max < 500 {
		t.Fatalf("head word count = %d, corpus not skewed", max)
	}
}

func TestMapEmitsOnes(t *testing.T) {
	var got []string
	Map(context.Background(), "", "a b a", func(k, v string) {
		got = append(got, k+"="+v)
	})
	want := []string{"a=1", "b=1", "a=1"}
	if len(got) != 3 {
		t.Fatalf("emitted = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("emitted = %v, want %v", got, want)
		}
	}
}

func TestReduceSums(t *testing.T) {
	var k, v string
	err := Reduce(context.Background(), "w", []string{"1", "2", "3"}, func(key, val string) { k, v = key, val })
	if err != nil || k != "w" || v != "6" {
		t.Fatalf("reduce = %q=%q err=%v", k, v, err)
	}
	if err := Reduce(context.Background(), "w", []string{"x"}, func(string, string) {}); err == nil {
		t.Fatal("bad count accepted")
	}
}

func TestSequentialCounts(t *testing.T) {
	counts := Sequential([]string{"a b", "b c b"})
	if counts["a"] != 1 || counts["b"] != 3 || counts["c"] != 1 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestConfigAssembly(t *testing.T) {
	cfg := Config("job", []string{"s1", "s2"}, 3)
	if cfg.Name != "job" || len(cfg.InputIDs) != 2 || cfg.Reducers != 3 {
		t.Fatalf("cfg = %+v", cfg)
	}
	if cfg.Map == nil || cfg.Reduce == nil || cfg.Combine == nil {
		t.Fatal("functions not wired")
	}
	// Reduce/Combine agreement: combining partials then reducing equals
	// reducing everything (sum associativity).
	var combined []string
	cfg.Combine(context.Background(), "w", []string{"1", "1", "1"}, func(_, v string) { combined = append(combined, v) })
	var final string
	cfg.Reduce(context.Background(), "w", append(combined, "2"), func(_, v string) { final = v })
	if n, _ := strconv.Atoi(final); n != 5 {
		t.Fatalf("combine+reduce = %s, want 5", final)
	}
}
