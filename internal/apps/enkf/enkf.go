// Package enkf implements the Ensemble Kalman Filter case study [50]: an
// autonomic, dynamically adaptive ensemble application. Each assimilation
// cycle forecasts every ensemble member forward with a stochastic linear
// model (one pilot compute-unit per member), then performs the standard
// stochastic-EnKF analysis update against synthetic observations. The
// ensemble size adapts at runtime to the observed spread — the behaviour
// that exercises R3 (dynamism): task counts are not known in advance.
package enkf

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"gopilot/internal/core"
	"gopilot/internal/dist"
)

// Config describes an EnKF run.
type Config struct {
	// StateDim is the model state dimension.
	StateDim int
	// InitialEnsemble is the starting member count.
	InitialEnsemble int
	// MinEnsemble/MaxEnsemble bound adaptive resizing.
	MinEnsemble, MaxEnsemble int
	// Cycles is the number of assimilation cycles.
	Cycles int
	// ForecastTime samples modeled per-member forecast cost (seconds).
	ForecastTime dist.Dist
	// ObsNoise is the observation error standard deviation.
	ObsNoise float64
	// ModelNoise is the forecast process noise standard deviation.
	ModelNoise float64
	// SpreadTarget drives adaptation: spread above target grows the
	// ensemble (more members to localize), spread far below shrinks it.
	SpreadTarget float64
	// Adaptive enables runtime ensemble resizing.
	Adaptive bool
	// Stream is the run's slot on the experiment's seeding spine. The
	// driver (truth, observations, analysis, adaptation) draws from its
	// "driver" child; the m-th ensemble member ever created forecasts
	// from its "member"/<m> child, so growing or shrinking the ensemble
	// never shifts surviving members' draws. Defaults to the manager's
	// "app/enkf" child.
	Stream *dist.Stream
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.StateDim <= 0 {
		out.StateDim = 3
	}
	if out.InitialEnsemble <= 0 {
		out.InitialEnsemble = 16
	}
	if out.MinEnsemble <= 0 {
		out.MinEnsemble = 4
	}
	if out.MaxEnsemble <= 0 {
		out.MaxEnsemble = 64
	}
	if out.Cycles <= 0 {
		out.Cycles = 5
	}
	if out.ForecastTime == nil {
		out.ForecastTime = dist.Constant(5)
	}
	if out.ObsNoise <= 0 {
		out.ObsNoise = 0.5
	}
	if out.ModelNoise <= 0 {
		out.ModelNoise = 0.2
	}
	if out.SpreadTarget <= 0 {
		out.SpreadTarget = 1.0
	}
	return out
}

// CycleStats reports one assimilation cycle.
type CycleStats struct {
	Cycle    int
	Members  int
	Spread   float64
	RMSE     float64
	Duration time.Duration
}

// Result reports a completed run.
type Result struct {
	Cycles  []CycleStats
	Elapsed time.Duration
	// FinalEnsemble is the member count after adaptation.
	FinalEnsemble int
	// Resizes counts adaptive ensemble-size changes.
	Resizes int
}

// model advances a state one step: contraction plus a weak circulant
// coupling, with process noise. The linear part has spectral radius
// 0.92+0.05 < 1, so the system is stable and the filter cannot be saved
// by divergence of the truth itself.
func model(x []float64, noise float64, rng *dist.Stream) []float64 {
	d := len(x)
	out := make([]float64, d)
	for i := range out {
		j := (i + 1) % d
		out[i] = 0.92*x[i] + 0.05*x[j] + rng.NormFloat64()*noise
	}
	return out
}

// Run executes the EnKF workflow on mgr's pilots and returns per-cycle
// statistics. The "truth" trajectory is simulated alongside to score RMSE.
func Run(ctx context.Context, mgr *core.Manager, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if mgr == nil {
		return nil, errors.New("enkf: nil manager")
	}
	clock := mgr.Clock()
	if cfg.Stream == nil {
		cfg.Stream = mgr.Stream().Named("app/enkf")
	}
	master := cfg.Stream.Named("driver")
	memberRoot := cfg.Stream.Named("member")
	d := cfg.StateDim

	// Truth and initial ensemble around it. Each member ever created gets
	// the next "member"/<ordinal> stream for its forecasts; ordinals are
	// never reused, so resizing the ensemble cannot shift the draws of
	// members that survive it.
	created := 0
	mintWalk := func() *dist.Stream {
		s := memberRoot.SplitLabel(uint64(created))
		created++
		return s
	}
	truth := make([]float64, d)
	for i := range truth {
		truth[i] = master.NormFloat64() * 2
	}
	members := make([][]float64, cfg.InitialEnsemble)
	walks := make([]*dist.Stream, cfg.InitialEnsemble)
	for m := range members {
		members[m] = make([]float64, d)
		for i := range members[m] {
			members[m][i] = truth[i] + master.NormFloat64()
		}
		walks[m] = mintWalk()
	}

	res := &Result{}
	start := clock.Now()

	for cycle := 0; cycle < cfg.Cycles; cycle++ {
		cycleStart := clock.Now()
		// Truth advances (no assimilation noise on truth's own draw).
		truth = model(truth, cfg.ModelNoise, master)
		// Synthetic observation of the full state.
		obs := make([]float64, d)
		for i := range obs {
			obs[i] = truth[i] + master.NormFloat64()*cfg.ObsNoise
		}

		// Forecast: one compute-unit per member (dynamic count!).
		var mu sync.Mutex
		units := make([]*core.ComputeUnit, 0, len(members))
		for m := range members {
			m := m
			cost := time.Duration(cfg.ForecastTime.Sample() * float64(time.Second))
			rng := walks[m]
			u, err := mgr.SubmitUnit(core.UnitDescription{
				Name: fmt.Sprintf("enkf-c%d-m%d", cycle, m),
				Run: func(ctx context.Context, tc core.TaskContext) error {
					if !tc.Sleep(ctx, cost) {
						return ctx.Err()
					}
					mu.Lock()
					x := members[m]
					mu.Unlock()
					nx := model(x, cfg.ModelNoise, rng)
					mu.Lock()
					members[m] = nx
					mu.Unlock()
					return nil
				},
			})
			if err != nil {
				return nil, err
			}
			units = append(units, u)
		}
		for _, u := range units {
			if s, err := u.Wait(ctx); s != core.UnitDone {
				return nil, fmt.Errorf("enkf: forecast unit %s %v: %w", u.ID(), s, err)
			}
		}

		// Analysis: stochastic EnKF with diagonal observation operator.
		analyze(members, obs, cfg.ObsNoise, master)

		spread := ensembleSpread(members)
		rmse := rmseTo(members, truth)
		res.Cycles = append(res.Cycles, CycleStats{
			Cycle:    cycle,
			Members:  len(members),
			Spread:   spread,
			RMSE:     rmse,
			Duration: clock.Now().Sub(cycleStart),
		})

		// Adaptation: spread too large → add members (cloned + jitter);
		// spread far below target → retire members.
		if cfg.Adaptive {
			switch {
			case spread > cfg.SpreadTarget*1.5 && len(members) < cfg.MaxEnsemble:
				add := len(members) / 2
				if len(members)+add > cfg.MaxEnsemble {
					add = cfg.MaxEnsemble - len(members)
				}
				for a := 0; a < add; a++ {
					src := members[master.Intn(len(members))]
					clone := make([]float64, d)
					for i := range clone {
						clone[i] = src[i] + master.NormFloat64()*0.1
					}
					members = append(members, clone)
					walks = append(walks, mintWalk())
				}
				res.Resizes++
			case spread < cfg.SpreadTarget/4 && len(members) > cfg.MinEnsemble:
				keep := len(members) * 3 / 4
				if keep < cfg.MinEnsemble {
					keep = cfg.MinEnsemble
				}
				members = members[:keep]
				walks = walks[:keep]
				res.Resizes++
			}
		}
	}
	res.FinalEnsemble = len(members)
	res.Elapsed = clock.Now().Sub(start)
	return res, nil
}

// analyze applies the stochastic EnKF update with H = I and diagonal R.
func analyze(members [][]float64, obs []float64, obsNoise float64, rng *dist.Stream) {
	n := len(members)
	if n < 2 {
		return
	}
	d := len(obs)
	mean := make([]float64, d)
	for _, m := range members {
		for i, v := range m {
			mean[i] += v
		}
	}
	for i := range mean {
		mean[i] /= float64(n)
	}
	// Per-dimension variance (H = I keeps the update scalar per dim).
	variance := make([]float64, d)
	for _, m := range members {
		for i, v := range m {
			dv := v - mean[i]
			variance[i] += dv * dv
		}
	}
	r2 := obsNoise * obsNoise
	for i := range variance {
		variance[i] /= float64(n - 1)
	}
	for _, m := range members {
		for i := range m {
			gain := variance[i] / (variance[i] + r2)
			perturbedObs := obs[i] + rng.NormFloat64()*obsNoise
			m[i] += gain * (perturbedObs - m[i])
		}
	}
}

// ensembleSpread is the mean per-dimension standard deviation.
func ensembleSpread(members [][]float64) float64 {
	n := len(members)
	if n < 2 {
		return 0
	}
	d := len(members[0])
	mean := make([]float64, d)
	for _, m := range members {
		for i, v := range m {
			mean[i] += v
		}
	}
	for i := range mean {
		mean[i] /= float64(n)
	}
	var total float64
	for i := 0; i < d; i++ {
		var ss float64
		for _, m := range members {
			dv := m[i] - mean[i]
			ss += dv * dv
		}
		total += math.Sqrt(ss / float64(n-1))
	}
	return total / float64(d)
}

// rmseTo scores the ensemble mean against the truth.
func rmseTo(members [][]float64, truth []float64) float64 {
	n := len(members)
	d := len(truth)
	mean := make([]float64, d)
	for _, m := range members {
		for i, v := range m {
			mean[i] += v
		}
	}
	var ss float64
	for i := range mean {
		mean[i] /= float64(n)
		dv := mean[i] - truth[i]
		ss += dv * dv
	}
	return math.Sqrt(ss / float64(d))
}
