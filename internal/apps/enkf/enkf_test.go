package enkf

import (
	"context"
	"math"
	"testing"

	"gopilot/internal/core"
	"gopilot/internal/dist"
	"gopilot/internal/saga"
	"gopilot/internal/vclock"
)

func newMgr(t *testing.T, cores int) *core.Manager {
	t.Helper()
	clock := vclock.NewScaled(2000)
	reg := saga.NewRegistry()
	reg.Register(saga.NewLocalService("lh", cores, clock))
	mgr := core.NewManager(core.Config{Registry: reg, Clock: clock})
	t.Cleanup(mgr.Close)
	mgr.SubmitPilot(core.PilotDescription{Resource: "local://lh", Cores: cores})
	return mgr
}

func TestAnalyzePullsEnsembleTowardObservation(t *testing.T) {
	rng := dist.NewStream(1)
	// Ensemble far from the observation.
	members := make([][]float64, 32)
	for i := range members {
		members[i] = []float64{10 + rng.NormFloat64()}
	}
	obs := []float64{0}
	before := math.Abs(meanOf(members, 0) - obs[0])
	analyze(members, obs, 0.5, rng)
	after := math.Abs(meanOf(members, 0) - obs[0])
	if after >= before {
		t.Fatalf("analysis did not move ensemble toward obs: %g → %g", before, after)
	}
}

func TestAnalyzeShrinksSpread(t *testing.T) {
	rng := dist.NewStream(2)
	members := make([][]float64, 64)
	for i := range members {
		members[i] = []float64{rng.NormFloat64() * 4}
	}
	before := ensembleSpread(members)
	analyze(members, []float64{0}, 0.5, rng)
	after := ensembleSpread(members)
	if after >= before {
		t.Fatalf("analysis did not shrink spread: %g → %g", before, after)
	}
}

func TestAnalyzeNoOpForTinyEnsemble(t *testing.T) {
	members := [][]float64{{5}}
	analyze(members, []float64{0}, 0.5, dist.NewStream(1))
	if members[0][0] != 5 {
		t.Fatal("singleton ensemble modified")
	}
}

func meanOf(members [][]float64, dim int) float64 {
	var s float64
	for _, m := range members {
		s += m[dim]
	}
	return s / float64(len(members))
}

func TestEnsembleSpreadAndRMSE(t *testing.T) {
	members := [][]float64{{0, 0}, {2, 2}}
	if s := ensembleSpread(members); math.Abs(s-math.Sqrt2) > 1e-9 {
		t.Fatalf("spread = %g, want √2", s)
	}
	truth := []float64{1, 1}
	if r := rmseTo(members, truth); r > 1e-9 {
		t.Fatalf("rmse of centered ensemble = %g, want 0", r)
	}
}

func TestRunTracksTruth(t *testing.T) {
	mgr := newMgr(t, 16)
	res, err := Run(context.Background(), mgr, Config{
		StateDim: 3, InitialEnsemble: 16, Cycles: 6,
		ForecastTime: dist.Constant(0.5), ObsNoise: 0.3, Stream: dist.NewStream(5),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cycles) != 6 {
		t.Fatalf("cycles = %d", len(res.Cycles))
	}
	// Assimilation must keep RMSE bounded (filter not diverging).
	last := res.Cycles[len(res.Cycles)-1]
	if math.IsNaN(last.RMSE) || last.RMSE > 5 {
		t.Fatalf("filter diverged: RMSE = %g", last.RMSE)
	}
	if res.Elapsed <= 0 {
		t.Error("elapsed not measured")
	}
}

func TestAdaptiveResizesEnsemble(t *testing.T) {
	mgr := newMgr(t, 32)
	// Small spread target far below natural spread forces growth.
	res, err := Run(context.Background(), mgr, Config{
		StateDim: 3, InitialEnsemble: 8, MinEnsemble: 4, MaxEnsemble: 32,
		Cycles: 6, ForecastTime: dist.Constant(0.2),
		SpreadTarget: 0.05, Adaptive: true, Stream: dist.NewStream(11),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Resizes == 0 {
		t.Fatal("adaptive run never resized")
	}
	if res.FinalEnsemble < 4 || res.FinalEnsemble > 32 {
		t.Fatalf("final ensemble %d outside bounds", res.FinalEnsemble)
	}
	// Member counts must vary across cycles.
	first := res.Cycles[0].Members
	varied := false
	for _, c := range res.Cycles {
		if c.Members != first {
			varied = true
		}
		if c.Members < 4 || c.Members > 32 {
			t.Fatalf("cycle %d members %d outside bounds", c.Cycle, c.Members)
		}
	}
	if !varied {
		t.Fatal("ensemble size never changed despite resizes")
	}
}

func TestNonAdaptiveKeepsSize(t *testing.T) {
	mgr := newMgr(t, 16)
	res, err := Run(context.Background(), mgr, Config{
		InitialEnsemble: 12, Cycles: 3, ForecastTime: dist.Constant(0.2), Stream: dist.NewStream(2),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Cycles {
		if c.Members != 12 {
			t.Fatalf("cycle %d members = %d, want 12", c.Cycle, c.Members)
		}
	}
	if res.Resizes != 0 {
		t.Fatalf("resizes = %d, want 0", res.Resizes)
	}
}

func TestModelIsStable(t *testing.T) {
	rng := dist.NewStream(3)
	x := []float64{1, 2, 3}
	for i := 0; i < 500; i++ {
		x = model(x, 0.1, rng)
	}
	for _, v := range x {
		if math.IsNaN(v) || math.Abs(v) > 100 {
			t.Fatalf("model diverged: %v", x)
		}
	}
}

func TestDefaults(t *testing.T) {
	cfg := (&Config{}).withDefaults()
	if cfg.StateDim != 3 || cfg.InitialEnsemble != 16 || cfg.Cycles != 5 {
		t.Fatalf("defaults = %+v", cfg)
	}
}
