// Package kmeans implements the K-Means case study used across the
// paper's evaluation (Table II: Pilot-Data, Pilot-Hadoop, Pilot-Memory and
// Pilot-Streaming all cite K-Means [55]). It is a real Lloyd's-algorithm
// implementation over partitioned synthetic data: the assignment step fans
// out one compute-unit per partition; centroid aggregation is the global
// reduction of the "Iterative" scenario; partitions are either re-read
// through Pilot-Data each iteration (disk mode) or cached in Pilot-Memory
// (memory mode) — the contrast experiment E6 measures.
package kmeans

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"gopilot/internal/core"
	"gopilot/internal/data"
	"gopilot/internal/dist"
	"gopilot/internal/infra"
	"gopilot/internal/memory"
)

// Point is a dense vector.
type Point []float64

// Dataset is a set of points with a generation recipe, for reproducibility.
type Dataset struct {
	Points  []Point
	Centers []Point // true generating centers
	Dim     int
}

// Generate draws n points from k Gaussian clusters in dim dimensions,
// drawing from the generator's stream on the experiment's seeding spine.
func Generate(n, k, dim int, spread float64, rng *dist.Stream) *Dataset {
	centers := make([]Point, k)
	for i := range centers {
		centers[i] = make(Point, dim)
		for d := range centers[i] {
			centers[i][d] = rng.Float64() * 100
		}
	}
	points := make([]Point, n)
	for i := range points {
		c := centers[i%k]
		p := make(Point, dim)
		for d := range p {
			p[d] = c[d] + rng.NormFloat64()*spread
		}
		points[i] = p
	}
	return &Dataset{Points: points, Centers: centers, Dim: dim}
}

// Partition splits the dataset into m contiguous partitions.
func (ds *Dataset) Partition(m int) [][]Point {
	if m <= 0 {
		m = 1
	}
	out := make([][]Point, m)
	for i := range out {
		lo := i * len(ds.Points) / m
		hi := (i + 1) * len(ds.Points) / m
		out[i] = ds.Points[lo:hi]
	}
	return out
}

// dist2 is the squared Euclidean distance.
func dist2(a, b Point) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// Assign labels each point with its nearest centroid and returns per-
// centroid sums and counts — the partial aggregates a partition task emits.
func Assign(points []Point, centroids []Point) (sums []Point, counts []int, inertia float64) {
	k := len(centroids)
	if k == 0 {
		return nil, nil, 0
	}
	dim := len(centroids[0])
	sums = make([]Point, k)
	for i := range sums {
		sums[i] = make(Point, dim)
	}
	counts = make([]int, k)
	for _, p := range points {
		best, bestD := 0, math.MaxFloat64
		for c := range centroids {
			if d := dist2(p, centroids[c]); d < bestD {
				best, bestD = c, d
			}
		}
		counts[best]++
		inertia += bestD
		for d := range p {
			sums[best][d] += p[d]
		}
	}
	return sums, counts, inertia
}

// Reduce merges partial aggregates into new centroids. Empty clusters keep
// their previous centroid.
func Reduce(prev []Point, sums [][]Point, counts [][]int) []Point {
	k := len(prev)
	if k == 0 {
		return nil
	}
	dim := len(prev[0])
	next := make([]Point, k)
	for c := 0; c < k; c++ {
		total := 0
		acc := make(Point, dim)
		for p := range sums {
			total += counts[p][c]
			for d := 0; d < dim; d++ {
				acc[d] += sums[p][c][d]
			}
		}
		if total == 0 {
			next[c] = append(Point(nil), prev[c]...)
			continue
		}
		for d := range acc {
			acc[d] /= float64(total)
		}
		next[c] = acc
	}
	return next
}

// Sequential runs Lloyd's algorithm in-process — the reference
// implementation tests compare the distributed runs against.
func Sequential(points []Point, k, maxIter int, tol float64, s *dist.Stream) (centroids []Point, inertia float64, iters int) {
	centroids = initCentroids(points, k, s)
	for iters = 1; iters <= maxIter; iters++ {
		sums, counts, in := Assign(points, centroids)
		next := Reduce(centroids, [][]Point{sums}, [][]int{counts})
		moved := centroidShift(centroids, next)
		centroids, inertia = next, in
		if moved < tol {
			break
		}
	}
	if iters > maxIter {
		iters = maxIter
	}
	return centroids, inertia, iters
}

func initCentroids(points []Point, k int, rng *dist.Stream) []Point {
	out := make([]Point, k)
	for i := range out {
		out[i] = append(Point(nil), points[rng.Intn(len(points))]...)
	}
	return out
}

func centroidShift(a, b []Point) float64 {
	var s float64
	for i := range a {
		s += math.Sqrt(dist2(a[i], b[i]))
	}
	return s
}

// Mode selects how partition tasks obtain their data each iteration.
type Mode int

// Execution modes for the distributed run.
const (
	// ModeData re-reads every partition through Pilot-Data each iteration
	// (the disk-based baseline).
	ModeData Mode = iota
	// ModeMemory caches partitions in Pilot-Memory after the first read.
	ModeMemory
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	if m == ModeMemory {
		return "pilot-memory"
	}
	return "pilot-data"
}

// Config describes a distributed K-Means run.
type Config struct {
	// K is the cluster count.
	K int
	// MaxIter bounds iterations.
	MaxIter int
	// Tol is the centroid-shift convergence threshold.
	Tol float64
	// Partitions is the task fan-out per iteration.
	Partitions int
	// Mode selects data access (disk vs memory).
	Mode Mode
	// Cache is required in ModeMemory.
	Cache *memory.Cache
	// Site places the generated partitions (default "siteA").
	Site infra.Site
	// BytesPerPoint inflates the modeled partition size so storage and
	// transfer costs are realistic even with small real datasets
	// (default 64 bytes/point).
	BytesPerPoint int64
	// Stream is the run's slot on the experiment's seeding spine; it
	// initializes centroids reproducibly. Defaults to the manager's
	// "app/kmeans" child.
	Stream *dist.Stream
}

// Result reports a distributed run.
type Result struct {
	Centroids []Point
	Inertia   float64
	Iters     int
	// IterTimes records the modeled duration of each iteration.
	IterTimes []time.Duration
	// Elapsed is the total modeled runtime.
	Elapsed time.Duration
}

// Stage uploads the dataset partitions into Pilot-Data, returning the
// partition data-unit IDs. Call once before Run.
func Stage(ctx context.Context, ds *data.Service, dataset *Dataset, cfg Config) ([]string, error) {
	if cfg.Partitions <= 0 {
		cfg.Partitions = 1
	}
	site := cfg.Site
	if site == "" {
		site = "siteA"
	}
	bpp := cfg.BytesPerPoint
	if bpp <= 0 {
		bpp = 64
	}
	parts := dataset.Partition(cfg.Partitions)
	ids := make([]string, len(parts))
	for i, part := range parts {
		ids[i] = fmt.Sprintf("kmeans-part-%d", i)
		if err := ds.Put(ctx, data.Unit{
			ID:          ids[i],
			Content:     encodePoints(part),
			LogicalSize: int64(len(part)) * bpp,
			Site:        site,
		}); err != nil {
			return nil, err
		}
	}
	return ids, nil
}

// Run executes distributed K-Means on mgr's pilots. partIDs come from
// Stage; the dataset parameter supplies initial centroids (and dimension).
func Run(ctx context.Context, mgr *core.Manager, dataset *Dataset, partIDs []string, cfg Config) (*Result, error) {
	if cfg.K <= 0 {
		return nil, errors.New("kmeans: K must be positive")
	}
	if cfg.MaxIter <= 0 {
		cfg.MaxIter = 10
	}
	if cfg.Mode == ModeMemory && cfg.Cache == nil {
		return nil, errors.New("kmeans: ModeMemory requires a cache")
	}
	clock := mgr.Clock()
	start := clock.Now()
	if cfg.Stream == nil {
		cfg.Stream = mgr.Stream().Named("app/kmeans")
	}
	centroids := initCentroids(dataset.Points, cfg.K, cfg.Stream)
	res := &Result{}

	bpp := cfg.BytesPerPoint
	if bpp <= 0 {
		bpp = 64
	}

	for iter := 1; iter <= cfg.MaxIter; iter++ {
		iterStart := clock.Now()
		type partial struct {
			sums   []Point
			counts []int
			in     float64
		}
		partials := make([]partial, len(partIDs))
		var mu sync.Mutex
		cents := clonePoints(centroids)

		units := make([]*core.ComputeUnit, 0, len(partIDs))
		for i, id := range partIDs {
			i, id := i, id
			u, err := mgr.SubmitUnit(core.UnitDescription{
				Name:      fmt.Sprintf("kmeans-i%d-p%d", iter, i),
				InputData: []string{id},
				Run: func(ctx context.Context, tc core.TaskContext) error {
					points, err := loadPartition(ctx, tc, cfg, id, bpp)
					if err != nil {
						return err
					}
					sums, counts, in := Assign(points, cents)
					mu.Lock()
					partials[i] = partial{sums, counts, in}
					mu.Unlock()
					return nil
				},
			})
			if err != nil {
				return nil, err
			}
			units = append(units, u)
		}
		for _, u := range units {
			if s, err := u.Wait(ctx); s != core.UnitDone {
				return nil, fmt.Errorf("kmeans: unit %s %v: %w", u.ID(), s, err)
			}
		}
		allSums := make([][]Point, len(partials))
		allCounts := make([][]int, len(partials))
		var inertia float64
		for i, p := range partials {
			allSums[i], allCounts[i] = p.sums, p.counts
			inertia += p.in
		}
		next := Reduce(centroids, allSums, allCounts)
		moved := centroidShift(centroids, next)
		centroids = next
		res.Inertia = inertia
		res.Iters = iter
		res.IterTimes = append(res.IterTimes, clock.Now().Sub(iterStart))
		if moved < cfg.Tol {
			break
		}
	}
	res.Centroids = centroids
	res.Elapsed = clock.Now().Sub(start)
	return res, nil
}

// loadPartition fetches partition points via cache or data service.
func loadPartition(ctx context.Context, tc core.TaskContext, cfg Config, id string, bpp int64) ([]Point, error) {
	read := func(ctx context.Context) (any, error) {
		raw, err := tc.Data.Read(ctx, id, tc.Site)
		if err != nil {
			return nil, err
		}
		return decodePoints(raw)
	}
	if cfg.Mode == ModeMemory {
		size, _ := tc.Data.Size(id)
		if size == 0 {
			size = bpp
		}
		v, err := cfg.Cache.GetOrLoad(ctx, id, size, read)
		if err != nil {
			return nil, err
		}
		return v.([]Point), nil
	}
	v, err := read(ctx)
	if err != nil {
		return nil, err
	}
	return v.([]Point), nil
}

func clonePoints(ps []Point) []Point {
	out := make([]Point, len(ps))
	for i, p := range ps {
		out[i] = append(Point(nil), p...)
	}
	return out
}

// encodePoints serializes points as float64 little-endian with a small
// header (dim, count).
func encodePoints(ps []Point) []byte {
	if len(ps) == 0 {
		return make([]byte, 16)
	}
	dim := len(ps[0])
	buf := make([]byte, 16+8*dim*len(ps))
	binary.LittleEndian.PutUint64(buf[0:], uint64(dim))
	binary.LittleEndian.PutUint64(buf[8:], uint64(len(ps)))
	off := 16
	for _, p := range ps {
		for _, v := range p {
			binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(v))
			off += 8
		}
	}
	return buf
}

func decodePoints(buf []byte) ([]Point, error) {
	if len(buf) < 16 {
		return nil, errors.New("kmeans: truncated partition")
	}
	dim := int(binary.LittleEndian.Uint64(buf[0:]))
	n := int(binary.LittleEndian.Uint64(buf[8:]))
	want := 16 + 8*dim*n
	if len(buf) < want {
		return nil, fmt.Errorf("kmeans: partition has %d bytes, want %d", len(buf), want)
	}
	out := make([]Point, n)
	off := 16
	for i := range out {
		p := make(Point, dim)
		for d := range p {
			p[d] = math.Float64frombits(binary.LittleEndian.Uint64(buf[off:]))
			off += 8
		}
		out[i] = p
	}
	return out, nil
}
