package kmeans

import (
	"context"
	"math"
	"testing"
	"testing/quick"
	"time"

	"gopilot/internal/dist"

	"gopilot/internal/core"
	"gopilot/internal/data"
	"gopilot/internal/memory"
	"gopilot/internal/metrics"
	"gopilot/internal/saga"
	"gopilot/internal/vclock"
)

func TestGenerateShape(t *testing.T) {
	ds := Generate(100, 4, 3, 1.0, dist.NewStream(42))
	if len(ds.Points) != 100 || len(ds.Centers) != 4 || ds.Dim != 3 {
		t.Fatalf("dataset shape wrong: %d points %d centers dim %d", len(ds.Points), len(ds.Centers), ds.Dim)
	}
	for _, p := range ds.Points {
		if len(p) != 3 {
			t.Fatal("point dim wrong")
		}
	}
}

func TestGenerateReproducible(t *testing.T) {
	a := Generate(50, 3, 2, 1, dist.NewStream(7))
	b := Generate(50, 3, 2, 1, dist.NewStream(7))
	for i := range a.Points {
		for d := range a.Points[i] {
			if a.Points[i][d] != b.Points[i][d] {
				t.Fatal("same seed, different data")
			}
		}
	}
}

func TestPartitionCoversAll(t *testing.T) {
	ds := Generate(103, 2, 2, 1, dist.NewStream(1))
	parts := ds.Partition(7)
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	if total != 103 {
		t.Fatalf("partitions cover %d points, want 103", total)
	}
}

func TestSequentialConverges(t *testing.T) {
	// Well-separated clusters: k-means should find centers near truth.
	ds := Generate(600, 3, 2, 0.5, dist.NewStream(11))
	// Seed 4 samples one initial centroid per true cluster; plain Lloyd's
	// (no k-means++) stays in a collapsed local optimum for inits that
	// start two centroids in one cluster, so the seed matters.
	centroids, inertia, iters := Sequential(ds.Points, 3, 50, 1e-6, dist.NewStream(4))
	if iters <= 0 || iters > 50 {
		t.Fatalf("iters = %d", iters)
	}
	if inertia <= 0 {
		t.Fatalf("inertia = %g", inertia)
	}
	// Every true center has a centroid within a few spreads.
	for _, c := range ds.Centers {
		best := math.MaxFloat64
		for _, k := range centroids {
			if d := dist2(c, k); d < best {
				best = d
			}
		}
		if math.Sqrt(best) > 3 {
			t.Errorf("no centroid near true center %v (closest %.2f away)", c, math.Sqrt(best))
		}
	}
}

// Property: Reduce with a single partition equals the mean of assigned
// points, and total counts equal the point count.
func TestAssignReduceProperty(t *testing.T) {
	f := func(seed int64) bool {
		ds := Generate(80, 3, 2, 2, dist.NewStream(seed))
		cents := initCentroids(ds.Points, 3, dist.NewStream(seed+1))
		sums, counts, _ := Assign(ds.Points, cents)
		total := 0
		for _, c := range counts {
			total += c
		}
		if total != len(ds.Points) {
			return false
		}
		next := Reduce(cents, [][]Point{sums}, [][]int{counts})
		for c := range next {
			if counts[c] == 0 {
				continue
			}
			for d := range next[c] {
				want := sums[c][d] / float64(counts[c])
				if math.Abs(next[c][d]-want) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	ds := Generate(17, 2, 5, 1, dist.NewStream(3))
	got, err := decodePoints(encodePoints(ds.Points))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ds.Points) {
		t.Fatalf("len = %d", len(got))
	}
	for i := range got {
		for d := range got[i] {
			if got[i][d] != ds.Points[i][d] {
				t.Fatal("roundtrip mismatch")
			}
		}
	}
}

func TestDecodeRejectsTruncated(t *testing.T) {
	if _, err := decodePoints([]byte{1, 2, 3}); err == nil {
		t.Error("truncated header accepted")
	}
	buf := encodePoints(Generate(5, 1, 2, 1, dist.NewStream(1)).Points)
	if _, err := decodePoints(buf[:len(buf)-4]); err == nil {
		t.Error("truncated body accepted")
	}
}

type testEnv struct {
	clock *vclock.Scaled
	mgr   *core.Manager
	ds    *data.Service
}

func newEnv(t *testing.T) *testEnv { return newEnvScale(t, 2000) }

// newEnvScale lets timing-sensitive tests pick a lower compression factor
// so modeled costs dominate wall-clock scheduling noise.
func newEnvScale(t *testing.T, factor float64) *testEnv {
	t.Helper()
	clock := vclock.NewScaled(factor)
	reg := saga.NewRegistry()
	reg.Register(saga.NewLocalService("siteA", 16, clock))
	ds := data.NewService(data.Config{Clock: clock, LocalBandwidth: 200e6})
	ds.AddSite("siteA")
	mgr := core.NewManager(core.Config{Registry: reg, Clock: clock, Data: ds})
	t.Cleanup(mgr.Close)
	mgr.SubmitPilot(core.PilotDescription{Resource: "local://siteA", Cores: 8})
	return &testEnv{clock: clock, mgr: mgr, ds: ds}
}

func TestDistributedMatchesSequential(t *testing.T) {
	env := newEnv(t)
	dataset := Generate(400, 3, 2, 0.5, dist.NewStream(21))
	cfg := Config{K: 3, MaxIter: 8, Tol: 1e-9, Partitions: 4, Mode: ModeData, Stream: dist.NewStream(5)}
	ids, err := Stage(context.Background(), env.ds, dataset, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), env.mgr, dataset, ids, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Sequential with identical init (same seed) and same iteration count.
	seqCents, seqInertia, _ := Sequential(dataset.Points, 3, res.Iters, 0, dist.NewStream(5))
	if math.Abs(res.Inertia-seqInertia)/seqInertia > 1e-6 {
		t.Fatalf("inertia %g != sequential %g", res.Inertia, seqInertia)
	}
	for i := range seqCents {
		for d := range seqCents[i] {
			if math.Abs(res.Centroids[i][d]-seqCents[i][d]) > 1e-9 {
				t.Fatalf("centroid %d dim %d: %g != %g", i, d, res.Centroids[i][d], seqCents[i][d])
			}
		}
	}
}

func TestMemoryModeFasterPerIteration(t *testing.T) {
	// Low compression and multi-gigabyte modeled partitions: the 10s-class
	// disk reads dwarf wall-clock scheduling noise (which appears as ~0.5s
	// of modeled time per wall millisecond at this factor).
	env := newEnvScale(t, 500)
	dataset := Generate(400, 3, 2, 0.5, dist.NewStream(33))
	base := Config{K: 3, MaxIter: 5, Tol: 0, Partitions: 4, BytesPerPoint: 1 << 24, Stream: dist.NewStream(9)}

	diskCfg := base
	diskCfg.Mode = ModeData
	ids, err := Stage(context.Background(), env.ds, dataset, diskCfg)
	if err != nil {
		t.Fatal(err)
	}
	disk, err := Run(context.Background(), env.mgr, dataset, ids, diskCfg)
	if err != nil {
		t.Fatal(err)
	}

	memCfg := base
	memCfg.Mode = ModeMemory
	memCfg.Cache = memory.NewCache(memory.Config{CapacityBytes: 1 << 36, Bandwidth: 10e9, Clock: env.clock})
	mem, err := Run(context.Background(), env.mgr, dataset, ids, memCfg)
	if err != nil {
		t.Fatal(err)
	}

	// After iteration 1 the cache is warm: the mean of the later
	// iterations must beat disk mode's clearly.
	diskLater := metrics.Mean(metrics.Durations(disk.IterTimes[1:]))
	memLater := metrics.Mean(metrics.Durations(mem.IterTimes[1:]))
	if memLater >= diskLater {
		t.Fatalf("warm memory iterations %.2fs not faster than disk iterations %.2fs", memLater, diskLater)
	}
	if memCfg.Cache.HitRate() == 0 {
		t.Error("cache never hit")
	}
	// Same math either way.
	if math.Abs(disk.Inertia-mem.Inertia)/disk.Inertia > 1e-6 {
		t.Errorf("inertia differs: disk %g mem %g", disk.Inertia, mem.Inertia)
	}
}

func TestRunValidation(t *testing.T) {
	env := newEnv(t)
	dataset := Generate(10, 2, 2, 1, dist.NewStream(1))
	if _, err := Run(context.Background(), env.mgr, dataset, []string{"x"}, Config{K: 0}); err == nil {
		t.Error("K=0 accepted")
	}
	if _, err := Run(context.Background(), env.mgr, dataset, []string{"x"}, Config{K: 2, Mode: ModeMemory}); err == nil {
		t.Error("ModeMemory without cache accepted")
	}
}

func TestModeString(t *testing.T) {
	if ModeData.String() != "pilot-data" || ModeMemory.String() != "pilot-memory" {
		t.Fatal("mode strings wrong")
	}
}

func TestIterTimesRecorded(t *testing.T) {
	env := newEnv(t)
	dataset := Generate(100, 2, 2, 0.5, dist.NewStream(3))
	cfg := Config{K: 2, MaxIter: 3, Tol: 0, Partitions: 2, Mode: ModeData, Stream: dist.NewStream(4)}
	ids, _ := Stage(context.Background(), env.ds, dataset, cfg)
	res, err := Run(context.Background(), env.mgr, dataset, ids, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.IterTimes) != res.Iters {
		t.Fatalf("iter times = %d, iters = %d", len(res.IterTimes), res.Iters)
	}
	var sum time.Duration
	for _, it := range res.IterTimes {
		sum += it
	}
	if sum > res.Elapsed+time.Second {
		t.Errorf("iteration times %v exceed elapsed %v", sum, res.Elapsed)
	}
}
