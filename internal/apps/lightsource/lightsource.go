// Package lightsource implements the light-source streaming case study of
// Pilot-Streaming [32]: detector frames stream through the broker and are
// reconstructed online. Frames are synthetic 2-D detector images with a
// planted Gaussian peak over noise; reconstruction does real work — dark-
// field subtraction, thresholding, connected-peak centroiding — so the
// per-message processing cost and the recovered peak positions are both
// genuine.
package lightsource

import (
	"encoding/binary"
	"errors"
	"math"

	"gopilot/internal/dist"
)

// Frame is one detector exposure.
type Frame struct {
	// ID is the frame sequence number.
	ID uint32
	// Width and Height are the detector dimensions.
	Width, Height int
	// Pixels holds row-major intensities.
	Pixels []float32
	// TruePeakX/Y is the planted peak center (ground truth for scoring).
	TruePeakX, TruePeakY float64
}

// Detector generates frames with reproducible noise and peak placement.
type Detector struct {
	width, height int
	noise         float64
	peakAmp       float64
	peakSigma     float64
	rng           *dist.Stream
	next          uint32
}

// NewDetector creates a synthetic detector drawing noise and peak
// placement from the given stream on the experiment's seeding spine.
func NewDetector(width, height int, noise, peakAmp, peakSigma float64, s *dist.Stream) *Detector {
	if width <= 0 {
		width = 32
	}
	if height <= 0 {
		height = 32
	}
	if noise <= 0 {
		noise = 1
	}
	if peakAmp <= 0 {
		peakAmp = 20
	}
	if peakSigma <= 0 {
		peakSigma = 2
	}
	return &Detector{
		width: width, height: height,
		noise: noise, peakAmp: peakAmp, peakSigma: peakSigma,
		rng: s,
	}
}

// Next produces one frame with a randomly placed Gaussian peak.
func (d *Detector) Next() Frame {
	f := Frame{
		ID:     d.next,
		Width:  d.width,
		Height: d.height,
		Pixels: make([]float32, d.width*d.height),
	}
	d.next++
	cx := 4 + d.rng.Float64()*float64(d.width-8)
	cy := 4 + d.rng.Float64()*float64(d.height-8)
	f.TruePeakX, f.TruePeakY = cx, cy
	inv2s2 := 1 / (2 * d.peakSigma * d.peakSigma)
	for y := 0; y < d.height; y++ {
		for x := 0; x < d.width; x++ {
			dx := float64(x) - cx
			dy := float64(y) - cy
			v := d.peakAmp*math.Exp(-(dx*dx+dy*dy)*inv2s2) + d.rng.NormFloat64()*d.noise
			f.Pixels[y*d.width+x] = float32(v)
		}
	}
	return f
}

// Encode serializes a frame for the broker.
func Encode(f Frame) []byte {
	buf := make([]byte, 4+4+4+8+8+4*len(f.Pixels))
	binary.LittleEndian.PutUint32(buf[0:], f.ID)
	binary.LittleEndian.PutUint32(buf[4:], uint32(f.Width))
	binary.LittleEndian.PutUint32(buf[8:], uint32(f.Height))
	binary.LittleEndian.PutUint64(buf[12:], math.Float64bits(f.TruePeakX))
	binary.LittleEndian.PutUint64(buf[20:], math.Float64bits(f.TruePeakY))
	off := 28
	for _, p := range f.Pixels {
		binary.LittleEndian.PutUint32(buf[off:], math.Float32bits(p))
		off += 4
	}
	return buf
}

// Decode parses an encoded frame.
func Decode(buf []byte) (Frame, error) {
	if len(buf) < 28 {
		return Frame{}, errors.New("lightsource: truncated frame header")
	}
	f := Frame{
		ID:     binary.LittleEndian.Uint32(buf[0:]),
		Width:  int(binary.LittleEndian.Uint32(buf[4:])),
		Height: int(binary.LittleEndian.Uint32(buf[8:])),
	}
	f.TruePeakX = math.Float64frombits(binary.LittleEndian.Uint64(buf[12:]))
	f.TruePeakY = math.Float64frombits(binary.LittleEndian.Uint64(buf[20:]))
	n := f.Width * f.Height
	if len(buf) < 28+4*n {
		return Frame{}, errors.New("lightsource: truncated frame pixels")
	}
	f.Pixels = make([]float32, n)
	off := 28
	for i := range f.Pixels {
		f.Pixels[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[off:]))
		off += 4
	}
	return f, nil
}

// Reconstruction is the analysis result for one frame.
type Reconstruction struct {
	FrameID uint32
	// PeakX/Y is the recovered peak centroid.
	PeakX, PeakY float64
	// PeakIntensity is the summed intensity above threshold.
	PeakIntensity float64
	// Error is the Euclidean distance to the planted peak.
	Error float64
	// Found reports whether any pixel cleared the threshold.
	Found bool
}

// Reconstruct performs dark-field subtraction (median as dark estimate),
// thresholds at k·σ above background, and centroids the surviving pixels.
func Reconstruct(f Frame, k float64) Reconstruction {
	out := Reconstruction{FrameID: f.ID}
	if len(f.Pixels) == 0 {
		return out
	}
	// Background statistics (mean/σ over all pixels — peak is sparse).
	var mean, m2 float64
	for i, p := range f.Pixels {
		v := float64(p)
		d := v - mean
		mean += d / float64(i+1)
		m2 += d * (v - mean)
	}
	sigma := math.Sqrt(m2 / float64(len(f.Pixels)))
	thresh := mean + k*sigma

	var sx, sy, si float64
	for y := 0; y < f.Height; y++ {
		for x := 0; x < f.Width; x++ {
			v := float64(f.Pixels[y*f.Width+x]) - mean
			if float64(f.Pixels[y*f.Width+x]) >= thresh {
				sx += float64(x) * v
				sy += float64(y) * v
				si += v
			}
		}
	}
	if si <= 0 {
		return out
	}
	out.Found = true
	out.PeakX = sx / si
	out.PeakY = sy / si
	out.PeakIntensity = si
	dx := out.PeakX - f.TruePeakX
	dy := out.PeakY - f.TruePeakY
	out.Error = math.Sqrt(dx*dx + dy*dy)
	return out
}
