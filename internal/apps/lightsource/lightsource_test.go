package lightsource

import (
	"math"
	"testing"
	"testing/quick"

	"gopilot/internal/dist"
)

func TestDetectorFramesReproducible(t *testing.T) {
	d1 := NewDetector(32, 32, 1, 20, 2, dist.NewStream(7))
	d2 := NewDetector(32, 32, 1, 20, 2, dist.NewStream(7))
	f1, f2 := d1.Next(), d2.Next()
	if f1.TruePeakX != f2.TruePeakX || f1.TruePeakY != f2.TruePeakY {
		t.Fatal("peaks differ for same seed")
	}
	for i := range f1.Pixels {
		if f1.Pixels[i] != f2.Pixels[i] {
			t.Fatal("pixels differ for same seed")
		}
	}
}

func TestFrameIDsIncrement(t *testing.T) {
	d := NewDetector(16, 16, 1, 20, 2, dist.NewStream(1))
	for i := uint32(0); i < 5; i++ {
		if f := d.Next(); f.ID != i {
			t.Fatalf("frame ID = %d, want %d", f.ID, i)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	d := NewDetector(24, 16, 1, 20, 2, dist.NewStream(3))
	f := d.Next()
	got, err := Decode(Encode(f))
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != f.ID || got.Width != f.Width || got.Height != f.Height {
		t.Fatalf("header mismatch: %+v", got)
	}
	if got.TruePeakX != f.TruePeakX || got.TruePeakY != f.TruePeakY {
		t.Fatal("peak mismatch")
	}
	for i := range f.Pixels {
		if got.Pixels[i] != f.Pixels[i] {
			t.Fatal("pixel mismatch")
		}
	}
}

func TestDecodeRejectsTruncated(t *testing.T) {
	if _, err := Decode([]byte{1, 2}); err == nil {
		t.Error("truncated header accepted")
	}
	d := NewDetector(8, 8, 1, 20, 2, dist.NewStream(1))
	buf := Encode(d.Next())
	if _, err := Decode(buf[:len(buf)-5]); err == nil {
		t.Error("truncated pixels accepted")
	}
}

func TestReconstructFindsPlantedPeak(t *testing.T) {
	d := NewDetector(48, 48, 0.5, 30, 2, dist.NewStream(11))
	for i := 0; i < 20; i++ {
		f := d.Next()
		r := Reconstruct(f, 3)
		if !r.Found {
			t.Fatalf("frame %d: peak not found", f.ID)
		}
		if r.Error > 3 {
			t.Fatalf("frame %d: peak error %.2f px (true %.1f,%.1f got %.1f,%.1f)",
				f.ID, r.Error, f.TruePeakX, f.TruePeakY, r.PeakX, r.PeakY)
		}
	}
}

func TestReconstructPureNoiseRarelyFires(t *testing.T) {
	// No peak (amplitude ~ noise): with a high threshold the centroid
	// should either not fire or fire with tiny integrated intensity.
	d := NewDetector(32, 32, 1, 0.001, 2, dist.NewStream(13))
	fires := 0
	for i := 0; i < 20; i++ {
		f := d.Next()
		if r := Reconstruct(f, 5); r.Found && r.PeakIntensity > 50 {
			fires++
		}
	}
	if fires > 2 {
		t.Fatalf("noise-only frames fired strongly %d/20 times", fires)
	}
}

func TestReconstructEmptyFrame(t *testing.T) {
	r := Reconstruct(Frame{}, 3)
	if r.Found {
		t.Fatal("empty frame found a peak")
	}
}

// Property: encode/decode round-trips arbitrary dimensions.
func TestEncodeDecodeProperty(t *testing.T) {
	f := func(w8, h8 uint8, seed int64) bool {
		w := int(w8%32) + 1
		h := int(h8%32) + 1
		d := NewDetector(w, h, 1, 10, 1, dist.NewStream(seed))
		fr := d.Next()
		got, err := Decode(Encode(fr))
		if err != nil {
			return false
		}
		return got.Width == w && got.Height == h && len(got.Pixels) == w*h
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestReconstructionIntensityPositive(t *testing.T) {
	d := NewDetector(32, 32, 0.5, 25, 2, dist.NewStream(17))
	r := Reconstruct(d.Next(), 3)
	if !r.Found || r.PeakIntensity <= 0 || math.IsNaN(r.PeakIntensity) {
		t.Fatalf("reconstruction = %+v", r)
	}
}
