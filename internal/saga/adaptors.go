package saga

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"gopilot/internal/infra"
	"gopilot/internal/infra/cloud"
	"gopilot/internal/infra/hpc"
	"gopilot/internal/infra/htc"
	"gopilot/internal/infra/yarn"
	"gopilot/internal/vclock"
)

// ---------------------------------------------------------------------------
// Local (fork) adaptor
// ---------------------------------------------------------------------------

// LocalService runs jobs immediately in-process — the SAGA "fork" adaptor.
// It is the zero-latency reference backend used in unit tests and as the
// lower bound in overhead experiments.
type LocalService struct {
	name   string
	cores  int
	clock  vclock.Clock
	faults infra.Faults

	mu     sync.Mutex
	nextID int
	closed bool
	wg     *vclock.Group
}

// NewLocalService creates a local service with the given core capacity
// (capacity is advisory; local jobs are never queued).
func NewLocalService(name string, cores int, clock vclock.Clock) *LocalService {
	if clock == nil {
		clock = vclock.NewReal()
	}
	if name == "" {
		name = "localhost"
	}
	if cores <= 0 {
		cores = 8
	}
	return &LocalService{name: name, cores: cores, clock: clock, wg: vclock.NewGroup(clock)}
}

// URL implements Service.
func (s *LocalService) URL() string { return "local://" + s.name }

// Site implements Service.
func (s *LocalService) Site() infra.Site { return infra.Site(s.name) }

// TotalCores implements Service.
func (s *LocalService) TotalCores() int { return s.cores }

// Faults returns the service's fault switchboard (chaos engineering). The
// local backend has no simulator underneath, so it owns its own.
func (s *LocalService) Faults() *infra.Faults { return &s.faults }

// Submit implements Service.
func (s *LocalService) Submit(d Description) (Job, error) {
	if d.Payload == nil {
		return nil, errors.New("saga: description has nil payload")
	}
	if err := s.faults.Check(); err != nil {
		return nil, fmt.Errorf("saga: %s: %w", s.URL(), err)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, fmt.Errorf("saga: service %s closed", s.URL())
	}
	s.nextID++
	id := fmt.Sprintf("local.%s.%d", s.name, s.nextID)
	s.mu.Unlock()

	now := s.clock.Now()
	j := newBaseJob(id, now, s.clock)
	ctx, cancel := context.WithCancel(context.Background())
	j.setCancel(cancel)

	cores := d.TotalCores
	if cores <= 0 {
		cores = 1
	}
	alloc := infra.Allocation{
		ID:      id,
		Site:    s.Site(),
		Cores:   cores,
		Nodes:   []string{s.name},
		Granted: now,
	}
	s.wg.Add(1)
	vclock.Go(s.clock, func() {
		defer s.wg.Done()
		defer cancel()
		j.markRunning(s.clock.Now())
		if d.Walltime > 0 {
			defer armWalltime(s.clock, ctx, d.Walltime, cancel, s.wg)()
		}
		err := d.Payload(ctx, alloc)
		j.finishPayload(ctx.Err(), err, s.clock.Now())
	})
	return j, nil
}

// Close implements Service.
func (s *LocalService) Close() error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.wg.Wait()
	return nil
}

// ---------------------------------------------------------------------------
// HPC adaptor
// ---------------------------------------------------------------------------

// HPCService adapts a simulated batch cluster to the SAGA interface.
// TotalCores are rounded up to whole nodes, as real batch systems do.
type HPCService struct {
	cluster *hpc.Cluster
	clock   vclock.Clock
}

// NewHPCService wraps an hpc.Cluster.
func NewHPCService(c *hpc.Cluster, clock vclock.Clock) *HPCService {
	if clock == nil {
		clock = vclock.NewReal()
	}
	return &HPCService{cluster: c, clock: clock}
}

// URL implements Service.
func (s *HPCService) URL() string { return "hpc://" + s.cluster.Name() }

// Site implements Service.
func (s *HPCService) Site() infra.Site { return s.cluster.Site() }

// TotalCores implements Service.
func (s *HPCService) TotalCores() int { return s.cluster.TotalCores() }

// Cluster exposes the underlying simulator for experiment inspection.
func (s *HPCService) Cluster() *hpc.Cluster { return s.cluster }

// Faults returns the backend's fault switchboard (chaos engineering).
func (s *HPCService) Faults() *infra.Faults { return s.cluster.Faults() }

// Submit implements Service.
func (s *HPCService) Submit(d Description) (Job, error) {
	if d.Payload == nil {
		return nil, errors.New("saga: description has nil payload")
	}
	cores := d.TotalCores
	if cores <= 0 {
		cores = 1
	}
	cpn := s.cluster.CoresPerNode()
	nodes := (cores + cpn - 1) / cpn

	now := s.clock.Now()
	j := newBaseJob("", now, s.clock)

	bj, err := s.cluster.Submit(hpc.JobSpec{
		Name:     d.Name,
		Nodes:    nodes,
		Walltime: d.Walltime,
		Payload: func(ctx context.Context, alloc infra.Allocation) error {
			j.markRunning(s.clock.Now())
			return d.Payload(ctx, alloc)
		},
	})
	if err != nil {
		return nil, err
	}
	j.id = bj.ID()
	j.setCancel(func() { s.cluster.Cancel(bj) })
	vclock.Go(s.clock, func() {
		bj.Wait(context.Background())
		end := s.clock.Now()
		switch bj.State() {
		case hpc.Completed:
			j.finish(Done, nil, end)
		case hpc.TimedOut:
			j.finish(Failed, fmt.Errorf("saga: job %s hit walltime: %w", bj.ID(), bj.Err()), end)
		case hpc.Canceled:
			j.finish(Canceled, bj.Err(), end)
		default:
			j.finish(Failed, bj.Err(), end)
		}
	})
	return j, nil
}

// Close implements Service.
func (s *HPCService) Close() error { return nil }

// ---------------------------------------------------------------------------
// HTC adaptor (glidein-style multi-slot coalescence)
// ---------------------------------------------------------------------------

// HTCService adapts a simulated HTC pool. A job requesting k cores is
// realized as k single-slot "glidein" jobs; the payload starts once all
// slots have been matched (condor-glidein-style coalescence) and is
// canceled if a member slot is evicted without retry budget.
type HTCService struct {
	pool  *htc.Pool
	clock vclock.Clock

	mu     sync.Mutex
	nextID int
}

// NewHTCService wraps an htc.Pool.
func NewHTCService(p *htc.Pool, clock vclock.Clock) *HTCService {
	if clock == nil {
		clock = vclock.NewReal()
	}
	return &HTCService{pool: p, clock: clock}
}

// URL implements Service.
func (s *HTCService) URL() string { return "htc://" + s.pool.Name() }

// Site implements Service.
func (s *HTCService) Site() infra.Site { return s.pool.Site() }

// TotalCores implements Service.
func (s *HTCService) TotalCores() int { return s.pool.Slots() }

// Pool exposes the underlying simulator.
func (s *HTCService) Pool() *htc.Pool { return s.pool }

// Faults returns the backend's fault switchboard (chaos engineering).
func (s *HTCService) Faults() *infra.Faults { return s.pool.Faults() }

// Submit implements Service.
func (s *HTCService) Submit(d Description) (Job, error) {
	if d.Payload == nil {
		return nil, errors.New("saga: description has nil payload")
	}
	slots := d.TotalCores
	if slots <= 0 {
		slots = 1
	}
	s.mu.Lock()
	s.nextID++
	id := fmt.Sprintf("htc.%s.%d", s.pool.Name(), s.nextID)
	s.mu.Unlock()

	now := s.clock.Now()
	j := newBaseJob(id, now, s.clock)
	ctx, cancel := context.WithCancel(context.Background())
	j.setCancel(cancel)

	// Shared coalescence state: glidein payloads record arrivals and losses
	// here and nudge the coalescer through the notifier; the release event
	// lets them surrender their slots once the aggregate payload ends.
	st := &glideinSet{
		changed: vclock.NewNotifier(s.clock),
		release: vclock.NewEvent(s.clock),
	}
	glideins := make([]*htc.Job, 0, slots)
	for i := 0; i < slots; i++ {
		gj, err := s.pool.Submit(htc.JobSpec{
			Name:    fmt.Sprintf("%s.glidein%d", d.Name, i),
			Runtime: d.Walltime,
			Payload: func(gctx context.Context, alloc infra.Allocation) error {
				st.mu.Lock()
				st.nodes = append(st.nodes, alloc.Nodes[0])
				st.mu.Unlock()
				st.changed.Set()
				// Hold the slot until the aggregate payload completes.
				if st.release.Wait(gctx) {
					return nil
				}
				st.mu.Lock()
				if st.lost == nil {
					st.lost = gctx.Err()
				}
				pcancel := st.pcancel
				st.mu.Unlock()
				st.changed.Set()
				if pcancel != nil {
					// Mid-run eviction: tear down the aggregate payload.
					pcancel()
				}
				return gctx.Err()
			},
		})
		if err != nil {
			cancel()
			st.release.Fire()
			for _, g := range glideins {
				s.pool.Cancel(g)
			}
			return nil, err
		}
		glideins = append(glideins, gj)
	}

	vclock.Go(s.clock, func() {
		defer cancel()
		for {
			st.mu.Lock()
			arrived, lost := len(st.nodes), st.lost
			st.mu.Unlock()
			if lost != nil {
				// A glidein died before coalescence with no retry left.
				st.release.Fire()
				j.finish(Failed, fmt.Errorf("saga: glidein lost before start: %w", lost), s.clock.Now())
				return
			}
			if arrived >= slots {
				break
			}
			if !st.changed.Wait(ctx) {
				st.release.Fire()
				j.finish(Canceled, ctx.Err(), s.clock.Now())
				return
			}
		}
		start := s.clock.Now()
		j.markRunning(start)
		st.mu.Lock()
		nodes := append([]string(nil), st.nodes[:slots]...)
		pctx, pcancel := context.WithCancel(ctx)
		st.pcancel = pcancel
		// An eviction may have landed after coalescence but before pcancel
		// was published; the glidein saw nil then, so tear down here.
		evictedEarly := st.lost
		st.mu.Unlock()
		if evictedEarly != nil {
			pcancel()
		}
		alloc := infra.Allocation{
			ID:      id,
			Site:    s.Site(),
			Cores:   slots,
			Nodes:   nodes,
			Granted: start,
		}
		err := d.Payload(pctx, alloc)
		pcancel()
		st.release.Fire()
		st.mu.Lock()
		evictErr := st.lost
		st.mu.Unlock()
		end := s.clock.Now()
		if evictErr != nil {
			j.finish(Failed, fmt.Errorf("saga: slot evicted mid-run: %w", evictErr), end)
			return
		}
		j.finishPayload(ctx.Err(), err, end)
	})
	return j, nil
}

// glideinSet is the coalescence scratchpad shared between an HTC job's
// glidein payloads and its coalescer goroutine.
type glideinSet struct {
	changed *vclock.Notifier
	release *vclock.Event

	mu      sync.Mutex
	nodes   []string
	lost    error
	pcancel context.CancelFunc
}

// Close implements Service.
func (s *HTCService) Close() error { return nil }

// ---------------------------------------------------------------------------
// Cloud adaptor
// ---------------------------------------------------------------------------

// CloudService adapts a simulated IaaS provider: a job provisions enough
// VMs to cover TotalCores, runs, and terminates them.
type CloudService struct {
	provider *cloud.Provider
	clock    vclock.Clock

	mu     sync.Mutex
	nextID int
}

// NewCloudService wraps a cloud.Provider.
func NewCloudService(p *cloud.Provider, clock vclock.Clock) *CloudService {
	if clock == nil {
		clock = vclock.NewReal()
	}
	return &CloudService{provider: p, clock: clock}
}

// URL implements Service.
func (s *CloudService) URL() string { return "cloud://" + s.provider.Name() }

// Site implements Service.
func (s *CloudService) Site() infra.Site { return s.provider.Site() }

// TotalCores implements Service (0: clouds are elastically unbounded).
func (s *CloudService) TotalCores() int { return 0 }

// Provider exposes the underlying simulator.
func (s *CloudService) Provider() *cloud.Provider { return s.provider }

// Faults returns the backend's fault switchboard (chaos engineering).
func (s *CloudService) Faults() *infra.Faults { return s.provider.Faults() }

// Submit implements Service. The attribute "vm_type" selects the instance
// type.
func (s *CloudService) Submit(d Description) (Job, error) {
	if d.Payload == nil {
		return nil, errors.New("saga: description has nil payload")
	}
	cores := d.TotalCores
	if cores <= 0 {
		cores = 1
	}
	vt := s.provider.DefaultType()
	if name := d.Attributes["vm_type"]; name != "" {
		var err error
		if vt, err = s.provider.TypeByName(name); err != nil {
			return nil, err
		}
	}
	n := (cores + vt.Cores - 1) / vt.Cores

	s.mu.Lock()
	s.nextID++
	id := fmt.Sprintf("cloud.%s.%d", s.provider.Name(), s.nextID)
	s.mu.Unlock()

	now := s.clock.Now()
	j := newBaseJob(id, now, s.clock)
	ctx, cancel := context.WithCancel(context.Background())
	j.setCancel(cancel)

	vclock.Go(s.clock, func() {
		defer cancel()
		vms, err := s.provider.Provision(ctx, n, vt.Name)
		if err != nil {
			j.finish(Failed, fmt.Errorf("saga: provisioning failed: %w", err), s.clock.Now())
			return
		}
		defer s.provider.Terminate(vms)
		start := s.clock.Now()
		j.markRunning(start)
		if d.Walltime > 0 {
			defer armWalltime(s.clock, ctx, d.Walltime, cancel, nil)()
		}
		err = d.Payload(ctx, s.provider.Allocation(id, vms))
		j.finishPayload(ctx.Err(), err, s.clock.Now())
	})
	return j, nil
}

// Close implements Service.
func (s *CloudService) Close() error { return nil }

// ---------------------------------------------------------------------------
// YARN adaptor
// ---------------------------------------------------------------------------

// YarnService adapts a simulated YARN cluster: a job negotiates containers
// covering TotalCores and releases them afterwards.
type YarnService struct {
	cluster     *yarn.Cluster
	clock       vclock.Clock
	coresPerCtr int

	mu     sync.Mutex
	nextID int
}

// NewYarnService wraps a yarn.Cluster. coresPerContainer controls container
// granularity (default 4).
func NewYarnService(c *yarn.Cluster, coresPerContainer int, clock vclock.Clock) *YarnService {
	if clock == nil {
		clock = vclock.NewReal()
	}
	if coresPerContainer <= 0 {
		coresPerContainer = 4
	}
	return &YarnService{cluster: c, clock: clock, coresPerCtr: coresPerContainer}
}

// URL implements Service.
func (s *YarnService) URL() string { return "yarn://" + s.cluster.Name() }

// Site implements Service.
func (s *YarnService) Site() infra.Site { return s.cluster.Site() }

// TotalCores implements Service.
func (s *YarnService) TotalCores() int { return s.cluster.TotalCores() }

// Cluster exposes the underlying simulator.
func (s *YarnService) Cluster() *yarn.Cluster { return s.cluster }

// Faults returns the backend's fault switchboard (chaos engineering).
func (s *YarnService) Faults() *infra.Faults { return s.cluster.Faults() }

// Submit implements Service.
func (s *YarnService) Submit(d Description) (Job, error) {
	if d.Payload == nil {
		return nil, errors.New("saga: description has nil payload")
	}
	cores := d.TotalCores
	if cores <= 0 {
		cores = 1
	}
	per := s.coresPerCtr
	if cores < per {
		per = cores
	}
	n := (cores + per - 1) / per

	s.mu.Lock()
	s.nextID++
	id := fmt.Sprintf("yarn.%s.%d", s.cluster.Name(), s.nextID)
	s.mu.Unlock()

	now := s.clock.Now()
	j := newBaseJob(id, now, s.clock)
	ctx, cancel := context.WithCancel(context.Background())
	j.setCancel(cancel)

	vclock.Go(s.clock, func() {
		defer cancel()
		containers, err := s.cluster.RequestContainers(ctx, n, per)
		if err != nil {
			j.finish(Failed, fmt.Errorf("saga: container negotiation failed: %w", err), s.clock.Now())
			return
		}
		defer s.cluster.Release(containers)
		start := s.clock.Now()
		j.markRunning(start)
		err = d.Payload(ctx, s.cluster.Allocation(id, containers))
		j.finishPayload(ctx.Err(), err, s.clock.Now())
	})
	return j, nil
}

// Close implements Service.
func (s *YarnService) Close() error { return nil }

var (
	_ Service = (*LocalService)(nil)
	_ Service = (*HPCService)(nil)
	_ Service = (*HTCService)(nil)
	_ Service = (*CloudService)(nil)
	_ Service = (*YarnService)(nil)
)

// Registry resolves resource URLs ("hpc://stampede") to services, letting
// pilot descriptions name resources symbolically, as the Pilot-API does.
type Registry struct {
	mu       sync.Mutex
	services map[string]Service
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry { return &Registry{services: make(map[string]Service)} }

// Register adds a service under its URL.
func (r *Registry) Register(s Service) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.services[s.URL()] = s
}

// Lookup resolves a URL.
func (r *Registry) Lookup(url string) (Service, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.services[url]
	if !ok {
		return nil, fmt.Errorf("saga: no service registered for %q", url)
	}
	return s, nil
}

// URLs lists registered service URLs.
func (r *Registry) URLs() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.services))
	for u := range r.services {
		out = append(out, u)
	}
	return out
}

// CloseAll closes every registered service.
func (r *Registry) CloseAll() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, s := range r.services {
		s.Close()
	}
}
