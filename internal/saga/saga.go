// Package saga is gopilot's standardized access layer to heterogeneous
// infrastructure, modeled on SAGA [70]: one Service interface, one job
// description, one job state model — and an adaptor per backend (local
// fork, HPC batch, HTC pool, IaaS cloud, YARN). The pilot layer (package
// core) submits *pilots* as SAGA jobs; applications may also submit tasks
// directly, which is the "no pilot" baseline in the late-binding
// experiments (E9).
package saga

import (
	"context"
	"fmt"
	"sync"
	"time"

	"gopilot/internal/infra"
	"gopilot/internal/vclock"
)

// JobState is the unified job state model (paper Fig. 4's P* lifecycle is a
// refinement of this).
type JobState int

// Unified job states.
const (
	New JobState = iota
	Pending
	Running
	Done
	Failed
	Canceled
)

// String implements fmt.Stringer.
func (s JobState) String() string {
	switch s {
	case New:
		return "New"
	case Pending:
		return "Pending"
	case Running:
		return "Running"
	case Done:
		return "Done"
	case Failed:
		return "Failed"
	case Canceled:
		return "Canceled"
	default:
		return fmt.Sprintf("JobState(%d)", int(s))
	}
}

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool { return s == Done || s == Failed || s == Canceled }

// Description is a backend-independent job description (the SAGA job
// description, adapted: the "executable" is a Go payload).
type Description struct {
	// Name labels the job.
	Name string
	// TotalCores requested across the whole job.
	TotalCores int
	// Walltime limits the run; zero means backend default/unlimited.
	Walltime time.Duration
	// Payload is the code to run on the granted allocation.
	Payload infra.Payload
	// Attributes carries backend-specific hints (queue name, VM type...).
	Attributes map[string]string
}

// Job is a handle to a submitted job, independent of backend.
type Job interface {
	// ID returns a backend-scoped identifier.
	ID() string
	// State returns the current unified state.
	State() JobState
	// Err returns the terminal error, if any.
	Err() error
	// Done returns a channel closed when the job reaches a terminal state.
	Done() <-chan struct{}
	// Wait blocks until terminal state or ctx cancellation.
	Wait(ctx context.Context) (JobState, error)
	// Cancel requests cancellation.
	Cancel()
	// SubmitTime returns the modeled submission time.
	SubmitTime() time.Time
	// StartTime returns the modeled start time (zero until Running).
	StartTime() time.Time
	// EndTime returns the modeled end time (zero until terminal).
	EndTime() time.Time
}

// Service submits jobs to one backend at one site (the adaptor pattern,
// paper §IV.B).
type Service interface {
	// URL identifies the service, e.g. "hpc://stampede".
	URL() string
	// Site returns the site identity for data-affinity decisions.
	Site() infra.Site
	// TotalCores returns the backend capacity in cores (0 if unbounded).
	TotalCores() int
	// Submit submits a job.
	Submit(d Description) (Job, error)
	// Close releases the service.
	Close() error
}

// baseJob provides the shared state machine for adaptor jobs.
type baseJob struct {
	id string

	mu        sync.Mutex
	state     JobState
	err       error
	submitted time.Time
	started   time.Time
	ended     time.Time
	cancelFn  func()

	done *vclock.Event
}

func newBaseJob(id string, submitted time.Time, clock vclock.Clock) *baseJob {
	return &baseJob{id: id, state: Pending, submitted: submitted, done: vclock.NewEvent(clock)}
}

func (j *baseJob) ID() string { return j.id }

func (j *baseJob) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

func (j *baseJob) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

func (j *baseJob) Done() <-chan struct{} { return j.done.Done() }

func (j *baseJob) Wait(ctx context.Context) (JobState, error) {
	if j.done.Wait(ctx) {
		return j.State(), j.Err()
	}
	return j.State(), ctx.Err()
}

func (j *baseJob) Cancel() {
	j.mu.Lock()
	fn := j.cancelFn
	j.mu.Unlock()
	if fn != nil {
		fn()
	}
}

func (j *baseJob) SubmitTime() time.Time {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.submitted
}

func (j *baseJob) StartTime() time.Time {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.started
}

func (j *baseJob) EndTime() time.Time {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.ended
}

// markRunning transitions to Running at modeled time t (idempotent).
func (j *baseJob) markRunning(t time.Time) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state == Pending || j.state == New {
		j.state = Running
		j.started = t
	}
}

// finish transitions to a terminal state at modeled time t (idempotent).
func (j *baseJob) finish(s JobState, err error, t time.Time) {
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return
	}
	j.state = s
	j.err = err
	j.ended = t
	j.mu.Unlock()
	j.done.Fire()
}

// setCancel installs the cancellation hook.
func (j *baseJob) setCancel(fn func()) {
	j.mu.Lock()
	j.cancelFn = fn
	j.mu.Unlock()
}

// finishPayload finalizes the job from a payload run's (context error,
// payload error) pair through infra.ClassifyOutcome — the one completion
// rule every adaptor shares, so no backend carries its own dispatch
// special-casing for how runs terminate.
func (j *baseJob) finishPayload(ctxErr, payloadErr error, t time.Time) {
	switch infra.ClassifyOutcome(ctxErr, payloadErr) {
	case infra.OutcomeCanceled:
		j.finish(Canceled, ctxErr, t)
	case infra.OutcomeFailed:
		j.finish(Failed, payloadErr, t)
	default:
		j.finish(Done, nil, t)
	}
}

// armWalltime starts a clock-aware watchdog that calls expire once
// walltime elapses; the returned disarm func stops it early. wg, when
// non-nil, tracks the watchdog for Close-time draining. Shared by the
// adaptors whose backends don't enforce walltime themselves.
func armWalltime(clock vclock.Clock, parent context.Context, walltime time.Duration, expire func(), wg *vclock.Group) (disarm func()) {
	wctx, wcancel := context.WithCancel(parent)
	if wg != nil {
		wg.Add(1)
	}
	vclock.Go(clock, func() {
		if wg != nil {
			defer wg.Done()
		}
		if clock.Sleep(wctx, walltime) {
			expire()
		}
	})
	return wcancel
}
