package saga

import (
	"context"
	"errors"
	"testing"
	"time"

	"gopilot/internal/dist"
	"gopilot/internal/infra"
	"gopilot/internal/infra/cloud"
	"gopilot/internal/infra/hpc"
	"gopilot/internal/infra/htc"
	"gopilot/internal/infra/yarn"
	"gopilot/internal/vclock"
)

func fastClock() vclock.Clock { return vclock.NewScaled(2000) }

func sleeper(d time.Duration, clock vclock.Clock) infra.Payload {
	return func(ctx context.Context, _ infra.Allocation) error {
		if !clock.Sleep(ctx, d) {
			return ctx.Err()
		}
		return nil
	}
}

func TestJobStateString(t *testing.T) {
	cases := map[JobState]string{
		New: "New", Pending: "Pending", Running: "Running",
		Done: "Done", Failed: "Failed", Canceled: "Canceled",
	}
	for s, want := range cases {
		if s.String() != want {
			t.Errorf("String(%d) = %q, want %q", int(s), s.String(), want)
		}
	}
	if !Done.Terminal() || Running.Terminal() {
		t.Error("Terminal() wrong")
	}
}

func TestLocalServiceRunsJob(t *testing.T) {
	clock := fastClock()
	s := NewLocalService("lh", 8, clock)
	defer s.Close()
	var gotCores int
	j, err := s.Submit(Description{
		Name:       "t",
		TotalCores: 4,
		Payload: func(_ context.Context, a infra.Allocation) error {
			gotCores = a.Cores
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	state, err := j.Wait(context.Background())
	if state != Done || err != nil {
		t.Fatalf("state=%v err=%v", state, err)
	}
	if gotCores != 4 {
		t.Errorf("alloc cores = %d, want 4", gotCores)
	}
	if j.StartTime().IsZero() || j.EndTime().IsZero() {
		t.Error("timestamps not recorded")
	}
}

func TestLocalServiceFailure(t *testing.T) {
	s := NewLocalService("lh", 8, fastClock())
	defer s.Close()
	boom := errors.New("boom")
	j, _ := s.Submit(Description{Payload: func(context.Context, infra.Allocation) error { return boom }})
	state, err := j.Wait(context.Background())
	if state != Failed || !errors.Is(err, boom) {
		t.Fatalf("state=%v err=%v", state, err)
	}
}

func TestLocalServiceCancel(t *testing.T) {
	clock := fastClock()
	s := NewLocalService("lh", 8, clock)
	defer s.Close()
	started := make(chan struct{})
	j, _ := s.Submit(Description{Payload: func(ctx context.Context, _ infra.Allocation) error {
		close(started)
		<-ctx.Done()
		return ctx.Err()
	}})
	<-started
	j.Cancel()
	state, _ := j.Wait(context.Background())
	if state != Canceled {
		t.Fatalf("state = %v, want Canceled", state)
	}
}

func TestLocalServiceWalltime(t *testing.T) {
	clock := fastClock()
	s := NewLocalService("lh", 8, clock)
	defer s.Close()
	j, _ := s.Submit(Description{Walltime: 2 * time.Second, Payload: sleeper(time.Hour, clock)})
	state, _ := j.Wait(context.Background())
	if state != Canceled {
		t.Fatalf("state = %v, want Canceled on walltime", state)
	}
}

func TestHPCServiceRoundsUpNodes(t *testing.T) {
	clock := fastClock()
	cluster := hpc.New(hpc.Config{Name: "hp", Nodes: 8, CoresPerNode: 16, Clock: clock})
	defer cluster.Shutdown()
	s := NewHPCService(cluster, clock)
	var got infra.Allocation
	j, err := s.Submit(Description{
		TotalCores: 20, // needs 2 nodes of 16
		Walltime:   time.Hour,
		Payload: func(_ context.Context, a infra.Allocation) error {
			got = a
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	state, err := j.Wait(context.Background())
	if state != Done || err != nil {
		t.Fatalf("state=%v err=%v", state, err)
	}
	if got.Cores != 32 || len(got.Nodes) != 2 {
		t.Errorf("alloc = %+v, want 32 cores on 2 nodes", got)
	}
}

func TestHPCServiceWalltimeBecomesFailed(t *testing.T) {
	clock := fastClock()
	cluster := hpc.New(hpc.Config{Name: "hp", Nodes: 1, CoresPerNode: 1, Clock: clock})
	defer cluster.Shutdown()
	s := NewHPCService(cluster, clock)
	j, _ := s.Submit(Description{TotalCores: 1, Walltime: 2 * time.Second, Payload: sleeper(time.Hour, clock)})
	state, err := j.Wait(context.Background())
	if state != Failed {
		t.Fatalf("state = %v (err=%v), want Failed", state, err)
	}
}

func TestHTCServiceCoalescesSlots(t *testing.T) {
	clock := fastClock()
	pool := htc.New(htc.Config{Name: "osg", Slots: 8, MatchDelay: dist.Constant(0.5), Clock: clock})
	defer pool.Shutdown()
	s := NewHTCService(pool, clock)
	var got infra.Allocation
	j, err := s.Submit(Description{
		Name:       "glide",
		TotalCores: 4,
		Walltime:   time.Minute,
		Payload: func(_ context.Context, a infra.Allocation) error {
			got = a
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	state, err := j.Wait(context.Background())
	if state != Done || err != nil {
		t.Fatalf("state=%v err=%v", state, err)
	}
	if got.Cores != 4 || len(got.Nodes) != 4 {
		t.Errorf("alloc = %+v, want 4 cores on 4 slots", got)
	}
}

func TestCloudServiceProvisionsEnoughVMs(t *testing.T) {
	clock := fastClock()
	p := cloud.New(cloud.Config{
		Name:      "ec2",
		Types:     []cloud.VMType{{Name: "std", Cores: 4, PricePerHour: 0.1}},
		BootDelay: dist.Constant(1),
		Clock:     clock,
	})
	defer p.Shutdown()
	s := NewCloudService(p, clock)
	var got infra.Allocation
	j, err := s.Submit(Description{
		TotalCores: 10, // ceil(10/4) = 3 VMs = 12 cores
		Payload: func(_ context.Context, a infra.Allocation) error {
			got = a
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	state, err := j.Wait(context.Background())
	if state != Done || err != nil {
		t.Fatalf("state=%v err=%v", state, err)
	}
	if got.Cores != 12 || len(got.Nodes) != 3 {
		t.Errorf("alloc = %+v, want 12 cores on 3 VMs", got)
	}
	if p.ActiveVMs() != 0 {
		t.Errorf("VMs leaked: %d", p.ActiveVMs())
	}
}

func TestYarnServiceNegotiatesContainers(t *testing.T) {
	clock := fastClock()
	c := yarn.New(yarn.Config{Name: "y", TotalCores: 32, AllocDelay: dist.Constant(0.01), Clock: clock})
	defer c.Shutdown()
	s := NewYarnService(c, 4, clock)
	var got infra.Allocation
	j, err := s.Submit(Description{
		TotalCores: 8,
		Payload: func(_ context.Context, a infra.Allocation) error {
			got = a
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	state, err := j.Wait(context.Background())
	if state != Done || err != nil {
		t.Fatalf("state=%v err=%v", state, err)
	}
	if got.Cores != 8 || len(got.Nodes) != 2 {
		t.Errorf("alloc = %+v, want 8 cores in 2 containers", got)
	}
	if c.FreeCores() != 32 {
		t.Errorf("containers leaked: free = %d", c.FreeCores())
	}
}

func TestRegistry(t *testing.T) {
	clock := fastClock()
	r := NewRegistry()
	local := NewLocalService("a", 4, clock)
	r.Register(local)
	got, err := r.Lookup("local://a")
	if err != nil || got != local {
		t.Fatalf("Lookup = %v, %v", got, err)
	}
	if _, err := r.Lookup("hpc://nope"); err == nil {
		t.Fatal("expected lookup failure")
	}
	if len(r.URLs()) != 1 {
		t.Fatalf("URLs = %v", r.URLs())
	}
	r.CloseAll()
}

func TestNilPayloadRejectedEverywhere(t *testing.T) {
	clock := fastClock()
	cluster := hpc.New(hpc.Config{Name: "x", Clock: clock})
	defer cluster.Shutdown()
	pool := htc.New(htc.Config{Name: "x", Clock: clock})
	defer pool.Shutdown()
	services := []Service{
		NewLocalService("x", 1, clock),
		NewHPCService(cluster, clock),
		NewHTCService(pool, clock),
	}
	for _, s := range services {
		if _, err := s.Submit(Description{}); err == nil {
			t.Errorf("%s accepted nil payload", s.URL())
		}
	}
}
