package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// High scale factor keeps each experiment to tens of wall milliseconds;
// the assertions below check *shapes*, not absolute numbers, mirroring
// what EXPERIMENTS.md records.
const testScale = 4000

func TestTestbedLifecycle(t *testing.T) {
	tb := NewTestbed(TestbedConfig{Scale: testScale, Seed: 1})
	if tb.HPCA.TotalCores() != 1024 || tb.HPCB.TotalCores() != 512 {
		t.Fatalf("cluster sizes wrong: %d/%d", tb.HPCA.TotalCores(), tb.HPCB.TotalCores())
	}
	if len(tb.Registry.URLs()) != 6 {
		t.Fatalf("registered services = %v", tb.Registry.URLs())
	}
	mgr := tb.NewManager(nil)
	if mgr.Clock() != tb.Clock {
		t.Fatal("manager clock not shared")
	}
	tb.Close()
}

func TestTable1AllScenariosComplete(t *testing.T) {
	tbl, err := Table1(testScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 5 {
		t.Fatalf("rows = %d, want 5 scenarios", len(tbl.Rows))
	}
	scenarios := []string{"task-parallel", "data-parallel", "dataflow", "iterative", "streaming"}
	for i, s := range scenarios {
		if tbl.Rows[i][0] != s {
			t.Errorf("row %d = %q, want %q", i, tbl.Rows[i][0], s)
		}
	}
}

func TestPilotOverheadCoversBackends(t *testing.T) {
	tbl, err := PilotOverhead(testScale, 32)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 5 {
		t.Fatalf("rows = %d, want 5 backends", len(tbl.Rows))
	}
	// The local reference backend must have the smallest startup; HPC and
	// cloud must show non-trivial startup (queue wait / boot).
	if !strings.Contains(tbl.Rows[0][0], "local") {
		t.Fatalf("first row = %v", tbl.Rows[0])
	}
}

func TestRexScalingShape(t *testing.T) {
	tbl, err := RexScaling(testScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// Speedup must rise with cores until the ensemble-size plateau; within
	// the plateau (32 vs 64 cores for 32 replicas) runs are equal up to
	// wall-clock noise, so the tolerance is generous there.
	prev := 0.0
	for _, row := range tbl.Rows {
		s, err := strconv.ParseFloat(row[4], 64)
		if err != nil {
			t.Fatalf("speedup cell %q", row[4])
		}
		if s < prev*0.85 {
			t.Fatalf("speedup regressed: %v", tbl.Rows)
		}
		prev = s
	}
	// The 8→32-core speedup must be clearly super-unity (the real shape).
	s32, _ := strconv.ParseFloat(tbl.Rows[2][4], 64)
	if s32 < 2.5 {
		t.Errorf("32-core speedup = %g, want ≥ 2.5", s32)
	}
	// Model error stays within the documented noise band.
	for _, row := range tbl.Rows {
		e, _ := strconv.ParseFloat(strings.TrimPrefix(row[3], "+"), 64)
		if e > 80 || e < -80 {
			t.Errorf("model error %s%% too large", row[3])
		}
	}
}

func TestPilotDataShape(t *testing.T) {
	tbl, err := PilotData(testScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// Within each chunk size, the data-aware row must move fewer bytes
	// than the data-oblivious row.
	for i := 0; i < len(tbl.Rows); i += 2 {
		oblivious, _ := strconv.ParseFloat(tbl.Rows[i][3], 64)
		aware, _ := strconv.ParseFloat(tbl.Rows[i+1][3], 64)
		if aware > oblivious {
			t.Errorf("data-aware moved more bytes (%g) than oblivious (%g)", aware, oblivious)
		}
	}
}

func TestMapReduceScalingShape(t *testing.T) {
	tbl, err := MapReduceScaling(testScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	first, _ := strconv.ParseFloat(tbl.Rows[0][4], 64)
	last, _ := strconv.ParseFloat(tbl.Rows[len(tbl.Rows)-1][4], 64)
	if first != 1 {
		t.Errorf("base speedup = %g", first)
	}
	if last <= 1.5 {
		t.Errorf("16-core speedup = %g, want > 1.5", last)
	}
}

func TestPilotMemoryShape(t *testing.T) {
	tbl, err := PilotMemory(testScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// Memory-mode rows (odd indices) must report later-iteration speedup > 1.
	for i := 1; i < len(tbl.Rows); i += 2 {
		s, _ := strconv.ParseFloat(tbl.Rows[i][5], 64)
		if s <= 1 {
			t.Errorf("memory speedup = %g in row %v", s, tbl.Rows[i])
		}
	}
}

func TestStreamingShape(t *testing.T) {
	tbl, err := Streaming(testScale, 400)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	t1, _ := strconv.ParseFloat(tbl.Rows[0][2], 64)
	t8, _ := strconv.ParseFloat(tbl.Rows[3][2], 64)
	if t8 <= t1 {
		// Under race instrumentation the handlers' real CPU cost can
		// dominate the modeled 10ms/message, flattening the curve. A
		// single modeled worker sustains ~100 msg/s, so a far lower t1
		// means the trial was wall-CPU-bound and the scaling shape is
		// not meaningful; only an actual *degradation* at sane
		// throughput is a bug there.
		if raceEnabled && (t1 < 50 || t8 >= 0.9*t1) {
			t.Skipf("race build: trial is CPU-bound, throughput %g → %g", t1, t8)
		}
		t.Errorf("throughput did not scale with partitions: %g → %g", t1, t8)
	}
}

func TestServerlessStreamingShape(t *testing.T) {
	tbl, err := ServerlessStreaming(testScale, 400)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// Serverless rows report cold starts; cluster rows do not.
	for i, row := range tbl.Rows {
		if i%2 == 0 && row[5] != "-" {
			t.Errorf("cluster row reports cold starts: %v", row)
		}
		if i%2 == 1 && row[5] == "-" {
			t.Errorf("serverless row missing cold starts: %v", row)
		}
	}
	// Serverless max latency must exceed its median (cold-start tail).
	p50, _ := strconv.ParseFloat(tbl.Rows[1][3], 64)
	max, _ := strconv.ParseFloat(tbl.Rows[1][4], 64)
	if max <= p50 {
		t.Errorf("serverless max %g not above p50 %g", max, p50)
	}
}

func TestThroughputModelQuality(t *testing.T) {
	_, notes, err := ThroughputModel(testScale, 300)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(notes, "\n")
	if !strings.Contains(joined, "R²") || !strings.Contains(joined, "holdout") {
		t.Fatalf("notes missing model diagnostics:\n%s", joined)
	}
}

func TestLateBindingPilotWins(t *testing.T) {
	tbl, err := LateBinding(testScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// At 256 tasks the pilot must beat direct submission clearly.
	last := tbl.Rows[len(tbl.Rows)-1]
	s, _ := strconv.ParseFloat(last[5], 64)
	if s <= 1 {
		t.Fatalf("pilot speedup at 256 tasks = %g, want > 1 (%v)", s, last)
	}
}

func TestDynamicScalingBurstWins(t *testing.T) {
	tbl, err := DynamicScaling(testScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	if tbl.Rows[1][3] == "0" {
		t.Error("burst run used no cloud tasks")
	}
}

func TestFig5LoopConverges(t *testing.T) {
	tbl, notes, err := Fig5Loop(testScale, 300)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) < 5 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	if !strings.Contains(strings.Join(notes, " "), "refined choice") {
		t.Fatalf("notes = %v", notes)
	}
}

func TestAblationAlgorithmWins(t *testing.T) {
	tbl, err := AblationAlgorithm(testScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	naiveOps, _ := strconv.Atoi(tbl.Rows[0][3])
	ebOps, _ := strconv.Atoi(tbl.Rows[2][3])
	if ebOps >= naiveOps {
		t.Fatalf("early break ops %d not fewer than naive %d", ebOps, naiveOps)
	}
}

func TestEnKFAdaptiveRows(t *testing.T) {
	tbl, err := EnKFAdaptive(testScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 8 {
		t.Fatalf("rows = %d, want 8 cycles", len(tbl.Rows))
	}
}
