package experiments

import (
	"context"
	"fmt"
	"time"

	"gopilot/internal/apps/lightsource"
	"gopilot/internal/dist"
	"gopilot/internal/infra/serverless"
	"gopilot/internal/metrics"
	"gopilot/internal/streaming"
)

// ServerlessStreaming reproduces the serverless-vs-cluster streaming
// comparison of [73] (E7b): the same light-source stream processed by
// pilot-managed cluster workers and by FaaS invocations. Shapes: the
// cluster path has flat, low latency once warm; the serverless path pays
// cold starts (visible in max latency) but matches steady-state
// throughput, trading standing resources for per-invocation elasticity.
func ServerlessStreaming(scale float64, frames int) (*metrics.Table, error) {
	if frames <= 0 {
		frames = 1000
	}
	t := metrics.NewTable(
		fmt.Sprintf("Table II (Eval 3/4) — cluster vs serverless stream processing (%d frames, 10ms/msg)", frames),
		"mode", "partitions", "throughput_msg_s", "latency_p50_s", "latency_max_s", "cold_starts")

	for _, parts := range []int{1, 4} {
		// ---------------- cluster (pilot workers) --------------------------
		tb := NewTestbed(TestbedConfig{Scale: scale, QueueWaitMean: 5, Seed: 19})
		tput, lat, err := StreamTrial(tb, parts, parts, frames, 10*time.Millisecond)
		tb.Close()
		if err != nil {
			return nil, err
		}
		t.AddRow("cluster (pilot)", parts,
			fmt.Sprintf("%.0f", tput),
			fmt.Sprintf("%.3f", lat.Median),
			fmt.Sprintf("%.3f", lat.Max),
			"-")

		// ---------------- serverless (FaaS invocations) --------------------
		tb2 := NewTestbed(TestbedConfig{Scale: scale, QueueWaitMean: 5, Seed: 20})
		sTput, sLat, cold, err := serverlessTrial(tb2, parts, frames, 10*time.Millisecond)
		tb2.Close()
		if err != nil {
			return nil, err
		}
		t.AddRow("serverless (FaaS)", parts,
			fmt.Sprintf("%.0f", sTput),
			fmt.Sprintf("%.3f", sLat.Median),
			fmt.Sprintf("%.3f", sLat.Max),
			cold)
	}
	return t, nil
}

func serverlessTrial(tb *Testbed, partitions, frames int, cost time.Duration) (float64, metrics.Summary, int, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	broker := streaming.NewBroker(streaming.BrokerConfig{
		AppendCost: 2 * time.Millisecond, FetchLatency: time.Millisecond, Clock: tb.Clock,
	})
	defer broker.Close()
	topic := fmt.Sprintf("faas-frames-%d", partitions)
	if err := broker.CreateTopic(topic, partitions); err != nil {
		return 0, metrics.Summary{}, 0, err
	}
	faasStream := tb.Root.Named("infra/serverless/lambda")
	platform := serverless.New(serverless.Config{
		Name:      "lambda",
		ColdStart: dist.LogNormalFrom(faasStream.Named("cold-start"), 2, 0.3), // ~2s cold starts
		WarmStart: dist.Constant(0.01),
		WarmTTL:   10 * time.Minute,
		Clock:     tb.Clock,
		Stream:    faasStream,
	})
	defer platform.Shutdown()

	det := lightsource.NewDetector(16, 16, 0.5, 25, 2, tb.Root.Named("detector"))
	proc, err := streaming.StartServerless(ctx, platform, broker, streaming.ServerlessConfig{
		Topic: topic, Function: "reconstruct", BatchSize: 64,
		CostPerMessage: cost,
		Stream:         tb.Root.Named("streaming/serverless/reconstruct"),
		// Decode + Reconstruct is pure CPU per frame: run each invocation's
		// batch as a parallel compute phase.
		PureHandler: true,
		Handler: func(_ context.Context, m streaming.Message) error {
			f, err := lightsource.Decode(m.Value)
			if err != nil {
				return err
			}
			_ = lightsource.Reconstruct(f, 3)
			return nil
		},
	})
	if err != nil {
		return 0, metrics.Summary{}, 0, err
	}
	payload := lightsource.Encode(det.Next())
	if _, err := streaming.Produce(ctx, broker, topic, frames, 0, payload); err != nil {
		return 0, metrics.Summary{}, 0, err
	}
	if err := proc.WaitProcessed(ctx, int64(frames)); err != nil {
		return 0, metrics.Summary{}, 0, fmt.Errorf("drained %d/%d: %w", proc.Processed(), frames, err)
	}
	proc.Stop()
	return proc.Throughput(), proc.LatencyStats(), platform.ColdStarts(), nil
}
