package experiments

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"gopilot/internal/apps/kmeans"
	"gopilot/internal/apps/lightsource"
	"gopilot/internal/apps/rexchange"
	"gopilot/internal/apps/wordcount"
	"gopilot/internal/core"
	"gopilot/internal/data"
	"gopilot/internal/dataflow"
	"gopilot/internal/dist"
	"gopilot/internal/mapreduce"
	"gopilot/internal/memory"
	"gopilot/internal/metrics"
	"gopilot/internal/streaming"
)

// Table1 reproduces Table I: the same Pilot-API expresses all five
// application scenarios (task-parallel, data-parallel, dataflow,
// iterative, streaming). Each scenario runs a real workload end-to-end;
// the table reports tasks executed and modeled makespan — the
// "generality/applicability" evidence of Eval 2.
func Table1(scale float64) (*metrics.Table, error) {
	tb := NewTestbed(TestbedConfig{Scale: scale, QueueWaitMean: 10, Seed: 1})
	defer tb.Close()
	mgr := tb.NewManager(nil)
	if _, err := mgr.SubmitPilot(core.PilotDescription{
		Name: "t1", Resource: "local://localhost", Cores: 16,
	}); err != nil {
		return nil, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	t := metrics.NewTable("Table I — one abstraction, five scenarios",
		"scenario", "workload", "tasks", "makespan", "detail")

	// --- Task-parallel: replica-exchange ensemble --------------------------
	rex, err := rexchange.Run(ctx, mgr, rexchange.Config{
		Replicas: 8, Cycles: 2, MDTime: dist.Constant(20),
		ExchangeTime: 2 * time.Second, Stream: tb.Root.Named("app/rexchange"),
	})
	if err != nil {
		return nil, fmt.Errorf("task-parallel: %w", err)
	}
	t.AddRow("task-parallel", "replica-exchange MD", 8*2,
		metrics.FormatDuration(rex.Elapsed),
		fmt.Sprintf("exchange acceptance %.0f%%", rex.AcceptanceRatio()*100))

	// --- Data-parallel: map-only analytics over data-units -----------------
	for i := 0; i < 8; i++ {
		if err := tb.Data.Put(ctx, data.Unit{
			ID: fmt.Sprintf("t1-chunk-%d", i), Content: []byte("x"),
			LogicalSize: 200e6, Site: "localhost",
		}); err != nil {
			return nil, err
		}
	}
	dpStart := tb.Clock.Now()
	var dpUnits []*core.ComputeUnit
	for i := 0; i < 8; i++ {
		id := fmt.Sprintf("t1-chunk-%d", i)
		u, err := mgr.SubmitUnit(core.UnitDescription{
			Name: "maponly-" + id, InputData: []string{id},
			Run: func(ctx context.Context, tc core.TaskContext) error {
				if _, err := tc.Data.Read(ctx, id, tc.Site); err != nil {
					return err
				}
				return nil
			},
		})
		if err != nil {
			return nil, err
		}
		dpUnits = append(dpUnits, u)
	}
	for _, u := range dpUnits {
		if s, err := u.Wait(ctx); s != core.UnitDone {
			return nil, fmt.Errorf("data-parallel: %v %w", s, err)
		}
	}
	t.AddRow("data-parallel", "map-only analytics", 8,
		metrics.FormatDuration(tb.Clock.Now().Sub(dpStart)),
		"8×200MB chunks read in place")

	// --- Dataflow: multi-stage MapReduce (wordcount) -----------------------
	corpus := wordcount.GenerateCorpus(4, 400, 100, tb.Root.Named("corpus"))
	var splitIDs []string
	for i, s := range corpus {
		id := fmt.Sprintf("t1-wc-%d", i)
		if err := tb.Data.Put(ctx, data.Unit{ID: id, Content: []byte(s), Site: "localhost"}); err != nil {
			return nil, err
		}
		splitIDs = append(splitIDs, id)
	}
	mrRes, err := mapreduce.Run(ctx, mgr, wordcount.Config("t1-wc", splitIDs, 2))
	if err != nil {
		return nil, fmt.Errorf("dataflow: %w", err)
	}
	// A second dataflow flavour: an explicit DAG with fan-out/fan-in.
	g := dataflow.New()
	g.MustAdd(dataflow.Stage{Name: "prepare", Parallelism: 1, Run: func(ctx context.Context, tc core.TaskContext, _ int) error {
		tc.Sleep(ctx, time.Second)
		return nil
	}})
	g.MustAdd(dataflow.Stage{Name: "analyze", Deps: []string{"prepare"}, Parallelism: 4, Run: func(ctx context.Context, tc core.TaskContext, _ int) error {
		tc.Sleep(ctx, 2*time.Second)
		return nil
	}})
	g.MustAdd(dataflow.Stage{Name: "merge", Deps: []string{"analyze"}, Parallelism: 1, Run: func(ctx context.Context, tc core.TaskContext, _ int) error {
		tc.Sleep(ctx, time.Second)
		return nil
	}})
	if _, err := g.Run(ctx, mgr); err != nil {
		return nil, fmt.Errorf("dataflow DAG: %w", err)
	}
	t.AddRow("dataflow", "MapReduce wordcount + 3-stage DAG",
		mrRes.MapTasks+mrRes.ReduceTasks+6,
		metrics.FormatDuration(mrRes.Elapsed),
		fmt.Sprintf("map %s / shuffle+reduce %s",
			metrics.FormatDuration(mrRes.MapElapsed), metrics.FormatDuration(mrRes.ReduceElapsed)))

	// --- Iterative: K-Means with Pilot-Memory caching ----------------------
	dataset := kmeans.Generate(2000, 4, 3, 1.0, tb.Root.Named("dataset"))
	kcfg := kmeans.Config{
		K: 4, MaxIter: 4, Tol: 0, Partitions: 4,
		Mode: kmeans.ModeMemory,
		Cache: memory.NewCache(memory.Config{
			CapacityBytes: 1 << 30, Clock: tb.Clock,
		}),
		Site: "localhost", BytesPerPoint: 1 << 12, Stream: tb.Root.Named("app/kmeans"),
	}
	ids, err := kmeans.Stage(ctx, tb.Data, dataset, kcfg)
	if err != nil {
		return nil, err
	}
	kres, err := kmeans.Run(ctx, mgr, dataset, ids, kcfg)
	if err != nil {
		return nil, fmt.Errorf("iterative: %w", err)
	}
	t.AddRow("iterative", "K-Means (Pilot-Memory)", kres.Iters*4,
		metrics.FormatDuration(kres.Elapsed),
		fmt.Sprintf("%d iterations, cache hit rate %.0f%%", kres.Iters, kcfg.Cache.HitRate()*100))

	// --- Streaming: light-source reconstruction ----------------------------
	broker := streaming.NewBroker(streaming.BrokerConfig{
		AppendCost: time.Millisecond, FetchLatency: time.Millisecond, Clock: tb.Clock,
	})
	defer broker.Close()
	if err := broker.CreateTopic("frames", 4); err != nil {
		return nil, err
	}
	det := lightsource.NewDetector(24, 24, 0.5, 25, 2, tb.Root.Named("detector"))
	var recovered, frames atomic.Int64
	proc, err := streaming.StartProcessor(ctx, mgr, broker, streaming.ProcessorConfig{
		Name: "t1-ls", Topic: "frames", Workers: 2,
		CostPerMessage: 5 * time.Millisecond,
		Handler: func(ctx context.Context, tc core.TaskContext, m streaming.Message) error {
			f, err := lightsource.Decode(m.Value)
			if err != nil {
				return err
			}
			if r := lightsource.Reconstruct(f, 3); r.Found && r.Error < 3 {
				recovered.Add(1)
			}
			frames.Add(1)
			return nil
		},
	})
	if err != nil {
		return nil, fmt.Errorf("streaming: %w", err)
	}
	const nFrames = 60
	for i := 0; i < nFrames; i++ {
		if _, err := broker.Publish(ctx, "frames", nil, lightsource.Encode(det.Next())); err != nil {
			return nil, err
		}
	}
	if err := proc.WaitProcessed(ctx, nFrames); err != nil {
		return nil, fmt.Errorf("streaming drain: %w", err)
	}
	proc.Stop()
	t.AddRow("streaming", "light-source reconstruction", nFrames,
		fmt.Sprintf("%.0f msg/s", proc.Throughput()),
		fmt.Sprintf("peaks recovered %d/%d, p95 latency %.2fs", recovered.Load(), frames.Load(), proc.LatencyStats().P95))

	return t, nil
}
