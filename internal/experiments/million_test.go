package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// TestMillionMessagesBitIdenticalAcrossFiveRuns is E13's acceptance
// check: five same-seed runs of the scale exhibit — segmented log on a
// 3-shard federated cluster, a shard loss at the halfway mark,
// consumer-group join/leave rebalances, producer backpressure,
// low-watermark retention — must render bit-identical tables (at a
// reduced message count; the full 10⁶ run is
// BenchmarkStreaming_Million's job). The run must also prove its
// inline invariants held: every message delivered exactly once in
// order, commit marks gapless, resident bytes bounded — with at least
// one leader handoff actually exercised by the injected shard loss.
func TestMillionMessagesBitIdenticalAcrossFiveRuns(t *testing.T) {
	if DefaultClockMode != ClockVirtual {
		t.Skip("determinism is only guaranteed in virtual clock mode")
	}
	render := func() (string, []string) {
		tbl, err := MillionMessages(detScale, 40_000)
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		b.WriteString(tbl.Title)
		for _, row := range tbl.Rows {
			b.WriteString("\n" + strings.Join(row, " | "))
		}
		if len(tbl.Rows) != 1 {
			t.Fatalf("want 1 row, got %d", len(tbl.Rows))
		}
		return b.String(), tbl.Rows[0]
	}
	ref, row := render()
	if !strings.Contains(ref, "40000") {
		t.Fatalf("run did not process all messages:\n%s", ref)
	}
	cell := func(col string) string {
		switch col {
		case "shards":
			return row[2]
		case "handoffs":
			return row[3]
		case "invariants":
			return row[len(row)-1]
		}
		t.Fatalf("unknown column %q", col)
		return ""
	}
	if got := cell("invariants"); got != "ok" {
		t.Fatalf("inline invariants breached: %s\n%s", got, ref)
	}
	if got := cell("shards"); got != "2" {
		t.Fatalf("want 2 live shards after the injected loss, got %s\n%s", got, ref)
	}
	if n, err := strconv.Atoi(cell("handoffs")); err != nil || n < 1 {
		t.Fatalf("shard loss produced no leader handoffs (%s)\n%s", cell("handoffs"), ref)
	}
	for i := 2; i <= 5; i++ {
		if got, _ := render(); got != ref {
			t.Fatalf("run %d diverged:\n--- run 1 ---\n%s\n--- run %d ---\n%s", i, ref, i, got)
		}
	}
}
