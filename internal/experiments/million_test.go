package experiments

import (
	"strings"
	"testing"
)

// TestMillionMessagesBitIdenticalAcrossFiveRuns is E13's acceptance
// check: five same-seed runs of the scale exhibit — segmented log,
// consumer-group join/leave rebalances, producer backpressure — must
// render bit-identical tables (at a reduced message count; the full 10⁶
// run is BenchmarkStreaming_Million's job).
func TestMillionMessagesBitIdenticalAcrossFiveRuns(t *testing.T) {
	if DefaultClockMode != ClockVirtual {
		t.Skip("determinism is only guaranteed in virtual clock mode")
	}
	render := func() string {
		tbl, err := MillionMessages(detScale, 40_000)
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		b.WriteString(tbl.Title)
		for _, row := range tbl.Rows {
			b.WriteString("\n" + strings.Join(row, " | "))
		}
		return b.String()
	}
	ref := render()
	if !strings.Contains(ref, "40000") {
		t.Fatalf("run did not process all messages:\n%s", ref)
	}
	for i := 2; i <= 5; i++ {
		if got := render(); got != ref {
			t.Fatalf("run %d diverged:\n--- run 1 ---\n%s\n--- run %d ---\n%s", i, ref, i, got)
		}
	}
}
