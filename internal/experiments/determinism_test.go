package experiments

import (
	"bytes"
	"strings"
	"testing"

	"gopilot/internal/metrics"
)

// detScale is passed to exhibits for their Scale parameter; on the virtual
// clock (the default mode) it is ignored, which is itself part of what
// this suite verifies: virtual-time results do not depend on compression.
const detScale = 4000

// renderScrubbed renders a table, dropping the named columns (used for
// E11's makespan_wall_ms, the one deliberately wall-clock-measured cell).
func renderScrubbed(t *metrics.Table, drop ...string) string {
	skip := map[int]bool{}
	for i, c := range t.Columns {
		for _, d := range drop {
			if c == d {
				skip[i] = true
			}
		}
	}
	var b bytes.Buffer
	b.WriteString(t.Title)
	for _, row := range t.Rows {
		b.WriteString("\n")
		for i, cell := range row {
			if skip[i] {
				continue
			}
			b.WriteString(cell)
			b.WriteString(" | ")
		}
	}
	return b.String()
}

// TestSameSeedExhibitsBitIdentical runs every exhibit E1–E13 twice on the
// virtual clock and requires bit-identical output — the ISSUE's acceptance
// criterion that the conservative time-warp extends PR 1's determinism
// from the perfmodel sims to the full concurrent runtime. Measured
// makespans, throughputs, latency quantiles, costs: all must match to the
// last digit.
func TestSameSeedExhibitsBitIdentical(t *testing.T) {
	if DefaultClockMode != ClockVirtual {
		t.Skip("determinism is only guaranteed in virtual clock mode")
	}
	type exhibit struct {
		id   string
		run  func() (*metrics.Table, []string, error)
		drop []string
	}
	tbl := func(f func(float64) (*metrics.Table, error)) func() (*metrics.Table, []string, error) {
		return func() (*metrics.Table, []string, error) {
			tb, err := f(detScale)
			return tb, nil, err
		}
	}
	exhibits := []exhibit{
		{id: "E1_Table1", run: tbl(Table1)},
		{id: "E2_PilotOverhead", run: tbl(func(s float64) (*metrics.Table, error) { return PilotOverhead(s, 32) })},
		{id: "E3_RexScaling", run: tbl(RexScaling)},
		{id: "E4_PilotData", run: tbl(PilotData)},
		{id: "E5_MapReduceScaling", run: tbl(MapReduceScaling)},
		{id: "E6_PilotMemory", run: tbl(PilotMemory)},
		{id: "E7_Streaming", run: tbl(func(s float64) (*metrics.Table, error) { return Streaming(s, 200) })},
		{id: "E7b_Serverless", run: tbl(func(s float64) (*metrics.Table, error) { return ServerlessStreaming(s, 200) })},
		{id: "E8_ThroughputModel", run: func() (*metrics.Table, []string, error) { return ThroughputModel(detScale, 200) }},
		{id: "E9_LateBinding", run: tbl(LateBinding)},
		{id: "E9b_DynamicScaling", run: tbl(DynamicScaling)},
		{id: "E10_Fig5Loop", run: func() (*metrics.Table, []string, error) { return Fig5Loop(detScale, 120) }},
		// E11 compares real CPU algorithms; its wall-ms column is the one
		// legitimately nondeterministic cell in the whole evaluation.
		{id: "E11_Ablation", run: tbl(AblationAlgorithm), drop: []string{"makespan_wall_ms"}},
		{id: "E12_EnKF", run: tbl(EnKFAdaptive)},
		{id: "E13_MillionMessages", run: tbl(func(s float64) (*metrics.Table, error) { return MillionMessages(s, 40_000) })},
	}
	for _, ex := range exhibits {
		ex := ex
		t.Run(ex.id, func(t *testing.T) {
			render := func() string {
				tb, notes, err := ex.run()
				if err != nil {
					t.Fatalf("%s: %v", ex.id, err)
				}
				return renderScrubbed(tb, ex.drop...) + "\n" + strings.Join(notes, "\n")
			}
			a, b := render(), render()
			if a != b {
				t.Fatalf("same seed, different output:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", a, b)
			}
		})
	}
}
